# Developer entry points. `make check` is the full pre-merge gate:
# vet + race-enabled tests (including the chaos suite and the
# parallel/sequential equivalence tests) + a short smoke run of the
# performance benchmarks. The chaos suite (root-level TestChaos*) runs
# live wire exchanges under injected faults and takes several seconds;
# `make test-short` skips it via -short.

GO ?= go

# Benchmarks of the compiled lookup table, parallel clustering engines and
# CLF fast path; bench-json freezes their numbers into BENCH_clustering.json.
PERF_BENCH = LongestPrefixMatch|TableCompile|ClusterLog|ClusterStreamParallel|CLFParseStream|WriteCLF

.PHONY: all build test test-short race vet chaos bench-json bench-smoke check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the chaos suite and other -short-aware slow tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Just the fault-injection acceptance tests, verbosely.
chaos:
	$(GO) test -count=1 -race -run 'TestChaos' -v .

# Record lookup/cluster/parse benchmark results machine-readably.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(PERF_BENCH)' -benchmem . | ./bin/benchjson -out BENCH_clustering.json

# One-iteration-class smoke of the same benchmarks: catches bit-rot in
# bench code without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(PERF_BENCH)' -benchtime 10x . > /dev/null

check: vet race bench-smoke

clean:
	$(GO) clean ./...
	rm -rf bin
