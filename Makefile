# Developer entry points. `make check` is the full pre-merge gate:
# vet + race-enabled tests, including the chaos suite. The chaos suite
# (root-level TestChaos*) runs live wire exchanges under injected faults
# and takes several seconds; `make test-short` skips it via -short.

GO ?= go

.PHONY: all build test test-short race vet chaos check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the chaos suite and other -short-aware slow tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Just the fault-injection acceptance tests, verbosely.
chaos:
	$(GO) test -count=1 -race -run 'TestChaos' -v .

check: vet race

clean:
	$(GO) clean ./...
