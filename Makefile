# Developer entry points. `make check` is the full pre-merge gate:
# vet + race-enabled tests (including the chaos suite and the
# parallel/sequential equivalence tests) + the sharded-cluster
# verification lane + a short smoke run of the performance benchmarks. The chaos suite (root-level TestChaos*) runs
# live wire exchanges under injected faults and takes several seconds;
# `make test-short` skips it via -short.

GO ?= go

# Benchmarks of the compiled lookup table, batch lookup kernel, snapshot
# loader, parallel clustering engines and CLF fast path; bench-json
# freezes their numbers into BENCH_clustering.json.
PERF_BENCH = LongestPrefixMatch|LookupBatch|SnapshotLoad|TableCompile|ClusterLog|ClusterStreamParallel|CLFParseStream|WriteCLF|Churn|RouterFanout|RouterSingleShard|DeltaBroadcast|TraceHeader|SketchUpdate|BoundedStream

# Every fuzz target in the tree, as pkg-dir:FuzzName pairs. fuzz-smoke
# runs each for FUZZTIME so corpus-breaking regressions (and fresh
# crashes near the seeds) surface in CI without a long campaign.
FUZZ_TARGETS = \
	internal/weblog:FuzzReadCLF \
	internal/weblog:FuzzStreamCLF \
	internal/weblog:FuzzParseCLFLineFast \
	internal/bgp:FuzzParsePrefixEntry \
	internal/bgp:FuzzReadSnapshot \
	internal/bgp:FuzzReadTable \
	internal/dnswire:FuzzDecode \
	internal/sketch:FuzzSketchMerge
FUZZTIME ?= 20s

# Advisory statement-coverage floor for the cover target.
COVER_MIN ?= 70

.PHONY: all build test test-short race vet fmt fmt-check chaos chaos-smoke cluster-smoke cluster-obsv-smoke firehose-smoke bench-json bench-gate bench-smoke snapshot-smoke trace-smoke fuzz-smoke cover check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast loop: skips the chaos suite and other -short-aware slow tests.
test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# CI form of fmt: fails (listing the offenders) instead of rewriting.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt drift in:"; echo "$$out"; exit 1; fi

# Just the fault-injection acceptance tests, verbosely.
chaos:
	$(GO) test -count=1 -race -run 'TestChaos' -v .

# The sink chaos suite: the durable export path under injected drops,
# resets and corruption, plus kill-and-restart WAL replay, under -race.
# On failure the WAL and flight-recorder tail land in bin/chaos-artifacts
# (SINK_CHAOS_ARTIFACTS) for post-mortem; CI uploads that directory.
chaos-smoke:
	@mkdir -p bin/chaos-artifacts
	SINK_CHAOS_ARTIFACTS=$(CURDIR)/bin/chaos-artifacts \
		$(GO) test -count=1 -race -run 'TestSinkChaos' -v ./internal/obsv/sink

# The sharded-cluster acceptance suite: a 3-node in-process cluster
# (compiler feed + follower shards + router over real loopback HTTP)
# proven byte-equivalent to the single-node table across 100 churn
# generations, plus kill-one-node degradation and warm-start rejoin,
# all under -race. On failure the flight-recorder tail lands in
# bin/cluster-artifacts (CLUSTER_SMOKE_ARTIFACTS) for CI to upload.
cluster-smoke:
	@mkdir -p bin/cluster-artifacts
	CLUSTER_SMOKE_ARTIFACTS=$(CURDIR)/bin/cluster-artifacts \
		$(GO) test -count=1 -race -run 'TestCluster' -v ./internal/shard

# The cluster observability acceptance lane on real binaries: a compiler
# clusterd, two shard clusterds and a clusterrouter must produce (a) one
# TraceID spanning the router fan-out and every shard's server spans
# (tracecheck -merge -require-shared-trace over the three /debug/trace
# dumps), (b) a parseable federated /metrics/cluster page with per-shard
# labels and nonzero cluster quantiles, and (c) a slow shard's feed-lag
# gauge rising under churn and settling to zero once churn pauses. The
# per-process dumps, the merged trace and the federated page land in
# bin/cluster-obsv-artifacts (CLUSTER_OBSV_ARTIFACTS) for CI to upload.
cluster-obsv-smoke:
	@mkdir -p bin/cluster-obsv-artifacts
	CLUSTER_OBSV_ARTIFACTS=$(CURDIR)/bin/cluster-obsv-artifacts \
		$(GO) test -count=1 -race -run 'TestClusterObservability' -v .

# Record lookup/cluster/parse benchmark results machine-readably. The
# bench run and the JSON conversion are separate steps on an intermediate
# file so a benchmark failure stops make before BENCH_clustering.json is
# touched (benchjson additionally writes atomically).
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench '$(PERF_BENCH)' -benchmem . > bin/bench.out
	./bin/benchjson -out BENCH_clustering.json < bin/bench.out

# Compare a fresh benchmark run against the committed recording and fail
# on >25% ns/op or allocs/op regression in the gated rows (compiled
# lookup, CLF fast path). The fresh recording is left in bin/ for CI to
# archive as an artifact.
bench-gate:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test -run '^$$' -bench '$(PERF_BENCH)' -benchmem . > bin/bench-gate.out
	./bin/benchjson -out bin/BENCH_fresh.json < bin/bench-gate.out
	@./bin/benchdiff -old BENCH_clustering.json -new bin/BENCH_fresh.json > bin/bench-diff.txt; \
		st=$$?; cat bin/bench-diff.txt; exit $$st

# One-iteration-class smoke of the same benchmarks: catches bit-rot in
# bench code without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(PERF_BENCH)' -benchtime 10x . > /dev/null

# The firehose acceptance lane: the sketch property tests and the
# differential soak (bounded accumulator vs exact counts over the four
# paper profiles plus an adversarial Zipf stream) under -race, then the
# RSS-ceiling run — a FIREHOSE_REQUESTS-address replay through the
# bounded path that must stay under a hard heap ceiling while its top-K
# exactly matches an unbounded second pass. On failure the RSS trace
# and the flight-recorder tail land in bin/firehose-artifacts
# (FIREHOSE_ARTIFACTS) for CI to upload. The default 100M-address
# ceiling run takes ~2 minutes; set FIREHOSE_REQUESTS smaller for a
# quick local pass.
FIREHOSE_REQUESTS ?= 100000000
firehose-smoke:
	@mkdir -p bin/firehose-artifacts
	FIREHOSE_ARTIFACTS=$(CURDIR)/bin/firehose-artifacts \
		$(GO) test -count=1 -race -v ./internal/sketch
	FIREHOSE_ARTIFACTS=$(CURDIR)/bin/firehose-artifacts \
		$(GO) test -count=1 -race -run 'TestBounded|TestClusterStreamBounded|TestFirehoseDifferential' -v ./internal/cluster
	FIREHOSE_ARTIFACTS=$(CURDIR)/bin/firehose-artifacts FIREHOSE_REQUESTS=$(FIREHOSE_REQUESTS) \
		$(GO) test -count=1 -timeout 20m -run 'TestFirehoseRSSCeiling' -v ./internal/cluster

# Short differential-fuzz pass over every target. Each run still replays
# the checked-in corpus first, so this also acts as a regression gate for
# past crashers (e.g. the weblog empty-timestamp seed).
fuzz-smoke:
	@set -e; for t in $(FUZZ_TARGETS); do \
		pkg=$${t%%:*}; fn=$${t##*:}; \
		echo "== fuzz $$pkg $$fn ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$fn$$" -fuzztime $(FUZZTIME) ./$$pkg; \
	done

# Aggregate statement coverage with an advisory floor: the total is
# written to bin/cover-summary.txt for CI to archive, and a shortfall
# warns rather than fails (coverage gates invite test gaming; the trend
# artifact is the useful signal).
cover:
	@mkdir -p bin
	$(GO) test -short -coverprofile bin/cover.out -covermode atomic ./...
	@$(GO) tool cover -func bin/cover.out | tee bin/cover-func.txt | tail -1
	@total=$$($(GO) tool cover -func bin/cover.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}'); \
	echo "total statement coverage: $$total% (advisory floor $(COVER_MIN)%)" > bin/cover-summary.txt; \
	cat bin/cover-summary.txt; \
	if [ "$$(printf '%s\n' "$$total" "$(COVER_MIN)" | sort -g | head -1)" != "$(COVER_MIN)" ]; then \
		echo "WARNING: coverage $$total% below advisory floor $(COVER_MIN)%"; fi

# End-to-end table-snapshot smoke: generate the standard dump collection,
# compile it into an on-disk snapshot with tabletool, checksum-verify the
# file, and prove it byte-identical to a fresh compile of the same dumps
# (the strongest load/save equivalence there is). Artifacts stay in
# bin/snapshot-smoke for CI to archive on failure.
snapshot-smoke:
	@mkdir -p bin/snapshot-smoke
	$(GO) build -o bin/bgpgen ./cmd/bgpgen
	$(GO) build -o bin/tabletool ./cmd/tabletool
	./bin/bgpgen -all -dir bin/snapshot-smoke -seed 1 -scale 0.02
	./bin/tabletool compile -o bin/snapshot-smoke/table.nct bin/snapshot-smoke/*.txt
	./bin/tabletool verify bin/snapshot-smoke/table.nct bin/snapshot-smoke/*.txt

# End-to-end tracing smoke: run the perf experiment with the flight
# recorder draining to a Chrome trace file, then validate the schema and
# nesting invariants with the standalone checker. Catches trace-format
# drift that unit tests on synthetic spans would miss.
trace-smoke:
	$(GO) build -o bin/experiments ./cmd/experiments
	$(GO) build -o bin/tracecheck ./cmd/tracecheck
	./bin/experiments -scale 0.02 -trace-out bin/trace.json perf
	./bin/tracecheck bin/trace.json

check: vet fmt-check race chaos-smoke cluster-smoke cluster-obsv-smoke firehose-smoke bench-smoke

clean:
	$(GO) clean ./...
	rm -rf bin
