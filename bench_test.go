package netcluster_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	netcluster "github.com/netaware/netcluster"
	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/detect"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/radix"
	"github.com/netaware/netcluster/internal/shard"
	"github.com/netaware/netcluster/internal/sketch"
	"github.com/netaware/netcluster/internal/stats"
	"github.com/netaware/netcluster/internal/tracesim"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/weblog"
	"github.com/netaware/netcluster/internal/websim"
)

// One benchmark per table/figure of the paper (see DESIGN.md's
// per-experiment index) plus ablations of the design choices and the core
// micro-operations. All benches reuse the shared fixture from
// netcluster_test.go, so `go test -bench=.` pays world generation once.

// ---- Core micro-benchmarks -------------------------------------------------

func BenchmarkLongestPrefixMatch(b *testing.B) {
	f := setup(b)
	clients := f.log.Clients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.table.Lookup(clients[i%len(clients)])
	}
}

func BenchmarkClusterLogNetworkAware(b *testing.B) {
	f := setup(b)
	b.ReportMetric(float64(len(f.log.Requests)), "requests/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ClusterLog(f.log, cluster.NetworkAware{Table: f.table})
	}
}

func BenchmarkClusterLogSimple(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ClusterLog(f.log, cluster.Simple{})
	}
}

// BenchmarkLongestPrefixMatchCompiled is the compiled-table counterpart of
// BenchmarkLongestPrefixMatch: same client population, one flat-array walk
// instead of two tree walks. The ratio of the two is the headline number
// in BENCH_clustering.json.
func BenchmarkLongestPrefixMatchCompiled(b *testing.B) {
	f := setup(b)
	compiled := f.table.Compile()
	clients := f.log.Clients()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compiled.Lookup(clients[i%len(clients)])
	}
}

// BenchmarkLookupBatch is the batch lookup kernel over the same client
// population as BenchmarkLongestPrefixMatchCompiled, in 4096-address
// batches with a reused result buffer. b.N counts addresses, so ns/op
// here divided into the compiled single-probe bench's ns/op is the
// aggregate speedup the level-synchronous kernel buys (gated at >=3x in
// cmd/benchdiff).
func BenchmarkLookupBatch(b *testing.B) {
	f := setup(b)
	compiled := f.table.Compile()
	clients := f.log.Clients()
	const batchLen = 4096
	addrs := make([]netutil.Addr, batchLen)
	for i := range addrs {
		addrs[i] = clients[i%len(clients)]
	}
	dst := compiled.LookupBatch(addrs, nil)
	b.ReportMetric(batchLen, "addrs/batch")
	b.ResetTimer()
	for n := 0; n < b.N; n += batchLen {
		dst = compiled.LookupBatch(addrs, dst)
	}
	_ = dst
}

// BenchmarkSnapshotLoad measures opening the on-disk table snapshot —
// mmap fast path where the platform allows — against the fixture table,
// the cost a snapshot-booted clusterd pays instead of merge+compile.
func BenchmarkSnapshotLoad(b *testing.B) {
	f := setup(b)
	compiled := f.table.Compile()
	path := b.TempDir() + "/table.nct"
	if err := netcluster.SaveTable(path, compiled); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(compiled.Len()), "prefixes/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tf, err := netcluster.OpenTable(path)
		if err != nil {
			b.Fatal(err)
		}
		tf.Close()
	}
}

// BenchmarkTableCompile measures the one-time cost of building the
// compiled snapshot, the price paid to make every later lookup cheap.
func BenchmarkTableCompile(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.table.Compile()
	}
}

// ---- Parallel clustering engine (Apache profile, BENCH_clustering.json) ----

// The parallel benchmarks run on the Apache profile — the paper's largest
// cluster population — cached once alongside its CLF serialization.
var (
	perfOnce  sync.Once
	apacheLog *netcluster.Log
	apacheCLF []byte
)

func perfSetup(b testing.TB) *fixture {
	f := setup(b)
	perfOnce.Do(func() {
		l, err := netcluster.GenerateLog(f.world, netcluster.ApacheProfile(0.01))
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := netcluster.WriteLog(&buf, l); err != nil {
			panic(err)
		}
		apacheLog, apacheCLF = l, buf.Bytes()
	})
	return f
}

// BenchmarkClusterLogParallel scales the in-memory engine across worker
// counts; workers-1 is the sequential reference path.
func BenchmarkClusterLogParallel(b *testing.B) {
	f := perfSetup(b)
	na := netcluster.NetworkAware{Table: f.table}.Compile()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(len(apacheLog.Requests)), "requests/op")
			for i := 0; i < b.N; i++ {
				netcluster.ClusterLogParallel(apacheLog, na, netcluster.ParallelOptions{Workers: workers})
			}
		})
	}
}

// BenchmarkClusterStreamParallel scales the one-pass engine: a single
// parser goroutine feeding sharded accumulators.
func BenchmarkClusterStreamParallel(b *testing.B) {
	f := perfSetup(b)
	na := netcluster.NetworkAware{Table: f.table}.Compile()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(apacheCLF)))
			for i := 0; i < b.N; i++ {
				if _, err := netcluster.ClusterStreamParallel(bytes.NewReader(apacheCLF), na, netcluster.ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCLFParseStream measures the zero-allocation CLF ingestion fast
// path in isolation: parse + intern, no clustering.
func BenchmarkCLFParseStream(b *testing.B) {
	perfSetup(b)
	b.SetBytes(int64(len(apacheCLF)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := weblog.StreamCLF(bytes.NewReader(apacheCLF), func(weblog.StreamRecord) bool {
			return true
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteCLF measures log serialization (append-formatted lines,
// per-second timestamp cache).
func BenchmarkWriteCLF(b *testing.B) {
	perfSetup(b)
	b.SetBytes(int64(len(apacheCLF)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := netcluster.WriteLog(io.Discard, apacheLog); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Per-figure / per-table benchmarks -------------------------------------

// BenchmarkFig1PrefixHistogram regenerates Figure 1's prefix-length
// distribution from a vantage snapshot.
func BenchmarkFig1PrefixHistogram(b *testing.B) {
	f := setup(b)
	sim := netcluster.NewBGPSim(f.world, netcluster.DefaultBGPSimConfig())
	snap := sim.View(bgpsim.ViewConfig{Name: "MAE-WEST", Visibility: 0.38}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.SnapshotPrefixLengthHistogram(snap)
	}
}

// BenchmarkTab1MergeCollection regenerates Table 1's merged table from the
// standard snapshot collection.
func BenchmarkTab1MergeCollection(b *testing.B) {
	f := setup(b)
	sim := netcluster.NewBGPSim(f.world, netcluster.DefaultBGPSimConfig())
	coll := sim.Collect()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgpsim.Merge(coll)
	}
}

// BenchmarkFig3ClusterCDF regenerates Figure 3's cumulative distributions.
func BenchmarkFig3ClusterCDF(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.CDF(cluster.ClientCounts(f.na.Clusters))
		stats.CDF(cluster.RequestCounts(f.na.Clusters))
	}
}

// BenchmarkFig4Distributions regenerates Figure 4's by-clients ordering
// with its three aligned metric series.
func BenchmarkFig4Distributions(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordered := f.na.ByClientsDesc()
		cluster.ClientCounts(ordered)
		cluster.RequestCounts(ordered)
		cluster.URLCounts(ordered)
	}
}

// BenchmarkFig5Distributions regenerates Figure 5's by-requests ordering.
func BenchmarkFig5Distributions(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordered := f.na.ByRequestsDesc()
		cluster.RequestCounts(ordered)
		cluster.ClientCounts(ordered)
		cluster.URLCounts(ordered)
	}
}

// BenchmarkFig6CrossLog clusters a second log profile, the unit of work
// behind Figure 6's cross-log comparison.
func BenchmarkFig6CrossLog(b *testing.B) {
	f := setup(b)
	l, err := netcluster.GenerateLog(f.world, netcluster.EW3Profile(0.005))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ClusterLog(l, cluster.NetworkAware{Table: f.table})
	}
}

// BenchmarkTab3Validation regenerates Table 3: sample 1% of clusters and
// run both validation methods.
func BenchmarkTab3Validation(b *testing.B) {
	f := setup(b)
	sampled := validate.Sample(f.na.Clusters, 0.01, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolver := netcluster.NewResolver(f.world)
		tracer := netcluster.NewTracer(f.world, f.world.VantageASes()[0])
		validate.Nslookup(f.world, resolver, sampled)
		validate.Traceroute(f.world, resolver, tracer, sampled)
	}
}

// BenchmarkFig7Comparison clusters the same log under both approaches,
// the work behind Figure 7.
func BenchmarkFig7Comparison(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ClusterLog(f.log, cluster.NetworkAware{Table: f.table})
		cluster.ClusterLog(f.log, cluster.Simple{})
	}
}

// BenchmarkTab4Dynamics regenerates Table 4's dynamic prefix sets over a
// 14-day series.
func BenchmarkTab4Dynamics(b *testing.B) {
	f := setup(b)
	sim := netcluster.NewBGPSim(f.world, netcluster.DefaultBGPSimConfig())
	vc := bgpsim.ViewConfig{Name: "AADS", Visibility: 0.25}
	series := sim.Series(vc, []int{0, 1, 4, 7, 14})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bgp.DynamicPrefixSet(series)
	}
}

// BenchmarkTab5Thresholding regenerates Table 5's busy-cluster cut.
func BenchmarkTab5Thresholding(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.na.ThresholdBusy(0.70)
		f.si.ThresholdBusy(0.70)
	}
}

// BenchmarkFig9ArrivalHistograms bins arrival times at the resolution the
// Figure 9 histograms use.
func BenchmarkFig9ArrivalHistograms(b *testing.B) {
	f := setup(b)
	times := make([]uint32, len(f.log.Requests))
	for i := range f.log.Requests {
		times[i] = f.log.Requests[i].Time
	}
	horizon := uint32(f.log.Duration.Seconds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats.Bin(times, horizon, 48)
	}
}

// BenchmarkFig10RequestSkew computes the intra-cluster request skew of
// every cluster (Figure 10 plots one; detection scans all).
func BenchmarkFig10RequestSkew(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range f.na.Clusters {
			detect.RequestSkew(c)
		}
	}
}

// BenchmarkDetect runs the full spider/proxy detector, the machinery
// behind Figures 9 and 10.
func BenchmarkDetect(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.Detect(f.na, detect.DefaultConfig())
	}
}

// BenchmarkFig11CachingSweep runs one point of Figure 11's cache-size
// sweep (10 MB proxies, TTL 1 h, PCV).
func BenchmarkFig11CachingSweep(b *testing.B) {
	f := setup(b)
	cfg := websim.DefaultConfig()
	cfg.CacheBytes = 10 << 20
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		websim.Simulate(f.na, cfg)
	}
}

// BenchmarkFig12ProxyPerf runs Figure 12's infinite-cache per-proxy
// simulation.
func BenchmarkFig12ProxyPerf(b *testing.B) {
	f := setup(b)
	cfg := websim.DefaultConfig()
	cfg.CacheBytes = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		websim.Simulate(f.na, cfg)
	}
}

// ---- Ablations (design choices called out in DESIGN.md §6) ----------------

// BenchmarkAblationLinearVsTrie compares the Patricia trie against a
// linear scan for longest-prefix matching.
func BenchmarkAblationLinearVsTrie(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var prefixes []netutil.Prefix
	tree := radix.New[int]()
	for i := 0; i < 10000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), 16+rng.Intn(9))
		prefixes = append(prefixes, p)
		tree.Insert(p, i)
	}
	probes := make([]netutil.Addr, 1024)
	for i := range probes {
		probes[i] = netutil.Addr(rng.Uint32())
	}
	b.Run("trie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Lookup(probes[i%len(probes)])
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := probes[i%len(probes)]
			best := -1
			for j, p := range prefixes {
				if p.Contains(a) && (best == -1 || p.Bits() > prefixes[best].Bits()) {
					best = j
				}
			}
		}
	})
}

// BenchmarkAblationTrieDesign compares the path-compressed binary trie
// against the stride-8 controlled-prefix-expansion trie (what hardware
// routers use): the memory-for-speed trade on LPM.
func BenchmarkAblationTrieDesign(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	binary := radix.New[int]()
	multibit := radix.NewMultibit[int]()
	for i := 0; i < 10000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), 8+rng.Intn(25))
		binary.Insert(p, i)
		multibit.Insert(p, i)
	}
	probes := make([]netutil.Addr, 1024)
	for i := range probes {
		probes[i] = netutil.Addr(rng.Uint32())
	}
	b.Run("patricia", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			binary.Lookup(probes[i%len(probes)])
		}
	})
	b.Run("multibit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			multibit.Lookup(probes[i%len(probes)])
		}
	})
}

// BenchmarkAblationSingleVsMergedTable measures clustering coverage cost
// with one vantage view versus the merged table.
func BenchmarkAblationSingleVsMergedTable(b *testing.B) {
	f := setup(b)
	sim := netcluster.NewBGPSim(f.world, netcluster.DefaultBGPSimConfig())
	single := bgp.NewMerged()
	single.Add(sim.View(bgpsim.ViewConfig{Name: "AADS", Visibility: 0.25}, 0))
	b.Run("single-view", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			res := cluster.ClusterLog(f.log, cluster.NetworkAware{Table: single})
			cov = res.Coverage()
		}
		b.ReportMetric(cov*100, "coverage%")
	})
	b.Run("merged", func(b *testing.B) {
		var cov float64
		for i := 0; i < b.N; i++ {
			res := cluster.ClusterLog(f.log, cluster.NetworkAware{Table: f.table})
			cov = res.Coverage()
		}
		b.ReportMetric(cov*100, "coverage%")
	})
}

// BenchmarkAblationTraceroute compares classic and optimized traceroute
// probe costs over the same destinations.
func BenchmarkAblationTraceroute(b *testing.B) {
	f := setup(b)
	rng := rand.New(rand.NewSource(2))
	dsts := make([]netutil.Addr, 256)
	for i := range dsts {
		n := f.world.Networks[rng.Intn(len(f.world.Networks))]
		dsts[i] = n.RandomHost(rng)
	}
	b.Run("classic", func(b *testing.B) {
		tr := tracesim.New(f.world, f.world.VantageASes()[0])
		for i := 0; i < b.N; i++ {
			tr.Classic(dsts[i%len(dsts)])
		}
		b.ReportMetric(float64(tr.Probes)/float64(b.N), "probes/op")
	})
	b.Run("optimized", func(b *testing.B) {
		tr := tracesim.New(f.world, f.world.VantageASes()[0])
		for i := 0; i < b.N; i++ {
			tr.Optimized(dsts[i%len(dsts)])
		}
		b.ReportMetric(float64(tr.Probes)/float64(b.N), "probes/op")
	})
}

// BenchmarkAblationPCV compares piggyback cache validation against plain
// TTL expiry in the caching simulation.
func BenchmarkAblationPCV(b *testing.B) {
	f := setup(b)
	base := websim.DefaultConfig()
	base.CacheBytes = 10 << 20
	b.Run("pcv", func(b *testing.B) {
		var hr float64
		for i := 0; i < b.N; i++ {
			hr = websim.Simulate(f.na, base).HitRatio
		}
		b.ReportMetric(hr*100, "hit%")
	})
	b.Run("plain-ttl", func(b *testing.B) {
		cfg := base
		cfg.PCV = false
		var hr float64
		for i := 0; i < b.N; i++ {
			hr = websim.Simulate(f.na, cfg).HitRatio
		}
		b.ReportMetric(hr*100, "hit%")
	})
}

// BenchmarkSelfCorrection measures one correction pass.
func BenchmarkSelfCorrection(b *testing.B) {
	f := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr := &netcluster.Corrector{
			Resolver:   netcluster.NewResolver(f.world),
			Tracer:     netcluster.NewTracer(f.world, f.world.VantageASes()[0]),
			SampleSize: 3,
		}
		corr.Correct(f.na)
	}
}

// BenchmarkLogGeneration measures synthetic workload generation.
func BenchmarkLogGeneration(b *testing.B) {
	f := setup(b)
	cfg := netcluster.NaganoProfile(0.005)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netcluster.GenerateLog(f.world, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldGeneration measures ground-truth Internet generation.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := netcluster.DefaultWorldConfig()
	cfg.NumASes = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netcluster.GenerateWorld(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Churn / incremental recompilation (BENCH_clustering.json) -------------

// The acceptance bar for the incremental delta compiler: applying a 1%
// churn batch must beat recompiling the table from scratch by a wide
// margin (the clusterd service applies deltas on a ticker while serving
// lookups), and lookup latency through the RCU swap must be
// indistinguishable from a quiet table.
var (
	churnOnce   sync.Once
	churnMerged *bgp.Merged
	churnFwd    bgp.Delta // withdraw 1% of the BGP universe
	churnRev    bgp.Delta // re-announce the same entries
	churnAddrs  []netutil.Addr
)

func churnSetup(b testing.TB) {
	f := setup(b)
	churnOnce.Do(func() {
		sim := bgpsim.New(f.world, bgpsim.DefaultConfig())
		coll := sim.Collect()
		churnMerged = bgpsim.Merge(coll)
		// Deduplicated union of every vantage's entries, mirroring the
		// clusterd churn universe.
		seen := make(map[netutil.Prefix]bool)
		var entries []bgp.Entry
		for _, v := range coll.Views {
			for _, e := range v.Entries {
				if !seen[e.Prefix] {
					seen[e.Prefix] = true
					entries = append(entries, e)
				}
			}
		}
		// Every 100th prefix: a 1% batch spread across the whole table.
		n := len(entries) / 100
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			e := entries[i*100]
			churnRev.Ops = append(churnRev.Ops, bgp.Op{Kind: bgp.SourceBGP, Entry: e})
			churnFwd.Ops = append(churnFwd.Ops, bgp.Op{
				Withdraw: true, Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: e.Prefix},
			})
		}
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 4096; i++ {
			churnAddrs = append(churnAddrs, netutil.AddrFrom4(
				byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))))
		}
	})
}

// BenchmarkChurnDeltaApply measures one incremental generation swap for a
// 1% churn batch. Alternating the batch with its inverse keeps the table
// in a two-state steady cycle, so every iteration does comparable work.
func BenchmarkChurnDeltaApply(b *testing.B) {
	churnSetup(b)
	inc := bgp.NewIncremental(churnMerged)
	b.ReportMetric(float64(len(churnFwd.Ops)), "ops/delta")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			inc.Apply(churnFwd)
		} else {
			inc.Apply(churnRev)
		}
	}
}

// BenchmarkChurnFullRecompile is the baseline the delta compiler replaces:
// rebuilding the Compiled table from the merged tries on every change.
func BenchmarkChurnFullRecompile(b *testing.B) {
	churnSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnMerged.Compile()
	}
}

// BenchmarkChurnLookup compares lookup latency through a churn.Table at
// rest against one swapping generations ~1000x/sec underneath the
// readers. The p99-ns metric is the invariant: RCU publication must not
// add tail latency. (Per-op time includes one time.Now/Since pair of
// timer overhead; it is identical in both modes.)
func BenchmarkChurnLookup(b *testing.B) {
	churnSetup(b)
	for _, mode := range []string{"steady", "swapping"} {
		b.Run(mode, func(b *testing.B) {
			tb := churn.New(churnMerged)
			stop := make(chan struct{})
			done := make(chan struct{})
			if mode == "swapping" {
				go func() {
					defer close(done)
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if i%2 == 0 {
							tb.Apply(churnFwd)
						} else {
							tb.Apply(churnRev)
						}
						time.Sleep(time.Millisecond)
					}
				}()
			} else {
				close(done)
			}
			lat := make([]int64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				tb.Lookup(churnAddrs[i%len(churnAddrs)])
				lat = append(lat, int64(time.Since(t0)))
			}
			b.StopTimer()
			close(stop)
			<-done
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)*99/100]), "p99-ns")
		})
	}
}

// ---- Firehose: bounded busy-cluster accounting (BENCH_clustering.json) -----

// A Zipf-distributed /24 population far larger than the summary
// capacity, so the bounded path exercises its steady state: heavy
// hitters monitored, the tail spilling to the sketch on every
// eviction. Shared by both firehose benchmarks.
var (
	firehoseOnce     sync.Once
	firehoseKeys     []uint64
	firehosePrefixes []netutil.Prefix
)

func firehoseBenchSetup() {
	firehoseOnce.Do(func() {
		rng := rand.New(rand.NewSource(11))
		zipf := rand.NewZipf(rng, 1.07, 1, 1<<20-1)
		firehoseKeys = make([]uint64, 1<<16)
		firehosePrefixes = make([]netutil.Prefix, 1<<16)
		for i := range firehoseKeys {
			rank := zipf.Uint64()
			firehoseKeys[i] = rank
			// Injective rank -> /24 spread over the address space.
			base := netutil.Addr((rank * 2654435761 & 0xFFFFFF) << 8)
			firehosePrefixes[i] = netutil.PrefixFrom(base, 24)
		}
	})
}

// BenchmarkSketchUpdate prices one conservative count-min update at the
// accumulator's default dimensions — the per-eviction cost of the spill
// path. Gated in cmd/benchdiff with allocs/op == 0: the whole point of
// the sketch is that the hot path never touches the allocator.
func BenchmarkSketchUpdate(b *testing.B) {
	firehoseBenchSetup()
	cm, err := sketch.NewCountMinError(1e-4, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.AddConservative(firehoseKeys[i%len(firehoseKeys)], 1)
	}
}

// BenchmarkBoundedStream prices one address through the bounded
// accumulator in eviction steady state (1M-cluster universe, 4096
// monitored counters): summary hit or evict-and-spill, whichever the
// Zipf draw lands on. Also benchdiff-gated at allocs/op == 0 — a
// firehose consumer must not generate garbage per request.
func BenchmarkBoundedStream(b *testing.B) {
	firehoseBenchSetup()
	acc, err := cluster.NewBoundedAccumulator(cluster.BoundedConfig{
		K: 32, Capacity: 4096, Epsilon: 1e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-fill past capacity so evictions happen from iteration one.
	for _, p := range firehosePrefixes {
		acc.Observe(p, 200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Observe(firehosePrefixes[i%len(firehosePrefixes)], 200)
	}
}

// ---- Sharded cluster benchmarks (internal/shard) ---------------------------

var (
	shardOnce      sync.Once
	shardCluster   *shard.Cluster
	shardErr       error
	shardMixed     []netutil.Addr // spread across all three shards
	shardFirstOnly []netutil.Addr // all owned by shard 0
)

// shardSetup stands up one in-process 3-shard cluster (compiler feed,
// three follower nodes, router — real HTTP on loopback) shared by every
// router/feed benchmark, plus two probe sets: one spread across the
// shard map and one confined to shard 0.
func shardSetup(b testing.TB) {
	shardOnce.Do(func() {
		shardCluster, shardErr = shard.NewCluster(shard.ClusterConfig{Shards: 3})
		if shardErr != nil {
			return
		}
		rng := rand.New(rand.NewSource(99))
		firstMax := uint32(shardCluster.Map.Shards[0].LastBlock) + 1
		for i := 0; i < 4096; i++ {
			shardMixed = append(shardMixed, netutil.Addr(rng.Uint32()))
			shardFirstOnly = append(shardFirstOnly, netutil.Addr(
				rng.Uint32()%(firstMax<<24)))
		}
	})
	if shardErr != nil {
		b.Fatalf("shard cluster: %v", shardErr)
	}
}

// BenchmarkRouterFanout measures a routed batch spread across all three
// shards: group, three concurrent shard POSTs, merge back into input
// order. The ns/addr metric is the router's per-address overhead.
func BenchmarkRouterFanout(b *testing.B) {
	shardSetup(b)
	const batch = 512
	addrs := shardMixed[:batch]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := shardCluster.Router.Batch(addrs)
		if len(resp.Degradation) != 0 {
			b.Fatalf("degraded: %v", resp.Degradation)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/addr")
}

// BenchmarkRouterSingleShard is the same batch size confined to one
// shard — the no-parallelism baseline. benchdiff's -min-shard-scaling
// gate is the ratio of this bench's ns/op to BenchmarkRouterFanout's:
// fanning out must not cost more than the floor says.
func BenchmarkRouterSingleShard(b *testing.B) {
	shardSetup(b)
	const batch = 512
	addrs := shardFirstOnly[:batch]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := shardCluster.Router.Batch(addrs)
		if len(resp.Degradation) != 0 {
			b.Fatalf("degraded: %v", resp.Degradation)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/addr")
}

// BenchmarkTraceHeaderInject prices stamping the X-Netcluster-Trace
// header onto an outbound fan-out request — the per-shard cost the
// router pays on every traced batch, gated by benchdiff.
func BenchmarkTraceHeaderInject(b *testing.B) {
	ctx, span := obsv.StartTraceSpan(context.Background(), "bench.inject")
	defer span.End()
	h := make(http.Header, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obsv.HTTPInject(ctx, h)
	}
}

// BenchmarkTraceHeaderExtract prices parsing an inbound trace header
// into a span context — what every shard node pays per traced request.
func BenchmarkTraceHeaderExtract(b *testing.B) {
	ctx, span := obsv.StartTraceSpan(context.Background(), "bench.extract")
	span.End()
	h := make(http.Header, 4)
	obsv.HTTPInject(ctx, h)
	base := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obsv.HTTPExtract(base, h)
	}
}

// BenchmarkDeltaBroadcast measures one full delta distribution round:
// the compiler sequences and applies a churn delta, and every follower
// fetches and applies it over HTTP until the whole cluster stands at
// the new generation.
func BenchmarkDeltaBroadcast(b *testing.B) {
	shardSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := shardCluster.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
