package netcluster_test

// Chaos acceptance test: the live validation pipeline — network-aware
// clustering of a synthetic access log, then per-cluster verification over
// a real DNS wire exchange — must survive a seeded 20% packet-drop /
// 50ms-jitter fault profile. The verdicts under faults must agree with the
// fault-free run on at least 95% of sampled clusters, and the degradation
// counters (retries, breaker opens, demoted clients) must record the cost
// of that agreement rather than hiding it.

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnswire"
	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/weblog"
)

// dumpFlightRecorder logs the tail of the process flight recorder when
// the test fails: for a chaos failure the recent dnswire.query /
// dnswire.attempt spans (attempt counts, backoffs, breaker states,
// errors) are usually the whole diagnosis. Registered via t.Cleanup so it
// fires after the failing assertion.
func dumpFlightRecorder(t *testing.T) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		spans := obsv.DefaultRing.Snapshot()
		const tail = 80
		if len(spans) > tail {
			spans = spans[len(spans)-tail:]
		}
		t.Logf("flight recorder: %d spans recorded, %d dropped; last %d:",
			obsv.DefaultRing.Recorded(), obsv.DefaultRing.Dropped(), len(spans))
		if len(spans) == 0 {
			return
		}
		base := spans[0].Start
		for _, s := range spans {
			var b strings.Builder
			for _, a := range s.Attrs {
				b.WriteString(" ")
				b.WriteString(a.Key)
				b.WriteString("=")
				b.WriteString(a.Value)
			}
			if s.Err != "" {
				b.WriteString(" err=")
				b.WriteString(s.Err)
			}
			t.Logf("  +%-12v %-10v trace=%d span=%d parent=%d %s%s",
				s.Start.Sub(base), s.Duration, s.TraceID, s.SpanID, s.ParentID, s.Name, b.String())
		}
	})
}

// chaosWorld builds a small but realistic pipeline input: world, merged
// routing table, Nagano-profile log, and its network-aware clustering.
func chaosWorld(t *testing.T) (*inet.Internet, []*cluster.Cluster) {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.Seed = 42
	cfg.NumASes = 360
	world, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bcfg := bgpsim.DefaultConfig()
	bcfg.Seed = 42
	merged := bgpsim.Merge(bgpsim.New(world, bcfg).Collect())
	log, err := weblog.Generate(world, weblog.Nagano(0.01))
	if err != nil {
		t.Fatal(err)
	}
	res := cluster.ClusterLog(log, cluster.NetworkAware{Table: merged})
	sampled := validate.Sample(res.Clusters, 0.25, 42)
	if len(sampled) > 20 {
		sampled = sampled[:20]
	}
	if len(sampled) < 5 {
		t.Fatalf("sample too small to be meaningful: %d clusters", len(sampled))
	}
	return world, sampled
}

// liveNslookup runs the nslookup validation method against a live DNS
// server (optionally behind faults) and returns the report plus the
// injected-fault statistics.
func liveNslookup(t *testing.T, world *inet.Internet, sampled []*cluster.Cluster, prof faultnet.Profile, seed int64) (validate.Report, faultnet.Stats) {
	t.Helper()
	srv := dnswire.NewServer(dnswire.NewReverseZone(world))
	var inj *faultnet.Injector
	if prof != (faultnet.Profile{}) {
		inj = faultnet.New(prof)
		srv.Wrap = inj.PacketConn
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dnswire.NewClient(addr.String())
	c.Seed(seed)
	c.Timeout = 150 * time.Millisecond
	c.Retries = 5
	c.Backoff.BaseDelay = 5 * time.Millisecond
	c.Backoff.MaxDelay = 40 * time.Millisecond
	rep := validate.Nslookup(world, dnswire.SuffixResolver{Client: c}, sampled)
	var st faultnet.Stats
	if inj != nil {
		st = inj.Stats()
	}
	return rep, st
}

func TestChaosValidationPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	dumpFlightRecorder(t)
	world, sampled := chaosWorld(t)

	// Fault-free baseline over the live wire.
	base, _ := liveNslookup(t, world, sampled, faultnet.Profile{}, 1)
	if base.SampledClusters != len(sampled) {
		t.Fatalf("baseline covered %d/%d clusters", base.SampledClusters, len(sampled))
	}
	if base.Degradation.Any() {
		t.Fatalf("fault-free run must not degrade: %+v", base.Degradation)
	}

	// The acceptance profile: 20% request drop, 50ms response jitter.
	prof := faultnet.Profile{
		Seed:     42,
		Inbound:  faultnet.Faults{Drop: 0.20},
		Outbound: faultnet.Faults{Jitter: 50 * time.Millisecond},
	}
	got, faults := liveNslookup(t, world, sampled, prof, 2)
	if got.SampledClusters != len(sampled) {
		t.Fatalf("chaos run covered %d/%d clusters", got.SampledClusters, len(sampled))
	}
	if faults.Drops == 0 {
		t.Fatalf("injector never fired: %+v", faults)
	}
	if got.Degradation.Retries == 0 {
		t.Fatal("20% loss must force retries; counter is zero")
	}

	// Verdict convergence: >= 95% positional agreement with the clean run.
	match := 0
	for i := range base.Verdicts {
		if base.Verdicts[i].Pass == got.Verdicts[i].Pass {
			match++
		}
	}
	agree := float64(match) / float64(len(base.Verdicts))
	if agree < 0.95 {
		t.Fatalf("verdict agreement %.1f%% < 95%% (faults %+v, degradation %+v)",
			agree*100, faults, got.Degradation)
	}
	t.Logf("agreement %.1f%%, faults %+v, degradation %+v", agree*100, faults, got.Degradation)
}

// TestChaosDeadResolverDegradesGracefully pins the breaker-open and
// demotion counters deterministically: a resolver address with nothing
// listening fails every exchange, the breaker opens after two failures,
// and every affected client is demoted to unresolvable — yet the
// validation run still completes and reports verdicts.
func TestChaosDeadResolverDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	dumpFlightRecorder(t)
	world, sampled := chaosWorld(t)

	// Grab a loopback UDP port and release it: queries go nowhere.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := pc.LocalAddr().String()
	pc.Close()

	c := dnswire.NewClient(dead)
	c.Seed(3)
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	c.Backoff.BaseDelay = time.Millisecond
	c.Breaker = retry.NewBreaker(2, time.Hour)

	rep := validate.Nslookup(world, dnswire.SuffixResolver{Client: c}, sampled)
	if rep.SampledClusters != len(sampled) {
		t.Fatalf("dead-resolver run aborted: %d/%d clusters", rep.SampledClusters, len(sampled))
	}
	deg := rep.Degradation
	if deg.DemotedClients == 0 || deg.BreakerOpens == 0 {
		t.Fatalf("dead resolver must demote clients and open the breaker: %+v", deg)
	}
	if deg.FastFails == 0 {
		t.Fatalf("open breaker must fast-fail later lookups: %+v", deg)
	}
	if rep.ReachableClients != 0 {
		t.Fatalf("no client can resolve through a dead resolver: %d reachable", rep.ReachableClients)
	}
	t.Logf("degradation %+v over %d clients", deg, rep.SampledClients)
}
