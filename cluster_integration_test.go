package netcluster_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// daemon is one running clusterd/clusterrouter process with its
// announced base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
	tail *strings.Builder
}

// startDaemon launches a binary and scans stderr for the "serving on
// http://..." announcement, draining the rest of the pipe in the
// background so the child never blocks on a full stderr.
func startDaemon(t *testing.T, name string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, tail: &strings.Builder{}}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		line := sc.Text()
		d.tail.WriteString(line + "\n")
		if i := strings.Index(line, "serving on http://"); i >= 0 {
			d.base = "http://" + strings.Fields(line[i+len("serving on http://"):])[0]
			break
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if d.base == "" {
		t.Fatalf("%s never announced its address:\n%s", name, d.tail.String())
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return d
}

// stopDaemon SIGTERMs the process and waits for a clean drain.
func stopDaemon(t *testing.T, d *daemon) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not drain within 30s")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		t.Fatalf("GET %s = %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func healthGen(t *testing.T, base string) uint64 {
	t.Helper()
	var h struct {
		Generation uint64 `json:"generation"`
	}
	getJSON(t, base+"/healthz", &h)
	return h.Generation
}

type wireBatch struct {
	Generation uint64 `json:"generation"`
	Results    []struct {
		Addr       string `json:"addr"`
		Clustered  bool   `json:"clustered"`
		Prefix     string `json:"prefix"`
		Kind       string `json:"kind"`
		Generation uint64 `json:"generation"`
	} `json:"results"`
}

type wireRouterBatch struct {
	Generation  uint64            `json:"generation"`
	Degradation map[string]string `json:"degradation"`
	Results     []struct {
		Addr       string `json:"addr"`
		Clustered  bool   `json:"clustered"`
		Prefix     string `json:"prefix"`
		Kind       string `json:"kind"`
		Generation uint64 `json:"generation"`
		Shard      int    `json:"shard"`
		Error      string `json:"error"`
	} `json:"results"`
}

func postBatch(t *testing.T, base string, body string, v any) {
	t.Helper()
	resp, err := http.Post(base+"/cluster", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		t.Fatalf("POST %s/cluster = %s: %s", base, resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// routerAgrees fetches the same batch from the routed cluster and the
// compiler node inside one quiet churn window (all generations equal)
// and compares every answer. Returns false — without failing — when a
// swap landed mid-comparison; the caller retries.
func routerAgrees(t *testing.T, routerBase, compilerBase, body string) bool {
	t.Helper()
	g1 := healthGen(t, compilerBase)
	var routed wireRouterBatch
	postBatch(t, routerBase, body, &routed)
	var ref wireBatch
	postBatch(t, compilerBase, body, &ref)
	if len(routed.Degradation) != 0 {
		t.Fatalf("healthy cluster degraded: %v", routed.Degradation)
	}
	if ref.Generation != g1 || routed.Generation != g1 {
		return false // a swap landed mid-window; retry
	}
	if len(routed.Results) != len(ref.Results) {
		t.Fatalf("router returned %d results, compiler %d", len(routed.Results), len(ref.Results))
	}
	for i, rr := range routed.Results {
		if rr.Error != "" {
			t.Fatalf("row %d carries error %q in a healthy cluster", i, rr.Error)
		}
		if rr.Generation != g1 {
			return false // this row's shard was mid-catch-up; retry
		}
		want := ref.Results[i]
		if rr.Addr != want.Addr || rr.Clustered != want.Clustered ||
			rr.Prefix != want.Prefix || rr.Kind != want.Kind {
			t.Fatalf("row %d: router %+v != compiler %+v", i, rr, want)
		}
	}
	return true
}

// TestClusterDeploymentEquivalence stands up the deployable form of the
// sharded service — a compiler clusterd (-feed-serve), two shard
// clusterds (-feed, -shard-index), and a clusterrouter — and proves the
// routed answers match the compiler node's under live churn. It then
// drains one shard to a snapshot (-snapshot-out), warm-starts it from
// that file (-table-snapshot + -feed), and proves equivalence again —
// the whole restart cycle without ever recompiling a world.
func TestClusterDeploymentEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}

	compiler := startDaemon(t, "clusterd",
		"-addr", "127.0.0.1:0",
		"-ases", "150",
		"-seed", "3",
		"-churn-every", "150ms",
		"-mean-batch", "16",
		"-feed-serve")

	dir := t.TempDir()
	snapPath := filepath.Join(dir, "shard0.nct")
	shardArgs := func(i int) []string {
		return []string{
			"-addr", "127.0.0.1:0",
			"-feed", compiler.base,
			"-feed-poll", "50ms",
			"-shard-index", fmt.Sprint(i),
			"-shard-count", "2",
		}
	}
	shard0 := startDaemon(t, "clusterd", append(shardArgs(0), "-snapshot-out", snapPath)...)
	shard1 := startDaemon(t, "clusterd", shardArgs(1)...)
	router := startDaemon(t, "clusterrouter",
		"-addr", "127.0.0.1:0",
		"-shards", shard0.base+","+shard1.base)

	// A probe set straddling both shards (low and high /8 blocks) plus
	// guaranteed misses.
	var sb strings.Builder
	for _, a := range []string{
		"1.2.3.4", "12.65.147.94", "63.255.0.1", "64.0.0.1",
		"100.50.25.12", "128.9.160.27", "200.1.2.3", "255.254.253.252",
	} {
		sb.WriteString(a + "\n")
	}
	probes := sb.String()

	// Let churn move past the seed table, then find a quiet window where
	// the whole cluster stands at one generation and compare.
	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	waitFor("churn to advance", func() bool { return healthGen(t, compiler.base) >= 3 })
	waitFor("cluster-wide equivalence", func() bool {
		return routerAgrees(t, router.base, compiler.base, probes)
	})

	// Drain shard 0: the snapshot plus its stream-position sidecar must
	// land on disk.
	addr0 := strings.TrimPrefix(shard0.base, "http://")
	stopDaemon(t, shard0)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if _, err := os.Stat(snapPath + ".meta"); err != nil {
		t.Fatalf("snapshot sidecar not written: %v", err)
	}

	// Warm-start it on the same address from the saved table (the
	// router's map still points there). The feed has moved on meanwhile,
	// so the node catches up from its sidecar position (or resyncs) —
	// either way the router must agree again.
	startDaemon(t, "clusterd", append([]string{
		"-addr", addr0,
		"-table-snapshot", snapPath,
	}, shardArgs(0)[2:]...)...)
	waitFor("warm-started shard to rejoin", func() bool {
		return routerAgrees(t, router.base, compiler.base, probes)
	})
}
