package netcluster_test

// End-to-end test of the cluster observability surface on real binaries:
// a compiler clusterd, two shard clusterds and a clusterrouter, proving
// (a) one TraceID spans the router's fan-out and every shard's
// server-side spans — checked by merging the three processes'
// /debug/trace dumps with tracecheck -merge -require-shared-trace,
// (b) the router's /metrics/cluster page is parseable Prometheus text
// with per-shard labels and nonzero cluster-wide quantiles, and
// (c) a slow shard's feed-lag gauge rises while churn outruns its poll
// cadence and returns to zero once churn pauses — the make
// cluster-obsv-smoke / CI lane acceptance path.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// obsvArtifact writes an artifact into $CLUSTER_OBSV_ARTIFACTS (the CI
// upload dir) or the test's temp dir, returning the path.
func obsvArtifact(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClusterObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	artifacts := os.Getenv("CLUSTER_OBSV_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	} else if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}

	// The compiler churns on a hot-reloadable cadence so the lag phase
	// can pause the feed by rewriting the config.
	cfgPath := filepath.Join(t.TempDir(), "compiler.json")
	if err := os.WriteFile(cfgPath, []byte(`{"churn_every": "100ms"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	compiler := startDaemon(t, "clusterd",
		"-addr", "127.0.0.1:0",
		"-ases", "150",
		"-seed", "3",
		"-mean-batch", "8",
		"-feed-serve",
		"-config", cfgPath,
		"-config-poll", "100ms")

	// Shard 0 keeps up; shard 1 polls far slower than churn, so its
	// generation lag is real and visible between fetches.
	shard0 := startDaemon(t, "clusterd",
		"-addr", "127.0.0.1:0",
		"-feed", compiler.base,
		"-feed-poll", "100ms",
		"-shard-index", "0", "-shard-count", "2")
	shard1 := startDaemon(t, "clusterd",
		"-addr", "127.0.0.1:0",
		"-feed", compiler.base,
		"-feed-poll", "2500ms",
		"-shard-index", "1", "-shard-count", "2")
	router := startDaemon(t, "clusterrouter",
		"-addr", "127.0.0.1:0",
		"-shards", shard0.base+","+shard1.base,
		"-federate-every", "100ms")

	var sb strings.Builder
	for _, a := range []string{
		"1.2.3.4", "12.65.147.94", "63.255.0.1", "64.0.0.1",
		"100.50.25.12", "128.9.160.27", "200.1.2.3", "255.254.253.252",
	} {
		sb.WriteString(a + "\n")
	}
	probes := sb.String()

	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// ---- Phase 1: trace propagation across processes ----------------

	// Batches rooted at the router: each one should stitch router and
	// both shards into a single trace.
	for i := 0; i < 3; i++ {
		var resp wireRouterBatch
		postBatch(t, router.base, probes, &resp)
		if len(resp.Degradation) != 0 {
			t.Fatalf("healthy cluster degraded: %v", resp.Degradation)
		}
	}
	// One batch carrying a caller-supplied trace header: its (known)
	// TraceID must surface in all three processes' dumps, proving the
	// full client → router → shard propagation chain deterministically.
	const clientTraceID = uint64(0xdeadbeef0001)
	req, err := http.NewRequest(http.MethodPost, router.base+"/cluster", strings.NewReader(probes))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obsv.TraceHeader,
		fmt.Sprintf("00-%032x-%016x-01", clientTraceID, uint64(0xc11e47)))
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("traced batch = %s", res.Status)
	}

	dumps := make([][]byte, 0, 3)
	var dumpPaths []string
	for _, d := range []struct {
		name string
		base string
	}{{"router", router.base}, {"shard0", shard0.base}, {"shard1", shard1.base}} {
		body, _ := httpGetRetry(t, d.base+"/debug/trace")
		if _, err := obsv.ValidateChromeTrace([]byte(body)); err != nil {
			t.Fatalf("%s /debug/trace invalid: %v", d.name, err)
		}
		dumps = append(dumps, []byte(body))
		dumpPaths = append(dumpPaths, obsvArtifact(t, artifacts, d.name+".json", []byte(body)))
	}

	shared, err := obsv.SharedChromeTraceIDs(dumps)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) == 0 {
		t.Fatal("no TraceID spans router + both shards — header propagation broken")
	}
	found := false
	for _, id := range shared {
		if id == clientTraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("caller-supplied TraceID %d not among shared ids %v", clientTraceID, shared)
	}

	// The shipped checker agrees and produces the merged artifact CI
	// uploads.
	mergedPath := filepath.Join(artifacts, "merged.json")
	out, _ := run(t, "tracecheck", append([]string{
		"-merge", mergedPath, "-require-shared-trace"}, dumpPaths...)...)
	if !strings.Contains(out, "span all 3 inputs") {
		t.Fatalf("tracecheck merge output: %q", out)
	}

	// ---- Phase 2: federated metrics ---------------------------------

	page, hdr := httpGetRetry(t, router.base+"/metrics/cluster")
	obsvArtifact(t, artifacts, "metrics-cluster.txt", []byte(page))
	if ct := hdr.Get("Content-Type"); ct != obsv.PrometheusContentType {
		t.Errorf("/metrics/cluster Content-Type = %q", ct)
	}
	series := parsePrometheusText(t, page) // fails on duplicates/undeclared families

	if series["netcluster_cluster_shards"] != 2 || series["netcluster_cluster_live_shards"] != 2 {
		t.Errorf("cluster membership gauges wrong: shards=%v live=%v",
			series["netcluster_cluster_shards"], series["netcluster_cluster_live_shards"])
	}
	for _, shardLabel := range []string{"0", "1"} {
		key := fmt.Sprintf("netcluster_clusterd_batches_total{shard=%q}", shardLabel)
		if series[key] == 0 {
			t.Errorf("series %s missing or zero after routed batches", key)
		}
	}
	if v := series["netcluster_clusterd_batch_ns_cluster_p99"]; v <= 0 {
		t.Errorf("cluster-wide batch latency p99 = %v, want > 0", v)
	}
	var labeledBuckets bool
	for key := range series {
		if strings.HasPrefix(key, "netcluster_clusterd_batch_ns_bucket{shard=") {
			labeledBuckets = true
			break
		}
	}
	if !labeledBuckets {
		t.Error("no per-shard histogram buckets on the federated page")
	}

	// Router readiness folds the same aggregator state.
	readyRes, err := http.Get(router.base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyBody, _ := io.ReadAll(readyRes.Body)
	readyRes.Body.Close()
	if readyRes.StatusCode != http.StatusOK || !strings.Contains(string(readyBody), "ready shards=2/2") {
		t.Errorf("router readyz = %d %q", readyRes.StatusCode, readyBody)
	}

	// ---- Phase 3: follower lag SLO ----------------------------------

	// Shard 1's poll (2.5 s) is far slower than churn (100 ms), so its
	// lag monitor must report a growing generation distance in between
	// fetches, surfaced through /readyz.
	shardLag := func(base string) uint64 {
		var r struct {
			FeedLag *uint64 `json:"feed_lag_generations"`
		}
		getJSON(t, base+"/readyz", &r)
		if r.FeedLag == nil {
			t.Fatalf("follower %s readyz has no feed_lag_generations", base)
		}
		return *r.FeedLag
	}
	waitFor("slow shard's feed lag to rise", func() bool { return shardLag(shard1.base) >= 2 })

	// Pause churn via config hot-reload (SIGHUP forces the re-read);
	// once the feed head stops moving the slow shard catches up and the
	// gauge must settle back to zero.
	if err := os.WriteFile(cfgPath, []byte(`{"churn_every": "0s"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compiler.cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	zeroStreak := 0
	waitFor("slow shard's feed lag to return to zero", func() bool {
		if shardLag(shard1.base) == 0 {
			zeroStreak++
		} else {
			zeroStreak = 0
		}
		if zeroStreak > 0 && zeroStreak < 3 {
			time.Sleep(650 * time.Millisecond) // > one lag-monitor period
		}
		return zeroStreak >= 3
	})

	// The whole cluster agrees once caught up — observability did not
	// perturb correctness.
	waitFor("post-pause cluster equivalence", func() bool {
		return routerAgrees(t, router.base, compiler.base, probes)
	})

	readyJSON, _ := json.Marshal(map[string]any{"shared_trace_ids": shared})
	obsvArtifact(t, artifacts, "summary.json", readyJSON)
}
