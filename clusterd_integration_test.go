package netcluster_test

// Integration test of the clusterd service: start it on an ephemeral
// port with fast synthetic churn, exercise every endpoint, watch the
// table generation advance across swaps, and verify a SIGTERM drain
// exits cleanly and writes the metrics snapshot.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

type clusterdLookup struct {
	Addr       string `json:"addr"`
	Clustered  bool   `json:"clustered"`
	Prefix     string `json:"prefix"`
	Kind       string `json:"kind"`
	Generation uint64 `json:"generation"`
}

type clusterdHealth struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Prefixes   int    `json:"prefixes"`
}

func TestClusterdServiceLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.json")

	cmd := exec.Command(filepath.Join(buildTools(t), "clusterd"),
		"-addr", "127.0.0.1:0",
		"-ases", "150",
		"-seed", "3",
		"-churn-every", "150ms",
		"-metrics-out", metricsPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Parse the announced address off stderr, then keep draining the pipe
	// so swap logging never blocks the service.
	sc := bufio.NewScanner(stderr)
	base := ""
	var stderrTail strings.Builder
	for sc.Scan() {
		line := sc.Text()
		stderrTail.WriteString(line + "\n")
		if i := strings.Index(line, "serving on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("serving on http://"):])[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("clusterd never announced its address:\n%s", stderrTail.String())
	}
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
		drained <- rest.String()
	}()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body
	}

	// Health: a live table with prefixes.
	var health clusterdHealth
	if _, body := get("/healthz"); json.Unmarshal(body, &health) != nil || health.Status != "ok" {
		t.Fatalf("healthz: %s", body)
	}
	if health.Prefixes == 0 {
		t.Fatal("healthz reports an empty table")
	}

	// Lookup: valid address answers (clustered or not), bad address 400s.
	var lk clusterdLookup
	if resp, body := get("/lookup?addr=12.65.147.94"); resp.StatusCode != http.StatusOK {
		t.Fatalf("lookup status %d: %s", resp.StatusCode, body)
	} else if err := json.Unmarshal(body, &lk); err != nil || lk.Addr != "12.65.147.94" {
		t.Fatalf("lookup body: %s (%v)", body, err)
	}
	if resp, _ := get("/lookup?addr=not-an-ip"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad lookup returned %d, want 400", resp.StatusCode)
	}

	// Batch: every line answered, generation pinned across the batch.
	batchBody := "12.65.147.94\n10.1.2.3\n\n4.4.4.4\n"
	resp, err := http.Post(base+"/cluster", "text/plain", strings.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var batch struct {
		Generation uint64           `json:"generation"`
		Results    []clusterdLookup `json:"results"`
	}
	if err := json.Unmarshal(raw, &batch); err != nil {
		t.Fatalf("batch body: %s (%v)", raw, err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("batch answered %d addresses, want 3 (blank lines skipped)", len(batch.Results))
	}
	for _, r := range batch.Results {
		if r.Generation != batch.Generation {
			t.Fatalf("mixed generations in one batch: %d vs %d", r.Generation, batch.Generation)
		}
	}

	// GET on the batch endpoint is rejected.
	if resp, _ := get("/cluster"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /cluster returned %d, want 405", resp.StatusCode)
	}

	// Metrics: Prometheus exposition includes the churn and service series.
	if _, body := get("/metrics"); !strings.Contains(string(body), "netcluster_churn_generation") ||
		!strings.Contains(string(body), "netcluster_clusterd_lookups_total") {
		t.Fatalf("metrics exposition missing expected series:\n%.500s", body)
	}

	// Generation advances: with -churn-every 150ms two polls 600ms apart
	// must observe progress.
	gen0 := health.Generation
	deadline := time.Now().Add(10 * time.Second)
	advanced := false
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		var h clusterdHealth
		_, body := get("/healthz")
		if json.Unmarshal(body, &h) == nil && h.Generation > gen0 {
			advanced = true
			break
		}
	}
	if !advanced {
		t.Fatal("table generation never advanced under churn")
	}

	// SIGTERM: clean exit, drain logged, metrics snapshot written. The
	// stderr tail must be collected before cmd.Wait: Wait closes the pipe
	// once the child exits, racing the scanner out of the final drain
	// lines. EOF on the pipe implies the child has exited, so waiting for
	// the tail first loses nothing.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail string
	select {
	case tail = <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("clusterd did not exit within 15s of SIGTERM")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clusterd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("clusterd did not exit within 15s of SIGTERM")
	}
	if !strings.Contains(tail, "draining") || !strings.Contains(tail, "drained at generation") {
		t.Errorf("drain log missing:\n%s", tail)
	}
	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(snap, &metrics); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v\n%.300s", err, snap)
	}
	if metrics.Counters["churn.swaps"] == 0 {
		t.Errorf("snapshot records no swaps: %v", metrics.Counters)
	}
	if metrics.Counters["clusterd.lookups"] == 0 {
		t.Errorf("snapshot records no lookups: %v", metrics.Counters)
	}
}

func TestClusterdBackpressure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	// One inflight slot: hold it with a slow streaming batch and verify a
	// concurrent batch gets 503 + Retry-After instead of queueing.
	cmd := exec.Command(filepath.Join(buildTools(t), "clusterd"),
		"-addr", "127.0.0.1:0",
		"-ases", "120",
		"-seed", "5",
		"-churn-every", "0",
		"-max-inflight", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("serving on http://"):])[0]
			break
		}
	}
	if base == "" {
		t.Fatal("clusterd never announced its address")
	}
	go func() {
		for sc.Scan() {
		}
	}()

	// Occupy the single slot with a slow streaming body, then probe.
	slowBody, slowWriter := io.Pipe()
	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(base+"/cluster", "text/plain", slowBody)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		slowDone <- err
	}()
	slowWriter.Write([]byte("10.0.0.1\n"))

	// The slot is held until we close the writer; a concurrent batch must
	// be rejected with 503 + Retry-After.
	got503 := false
	for attempt := 0; attempt < 100 && !got503; attempt++ {
		resp, err := http.Post(base+"/cluster", "text/plain", strings.NewReader("10.0.0.2\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
			got503 = true
		}
		time.Sleep(20 * time.Millisecond)
	}
	slowWriter.Close()
	if err := <-slowDone; err != nil {
		t.Fatalf("slow batch failed: %v", err)
	}
	if !got503 {
		t.Fatal("backpressure never rejected a concurrent batch")
	}

	// After the slot frees, batches succeed again.
	var ok bool
	for attempt := 0; attempt < 50; attempt++ {
		resp, err := http.Post(base+"/cluster", "text/plain", strings.NewReader("10.0.0.3\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatal("batches still rejected after the inflight slot freed")
	}
}
