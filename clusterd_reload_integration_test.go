package netcluster_test

// Hot-reload integration test of clusterd's ops plane: a watched config
// file retunes admission limits and push-sink endpoints on a live
// process under concurrent traffic — zero failed lookups, in-flight
// batches unharmed — while invalid edits are rejected with the previous
// generation serving and readiness flipped false. The SIGTERM drain
// then proves the durability contract: the file sink's newline-JSON
// journal, deduplicated by sequence number and summed, agrees exactly
// with the final -metrics-out snapshot.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// exportBatch mirrors the sink wire format.
type exportBatch struct {
	Seq     uint64 `json:"seq"`
	UnixMs  int64  `json:"unix_ms"`
	Samples []struct {
		Name  string  `json:"name"`
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
	} `json:"samples"`
}

// pushReceiver is a dedup-by-seq HTTP collector.
type pushReceiver struct {
	mu       sync.Mutex
	seen     map[uint64]bool
	counters map[string]float64
	batches  int
}

func newPushReceiver() *pushReceiver {
	return &pushReceiver{seen: make(map[uint64]bool), counters: make(map[string]float64)}
}

func (p *pushReceiver) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	var b exportBatch
	if json.Unmarshal(body, &b) != nil {
		http.Error(w, "bad batch", http.StatusBadRequest)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batches++
	if p.seen[b.Seq] {
		return
	}
	p.seen[b.Seq] = true
	for _, s := range b.Samples {
		if s.Kind == "counter" {
			p.counters[s.Name] += s.Value
		}
	}
}

func (p *pushReceiver) counter(name string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters[name]
}

func (p *pushReceiver) batchCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.batches
}

// sumJournal folds a file sink's newline-JSON journal into deduplicated
// counter totals.
func sumJournal(t *testing.T, path string) map[string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	defer f.Close()
	seen := make(map[uint64]bool)
	totals := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var b exportBatch
		if err := json.Unmarshal([]byte(line), &b); err != nil {
			t.Fatalf("journal line not a batch: %v\n%s", err, line)
		}
		if seen[b.Seq] {
			continue
		}
		seen[b.Seq] = true
		for _, s := range b.Samples {
			if s.Kind == "counter" {
				totals[s.Name] += s.Value
			}
		}
	}
	return totals
}

func TestClusterdConfigHotReload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "clusterd.json")
	journalPath := filepath.Join(dir, "journal.ndjson")
	metricsPath := filepath.Join(dir, "metrics.json")
	walDir := filepath.Join(dir, "wal")

	recvA := newPushReceiver()
	srvA := httptest.NewServer(recvA)
	defer srvA.Close()
	recvB := newPushReceiver()
	srvB := httptest.NewServer(recvB)
	defer srvB.Close()

	writeCfg := func(body string) {
		t.Helper()
		if err := os.WriteFile(cfgPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Generation 1: one admission slot, push to receiver A, journal to
	// the file sink.
	writeCfg(fmt.Sprintf(`{
		"max_inflight": 1,
		"sinks": [
			{"name": "push", "type": "http", "endpoint": %q, "interval": "100ms"},
			{"name": "journal", "type": "file", "path": %q, "interval": "100ms"}
		]
	}`, srvA.URL, journalPath))

	cmd := exec.Command(filepath.Join(buildTools(t), "clusterd"),
		"-addr", "127.0.0.1:0",
		"-ases", "120",
		"-seed", "7",
		"-churn-every", "300ms",
		"-max-inflight", "4", // shadowed by the config file: warn expected
		"-config", cfgPath,
		"-config-poll", "100ms",
		"-sink-dir", walDir,
		"-metrics-out", metricsPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	sc := bufio.NewScanner(stderr)
	base := ""
	var head strings.Builder
	for sc.Scan() {
		line := sc.Text()
		head.WriteString(line + "\n")
		if i := strings.Index(line, "serving on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("serving on http://"):])[0]
			break
		}
	}
	if base == "" {
		t.Fatalf("clusterd never announced its address:\n%s", head.String())
	}
	drained := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text() + "\n")
		}
		drained <- rest.String()
	}()

	// The config file's max_inflight shadows the explicit -max-inflight
	// flag, and says so.
	if !strings.Contains(head.String(), "config_shadows_flag") || !strings.Contains(head.String(), "max_inflight") {
		t.Errorf("no structured shadow warning for max_inflight:\n%s", head.String())
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	type debugConfig struct {
		Generation uint64 `json:"generation"`
		Effective  struct {
			MaxInflight int `json:"max_inflight"`
		} `json:"effective"`
		LastError string `json:"last_error"`
	}
	readConfig := func() debugConfig {
		t.Helper()
		_, body := get("/debug/config")
		var dc debugConfig
		if err := json.Unmarshal(body, &dc); err != nil {
			t.Fatalf("/debug/config: %v\n%s", err, body)
		}
		return dc
	}
	waitGeneration := func(want uint64) debugConfig {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			dc := readConfig()
			if dc.Generation >= want {
				return dc
			}
			if time.Now().After(deadline) {
				t.Fatalf("generation stuck at %d, want %d", dc.Generation, want)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	if dc := readConfig(); dc.Generation != 1 || dc.Effective.MaxInflight != 1 {
		t.Fatalf("initial config generation: %+v", dc)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz at startup: %d %s", code, body)
	}

	// Concurrent traffic for the whole reload sequence. Lookups must
	// never fail; batches may see 503 backpressure (that is the admission
	// control working) but never any other failure.
	var lookupFails, batchFails atomic.Int64
	stopTraffic := make(chan struct{})
	var traffic sync.WaitGroup
	for w := 0; w < 3; w++ {
		traffic.Add(1)
		go func(w int) {
			defer traffic.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stopTraffic:
					return
				default:
				}
				addr := fmt.Sprintf("10.%d.%d.%d", w, i%250+1, i%200+1)
				resp, err := client.Get(base + "/lookup?addr=" + addr)
				if err != nil {
					lookupFails.Add(1)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						lookupFails.Add(1)
					}
				}
				resp, err = client.Post(base+"/cluster", "text/plain", strings.NewReader(addr+"\n"))
				if err != nil {
					batchFails.Add(1)
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
						batchFails.Add(1)
					}
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(w)
	}

	// Hold a batch in flight across the reload: it must complete
	// untouched on the old limits.
	heldBody, heldWriter := io.Pipe()
	heldDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/cluster", "text/plain", heldBody)
		if err != nil {
			heldDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		heldDone <- resp.StatusCode
	}()
	heldWriter.Write([]byte("10.9.9.9\n"))

	// Generation 2 (picked up by the poller): raise the admission limit
	// and retarget the push sink from receiver A to receiver B — queued
	// backlog must follow, not vanish.
	writeCfg(fmt.Sprintf(`{
		"max_inflight": 8,
		"sinks": [
			{"name": "push", "type": "http", "endpoint": %q, "interval": "100ms"},
			{"name": "journal", "type": "file", "path": %q, "interval": "100ms"}
		]
	}`, srvB.URL, journalPath))
	dc := waitGeneration(2)
	if dc.Effective.MaxInflight != 8 {
		t.Fatalf("generation 2 effective: %+v", dc)
	}

	// The held batch (admitted under generation 1) finishes fine.
	heldWriter.Write([]byte("10.9.9.10\n"))
	heldWriter.Close()
	select {
	case code := <-heldDone:
		if code != http.StatusOK {
			t.Fatalf("batch held across reload finished %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch held across reload never finished")
	}

	// Receiver B starts getting deliveries on the retargeted endpoint.
	deadline := time.Now().Add(10 * time.Second)
	for recvB.batchCount() == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if recvB.batchCount() == 0 {
		t.Fatal("retargeted push sink never delivered to the new endpoint")
	}

	// Generation 3 attempt: invalid (unknown key). Rejected — the live
	// generation keeps serving, readiness flips false with the reason.
	writeCfg(`{"max_inflight": 16, "max_inflate": true}`)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code, _ := get("/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped false on an invalid config")
		}
		time.Sleep(50 * time.Millisecond)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "config rejected") {
		t.Fatalf("readyz during invalid config: %d %s", code, body)
	}
	dc = readConfig()
	if dc.Generation != 2 || dc.Effective.MaxInflight != 8 || dc.LastError == "" {
		t.Fatalf("invalid edit disturbed the live generation: %+v", dc)
	}
	// Liveness is unaffected: /healthz stays 200 throughout.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz went %d during a rejected reload", code)
	}

	// Fix the file via SIGHUP (no waiting on the poller): generation 3
	// lands, readiness recovers.
	writeCfg(fmt.Sprintf(`{
		"max_inflight": 8,
		"sinks": [
			{"name": "push", "type": "http", "endpoint": %q, "interval": "100ms"},
			{"name": "journal", "type": "file", "path": %q, "interval": "100ms"}
		]
	}`, srvB.URL, journalPath))
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	waitGeneration(3)
	deadline = time.Now().Add(10 * time.Second)
	for {
		if code, _ := get("/readyz"); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never recovered after the config was fixed")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Stop traffic, then drain. Traffic stops BEFORE SIGTERM so the
	// exactness assertion below has a stable ground truth.
	close(stopTraffic)
	traffic.Wait()
	if n := lookupFails.Load(); n != 0 {
		t.Errorf("%d lookups failed across the reload sequence, want 0", n)
	}
	if n := batchFails.Load(); n != 0 {
		t.Errorf("%d batches failed (non-200/503) across the reload sequence, want 0", n)
	}

	// Collect the stderr tail before cmd.Wait: Wait closes the pipe once
	// the child exits, racing the scanner out of the final drain lines.
	// EOF on the pipe implies the child has exited.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	var tail string
	select {
	case tail = <-drained:
	case <-time.After(20 * time.Second):
		t.Fatal("clusterd did not exit within 20s of SIGTERM")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("clusterd exited non-zero: %v\n%s", err, tail)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("clusterd did not exit within 20s of SIGTERM")
	}

	// Durability acceptance: the journal's deduplicated counter deltas
	// sum to exactly the totals in the final metrics snapshot, because
	// the drain flushed and fsynced the export queue before the snapshot
	// was written.
	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(snap, &metrics); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
	journal := sumJournal(t, journalPath)
	for _, name := range []string{"clusterd.lookups", "clusterd.batches", "clusterd.batch.addrs"} {
		if got, want := journal[name], float64(metrics.Counters[name]); got != want {
			t.Errorf("journal %s = %v, snapshot = %v (push export lost or duplicated increments)", name, got, want)
		}
	}
	if metrics.Counters["clusterd.lookups"] == 0 {
		t.Error("no lookups recorded; the exactness assertion proved nothing")
	}

	// The retarget preserved the stream: receivers A and B together hold
	// the same lookup total (their seq ranges are disjoint halves of one
	// exporter stream; redeliveries during the cutover dedup by seq —
	// but only within each receiver, so tolerate at-least-once overlap
	// by requiring coverage, not exact equality, on the push pair).
	pushTotal := recvA.counter("clusterd.lookups") + recvB.counter("clusterd.lookups")
	if pushTotal < float64(metrics.Counters["clusterd.lookups"]) {
		t.Errorf("push receivers hold %v lookups, snapshot has %d — the retarget lost batches",
			pushTotal, metrics.Counters["clusterd.lookups"])
	}
}
