// Command benchdiff compares a fresh benchmark recording against a
// committed baseline and fails when gated rows regress:
//
//	benchdiff -old BENCH_clustering.json -new bench-fresh.json
//
// Every benchmark present in both recordings is reported with its ns/op
// and allocs/op deltas. Rows matching -gate (default: the compiled
// lookup table, the CLF ingestion fast path, the batch lookup kernel and
// the snapshot loader — the hot paths the observability layer must not
// tax) additionally enforce -threshold: a gated row whose ns/op or
// allocs/op grew by more than the threshold fraction exits nonzero.
// Rows matching -zero-alloc (default: the sketch update and bounded
// accumulator firehose paths) must additionally report exactly zero
// allocs/op in the fresh recording — an absolute contract, not a
// delta, so it binds even before a baseline row exists.
// When the fresh recording carries both the single-probe compiled bench
// and the batch kernel bench, -min-batch-speedup additionally enforces
// the kernel's raison d'être: per-address batch cost at least that many
// times cheaper than a single-probe loop. Likewise -min-shard-scaling
// bounds the router's fan-out overhead against the single-shard
// baseline when both router benches are present. `make bench-gate`
// wires this up; CI runs it as a non-blocking job because single-run
// timings on
// shared runners are noisy — the committed-machine numbers in
// BENCH_clustering.json remain the authoritative record.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"github.com/netaware/netcluster/internal/benchfmt"
)

func main() {
	oldPath := flag.String("old", "BENCH_clustering.json", "baseline recording")
	newPath := flag.String("new", "", "fresh recording to compare (required)")
	threshold := flag.Float64("threshold", 0.25, "max allowed fractional regression on gated rows")
	gate := flag.String("gate", "^Benchmark(LongestPrefixMatchCompiled|CLFParseStream|LookupBatch|SnapshotLoad|RouterFanout|DeltaBroadcast|TraceHeaderInject|TraceHeaderExtract|SketchUpdate|BoundedStream)$",
		"regexp of benchmark names whose regressions fail the gate")
	zeroAlloc := flag.String("zero-alloc", "^Benchmark(SketchUpdate|BoundedStream)$",
		"regexp of benchmark names whose fresh allocs/op must be exactly 0 — the firehose hot paths are garbage-free by contract, and unlike the fractional gate this holds even when the baseline lacks the row (empty disables)")
	minBatchSpeedup := flag.Float64("min-batch-speedup", 3,
		"minimum single-probe-ns / batch-ns-per-address ratio in the fresh recording (0 disables)")
	minShardScaling := flag.Float64("min-shard-scaling", 0.3,
		"minimum single-shard-ns / fanned-out-ns ratio for an equal-size routed batch in the fresh recording (0 disables); >1 means fan-out wins, the floor bounds its worst-case overhead")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fatal(fmt.Errorf("bad -gate pattern: %w", err))
	}
	var zeroRe *regexp.Regexp
	if *zeroAlloc != "" {
		if zeroRe, err = regexp.Compile(*zeroAlloc); err != nil {
			fatal(fmt.Errorf("bad -zero-alloc pattern: %w", err))
		}
	}
	oldRec, err := benchfmt.ReadFile(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRec, err := benchfmt.ReadFile(*newPath)
	if err != nil {
		fatal(err)
	}
	if oldRec.CPU != "" && newRec.CPU != "" && oldRec.CPU != newRec.CPU {
		fmt.Printf("note: comparing across CPUs (%q vs %q); timing deltas reflect hardware too\n\n",
			oldRec.CPU, newRec.CPU)
	}

	fmt.Printf("%-44s %14s %14s %8s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs", "gate")
	failed := 0
	compared := 0
	for _, nb := range newRec.Benchmarks {
		ob, ok := oldRec.Find(nb.Name)
		if !ok {
			fmt.Printf("%-44s %14s %14.4g %8s %8s  new row\n", nb.Name, "-", nb.NsPerOp, "-", "-")
			continue
		}
		compared++
		gated := gateRe.MatchString(nb.Name)
		dns := frac(ob.NsPerOp, nb.NsPerOp)
		dallocs := 0.0
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			dallocs = frac(*ob.AllocsPerOp, *nb.AllocsPerOp)
		}
		verdict := ""
		if gated {
			verdict = "ok"
			if dns > *threshold || dallocs > *threshold {
				verdict = "FAIL"
				failed++
			}
		}
		fmt.Printf("%-44s %14.4g %14.4g %7.1f%% %7.1f%%  %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, 100*dns, 100*dallocs, verdict)
	}
	if compared == 0 {
		fatal(fmt.Errorf("no benchmarks in common between %s and %s", *oldPath, *newPath))
	}
	if zeroRe != nil {
		for _, nb := range newRec.Benchmarks {
			if !zeroRe.MatchString(nb.Name) {
				continue
			}
			switch {
			case nb.AllocsPerOp == nil:
				failed++
				fmt.Printf("\nFAIL: %s recorded without allocs/op; run the fresh benchmarks with -benchmem\n", nb.Name)
			case *nb.AllocsPerOp != 0:
				failed++
				fmt.Printf("\nFAIL: %s allocates (%g allocs/op); the firehose hot path must be garbage-free\n",
					nb.Name, *nb.AllocsPerOp)
			}
		}
	}
	if *minBatchSpeedup > 0 {
		single, ok1 := newRec.Find("BenchmarkLongestPrefixMatchCompiled")
		batch, ok2 := newRec.Find("BenchmarkLookupBatch")
		if ok1 && ok2 && batch.NsPerOp > 0 {
			ratio := single.NsPerOp / batch.NsPerOp
			fmt.Printf("\nbatch kernel speedup: %.1fx single-probe per-address cost (floor %.1fx)\n",
				ratio, *minBatchSpeedup)
			if ratio < *minBatchSpeedup {
				failed++
				fmt.Println("FAIL: batch kernel below required aggregate speedup")
			}
		}
	}
	if *minShardScaling > 0 {
		single, ok1 := newRec.Find("BenchmarkRouterSingleShard")
		fanout, ok2 := newRec.Find("BenchmarkRouterFanout")
		if ok1 && ok2 && fanout.NsPerOp > 0 {
			ratio := single.NsPerOp / fanout.NsPerOp
			fmt.Printf("\nrouter fan-out scaling: %.2fx the single-shard batch cost (floor %.2fx)\n",
				ratio, *minShardScaling)
			if ratio < *minShardScaling {
				failed++
				fmt.Println("FAIL: routed fan-out costs more than the allowed multiple of a single-shard batch")
			}
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d gated benchmark(s) regressed beyond %.0f%%", failed, *threshold*100))
	}
	fmt.Printf("\nbenchdiff: %d benchmarks compared, gated rows within %.0f%%\n", compared, *threshold*100)
}

// frac returns the fractional growth from old to new (positive = slower
// or more allocations). A zero baseline only regresses if the new value
// is nonzero.
func frac(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return (new - old) / old
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
