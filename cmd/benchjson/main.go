// Command benchjson converts `go test -bench` text output (on stdin) into
// a machine-readable JSON file, so benchmark results can be committed and
// diffed across changes:
//
//	go test -bench 'Cluster|Prefix|CLF' -benchmem . | benchjson -out BENCH_clustering.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get dedicated fields;
// any custom b.ReportMetric unit lands in the metrics map. Non-benchmark
// lines are echoed to stderr so the usual progress output stays visible
// when the command runs in a pipe.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_clustering.json", "output JSON path")
	flag.Parse()

	var o output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			o.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			o.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			o.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			o.Pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if b, ok := parseBenchLine(line); ok {
			o.Benchmarks = append(o.Benchmarks, b)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(o.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	data, err := json.MarshalIndent(&o, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(o.Benchmarks), *out)
}

// parseBenchLine dissects one result line:
//
//	BenchmarkName[-P]  N  v1 unit1  v2 unit2 ...
func parseBenchLine(line string) (benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp, seenNs = v, true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, seenNs
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
