// Command benchjson converts `go test -bench` text output (on stdin) into
// a machine-readable JSON file, so benchmark results can be committed and
// diffed across changes:
//
//	go test -bench 'Cluster|Prefix|CLF' -benchmem . | benchjson -out BENCH_clustering.json
//
// Standard metrics (ns/op, B/op, allocs/op, MB/s) get dedicated fields;
// any custom b.ReportMetric unit lands in the metrics map. Non-benchmark
// lines are echoed to stderr so the usual progress output stays visible
// when the command runs in a pipe. The output file is written atomically,
// so an interrupted run never leaves a truncated recording.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/netaware/netcluster/internal/benchfmt"
)

func main() {
	out := flag.String("out", "BENCH_clustering.json", "output JSON path")
	flag.Parse()

	var o benchfmt.Output
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		o.ContextLine(line)
		if b, ok := benchfmt.ParseLine(line); ok {
			o.Benchmarks = append(o.Benchmarks, b)
			continue
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(o.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if err := o.WriteFile(*out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(o.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
