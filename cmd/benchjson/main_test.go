package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkLongestPrefixMatchCompiled \t 9185babc\t")
	if ok {
		t.Fatalf("garbage accepted: %+v", b)
	}
	b, ok = parseBenchLine("BenchmarkClusterLogParallel/workers-4-8 \t 50\t 22915486 ns/op\t 14400 requests/op\t 9472109 B/op\t 11288 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if b.Name != "BenchmarkClusterLogParallel/workers-4-8" || b.Iterations != 50 {
		t.Fatalf("name/iters: %+v", b)
	}
	if b.NsPerOp != 22915486 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 9472109 || b.AllocsPerOp == nil || *b.AllocsPerOp != 11288 {
		t.Fatalf("benchmem fields: %+v", b)
	}
	if b.Metrics["requests/op"] != 14400 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
	if _, ok := parseBenchLine("ok  \tgithub.com/netaware/netcluster\t0.4s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := parseBenchLine("BenchmarkNoResult"); ok {
		t.Fatal("name-only line accepted")
	}
	// A line without ns/op (pure custom metrics) is not a result line the
	// file format can anchor on.
	if _, ok := parseBenchLine("BenchmarkX 10 5.0 widgets/op"); ok {
		t.Fatal("line without ns/op accepted")
	}
}
