// Command bgpgen generates routing-table snapshot files from a synthetic
// Internet: either one named vantage view, or the whole standard
// collection into a directory.
//
//	bgpgen -view AADS -seed 1 -scale 0.05 > aads.txt
//	bgpgen -all -dir tables/ -seed 1 -scale 0.05
//
// Run with the same -seed/-ases as loggen so the prefixes cover the
// generated log's clients. -format selects the textual prefix notation
// (cidr, netmask, classful) to exercise parsers against all three 1999-era
// dump styles; -day applies that many days of BGP churn.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/inet"
)

func main() {
	view := flag.String("view", "", "vantage name (AADS, MAE-EAST, ...); empty with -all writes every view")
	all := flag.Bool("all", false, "write every standard view plus ARIN/NLANR dumps into -dir")
	dir := flag.String("dir", ".", "output directory for -all")
	scale := flag.Float64("scale", 0.05, "world scale (match loggen)")
	seed := flag.Int64("seed", 1, "world seed (match loggen)")
	ases := flag.Int("ases", 0, "world AS count (default: sized from -scale)")
	day := flag.Int("day", 0, "days of BGP churn to apply")
	format := flag.String("format", "cidr", "prefix notation: cidr, netmask, classful")
	worldFile := flag.String("world", "", "load a worldgen-saved world instead of generating one")
	flag.Parse()

	var pf bgp.PrefixFormat
	switch *format {
	case "cidr":
		pf = bgp.FormatCIDR
	case "netmask":
		pf = bgp.FormatNetmask
	case "classful":
		pf = bgp.FormatClassful
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}

	var world *inet.Internet
	if *worldFile != "" {
		f, err := os.Open(*worldFile)
		if err != nil {
			fatal(err)
		}
		world, err = inet.ReadWorld(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		wcfg := inet.DefaultConfig()
		wcfg.Seed = *seed
		if *ases > 0 {
			wcfg.NumASes = *ases
		} else {
			wcfg.NumASes = int(5600*(*scale)) + 300
		}
		var err error
		world, err = inet.Generate(wcfg)
		if err != nil {
			fatal(err)
		}
	}
	simCfg := bgpsim.DefaultConfig()
	simCfg.Seed = *seed
	sim := bgpsim.New(world, simCfg)

	if *all {
		coll := sim.Collect()
		for _, s := range coll.Views {
			if err := writeFile(*dir, s, pf); err != nil {
				fatal(err)
			}
		}
		for _, s := range coll.Registries {
			if err := writeFile(*dir, s, pf); err != nil {
				fatal(err)
			}
		}
		fmt.Fprintf(os.Stderr, "bgpgen: wrote %d snapshots to %s\n",
			len(coll.Views)+len(coll.Registries), *dir)
		return
	}
	if *view == "" {
		fatal(fmt.Errorf("need -view NAME or -all"))
	}
	for _, vc := range bgpsim.StandardViews() {
		if vc.Name == *view {
			snap := sim.View(vc, *day)
			if err := bgp.WriteSnapshot(os.Stdout, snap, pf); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "bgpgen: %s day %d: %d entries\n", *view, *day, len(snap.Entries))
			return
		}
	}
	fatal(fmt.Errorf("unknown view %q (standard views: AADS, AT&T-BGP, AT&T-Forw, CANET, CERFNET, MAE-EAST, MAE-WEST, OREGON, PACBELL, PAIX, SINGAREN, VBNS)", *view))
}

func writeFile(dir string, s *bgp.Snapshot, pf bgp.PrefixFormat) error {
	name := strings.ToLower(strings.ReplaceAll(s.Name, "&", "")) + ".txt"
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return bgp.WriteSnapshot(f, s, pf)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bgpgen: %v\n", err)
	os.Exit(1)
}
