// Command clusterctl clusters the clients of a web server log against one
// or more routing-table snapshots and prints the resulting clusters.
//
//	clusterctl -log access.log -table aads.txt -table arin.txt [-method network-aware] [-top 20]
//
// The log is Common Log Format (plain or combined); snapshot files use the
// line format documented in internal/bgp (one prefix per line in CIDR,
// netmask or classful notation, optionally with pipe-separated metadata).
// Method "simple" (first 24 bits) and "classful" need no tables.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"sort"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/weblog"
)

type tableFlags []string

func (t *tableFlags) String() string     { return fmt.Sprint(*t) }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var tables tableFlags
	logPath := flag.String("log", "", "web server log in Common Log Format (required)")
	method := flag.String("method", "network-aware", "clustering method: network-aware, simple, classful")
	top := flag.Int("top", 20, "clusters to print, busiest first")
	threshold := flag.Float64("threshold", 0, "if > 0, report busy clusters covering this fraction of requests")
	stream := flag.Bool("stream", false, "single-pass streaming mode for logs too large to load")
	workers := flag.Int("workers", 0, "parallel clustering workers: 0 or 1 sequential, -1 GOMAXPROCS")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	traceOut := flag.String("trace-out", "", "write the flight-recorder trace (Chrome trace_event JSON) to this file on exit")
	flag.Var(&tables, "table", "routing-table snapshot file (repeatable; required for network-aware)")
	flag.Parse()

	if *logPath == "" {
		fmt.Fprintln(os.Stderr, "clusterctl: -log is required")
		flag.Usage()
		os.Exit(2)
	}
	nWorkers := *workers
	if nWorkers < 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	// One root span covers the run; everything below (table compile,
	// parse, clustering fan-out) nests under it in the trace.
	ctx, root := obsv.StartTraceSpan(context.Background(), "clusterctl.run")
	root.SetAttr("method", *method)
	root.SetAttrInt("workers", int64(nWorkers))
	defer func() {
		root.End()
		writeTrace(*traceOut)
	}()

	var method_ cluster.Clusterer
	switch *method {
	case "network-aware":
		if len(tables) == 0 {
			fatal(fmt.Errorf("network-aware clustering needs at least one -table"))
		}
		merged := bgp.NewMerged()
		for _, path := range tables {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			snap, err := bgp.ReadSnapshot(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			if snap.Name == "" {
				snap.Name = path
			}
			merged.Add(snap)
		}
		fmt.Printf("merged table: %s BGP + %s registry prefixes\n",
			report.FmtInt(merged.NumPrimary()), report.FmtInt(merged.NumSecondary()))
		na := cluster.NetworkAware{Table: merged}
		if nWorkers > 1 {
			// The compiled table is what makes the parallel engines'
			// lock-free concurrent lookups safe.
			na.Compiled = merged.CompileCtx(ctx)
		}
		method_ = na
	case "simple":
		method_ = cluster.Simple{}
	case "classful":
		method_ = cluster.Classful{}
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	f, err := os.Open(*logPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if *stream {
		runStreaming(ctx, f, method_, *top, nWorkers)
		writeMetrics(*metricsOut)
		return
	}

	l, err := weblog.ReadCLF(f, *logPath)
	if err != nil {
		fatal(err)
	}
	var res *cluster.Result
	if nWorkers > 1 {
		res = cluster.ClusterLogParallelCtx(ctx, l, method_, cluster.ParallelOptions{Workers: nWorkers})
	} else {
		res = cluster.ClusterLogCtx(ctx, l, method_)
	}

	st := l.Stats()
	fmt.Printf("log: %s requests, %s clients, %s URLs\n",
		report.FmtInt(st.Requests), report.FmtInt(st.UniqueClients), report.FmtInt(st.UniqueURLs))
	fmt.Printf("clusters: %s (%s coverage, %s unclustered clients)\n\n",
		report.FmtInt(len(res.Clusters)), report.FmtPct(res.Coverage()),
		report.FmtInt(len(res.Unclustered)))

	ordered := res.ByRequestsDesc()
	if *threshold > 0 {
		th := res.ThresholdBusy(*threshold)
		fmt.Printf("busy clusters covering %s of requests: %s (smallest issues %s requests)\n\n",
			report.FmtPct(*threshold), report.FmtInt(len(th.Busy)), report.FmtInt(th.Threshold))
		ordered = th.Busy
	}
	if len(ordered) > *top {
		ordered = ordered[:*top]
	}
	t := &report.Table{
		Title:   "clusters by request volume",
		Headers: []string{"prefix", "clients", "requests", "URLs", "bytes"},
	}
	for _, c := range ordered {
		t.AddRow(c.Prefix.String(), report.FmtInt(c.NumClients()),
			report.FmtInt(c.Requests), report.FmtInt(c.NumURLs()), report.FmtInt(int(c.Bytes)))
	}
	fmt.Println(t)
	writeMetrics(*metricsOut)
}

// writeMetrics dumps the process metric registry as JSON, for runs whose
// parse/lookup accounting should be archived next to their output.
func writeMetrics(path string) {
	if path == "" {
		return
	}
	if err := obsv.WriteFile(path); err != nil {
		fatal(err)
	}
}

// writeTrace dumps the flight-recorder ring as a Chrome trace_event file
// that chrome://tracing (or Perfetto) opens directly.
func writeTrace(path string) {
	if path == "" {
		return
	}
	if err := obsv.WriteTraceFile(path); err != nil {
		fatal(err)
	}
}

// runStreaming clusters the log in one pass without loading it.
func runStreaming(ctx context.Context, f *os.File, method cluster.Clusterer, top, workers int) {
	var res *cluster.StreamResult
	var err error
	if workers > 1 {
		res, err = cluster.ClusterStreamParallelCtx(ctx, f, method, cluster.ParallelOptions{Workers: workers})
	} else {
		res, err = cluster.ClusterStreamCtx(ctx, f, method)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("stream: %s records, %s URLs, %s agents\n",
		report.FmtInt(res.Stats.Records), report.FmtInt(res.Stats.URLs),
		report.FmtInt(res.Stats.Agents))
	fmt.Printf("clusters: %s (%s coverage, %s unclustered clients)\n\n",
		report.FmtInt(len(res.Clusters)), report.FmtPct(res.Coverage()),
		report.FmtInt(len(res.Unclustered)))
	ordered := make([]*cluster.StreamCluster, 0, len(res.Clusters))
	for _, c := range res.Clusters {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Requests != ordered[j].Requests {
			return ordered[i].Requests > ordered[j].Requests
		}
		return netutil.ComparePrefix(ordered[i].Prefix, ordered[j].Prefix) < 0
	})
	if len(ordered) > top {
		ordered = ordered[:top]
	}
	t := &report.Table{
		Title:   "clusters by request volume (streaming)",
		Headers: []string{"prefix", "clients", "requests", "URLs", "bytes"},
	}
	for _, c := range ordered {
		t.AddRow(c.Prefix.String(), report.FmtInt(c.NumClients()),
			report.FmtInt(c.Requests), report.FmtInt(c.NumURLs()), report.FmtInt(int(c.Bytes)))
	}
	fmt.Println(t)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clusterctl: %v\n", err)
	os.Exit(1)
}
