package main

// Busy-cluster accounting for the serving path. Every address the
// batch endpoint clusters feeds a bounded accumulator (space-saving
// summary + count-min tail sketch, internal/cluster), so a clusterd
// absorbing a firehose of lookups can always answer "which clusters
// are busiest right now" in fixed memory — the Section 4.1.3
// thresholding view, live. The accumulator is not thread-safe; the
// tracker locks once per batch, never per address, keeping the hot
// path's added cost to one mutex acquisition amortized over the whole
// batch.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/cluster"
)

type busyTracker struct {
	mu  sync.Mutex
	acc *cluster.BoundedAccumulator
	cfg cluster.BoundedConfig // resolved config the accumulator was built with
}

func newBusyTracker(cfg cluster.BoundedConfig) (*busyTracker, error) {
	acc, err := cluster.NewBoundedAccumulator(cfg)
	if err != nil {
		return nil, err
	}
	return &busyTracker{acc: acc, cfg: acc.Config()}, nil
}

// boundedConfig assembles the accumulator sizing from one tunables
// generation.
func (t *tunables) boundedConfig() cluster.BoundedConfig {
	return cluster.BoundedConfig{
		K:        t.BusyK,
		Capacity: t.BusyCapacity,
		Epsilon:  t.SketchEpsilon,
		Delta:    t.SketchDelta,
		Spill:    cluster.SpillPolicy(t.SketchSpill),
	}
}

// observeMatches folds one resolved batch into the accumulator: one
// request per address, no byte weights (the lookup protocol carries
// none). Metrics flush under the same single lock acquisition.
func (b *busyTracker) observeMatches(matches []bgp.Match) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range matches {
		if m.Prefix.IsZero() {
			b.acc.ObserveUnclustered()
			continue
		}
		b.acc.Observe(m.Prefix, 0)
	}
	b.acc.PublishMetrics()
}

// reconfigure swaps in a freshly sized accumulator when a config
// reload changes the sketch dimensions. Accounting restarts from zero
// — resizing a sketch in place is not meaningful — so an unchanged
// config is deliberately a no-op.
func (b *busyTracker) reconfigure(cfg cluster.BoundedConfig, logf func(string, ...any)) {
	acc, err := cluster.NewBoundedAccumulator(cfg)
	if err != nil {
		// Validation runs at flag/config-parse time; reaching this means a
		// gap there, and the previous accumulator keeps serving.
		logf("clusterd: busy tracker reconfigure: %v", err)
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if acc.Config() == b.cfg {
		return
	}
	old := b.acc.Requests()
	b.cfg = acc.Config()
	b.acc = acc
	logf("clusterd: busy tracker resized: k=%d capacity=%d epsilon=%g spill=%s (%d observed requests reset)",
		b.cfg.K, b.cfg.Capacity, b.cfg.Epsilon, b.cfg.Spill, old)
}

// busyResponse is the GET /busy wire shape.
type busyResponse struct {
	K           int                   `json:"k"`
	Requests    uint64                `json:"requests"`
	Unclustered uint64                `json:"unclustered"`
	Occupancy   int                   `json:"occupancy"`
	Evictions   uint64                `json:"evictions"`
	ErrorBound  uint64                `json:"error_bound"`
	TailBound   uint64                `json:"tail_bound"`
	Guaranteed  bool                  `json:"guaranteed_top_k"`
	Clusters    []cluster.BusyCluster `json:"clusters"`
}

// handleBusy reports the current top-K busy clusters. ?k= overrides
// the configured K up to the summary capacity.
func (b *busyTracker) handleBusy(w http.ResponseWriter, r *http.Request) {
	k := b.cfg.K
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, fmt.Sprintf("bad k %q", q), http.StatusBadRequest)
			return
		}
		k = n
	}
	b.mu.Lock()
	resp := busyResponse{
		K:           k,
		Requests:    b.acc.Requests(),
		Unclustered: b.acc.Unclustered(),
		Occupancy:   b.acc.Occupancy(),
		Evictions:   b.acc.Evictions(),
		ErrorBound:  b.acc.ErrorBound(),
		TailBound:   b.acc.TailBound(),
		Guaranteed:  b.acc.GuaranteedTopK(k),
		Clusters:    b.acc.Busy(k),
	}
	b.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
