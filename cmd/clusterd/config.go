package main

// Watched-config plumbing for clusterd. The command line seeds every
// tunable; a -config file (hot-reloaded by internal/appconf) overrides
// the keys it names. File keys use pointer fields so "absent" and "set
// to the zero value" are distinguishable: absent keys keep their flag
// values, present keys shadow them — loudly, when the flag was also set
// explicitly on the command line.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/netaware/netcluster/internal/appconf"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/obsv/sink"
)

// sinkSpec is the config-file shape of one push sink; it mirrors
// sink.Spec but takes the interval in operator-friendly "5s" form.
type sinkSpec struct {
	Name     string           `json:"name"`
	Type     string           `json:"type"`
	Endpoint string           `json:"endpoint,omitempty"`
	Path     string           `json:"path,omitempty"`
	Interval appconf.Duration `json:"interval,omitempty"`
}

func toSinkSpecs(ss []sinkSpec) []sink.Spec {
	out := make([]sink.Spec, len(ss))
	for i, s := range ss {
		out[i] = sink.Spec{
			Name:     s.Name,
			Type:     s.Type,
			Endpoint: s.Endpoint,
			Path:     s.Path,
			Interval: s.Interval.Std(),
		}
	}
	return out
}

// fileConfig is the watched file's schema. Every field is optional.
type fileConfig struct {
	MaxInflight    *int              `json:"max_inflight,omitempty"`
	MaxBatch       *int              `json:"max_batch,omitempty"`
	MaxBodyBytes   *int64            `json:"max_body_bytes,omitempty"`
	ChurnEvery     *appconf.Duration `json:"churn_every,omitempty"`
	DrainTimeout   *appconf.Duration `json:"drain_timeout,omitempty"`
	QueueHighWater *int              `json:"queue_high_water,omitempty"`
	BusyK          *int              `json:"busy_k,omitempty"`
	BusyCapacity   *int              `json:"busy_capacity,omitempty"`
	SketchEpsilon  *float64          `json:"sketch_epsilon,omitempty"`
	SketchDelta    *float64          `json:"sketch_delta,omitempty"`
	SketchSpill    *string           `json:"sketch_spill,omitempty"`
	Sinks          []sinkSpec        `json:"sinks,omitempty"`
}

// parseFileConfig is the appconf parse hook: strict decoding (unknown
// keys are a rejected reload, not a silent typo) plus validation, so an
// invalid edit never becomes the live generation.
func parseFileConfig(data []byte) (fileConfig, error) {
	var c fileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, err
	}
	if c.MaxInflight != nil && *c.MaxInflight < 1 {
		return c, fmt.Errorf("max_inflight %d: must be >= 1", *c.MaxInflight)
	}
	if c.MaxBatch != nil && *c.MaxBatch < 1 {
		return c, fmt.Errorf("max_batch %d: must be >= 1", *c.MaxBatch)
	}
	if c.MaxBodyBytes != nil && *c.MaxBodyBytes < 1 {
		return c, fmt.Errorf("max_body_bytes %d: must be >= 1", *c.MaxBodyBytes)
	}
	if c.ChurnEvery != nil && c.ChurnEvery.Std() < 0 {
		return c, fmt.Errorf("churn_every %v: must be >= 0", c.ChurnEvery.Std())
	}
	if c.DrainTimeout != nil && c.DrainTimeout.Std() <= 0 {
		return c, fmt.Errorf("drain_timeout %v: must be > 0", c.DrainTimeout.Std())
	}
	if c.QueueHighWater != nil && *c.QueueHighWater < 1 {
		return c, fmt.Errorf("queue_high_water %d: must be >= 1", *c.QueueHighWater)
	}
	if c.BusyK != nil && *c.BusyK < 1 {
		return c, fmt.Errorf("busy_k %d: must be >= 1", *c.BusyK)
	}
	if c.BusyCapacity != nil && *c.BusyCapacity < 1 {
		return c, fmt.Errorf("busy_capacity %d: must be >= 1", *c.BusyCapacity)
	}
	// The sketch keys validate as one unit through the accumulator's own
	// rules, with absent keys at their defaults — exactly the shape a
	// reload will hand the busy tracker.
	bc := cluster.BoundedConfig{}
	if c.BusyK != nil {
		bc.K = *c.BusyK
	}
	if c.BusyCapacity != nil {
		bc.Capacity = *c.BusyCapacity
	}
	if c.SketchEpsilon != nil {
		bc.Epsilon = *c.SketchEpsilon
	}
	if c.SketchDelta != nil {
		bc.Delta = *c.SketchDelta
	}
	if c.SketchSpill != nil {
		bc.Spill = cluster.SpillPolicy(*c.SketchSpill)
	}
	if err := bc.Validate(); err != nil {
		return c, err
	}
	if err := sink.ValidateSpecs(toSinkSpecs(c.Sinks)); err != nil {
		return c, err
	}
	return c, nil
}

// tunables is one resolved configuration generation: flag defaults with
// file overrides applied. Request handlers read it through one atomic
// pointer load, so a reload lands between requests, never inside one.
type tunables struct {
	MaxInflight    int              `json:"max_inflight"`
	MaxBatch       int              `json:"max_batch"`
	MaxBodyBytes   int64            `json:"max_body_bytes"`
	ChurnEvery     appconf.Duration `json:"churn_every"`
	DrainTimeout   appconf.Duration `json:"drain_timeout"`
	QueueHighWater int              `json:"queue_high_water"`
	BusyK          int              `json:"busy_k"`
	BusyCapacity   int              `json:"busy_capacity"`
	SketchEpsilon  float64          `json:"sketch_epsilon"`
	SketchDelta    float64          `json:"sketch_delta"`
	SketchSpill    string           `json:"sketch_spill"`
}

// merge overlays the file config onto the flag-seeded base. For each
// file key that shadows a flag the operator set explicitly on this
// invocation, a structured warning names both values — the file wins,
// but never silently.
func merge(base tunables, fc fileConfig, explicit map[string]bool, logf func(string, ...any)) tunables {
	out := base
	shadow := func(key, flagName string, flagVal, fileVal any) {
		if explicit[flagName] {
			logf("clusterd: warn event=config_shadows_flag key=%s flag=-%s flag_value=%v config_value=%v resolution=config-file-wins",
				key, flagName, flagVal, fileVal)
		}
	}
	if fc.MaxInflight != nil {
		shadow("max_inflight", "max-inflight", base.MaxInflight, *fc.MaxInflight)
		out.MaxInflight = *fc.MaxInflight
	}
	if fc.MaxBatch != nil {
		shadow("max_batch", "max-batch", base.MaxBatch, *fc.MaxBatch)
		out.MaxBatch = *fc.MaxBatch
	}
	if fc.MaxBodyBytes != nil {
		shadow("max_body_bytes", "max-body", base.MaxBodyBytes, *fc.MaxBodyBytes)
		out.MaxBodyBytes = *fc.MaxBodyBytes
	}
	if fc.ChurnEvery != nil {
		shadow("churn_every", "churn-every", base.ChurnEvery.Std(), fc.ChurnEvery.Std())
		out.ChurnEvery = *fc.ChurnEvery
	}
	if fc.DrainTimeout != nil {
		shadow("drain_timeout", "drain-timeout", base.DrainTimeout.Std(), fc.DrainTimeout.Std())
		out.DrainTimeout = *fc.DrainTimeout
	}
	if fc.QueueHighWater != nil {
		out.QueueHighWater = *fc.QueueHighWater
	}
	if fc.BusyK != nil {
		shadow("busy_k", "busy-k", base.BusyK, *fc.BusyK)
		out.BusyK = *fc.BusyK
	}
	if fc.BusyCapacity != nil {
		shadow("busy_capacity", "busy-capacity", base.BusyCapacity, *fc.BusyCapacity)
		out.BusyCapacity = *fc.BusyCapacity
	}
	if fc.SketchEpsilon != nil {
		shadow("sketch_epsilon", "sketch-epsilon", base.SketchEpsilon, *fc.SketchEpsilon)
		out.SketchEpsilon = *fc.SketchEpsilon
	}
	if fc.SketchDelta != nil {
		shadow("sketch_delta", "sketch-delta", base.SketchDelta, *fc.SketchDelta)
		out.SketchDelta = *fc.SketchDelta
	}
	if fc.SketchSpill != nil {
		shadow("sketch_spill", "sketch-spill", base.SketchSpill, *fc.SketchSpill)
		out.SketchSpill = *fc.SketchSpill
	}
	return out
}

// dynamicSemaphore is an admission semaphore whose capacity can be
// retargeted live (a channel's cannot). Shrinking below the in-flight
// count never evicts running work — admissions just stay closed until
// the count drains under the new cap.
type dynamicSemaphore struct {
	mu   sync.Mutex
	cap  int
	used int
}

func newDynamicSemaphore(n int) *dynamicSemaphore {
	return &dynamicSemaphore{cap: n}
}

// TryAcquire admits the caller if capacity allows; it never blocks
// (backpressure answers 503, it does not queue).
func (d *dynamicSemaphore) TryAcquire() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.used >= d.cap {
		return false
	}
	d.used++
	return true
}

func (d *dynamicSemaphore) Release() {
	d.mu.Lock()
	d.used--
	d.mu.Unlock()
}

// SetCap retargets the admission limit; in-flight work is untouched.
func (d *dynamicSemaphore) SetCap(n int) {
	d.mu.Lock()
	d.cap = n
	d.mu.Unlock()
}

func (d *dynamicSemaphore) Cap() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cap
}
