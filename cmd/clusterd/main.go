// Command clusterd is the long-running clustering service: it serves
// longest-prefix-match lookups and batch clustering over HTTP while
// absorbing BGP announce/withdraw deltas online. The prefix table is
// published RCU-style (internal/churn), so lookups stay lock-free
// through every hot swap and a generation counter in each response
// records which table answered.
//
//	clusterd -addr 127.0.0.1:8349 -ases 300 -churn-every 2s
//
// Endpoints:
//
//	GET  /lookup?addr=12.65.147.94   one address → cluster prefix JSON
//	POST /cluster                    newline-separated addresses → JSON
//	GET  /healthz                    liveness + table generation
//	GET  /metrics, /debug/...        obsv debug surface (Prometheus
//	                                 text, expvar, pprof, flight trace)
//
// The batch endpoint is admission-controlled: at most -max-inflight
// batches run concurrently; beyond that clusterd answers 503 with
// Retry-After instead of queueing unboundedly (backpressure, not
// collapse). SIGTERM/SIGINT drain gracefully: the listener stops
// accepting, in-flight requests finish (bounded by -drain-timeout), the
// churn loop stops, and -metrics-out receives a final snapshot.
//
// Churn is synthetic: the same bgpsim world that seeds the table also
// drives a bursty announce/withdraw schedule (-churn-every, -mean-batch,
// -burstiness), so a deployment-shaped soak run needs no external feed.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/report"
)

var (
	lookupNS      = obsv.H("clusterd.lookup.ns")
	lookupCount   = obsv.C("clusterd.lookups")
	batchCount    = obsv.C("clusterd.batches")
	batchAddrs    = obsv.C("clusterd.batch.addrs")
	batchRejected = obsv.C("clusterd.batch.rejected")
	inflightGauge = obsv.G("clusterd.batch.inflight")
)

type server struct {
	table    *churn.Table
	sem      chan struct{}
	maxBody  int64
	maxBatch int
	started  time.Time
}

type lookupResult struct {
	Addr       string `json:"addr"`
	Clustered  bool   `json:"clustered"`
	Prefix     string `json:"prefix,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Generation uint64 `json:"generation"`
}

func (s *server) resolve(c *bgp.Compiled, gen uint64, addr netutil.Addr) lookupResult {
	res := lookupResult{Addr: addr.String(), Generation: gen}
	if m, ok := c.Lookup(addr); ok {
		res.Clustered = true
		res.Prefix = m.Prefix.String()
		res.Kind = m.Kind.String()
	}
	return res
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("addr")
	addr, err := netutil.ParseAddr(q)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad addr %q: %v", q, err), http.StatusBadRequest)
		return
	}
	start := time.Now()
	res := s.resolve(s.table.Load(), s.table.Generation(), addr)
	lookupNS.Observe(time.Since(start).Nanoseconds())
	lookupCount.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handleBatch clusters a newline-separated address list in one pass. One
// table generation is pinned for the whole batch, so a swap mid-batch
// cannot produce a mixed-generation answer set.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST an address list", http.StatusMethodNotAllowed)
		return
	}
	select {
	case s.sem <- struct{}{}:
		inflightGauge.Add(1)
		defer func() { <-s.sem; inflightGauge.Add(-1) }()
	default:
		batchRejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "batch capacity exhausted, retry later", http.StatusServiceUnavailable)
		return
	}
	batchCount.Inc()

	// Pin one generation for the whole batch.
	table := s.table.Load()
	gen := s.table.Generation()

	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.maxBody))
	results := make([]lookupResult, 0, 256)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if n++; n > s.maxBatch {
			http.Error(w, fmt.Sprintf("batch exceeds %d addresses", s.maxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		addr, err := netutil.ParseAddr(line)
		if err != nil {
			http.Error(w, fmt.Sprintf("line %d: bad addr %q", n, line), http.StatusBadRequest)
			return
		}
		results = append(results, s.resolve(table, gen, addr))
	}
	if err := sc.Err(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batchAddrs.Add(uint64(len(results)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Generation uint64         `json:"generation"`
		Results    []lookupResult `json:"results"`
	}{gen, results})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.table.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status     string  `json:"status"`
		Generation uint64  `json:"generation"`
		Prefixes   int     `json:"prefixes"`
		UptimeSec  float64 `json:"uptime_sec"`
	}{"ok", s.table.Generation(), c.Len(), time.Since(s.started).Seconds()})
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8349", "listen address (use :0 to pick a free port)")
	ases := flag.Int("ases", 300, "synthetic world size (number of ASes)")
	seed := flag.Int64("seed", 1, "world/churn seed")
	churnEvery := flag.Duration("churn-every", 2*time.Second, "interval between churn deltas (0 disables churn)")
	meanBatch := flag.Int("mean-batch", 32, "mean announce/withdraw ops per churn delta")
	burstiness := flag.Float64("burstiness", 0.15, "probability a churn delta is a burst (8x mean)")
	maxInflight := flag.Int("max-inflight", 8, "concurrent /cluster batches before 503 backpressure")
	maxBatch := flag.Int("max-batch", 100000, "addresses per /cluster batch")
	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes for /cluster")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on shutdown")
	flag.Parse()

	wcfg := inet.DefaultConfig()
	wcfg.NumASes = *ases
	wcfg.Seed = *seed
	world, err := inet.Generate(wcfg)
	if err != nil {
		fatal(err)
	}
	scfg := bgpsim.DefaultConfig()
	scfg.Seed = *seed
	sim := bgpsim.New(world, scfg)
	coll := sim.Collect()
	table := churn.New(bgpsim.Merge(coll))
	c0 := table.Load()
	fmt.Fprintf(os.Stderr, "clusterd: table generation 0: %s BGP + %s registry prefixes, %s nodes\n",
		report.FmtInt(c0.NumPrimary()), report.FmtInt(c0.NumSecondary()), report.FmtInt(c0.NumNodes()))

	// The churn universe is the union of every BGP vantage's entries; the
	// registry (secondary) prefixes stay static, as the paper's network
	// dumps did across its testing periods.
	universe := &bgp.Snapshot{Name: "bgpsim-churn", Kind: bgp.SourceBGP}
	for _, v := range coll.Views {
		universe.Entries = append(universe.Entries, v.Entries...)
	}
	ccfg := bgpsim.DefaultChurnConfig()
	ccfg.Seed = *seed
	ccfg.MeanBatch = *meanBatch
	ccfg.Burstiness = *burstiness
	gen := bgpsim.NewChurnGen(universe, ccfg)

	churnCtx, stopChurn := context.WithCancel(context.Background())
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		if *churnEvery <= 0 {
			return
		}
		ticker := time.NewTicker(*churnEvery)
		defer ticker.Stop()
		for {
			select {
			case <-churnCtx.Done():
				return
			case <-ticker.C:
				st := table.Apply(gen.Next())
				fmt.Fprintf(os.Stderr,
					"clusterd: swap gen %d: +%d -%d ops; stability: %d carryover %d splits %d merges %d moved %d gained %d lost\n",
					st.Generation, st.Announced, st.Withdrawn,
					st.Carryover, st.Splits, st.Merges, st.Moved, st.Gained, st.Lost)
			}
		}
	}()

	s := &server{
		table:    table,
		sem:      make(chan struct{}, *maxInflight),
		maxBody:  *maxBody,
		maxBatch: *maxBatch,
		started:  time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", s.handleLookup)
	mux.HandleFunc("/cluster", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	debug := obsv.DebugHandler()
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announce the resolved address so ':0' users (and tests) can find it.
	fmt.Fprintf(os.Stderr, "clusterd: serving on http://%s (churn every %v, max-inflight %d)\n",
		ln.Addr(), *churnEvery, *maxInflight)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "clusterd: %v, draining\n", sig)
	}

	// Graceful drain: stop churn first (no point swapping tables for a
	// dying process), then let in-flight requests finish.
	stopChurn()
	<-churnDone
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "clusterd: drain: %v\n", err)
	}
	if *metricsOut != "" {
		if err := obsv.WriteFile(*metricsOut); err != nil {
			fatal(fmt.Errorf("metrics snapshot: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clusterd: metrics snapshot written to %s\n", *metricsOut)
	}
	fmt.Fprintf(os.Stderr, "clusterd: drained at generation %d, bye\n", table.Generation())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clusterd: %v\n", err)
	os.Exit(1)
}
