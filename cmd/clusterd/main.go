// Command clusterd is the long-running clustering service: it serves
// longest-prefix-match lookups and batch clustering over HTTP while
// absorbing BGP announce/withdraw deltas online. The prefix table is
// published RCU-style (internal/churn), so lookups stay lock-free
// through every hot swap and a generation counter in each response
// records which table answered.
//
//	clusterd -addr 127.0.0.1:8349 -ases 300 -churn-every 2s
//
// Endpoints:
//
//	GET  /lookup?addr=12.65.147.94   one address → cluster prefix JSON
//	POST /cluster                    newline-separated addresses → JSON
//	GET  /busy?k=20                  current top-K busy clusters, from
//	                                 the bounded accumulator every batch
//	                                 feeds (-busy-k, -sketch-epsilon)
//	GET  /healthz                    liveness + table generation
//	GET  /readyz                     readiness (false while draining,
//	                                 while the config file is invalid, or
//	                                 while export backlogs run high);
//	                                 follower nodes also report their
//	                                 feed lag in generations
//	GET  /debug/config               live config generation + sink status
//	GET  /metrics, /metrics.json, /debug/...
//	                                 obsv debug surface (Prometheus text,
//	                                 JSON snapshot — what a clusterrouter
//	                                 aggregator scrapes — expvar, pprof,
//	                                 flight trace)
//	GET  /feed/deltas, /feed/snapshot, /feed/status
//	                                 delta distribution (with -feed-serve)
//
// Requests carrying an X-Netcluster-Trace header join the caller's
// trace: lookup and batch spans inherit the router's TraceID so
// per-process /debug/trace dumps merge into one cluster-wide trace.
//
// The batch endpoint is admission-controlled: at most max-inflight
// batches run concurrently; beyond that clusterd answers 503 with
// Retry-After instead of queueing unboundedly (backpressure, not
// collapse).
//
// Flags seed every tunable. A -config file overrides the keys it names
// and is hot-reloaded: a polling watcher (and SIGHUP) re-reads it,
// validates, and swaps the accepted result in atomically via a
// generation pointer — admission limits, churn cadence and push-sink
// endpoints all retarget on a live process, and an invalid edit is
// rejected loudly while the previous generation keeps serving. The
// "sinks" key starts durable push exporters (internal/obsv/sink): delta
// batches WAL-journaled under -sink-dir and delivered with retry,
// backoff and a circuit breaker, so a dead collector never blocks the
// serving path.
//
// SIGTERM/SIGINT drain gracefully: readiness flips false, the listener
// stops accepting, in-flight requests finish (bounded by the drain
// timeout), the churn loop stops, export queues flush and fsync within
// the same deadline (a wedged sink cannot hang shutdown — its backlog
// stays persisted in the WAL), and -metrics-out receives a final
// snapshot that agrees with the pushed series.
//
// Churn is synthetic: the same bgpsim world that seeds the table also
// drives a bursty announce/withdraw schedule (-churn-every, -mean-batch,
// -burstiness), so a deployment-shaped soak run needs no external feed.
//
// Cluster roles. A clusterd can also be one node of a sharded cluster
// (internal/shard, cmd/clusterrouter):
//
//   - Compiler node: -feed-serve assigns every churn delta a sequence
//     number and publishes it at /feed/ (deltas, catch-up snapshot,
//     status), so follower nodes advance generation-for-generation in
//     lockstep with this table.
//   - Shard node: -feed http://compiler:8349 follows that stream
//     instead of churning locally; -shard-index/-shard-count restrict
//     the local table to the node's slice of the /8 shard map.
//
// A -table-snapshot boot is a warm start, not a frozen table: the
// snapshot's .meta sidecar (written by tabletool compile and by
// -snapshot-out on drain) records the stream position, the compiler is
// rebuilt around the loaded table, and the node either rejoins the
// delta feed from that position (-feed) or resumes local synthetic
// churn over the snapshot's own BGP prefixes.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/appconf"
	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/churn"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/obsv/sink"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/shard"
)

var (
	lookupNS      = obsv.H("clusterd.lookup.ns")
	lookupCount   = obsv.C("clusterd.lookups")
	batchCount    = obsv.C("clusterd.batches")
	batchAddrs    = obsv.C("clusterd.batch.addrs")
	batchRejected = obsv.C("clusterd.batch.rejected")
	inflightGauge = obsv.G("clusterd.batch.inflight")
)

type server struct {
	table   *churn.Table
	sem     *dynamicSemaphore
	tun     atomic.Pointer[tunables]
	busy    *busyTracker
	started time.Time

	draining atomic.Bool
	watcher  *appconf.Watcher[fileConfig] // nil without -config
	sinks    *sink.Manager
	follower *shard.Follower // non-nil in follower mode; feeds readiness lag
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	_, span := obsv.StartTraceSpan(obsv.HTTPExtract(r.Context(), r.Header), "clusterd.lookup")
	defer span.End()
	q := r.URL.Query().Get("addr")
	addr, err := netutil.ParseAddr(q)
	if err != nil {
		span.Fail(err)
		http.Error(w, fmt.Sprintf("bad addr %q: %v", q, err), http.StatusBadRequest)
		return
	}
	start := time.Now()
	gen := s.table.Generation()
	m, _ := s.table.Load().Lookup(addr)
	res := shard.ResolveMatch(addr, m, gen)
	lookupNS.Observe(time.Since(start).Nanoseconds())
	lookupCount.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handleBatch clusters a newline-separated address list in one pass. One
// table generation is pinned for the whole batch, so a swap mid-batch
// cannot produce a mixed-generation answer set; likewise one config
// generation is pinned, so a limits reload cannot change the rules on a
// request it already admitted.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// The span context arrives on the X-Netcluster-Trace header when a
	// clusterrouter fanned this batch out; extracting it makes this
	// node's spans part of the router's trace.
	ctx, span := obsv.StartTraceSpan(obsv.HTTPExtract(r.Context(), r.Header), "clusterd.batch")
	defer span.End()
	if r.Method != http.MethodPost {
		http.Error(w, "POST an address list", http.StatusMethodNotAllowed)
		return
	}
	tun := s.tun.Load()
	if !s.sem.TryAcquire() {
		batchRejected.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "batch capacity exhausted, retry later", http.StatusServiceUnavailable)
		return
	}
	inflightGauge.Add(1)
	defer func() { s.sem.Release(); inflightGauge.Add(-1) }()
	batchCount.Inc()

	// Pin one generation for the whole batch.
	table := s.table.Load()
	gen := s.table.Generation()

	// Parse the whole list first, then resolve it with one batched walk
	// against the pinned table — every answer from the same generation,
	// amortized lookup cost (bgp.Compiled.LookupBatch).
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, tun.MaxBodyBytes))
	addrs := make([]netutil.Addr, 0, 256)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(addrs) >= tun.MaxBatch {
			http.Error(w, fmt.Sprintf("batch exceeds %d addresses", tun.MaxBatch), http.StatusRequestEntityTooLarge)
			return
		}
		addr, err := netutil.ParseAddr(line)
		if err != nil {
			http.Error(w, fmt.Sprintf("line %d: bad addr %q", len(addrs)+1, line), http.StatusBadRequest)
			return
		}
		addrs = append(addrs, addr)
	}
	if err := sc.Err(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	span.SetAttrInt("addrs", int64(len(addrs)))
	_, lspan := obsv.StartTraceSpan(ctx, "clusterd.batch.lookup")
	matches := table.LookupBatch(addrs, nil)
	lspan.End()
	// Fold the resolved batch into the busy-cluster accumulator: one
	// lock per batch, fixed memory regardless of how many distinct
	// clusters the firehose touches.
	s.busy.observeMatches(matches)
	resp := shard.BatchResponse{Generation: gen, Results: make([]shard.LookupResult, len(addrs))}
	for i, addr := range addrs {
		resp.Results[i] = shard.ResolveMatch(addr, matches[i], gen)
	}
	batchAddrs.Add(uint64(len(resp.Results)))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleHealthz is liveness: the process is up and the table is
// readable. It stays 200 while draining — kill a live-but-draining
// process and you lose its final flush.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c := s.table.Load()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status     string  `json:"status"`
		Generation uint64  `json:"generation"`
		Prefixes   int     `json:"prefixes"`
		UptimeSec  float64 `json:"uptime_sec"`
	}{"ok", s.table.Generation(), c.Len(), time.Since(s.started).Seconds()})
}

// handleReadyz is readiness: whether this instance should receive
// traffic right now. False while draining, while the watched config file
// is failing validation, and while any export backlog sits above its
// high-water mark.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if s.watcher != nil && !s.watcher.Healthy() {
		reasons = append(reasons, "config rejected: "+s.watcher.LastError().Error())
	}
	if s.sinks != nil && !s.sinks.Healthy() {
		reasons = append(reasons, "export backlog above high-water mark")
	}
	ready := len(reasons) == 0
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	body := struct {
		Ready      bool     `json:"ready"`
		Reasons    []string `json:"reasons,omitempty"`
		Generation uint64   `json:"generation"`
		FeedLag    *uint64  `json:"feed_lag_generations,omitempty"`
	}{Ready: ready, Reasons: reasons, Generation: s.table.Generation()}
	if s.follower != nil {
		// Follower nodes report their generation distance behind the feed
		// head, as last measured by the lag monitor or a delta fetch. Lag
		// is an SLO signal, not a readiness gate: a lagging shard still
		// answers (with an older generation label), so it keeps traffic.
		lag := uint64(obsv.TakeSnapshot().Gauges["shard.feed.lag.generations"])
		body.FeedLag = &lag
	}
	json.NewEncoder(w).Encode(body)
}

// handleDebugConfig shows the effective runtime configuration: the
// resolved tunables, the config-file generation (0 when running on
// flags alone), and every push sink's operational position.
func (s *server) handleDebugConfig(w http.ResponseWriter, r *http.Request) {
	body := struct {
		Generation uint64            `json:"generation"`
		Path       string            `json:"path,omitempty"`
		LoadedAt   *time.Time        `json:"loaded_at,omitempty"`
		Effective  *tunables         `json:"effective"`
		LastError  string            `json:"last_error,omitempty"`
		Sinks      []sink.SinkStatus `json:"sinks,omitempty"`
	}{Effective: s.tun.Load()}
	if s.watcher != nil {
		cur := s.watcher.Current()
		body.Generation = cur.Generation
		body.Path = cur.Path
		t := cur.LoadedAt
		body.LoadedAt = &t
		if err := s.watcher.LastError(); err != nil {
			body.LastError = err.Error()
		}
	}
	if s.sinks != nil {
		body.Sinks = s.sinks.Status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8349", "listen address (use :0 to pick a free port)")
	ases := flag.Int("ases", 300, "synthetic world size (number of ASes)")
	seed := flag.Int64("seed", 1, "world/churn seed")
	churnEvery := flag.Duration("churn-every", 2*time.Second, "interval between churn deltas (0 disables churn)")
	meanBatch := flag.Int("mean-batch", 32, "mean announce/withdraw ops per churn delta")
	burstiness := flag.Float64("burstiness", 0.15, "probability a churn delta is a burst (8x mean)")
	maxInflight := flag.Int("max-inflight", 8, "concurrent /cluster batches before 503 backpressure")
	maxBatch := flag.Int("max-batch", 100000, "addresses per /cluster batch")
	maxBody := flag.Int64("max-body", 8<<20, "request body cap in bytes for /cluster")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests and sink flush on shutdown")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on shutdown")
	tableSnapshot := flag.String("table-snapshot", "", "warm-start the prefix table from a compiled snapshot file (see tabletool compile) instead of generating a synthetic world; the .meta sidecar restores the generation/stream position and the table keeps absorbing deltas")
	snapshotOut := flag.String("snapshot-out", "", "write the final table + .meta sidecar to this file on shutdown, ready for a -table-snapshot warm start")
	feedServe := flag.Bool("feed-serve", false, "publish this node's churn deltas at /feed/ (compiler node of a sharded cluster)")
	feedURL := flag.String("feed", "", "follow a compiler node's delta feed at this base URL instead of churning locally (shard/replica node)")
	feedPoll := flag.Duration("feed-poll", shard.DefaultPollEvery, "delta-fetch cadence when following a feed")
	shardIndex := flag.Int("shard-index", 0, "this node's shard id in the cluster map (with -shard-count)")
	shardCount := flag.Int("shard-count", 0, "total shards in the cluster map; restricts the local table to this node's /8 range (0: keep the full table)")
	busyK := flag.Int("busy-k", 100, "how many busy clusters /busy reports with exact counts")
	busyCapacity := flag.Int("busy-capacity", 0, "monitored-counter budget for busy-cluster accounting (0: 8x busy-k)")
	sketchEpsilon := flag.Float64("sketch-epsilon", 1e-4, "tail sketch error bound: unmonitored cluster estimates overshoot by at most epsilon x total requests")
	sketchDelta := flag.Float64("sketch-delta", 0.01, "tail sketch failure probability for the epsilon bound")
	sketchSpill := flag.String("sketch-spill", "sketch", "what happens to evicted clusters: 'sketch' keeps them queryable within the error bound, 'drop' halves the footprint")
	configPath := flag.String("config", "", "watched JSON config file; its keys override flags and hot-reload")
	configPoll := flag.Duration("config-poll", 2*time.Second, "poll interval for -config changes")
	sinkDir := flag.String("sink-dir", "", "directory for push-sink WALs (default: <tmp>/clusterd-sinks)")
	sinkHighWater := flag.Int("sink-high-water", 0, "export backlog depth that flips readiness false (0: queue capacity)")
	flag.Parse()

	// Distinct processes must mint distinct trace/span IDs or merged
	// cluster traces alias; the PID salt keeps each binary's sequences in
	// a disjoint range.
	obsv.SetTraceIDSalt(uint64(os.Getpid()) << 40)

	// Flags the operator set explicitly — the set a config-file key
	// shadows loudly rather than silently.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// keep restricts the local table to this node's shard range when the
	// shard flags are set; nil keeps the full table.
	var keep func(p netutil.Prefix) bool
	if *shardCount > 0 {
		if *shardIndex < 0 || *shardIndex >= *shardCount {
			fatal(fmt.Errorf("-shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount))
		}
		keep = shard.NewMap(*shardCount).Keep(*shardIndex)
		fmt.Fprintf(os.Stderr, "clusterd: shard %d/%d of the /8 map\n", *shardIndex, *shardCount)
	}
	if *feedServe && *feedURL != "" {
		fatal(fmt.Errorf("-feed-serve and -feed are mutually exclusive (no relay tier)"))
	}

	var (
		table    *churn.Table
		follower *shard.Follower // non-nil when following a feed
		universe *bgp.Snapshot   // local-churn universe; nil in follower mode
		logf     = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	)
	switch {
	case *feedURL != "" && *tableSnapshot != "":
		// Warm start from disk, then rejoin the stream from the sidecar's
		// position — a stale snapshot costs one resync, never a wrong table.
		tf, err := bgp.OpenTable(*tableSnapshot)
		if err != nil {
			fatal(fmt.Errorf("table snapshot %s: %w", *tableSnapshot, err))
		}
		meta, ok, err := bgp.LoadTableMeta(*tableSnapshot)
		if err != nil {
			fatal(fmt.Errorf("table snapshot %s: %w", *tableSnapshot, err))
		}
		if !ok {
			logf("clusterd: no .meta sidecar for %s, rejoining from seq 0 (expect a resync)", *tableSnapshot)
		}
		follower = shard.RejoinFromSnapshot(*feedURL, nil, tf.Table(), meta, keep)
		if err := tf.Close(); err != nil { // the rebuild copied everything
			fatal(err)
		}
		table = follower.Table
		logf("clusterd: warm start from %s at generation %d (stream seq %d), following feed %s",
			*tableSnapshot, meta.Generation, meta.Seq, *feedURL)
	case *feedURL != "":
		// Cold join: seed from the feed's catch-up snapshot.
		fl, err := shard.Join(*feedURL, nil, keep)
		if err != nil {
			fatal(fmt.Errorf("feed join %s: %w", *feedURL, err))
		}
		follower = fl
		table = follower.Table
		logf("clusterd: joined feed %s at seq %d", *feedURL, follower.Seq())
	case *tableSnapshot != "":
		// Warm start with no upstream: rebuild the compiler around the
		// snapshot and keep churning locally over its own BGP prefixes.
		tf, err := bgp.OpenTable(*tableSnapshot)
		if err != nil {
			fatal(fmt.Errorf("table snapshot %s: %w", *tableSnapshot, err))
		}
		meta, ok, err := bgp.LoadTableMeta(*tableSnapshot)
		if err != nil {
			fatal(fmt.Errorf("table snapshot %s: %w", *tableSnapshot, err))
		}
		mode := "copied"
		if tf.Mapped() {
			mode = "mmapped"
		}
		table = churn.NewFromCompiled(tf.Table(), keep, meta.Generation)
		universe = bgp.UniverseOf(tf.Table(), "snapshot-churn")
		if err := tf.Close(); err != nil { // the rebuild copied everything
			fatal(err)
		}
		c0 := table.Load()
		sidecar := fmt.Sprintf("generation %d", meta.Generation)
		if !ok {
			sidecar = "no sidecar, generation 0"
		}
		fmt.Fprintf(os.Stderr, "clusterd: table snapshot %s (%s, %s): %s BGP + %s registry prefixes, %s nodes\n",
			*tableSnapshot, mode, sidecar,
			report.FmtInt(c0.NumPrimary()), report.FmtInt(c0.NumSecondary()), report.FmtInt(c0.NumNodes()))
	default:
		wcfg := inet.DefaultConfig()
		wcfg.NumASes = *ases
		wcfg.Seed = *seed
		world, err := inet.Generate(wcfg)
		if err != nil {
			fatal(err)
		}
		scfg := bgpsim.DefaultConfig()
		scfg.Seed = *seed
		sim := bgpsim.New(world, scfg)
		coll := sim.Collect()
		merged := bgpsim.Merge(coll)
		// The churn universe is the union of every BGP vantage's entries;
		// the registry (secondary) prefixes stay static, as the paper's
		// network dumps did across its testing periods.
		universe = &bgp.Snapshot{Name: "bgpsim-churn", Kind: bgp.SourceBGP}
		for _, v := range coll.Views {
			universe.Entries = append(universe.Entries, v.Entries...)
		}
		if keep == nil {
			table = churn.New(merged)
		} else {
			// Sharded but self-churning (mostly a test rig): compile the
			// full world, then cut the table down to the owned range.
			table = churn.NewFromCompiled(bgp.NewIncremental(merged).Compiled(), keep, 0)
		}
		c0 := table.Load()
		fmt.Fprintf(os.Stderr, "clusterd: table generation 0: %s BGP + %s registry prefixes, %s nodes\n",
			report.FmtInt(c0.NumPrimary()), report.FmtInt(c0.NumSecondary()), report.FmtInt(c0.NumNodes()))
	}

	flagTun := tunables{
		MaxInflight:   *maxInflight,
		MaxBatch:      *maxBatch,
		MaxBodyBytes:  *maxBody,
		ChurnEvery:    appconf.Duration(*churnEvery),
		DrainTimeout:  appconf.Duration(*drainTimeout),
		BusyK:         *busyK,
		BusyCapacity:  *busyCapacity,
		SketchEpsilon: *sketchEpsilon,
		SketchDelta:   *sketchDelta,
		SketchSpill:   *sketchSpill,
	}
	busy, err := newBusyTracker(flagTun.boundedConfig())
	if err != nil {
		fatal(err)
	}
	s := &server{
		table:    table,
		sem:      newDynamicSemaphore(flagTun.MaxInflight),
		busy:     busy,
		started:  time.Now(),
		follower: follower,
	}
	s.tun.Store(&flagTun)

	if *sinkDir == "" {
		*sinkDir = os.TempDir() + "/clusterd-sinks"
	}
	s.sinks = sink.NewManager(*sinkDir, sink.Options{Defaults: sink.Config{
		HighWater: *sinkHighWater,
		Logf:      logf,
	}})

	// applyConfig resolves one accepted file generation into the live
	// tunables, the admission semaphore and the sink set — the swap the
	// watcher (and SIGHUP) drives.
	applyConfig := func(old, cur *appconf.Loaded[fileConfig]) {
		t := merge(flagTun, cur.Config, explicit, logf)
		s.tun.Store(&t)
		s.sem.SetCap(t.MaxInflight)
		s.busy.reconfigure(t.boundedConfig(), logf)
		if err := s.sinks.Apply(toSinkSpecs(cur.Config.Sinks)); err != nil {
			// Specs were validated at parse; this is an environment
			// failure (WAL dir unwritable). The previous sink set serves.
			logf("clusterd: sink reconcile: %v", err)
		}
		logf("clusterd: config generation %d applied: max-inflight %d, max-batch %d, churn-every %v, %d sink(s)",
			cur.Generation, t.MaxInflight, t.MaxBatch, t.ChurnEvery.Std(), len(cur.Config.Sinks))
	}
	if *configPath != "" {
		w, err := appconf.Watch(*configPath, parseFileConfig, appconf.Options[fileConfig]{
			PollInterval: *configPoll,
			OnSwap:       applyConfig,
			Logf:         logf,
		})
		if err != nil {
			fatal(err)
		}
		s.watcher = w
	}

	churnCtx, stopChurn := context.WithCancel(context.Background())
	churnDone := make(chan struct{})
	var feed *shard.Feed // non-nil with -feed-serve
	switch {
	case follower != nil:
		// Follower mode: the delta stream replaces local churn. Run polls
		// until drain, resyncing through partitions and log-retention gaps.
		follower.PollEvery = *feedPoll
		follower.Logf = logf
		// The lag monitor probes /feed/status faster than the delta poll,
		// so the feed-lag gauge rises between (or during stalled) fetches
		// instead of only moving when a fetch succeeds.
		monitor := *feedPoll / 4
		if monitor < 50*time.Millisecond {
			monitor = 50 * time.Millisecond
		}
		if monitor > time.Second {
			monitor = time.Second
		}
		follower.MonitorEvery = monitor
		go func() {
			defer close(churnDone)
			follower.Run(churnCtx)
		}()
	default:
		if *feedServe {
			feed = shard.NewFeed(table, 0)
			logf("clusterd: serving delta feed at %s (head seq %d)", shard.DeltasPath, feed.Head())
		}
		ccfg := bgpsim.DefaultChurnConfig()
		ccfg.Seed = *seed
		ccfg.MeanBatch = *meanBatch
		ccfg.Burstiness = *burstiness
		gen := bgpsim.NewChurnGen(universe, ccfg)

		// The churn loop re-reads its cadence each lap, so a config reload
		// retunes (or pauses) it without a restart. While disabled it idles
		// on a 1 s re-check instead of exiting, so churn can be hot-enabled.
		go func() {
			defer close(churnDone)
			for {
				every := s.tun.Load().ChurnEvery.Std()
				wait := every
				if every <= 0 {
					wait = time.Second
				}
				select {
				case <-churnCtx.Done():
					return
				case <-time.After(wait):
				}
				if every <= 0 {
					continue
				}
				// A compiler node publishes through the feed so the delta is
				// sequenced and retained for followers before anything else
				// observes the new generation.
				var st churn.SwapStats
				if feed != nil {
					st, _ = feed.Apply(gen.Next())
				} else {
					st = table.Apply(gen.Next())
				}
				fmt.Fprintf(os.Stderr,
					"clusterd: swap gen %d: +%d -%d ops; stability: %d carryover %d splits %d merges %d moved %d gained %d lost\n",
					st.Generation, st.Announced, st.Withdrawn,
					st.Carryover, st.Splits, st.Merges, st.Moved, st.Gained, st.Lost)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", s.handleLookup)
	mux.HandleFunc("/cluster", s.handleBatch)
	mux.HandleFunc("/busy", s.busy.handleBusy)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/config", s.handleDebugConfig)
	if feed != nil {
		fh := feed.Handler()
		mux.Handle(shard.DeltasPath, fh)
		mux.Handle(shard.SnapshotPath, fh)
		mux.Handle(shard.StatusPath, fh)
	}
	debug := obsv.DebugHandler()
	mux.Handle("/metrics", debug)
	mux.Handle("/metrics.json", debug)
	mux.Handle("/debug/", debug)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announce the resolved address so ':0' users (and tests) can find it.
	fmt.Fprintf(os.Stderr, "clusterd: serving on http://%s (churn every %v, max-inflight %d)\n",
		ln.Addr(), s.tun.Load().ChurnEvery.Std(), s.sem.Cap())

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
loop:
	for {
		select {
		case err := <-errc:
			fatal(err)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if s.watcher == nil {
					fmt.Fprintln(os.Stderr, "clusterd: SIGHUP with no -config file, nothing to reload")
					continue
				}
				if swapped, err := s.watcher.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "clusterd: SIGHUP reload rejected: %v\n", err)
				} else if swapped {
					fmt.Fprintf(os.Stderr, "clusterd: SIGHUP reload: generation %d live\n", s.watcher.Generation())
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "clusterd: %v, draining\n", sig)
			break loop
		}
	}

	// Graceful drain, in dependency order: readiness flips first (load
	// balancers stop sending), churn stops (no point swapping tables for
	// a dying process), in-flight requests finish, then export queues
	// flush and fsync within the same deadline — a wedged sink cannot
	// hang shutdown; its backlog stays persisted in the WAL. The metrics
	// snapshot is written last so it agrees with the pushed series.
	s.draining.Store(true)
	stopChurn()
	<-churnDone
	if s.watcher != nil {
		s.watcher.Close()
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.tun.Load().DrainTimeout.Std())
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "clusterd: drain: %v\n", err)
	}
	if err := s.sinks.Close(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "clusterd: sink flush: %v\n", err)
	}
	if *snapshotOut != "" {
		// Churn is stopped and requests are drained, so this is the final
		// table; the sidecar records where in the stream it stands so the
		// next boot warm-starts instead of recompiling the world.
		seq := table.Generation()
		if follower != nil {
			seq = follower.Seq()
		} else if feed != nil {
			seq = feed.Head()
		}
		if err := bgp.SaveTable(*snapshotOut, table.Load()); err != nil {
			fatal(fmt.Errorf("table snapshot: %w", err))
		}
		if err := bgp.SaveTableMeta(*snapshotOut, bgp.TableMeta{Generation: table.Generation(), Seq: seq}); err != nil {
			fatal(fmt.Errorf("table snapshot sidecar: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clusterd: table snapshot written to %s (generation %d, seq %d)\n",
			*snapshotOut, table.Generation(), seq)
	}
	if *metricsOut != "" {
		if err := obsv.WriteFile(*metricsOut); err != nil {
			fatal(fmt.Errorf("metrics snapshot: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clusterd: metrics snapshot written to %s\n", *metricsOut)
	}
	fmt.Fprintf(os.Stderr, "clusterd: drained at generation %d, bye\n", table.Generation())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clusterd: %v\n", err)
	os.Exit(1)
}
