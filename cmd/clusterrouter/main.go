// Command clusterrouter fronts a sharded clusterd deployment: it owns
// the versioned /8 shard map, fans batch clustering requests out to the
// shard nodes, and merges the answers back into input order. One router
// plus N shard clusterds (each running with -feed and -shard-index)
// serves the same wire format as a single clusterd, so clients migrate
// by repointing a URL.
//
//	clusterrouter -addr 127.0.0.1:8350 \
//	    -shards http://127.0.0.1:8361,http://127.0.0.1:8362,http://127.0.0.1:8363
//
// Endpoints:
//
//	POST /cluster    fan-out batch; results in input order, Degradation
//	                 map when shards are down (partial, never wrong)
//	GET  /lookup     single-address proxy to the owning shard
//	GET  /shardmap   the live shard map (version, block ranges, addrs)
//	GET  /healthz    fan-out probe; 200 with a degraded report
//	GET  /readyz     readiness: 503 while draining or with no live
//	                 shard; reports live-shard count + scrape staleness
//	GET  /metrics/cluster  federated Prometheus page: every shard's
//	                 series labeled {shard="i"} plus cluster-wide
//	                 quantiles merged from the shards' histograms
//	GET  /metrics, /metrics.json, /debug/...  obsv debug surface
//
// Requests carrying an X-Netcluster-Trace header join the caller's
// trace; the router's fan-out spans and every shard's server-side spans
// share that TraceID, so the per-process /debug/trace dumps merge into
// one cluster-wide trace (tracecheck -merge).
//
// Failure is partial by design: a dead shard costs only its own rows,
// which come back with an Error annotation and a zero answer, and the
// batch reports the outage in its Degradation map instead of failing.
// SIGTERM/SIGINT drain in-flight fan-outs before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8350", "listen address (use :0 to pick a free port)")
	shards := flag.String("shards", "", "comma-separated shard node base URLs, in shard-id order (required)")
	timeout := flag.Duration("timeout", shard.DefaultRouterTimeout, "per-shard request budget within a batch")
	maxBatch := flag.Int("max-batch", shard.DefaultMaxBatch, "addresses per routed /cluster batch")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "grace period for in-flight fan-outs on shutdown")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on shutdown")
	federateEvery := flag.Duration("federate-every", shard.DefaultFederateEvery,
		"staleness bound on the /metrics/cluster aggregator's pulled shard snapshots")
	flag.Parse()

	// Distinct processes must mint distinct trace/span IDs or merged
	// cluster traces alias; the PID salt keeps each binary's sequences in
	// a disjoint range.
	obsv.SetTraceIDSalt(uint64(os.Getpid()) << 40)

	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fatal(fmt.Errorf("-shards is required: comma-separated shard node URLs"))
	}

	// The shard map is derived from the node count: shard i owns its
	// equal slice of the 256 /8 blocks, same as the nodes' own
	// -shard-index/-shard-count flags derive theirs.
	m := shard.NewMap(len(urls))
	for i := range m.Shards {
		m.Shards[i].Addr = urls[i]
	}
	rt, err := shard.NewRouter(shard.RouterConfig{
		Map:           m,
		Timeout:       *timeout,
		MaxBatch:      *maxBatch,
		FederateEvery: *federateEvery,
	})
	if err != nil {
		fatal(err)
	}
	for _, s := range m.Shards {
		fmt.Fprintf(os.Stderr, "clusterrouter: shard %d: blocks %d-%d -> %s\n",
			s.ID, s.FirstBlock, s.LastBlock, s.Addr)
	}

	mux := http.NewServeMux()
	rh := rt.Handler()
	mux.Handle("/cluster", rh)
	mux.Handle("/lookup", rh)
	mux.Handle("/shardmap", rh)
	mux.Handle("/healthz", rh)
	mux.Handle("/readyz", rh)
	mux.Handle("/metrics/cluster", rh)
	debug := obsv.DebugHandler()
	mux.Handle("/metrics", debug)
	mux.Handle("/metrics.json", debug)
	mux.Handle("/debug/", debug)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clusterrouter: serving on http://%s (%d shards, map version %d)\n",
		ln.Addr(), m.NumShards(), m.Version)

	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "clusterrouter: %v, draining\n", sig)
	}
	rt.SetDraining(true) // /readyz flips 503 while the drain runs

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "clusterrouter: drain: %v\n", err)
	}
	if *metricsOut != "" {
		if err := obsv.WriteFile(*metricsOut); err != nil {
			fatal(fmt.Errorf("metrics snapshot: %w", err))
		}
		fmt.Fprintf(os.Stderr, "clusterrouter: metrics snapshot written to %s\n", *metricsOut)
	}
	fmt.Fprintln(os.Stderr, "clusterrouter: drained, bye")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "clusterrouter: %v\n", err)
	os.Exit(1)
}
