package main

import (
	"context"
	"fmt"
	"os"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/tracesim"
	"github.com/netaware/netcluster/internal/weblog"
)

// env lazily builds and caches the shared experiment inputs: the world,
// the BGP simulator, the merged table, and the four server logs. Laziness
// matters because single experiments should not pay for the whole suite.
type env struct {
	scale float64
	seed  int64
	// ctx carries the running experiment's trace span so the library
	// calls below nest their spans under it; main swaps it per
	// experiment.
	ctx context.Context

	world  *inet.Internet
	sim    *bgpsim.Sim
	coll   *bgpsim.Collection
	merged *bgp.Merged
	logs   map[string]*weblog.Log
	naRes  map[string]*cluster.Result
	siRes  map[string]*cluster.Result
}

func newEnv(scale float64, seed int64) *env {
	return &env{
		scale: scale,
		seed:  seed,
		ctx:   context.Background(),
		logs:  map[string]*weblog.Log{},
		naRes: map[string]*cluster.Result{},
		siRes: map[string]*cluster.Result{},
	}
}

// Ctx returns the trace context of the experiment currently running.
func (e *env) Ctx() context.Context { return e.ctx }

func (e *env) fail(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}

// World sizes with scale so the biggest log profile (Apache: 35,563
// networks at scale 1) always fits, with headroom.
func (e *env) World() *inet.Internet {
	if e.world == nil {
		cfg := inet.DefaultConfig()
		cfg.Seed = e.seed
		cfg.NumASes = int(5600*e.scale) + 300
		cfg.NumTierOne = 24
		if cfg.NumASes < cfg.NumTierOne*2 {
			cfg.NumASes = cfg.NumTierOne * 2
		}
		w, err := inet.Generate(cfg)
		if err != nil {
			e.fail(err)
		}
		e.world = w
		fmt.Printf("[world: %d ASes, %d networks]\n", len(w.ASes), len(w.Networks))
	}
	return e.world
}

func (e *env) Sim() *bgpsim.Sim {
	if e.sim == nil {
		cfg := bgpsim.DefaultConfig()
		cfg.Seed = e.seed
		e.sim = bgpsim.New(e.World(), cfg)
	}
	return e.sim
}

func (e *env) Collection() *bgpsim.Collection {
	if e.coll == nil {
		e.coll = e.Sim().Collect()
	}
	return e.coll
}

func (e *env) Merged() *bgp.Merged {
	if e.merged == nil {
		e.merged = bgpsim.Merge(e.Collection())
		fmt.Printf("[merged table: %d BGP + %d registry prefixes]\n",
			e.merged.NumPrimary(), e.merged.NumSecondary())
	}
	return e.merged
}

// logConfig returns the scaled profile for a named trace.
func (e *env) logConfig(name string) weblog.GenConfig {
	switch name {
	case "Nagano":
		return weblog.Nagano(e.scale)
	case "Apache":
		return weblog.Apache(e.scale)
	case "EW3":
		return weblog.EW3(e.scale)
	case "Sun":
		return weblog.Sun(e.scale)
	default:
		e.fail(fmt.Errorf("unknown log profile %q", name))
		panic("unreachable")
	}
}

func (e *env) Log(name string) *weblog.Log {
	if l, ok := e.logs[name]; ok {
		return l
	}
	cfg := e.logConfig(name)
	l, err := weblog.Generate(e.World(), cfg)
	if err != nil {
		e.fail(err)
	}
	st := l.Stats()
	fmt.Printf("[%s log: %d requests, %d clients, %d URLs over %v]\n",
		name, st.Requests, st.UniqueClients, st.UniqueURLs, st.Duration)
	e.logs[name] = l
	return l
}

// NetworkAware returns the (cached) network-aware clustering of a log.
func (e *env) NetworkAware(name string) *cluster.Result {
	if r, ok := e.naRes[name]; ok {
		return r
	}
	r := cluster.ClusterLogCtx(e.Ctx(), e.Log(name), cluster.NetworkAware{Table: e.Merged()})
	e.naRes[name] = r
	return r
}

// SimpleResult returns the (cached) simple-approach clustering of a log.
func (e *env) SimpleResult(name string) *cluster.Result {
	if r, ok := e.siRes[name]; ok {
		return r
	}
	r := cluster.ClusterLogCtx(e.Ctx(), e.Log(name), cluster.Simple{})
	e.siRes[name] = r
	return r
}

func (e *env) Resolver() *dnssim.Resolver { return dnssim.New(e.World()) }

func (e *env) Tracer() *tracesim.Tracer {
	return tracesim.New(e.World(), e.World().VantageASes()[0])
}
