package main

import (
	"fmt"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/detect"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/websim"
)

func init() {
	register("fig11", "Server hit/byte-hit ratio vs proxy cache size (both approaches)", runFig11)
	register("fig12", "Per-proxy performance of the top-100 clusters (infinite cache)", runFig12)
}

// cleanedResults clusters the Nagano log with spiders/proxies eliminated,
// as Section 4.1 prescribes, under both approaches.
func cleanedResults(e *env) (na, si *cluster.Result) {
	l := e.Log("Nagano")
	pre := e.SimpleResult("Nagano")
	bad := detect.FindingClients(detect.Detect(pre, detect.DefaultConfig()))
	clean := detect.Eliminate(l, bad)
	if len(bad) > 0 {
		fmt.Printf("[eliminated %d spider/proxy clients before simulation]\n", len(bad))
	}
	na = cluster.ClusterLog(clean, cluster.NetworkAware{Table: e.Merged()})
	si = cluster.ClusterLog(clean, cluster.Simple{})
	return na, si
}

func runFig11(e *env) {
	na, si := cleanedResults(e)
	sizes := []int64{100 << 10, 300 << 10, 700 << 10, 1 << 20, 3 << 20, 10 << 20, 30 << 20, 100 << 20}
	cfg := websim.DefaultConfig()
	naOut := websim.Sweep(na, cfg, sizes)
	siOut := websim.Sweep(si, cfg, sizes)

	t := &report.Table{
		Title: "Figure 11: server performance vs proxy cache size (Nagano, TTL=1h, PCV)",
		Headers: []string{"cache size", "hit ratio (na)", "hit ratio (simple)",
			"byte hit (na)", "byte hit (simple)"},
	}
	fmtSize := func(b int64) string {
		switch {
		case b >= 1<<20:
			return fmt.Sprintf("%dMB", b>>20)
		default:
			return fmt.Sprintf("%dKB", b>>10)
		}
	}
	for i, s := range sizes {
		t.AddRow(fmtSize(s),
			report.FmtPct(naOut[i].HitRatio), report.FmtPct(siOut[i].HitRatio),
			report.FmtPct(naOut[i].ByteHitRatio), report.FmtPct(siOut[i].ByteHitRatio))
	}
	fmt.Println(t)
	last := len(sizes) - 1
	fmt.Printf("at %s the simple approach under-estimates the hit ratio by %s (paper: ~10%%)\n",
		fmtSize(sizes[last]),
		report.FmtPct(naOut[last].HitRatio-siOut[last].HitRatio))
	fmt.Println("paper: both ratios rise with cache size; network-aware reaches 60-75% on the Nagano log")
}

func runFig12(e *env) {
	na, si := cleanedResults(e)
	cfg := websim.DefaultConfig()
	cfg.CacheBytes = 0 // infinite, as in the paper
	naOut := websim.Simulate(na, cfg)
	siOut := websim.Simulate(si, cfg)

	printTop := func(label string, out websim.Outcome) {
		top := out.Proxies
		if len(top) > 100 {
			top = top[:100]
		}
		t := &report.Table{
			Title:   fmt.Sprintf("Figure 12 (%s): top clusters by requests, infinite proxy caches", label),
			Headers: []string{"rank", "requests (a)", "KB fetched (b)", "hit ratio (c)", "byte hit (d)", "clients"},
		}
		idx, _ := report.Downsample(make([]int, len(top)), 14)
		for _, i := range idx {
			p := top[i-1]
			t.AddRow(report.FmtInt(i), report.FmtInt(p.Requests), report.FmtInt(int(p.Bytes>>10)),
				report.FmtPct(p.Stats.HitRatio()), report.FmtPct(p.Stats.ByteHitRatio()),
				report.FmtInt(p.Clients))
		}
		fmt.Println(t)
	}
	printTop("network-aware", naOut)
	printTop("simple", siOut)
	mean := func(out websim.Outcome, n int) (h, b float64) {
		if n > len(out.Proxies) {
			n = len(out.Proxies)
		}
		for _, p := range out.Proxies[:n] {
			h += p.Stats.HitRatio()
			b += p.Stats.ByteHitRatio()
		}
		return h / float64(n), b / float64(n)
	}
	nh, nb := mean(naOut, 100)
	sh, sb := mean(siOut, 100)
	fmt.Printf("top-100 mean hit/byte-hit: network-aware %s/%s vs simple %s/%s\n",
		report.FmtPct(nh), report.FmtPct(nb), report.FmtPct(sh), report.FmtPct(sb))
	fmt.Println("paper: per-proxy results differ greatly between approaches — the simple approach")
	fmt.Println("fails to evaluate the potential benefit of proxy caching")
}
