package main

import (
	"fmt"
	"time"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/dnswire"
	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/whois"
)

func init() {
	register("chaos", "Fault-injection sweep: live validation under loss and latency", runChaos)
}

// chaosClient returns a wire client tuned for a sweep cell: short
// per-attempt deadlines so a lossy cell does not stretch the experiment,
// a deep retry ladder so verdicts still converge.
func chaosClient(addr string, seed int64) *dnswire.Client {
	c := dnswire.NewClient(addr)
	c.Seed(seed)
	c.Timeout = 120 * time.Millisecond
	c.Retries = 5
	c.Backoff.BaseDelay = 5 * time.Millisecond
	c.Backoff.MaxDelay = 40 * time.Millisecond
	return c
}

// agreement is the fraction of clusters whose Pass verdict matches the
// baseline's, position by position (both reports ran the same sample).
func agreement(base, got validate.Report) float64 {
	if len(base.Verdicts) == 0 || len(base.Verdicts) != len(got.Verdicts) {
		return 0
	}
	match := 0
	for i := range base.Verdicts {
		if base.Verdicts[i].Pass == got.Verdicts[i].Pass {
			match++
		}
	}
	return float64(match) / float64(len(base.Verdicts))
}

func runChaos(e *env) {
	world := e.World()
	res := e.NetworkAware("Nagano")
	sampled := validate.Sample(res.Clusters, 0.02, e.seed)
	if len(sampled) > 30 {
		sampled = sampled[:30] // bound the sweep's wall clock
	}
	fmt.Printf("[chaos: %d sampled clusters from %d]\n", len(sampled), len(res.Clusters))

	// Baseline: live DNS over a fault-free loopback.
	baseline := runChaosCell(e, world, sampled, faultnet.Profile{}, 0)

	sweep := []struct {
		drop   float64
		jitter time.Duration
	}{
		{0.10, 25 * time.Millisecond},
		{0.20, 50 * time.Millisecond},
		{0.30, 50 * time.Millisecond},
	}
	t := &report.Table{
		Title: "Live validation under injected faults (nslookup method)",
		Headers: []string{"profile", "pass rate", "agree vs clean", "resolvable",
			"demoted", "retries", "breaker", "injected"},
	}
	t.AddRow("clean", report.FmtPct(baseline.rep.PassRate()), report.FmtPct(1),
		report.FmtInt(baseline.rep.ReachableClients), "0", "0", "0", "0")
	for i, cell := range sweep {
		prof := faultnet.Profile{
			Seed:     e.seed + int64(i) + 1,
			Inbound:  faultnet.Faults{Drop: cell.drop},
			Outbound: faultnet.Faults{Jitter: cell.jitter},
		}
		got := runChaosCell(e, world, sampled, prof, e.seed+int64(i)+100)
		deg := got.rep.Degradation
		t.AddRow(
			fmt.Sprintf("%.0f%% drop, %v jitter", cell.drop*100, cell.jitter),
			report.FmtPct(got.rep.PassRate()),
			report.FmtPct(agreement(baseline.rep, got.rep)),
			report.FmtInt(got.rep.ReachableClients),
			report.FmtInt(deg.DemotedClients),
			report.FmtInt(deg.Retries),
			report.FmtInt(deg.BreakerOpens),
			report.FmtInt(int(got.faults.Total())),
		)
	}
	fmt.Println(t)
	fmt.Println("paper analogue: Section 3.3 ran nslookup over the live Internet and")
	fmt.Println("tolerated unresolvable names; verdicts should agree with the clean run")
	fmt.Println("while the degradation counters show the retries that bought the agreement.")

	runChaosWhois(e)
}

type chaosCell struct {
	rep    validate.Report
	faults faultnet.Stats
}

// runChaosCell stands up one live DNS server (behind the profile's faults
// when any), validates the sample through it, and tears it down.
func runChaosCell(e *env, world *inet.Internet, sampled []*cluster.Cluster, prof faultnet.Profile, clientSeed int64) chaosCell {
	srv := dnswire.NewServer(dnswire.NewReverseZone(world))
	var inj *faultnet.Injector
	if prof != (faultnet.Profile{}) {
		inj = faultnet.New(prof)
		srv.Wrap = inj.PacketConn
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		e.fail(err)
	}
	defer srv.Close()
	resolver := dnswire.SuffixResolver{Client: chaosClient(addr.String(), clientSeed)}
	rep := validate.Nslookup(world, resolver, sampled)
	var st faultnet.Stats
	if inj != nil {
		st = inj.Stats()
	}
	return chaosCell{rep: rep, faults: st}
}

// runChaosWhois exercises the whois path of the pipeline under a flaky
// registry: dropped connections at accept time plus a dead registry for
// the circuit-breaker row.
func runChaosWhois(e *env) {
	records := map[uint32]whois.Record{}
	for asn, info := range e.Sim().ASRegistry() {
		records[asn] = whois.Record{ASN: asn, Name: info.Name, Country: info.Country}
	}
	srv := whois.NewServer(records)
	inj := faultnet.New(faultnet.Profile{Seed: e.seed + 7, Inbound: faultnet.Faults{Drop: 0.3}})
	srv.Wrap = inj.Listener
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		e.fail(err)
	}
	defer srv.Close()

	c := whois.NewClient(addr.String())
	c.Timeout = 200 * time.Millisecond
	c.Retries = 6
	c.Backoff.BaseDelay = 5 * time.Millisecond
	resolved, failed := 0, 0
	asns := whois.SortedASNs(records)
	if len(asns) > 40 {
		asns = asns[:40]
	}
	for _, asn := range asns {
		if _, ok, err := c.Lookup(asn); err == nil && ok {
			resolved++
		} else if err != nil {
			failed++
		}
	}
	fmt.Printf("\nwhois under 30%% connection loss: %d/%d ASNs resolved, %d failed;\n",
		resolved, len(asns), failed)
	fmt.Printf("  %d wire attempts (%d retries), %d connections dropped by faultnet\n",
		c.NetworkQueries(), c.RetryCount(), inj.Stats().Drops)
}
