package main

import (
	"fmt"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/stats"
)

func init() {
	register("fig3", "CDFs of clients and requests per cluster (Nagano)", runFig3)
	register("fig4", "Cluster distributions in reverse order of #clients (Nagano)", runFig4)
	register("fig5", "Cluster distributions in reverse order of #requests (Nagano)", runFig5)
	register("fig6", "Cross-log comparison of cluster distributions", runFig6)
	register("coverage", "Clusterable-client coverage (the 99.9% claim)", runCoverage)
}

func runFig3(e *env) {
	res := e.NetworkAware("Nagano")
	clusters := res.Clusters
	fmt.Printf("Nagano: %s clusters from %s clients\n\n",
		report.FmtInt(len(clusters)), report.FmtInt(res.NumClients()))

	printCDF := func(title string, values []int) {
		pts := stats.CDF(values)
		t := &report.Table{Title: title, Headers: []string{"x", "P(X <= x)"}}
		// Downsample the curve at log-spaced x positions.
		idx, _ := report.Downsample(make([]int, len(pts)), 16)
		for _, i := range idx {
			p := pts[i-1]
			t.AddRow(report.FmtInt(int(p.X)), report.FmtPct(p.Y))
		}
		fmt.Println(t)
	}
	clientCounts := cluster.ClientCounts(clusters)
	reqCounts := cluster.RequestCounts(clusters)
	printCDF("Figure 3(a): CDF of number of clients in a cluster", clientCounts)
	printCDF("Figure 3(b): CDF of number of requests issued from a cluster", reqCounts)

	sc := stats.Summarize(clientCounts)
	sr := stats.Summarize(reqCounts)
	fmt.Printf("clients/cluster: max=%s mean=%.1f | requests/cluster: max=%s mean=%.1f\n",
		report.FmtInt(sc.Max), sc.Mean, report.FmtInt(sr.Max), sr.Mean)
	fmt.Printf("heavy-tail check: request Gini %.3f > client Gini %.3f (paper: requests more heavy-tailed)\n",
		stats.Gini(reqCounts), stats.Gini(clientCounts))
}

func runFig4(e *env) {
	res := e.NetworkAware("Nagano")
	ordered := res.ByClientsDesc()
	fmt.Println(report.SeriesTable(
		"Figure 4: Nagano clusters in reverse order of #clients (log-spaced ranks)",
		"rank",
		[]string{"clients (a)", "requests (b)", "URLs (c)"},
		[][]int{cluster.ClientCounts(ordered), cluster.RequestCounts(ordered), cluster.URLCounts(ordered)},
		18))
	flagSmallBusy(res, ordered)
}

// flagSmallBusy reproduces the Figure 4 observation: some relatively small
// clusters issue a disproportionate share of requests/URLs — spider and
// proxy candidates.
func flagSmallBusy(res *cluster.Result, ordered []*cluster.Cluster) {
	totalReqs := 0
	urls := map[int32]struct{}{}
	for _, c := range ordered {
		totalReqs += c.Requests
		for u := range c.URLSet() {
			urls[u] = struct{}{}
		}
	}
	for i, c := range ordered {
		if i < len(ordered)/2 {
			continue // only the small half
		}
		reqShare := float64(c.Requests) / float64(totalReqs)
		urlShare := float64(c.NumURLs()) / float64(len(urls))
		if reqShare > 0.01 || urlShare > 0.2 {
			fmt.Printf("unusual: cluster %v has %d clients but %s of requests, %s of URLs (suspect spider/proxy)\n",
				c.Prefix, c.NumClients(), report.FmtPct(reqShare), report.FmtPct(urlShare))
		}
	}
}

func runFig5(e *env) {
	res := e.NetworkAware("Nagano")
	ordered := res.ByRequestsDesc()
	fmt.Println(report.SeriesTable(
		"Figure 5: Nagano clusters in reverse order of #requests (log-spaced ranks)",
		"rank",
		[]string{"requests (a)", "clients (b)", "URLs (c)"},
		[][]int{cluster.RequestCounts(ordered), cluster.ClientCounts(ordered), cluster.URLCounts(ordered)},
		18))
	// Busy clusters with very few clients are proxy/spider candidates.
	for _, c := range ordered[:min(10, len(ordered))] {
		if c.NumClients() <= 2 {
			fmt.Printf("busy cluster %v: %s requests from only %d client(s) — suspected proxy/spider\n",
				c.Prefix, report.FmtInt(c.Requests), c.NumClients())
		}
	}
}

func runFig6(e *env) {
	names := []string{"Apache", "EW3", "Nagano", "Sun"}
	for _, name := range names {
		res := e.NetworkAware(name)
		byC := res.ByClientsDesc()
		byR := res.ByRequestsDesc()
		fmt.Println(report.SeriesTable(
			fmt.Sprintf("Figure 6 (%s): by #clients — (a) clients, (b) requests", name),
			"rank",
			[]string{"clients", "requests"},
			[][]int{cluster.ClientCounts(byC), cluster.RequestCounts(byC)},
			10))
		fmt.Println(report.SeriesTable(
			fmt.Sprintf("Figure 6 (%s): by #requests — (c) requests, (d) clients", name),
			"rank",
			[]string{"requests", "clients"},
			[][]int{cluster.RequestCounts(byR), cluster.ClientCounts(byR)},
			10))
	}
}

func runCoverage(e *env) {
	t := &report.Table{
		Title:   "Coverage: fraction of clients clusterable (Section 3.2.2)",
		Headers: []string{"log", "clients", "clustered", "via BGP", "via netdump", "unclustered", "coverage"},
	}
	for _, name := range []string{"Apache", "EW3", "Nagano", "Sun"} {
		res := e.NetworkAware(name)
		na := cluster.NetworkAware{Table: e.Merged()}
		viaBGP, viaDump := 0, 0
		for _, c := range res.Clusters {
			for a := range c.Clients {
				if k, ok := na.SourceOf(a); ok {
					if k == bgp.SourceBGP {
						viaBGP++
					} else {
						viaDump++
					}
				}
			}
		}
		t.AddRow(name,
			report.FmtInt(res.NumClients()+len(res.Unclustered)),
			report.FmtInt(res.NumClients()),
			report.FmtInt(viaBGP),
			report.FmtInt(viaDump),
			report.FmtInt(len(res.Unclustered)),
			report.FmtPct(res.Coverage()))
	}
	fmt.Println(t)
	fmt.Println("paper: 99.9% clusterable with merged table; ~99% with BGP tables alone")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
