package main

import (
	"fmt"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/stats"
)

func init() {
	register("fig7", "Network-aware vs simple cluster distributions (Nagano)", runFig7)
	register("tab5", "Thresholding busy client clusters (Nagano, both approaches)", runTab5)
}

func runFig7(e *env) {
	na := e.NetworkAware("Nagano")
	si := e.SimpleResult("Nagano")

	naByC, siByC := na.ByClientsDesc(), si.ByClientsDesc()
	naByR, siByR := na.ByRequestsDesc(), si.ByRequestsDesc()

	fmt.Println(report.SeriesTable(
		"Figure 7(a): #clients per cluster, by #clients — network-aware",
		"rank", []string{"clients"}, [][]int{cluster.ClientCounts(naByC)}, 12))
	fmt.Println(report.SeriesTable(
		"Figure 7(a): #clients per cluster, by #clients — simple",
		"rank", []string{"clients"}, [][]int{cluster.ClientCounts(siByC)}, 12))
	fmt.Println(report.SeriesTable(
		"Figure 7(c): #requests per cluster, by #requests — network-aware",
		"rank", []string{"requests"}, [][]int{cluster.RequestCounts(naByR)}, 12))
	fmt.Println(report.SeriesTable(
		"Figure 7(c): #requests per cluster, by #requests — simple",
		"rank", []string{"requests"}, [][]int{cluster.RequestCounts(siByR)}, 12))

	summary := &report.Table{
		Title:   "Figure 7 summary: the two approaches on the same log",
		Headers: []string{"metric", "network-aware", "simple"},
	}
	naC, siC := stats.Summarize(cluster.ClientCounts(naByC)), stats.Summarize(cluster.ClientCounts(siByC))
	naR, siR := stats.Summarize(cluster.RequestCounts(naByR)), stats.Summarize(cluster.RequestCounts(siByR))
	largestNA, largestSI := naByC[0], siByC[0]
	summary.AddRow("clusters", report.FmtInt(len(na.Clusters)), report.FmtInt(len(si.Clusters)))
	summary.AddRow("largest cluster (clients)", report.FmtInt(naC.Max), report.FmtInt(siC.Max))
	summary.AddRow("largest cluster's requests",
		report.FmtInt(largestNA.Requests), report.FmtInt(largestSI.Requests))
	summary.AddRow("mean cluster size", fmt.Sprintf("%.2f", naC.Mean), fmt.Sprintf("%.2f", siC.Mean))
	summary.AddRow("cluster size variance", fmt.Sprintf("%.1f", naC.Variance), fmt.Sprintf("%.1f", siC.Variance))
	summary.AddRow("mean requests/cluster", fmt.Sprintf("%.1f", naR.Mean), fmt.Sprintf("%.1f", siR.Mean))
	fmt.Println(summary)
	fmt.Println("paper (Nagano): 9,853 vs 23,523 clusters; largest 1,343 vs 63 clients;")
	fmt.Println("simple clusters are smaller on average with lower variance, and cap at 256 clients")
}

func runTab5(e *env) {
	na := e.NetworkAware("Nagano")
	si := e.SimpleResult("Nagano")
	const coverFrac = 0.70

	t := &report.Table{
		Title:   "Table 5: thresholding client clusters on the Nagano log (70% of requests)",
		Headers: []string{"", "Network-aware", "Simple"},
	}
	thNA, thSI := na.ThresholdBusy(coverFrac), si.ThresholdBusy(coverFrac)
	describe := func(th cluster.Thresholding) (busy string, busyRange string, lessRange string) {
		clients, reqs := 0, 0
		minC, maxC := -1, 0
		for _, c := range th.Busy {
			clients += c.NumClients()
			reqs += c.Requests
			if minC == -1 || c.NumClients() < minC {
				minC = c.NumClients()
			}
			if c.NumClients() > maxC {
				maxC = c.NumClients()
			}
		}
		maxBusy := 0
		if len(th.Busy) > 0 {
			maxBusy = th.Busy[0].Requests
		}
		lminC, lmaxC, lminR, lmaxR := -1, 0, -1, 0
		for _, c := range th.LessBusy {
			if lminC == -1 || c.NumClients() < lminC {
				lminC = c.NumClients()
			}
			if c.NumClients() > lmaxC {
				lmaxC = c.NumClients()
			}
			if lminR == -1 || c.Requests < lminR {
				lminR = c.Requests
			}
			if c.Requests > lmaxR {
				lmaxR = c.Requests
			}
		}
		busy = fmt.Sprintf("%s (%s clients, %s requests)",
			report.FmtInt(len(th.Busy)), report.FmtInt(clients), report.FmtInt(reqs))
		busyRange = fmt.Sprintf("%s - %s (%d - %d clients)",
			report.FmtInt(th.Threshold), report.FmtInt(maxBusy), minC, maxC)
		if lminC == -1 {
			lessRange = "(none)"
		} else {
			lessRange = fmt.Sprintf("%s - %s (%d - %d clients)",
				report.FmtInt(lminR), report.FmtInt(lmaxR), lminC, lmaxC)
		}
		return busy, busyRange, lessRange
	}
	naBusy, naBusyR, naLessR := describe(thNA)
	siBusy, siBusyR, siLessR := describe(thSI)
	t.AddRow("Total number of client clusters", report.FmtInt(len(na.Clusters)), report.FmtInt(len(si.Clusters)))
	t.AddRow("Threshold (requests per cluster)", report.FmtInt(thNA.Threshold), report.FmtInt(thSI.Threshold))
	t.AddRow("Number of busy client clusters", naBusy, siBusy)
	t.AddRow("Busy clusters (requests)", naBusyR, siBusyR)
	t.AddRow("Less-busy clusters (requests)", naLessR, siLessR)
	fmt.Println(t)
	fmt.Println("paper: 717 of 9,853 busy network-aware clusters vs 3,242 of 23,523 simple;")
	fmt.Println("the simple approach needs far more (and far smaller) busy clusters for the same 70%")
}
