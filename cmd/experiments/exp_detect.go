package main

import (
	"fmt"
	"strconv"

	"github.com/netaware/netcluster/internal/detect"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/stats"
)

func init() {
	register("fig9", "Request arrival histograms: site, proxy cluster, spider cluster (Sun)", runFig9)
	register("fig10", "Request distribution within a spider's cluster (Sun)", runFig10)
	register("detect", "Spider/proxy detection scored against ground truth", runDetect)
}

// sunFindings runs detection on the Sun log once.
func sunFindings(e *env) []detect.Finding {
	res := e.NetworkAware("Sun")
	return detect.Detect(res, detect.DefaultConfig())
}

func arrivalHistogram(title string, times []uint32, horizon uint32, bins int) string {
	counts := stats.Bin(times, horizon, bins)
	labels := make([]string, bins)
	ints := make([]int, bins)
	for i := range counts {
		labels[i] = "t" + strconv.Itoa(i)
		ints[i] = int(counts[i])
	}
	return report.Histogram(title, labels, ints, 40)
}

func runFig9(e *env) {
	l := e.Log("Sun")
	res := e.NetworkAware("Sun")
	horizon := uint32(l.Duration.Seconds())
	const bins = 24

	// (a) the entire server log.
	all := make([]uint32, len(l.Requests))
	for i := range l.Requests {
		all[i] = l.Requests[i].Time
	}
	fmt.Println(arrivalHistogram("Figure 9(a): the entire Sun server log", all, horizon, bins))

	collect := func(addrs map[netutil.Addr]bool) []uint32 {
		var ts []uint32
		for i := range l.Requests {
			if addrs[l.Requests[i].Client] {
				ts = append(ts, l.Requests[i].Time)
			}
		}
		return ts
	}
	clusterTimes := func(a netutil.Addr) []uint32 {
		cl, ok := res.ClusterOf(a)
		if !ok {
			return nil
		}
		members := map[netutil.Addr]bool{}
		for m := range cl.Clients {
			members[m] = true
		}
		return collect(members)
	}
	siteBins := stats.Bin(all, horizon, bins)
	for p := range l.Truth.Proxies {
		ts := clusterTimes(p)
		fmt.Println(arrivalHistogram("Figure 9(b): a client cluster containing a proxy", ts, horizon, bins))
		fmt.Printf("correlation with the site pattern: %.2f (each proxy spike matches a daily spike)\n\n",
			stats.Pearson(stats.Bin(ts, horizon, bins), siteBins))
	}
	for s := range l.Truth.Spiders {
		ts := clusterTimes(s)
		fmt.Println(arrivalHistogram("Figure 9(c): a client cluster containing a spider", ts, horizon, bins))
		fmt.Printf("correlation with the site pattern: %.2f (no similarity — machine-scheduled)\n",
			stats.Pearson(stats.Bin(ts, horizon, bins), siteBins))
	}
}

func runFig10(e *env) {
	l := e.Log("Sun")
	res := e.NetworkAware("Sun")
	for s := range l.Truth.Spiders {
		cl, ok := res.ClusterOf(s)
		if !ok {
			continue
		}
		counts, gini := detect.RequestSkew(cl)
		labels := make([]string, len(counts))
		for i := range labels {
			labels[i] = "client " + strconv.Itoa(i+1)
		}
		if len(labels) > 12 {
			labels, counts = labels[:12], counts[:12]
		}
		fmt.Println(report.Histogram(
			"Figure 10: requests per client within the spider's cluster", labels, counts, 40))
		total := cl.Requests
		fmt.Printf("\nspider issues %s of %s requests in its cluster (%s; Gini %.3f)\n",
			report.FmtInt(cl.Clients[s]), report.FmtInt(total),
			report.FmtPct(float64(cl.Clients[s])/float64(total)), gini)
		fmt.Println("paper: 692,453 requests, 99.79% of the cluster's total")
	}
}

func runDetect(e *env) {
	l := e.Log("Sun")
	findings := sunFindings(e)
	t := &report.Table{
		Title:   "Detection findings on the Sun log",
		Headers: []string{"client", "kind", "confidence", "requests", "URLs", "corr", "agents", "dominance", "truth"},
	}
	tp, fp := 0, 0
	for _, f := range findings {
		truth := "-"
		if l.Truth.Spiders[f.Client] {
			truth = "spider"
		} else if l.Truth.Proxies[f.Client] {
			truth = "proxy"
		}
		if truth == f.Kind.String() {
			tp++
		} else if f.Confidence == detect.Confirmed {
			fp++
		}
		t.AddRow(f.Client.String(), f.Kind.String(), f.Confidence.String(),
			report.FmtInt(f.Requests), report.FmtInt(f.URLs),
			fmt.Sprintf("%.2f", f.Correlation), f.Agents,
			report.FmtPct(f.Dominance), truth)
	}
	fmt.Println(t)
	fmt.Printf("planted: %d spiders, %d proxies; correctly identified: %d; confirmed false positives: %d\n",
		len(l.Truth.Spiders), len(l.Truth.Proxies), tp, fp)
}
