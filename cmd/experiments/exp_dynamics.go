package main

import (
	"fmt"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/report"
)

func init() {
	register("tab4", "Effect of AADS dynamics on client cluster identification", runTab4)
}

// aadsView locates the AADS config, Table 4's example table.
func aadsView() bgpsim.ViewConfig {
	for _, vc := range bgpsim.StandardViews() {
		if vc.Name == "AADS" {
			return vc
		}
	}
	panic("AADS missing")
}

func runTab4(e *env) {
	sim := e.Sim()
	vc := aadsView()
	periods := []int{0, 1, 4, 7, 14}

	// For each period, the snapshot series observed over it and the
	// dynamic prefix set (prefixes not present in every snapshot).
	base := sim.View(vc, 0)
	basePrefixes := base.PrefixSet()
	seriesFor := func(period int) []*bgp.Snapshot {
		if period == 0 {
			return []*bgp.Snapshot{base, sim.ViewIntraday(vc)}
		}
		series := []*bgp.Snapshot{base}
		for _, d := range []int{1, 4, 7, 14} {
			if d <= period {
				series = append(series, sim.View(vc, d))
			}
		}
		return series
	}
	type periodData struct {
		tableSize int
		dynamic   map[netutil.Prefix]struct{}
	}
	data := make([]periodData, len(periods))
	for i, p := range periods {
		series := seriesFor(p)
		last := series[len(series)-1]
		data[i] = periodData{
			tableSize: len(last.PrefixSet()),
			dynamic:   bgp.DynamicPrefixSet(series),
		}
	}

	t := &report.Table{
		Title:   "Table 4: the effect of AADS dynamics on client cluster identification",
		Headers: []string{"Period (days)", "0", "1", "4", "7", "14"},
	}
	addRow := func(label string, f func(periodData) int) {
		cells := []interface{}{label}
		for _, d := range data {
			cells = append(cells, report.FmtInt(f(d)))
		}
		t.AddRow(cells...)
	}
	addRow("AADS prefixes", func(d periodData) int { return d.tableSize })
	addRow("Maximum effect", func(d periodData) int { return len(d.dynamic) })

	// Per-log rows: how many clusters identify via an AADS prefix, and how
	// many of those prefixes are dynamic over each period.
	for _, name := range []string{"Apache", "EW3", "Nagano", "Sun"} {
		res := e.NetworkAware(name)
		inAADS := func(p netutil.Prefix) bool {
			_, ok := basePrefixes[p]
			return ok
		}
		clusterPrefixes := make([]netutil.Prefix, 0, len(res.Clusters))
		for _, c := range res.Clusters {
			if inAADS(c.Prefix) {
				clusterPrefixes = append(clusterPrefixes, c.Prefix)
			}
		}
		th := res.ThresholdBusy(0.70)
		busyPrefixes := make([]netutil.Prefix, 0, len(th.Busy))
		for _, c := range th.Busy {
			if inAADS(c.Prefix) {
				busyPrefixes = append(busyPrefixes, c.Prefix)
			}
		}
		countDynamic := func(ps []netutil.Prefix, dyn map[netutil.Prefix]struct{}) int {
			n := 0
			for _, p := range ps {
				if _, ok := dyn[p]; ok {
					n++
				}
			}
			return n
		}
		addRow(fmt.Sprintf("%s prefixes (total %s clusters)", name, report.FmtInt(len(res.Clusters))),
			func(periodData) int { return len(clusterPrefixes) })
		addRow("  Maximum effect", func(d periodData) int { return countDynamic(clusterPrefixes, d.dynamic) })
		addRow(fmt.Sprintf("%s busy clusters (total %s)", name, report.FmtInt(len(th.Busy))),
			func(periodData) int { return len(busyPrefixes) })
		addRow("  Maximum effect", func(d periodData) int { return countDynamic(busyPrefixes, d.dynamic) })

		frac := float64(countDynamic(clusterPrefixes, data[len(data)-1].dynamic)) / float64(len(res.Clusters))
		fmt.Printf("%s: 14-day dynamics touch %s of all clusters (paper: <3%%)\n", name, report.FmtPct(frac))
	}
	fmt.Println()
	fmt.Println(t)
}
