package main

import (
	"fmt"
	"time"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/selfcorrect"
	"github.com/netaware/netcluster/internal/stats"
	"github.com/netaware/netcluster/internal/weblog"
)

func init() {
	register("selfcorrect", "Self-correction and adaptation (Section 3.5)", runSelfcorrect)
	register("sessions", "Time partitioning into four 6-hour sessions (Section 3.6)", runSessions)
	register("servercluster", "Server clustering from a proxy log (Section 3.6)", runServerCluster)
	register("netclusters", "Second-level clustering of client clusters (Section 3.6)", runNetClusters)
}

func runNetClusters(e *env) {
	res := e.NetworkAware("Nagano")
	corr := &selfcorrect.Corrector{
		Resolver:   e.Resolver(),
		Tracer:     e.Tracer(),
		SampleSize: 3,
	}
	groups := corr.GroupClusters(res, 2)
	t := &report.Table{
		Title:   "Network clusters: client clusters grouped by upstream path suffix",
		Headers: []string{"rank", "upstream suffix", "clusters", "clients", "requests"},
	}
	for i, g := range groups {
		if i == 12 {
			break
		}
		key := g.Key
		if len(key) > 44 {
			key = key[:41] + "..."
		}
		t.AddRow(report.FmtInt(i+1), key, report.FmtInt(len(g.Clusters)),
			report.FmtInt(g.Clients), report.FmtInt(g.Requests))
	}
	fmt.Println(t)
	multi := 0
	for _, g := range groups {
		if len(g.Clusters) > 1 {
			multi++
		}
	}
	fmt.Printf("%s client clusters coarsened into %s network clusters (%s with ≥2 members)\n",
		report.FmtInt(len(res.Clusters)), report.FmtInt(len(groups)), report.FmtInt(multi))
	fmt.Println("paper: second-level clustering serves selective content distribution,")
	fmt.Println("proxy placement and load balancing")
}

// purity is ground-truth cluster accuracy: fraction of clusters whose
// clients all share one true network.
func purity(e *env, res *cluster.Result) float64 {
	pure := 0
	for _, cl := range res.Clusters {
		nets := map[int]struct{}{}
		ok := true
		for a := range cl.Clients {
			n, found := e.World().NetworkOf(a)
			if !found {
				ok = false
				break
			}
			nets[n.ID] = struct{}{}
		}
		if ok && len(nets) == 1 {
			pure++
		}
	}
	return float64(pure) / float64(len(res.Clusters))
}

func runSelfcorrect(e *env) {
	res := e.NetworkAware("Nagano")
	corr := &selfcorrect.Corrector{
		Resolver:   e.Resolver(),
		Tracer:     e.Tracer(),
		SampleSize: 3,
	}
	out := corr.Correct(res)

	t := &report.Table{
		Title:   "Self-correction on the Nagano clustering",
		Headers: []string{"metric", "before", "after"},
	}
	t.AddRow("coverage", report.FmtPct(res.Coverage()), report.FmtPct(out.Corrected.Coverage()))
	t.AddRow("clusters", report.FmtInt(len(res.Clusters)), report.FmtInt(len(out.Corrected.Clusters)))
	t.AddRow("ground-truth purity", report.FmtPct(purity(e, res)), report.FmtPct(purity(e, out.Corrected)))
	fmt.Println(t)
	fmt.Printf("merged away %d clusters, split into %d extra, absorbed %d unclustered clients\n",
		out.MergedAway, out.SplitInto, out.Absorbed)
	fmt.Printf("sampling cost: %s probes, %s lookups for %s clients\n",
		report.FmtInt(out.Probes), report.FmtInt(out.Lookups), report.FmtInt(res.NumClients()))
	fmt.Println("paper: unidentified clients (~0.1%) are absorbed; accuracy improves via merge/split")
}

func runSessions(e *env) {
	l := e.Log("Nagano")
	sessions := l.Sessions(4)
	t := &report.Table{
		Title:   "Nagano log partitioned into four 6-hour sessions",
		Headers: []string{"session", "requests", "clients", "clusters", "URLs", "corr. w/ full log"},
	}
	full := e.NetworkAware("Nagano")
	// Compare per-cluster request ranking between each session and the
	// full log via correlation of per-cluster request counts.
	for i, s := range sessions {
		res := cluster.ClusterLog(s, cluster.NetworkAware{Table: e.Merged()})
		st := s.Stats()
		var a, b []float64
		for _, c := range res.Clusters {
			if fc, ok := full.Find(c.Prefix); ok {
				a = append(a, float64(c.Requests))
				b = append(b, float64(fc.Requests))
			}
		}
		t.AddRow(fmt.Sprintf("%d (%dh-%dh)", i+1, i*6, (i+1)*6),
			report.FmtInt(st.Requests), report.FmtInt(st.UniqueClients),
			report.FmtInt(len(res.Clusters)), report.FmtInt(st.UniqueURLs),
			fmt.Sprintf("%.3f", stats.Pearson(a, b)))
	}
	fmt.Println(t)
	fmt.Println("paper: all sessions show the same per-cluster patterns as the whole log,")
	fmt.Println("so simulations on a sample of a server log may suffice")
}

func runServerCluster(e *env) {
	// Build a proxy log: the "clients" are the SERVERS a large ISP's
	// proxy contacted over 11 days (the paper: 69,192 unique server IPs,
	// 12.4M requests, 0.2% not clusterable, 4% of server clusters got 70%
	// of requests).
	cfg := weblog.GenConfig{
		Name:        "ISP-proxy",
		Seed:        e.seed + 77,
		NumClients:  scaledInt(69192, e.scale, 300),
		NumRequests: scaledInt(12400000, e.scale, 6000),
		NumURLs:     scaledInt(50000, e.scale, 150),
		NumNetworks: scaledInt(17192, e.scale, 80),
		Duration:    11 * 24 * time.Hour,
		Start:       time.Date(1999, 8, 1, 0, 0, 0, 0, time.UTC),
		ClientZipf:  0.70,
		RequestZipf: 1.05, // server popularity is more skewed than clients'
		URLZipf:     0.80,
		RepeatProb:  0.5,
	}
	l, err := weblog.Generate(e.World(), cfg)
	if err != nil {
		e.fail(err)
	}
	res := cluster.ClusterLog(l, cluster.NetworkAware{Table: e.Merged()})
	th := res.ThresholdBusy(0.70)
	t := &report.Table{
		Title:   "Server clustering from an ISP proxy log (Section 3.6)",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("unique server IPs", report.FmtInt(res.NumClients()+len(res.Unclustered)))
	t.AddRow("requests", report.FmtInt(res.TotalRequests))
	t.AddRow("server clusters", report.FmtInt(len(res.Clusters)))
	t.AddRow("not clusterable", fmt.Sprintf("%s (%s)",
		report.FmtInt(len(res.Unclustered)), report.FmtPct(1-res.Coverage())))
	t.AddRow("busy clusters for 70% of requests", fmt.Sprintf("%s (%s of clusters)",
		report.FmtInt(len(th.Busy)), report.FmtPct(float64(len(th.Busy))/float64(len(res.Clusters)))))
	fmt.Println(t)
	fmt.Println("paper: 153 of 69,192 servers (~0.2%) not clusterable;")
	fmt.Println("roughly 4% of server clusters received 70% of the 12.4M requests")
}

func scaledInt(v int, scale float64, floor int) int {
	s := int(float64(v) * scale)
	if s < floor {
		s = floor
	}
	return s
}
