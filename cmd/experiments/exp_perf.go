package main

import (
	"bytes"
	"fmt"
	"time"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/weblog"
)

func init() {
	register("perf", "Compiled lookup table and parallel clustering engine timings", runPerf)
}

// runPerf is not a paper experiment but an engineering one: it times the
// compiled-table lookup against the two-tree reference and the parallel
// clustering engines against their sequential counterparts, on this
// machine, at the current scale. `go test -bench` (see `make bench-json`)
// produces the statistically careful numbers; this gives a quick in-situ
// reading with the same inputs the other experiments use.
func runPerf(e *env) {
	merged := e.Merged()
	compiled := merged.CompileCtx(e.Ctx())
	l := e.Log("Nagano")
	clients := l.Clients()
	na := cluster.NetworkAware{Table: merged}
	nac := na.Compile()

	// Lookup timing over the real client population, enough rounds to
	// outlast timer resolution.
	const rounds = 50
	timeIt := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	dTree := timeIt(func() {
		for r := 0; r < rounds; r++ {
			for _, c := range clients {
				merged.Lookup(c)
			}
		}
	})
	dComp := timeIt(func() {
		for r := 0; r < rounds; r++ {
			for _, c := range clients {
				compiled.Lookup(c)
			}
		}
	})
	nLookups := rounds * len(clients)

	t := &report.Table{
		Title:   "Lookup engines: merged two-tree walk vs compiled flat table",
		Headers: []string{"Engine", "Prefixes", "Lookups", "Total", "ns/lookup"},
	}
	perOp := func(d time.Duration, n int) string {
		return report.FmtFloat(float64(d.Nanoseconds()) / float64(n))
	}
	t.AddRow("merged (two trees)", report.FmtInt(merged.Len()), report.FmtInt(nLookups),
		dTree.Round(time.Millisecond), perOp(dTree, nLookups))
	t.AddRow("compiled (one walk)", report.FmtInt(compiled.Len()), report.FmtInt(nLookups),
		dComp.Round(time.Millisecond), perOp(dComp, nLookups))
	fmt.Println(t)
	if dComp > 0 {
		fmt.Printf("compiled speedup: %.1fx over two-tree lookup (%d flattened nodes)\n\n",
			float64(dTree)/float64(dComp), compiled.NumNodes())
	}

	// Clustering engines over the full Nagano log. Every run is checked
	// against the sequential cluster/coverage counts — a perf experiment
	// that silently changed answers would be worse than a slow one.
	ref := cluster.ClusterLog(l, na)
	t2 := &report.Table{
		Title:   "Clustering engines on the Nagano log",
		Headers: []string{"Engine", "Workers", "Clusters", "Coverage", "Total"},
	}
	addRun := func(label string, workers int, f func() *cluster.Result) {
		var res *cluster.Result
		d := timeIt(func() { res = f() })
		if len(res.Clusters) != len(ref.Clusters) || res.Coverage() != ref.Coverage() {
			e.fail(fmt.Errorf("%s diverged from the sequential reference", label))
		}
		t2.AddRow(label, report.FmtInt(workers), report.FmtInt(len(res.Clusters)),
			report.FmtPct(res.Coverage()), d.Round(time.Millisecond))
	}
	addRun("sequential", 1, func() *cluster.Result { return cluster.ClusterLogCtx(e.Ctx(), l, na) })
	addRun("sequential+compiled", 1, func() *cluster.Result { return cluster.ClusterLogCtx(e.Ctx(), l, nac) })
	for _, w := range []int{2, 4, 8} {
		w := w
		addRun("parallel+compiled", w, func() *cluster.Result {
			return cluster.ClusterLogParallelCtx(e.Ctx(), l, nac, cluster.ParallelOptions{Workers: w})
		})
	}
	fmt.Println(t2)

	// Streaming: serialize once, then run both one-pass engines.
	var buf bytes.Buffer
	if err := weblog.WriteCLF(&buf, l); err != nil {
		e.fail(err)
	}
	t3 := &report.Table{
		Title:   "One-pass CLF clustering (zero-alloc ingestion fast path)",
		Headers: []string{"Engine", "Workers", "MB", "Total", "MB/s"},
	}
	mb := float64(buf.Len()) / (1 << 20)
	addStream := func(label string, workers int, f func() (*cluster.StreamResult, error)) {
		var res *cluster.StreamResult
		d := timeIt(func() {
			var err error
			if res, err = f(); err != nil {
				e.fail(err)
			}
		})
		if len(res.Clusters) != len(ref.Clusters) {
			e.fail(fmt.Errorf("%s diverged from the sequential reference", label))
		}
		t3.AddRow(label, report.FmtInt(workers), report.FmtFloat(mb),
			d.Round(time.Millisecond), report.FmtFloat(mb/d.Seconds()))
	}
	addStream("stream", 1, func() (*cluster.StreamResult, error) {
		return cluster.ClusterStreamCtx(e.Ctx(), bytes.NewReader(buf.Bytes()), nac)
	})
	for _, w := range []int{2, 4} {
		w := w
		addStream("stream-parallel", w, func() (*cluster.StreamResult, error) {
			return cluster.ClusterStreamParallelCtx(e.Ctx(), bytes.NewReader(buf.Bytes()), nac, cluster.ParallelOptions{Workers: w})
		})
	}
	fmt.Println(t3)

	// Fallback demonstration: the generated log is all-canonical CLF, so
	// everything above rides the byte fast path. Real logs are messier —
	// re-stream a small slice with tabs instead of single spaces, which the
	// fast parser rejects and the strict whitespace-splitting parser
	// accepts, to show the fallback (and its counters) working.
	const fallbackLines = 64
	sample := buf.Bytes()
	for i, n := 0, 0; i < len(sample); i++ {
		if sample[i] == '\n' {
			if n++; n == fallbackLines {
				sample = sample[:i+1]
				break
			}
		}
	}
	mangled := bytes.ReplaceAll(sample, []byte(`" 200 `), []byte("\"\t200\t"))
	st, err := weblog.StreamCLF(bytes.NewReader(mangled), func(weblog.StreamRecord) bool { return true })
	if err != nil {
		e.fail(err)
	}
	fmt.Printf("strict-parser fallback: %d tab-separated lines parsed via the fallback path "+
		"(fast path handled %d of %d total)\n",
		st.Lines, l.Stats().Requests, l.Stats().Requests+st.Lines)
}
