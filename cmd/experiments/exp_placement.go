package main

import (
	"fmt"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/placement"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/websim"
)

func init() {
	register("placement", "Proxy placement strategies (Section 4.1.4)", runPlacement)
	register("multiserver", "Multiple servers sharing one proxy fleet (Section 4.1.5)", runMultiserver)
}

func runPlacement(e *env) {
	res := e.NetworkAware("Nagano")

	// Strategy 1: proxies per busy cluster, sized by request volume.
	perProxy := int64(res.TotalRequests / 400) // one proxy per ~0.25% of traffic
	plan, err := placement.PerCluster(res, 0.70, placement.ByRequests, perProxy)
	if err != nil {
		e.fail(err)
	}
	t := &report.Table{
		Title:   "Strategy 1: proxies assigned per busy cluster (load metric: requests)",
		Headers: []string{"cluster", "clients", "requests", "proxies"},
	}
	for i, a := range plan.Assignments {
		if i == 10 {
			break
		}
		t.AddRow(a.Cluster.Prefix.String(), report.FmtInt(a.Cluster.NumClients()),
			report.FmtInt(a.Cluster.Requests), report.FmtInt(a.Proxies))
	}
	fmt.Println(t)
	fmt.Printf("%s proxies across %s busy clusters (capacity %s requests per proxy)\n\n",
		report.FmtInt(plan.TotalProxies), report.FmtInt(len(plan.Assignments)),
		report.FmtInt(int(perProxy)))

	// Strategy 2: group the proxies into proxy clusters by origin AS and
	// whois country.
	registry := e.Sim().ASRegistry()
	groups := placement.GroupByASAndLocation(plan, e.Merged(), func(asn uint32) string {
		return registry[asn].Country
	})
	t2 := &report.Table{
		Title:   "Strategy 2: proxy clusters grouped by origin AS and country",
		Headers: []string{"origin AS", "country", "member clusters", "proxies", "requests"},
	}
	for i, g := range groups {
		if i == 10 {
			break
		}
		as := report.FmtInt(int(g.OriginAS))
		if g.OriginAS == 0 {
			as = "(unknown)"
		}
		t2.AddRow(as, g.Country, report.FmtInt(len(g.Members)), report.FmtInt(g.Proxies),
			report.FmtInt(g.Requests))
	}
	fmt.Println(t2)
	multi := 0
	for _, g := range groups {
		if len(g.Members) > 1 {
			multi++
		}
	}
	fmt.Printf("%s proxy clusters (%s with ≥2 cooperating members)\n",
		report.FmtInt(len(groups)), report.FmtInt(multi))
	fmt.Println("paper: \"all proxies belonging to the same AS and located geographically")
	fmt.Println("nearby will be grouped together to form a proxy cluster\"")
}

func runMultiserver(e *env) {
	naNagano := e.NetworkAware("Nagano")
	naEW3 := e.NetworkAware("EW3")
	cfg := websim.DefaultConfig()
	cfg.CacheBytes = 10 << 20
	cfg.MinURLAccesses = 0

	out, err := websim.SimulateMulti([]*cluster.Result{naNagano, naEW3}, cfg)
	if err != nil {
		e.fail(err)
	}
	t := &report.Table{
		Title:   "Two origin servers sharing one per-cluster proxy fleet (10 MB, TTL 1h, PCV)",
		Headers: []string{"origin", "requests", "hit ratio", "byte hit ratio"},
	}
	for _, s := range out.Servers {
		t.AddRow(s.Name, report.FmtInt(s.Requests),
			report.FmtPct(s.HitRatio), report.FmtPct(s.ByteHitRatio))
	}
	t.AddRow("(overall)", report.FmtInt(out.Requests),
		report.FmtPct(out.HitRatio), report.FmtPct(out.ByteHitRatio))
	fmt.Println(t)
	fmt.Printf("shared fleet: %s proxies serve both origins\n", report.FmtInt(len(out.Proxies)))
	fmt.Println("paper: \"we can also simulate multiple servers and multiple proxies by")
	fmt.Println("merging more server logs collected at the same time\"")
}
