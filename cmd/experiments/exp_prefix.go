package main

import (
	"fmt"
	"strconv"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/report"
)

func init() {
	register("fig1", "Prefix-length distribution of a vantage table (histogram + 4-day series)", runFig1)
	register("tab1", "The collection of routing tables (sizes and comments)", runTab1)
	register("tab2", "An example snapshot of a BGP routing table", runTab2)
}

// maeWest locates the MAE-WEST view config, the vantage Figure 1 uses.
func maeWest() bgpsim.ViewConfig {
	for _, vc := range bgpsim.StandardViews() {
		if vc.Name == "MAE-WEST" {
			return vc
		}
	}
	panic("MAE-WEST missing from standard views")
}

func runFig1(e *env) {
	sim := e.Sim()
	vc := maeWest()

	// (a) histogram of prefix lengths on day 0.
	day0 := sim.View(vc, 0)
	hist := bgp.SnapshotPrefixLengthHistogram(day0)
	var labels []string
	var counts []int
	for l := 8; l <= 30; l++ {
		if hist[l] == 0 {
			continue
		}
		labels = append(labels, "/"+strconv.Itoa(l))
		counts = append(counts, hist[l])
	}
	fmt.Println(report.Histogram("Figure 1(a): prefix lengths, MAE-WEST day 0", labels, counts, 50))

	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("\n/24 share: %s of %s prefixes (paper: ~50%%)\n\n",
		report.FmtPct(float64(hist[24])/float64(total)), report.FmtInt(total))

	// (b) distribution over four consecutive days.
	t := &report.Table{
		Title:   "Figure 1(b): prefix-length distribution over four days (MAE-WEST)",
		Headers: append([]string{"day"}, labels...),
	}
	for day := 0; day < 4; day++ {
		h := bgp.SnapshotPrefixLengthHistogram(sim.View(vc, day))
		row := []interface{}{strconv.Itoa(day)}
		for l := 8; l <= 30; l++ {
			if hist[l] == 0 {
				continue
			}
			row = append(row, report.FmtInt(h[l]))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)
}

func runTab1(e *env) {
	coll := e.Collection()
	t := &report.Table{
		Title:   "Table 1: our collection of routing tables",
		Headers: []string{"Name", "Date", "Entries", "Kind", "Comments"},
	}
	for _, v := range coll.Views {
		t.AddRow(v.Name, v.Date, report.FmtInt(len(v.PrefixSet())), "BGP", v.Comment)
	}
	for _, r := range coll.Registries {
		t.AddRow(r.Name, r.Date, report.FmtInt(len(r.PrefixSet())), "netdump", r.Comment)
	}
	fmt.Println(t)

	m := e.Merged()
	fmt.Printf("Merged unique prefixes: %s BGP + %s registry (paper: 391,497 total)\n",
		report.FmtInt(m.NumPrimary()), report.FmtInt(m.NumSecondary()))
}

func runTab2(e *env) {
	sim := e.Sim()
	var vbns bgpsim.ViewConfig
	for _, vc := range bgpsim.StandardViews() {
		if vc.Name == "VBNS" {
			vbns = vc
		}
	}
	snap := sim.View(vbns, 0)
	t := &report.Table{
		Title:   "Table 2: an example snapshot of a BGP routing table (VBNS)",
		Headers: []string{"Prefix", "Prefix description", "Next hop", "AS path", "Peer AS description"},
	}
	n := len(snap.Entries)
	if n > 8 {
		n = 8
	}
	for _, entry := range snap.Entries[:n] {
		t.AddRow(entry.Prefix.String(), entry.Description, entry.NextHop,
			entry.ASPathString(), entry.PeerDesc)
	}
	fmt.Println(t)
}
