package main

import (
	"fmt"
	"math/rand"

	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/validate"
)

func init() {
	register("tab3", "Cluster validation via nslookup and optimized traceroute", runTab3)
	register("traceopt", "Optimized-traceroute probe and time savings", runTraceopt)
}

func runTab3(e *env) {
	logs := []string{"Apache", "Nagano", "Sun"}
	t := &report.Table{
		Title:   "Table 3: client cluster validation (1% cluster samples)",
		Headers: append([]string{"row"}, logs...),
	}
	type col struct {
		total, sampled, clients    int
		rangeLo, rangeHi, len24    int
		nsReach, nsMis, nsMisNonUS int
		trReach, trMis, trMisNonUS int
		nsPass, trPass             float64
		trueBad                    int
	}
	cols := make([]col, len(logs))
	for i, name := range logs {
		res := e.NetworkAware(name)
		sampled := validate.Sample(res.Clusters, 0.01, e.seed+int64(i))
		resolver := e.Resolver()
		tracer := e.Tracer()
		ns := validate.Nslookup(e.World(), resolver, sampled)
		tr := validate.Traceroute(e.World(), resolver, tracer, sampled)
		lo, hi := validate.PrefixLenRange(sampled)
		n24, _ := validate.PrefixLen24Share(sampled)
		cols[i] = col{
			total: len(res.Clusters), sampled: len(sampled), clients: ns.SampledClients,
			rangeLo: lo, rangeHi: hi, len24: n24,
			nsReach: ns.ReachableClients, nsMis: ns.Misidentified, nsMisNonUS: ns.MisidentifiedNonUS,
			trReach: tr.ReachableClients, trMis: tr.Misidentified, trMisNonUS: tr.MisidentifiedNonUS,
			nsPass: ns.PassRate(), trPass: tr.PassRate(), trueBad: ns.TrulyIncorrect,
		}
	}
	row := func(label string, f func(col) string) {
		cells := []interface{}{label}
		for _, c := range cols {
			cells = append(cells, f(c))
		}
		t.AddRow(cells...)
	}
	row("Total number of client clusters", func(c col) string { return report.FmtInt(c.total) })
	row("Number of sampled client clusters", func(c col) string { return report.FmtInt(c.sampled) })
	row("Number of sampled clients", func(c col) string { return report.FmtInt(c.clients) })
	row("Prefix length range", func(c col) string { return fmt.Sprintf("%d - %d", c.rangeLo, c.rangeHi) })
	row("Clusters of prefix length 24", func(c col) string { return report.FmtInt(c.len24) })
	row("nslookup reachable clients", func(c col) string { return report.FmtInt(c.nsReach) })
	row("nslookup mis-identified clusters", func(c col) string { return report.FmtInt(c.nsMis) })
	row("nslookup mis-identified non-US", func(c col) string { return report.FmtInt(c.nsMisNonUS) })
	row("nslookup pass rate", func(c col) string { return report.FmtPct(c.nsPass) })
	row("traceroute reachable clients", func(c col) string { return report.FmtInt(c.trReach) })
	row("traceroute mis-identified clusters", func(c col) string { return report.FmtInt(c.trMis) })
	row("traceroute mis-identified non-US", func(c col) string { return report.FmtInt(c.trMisNonUS) })
	row("traceroute pass rate", func(c col) string { return report.FmtPct(c.trPass) })
	row("ground-truth impure clusters", func(c col) string { return report.FmtInt(c.trueBad) })
	fmt.Println(t)
	fmt.Println("paper: >90% pass both tests; ~50% of clients nslookup-resolvable;")
	fmt.Println("       simple approach's universal-/24 assumption holds for only ~48.6% of sampled clusters")
	for i, name := range logs {
		share := float64(cols[i].len24) / float64(cols[i].sampled)
		fmt.Printf("%s: /24 share of sampled clusters = %s\n", name, report.FmtPct(share))
	}
}

func runTraceopt(e *env) {
	w := e.World()
	rng := rand.New(rand.NewSource(e.seed))
	classic := e.Tracer()
	optimized := e.Tracer()
	const trials = 600
	direct := 0
	for i := 0; i < trials; i++ {
		n := w.Networks[rng.Intn(len(w.Networks))]
		dst := n.RandomHost(rng)
		classic.Classic(dst)
		r := optimized.Optimized(dst)
		if r.Reached && r.Probes == 1 {
			direct++
		}
	}
	t := &report.Table{
		Title:   "Optimized traceroute vs classic (Section 3.3)",
		Headers: []string{"metric", "classic", "optimized", "saving"},
	}
	t.AddRow("probes", report.FmtInt(classic.Probes), report.FmtInt(optimized.Probes),
		report.FmtPct(1-float64(optimized.Probes)/float64(classic.Probes)))
	t.AddRow("waiting time (units)", report.FmtInt(classic.WaitTime), report.FmtInt(optimized.WaitTime),
		report.FmtPct(1-float64(optimized.WaitTime)/float64(classic.WaitTime)))
	fmt.Println(t)
	fmt.Printf("destinations resolved by the single Max_ttl probe: %s (paper: ~50%%)\n",
		report.FmtPct(float64(direct)/float64(trials)))
	fmt.Println("paper: ~90% of probes and ~80% of waiting time saved")
}
