// Command experiments regenerates every table and figure of the paper's
// evaluation from the synthetic substrate. Each experiment id matches the
// per-experiment index in DESIGN.md:
//
//	experiments -list
//	experiments fig3 fig7 tab3
//	experiments -scale 0.2 all
//
// Scale proportionally shrinks the log populations (1.0 = the paper's
// published counts); distributional shapes do not depend on it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

type experiment struct {
	id    string
	title string
	run   func(*env)
}

var registry []experiment

func register(id, title string, run func(*env)) {
	registry = append(registry, experiment{id, title, run})
}

func main() {
	scale := flag.Float64("scale", 0.05, "log population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "world generation seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file after the experiments run")
	traceOut := flag.String("trace-out", "", "write the flight-recorder trace (Chrome trace_event JSON) to this file after the experiments run")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-14s %s\n", e.id, e.title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-scale f] [-seed n] <id>... | all | -list")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range registry {
			ids = append(ids, e.id)
		}
	}
	byID := map[string]experiment{}
	for _, e := range registry {
		byID[e.id] = e
	}
	sort.Strings(ids)
	e := newEnv(*scale, *seed)
	for _, id := range ids {
		exp, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("\n######## %s — %s\n\n", exp.id, exp.title)
		// Each experiment gets a root span; library calls made through
		// e.Ctx() nest their spans under it in the flight recorder.
		ctx, sp := obsv.StartTraceSpan(context.Background(), "experiments."+exp.id)
		e.ctx = ctx
		exp.run(e)
		sp.End()
		e.ctx = context.Background()
		fmt.Printf("\n[%s completed in %v]\n", exp.id, time.Since(start).Round(time.Millisecond))
	}
	if *metricsOut != "" {
		if err := obsv.WriteFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nmetrics snapshot written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := obsv.WriteTraceFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace written to %s\n", *traceOut)
	}
}
