package main

import (
	"strings"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	if len(registry) < 20 {
		t.Fatalf("registry has only %d experiments", len(registry))
	}
	seen := map[string]bool{}
	for _, e := range registry {
		if e.id == "" || e.title == "" || e.run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if strings.ContainsAny(e.id, " \t") {
			t.Errorf("experiment id %q contains whitespace", e.id)
		}
	}
	// Every paper table and figure has a registered regenerator.
	for _, id := range []string{
		"fig1", "tab1", "tab2", "fig3", "fig4", "fig5", "fig6", "tab3",
		"fig7", "tab4", "tab5", "fig9", "fig10", "fig11", "fig12",
		"coverage", "traceopt", "selfcorrect", "sessions", "servercluster",
		"netclusters", "placement", "multiserver", "detect",
	} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestStandardViewHelpers(t *testing.T) {
	if maeWest().Name != "MAE-WEST" {
		t.Error("maeWest misresolved")
	}
	if aadsView().Name != "AADS" {
		t.Error("aadsView misresolved")
	}
}

func TestScaledInt(t *testing.T) {
	if got := scaledInt(1000, 0.5, 10); got != 500 {
		t.Errorf("scaledInt = %d", got)
	}
	if got := scaledInt(1000, 0.001, 10); got != 10 {
		t.Errorf("floor not applied: %d", got)
	}
}
