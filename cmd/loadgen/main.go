// Command loadgen replays web-client request streams against a
// clusterd batch endpoint at a configured open-loop arrival rate — the
// firehose side of the repo: where clusterd proves it can absorb a
// request flood in fixed memory, loadgen proves someone is honestly
// producing the flood and honestly measuring the latency.
//
//	loadgen -target http://127.0.0.1:8349 -rate 20000 -requests 1000000
//	loadgen -clf access.log -rate 50000
//	loadgen -profile nagano -scale 0.05 -seed 7 -duration 30s
//
// Two address sources:
//
//   - -clf FILE: replay the client column of a Common Log Format log in
//     order ("-" reads stdin).
//   - synthetic (default): a seeded streaming generator over a synthetic
//     Internet (internal/weblog.StreamGen) with the paper's workload
//     profiles — same seed, same address sequence, every run.
//
// The generator is open-loop and coordinated-omission safe: batches
// have intended send times fixed by -rate alone, and the reported
// "intended" latencies run from those times, so server stalls surface
// as the tail latencies a real arrival process would have seen instead
// of silently slowing the generator. "service" latencies (send →
// response) are reported alongside; the gap is server queueing. The
// max-drift line reports how far dispatch fell behind schedule — if it
// is large, raise -concurrency or lower -rate: the generator itself
// was the bottleneck and even intended latencies undercount.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/report"
	"github.com/netaware/netcluster/internal/weblog"
)

// synthSource adapts weblog.StreamGen to the runner's AddrSource.
type synthSource struct{ g *weblog.StreamGen }

func (s synthSource) Next() (netutil.Addr, bool) { return s.g.Next().Client, true }

// clfSource streams client addresses out of a CLF log via a parser
// goroutine; the bounded channel keeps memory flat however large the
// log is.
type clfSource struct {
	ch   chan netutil.Addr
	errc chan error
}

func newCLFSource(r io.Reader) *clfSource {
	s := &clfSource{ch: make(chan netutil.Addr, 4096), errc: make(chan error, 1)}
	go func() {
		defer close(s.ch)
		_, err := weblog.StreamCLF(r, func(rec weblog.StreamRecord) bool {
			s.ch <- rec.Request.Client
			return true
		})
		s.errc <- err
	}()
	return s
}

func (s *clfSource) Next() (netutil.Addr, bool) {
	a, ok := <-s.ch
	return a, ok
}

func (s *clfSource) Err() error {
	select {
	case err := <-s.errc:
		return err
	default:
		return nil
	}
}

func profileConfig(name string, scale float64, seed int64) (weblog.GenConfig, error) {
	for _, cfg := range weblog.Profiles(scale) {
		if strings.EqualFold(cfg.Name, name) {
			cfg.Seed = seed
			return cfg, nil
		}
	}
	return weblog.GenConfig{}, fmt.Errorf("unknown profile %q (want apache, ew3, nagano or sun)", name)
}

func main() {
	target := flag.String("target", "http://127.0.0.1:8349", "clusterd base URL")
	rate := flag.Float64("rate", 5000, "offered load in addresses per second (open loop)")
	batch := flag.Int("batch", 256, "addresses per POST /cluster")
	requests := flag.Int("requests", 100000, "total addresses to send (0: drain the source; synthetic sources never drain)")
	duration := flag.Duration("duration", 0, "alternative stop condition: run this long at -rate (overrides -requests)")
	concurrency := flag.Int("concurrency", 16, "max in-flight batches")
	timeout := flag.Duration("timeout", 30*time.Second, "per-batch HTTP timeout")
	clf := flag.String("clf", "", "replay this CLF log's client addresses ('-': stdin) instead of synthesizing")
	profile := flag.String("profile", "nagano", "synthetic workload profile: apache, ew3, nagano or sun")
	scale := flag.Float64("scale", 0.01, "synthetic profile scale factor")
	seed := flag.Int64("seed", 1, "synthetic generator seed (same seed, same address sequence)")
	ases := flag.Int("ases", 300, "synthetic world size; match the target's -ases so addresses cluster")
	jsonOut := flag.Bool("json", false, "emit the summary as JSON on stdout")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	n := *requests
	if *duration > 0 {
		n = int(duration.Seconds() * *rate)
		if n < 1 {
			n = 1
		}
	}

	var (
		src AddrSource
		cs  *clfSource
	)
	if *clf != "" {
		var r io.Reader = os.Stdin
		if *clf != "-" {
			f, err := os.Open(*clf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		cs = newCLFSource(bufio.NewReaderSize(r, 1<<20))
		src = cs
	} else {
		wcfg := inet.DefaultConfig()
		wcfg.NumASes = *ases
		wcfg.Seed = *seed
		world, err := inet.Generate(wcfg)
		if err != nil {
			fatal(err)
		}
		cfg, err := profileConfig(*profile, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		g, err := weblog.NewStreamGen(world, cfg)
		if err != nil {
			fatal(err)
		}
		if n <= 0 {
			fatal(fmt.Errorf("synthetic source is endless; set -requests or -duration"))
		}
		logf("loadgen: profile %s seed %d: %s clients over a %d-AS world",
			cfg.Name, *seed, report.FmtInt(g.NumClients()), *ases)
		src = synthSource{g}
	}

	runner := NewRunner(RunnerOptions{
		Target:      strings.TrimRight(*target, "/"),
		Rate:        *rate,
		Batch:       *batch,
		MaxRequests: n,
		Concurrency: *concurrency,
		Timeout:     *timeout,
		Logf:        logf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf("loadgen: offering %s addrs/sec to %s in batches of %d (%s total)",
		report.FmtInt(int(*rate)), *target, *batch, report.FmtInt(n))
	sum, err := runner.Run(ctx, src)
	if err != nil {
		fatal(err)
	}
	if cs != nil {
		if err := cs.Err(); err != nil {
			fatal(fmt.Errorf("reading %s: %w", *clf, err))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
	} else {
		printSummary(os.Stdout, sum)
	}
	if sum.Failed > 0 {
		os.Exit(1)
	}
}

func printSummary(w io.Writer, s *Summary) {
	fmt.Fprintf(w, "sent      %s addrs in %d batches over %v (offered %s/s, achieved %s/s)\n",
		report.FmtInt(s.Sent), s.Batches, s.Elapsed.Round(time.Millisecond),
		report.FmtInt(int(s.OfferedRate)), report.FmtInt(int(s.AchievedRate)))
	fmt.Fprintf(w, "answers   %s clustered, %s unclustered, %d rejected (503), %d failed\n",
		report.FmtInt(s.Clustered), report.FmtInt(s.Unclustered), s.Rejected, s.Failed)
	fmt.Fprintf(w, "latency   intended p50 %v  p99 %v  max %v  (coordinated-omission safe)\n",
		s.IntendedP50.Round(time.Microsecond), s.IntendedP99.Round(time.Microsecond), s.IntendedMax.Round(time.Microsecond))
	fmt.Fprintf(w, "          service  p50 %v  p99 %v  max %v\n",
		s.ServiceP50.Round(time.Microsecond), s.ServiceP99.Round(time.Microsecond), s.ServiceMax.Round(time.Microsecond))
	fmt.Fprintf(w, "schedule  max drift %v\n", s.MaxDrift.Round(time.Microsecond))
	if s.MaxGeneration > 0 {
		fmt.Fprintf(w, "table     generations %d..%d\n", s.MinGeneration, s.MaxGeneration)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
