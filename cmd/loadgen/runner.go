package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/shard"
)

// The open-loop replay engine. The defining property is
// coordinated-omission safety: every batch has an *intended* send time
// fixed by the configured arrival rate alone, and client-perceived
// latency is measured from that intended time to the response — not
// from whenever the client finally got around to sending. A server
// that stalls therefore cannot hide behind its own backpressure: the
// batches queued behind the stall record the whole wait, exactly what
// a real user arriving at the intended moment would have experienced.
// The service histogram (send → response) is kept alongside, so the
// gap between the two is the queueing the server inflicted.

// AddrSource yields client addresses to replay; ok is false when the
// stream ends.
type AddrSource interface {
	Next() (netutil.Addr, bool)
}

// RunnerOptions configures one replay run.
type RunnerOptions struct {
	Target      string        // clusterd base URL
	Rate        float64       // addresses per second (open-loop arrival rate)
	Batch       int           // addresses per POST /cluster
	MaxRequests int           // stop after this many addresses (0: drain the source)
	Concurrency int           // max in-flight batches
	Timeout     time.Duration // per-request HTTP timeout
	Client      *http.Client  // optional; built from Timeout when nil
	Logf        func(format string, args ...any)
}

func (o RunnerOptions) withDefaults() RunnerOptions {
	if o.Rate <= 0 {
		o.Rate = 5000
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// latencyHist is a fixed log2-bucketed nanosecond histogram with an
// exact max — the same shape as obsv's, kept local so concurrent runs
// (and tests) never share state through a process-global registry.
type latencyHist struct {
	buckets [64]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

func (h *latencyHist) observe(d time.Duration) {
	v := d.Nanoseconds()
	if v < 0 {
		v = 0
	}
	i := 0
	for b := v; b > 0; b >>= 1 {
		i++
	}
	if i > 63 {
		i = 63
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// quantile interpolates within the log2 bucket holding the rank.
func (h *latencyHist) quantile(q float64) time.Duration {
	var counts [64]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank >= float64(total) {
		rank = float64(total) - 0.5
	}
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < float64(seen)+float64(c) {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << (i - 1))
			hi := float64(uint64(1)<<i - 1)
			return time.Duration(lo + (rank-seen)/float64(c)*(hi-lo))
		}
		seen += float64(c)
	}
	return time.Duration(h.max.Load())
}

func (h *latencyHist) mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(c))
}

// Summary is one run's outcome.
type Summary struct {
	Sent         int           `json:"sent"`        // addresses dispatched
	Clustered    int           `json:"clustered"`   // addresses the server clustered
	Unclustered  int           `json:"unclustered"` // addresses no prefix covered
	Batches      int           `json:"batches"`
	Rejected     int           `json:"rejected"` // 503 backpressure answers
	Failed       int           `json:"failed"`   // transport errors / non-2xx
	Elapsed      time.Duration `json:"elapsed_ns"`
	OfferedRate  float64       `json:"offered_rate"`  // configured addresses/sec
	AchievedRate float64       `json:"achieved_rate"` // sent / elapsed

	// MaxDrift is how far dispatch fell behind the intended schedule at
	// its worst — the honesty metric of an open-loop generator: a large
	// drift means the *generator* (not the server) became the bottleneck
	// and even intended-time latencies are an undercount.
	MaxDrift time.Duration `json:"max_drift_ns"`

	// Intended latencies run from the schedule's intended send time to
	// the response (coordinated-omission safe); Service latencies from
	// the actual send. The gap between them is server-inflicted queueing.
	IntendedP50  time.Duration `json:"intended_p50_ns"`
	IntendedP99  time.Duration `json:"intended_p99_ns"`
	IntendedMax  time.Duration `json:"intended_max_ns"`
	IntendedMean time.Duration `json:"intended_mean_ns"`
	ServiceP50   time.Duration `json:"service_p50_ns"`
	ServiceP99   time.Duration `json:"service_p99_ns"`
	ServiceMax   time.Duration `json:"service_max_ns"`
	ServiceMean  time.Duration `json:"service_mean_ns"`

	// Generations spans the table generations observed across responses;
	// a run across a churn swap sees more than one.
	MinGeneration uint64 `json:"min_generation"`
	MaxGeneration uint64 `json:"max_generation"`
}

// Runner replays an address stream against a clusterd batch endpoint.
type Runner struct {
	opts     RunnerOptions
	client   *http.Client
	intended latencyHist
	service  latencyHist

	mu          sync.Mutex
	clustered   int
	unclustered int
	rejected    int
	failed      int
	minGen      uint64
	maxGen      uint64
}

func NewRunner(opts RunnerOptions) *Runner {
	opts = opts.withDefaults()
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: opts.Timeout}
	}
	return &Runner{opts: opts, client: c}
}

// Run replays src until it drains or MaxRequests is reached. The
// dispatcher sleeps to each batch's intended time and then acquires an
// in-flight slot; when the server is slow that acquisition blocks
// past the intended time, and the delay is charged to the batch (its
// latency clock started at the intended time regardless).
func (r *Runner) Run(ctx context.Context, src AddrSource) (*Summary, error) {
	o := r.opts
	interval := time.Duration(float64(o.Batch) / o.Rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	var maxDrift atomic.Int64

	start := time.Now()
	sent, batches := 0, 0
	var runErr error
loop:
	for i := 0; ; i++ {
		limit := o.Batch
		if o.MaxRequests > 0 && o.MaxRequests-sent < limit {
			limit = o.MaxRequests - sent
		}
		if limit == 0 {
			break
		}
		var body strings.Builder
		n := 0
		for n < limit {
			addr, ok := src.Next()
			if !ok {
				break
			}
			body.WriteString(addr.String())
			body.WriteByte('\n')
			n++
		}
		if n == 0 {
			break
		}
		intended := start.Add(time.Duration(i) * interval)
		if d := time.Until(intended); d > 0 {
			select {
			case <-ctx.Done():
				runErr = ctx.Err()
				break loop
			case <-time.After(d):
			}
		}
		if drift := time.Since(intended); drift > time.Duration(maxDrift.Load()) {
			maxDrift.Store(int64(drift))
		}
		select {
		case <-ctx.Done():
			runErr = ctx.Err()
			break loop
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(intended time.Time, body string, n int) {
			defer func() { <-sem; wg.Done() }()
			r.post(ctx, intended, body, n)
		}(intended, body.String(), n)
		sent += n
		batches++
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	elapsed := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Summary{
		Sent:          sent,
		Clustered:     r.clustered,
		Unclustered:   r.unclustered,
		Batches:       batches,
		Rejected:      r.rejected,
		Failed:        r.failed,
		Elapsed:       elapsed,
		OfferedRate:   o.Rate,
		MaxDrift:      time.Duration(maxDrift.Load()),
		IntendedP50:   r.intended.quantile(0.50),
		IntendedP99:   r.intended.quantile(0.99),
		IntendedMax:   time.Duration(r.intended.max.Load()),
		IntendedMean:  r.intended.mean(),
		ServiceP50:    r.service.quantile(0.50),
		ServiceP99:    r.service.quantile(0.99),
		ServiceMax:    time.Duration(r.service.max.Load()),
		ServiceMean:   r.service.mean(),
		MinGeneration: r.minGen,
		MaxGeneration: r.maxGen,
	}
	if elapsed > 0 {
		s.AchievedRate = float64(sent) / elapsed.Seconds()
	}
	return s, nil
}

// post sends one batch and records both latency views. Rejections
// (503) and failures are counted, not retried: an open-loop generator
// measures the system as offered, it does not negotiate.
func (r *Runner) post(ctx context.Context, intended time.Time, body string, n int) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opts.Target+"/cluster", strings.NewReader(body))
	if err != nil {
		r.fail(err)
		return
	}
	req.Header.Set("Content-Type", "text/plain")
	sendStart := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail(err)
		return
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusServiceUnavailable {
		r.mu.Lock()
		r.rejected++
		r.mu.Unlock()
		return
	}
	if resp.StatusCode != http.StatusOK {
		r.fail(fmt.Errorf("batch answered %s", resp.Status))
		return
	}
	var br shard.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		r.fail(fmt.Errorf("decoding batch response: %w", err))
		return
	}
	done := time.Now()
	r.intended.observe(done.Sub(intended))
	r.service.observe(done.Sub(sendStart))

	clustered := 0
	for _, res := range br.Results {
		if res.Clustered {
			clustered++
		}
	}
	r.mu.Lock()
	r.clustered += clustered
	r.unclustered += len(br.Results) - clustered
	if r.minGen == 0 || br.Generation < r.minGen {
		r.minGen = br.Generation
	}
	if br.Generation > r.maxGen {
		r.maxGen = br.Generation
	}
	r.mu.Unlock()
	if len(br.Results) != n {
		r.fail(fmt.Errorf("batch of %d answered with %d results", n, len(br.Results)))
	}
}

func (r *Runner) fail(err error) {
	r.mu.Lock()
	r.failed++
	r.mu.Unlock()
	r.opts.Logf("loadgen: %v", err)
}
