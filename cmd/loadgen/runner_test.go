package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/shard"
)

// fakeServer answers /cluster like clusterd: one result per address
// line. stallFirst makes the first batch hang, modeling a server
// pause; status overrides the answer code for every batch.
type fakeServer struct {
	stallFirst time.Duration
	status     func(batch int) int // nil: always 200
	gen        uint64

	batches atomic.Int64
	addrs   atomic.Int64
}

func (f *fakeServer) handler(w http.ResponseWriter, r *http.Request) {
	batch := int(f.batches.Add(1))
	var results []shard.LookupResult
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		addr, err := netutil.ParseAddr(sc.Text())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.addrs.Add(1)
		res := shard.LookupResult{Addr: addr.String(), Generation: f.gen}
		// Even last octet → clustered into its /24; odd → unclusterable.
		if addr%2 == 0 {
			res.Clustered = true
			res.Prefix = netutil.PrefixFrom(addr, 24).String()
		}
		results = append(results, res)
	}
	if batch == 1 && f.stallFirst > 0 {
		time.Sleep(f.stallFirst)
	}
	if f.status != nil {
		if code := f.status(batch); code != http.StatusOK {
			http.Error(w, "nope", code)
			return
		}
	}
	json.NewEncoder(w).Encode(shard.BatchResponse{Generation: f.gen, Results: results})
}

// seqSource yields sequential addresses forever.
type seqSource struct{ next uint32 }

func (s *seqSource) Next() (netutil.Addr, bool) {
	s.next++
	return netutil.Addr(0x0A000000 + s.next), true
}

func TestRunnerCountsAndAccounting(t *testing.T) {
	fs := &fakeServer{gen: 7}
	srv := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer srv.Close()

	r := NewRunner(RunnerOptions{
		Target:      srv.URL,
		Rate:        1e9, // no pacing: this test is about accounting
		Batch:       64,
		MaxRequests: 1000,
		Concurrency: 4,
		Logf:        t.Logf,
	})
	sum, err := r.Run(context.Background(), &seqSource{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sent != 1000 || sum.Batches != 16 {
		t.Fatalf("sent %d in %d batches, want 1000 in 16", sum.Sent, sum.Batches)
	}
	if got := fs.addrs.Load(); got != 1000 {
		t.Fatalf("server saw %d addrs", got)
	}
	if sum.Clustered+sum.Unclustered != 1000 || sum.Clustered != 500 {
		t.Fatalf("clustered %d + unclustered %d, want 500 + 500", sum.Clustered, sum.Unclustered)
	}
	if sum.Failed != 0 || sum.Rejected != 0 {
		t.Fatalf("failed %d rejected %d, want 0", sum.Failed, sum.Rejected)
	}
	if sum.MinGeneration != 7 || sum.MaxGeneration != 7 {
		t.Fatalf("generations %d..%d, want 7..7", sum.MinGeneration, sum.MaxGeneration)
	}
	if sum.ServiceP50 <= 0 || sum.IntendedP50 <= 0 {
		t.Fatalf("latency histograms empty: intended p50 %v, service p50 %v", sum.IntendedP50, sum.ServiceP50)
	}
}

func TestRunnerBackpressureAndFailures(t *testing.T) {
	fs := &fakeServer{status: func(batch int) int {
		switch batch % 3 {
		case 0:
			return http.StatusServiceUnavailable
		case 1:
			return http.StatusInternalServerError
		default:
			return http.StatusOK
		}
	}}
	srv := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer srv.Close()

	r := NewRunner(RunnerOptions{
		Target: srv.URL, Rate: 1e9, Batch: 10, MaxRequests: 90, Concurrency: 1, Logf: t.Logf,
	})
	sum, err := r.Run(context.Background(), &seqSource{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rejected != 3 || sum.Failed != 3 {
		t.Fatalf("rejected %d failed %d, want 3 and 3 out of 9 batches", sum.Rejected, sum.Failed)
	}
	if sum.Clustered+sum.Unclustered != 30 {
		t.Fatalf("accounted %d addrs, want 30 (3 OK batches)", sum.Clustered+sum.Unclustered)
	}
}

// TestRunnerCoordinatedOmission is satellite 4's regression: a server
// that stalls once must show the stall in the intended-time (arrival
// clock) latency tail, even though every batch after the first is
// served fast. A generator that timed requests from the actual send —
// the coordinated-omission bug — would report a uniformly fast p99
// here and hide the outage.
func TestRunnerCoordinatedOmission(t *testing.T) {
	const stall = 400 * time.Millisecond
	fs := &fakeServer{stallFirst: stall}
	srv := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer srv.Close()

	// concurrency 1: every batch intended during the stall queues behind
	// it. 30 batches at 25ms spacing: over half the run's arrivals land
	// inside the 400ms stall window.
	r := NewRunner(RunnerOptions{
		Target:      srv.URL,
		Rate:        2000,
		Batch:       50,
		MaxRequests: 1500,
		Concurrency: 1,
		Logf:        t.Logf,
	})
	sum, err := r.Run(context.Background(), &seqSource{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 {
		t.Fatalf("%d batches failed", sum.Failed)
	}
	if sum.IntendedMax < stall {
		t.Fatalf("intended max %v < the %v stall: the arrival clock lost the outage", sum.IntendedMax, stall)
	}
	if sum.IntendedP99 < stall/2 {
		t.Fatalf("intended p99 %v does not show the %v stall", sum.IntendedP99, stall)
	}
	// The service clock must stay fast for the median — that contrast is
	// exactly what coordinated omission would erase.
	if sum.ServiceP50 > stall/4 {
		t.Fatalf("service p50 %v: the queued batches were not served fast, test premise broken", sum.ServiceP50)
	}
	if sum.IntendedP99 < 4*sum.ServiceP50 {
		t.Fatalf("intended p99 %v vs service p50 %v: queueing not attributed to arrival latency", sum.IntendedP99, sum.ServiceP50)
	}
	// And the generator must admit it fell behind schedule.
	if sum.MaxDrift < stall/2 {
		t.Fatalf("max drift %v hides a %v dispatch stall", sum.MaxDrift, stall)
	}
}

func TestRunnerContextCancel(t *testing.T) {
	fs := &fakeServer{}
	srv := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(RunnerOptions{Target: srv.URL, Rate: 10, Batch: 10, MaxRequests: 1000, Logf: t.Logf})
	if _, err := r.Run(ctx, &seqSource{}); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}
