// Command loggen generates a synthetic web server log in Common Log
// Format over a synthetic Internet, using one of the paper's trace
// profiles (Nagano, Apache, EW3, Sun).
//
//	loggen -profile Nagano -scale 0.05 -seed 1 > nagano.log
//
// The companion bgpgen tool, run with the same -seed and -ases, produces
// routing tables whose prefixes cover exactly this log's clients.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/weblog"
)

func main() {
	profile := flag.String("profile", "Nagano", "trace profile: Nagano, Apache, EW3, Sun")
	scale := flag.Float64("scale", 0.05, "population scale (1.0 = paper scale)")
	seed := flag.Int64("seed", 1, "world seed (must match bgpgen for consistent prefixes)")
	ases := flag.Int("ases", 0, "world AS count (default: sized to the profile)")
	worldFile := flag.String("world", "", "load a worldgen-saved world instead of generating one")
	flag.Parse()

	var cfg weblog.GenConfig
	switch *profile {
	case "Nagano":
		cfg = weblog.Nagano(*scale)
	case "Apache":
		cfg = weblog.Apache(*scale)
	case "EW3":
		cfg = weblog.EW3(*scale)
	case "Sun":
		cfg = weblog.Sun(*scale)
	default:
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}

	var world *inet.Internet
	if *worldFile != "" {
		f, err := os.Open(*worldFile)
		if err != nil {
			fatal(err)
		}
		world, err = inet.ReadWorld(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		wcfg := inet.DefaultConfig()
		wcfg.Seed = *seed
		if *ases > 0 {
			wcfg.NumASes = *ases
		} else {
			wcfg.NumASes = int(5600*(*scale)) + 300
		}
		var err error
		world, err = inet.Generate(wcfg)
		if err != nil {
			fatal(err)
		}
	}
	if cfg.NumNetworks > len(world.Networks) {
		fatal(fmt.Errorf("profile needs %d networks, world has %d (raise -ases)",
			cfg.NumNetworks, len(world.Networks)))
	}
	l, err := weblog.Generate(world, cfg)
	if err != nil {
		fatal(err)
	}
	st := l.Stats()
	fmt.Fprintf(os.Stderr, "loggen: %s: %d requests, %d clients, %d URLs, %v\n",
		cfg.Name, st.Requests, st.UniqueClients, st.UniqueURLs, st.Duration)
	for s := range l.Truth.Spiders {
		fmt.Fprintf(os.Stderr, "loggen: planted spider %v\n", s)
	}
	for p := range l.Truth.Proxies {
		fmt.Fprintf(os.Stderr, "loggen: planted proxy %v\n", p)
	}
	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if err := weblog.WriteCLF(w, l); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loggen: %v\n", err)
	os.Exit(1)
}
