// Command pcvproxy runs the caching proxy the paper proposes placing in
// front of each client cluster: TTL-based freshness, If-Modified-Since
// revalidation, piggyback cache validation, LRU eviction.
//
//	pcvproxy -origin http://origin.example:8080 -listen :3128 -ttl 1h -capacity 64
//
// Stats are served at /-/stats on the same listener (a path real origins
// will not use). With -metrics-addr a second, private listener serves
// /debug/vars (expvar JSON including the process metric registry),
// /debug/pprof, /metrics (Prometheus text exposition) and /debug/trace
// (the flight-recorder ring as Chrome trace_event JSON) — keep it off the
// client-facing interface. With -metrics-out a JSON metrics snapshot is
// written on SIGINT/SIGTERM shutdown.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/httpproxy"
	"github.com/netaware/netcluster/internal/obsv"
)

func main() {
	origin := flag.String("origin", "", "origin base URL, e.g. http://origin.example:8080 (required)")
	listen := flag.String("listen", ":3128", "listen address")
	ttl := flag.Duration("ttl", time.Hour, "freshness lifetime (the paper's default: 1h)")
	capacity := flag.Int64("capacity", 64, "cache capacity in MB; 0 = unbounded")
	pcv := flag.Bool("pcv", true, "piggyback validation of expired entries on origin contacts")
	sweep := flag.Duration("sweep", time.Minute, "interval between expiry sweeps")
	metricsAddr := flag.String("metrics-addr", "", "serve /debug/vars and /debug/pprof on this private address (empty = disabled)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on SIGINT/SIGTERM shutdown")
	flag.Parse()

	if *origin == "" {
		fmt.Fprintln(os.Stderr, "pcvproxy: -origin is required")
		flag.Usage()
		os.Exit(2)
	}
	proxy, err := httpproxy.New(*origin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
		os.Exit(1)
	}
	proxy.TTL = *ttl
	proxy.Capacity = *capacity << 20
	proxy.PCV = *pcv

	go func() {
		ticker := time.NewTicker(*sweep)
		defer ticker.Stop()
		for range ticker.C {
			proxy.Sweep()
		}
	}()

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcvproxy: metrics listener: %v\n", err)
			os.Exit(1)
		}
		// Print the resolved address so ':0' users (and tests) can find it.
		fmt.Fprintf(os.Stderr, "pcvproxy: metrics on http://%s/debug/vars\n", ln.Addr())
		fmt.Fprintf(os.Stderr, "pcvproxy: debug routes: /debug/vars /debug/pprof /metrics /debug/trace\n")
		go func() {
			if err := http.Serve(ln, obsv.DebugHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "pcvproxy: metrics server: %v\n", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/-/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(proxy.Stats())
	})
	mux.Handle("/", proxy)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pcvproxy: caching %s on %s (ttl %v, capacity %d MB, pcv %v)\n",
		*origin, ln.Addr(), *ttl, *capacity, *pcv)

	// Serve in a goroutine so a signal can flush the metrics snapshot and
	// exit cleanly — the shutdown path a deployment's collector relies on.
	errc := make(chan error, 1)
	go func() { errc <- http.Serve(ln, mux) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pcvproxy: %v, shutting down\n", sig)
		if *metricsOut != "" {
			if err := obsv.WriteFile(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "pcvproxy: metrics snapshot: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "pcvproxy: metrics snapshot written to %s\n", *metricsOut)
		}
	}
}
