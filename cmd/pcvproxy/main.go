// Command pcvproxy runs the caching proxy the paper proposes placing in
// front of each client cluster: TTL-based freshness, If-Modified-Since
// revalidation, piggyback cache validation, LRU eviction.
//
//	pcvproxy -origin http://origin.example:8080 -listen :3128 -ttl 1h -capacity 64
//
// Stats are served at /-/stats on the same listener (a path real origins
// will not use). With -metrics-addr a second, private listener serves
// /debug/vars (expvar JSON including the process metric registry),
// /debug/pprof, /metrics (Prometheus text exposition), /debug/trace
// (the flight-recorder ring as Chrome trace_event JSON) and
// /debug/config (the live config generation) — keep it off the
// client-facing interface. With -metrics-out a JSON metrics snapshot is
// written on SIGINT/SIGTERM shutdown.
//
// Flags seed the tunables; a -config file overrides the keys it names
// (ttl, capacity_mb, pcv, sinks) and hot-reloads via polling or SIGHUP.
// Accepted edits retune the cache atomically (httpproxy.SetTuning) and
// reconcile the push-sink set; rejected edits keep the previous
// generation serving. The "sinks" key starts durable push exporters
// (internal/obsv/sink) with WALs under -sink-dir.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/netaware/netcluster/internal/appconf"
	"github.com/netaware/netcluster/internal/httpproxy"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/obsv/sink"
)

// proxyConfig is the watched file's schema; pointer fields distinguish
// absent keys (flag value stands) from present ones (file wins).
type proxyConfig struct {
	TTL        *appconf.Duration `json:"ttl,omitempty"`
	CapacityMB *int64            `json:"capacity_mb,omitempty"`
	PCV        *bool             `json:"pcv,omitempty"`
	Sinks      []sink.Spec       `json:"sinks,omitempty"`
}

func parseProxyConfig(data []byte) (proxyConfig, error) {
	var c proxyConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return c, err
	}
	if c.TTL != nil && c.TTL.Std() <= 0 {
		return c, fmt.Errorf("ttl %v: must be > 0", c.TTL.Std())
	}
	if c.CapacityMB != nil && *c.CapacityMB < 0 {
		return c, fmt.Errorf("capacity_mb %d: must be >= 0", *c.CapacityMB)
	}
	if err := sink.ValidateSpecs(c.Sinks); err != nil {
		return c, err
	}
	return c, nil
}

func main() {
	origin := flag.String("origin", "", "origin base URL, e.g. http://origin.example:8080 (required)")
	listen := flag.String("listen", ":3128", "listen address")
	ttl := flag.Duration("ttl", time.Hour, "freshness lifetime (the paper's default: 1h)")
	capacity := flag.Int64("capacity", 64, "cache capacity in MB; 0 = unbounded")
	pcv := flag.Bool("pcv", true, "piggyback validation of expired entries on origin contacts")
	sweep := flag.Duration("sweep", time.Minute, "interval between expiry sweeps")
	metricsAddr := flag.String("metrics-addr", "", "serve /debug/vars and /debug/pprof on this private address (empty = disabled)")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot to this file on SIGINT/SIGTERM shutdown")
	configPath := flag.String("config", "", "watched JSON config file; its keys override flags and hot-reload")
	configPoll := flag.Duration("config-poll", 2*time.Second, "poll interval for -config changes")
	sinkDir := flag.String("sink-dir", "", "directory for push-sink WALs (default: <tmp>/pcvproxy-sinks)")
	flag.Parse()

	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *origin == "" {
		fmt.Fprintln(os.Stderr, "pcvproxy: -origin is required")
		flag.Usage()
		os.Exit(2)
	}
	proxy, err := httpproxy.New(*origin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
		os.Exit(1)
	}
	proxy.SetTuning(*ttl, *capacity<<20, *pcv)

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	if *sinkDir == "" {
		*sinkDir = os.TempDir() + "/pcvproxy-sinks"
	}
	sinks := sink.NewManager(*sinkDir, sink.Options{Defaults: sink.Config{Logf: logf}})

	// applyConfig swaps one accepted generation into the cache and the
	// sink set. The shadow warnings fire when a file key overrides a
	// flag the operator also set explicitly — the file wins, loudly.
	applyConfig := func(old, cur *appconf.Loaded[proxyConfig]) {
		effTTL, effCap, effPCV := *ttl, *capacity, *pcv
		if cur.Config.TTL != nil {
			if explicit["ttl"] {
				logf("pcvproxy: warn event=config_shadows_flag key=ttl flag=-ttl flag_value=%v config_value=%v resolution=config-file-wins", *ttl, cur.Config.TTL.Std())
			}
			effTTL = cur.Config.TTL.Std()
		}
		if cur.Config.CapacityMB != nil {
			if explicit["capacity"] {
				logf("pcvproxy: warn event=config_shadows_flag key=capacity_mb flag=-capacity flag_value=%v config_value=%v resolution=config-file-wins", *capacity, *cur.Config.CapacityMB)
			}
			effCap = *cur.Config.CapacityMB
		}
		if cur.Config.PCV != nil {
			if explicit["pcv"] {
				logf("pcvproxy: warn event=config_shadows_flag key=pcv flag=-pcv flag_value=%v config_value=%v resolution=config-file-wins", *pcv, *cur.Config.PCV)
			}
			effPCV = *cur.Config.PCV
		}
		proxy.SetTuning(effTTL, effCap<<20, effPCV)
		if err := sinks.Apply(cur.Config.Sinks); err != nil {
			logf("pcvproxy: sink reconcile: %v", err)
		}
		logf("pcvproxy: config generation %d applied: ttl %v, capacity %d MB, pcv %v, %d sink(s)",
			cur.Generation, effTTL, effCap, effPCV, len(cur.Config.Sinks))
	}
	var watcher *appconf.Watcher[proxyConfig]
	if *configPath != "" {
		watcher, err = appconf.Watch(*configPath, parseProxyConfig, appconf.Options[proxyConfig]{
			PollInterval: *configPoll,
			OnSwap:       applyConfig,
			Logf:         logf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
			os.Exit(1)
		}
	}

	go func() {
		ticker := time.NewTicker(*sweep)
		defer ticker.Stop()
		for range ticker.C {
			proxy.Sweep()
		}
	}()

	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcvproxy: metrics listener: %v\n", err)
			os.Exit(1)
		}
		// Print the resolved address so ':0' users (and tests) can find it.
		fmt.Fprintf(os.Stderr, "pcvproxy: metrics on http://%s/debug/vars\n", ln.Addr())
		fmt.Fprintf(os.Stderr, "pcvproxy: debug routes: /debug/vars /debug/pprof /metrics /debug/trace /debug/config\n")
		dmux := http.NewServeMux()
		if watcher != nil {
			dmux.Handle("/debug/config", watcher.Handler())
		} else {
			dmux.HandleFunc("/debug/config", func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				json.NewEncoder(w).Encode(map[string]any{"generation": 0, "note": "no -config file; flags only"})
			})
		}
		dmux.Handle("/", obsv.DebugHandler())
		go func() {
			if err := http.Serve(ln, dmux); err != nil {
				fmt.Fprintf(os.Stderr, "pcvproxy: metrics server: %v\n", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/-/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(proxy.Stats())
	})
	mux.Handle("/", proxy)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pcvproxy: caching %s on %s (ttl %v, capacity %d MB, pcv %v)\n",
		*origin, ln.Addr(), *ttl, *capacity, *pcv)

	// Serve in a goroutine so a signal can flush the metrics snapshot and
	// exit cleanly — the shutdown path a deployment's collector relies on.
	errc := make(chan error, 1)
	go func() { errc <- http.Serve(ln, mux) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errc:
			fmt.Fprintf(os.Stderr, "pcvproxy: %v\n", err)
			os.Exit(1)
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				if watcher == nil {
					fmt.Fprintln(os.Stderr, "pcvproxy: SIGHUP with no -config file, nothing to reload")
					continue
				}
				if swapped, err := watcher.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "pcvproxy: SIGHUP reload rejected: %v\n", err)
				} else if swapped {
					fmt.Fprintf(os.Stderr, "pcvproxy: SIGHUP reload: generation %d live\n", watcher.Generation())
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "pcvproxy: %v, shutting down\n", sig)
			if watcher != nil {
				watcher.Close()
			}
			// Flush export queues before the snapshot so pushed series
			// and the file agree; the deadline keeps a wedged sink from
			// hanging shutdown (its backlog stays in the WAL).
			fctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := sinks.Close(fctx); err != nil {
				fmt.Fprintf(os.Stderr, "pcvproxy: sink flush: %v\n", err)
			}
			cancel()
			if *metricsOut != "" {
				if err := obsv.WriteFile(*metricsOut); err != nil {
					fmt.Fprintf(os.Stderr, "pcvproxy: metrics snapshot: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "pcvproxy: metrics snapshot written to %s\n", *metricsOut)
			}
			return
		}
	}
}
