// Command tabletool inspects, diffs, merges and aggregates routing-table
// snapshot files — the operational side of working with the paper's
// inputs.
//
//	tabletool stats aads.txt mae-east.txt     per-file sizes + length histograms
//	tabletool diff day0.txt day14.txt         withdrawn/announced/common (BGP dynamics)
//	tabletool merge *.txt                     union size and per-source contributions
//	tabletool aggregate aads.txt              CIDR aggregation compression ratio
//	tabletool compile -o table.nct *.txt      merge + compile dumps into a table snapshot
//	tabletool verify table.nct [*.txt]        checksum/structure check (+ dump equivalence)
//
// compile produces the versioned, checksummed on-disk form of the
// compiled longest-prefix-match table (see internal/bgp table snapshot
// format); clusterd boots from it with -table-snapshot, skipping the
// merge/compile work at startup, and loads it zero-copy via mmap where
// the platform allows. verify re-validates a snapshot end to end and,
// when given the source dumps, proves the file byte-identical to a fresh
// compile of those dumps.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/report"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, files := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		cmdStats(files)
	case "diff":
		if len(files) != 2 {
			fatal(fmt.Errorf("diff needs exactly two files"))
		}
		cmdDiff(files[0], files[1])
	case "merge":
		cmdMerge(files)
	case "aggregate":
		if len(files) != 1 {
			fatal(fmt.Errorf("aggregate needs exactly one file"))
		}
		cmdAggregate(files[0])
	case "compile":
		cmdCompile(files)
	case "verify":
		cmdVerify(files[0], files[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tabletool stats|diff|merge|aggregate|compile|verify <file>...")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tabletool: %v\n", err)
	os.Exit(1)
}

func load(path string) *bgp.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	s, err := bgp.ReadSnapshot(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if s.Name == "" {
		s.Name = path
	}
	return s
}

func cmdStats(files []string) {
	for _, path := range files {
		s := load(path)
		hist := bgp.SnapshotPrefixLengthHistogram(s)
		total := 0
		var labels []string
		var counts []int
		for l := 0; l <= 32; l++ {
			if hist[l] == 0 {
				continue
			}
			total += hist[l]
			labels = append(labels, "/"+strconv.Itoa(l))
			counts = append(counts, hist[l])
		}
		fmt.Printf("%s (%s, %s): %s unique prefixes\n", s.Name, s.Kind, s.Date, report.FmtInt(total))
		fmt.Println(report.Histogram("", labels, counts, 40))
	}
}

func cmdDiff(aPath, bPath string) {
	a, b := load(aPath), load(bPath)
	aSet, bSet := a.PrefixSet(), b.PrefixSet()
	onlyA, onlyB, common := 0, 0, 0
	for p := range aSet {
		if _, ok := bSet[p]; ok {
			common++
		} else {
			onlyA++
		}
	}
	for p := range bSet {
		if _, ok := aSet[p]; !ok {
			onlyB++
		}
	}
	t := &report.Table{
		Title:   fmt.Sprintf("diff %s -> %s", a.Name, b.Name),
		Headers: []string{"set", "prefixes"},
	}
	t.AddRow("common", report.FmtInt(common))
	t.AddRow("withdrawn (only in "+a.Name+")", report.FmtInt(onlyA))
	t.AddRow("announced (only in "+b.Name+")", report.FmtInt(onlyB))
	t.AddRow("dynamic set (maximum effect)", report.FmtInt(onlyA+onlyB))
	fmt.Println(t)
	dyn := bgp.DynamicPrefixSet([]*bgp.Snapshot{a, b})
	if len(dyn) != onlyA+onlyB {
		fatal(fmt.Errorf("internal inconsistency: dynamic set %d vs %d", len(dyn), onlyA+onlyB))
	}
	frac := float64(len(dyn)) / float64(len(aSet))
	fmt.Printf("churn: %s of %s's table (the paper's Table 4 metric)\n",
		report.FmtPct(frac), a.Name)
}

func cmdMerge(files []string) {
	m := bgp.NewMerged()
	t := &report.Table{
		Title:   "merge",
		Headers: []string{"source", "kind", "prefixes", "new to union"},
	}
	seen := map[netutil.Prefix]struct{}{}
	for _, path := range files {
		s := load(path)
		newCount := 0
		for p := range s.PrefixSet() {
			if _, dup := seen[p]; !dup {
				seen[p] = struct{}{}
				newCount++
			}
		}
		m.Add(s)
		t.AddRow(s.Name, s.Kind.String(), report.FmtInt(len(s.PrefixSet())), report.FmtInt(newCount))
	}
	fmt.Println(t)
	fmt.Printf("union: %s unique prefixes (%s BGP-sourced, %s registry-sourced)\n",
		report.FmtInt(len(seen)), report.FmtInt(m.NumPrimary()), report.FmtInt(m.NumSecondary()))
}

// compileMerged merges dump files in argument order — marshal output is
// deterministic for a given file order, which is what lets verify prove
// byte-identity against a fresh compile.
func compileMerged(files []string) *bgp.Compiled {
	m := bgp.NewMerged()
	for _, path := range files {
		m.Add(load(path))
	}
	return m.Compile()
}

func cmdCompile(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", "table.nct", "output snapshot path")
	fs.Parse(args)
	files := fs.Args()
	if len(files) == 0 {
		fatal(fmt.Errorf("compile needs at least one dump file"))
	}
	c := compileMerged(files)
	if err := bgp.SaveTable(*out, c); err != nil {
		fatal(err)
	}
	// A fresh compile stands at the start of the delta stream; the sidecar
	// lets clusterd -table-snapshot warm-start at the right position.
	if err := bgp.SaveTableMeta(*out, bgp.TableMeta{}); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s prefixes (%s BGP, %s registry), %s trie nodes, %s bytes\n",
		*out, report.FmtInt(c.Len()), report.FmtInt(c.NumPrimary()),
		report.FmtInt(c.NumSecondary()), report.FmtInt(c.NumNodes()),
		report.FmtInt(int(st.Size())))
}

func cmdVerify(path string, dumps []string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	c, err := bgp.VerifyTable(data)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("%s: ok — %s prefixes (%s BGP, %s registry), %s trie nodes, %s bytes\n",
		path, report.FmtInt(c.Len()), report.FmtInt(c.NumPrimary()),
		report.FmtInt(c.NumSecondary()), report.FmtInt(c.NumNodes()),
		report.FmtInt(len(data)))
	if len(dumps) == 0 {
		return
	}
	want, err := bgp.MarshalTable(compileMerged(dumps))
	if err != nil {
		fatal(err)
	}
	if !bytes.Equal(data, want) {
		fatal(fmt.Errorf("%s differs from a fresh compile of %d dump(s)", path, len(dumps)))
	}
	fmt.Printf("%s: byte-identical to a fresh compile of %d dump(s)\n", path, len(dumps))
}

func cmdAggregate(path string) {
	s := load(path)
	before := bgp.SortedPrefixes(s)
	after := bgp.Aggregate(before)
	fmt.Printf("%s: %s prefixes -> %s after CIDR aggregation (%s compression)\n",
		s.Name, report.FmtInt(len(before)), report.FmtInt(len(after)),
		report.FmtPct(1-float64(len(after))/float64(len(before))))
}
