// Command tracecheck validates Chrome trace_event JSON files written by
// clusterctl/experiments -trace-out or the /debug/trace endpoint:
//
//	tracecheck trace.json [more.json ...]
//
// For each file it checks the schema (pid/tid/ts/dur/ph on every complete
// event) and the nesting invariant (events sharing a (pid,tid) lane are
// properly nested or disjoint — what chrome://tracing assumes when it
// draws stacks), then prints the event count. Any invalid file makes the
// exit status nonzero, which is what the CI trace-smoke step keys off.
//
// Merge mode stitches per-process dumps from a cluster into one trace:
//
//	tracecheck -merge merged.json -require-shared-trace \
//	    router.json shard0.json shard1.json
//
// Each input becomes its own process lane group (pid = input order,
// named after the file), the merged output is validated like any other
// trace, and -require-shared-trace additionally demands at least one
// TraceID present in every input — the cross-process propagation proof
// the cluster-obsv-smoke CI lane keys off.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/netaware/netcluster/internal/obsv"
)

func main() {
	mergeOut := flag.String("merge", "", "merge the input traces into one multi-process trace at this path (one pid lane group per input), then validate the result")
	requireShared := flag.Bool("require-shared-trace", false, "with -merge: fail unless at least one TraceID appears in every input (proves cross-process propagation)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-merge out.json [-require-shared-trace]] <trace.json>...")
		os.Exit(2)
	}
	if *requireShared && *mergeOut == "" {
		fmt.Fprintln(os.Stderr, "tracecheck: -require-shared-trace needs -merge")
		os.Exit(2)
	}
	if *mergeOut != "" {
		if err := merge(*mergeOut, flag.Args(), *requireShared); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			bad = true
			continue
		}
		n, err := obsv.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok, %d events\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}

func merge(out string, paths []string, requireShared bool) error {
	names := make([]string, len(paths))
	files := make([][]byte, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if _, err := obsv.ValidateChromeTrace(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		names[i] = strings.TrimSuffix(filepath.Base(path), ".json")
		files[i] = data
	}
	merged, err := obsv.MergeChromeTraces(names, files)
	if err != nil {
		return err
	}
	n, err := obsv.ValidateChromeTrace(merged)
	if err != nil {
		return fmt.Errorf("merged trace invalid: %w", err)
	}
	if requireShared {
		shared, err := obsv.SharedChromeTraceIDs(files)
		if err != nil {
			return err
		}
		if len(shared) == 0 {
			return fmt.Errorf("no TraceID spans all %d inputs — trace propagation broken", len(paths))
		}
		fmt.Printf("%d trace id(s) span all %d inputs\n", len(shared), len(paths))
	}
	if err := os.WriteFile(out, merged, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: ok, %d events merged from %d files\n", out, n, len(paths))
	return nil
}
