// Command tracecheck validates Chrome trace_event JSON files written by
// clusterctl/experiments -trace-out or the /debug/trace endpoint:
//
//	tracecheck trace.json [more.json ...]
//
// For each file it checks the schema (pid/tid/ts/dur/ph on every complete
// event) and the nesting invariant (events sharing a (pid,tid) lane are
// properly nested or disjoint — what chrome://tracing assumes when it
// draws stacks), then prints the event count. Any invalid file makes the
// exit status nonzero, which is what the CI trace-smoke step keys off.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netaware/netcluster/internal/obsv"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			bad = true
			continue
		}
		n, err := obsv.ValidateChromeTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok, %d events\n", path, n)
	}
	if bad {
		os.Exit(1)
	}
}
