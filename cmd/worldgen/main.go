// Command worldgen generates a synthetic Internet and saves it, so that
// loggen, bgpgen and custom tooling can operate on one shared, exact
// ground truth instead of relying on matching generation flags.
//
//	worldgen -scale 0.25 -seed 1 -o world.txt
//	loggen -world world.txt -profile Nagano > nagano.log
//	bgpgen -world world.txt -all -dir tables/
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netaware/netcluster/internal/inet"
)

func main() {
	scale := flag.Float64("scale", 0.05, "world scale (sizes the AS population)")
	seed := flag.Int64("seed", 1, "generation seed")
	ases := flag.Int("ases", 0, "explicit AS count (overrides -scale)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	cfg := inet.DefaultConfig()
	cfg.Seed = *seed
	if *ases > 0 {
		cfg.NumASes = *ases
	} else {
		cfg.NumASes = int(5600*(*scale)) + 300
	}
	world, err := inet.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := inet.WriteWorld(w, world); err != nil {
		fatal(err)
	}
	st := world.Stats()
	fmt.Fprintf(os.Stderr, "worldgen: %d ASes, %d networks, %d host capacity\n",
		st.ASes, st.Networks, st.HostsCapacity)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "worldgen: %v\n", err)
	os.Exit(1)
}
