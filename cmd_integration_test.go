package netcluster_test

// End-to-end integration tests of the command-line tools: loggen and
// bgpgen generate mutually consistent artifacts, clusterctl consumes them,
// and the experiments driver regenerates a figure. The binaries are built
// once into a shared temp dir. These tests exercise the same code paths a
// user's shell session would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	netcluster "github.com/netaware/netcluster"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "netcluster-tools-*")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir,
			"./cmd/loggen", "./cmd/bgpgen", "./cmd/clusterctl", "./cmd/experiments",
			"./cmd/worldgen", "./cmd/tabletool", "./cmd/pcvproxy", "./cmd/benchdiff",
			"./cmd/tracecheck", "./cmd/clusterd", "./cmd/clusterrouter", "./cmd/loadgen")
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = err
			buildDir = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v (%s)", buildErr, buildDir)
	}
	return buildDir
}

func run(t *testing.T, name string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	var so, se strings.Builder
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstderr: %s", name, args, err, se.String())
	}
	return so.String(), se.String()
}

func TestToolchainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()

	// 1. Generate a log and the matching routing tables.
	logOut, logErr := run(t, "loggen", "-profile", "Nagano", "-scale", "0.005", "-seed", "3")
	if !strings.Contains(logErr, "requests") {
		t.Fatalf("loggen stderr missing summary: %q", logErr)
	}
	logPath := filepath.Join(dir, "nagano.log")
	if err := os.WriteFile(logPath, []byte(logOut), 0o644); err != nil {
		t.Fatal(err)
	}
	tablesDir := filepath.Join(dir, "tables")
	if err := os.Mkdir(tablesDir, 0o755); err != nil {
		t.Fatal(err)
	}
	_, genErr := run(t, "bgpgen", "-all", "-dir", tablesDir, "-scale", "0.005", "-seed", "3")
	if !strings.Contains(genErr, "wrote 14 snapshots") {
		t.Fatalf("bgpgen stderr: %q", genErr)
	}

	// 2. Cluster the log against a few of the tables.
	out, _ := run(t, "clusterctl",
		"-log", logPath,
		"-table", filepath.Join(tablesDir, "oregon.txt"),
		"-table", filepath.Join(tablesDir, "att-bgp.txt"),
		"-table", filepath.Join(tablesDir, "arin.txt"),
		"-top", "5")
	for _, want := range []string{"merged table:", "clusters:", "coverage", "clusters by request volume"} {
		if !strings.Contains(out, want) {
			t.Errorf("clusterctl output missing %q:\n%s", want, out)
		}
	}
	// Coverage against a high-visibility table subset must be high.
	if strings.Contains(out, "clusters: 0 ") {
		t.Error("clusterctl found no clusters")
	}

	// 3. The simple method needs no tables.
	simpleOut, _ := run(t, "clusterctl", "-log", logPath, "-method", "simple", "-top", "3")
	if !strings.Contains(simpleOut, "100.0% coverage") {
		t.Errorf("simple method must cover everything:\n%s", simpleOut)
	}

	// 4. Thresholding mode.
	thOut, _ := run(t, "clusterctl", "-log", logPath, "-method", "simple", "-threshold", "0.7")
	if !strings.Contains(thOut, "busy clusters covering 70.0%") {
		t.Errorf("threshold output:\n%s", thOut)
	}

	// 5. Streaming mode agrees with in-memory mode on cluster counts.
	streamOut, _ := run(t, "clusterctl", "-log", logPath, "-method", "simple", "-stream")
	var memClusters, streamClusters string
	for _, line := range strings.Split(simpleOut, "\n") {
		if strings.HasPrefix(line, "clusters:") {
			memClusters = line
		}
	}
	for _, line := range strings.Split(streamOut, "\n") {
		if strings.HasPrefix(line, "clusters:") {
			streamClusters = line
		}
	}
	if memClusters == "" || memClusters != streamClusters {
		t.Errorf("streaming disagrees with in-memory:\n%q\n%q", memClusters, streamClusters)
	}
}

func TestBgpgenFormatsParseBack(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	// Every output notation must be parseable by ReadSnapshot and agree on
	// the prefix set.
	sizes := map[string]int{}
	for _, format := range []string{"cidr", "netmask", "classful"} {
		out, _ := run(t, "bgpgen", "-view", "MAE-WEST", "-scale", "0.005", "-seed", "3", "-format", format)
		snap, err := netclusterReadSnapshot(out)
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		sizes[format] = len(snap.PrefixSet())
	}
	if sizes["cidr"] != sizes["netmask"] || sizes["cidr"] != sizes["classful"] {
		t.Fatalf("prefix sets differ across formats: %v", sizes)
	}
}

func TestWorldgenSharedGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()
	worldPath := filepath.Join(dir, "world.txt")
	_, genErr := run(t, "worldgen", "-scale", "0.005", "-seed", "9", "-o", worldPath)
	if !strings.Contains(genErr, "networks") {
		t.Fatalf("worldgen stderr: %q", genErr)
	}
	// Two loggen runs from the same world file must be byte-identical.
	a, _ := run(t, "loggen", "-world", worldPath, "-profile", "Nagano", "-scale", "0.005")
	b, _ := run(t, "loggen", "-world", worldPath, "-profile", "Nagano", "-scale", "0.005")
	if a != b {
		t.Fatal("same world file produced different logs")
	}
	// And bgpgen accepts the same world.
	view, _ := run(t, "bgpgen", "-world", worldPath, "-view", "OREGON", "-scale", "0.005")
	if !strings.Contains(view, "# name: OREGON") {
		t.Fatalf("bgpgen output: %.120q", view)
	}
}

func TestTabletoolDiff(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	dir := t.TempDir()
	day0 := filepath.Join(dir, "d0.txt")
	day14 := filepath.Join(dir, "d14.txt")
	out0, _ := run(t, "bgpgen", "-view", "AADS", "-scale", "0.005", "-seed", "3")
	out14, _ := run(t, "bgpgen", "-view", "AADS", "-scale", "0.005", "-seed", "3", "-day", "14")
	os.WriteFile(day0, []byte(out0), 0o644)
	os.WriteFile(day14, []byte(out14), 0o644)
	diff, _ := run(t, "tabletool", "diff", day0, day14)
	for _, want := range []string{"common", "withdrawn", "announced", "churn:"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff output missing %q:\n%s", want, diff)
		}
	}
	agg, _ := run(t, "tabletool", "aggregate", day0)
	if !strings.Contains(agg, "CIDR aggregation") {
		t.Errorf("aggregate output:\n%s", agg)
	}
}

func TestExperimentsList(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	out, _ := run(t, "experiments", "-list")
	for _, id := range []string{"fig1", "fig3", "fig7", "fig11", "tab3", "tab4", "tab5", "placement", "multiserver"} {
		if !strings.Contains(out, id) {
			t.Errorf("experiments -list missing %q", id)
		}
	}
}

// netclusterReadSnapshot parses snapshot text through the public API.
func netclusterReadSnapshot(s string) (*netcluster.Snapshot, error) {
	return netcluster.ReadSnapshot(strings.NewReader(s))
}
