package netcluster_test

// Godoc examples for the public API: each compiles, runs under `go test`,
// and appears in `go doc` output for its symbol.

import (
	"fmt"
	"strings"

	netcluster "github.com/netaware/netcluster"
)

// The paper's worked example from Section 3.2.1: six clients, two
// routing-table prefixes, two clusters.
func ExampleClusterLog() {
	snapshot, _ := netcluster.ReadSnapshot(strings.NewReader(
		"# name: EXAMPLE\n# kind: bgp\n" +
			"12.65.128.0/19\n" +
			"24.48.2.0/23\n"))
	table := netcluster.NewTable()
	table.Add(snapshot)

	log, _ := netcluster.ReadLog(strings.NewReader(
		`12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] "GET /a.html HTTP/1.0" 200 100
12.65.147.149 - - [13/Feb/1998:06:15:05 +0000] "GET /a.html HTTP/1.0" 200 100
12.65.146.207 - - [13/Feb/1998:06:15:06 +0000] "GET /b.html HTTP/1.0" 200 200
12.65.144.247 - - [13/Feb/1998:06:15:07 +0000] "GET /c.html HTTP/1.0" 200 300
24.48.3.87 - - [13/Feb/1998:06:15:08 +0000] "GET /a.html HTTP/1.0" 200 100
24.48.2.166 - - [13/Feb/1998:06:15:09 +0000] "GET /d.html HTTP/1.0" 200 400
`), "example")

	result := netcluster.ClusterLog(log, netcluster.NetworkAware{Table: table})
	for _, c := range result.Clusters {
		fmt.Printf("%v: %d clients, %d requests\n", c.Prefix, c.NumClients(), c.Requests)
	}
	// Output:
	// 12.65.128.0/19: 4 clients, 4 requests
	// 24.48.2.0/23: 2 clients, 2 requests
}

// The simple /24 baseline mis-clusters the paper's Bell Atlantic example:
// three hosts in three distinct /28 networks land in one cluster.
func ExampleSimple() {
	log, _ := netcluster.ReadLog(strings.NewReader(
		`151.198.194.17 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 10
151.198.194.34 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 10
151.198.194.50 - - [13/Feb/1998:06:15:06 +0000] "GET /a HTTP/1.0" 200 10
`), "bellatlantic")
	result := netcluster.ClusterLog(log, netcluster.Simple{})
	fmt.Printf("%d cluster(s): %v\n", len(result.Clusters), result.Clusters[0].Prefix)
	// Output:
	// 1 cluster(s): 151.198.194.0/24
}

// ParsePrefixEntry accepts all three 1999-era routing-dump notations.
func ExampleParsePrefixEntry() {
	for _, entry := range []string{
		"12.65.128.0/19",        // CIDR
		"12.65.128/255.255.224", // dotted netmask, zero octets dropped
		"18.0.0.0",              // bare classful Class A block
	} {
		p, _ := netcluster.ParsePrefixEntry(entry)
		fmt.Println(p)
	}
	// Output:
	// 12.65.128.0/19
	// 12.65.128.0/19
	// 18.0.0.0/8
}

// Thresholding keeps the busy clusters that cover 70% of requests.
func ExampleResult_ThresholdBusy() {
	var lines strings.Builder
	emit := func(client string, n int) {
		for i := 0; i < n; i++ {
			fmt.Fprintf(&lines,
				"%s - - [13/Feb/1998:06:15:04 +0000] \"GET /x HTTP/1.0\" 200 10\n", client)
		}
	}
	emit("1.1.1.1", 50)
	emit("2.2.2.2", 30)
	emit("3.3.3.3", 15)
	emit("4.4.4.4", 5)
	log, _ := netcluster.ReadLog(strings.NewReader(lines.String()), "t")
	result := netcluster.ClusterLog(log, netcluster.Simple{})
	th := result.ThresholdBusy(0.70)
	fmt.Printf("%d busy of %d clusters; smallest busy cluster issues %d requests\n",
		len(th.Busy), len(result.Clusters), th.Threshold)
	// Output:
	// 2 busy of 4 clusters; smallest busy cluster issues 30 requests
}
