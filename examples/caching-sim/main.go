// Web caching simulation: reproduce the paper's Figure 11 experiment in
// miniature — sweep per-cluster proxy cache sizes and show how the simple
// /24 clustering under-estimates the benefit of proxy caching compared to
// network-aware clustering.
//
//	go run ./examples/caching-sim
package main

import (
	"fmt"
	"log"

	netcluster "github.com/netaware/netcluster"
)

func main() {
	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 600
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
	table := netcluster.CollectAndMerge(sim)

	accessLog, err := netcluster.GenerateLog(world, netcluster.NaganoProfile(0.02))
	if err != nil {
		log.Fatal(err)
	}

	na := netcluster.ClusterLog(accessLog, netcluster.NetworkAware{Table: table})
	si := netcluster.ClusterLog(accessLog, netcluster.Simple{})
	fmt.Printf("network-aware: %d clusters | simple: %d clusters\n\n",
		len(na.Clusters), len(si.Clusters))

	// Sweep cache sizes as in Figure 11 (100 KB – 100 MB per proxy, 1 h
	// TTL, piggyback cache validation, LRU replacement).
	sizes := []int64{100 << 10, 1 << 20, 10 << 20, 100 << 20}
	cfg := netcluster.DefaultSimConfig()
	naOut := netcluster.SimulateSweep(na, cfg, sizes)
	siOut := netcluster.SimulateSweep(si, cfg, sizes)

	fmt.Printf("%-10s %22s %22s\n", "", "hit ratio", "byte hit ratio")
	fmt.Printf("%-10s %11s %10s %11s %10s\n", "cache", "net-aware", "simple", "net-aware", "simple")
	label := func(b int64) string {
		if b >= 1<<20 {
			return fmt.Sprintf("%d MB", b>>20)
		}
		return fmt.Sprintf("%d KB", b>>10)
	}
	for i, s := range sizes {
		fmt.Printf("%-10s %10.1f%% %9.1f%% %10.1f%% %9.1f%%\n",
			label(s),
			naOut[i].HitRatio*100, siOut[i].HitRatio*100,
			naOut[i].ByteHitRatio*100, siOut[i].ByteHitRatio*100)
	}

	last := len(sizes) - 1
	fmt.Printf("\nat %s the simple approach under-reports the hit ratio by %.1f points\n",
		label(sizes[last]), (naOut[last].HitRatio-siOut[last].HitRatio)*100)
	fmt.Println("(the paper observes ~10% — fragmented /24 clusters prevent cache sharing)")

	// Per-proxy view with infinite caches (Figure 12): the busiest proxies.
	cfg.CacheBytes = 0
	out := netcluster.Simulate(na, cfg)
	fmt.Println("\nbusiest proxies with infinite caches:")
	for i, p := range out.Proxies {
		if i == 6 {
			break
		}
		fmt.Printf("  %-18v %7d requests  %5.1f%% hits  %5.1f%% byte hits\n",
			p.Prefix, p.Requests, p.Stats.HitRatio()*100, p.Stats.ByteHitRatio()*100)
	}
}
