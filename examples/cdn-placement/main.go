// CDN proxy placement: the paper's motivating application. Given a server
// log, find the client clusters worth fronting with a proxy, validate the
// candidate clusters by sampling, and estimate the payoff of each
// placement with the trace-driven caching simulation.
//
//	go run ./examples/cdn-placement
package main

import (
	"fmt"
	"log"
	"sort"

	netcluster "github.com/netaware/netcluster"
)

func main() {
	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 700
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
	table := netcluster.CollectAndMerge(sim)

	accessLog, err := netcluster.GenerateLog(world, netcluster.ApacheProfile(0.03))
	if err != nil {
		log.Fatal(err)
	}

	// Clean the log first: a proxy in front of a spider's cluster is
	// wasted hardware (Figure 8(a) of the paper).
	pre := netcluster.ClusterLog(accessLog, netcluster.Simple{})
	findings := netcluster.DetectRobots(pre, netcluster.DefaultDetectConfig())
	robots := netcluster.FindingClients(findings, netcluster.KindSpider)
	if len(robots) > 0 {
		fmt.Printf("eliminating %d spider(s) before placement analysis\n", len(robots))
		accessLog = netcluster.Eliminate(accessLog, robots)
	}

	res := netcluster.ClusterLog(accessLog, netcluster.NetworkAware{Table: table})
	th := res.ThresholdBusy(0.70)
	fmt.Printf("%d clusters; %d busy clusters carry 70%% of requests\n",
		len(res.Clusters), len(th.Busy))

	// Validate the candidate placements by sampling: a mis-identified
	// cluster (clients under different administrations) cannot share a
	// proxy deployment decision.
	resolver := netcluster.NewResolver(world)
	sampled := netcluster.SampleClusters(th.Busy, 0.20, 42)
	report := netcluster.ValidateNslookup(world, resolver, sampled)
	fmt.Printf("validation: %d/%d sampled busy clusters pass the name-suffix test (%.1f%%)\n",
		report.SampledClusters-report.Misidentified, report.SampledClusters,
		report.PassRate()*100)

	// Estimate each placement's payoff with per-cluster proxies (64 MB,
	// 1 h TTL, PCV) and rank by bytes saved.
	simCfg := netcluster.DefaultSimConfig()
	simCfg.CacheBytes = 64 << 20
	outcome := netcluster.Simulate(res, simCfg)
	fmt.Printf("\nserver-wide: %.1f%% of requests and %.1f%% of bytes absorbed by proxies\n",
		outcome.HitRatio*100, outcome.ByteHitRatio*100)

	type placement struct {
		prefix     netcluster.Prefix
		bytesSaved int64
		hitRatio   float64
		clients    int
	}
	var placements []placement
	for _, p := range outcome.Proxies {
		placements = append(placements, placement{
			prefix:     p.Prefix,
			bytesSaved: p.Stats.ByteHits,
			hitRatio:   p.Stats.HitRatio(),
			clients:    p.Clients,
		})
	}
	sort.Slice(placements, func(i, j int) bool {
		return placements[i].bytesSaved > placements[j].bytesSaved
	})
	fmt.Println("\ntop proxy placements by bytes saved:")
	for i, p := range placements {
		if i == 8 {
			break
		}
		fmt.Printf("  %2d. %-18v %5d clients  %6.1f MB saved  %5.1f%% hit ratio\n",
			i+1, p.prefix, p.clients, float64(p.bytesSaved)/(1<<20), p.hitRatio*100)
	}
}
