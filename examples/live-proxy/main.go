// Live proxy: run the paper's cluster-front proxy design against a real
// HTTP origin, entirely in-process. An origin server with periodically
// modified resources sits behind an HTTPProxy; a synthetic client
// population replays a Zipf-shaped workload through it, and the measured
// cache behaviour is printed — the runnable counterpart of the Figure 11
// simulation.
//
//	go run ./examples/live-proxy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	netcluster "github.com/netaware/netcluster"
)

func main() {
	// An origin with 200 pages; page i carries ~(i+1) KB and was last
	// modified at a fixed timestamp.
	lastModified := time.Now().Add(-24 * time.Hour)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var n int
		if _, err := fmt.Sscanf(r.URL.Path, "/page/%d", &n); err != nil || n < 0 || n >= 200 {
			http.NotFound(w, r)
			return
		}
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if t, err := http.ParseTime(ims); err == nil && !lastModified.Truncate(time.Second).After(t) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Last-Modified", lastModified.UTC().Format(http.TimeFormat))
		body := make([]byte, (n+1)*1024)
		for i := range body {
			body[i] = byte('a' + n%26)
		}
		w.Write(body)
	}))
	defer origin.Close()

	// The cluster's proxy: 2 MB cache, 1 h TTL, PCV on.
	proxy, err := netcluster.NewHTTPProxy(origin.URL)
	if err != nil {
		log.Fatal(err)
	}
	proxy.Capacity = 2 << 20
	front := httptest.NewServer(proxy)
	defer front.Close()

	// A cluster's worth of clients requesting pages with Zipf popularity.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.3, 4, 199)
	client := &http.Client{Timeout: 10 * time.Second}
	const requests = 3000
	start := time.Now()
	for i := 0; i < requests; i++ {
		page := zipf.Uint64()
		resp, err := client.Get(fmt.Sprintf("%s/page/%d", front.URL, page))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
	}
	elapsed := time.Since(start)

	st := proxy.Stats()
	fmt.Printf("replayed %d requests in %v through a 2 MB PCV proxy\n\n", requests, elapsed)
	fmt.Printf("hit ratio:        %5.1f%%  (%d hits)\n", float64(st.Hits)/float64(st.Requests)*100, st.Hits)
	fmt.Printf("byte hit ratio:   %5.1f%%  (%.1f of %.1f MB)\n",
		float64(st.ByteHits)/float64(st.Bytes)*100,
		float64(st.ByteHits)/(1<<20), float64(st.Bytes)/(1<<20))
	fmt.Printf("origin fetches:   %d full, %d validations (%d synchronous)\n",
		st.FullFetches, st.Validations, st.SyncValidations)
	fmt.Printf("evictions:        %d (capacity pressure from the 2 MB cache)\n", st.Evictions)
	fmt.Println("\nthe same design, driven by server-log traces instead of live traffic,")
	fmt.Println("produces Figures 11 and 12 — see `go run ./cmd/experiments fig11 fig12`")
}
