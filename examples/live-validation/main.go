// Live validation: run the paper's cluster validation against real
// protocol servers instead of in-process simulators. A DNS server (RFC
// 1035 over UDP) serves the world's in-addr.arpa zone; a whois server
// (RFC 3912 over TCP) serves the AS registry; validation and proxy-cluster
// grouping consume both over the network, exactly as the 1999 pipeline
// consumed nslookup and whois.
//
// The -loss, -jitter, and -seed flags stand both servers behind a
// deterministic fault injector, showing the resilient clients (retry,
// backoff, circuit breaker, graceful demotion) earning their keep:
//
//	go run ./examples/live-validation -loss 0.2 -jitter 50ms
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	netcluster "github.com/netaware/netcluster"
	"github.com/netaware/netcluster/internal/dnswire"
	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/placement"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/whois"
)

func main() {
	loss := flag.Float64("loss", 0, "packet/connection drop probability injected in front of both servers (0..1)")
	jitter := flag.Duration("jitter", 0, "max random delay injected on server responses")
	seed := flag.Int64("seed", 1, "fault-injection seed (same seed, same faults)")
	flag.Parse()
	faulty := *loss > 0 || *jitter > 0

	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 500
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
	table := netcluster.CollectAndMerge(sim)

	// Start the DNS server over the world's reverse zone, behind faults
	// when requested: requests are dropped, responses are jittered.
	dnsSrv := dnswire.NewServer(dnswire.NewReverseZone(world))
	var dnsInj *faultnet.Injector
	if faulty {
		dnsInj = faultnet.New(faultnet.Profile{
			Seed:     *seed,
			Inbound:  faultnet.Faults{Drop: *loss},
			Outbound: faultnet.Faults{Jitter: *jitter},
		})
		dnsSrv.Wrap = dnsInj.PacketConn
	}
	dnsAddr, err := dnsSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dnsSrv.Close()
	fmt.Printf("DNS server on %v (in-addr.arpa for %d networks)\n", dnsAddr, len(world.Networks))

	// Start the whois server over the AS registry, dropping connections
	// at accept time under the same loss rate.
	records := map[uint32]whois.Record{}
	for asn, info := range sim.ASRegistry() {
		records[asn] = whois.Record{ASN: asn, Name: info.Name, Country: info.Country}
	}
	whoisSrv := whois.NewServer(records)
	var whoisInj *faultnet.Injector
	if faulty {
		whoisInj = faultnet.New(faultnet.Profile{
			Seed:    *seed + 1,
			Inbound: faultnet.Faults{Drop: *loss},
		})
		whoisSrv.Wrap = whoisInj.Listener
	}
	whoisAddr, err := whoisSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer whoisSrv.Close()
	fmt.Printf("whois server on %v (%d AS records)\n", whoisAddr, len(records))
	if faulty {
		fmt.Printf("fault profile: %.0f%% loss, %v jitter, seed %d\n",
			*loss*100, *jitter, *seed)
	}
	fmt.Println()

	// Cluster a log and validate a sample — DNS queries go over UDP.
	accessLog, err := netcluster.GenerateLog(world, netcluster.NaganoProfile(0.01))
	if err != nil {
		log.Fatal(err)
	}
	res := netcluster.ClusterLog(accessLog, netcluster.NetworkAware{Table: table})
	sampled := netcluster.SampleClusters(res.Clusters, 0.10, 42)

	dnsClient := dnswire.NewClient(dnsAddr.String())
	if faulty {
		// Short per-attempt deadlines and a deep retry ladder keep the
		// run's wall clock bounded under loss.
		dnsClient.Timeout = 150 * time.Millisecond
		dnsClient.Retries = 5
		dnsClient.Backoff.BaseDelay = 5 * time.Millisecond
		dnsClient.Backoff.MaxDelay = 40 * time.Millisecond
	}
	resolver := dnswire.SuffixResolver{Client: dnsClient}
	report := validate.Nslookup(world, resolver, sampled)
	fmt.Printf("validated %d sampled clusters over live DNS: %.1f%% pass, %d/%d clients resolvable\n",
		report.SampledClusters, report.PassRate()*100,
		report.ReachableClients, report.SampledClients)
	fmt.Printf("(%d UDP queries served)\n", dnsSrv.QueryCount())
	if deg := report.Degradation; deg.Any() {
		fmt.Printf("degradation: %d retries, %d breaker opens, %d fast-fails, %d clients demoted\n",
			deg.Retries, deg.BreakerOpens, deg.FastFails, deg.DemotedClients)
	}
	if dnsInj != nil {
		st := dnsInj.Stats()
		fmt.Printf("injected DNS faults: %d drops, %d delays over %d ops\n", st.Drops, st.Delays, st.Ops)
	}
	fmt.Println()

	// Group busy-cluster proxies by origin AS + whois country — queries go
	// over TCP, cached client-side.
	plan, err := placement.PerCluster(res, 0.70, placement.ByRequests, int64(res.TotalRequests/200))
	if err != nil {
		log.Fatal(err)
	}
	wc := whois.NewClient(whoisAddr.String())
	if faulty {
		wc.Timeout = 300 * time.Millisecond
		wc.Retries = 6
		wc.Backoff.BaseDelay = 5 * time.Millisecond
	}
	groups := placement.GroupByASAndLocation(plan, table, wc.CountryOf)
	fmt.Printf("strategy-2 proxy clusters via live whois: %d groups from %d busy clusters\n",
		len(groups), len(plan.Assignments))
	for i, g := range groups {
		if i == 6 {
			break
		}
		fmt.Printf("  AS%-6d %-3s %2d clusters %3d proxies %8d requests\n",
			g.OriginAS, g.Country, len(g.Members), g.Proxies, g.Requests)
	}
	fmt.Printf("(%d whois queries over the wire, rest cached", wc.NetworkQueries())
	if wc.RetryCount() > 0 {
		fmt.Printf("; %d retries", wc.RetryCount())
	}
	if whoisInj != nil {
		fmt.Printf("; %d connections dropped by faultnet", whoisInj.Stats().Drops)
	}
	fmt.Println(")")
}
