// Live validation: run the paper's cluster validation against real
// protocol servers instead of in-process simulators. A DNS server (RFC
// 1035 over UDP) serves the world's in-addr.arpa zone; a whois server
// (RFC 3912 over TCP) serves the AS registry; validation and proxy-cluster
// grouping consume both over the network, exactly as the 1999 pipeline
// consumed nslookup and whois.
//
//	go run ./examples/live-validation
package main

import (
	"fmt"
	"log"

	netcluster "github.com/netaware/netcluster"
	"github.com/netaware/netcluster/internal/dnswire"
	"github.com/netaware/netcluster/internal/placement"
	"github.com/netaware/netcluster/internal/validate"
	"github.com/netaware/netcluster/internal/whois"
)

func main() {
	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 500
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}
	sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
	table := netcluster.CollectAndMerge(sim)

	// Start the DNS server over the world's reverse zone.
	dnsSrv := dnswire.NewServer(dnswire.NewReverseZone(world))
	dnsAddr, err := dnsSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dnsSrv.Close()
	fmt.Printf("DNS server on %v (in-addr.arpa for %d networks)\n", dnsAddr, len(world.Networks))

	// Start the whois server over the AS registry.
	records := map[uint32]whois.Record{}
	for asn, info := range sim.ASRegistry() {
		records[asn] = whois.Record{ASN: asn, Name: info.Name, Country: info.Country}
	}
	whoisSrv := whois.NewServer(records)
	whoisAddr, err := whoisSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer whoisSrv.Close()
	fmt.Printf("whois server on %v (%d AS records)\n\n", whoisAddr, len(records))

	// Cluster a log and validate a sample — DNS queries go over UDP.
	accessLog, err := netcluster.GenerateLog(world, netcluster.NaganoProfile(0.01))
	if err != nil {
		log.Fatal(err)
	}
	res := netcluster.ClusterLog(accessLog, netcluster.NetworkAware{Table: table})
	sampled := netcluster.SampleClusters(res.Clusters, 0.10, 42)

	resolver := dnswire.SuffixResolver{Client: dnswire.NewClient(dnsAddr.String())}
	report := validate.Nslookup(world, resolver, sampled)
	fmt.Printf("validated %d sampled clusters over live DNS: %.1f%% pass, %d/%d clients resolvable\n",
		report.SampledClusters, report.PassRate()*100,
		report.ReachableClients, report.SampledClients)
	fmt.Printf("(%d UDP queries served)\n\n", dnsSrv.QueryCount())

	// Group busy-cluster proxies by origin AS + whois country — queries go
	// over TCP, cached client-side.
	plan, err := placement.PerCluster(res, 0.70, placement.ByRequests, int64(res.TotalRequests/200))
	if err != nil {
		log.Fatal(err)
	}
	wc := whois.NewClient(whoisAddr.String())
	groups := placement.GroupByASAndLocation(plan, table, wc.CountryOf)
	fmt.Printf("strategy-2 proxy clusters via live whois: %d groups from %d busy clusters\n",
		len(groups), len(plan.Assignments))
	for i, g := range groups {
		if i == 6 {
			break
		}
		fmt.Printf("  AS%-6d %-3s %2d clusters %3d proxies %8d requests\n",
			g.OriginAS, g.Country, len(g.Members), g.Proxies, g.Requests)
	}
	fmt.Printf("(%d whois queries over the wire, rest cached)\n", wc.NetworkQueries())
}
