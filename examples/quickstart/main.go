// Quickstart: cluster the clients of a web server log with the
// network-aware method and compare against the simple /24 baseline.
//
// Everything here uses only the public netcluster API. A synthetic world
// stands in for the Internet: it provides both the BGP routing tables and
// the server log, exactly like the experiment pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	netcluster "github.com/netaware/netcluster"
)

func main() {
	// 1. A world: registries, ASes, networks, hosts. Deterministic in the
	// seed, so this program always prints the same numbers.
	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 600
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Routing tables: twelve BGP vantage views plus two registry dumps,
	// merged into one longest-prefix-match table.
	sim := netcluster.NewBGPSim(world, netcluster.DefaultBGPSimConfig())
	table := netcluster.CollectAndMerge(sim)

	// 3. A server log shaped like the paper's Nagano trace (Winter
	// Olympics 1998), at 2% of its population.
	logCfg := netcluster.NaganoProfile(0.02)
	weblog, err := netcluster.GenerateLog(world, logCfg)
	if err != nil {
		log.Fatal(err)
	}
	st := weblog.Stats()
	fmt.Printf("log: %d requests from %d clients over %d URLs\n",
		st.Requests, st.UniqueClients, st.UniqueURLs)

	// 4. Cluster with both methods.
	na := netcluster.ClusterLog(weblog, netcluster.NetworkAware{Table: table})
	si := netcluster.ClusterLog(weblog, netcluster.Simple{})

	fmt.Printf("network-aware: %d clusters, %.2f%% of clients clusterable\n",
		len(na.Clusters), na.Coverage()*100)
	fmt.Printf("simple (/24):  %d clusters (always 100%% coverage, often wrong)\n",
		len(si.Clusters))

	// 5. The busiest clusters are where a CDN would place proxies.
	fmt.Println("\nbusiest network-aware clusters:")
	for i, c := range na.ByRequestsDesc() {
		if i == 5 {
			break
		}
		fmt.Printf("  %-18v %5d clients %8d requests %6d URLs\n",
			c.Prefix, c.NumClients(), c.Requests, c.NumURLs())
	}

	// 6. The thresholding step: the few clusters that cover 70% of all
	// requests (Section 4.1.3 of the paper).
	th := na.ThresholdBusy(0.70)
	fmt.Printf("\n%d of %d clusters cover 70%% of requests (smallest issues %d)\n",
		len(th.Busy), len(na.Clusters), th.Threshold)
}
