// Spider and proxy detection: reproduce Section 4.1.2 on a Sun-style log
// with a planted spider and proxy, then verify the detector's findings
// against the generator's ground truth.
//
//	go run ./examples/spider-detection
package main

import (
	"fmt"
	"log"

	netcluster "github.com/netaware/netcluster"
)

func main() {
	wcfg := netcluster.DefaultWorldConfig()
	wcfg.NumASes = 500
	world, err := netcluster.GenerateWorld(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	// The Sun profile plants one spider (sweeping a slice of the URL
	// space at machine pace) and one proxy (echoing the site's diurnal
	// rhythm under many User-Agent strings).
	accessLog, err := netcluster.GenerateLog(world, netcluster.SunProfile(0.02))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d spider(s), %d prox(ies) planted\n",
		len(accessLog.Truth.Spiders), len(accessLog.Truth.Proxies))

	res := netcluster.ClusterLog(accessLog, netcluster.Simple{})
	findings := netcluster.DetectRobots(res, netcluster.DefaultDetectConfig())

	fmt.Printf("\n%-16s %-7s %-10s %9s %6s %6s %7s %5s\n",
		"client", "kind", "confidence", "requests", "URLs", "corr", "agents", "truth")
	for _, f := range findings {
		truth := "-"
		if accessLog.Truth.Spiders[f.Client] {
			truth = "yes"
		}
		if accessLog.Truth.Proxies[f.Client] {
			truth = "yes"
		}
		fmt.Printf("%-16v %-7v %-10v %9d %6d %6.2f %7d %5s\n",
			f.Client, f.Kind, f.Confidence, f.Requests, f.URLs, f.Correlation, f.Agents, truth)
	}

	// Why it works: compare the arrival-pattern evidence the detector used.
	fmt.Println("\ninterpretation:")
	fmt.Println(" - spiders run on machine schedules: near-zero correlation with the site's day/night cycle")
	fmt.Println(" - proxies aggregate people: high correlation, many distinct User-Agent strings")
	fmt.Println(" - heavy single users look like proxies but keep one agent string: reported as 'suspected'")

	// Cleaning the log for a caching study removes confirmed findings.
	confirmed := map[netcluster.Addr]bool{}
	for _, f := range findings {
		if f.Confidence == netcluster.ConfidenceConfirmed {
			confirmed[f.Client] = true
		}
	}
	clean := netcluster.Eliminate(accessLog, confirmed)
	fmt.Printf("\neliminated %d confirmed clients: %d requests -> %d\n",
		len(confirmed), len(accessLog.Requests), len(clean.Requests))
}
