package netcluster_test

// End-to-end firehose test: a real loadgen process replays a seeded
// synthetic workload against a real clusterd process, and the busy-
// cluster accounting that every batch feeds must agree with what the
// generator sent — totals exact, top-K consistent, sketch gauges
// exported.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

type loadgenSummary struct {
	Sent        int     `json:"sent"`
	Clustered   int     `json:"clustered"`
	Unclustered int     `json:"unclustered"`
	Batches     int     `json:"batches"`
	Rejected    int     `json:"rejected"`
	Failed      int     `json:"failed"`
	IntendedP99 int64   `json:"intended_p99_ns"`
	ServiceP99  int64   `json:"service_p99_ns"`
	MaxDrift    int64   `json:"max_drift_ns"`
	Achieved    float64 `json:"achieved_rate"`
}

type busyReport struct {
	K           int    `json:"k"`
	Requests    uint64 `json:"requests"`
	Unclustered uint64 `json:"unclustered"`
	Occupancy   int    `json:"occupancy"`
	Guaranteed  bool   `json:"guaranteed_top_k"`
	Clusters    []struct {
		Prefix   string `json:"prefix"`
		Requests uint64 `json:"requests"`
		Exact    bool   `json:"exact"`
	} `json:"clusters"`
}

func TestFirehoseLoadgenAgainstClusterd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test builds and runs binaries")
	}
	tools := buildTools(t)

	cmd := exec.Command(filepath.Join(tools, "clusterd"),
		"-addr", "127.0.0.1:0",
		"-ases", "150",
		"-seed", "3",
		"-churn-every", "0", // a frozen table makes the accounting exactly checkable
		"-busy-k", "10",
		"-busy-capacity", "4096",
		"-max-inflight", "64") // headroom over loadgen's concurrency: slot release lags the response
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "serving on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("serving on http://"):])[0]
			break
		}
	}
	if base == "" {
		t.Fatal("clusterd never announced its address")
	}
	go func() {
		for sc.Scan() {
		}
	}()

	// Replay 20k addresses of the Nagano profile over the same world
	// seed the server booted with, fast and with ample concurrency.
	const want = 20000
	lg := exec.Command(filepath.Join(tools, "loadgen"),
		"-target", base,
		"-rate", "100000",
		"-batch", "250",
		"-requests", "20000",
		"-concurrency", "32",
		"-profile", "nagano",
		"-scale", "0.01",
		"-seed", "3",
		"-ases", "150",
		"-json")
	out, err := lg.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			t.Fatalf("loadgen failed: %v\nstderr: %s", err, ee.Stderr)
		}
		t.Fatal(err)
	}
	var sum loadgenSummary
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("loadgen summary not JSON: %v\n%s", err, out)
	}
	if sum.Sent != want || sum.Failed != 0 || sum.Rejected != 0 {
		t.Fatalf("loadgen summary off: %+v", sum)
	}
	if sum.Clustered+sum.Unclustered != want {
		t.Fatalf("loadgen accounted %d of %d addresses", sum.Clustered+sum.Unclustered, want)
	}
	if sum.Clustered == 0 {
		t.Fatal("nothing clustered: loadgen and clusterd worlds diverged")
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		return body
	}

	// /busy must agree with the loadgen's client-side accounting.
	var busy busyReport
	if err := json.Unmarshal(get("/busy"), &busy); err != nil {
		t.Fatal(err)
	}
	if busy.Requests != want || busy.Unclustered != uint64(sum.Unclustered) {
		t.Fatalf("/busy saw %d requests (%d unclustered), loadgen sent %d (%d unclustered)",
			busy.Requests, busy.Unclustered, want, sum.Unclustered)
	}
	if len(busy.Clusters) == 0 || !busy.Guaranteed {
		t.Fatalf("/busy top-K not guaranteed: %+v", busy)
	}
	var topSum uint64
	for i, c := range busy.Clusters {
		if !c.Exact {
			t.Fatalf("busy cluster %d (%s) not exact with 4096 capacity", i, c.Prefix)
		}
		if i > 0 && c.Requests > busy.Clusters[i-1].Requests {
			t.Fatalf("busy clusters not sorted: %d after %d", c.Requests, busy.Clusters[i-1].Requests)
		}
		topSum += c.Requests
	}
	if topSum > uint64(sum.Clustered) {
		t.Fatalf("top-%d requests sum %d exceeds clustered total %d", busy.K, topSum, sum.Clustered)
	}

	// ?k= override and validation.
	var busy3 busyReport
	if err := json.Unmarshal(get("/busy?k=3"), &busy3); err != nil {
		t.Fatal(err)
	}
	if len(busy3.Clusters) != 3 {
		t.Fatalf("/busy?k=3 returned %d clusters", len(busy3.Clusters))
	}
	if resp, err := http.Get(base + "/busy?k=zero"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/busy?k=zero answered %d, want 400", resp.StatusCode)
		}
	}

	// The sketch observability series made it to the exporter, and the
	// serving path actually feeds them: the records counter must equal
	// the replayed total, not merely exist (a presence check once hid a
	// counter stuck at zero).
	metrics := string(get("/metrics"))
	for _, series := range []string{
		"netcluster_cluster_bounded_records_total",
		"netcluster_cluster_bounded_occupancy",
		"netcluster_cluster_bounded_error_bound",
		"netcluster_cluster_bounded_footprint_bytes",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("metrics exposition missing %s:\n%.500s", series, metrics)
		}
	}
	wantRecords := fmt.Sprintf("netcluster_cluster_bounded_records_total %d", sum.Sent)
	if !strings.Contains(metrics, wantRecords) {
		t.Fatalf("metrics exposition lacks %q — the serving path is not flushing the records counter", wantRecords)
	}
}
