module github.com/netaware/netcluster

go 1.22
