// Package appconf is the config hot-reload substrate for the long-running
// commands: a polling file watcher (no inotify dependency — a 1–2 s
// mtime/content poll is plenty for operator-edited files and works on
// every platform) that applies validated configuration atomically via
// the same generation/RCU pattern internal/churn proved for prefix
// tables.
//
// The invariants mirror the table-swap ones:
//
//   - Readers are lock-free: Current() is one atomic pointer load, so
//     request handlers consult live limits at zero cost.
//   - Validation happens before the swap: a config that fails to parse
//     or validate is rejected, counted on config.rejected, remembered
//     for /debug/config and readiness — and the previous generation
//     keeps serving untouched.
//   - Every accepted swap increments a generation number; /debug/config
//     (Handler) shows the live generation, its source and load time, so
//     an operator can verify a reload actually landed.
//
// Reloads trigger on the poll, on SIGHUP (the caller wires the signal to
// Reload), or programmatically. A missing file at startup is an error
// only if the caller made it one: Watch parses the file once before
// returning, so a process never starts against an invalid config.
package appconf

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

var (
	mReloads    = obsv.C("config.reloads")  // accepted swaps (initial load included)
	mRejected   = obsv.C("config.rejected") // parse/validation failures that kept the old generation
	mPollErrs   = obsv.C("config.poll_errors")
	gGeneration = obsv.G("config.generation")
)

// Loaded is one accepted configuration generation.
type Loaded[T any] struct {
	// Generation counts accepted loads, starting at 1.
	Generation uint64
	// Path is the watched file.
	Path string
	// LoadedAt is when this generation was swapped in.
	LoadedAt time.Time
	// Config is the validated configuration.
	Config T
}

// Watcher hot-reloads one file into a validated config of type T.
type Watcher[T any] struct {
	path     string
	interval time.Duration
	parse    func(data []byte) (T, error)
	onSwap   func(old, new *Loaded[T])
	logf     func(format string, args ...any)

	cur     atomic.Pointer[Loaded[T]]
	lastErr atomic.Pointer[loadError]

	mu       sync.Mutex // serializes load attempts
	lastHash [sha256.Size]byte

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

type loadError struct {
	When time.Time
	Err  error
}

// Options tunes a watcher.
type Options[T any] struct {
	// PollInterval between file checks (default 2 s).
	PollInterval time.Duration
	// OnSwap runs after each accepted swap (old is nil on the first
	// load). It runs on the watcher goroutine — keep it quick.
	OnSwap func(old, new *Loaded[T])
	// Logf receives reload outcomes (nil = discarded).
	Logf func(format string, args ...any)
}

// Watch parses path once (failing fast on an invalid initial config,
// so a process never starts on defaults it was not asked for) and then
// polls it for changes. parse must validate: anything it rejects never
// becomes current.
func Watch[T any](path string, parse func([]byte) (T, error), opts Options[T]) (*Watcher[T], error) {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	w := &Watcher[T]{
		path:     path,
		interval: opts.PollInterval,
		parse:    parse,
		onSwap:   opts.OnSwap,
		logf:     opts.Logf,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if err := w.load(true); err != nil {
		return nil, err
	}
	go w.loop()
	return w, nil
}

// Current returns the live generation — one atomic load, safe on any
// request path.
func (w *Watcher[T]) Current() *Loaded[T] { return w.cur.Load() }

// Generation returns the live generation number (0 before the first
// accepted load — reachable only on the initial-load error path).
func (w *Watcher[T]) Generation() uint64 {
	if cur := w.Current(); cur != nil {
		return cur.Generation
	}
	return 0
}

// LastError returns the most recent rejected reload, or nil if the last
// load attempt succeeded. Readiness uses it: a config edit that fails
// validation flips readiness false until the file is fixed.
func (w *Watcher[T]) LastError() error {
	if le := w.lastErr.Load(); le != nil {
		return le.Err
	}
	return nil
}

// Healthy reports whether the last load attempt was accepted.
func (w *Watcher[T]) Healthy() bool { return w.lastErr.Load() == nil }

// Reload forces a load attempt now (the SIGHUP path). The operator
// asked explicitly, so the content-hash short-circuit is skipped: even
// unchanged bytes are re-parsed and swapped in as a new generation. It
// reports whether a swap happened and the validation error if the file
// was rejected.
func (w *Watcher[T]) Reload() (swapped bool, err error) {
	before := w.Generation()
	err = w.load(true)
	return w.Generation() > before, err
}

// load reads, parses, validates and (on change) swaps. force skips the
// content-hash short-circuit.
func (w *Watcher[T]) load(force bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		err = fmt.Errorf("appconf: reading %s: %w", w.path, err)
		w.reject(err)
		return err
	}
	hash := sha256.Sum256(data)
	if !force && hash == w.lastHash {
		return nil
	}
	cfg, err := w.parse(data)
	if err != nil {
		err = fmt.Errorf("appconf: %s: %w", w.path, err)
		w.reject(err)
		return err
	}
	w.lastHash = hash
	old := w.cur.Load()
	next := &Loaded[T]{Path: w.path, LoadedAt: time.Now(), Config: cfg, Generation: 1}
	if old != nil {
		next.Generation = old.Generation + 1
	}
	w.cur.Store(next)
	w.lastErr.Store(nil)
	mReloads.Inc()
	gGeneration.Set(int64(next.Generation))
	w.logf("appconf: %s: generation %d live", w.path, next.Generation)
	if w.onSwap != nil {
		w.onSwap(old, next)
	}
	return nil
}

// reject records a failed load; the previous generation keeps serving.
func (w *Watcher[T]) reject(err error) {
	w.lastErr.Store(&loadError{When: time.Now(), Err: err})
	mRejected.Inc()
	w.logf("appconf: rejected: %v (generation %d keeps serving)", err, w.Generation())
}

func (w *Watcher[T]) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			// Unforced: unchanged bytes short-circuit on the hash.
			if err := w.load(false); err != nil && !os.IsNotExist(err) {
				mPollErrs.Inc()
			}
		}
	}
}

// Close stops the poll loop. The current generation stays readable.
func (w *Watcher[T]) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Handler serves the live generation as JSON — the /debug/config
// endpoint. The body shows the generation number, source path, load
// time, the rendered config, and the last rejected reload (if any), so
// "did my edit land?" is one curl.
func (w *Watcher[T]) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		cur := w.Current()
		body := struct {
			Generation  uint64     `json:"generation"`
			Path        string     `json:"path"`
			LoadedAt    time.Time  `json:"loaded_at"`
			Config      any        `json:"config"`
			LastError   string     `json:"last_error,omitempty"`
			LastErrorAt *time.Time `json:"last_error_at,omitempty"`
		}{
			Generation: cur.Generation,
			Path:       cur.Path,
			LoadedAt:   cur.LoadedAt,
			Config:     cur.Config,
		}
		if le := w.lastErr.Load(); le != nil {
			body.LastError = le.Err.Error()
			t := le.When
			body.LastErrorAt = &t
		}
		rw.Header().Set("Content-Type", "application/json")
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Write(buf.Bytes())
	})
}

// Duration is a time.Duration that JSON-decodes from either a Go
// duration string ("2s", "150ms") or a bare number of nanoseconds, and
// encodes as the string form — the shape operator config files want.
type Duration time.Duration

// UnmarshalJSON accepts "2s"-style strings and nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("appconf: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("appconf: bad duration %s", b)
	}
	*d = Duration(ns)
	return nil
}

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }
