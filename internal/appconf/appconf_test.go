package appconf

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type tuning struct {
	MaxInflight int      `json:"max_inflight"`
	Every       Duration `json:"every"`
}

func parseTuning(data []byte) (tuning, error) {
	var t tuning
	if err := json.Unmarshal(data, &t); err != nil {
		return t, err
	}
	if t.MaxInflight <= 0 {
		return t, errors.New("max_inflight must be positive")
	}
	return t, nil
}

func writeConfig(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWatchInitialLoadAndPollPickup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 4, "every": "2s"}`)

	var swaps atomic.Int32
	w, err := Watch(path, parseTuning, Options[tuning]{
		PollInterval: 5 * time.Millisecond,
		OnSwap:       func(old, new *Loaded[tuning]) { swaps.Add(1) },
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	cur := w.Current()
	if cur.Generation != 1 || cur.Config.MaxInflight != 4 || cur.Config.Every.Std() != 2*time.Second {
		t.Fatalf("initial load = %+v", cur)
	}
	if !w.Healthy() || w.LastError() != nil {
		t.Fatal("fresh watcher not healthy")
	}

	writeConfig(t, path, `{"max_inflight": 9, "every": "50ms"}`)
	deadline := time.Now().Add(2 * time.Second)
	for w.Generation() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	cur = w.Current()
	if cur.Generation != 2 || cur.Config.MaxInflight != 9 {
		t.Fatalf("poll never picked up the edit: %+v", cur)
	}
	if n := swaps.Load(); n < 2 {
		t.Fatalf("OnSwap ran %d times, want >= 2", n)
	}
}

func TestWatchRejectsInvalidInitialConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 0}`)
	if _, err := Watch(path, parseTuning, Options[tuning]{}); err == nil {
		t.Fatal("invalid initial config accepted")
	}
	if _, err := Watch(filepath.Join(t.TempDir(), "missing.json"), parseTuning, Options[tuning]{}); err == nil {
		t.Fatal("missing initial config accepted")
	}
}

func TestWatchKeepsOldGenerationOnInvalidEdit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 4}`)
	w, err := Watch(path, parseTuning, Options[tuning]{PollInterval: time.Hour, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	writeConfig(t, path, `{"max_inflight": -1}`)
	swapped, rerr := w.Reload()
	if swapped || rerr == nil {
		t.Fatalf("invalid edit: swapped=%v err=%v", swapped, rerr)
	}
	if w.Healthy() || w.LastError() == nil {
		t.Fatal("rejection not remembered")
	}
	cur := w.Current()
	if cur.Generation != 1 || cur.Config.MaxInflight != 4 {
		t.Fatalf("old generation disturbed: %+v", cur)
	}

	// Fixing the file restores health and advances the generation.
	writeConfig(t, path, `{"max_inflight": 7}`)
	swapped, rerr = w.Reload()
	if !swapped || rerr != nil {
		t.Fatalf("fixed edit: swapped=%v err=%v", swapped, rerr)
	}
	if !w.Healthy() || w.Generation() != 2 {
		t.Fatalf("recovery: healthy=%v generation=%d", w.Healthy(), w.Generation())
	}
}

func TestReloadUnchangedContentIsNoSwap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 4}`)
	w, err := Watch(path, parseTuning, Options[tuning]{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Forced reload of identical bytes: accepted, new generation (the
	// SIGHUP contract — the operator asked, the watcher obliges).
	if swapped, err := w.Reload(); err != nil || !swapped {
		t.Fatalf("forced reload: swapped=%v err=%v", swapped, err)
	}
}

func TestHandlerRendersGenerationAndErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 4}`)
	w, err := Watch(path, parseTuning, Options[tuning]{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/config", nil))
	var body struct {
		Generation uint64 `json:"generation"`
		Path       string `json:"path"`
		Config     tuning `json:"config"`
		LastError  string `json:"last_error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Generation != 1 || body.Path != path || body.Config.MaxInflight != 4 || body.LastError != "" {
		t.Fatalf("handler body = %+v", body)
	}

	writeConfig(t, path, `not json`)
	w.Reload()
	rec = httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/config", nil))
	if !strings.Contains(rec.Body.String(), "last_error") {
		t.Fatalf("rejected reload missing from handler: %s", rec.Body.String())
	}
}

func TestDurationJSON(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{`"2s"`, 2 * time.Second, true},
		{`"150ms"`, 150 * time.Millisecond, true},
		{`1000000`, time.Millisecond, true},
		{`"soon"`, 0, false},
		{`true`, 0, false},
	}
	for _, c := range cases {
		var d Duration
		err := json.Unmarshal([]byte(c.in), &d)
		if (err == nil) != c.ok || (c.ok && d.Std() != c.want) {
			t.Errorf("Unmarshal(%s) = %v, %v; want %v ok=%v", c.in, d.Std(), err, c.want, c.ok)
		}
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Errorf("Marshal = %s, %v", out, err)
	}
}

func TestWatcherConcurrentReadersDuringSwap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conf.json")
	writeConfig(t, path, `{"max_inflight": 1}`)
	w, err := Watch(path, parseTuning, Options[tuning]{PollInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 2; i <= 20; i++ {
			writeConfig(t, path, fmt.Sprintf(`{"max_inflight": %d}`, i))
			w.Reload()
		}
	}()
	for {
		select {
		case <-done:
			if got := w.Current().Config.MaxInflight; got != 20 {
				t.Fatalf("final config = %d, want 20", got)
			}
			return
		default:
			cur := w.Current()
			if cur.Config.MaxInflight < 1 || cur.Config.MaxInflight > 20 {
				t.Fatalf("reader saw torn config: %+v", cur)
			}
		}
	}
}
