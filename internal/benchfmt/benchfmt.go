// Package benchfmt is the shared model for committed benchmark numbers:
// the JSON schema of BENCH_clustering.json, the parser for `go test
// -bench` text output, and atomic file IO. cmd/benchjson records results
// with it; cmd/benchdiff compares two recordings to gate performance
// regressions in CI.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Benchmark is one recorded `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is a full benchmark recording with its machine context.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the recorded benchmark with exactly this name.
func (o *Output) Find(name string) (Benchmark, bool) {
	for _, b := range o.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ParseLine dissects one result line:
//
//	BenchmarkName[-P]  N  v1 unit1  v2 unit2 ...
func ParseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp, seenNs = v, true
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, seenNs
}

// ContextLine absorbs a goos/goarch/cpu/pkg header line into o, reporting
// whether the line was one.
func (o *Output) ContextLine(line string) bool {
	switch {
	case strings.HasPrefix(line, "goos: "):
		o.Goos = strings.TrimPrefix(line, "goos: ")
	case strings.HasPrefix(line, "goarch: "):
		o.Goarch = strings.TrimPrefix(line, "goarch: ")
	case strings.HasPrefix(line, "cpu: "):
		o.CPU = strings.TrimPrefix(line, "cpu: ")
	case strings.HasPrefix(line, "pkg: "):
		o.Pkg = strings.TrimPrefix(line, "pkg: ")
	default:
		return false
	}
	return true
}

// ReadFile loads a recording written by WriteFile.
func ReadFile(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var o Output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing %s: %w", path, err)
	}
	return &o, nil
}

// WriteFile writes the recording as indented JSON, atomically (temp file
// + rename): a crash or a failed benchmark run mid-write can never leave
// a truncated recording behind.
func (o *Output) WriteFile(path string) error {
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*")
	if err != nil {
		return fmt.Errorf("benchfmt: writing %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("benchfmt: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("benchfmt: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("benchfmt: writing %s: %w", path, err)
	}
	return nil
}
