package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := ParseLine("BenchmarkLongestPrefixMatchCompiled \t 9185babc\t")
	if ok {
		t.Fatalf("garbage accepted: %+v", b)
	}
	b, ok = ParseLine("BenchmarkClusterLogParallel/workers-4-8 \t 50\t 22915486 ns/op\t 14400 requests/op\t 9472109 B/op\t 11288 allocs/op")
	if !ok {
		t.Fatal("valid line rejected")
	}
	if b.Name != "BenchmarkClusterLogParallel/workers-4-8" || b.Iterations != 50 {
		t.Fatalf("name/iters: %+v", b)
	}
	if b.NsPerOp != 22915486 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 9472109 || b.AllocsPerOp == nil || *b.AllocsPerOp != 11288 {
		t.Fatalf("benchmem fields: %+v", b)
	}
	if b.Metrics["requests/op"] != 14400 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
	if _, ok := ParseLine("ok  \tgithub.com/netaware/netcluster\t0.4s"); ok {
		t.Fatal("non-benchmark line accepted")
	}
	if _, ok := ParseLine("BenchmarkNoResult"); ok {
		t.Fatal("name-only line accepted")
	}
	// A line without ns/op (pure custom metrics) is not a result line the
	// file format can anchor on.
	if _, ok := ParseLine("BenchmarkX 10 5.0 widgets/op"); ok {
		t.Fatal("line without ns/op accepted")
	}
}

func TestContextLine(t *testing.T) {
	var o Output
	for _, l := range []string{"goos: linux", "goarch: amd64", "cpu: Xeon", "pkg: example/p"} {
		if !o.ContextLine(l) {
			t.Errorf("context line %q rejected", l)
		}
	}
	if o.ContextLine("BenchmarkFoo 1 5 ns/op") {
		t.Error("benchmark line absorbed as context")
	}
	if o.Goos != "linux" || o.Goarch != "amd64" || o.CPU != "Xeon" || o.Pkg != "example/p" {
		t.Errorf("context = %+v", o)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	allocs := 12.0
	o := &Output{
		Goos: "linux",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", Iterations: 100, NsPerOp: 42.5, AllocsPerOp: &allocs},
		},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := o.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := got.Find("BenchmarkA")
	if !ok || b.NsPerOp != 42.5 || b.AllocsPerOp == nil || *b.AllocsPerOp != 12 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, ok := got.Find("BenchmarkMissing"); ok {
		t.Fatal("Find invented a benchmark")
	}
	// Atomicity: no temp droppings next to the output.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the output file, found %d entries", len(entries))
	}
}
