package bgp

import (
	"context"
	"sync"
	"unsafe"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/radix"
)

// Compile-time observability: building the FIB-style snapshot is the
// operation a production deployment repeats on every table refresh, so
// its wall time, allocation volume and resulting footprint are tracked.
// The per-lookup hot path (Compiled.Lookup) carries no instrumentation —
// counting and depth sampling happen one layer up in internal/cluster,
// where the cost amortizes per distinct client (see obsv's overhead
// budget).
var (
	compiledPrefixes = obsv.G("bgp.compiled.prefixes")
	compiledNodes    = obsv.G("bgp.compiled.nodes")
)

// Compiled is an immutable, read-optimized snapshot of a Merged table. The
// primary/secondary precedence of Section 3.1.1 — longest match among
// BGP-derived prefixes first, network-dump prefixes only as a fallback —
// is folded into a single stride-8 multibit structure at compile time, so
// one flat-array walk replaces the two pointer-chasing tree walks of
// Merged.Lookup. Compiled is safe for unlimited concurrent readers with no
// locks; it does not observe later Add calls on the source table, so
// recompile after merging new snapshots (routers rebuild expanded FIBs on
// change for the same reason).
type Compiled struct {
	frozen *radix.Frozen[compiledValue]
	prov   map[netutil.Prefix]*Provenance
	kinds  map[netutil.Prefix]SourceKind
	// inc is set on generations published by an Incremental compiler;
	// Provenance and KindOf then read the compiler's live store (under
	// its RWMutex) instead of per-generation maps. The match structure
	// (frozen) and the class counts are still immutable per generation.
	inc *Incremental
	// snap is set on tables loaded from a snapshot file; Provenance and
	// KindOf then binary-search the (possibly memory-mapped) provenance
	// sidecar instead of maps — see tablefile.go.
	snap                     *snapTable
	numPrimary, numSecondary int
}

// compiledValue is the per-entry payload of the match structure: just the
// winning source class. Provenance is deliberately not stored per row —
// exact-prefix provenance queries go through the per-generation maps, the
// incremental store, or a snapshot's lazy sidecar — which keeps the value
// array one byte of information per row and makes it serializable.
type compiledValue struct {
	kind SourceKind
}

// Precedence ranks: any primary (BGP) prefix must beat any secondary
// (network dump) prefix, and within a class longer prefixes win — exactly
// the order Merged.Lookup establishes with its two sequential walks. The
// rank (classBias + bits) collapses that two-key comparison into one
// integer, so the multibit slot rule and the lookup walk need no
// class-specific branches.
const compiledPrimaryBias = 64

// Compile builds the read-optimized form of the table. The default route
// 0/0 is excluded from the match structure — Merged.Lookup already treats
// it as unclusterable in either class — but retains its provenance entry.
func (m *Merged) Compile() *Compiled {
	return m.CompileCtx(context.Background())
}

// CompileCtx is Compile under a trace context: the compile records a
// "bgp.compile" span (with prefix and node counts as attributes) into
// the flight recorder, parented to whatever span ctx carries.
func (m *Merged) CompileCtx(ctx context.Context) *Compiled {
	_, sp := obsv.StartTraceSpan(ctx, "bgp.compile")
	c := &Compiled{
		prov:         make(map[netutil.Prefix]*Provenance, m.Len()),
		kinds:        make(map[netutil.Prefix]SourceKind, m.Len()),
		numPrimary:   m.primary.Len(),
		numSecondary: m.secondary.Len(),
	}
	mb := radix.NewMultibit[compiledValue]()
	m.primary.Walk(func(p netutil.Prefix, prov *Provenance) bool {
		c.prov[p] = prov
		c.kinds[p] = SourceBGP
		if p.Bits() > 0 {
			mb.InsertRanked(p, compiledValue{kind: SourceBGP}, compiledPrimaryBias+p.Bits())
		}
		return true
	})
	m.secondary.Walk(func(p netutil.Prefix, prov *Provenance) bool {
		if _, dup := c.prov[p]; !dup {
			c.prov[p] = prov
			c.kinds[p] = SourceNetworkDump
		}
		if p.Bits() > 0 {
			mb.InsertRanked(p, compiledValue{kind: SourceNetworkDump}, p.Bits())
		}
		return true
	})
	c.frozen = mb.Freeze()
	sp.SetAttrInt("prefixes", int64(c.Len()))
	sp.SetAttrInt("nodes", int64(c.frozen.NumNodes()))
	sp.End()
	compiledPrefixes.Set(int64(c.Len()))
	compiledNodes.Set(int64(c.frozen.NumNodes()))
	return c
}

// Lookup performs the clustering lookup for addr with the same semantics
// as Merged.Lookup — longest BGP match first, network-dump fallback, the
// bare default route treated as unclusterable — in a single table walk.
func (c *Compiled) Lookup(addr netutil.Addr) (Match, bool) {
	p, v, ok := c.frozen.Lookup(addr)
	if !ok {
		return Match{}, false
	}
	return Match{Prefix: p, Kind: v.kind}, true
}

// batchState holds a reusable entry-row buffer; a sync.Pool keeps it
// warm across LookupBatch calls so the caller-reuse path (dst with
// sufficient capacity) allocates nothing in steady state, even with
// many concurrent batch callers.
type batchState struct {
	rows []int32
}

var batchPool = sync.Pool{New: func() any { return new(batchState) }}

// LookupBatch is Lookup over a whole probe set: dst[i] is the match for
// addrs[i], with a zero Match (dst[i].Prefix.IsZero()) marking an
// unclusterable address — the zero value is unambiguous because the bare
// default route is never part of the match structure. Results are
// exactly what per-address Lookup returns; the win is throughput, not
// semantics: the radix kernel's packed-slot walk strips the per-level
// instruction overhead of the sequential loop (see
// radix.Frozen.LookupBatch). dst is reused when its capacity suffices,
// making steady-state batches allocation-free.
func (c *Compiled) LookupBatch(addrs []netutil.Addr, dst []Match) []Match {
	n := len(addrs)
	if cap(dst) < n {
		dst = make([]Match, n)
	} else {
		dst = dst[:n]
	}
	if n == 0 {
		return dst
	}
	st := batchPool.Get().(*batchState)
	st.rows = c.frozen.LookupBatch(addrs, st.rows)
	// Resolve rows against the raw entry tables directly: a generic
	// method call per row would cost more than the resolution itself,
	// and the loads skip bounds checks because the kernel only emits
	// rows in [-1, len(prefixes)) — see resolveRows.
	_, _, prefixes, _, values, _ := c.frozen.Raw()
	resolveRows(st.rows, prefixes, values, dst)
	batchPool.Put(st)
	return dst
}

// resolveRows turns kernel entry rows into Matches. Row values come
// from radix.Frozen.LookupBatch, whose construction invariants
// (NewFrozen/Freeze validation) bound every non-negative row below
// len(prefixes) == len(values); that is what justifies the unchecked
// loads. A miss (-1) yields the zero Match.
func resolveRows(rows []int32, prefixes []netutil.Prefix, values []compiledValue, dst []Match) {
	if len(prefixes) == 0 {
		for i := range rows {
			dst[i] = Match{}
		}
		return
	}
	pp := unsafe.Pointer(&prefixes[0])
	vv := unsafe.Pointer(&values[0])
	for i, row := range rows {
		var m Match
		if row >= 0 {
			m.Prefix = *(*netutil.Prefix)(unsafe.Add(pp, uintptr(uint32(row))*unsafe.Sizeof(netutil.Prefix{})))
			m.Kind = (*(*compiledValue)(unsafe.Add(vv, uintptr(uint32(row))*unsafe.Sizeof(compiledValue{})))).kind
		}
		dst[i] = m
	}
}

// LookupDepth is Lookup plus the number of stride-8 levels the walk
// descended (1–4). The clustering layer samples it to feed the
// "bgp.lookup.depth" histogram; Lookup itself stays uninstrumented.
func (c *Compiled) LookupDepth(addr netutil.Addr) (Match, int, bool) {
	p, v, depth, ok := c.frozen.LookupDepth(addr)
	if !ok {
		return Match{}, depth, false
	}
	return Match{Prefix: p, Kind: v.kind}, depth, true
}

// Provenance returns the recorded provenance for exactly p, matching
// Merged.Provenance (primary class shadows secondary for a prefix present
// in both).
func (c *Compiled) Provenance(p netutil.Prefix) (*Provenance, bool) {
	if c.inc != nil {
		return c.inc.provenance(p)
	}
	if c.snap != nil {
		return c.snap.provenance(p)
	}
	prov, ok := c.prov[p]
	return prov, ok
}

// KindOf reports which source class prefix p was compiled from (primary
// shadows secondary, as in Provenance).
func (c *Compiled) KindOf(p netutil.Prefix) (SourceKind, bool) {
	if c.inc != nil {
		return c.inc.kindOf(p)
	}
	if c.snap != nil {
		return c.snap.kindOf(p)
	}
	k, ok := c.kinds[p]
	return k, ok
}

// Len returns the number of unique prefixes per class summed, mirroring
// Merged.Len at compile time.
func (c *Compiled) Len() int { return c.numPrimary + c.numSecondary }

// NumPrimary returns the number of BGP-derived prefixes at compile time.
func (c *Compiled) NumPrimary() int { return c.numPrimary }

// NumSecondary returns the number of network-dump prefixes at compile time.
func (c *Compiled) NumSecondary() int { return c.numSecondary }

// NumNodes exposes the flattened node count, the compiled table's memory
// footprint knob (each node is 2 KiB of slot arrays).
func (c *Compiled) NumNodes() int { return c.frozen.NumNodes() }
