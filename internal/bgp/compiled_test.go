package bgp

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

func TestCompiledMatchesMergedTargeted(t *testing.T) {
	m := NewMerged()
	m.Add(snap("ARIN", SourceNetworkDump, "12.0.0.0/8", "24.0.0.0/8", "10.1.0.0/16"))
	m.Add(snap("AADS", SourceBGP, "12.65.128.0/19", "10.0.0.0/8"))
	m.Add(snap("MAE", SourceBGP, "12.65.128.0/19", "24.48.2.0/23"))
	c := m.Compile()

	for _, ip := range []string{
		"12.65.147.94", // BGP /19
		"12.1.2.3",     // dump /8 fallback
		"10.1.2.3",     // primary /8 beats longer secondary /16
		"24.48.3.87",   // BGP /23 inside dump /8
		"24.99.1.1",    // dump /8
		"99.99.99.99",  // unclusterable
	} {
		a := netutil.MustParseAddr(ip)
		mm, mok := m.Lookup(a)
		cm, cok := c.Lookup(a)
		if mok != cok || mm != cm {
			t.Errorf("Lookup(%s): merged (%+v,%v) vs compiled (%+v,%v)", ip, mm, mok, cm, cok)
		}
	}
	if c.Len() != m.Len() || c.NumPrimary() != m.NumPrimary() || c.NumSecondary() != m.NumSecondary() {
		t.Errorf("sizes: compiled %d/%d/%d vs merged %d/%d/%d",
			c.Len(), c.NumPrimary(), c.NumSecondary(), m.Len(), m.NumPrimary(), m.NumSecondary())
	}
	if c.NumNodes() == 0 {
		t.Error("NumNodes = 0")
	}
}

func TestCompiledDefaultRouteUnclusterable(t *testing.T) {
	// 0/0 in either class covers every address but must never cluster one,
	// in both the tree walk and the compiled walk.
	m := NewMerged()
	m.Add(snap("B", SourceBGP, "0.0.0.0/0", "10.0.0.0/8"))
	m.Add(snap("R", SourceNetworkDump, "0.0.0.0/0", "20.0.0.0/8"))
	c := m.Compile()
	for _, tc := range []struct {
		ip   string
		want bool
	}{
		{"10.1.2.3", true},
		{"20.1.2.3", true},
		{"99.99.99.99", false}, // only 0/0 covers it
	} {
		a := netutil.MustParseAddr(tc.ip)
		mm, mok := m.Lookup(a)
		cm, cok := c.Lookup(a)
		if mok != cok || mm != cm {
			t.Errorf("Lookup(%s): merged (%+v,%v) vs compiled (%+v,%v)", tc.ip, mm, mok, cm, cok)
		}
		if cok != tc.want {
			t.Errorf("Lookup(%s) ok = %v, want %v", tc.ip, cok, tc.want)
		}
	}
	// The default route still carries provenance for reporting.
	if _, ok := c.Provenance(netutil.MustParsePrefix("0.0.0.0/0")); !ok {
		t.Error("0/0 provenance lost at compile time")
	}
}

// TestCompiledMatchesMergedRandom cross-checks the compiled table against
// the two-tree reference over randomized overlapping classes.
func TestCompiledMatchesMergedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := NewMerged()
	primary := &Snapshot{Name: "P", Kind: SourceBGP}
	secondary := &Snapshot{Name: "S", Kind: SourceNetworkDump}
	for i := 0; i < 3000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		primary.Entries = append(primary.Entries, Entry{Prefix: p})
		if rng.Intn(4) == 0 {
			// Some prefixes appear in both classes.
			secondary.Entries = append(secondary.Entries, Entry{Prefix: p})
		}
	}
	for i := 0; i < 3000; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		secondary.Entries = append(secondary.Entries, Entry{Prefix: p})
	}
	m.Add(primary)
	m.Add(secondary)
	c := m.Compile()
	for i := 0; i < 30000; i++ {
		a := netutil.Addr(rng.Uint32())
		mm, mok := m.Lookup(a)
		cm, cok := c.Lookup(a)
		if mok != cok || mm != cm {
			t.Fatalf("Lookup(%v): merged (%+v,%v) vs compiled (%+v,%v)", a, mm, mok, cm, cok)
		}
	}
	// Provenance and kind resolve identically for every compiled prefix.
	m.Walk(func(p netutil.Prefix, _ *Provenance) bool {
		want, wok := m.Provenance(p)
		got, gok := c.Provenance(p)
		if wok != gok || want != got {
			t.Fatalf("Provenance(%v): merged (%p,%v) vs compiled (%p,%v)", p, want, wok, got, gok)
		}
		return true
	})
}

func TestCompiledKindOfShadowing(t *testing.T) {
	m := NewMerged()
	m.Add(snap("B", SourceBGP, "10.0.0.0/8"))
	m.Add(snap("R", SourceNetworkDump, "10.0.0.0/8", "20.0.0.0/8"))
	c := m.Compile()
	if k, ok := c.KindOf(netutil.MustParsePrefix("10.0.0.0/8")); !ok || k != SourceBGP {
		t.Errorf("KindOf shared prefix = %v ok=%v, want BGP", k, ok)
	}
	if k, ok := c.KindOf(netutil.MustParsePrefix("20.0.0.0/8")); !ok || k != SourceNetworkDump {
		t.Errorf("KindOf dump prefix = %v ok=%v, want dump", k, ok)
	}
	if _, ok := c.KindOf(netutil.MustParsePrefix("30.0.0.0/8")); ok {
		t.Error("KindOf unknown prefix must miss")
	}
	// And the shared prefix clusters as BGP through the compiled walk.
	if got, ok := c.Lookup(netutil.MustParseAddr("10.1.2.3")); !ok || got.Kind != SourceBGP {
		t.Errorf("Lookup shared prefix = %+v ok=%v", got, ok)
	}
}

func TestCompiledIgnoresLaterAdds(t *testing.T) {
	m := NewMerged()
	m.Add(snap("B", SourceBGP, "10.0.0.0/8"))
	c := m.Compile()
	m.Add(snap("B2", SourceBGP, "20.0.0.0/8"))
	if _, ok := c.Lookup(netutil.MustParseAddr("20.1.2.3")); ok {
		t.Fatal("compiled snapshot observed a post-compile Add")
	}
	if _, ok := m.Compile().Lookup(netutil.MustParseAddr("20.1.2.3")); !ok {
		t.Fatal("recompile must pick up the new snapshot")
	}
}
