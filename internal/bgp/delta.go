package bgp

import (
	"context"
	"sync"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/radix"
)

var (
	deltaAnnounced = obsv.C("bgp.delta.announced")
	deltaWithdrawn = obsv.C("bgp.delta.withdrawn")
	deltaCompacts  = obsv.C("bgp.delta.compactions")
)

// Op is one routing-table delta operation. An announce carries the full
// entry (prefix plus provenance metadata); a withdraw needs only
// Entry.Prefix and Kind. Withdrawals are table-level, not per-feed: the
// delta stream maintains the merged table itself, so withdrawing a
// prefix removes it from its source class outright.
type Op struct {
	Withdraw bool
	Kind     SourceKind
	Entry    Entry
}

// Delta is one batch of operations, typically everything a churn
// interval produced. Source labels the feed for provenance accounting.
type Delta struct {
	Source string
	Ops    []Op
}

// Announced and Withdrawn count the delta's operations by direction.
func (d Delta) Announced() int {
	n := 0
	for _, op := range d.Ops {
		if !op.Withdraw {
			n++
		}
	}
	return n
}

// Withdrawn counts the withdraw operations.
func (d Delta) Withdrawn() int { return len(d.Ops) - d.Announced() }

// Incremental maintains a Compiled table under a stream of deltas: each
// Apply patches the stride-8 match structure in place (node-local edits
// plus an incremental freeze, see radix.Dynamic) instead of recompiling
// from scratch, and returns a fresh immutable Compiled generation that
// readers of earlier generations are unaffected by.
//
// Incremental is single-writer: Apply calls must be serialized (the
// churn.Table wrapper does). The Compiled values it returns are safe for
// unlimited concurrent readers. Provenance for incrementally-built
// generations is served from a shared mutex-guarded store rather than
// per-generation maps — the match path stays lock-free, exact-prefix
// provenance queries pay an RLock.
//
// Sustained churn strands dead entry rows and emptied node blocks in the
// shared structure; when their share crosses compactThreshold, Apply
// transparently rebuilds from the live key set (counted by the
// "bgp.delta.compactions" metric), bounding memory at a constant factor
// of the live table.
type Incremental struct {
	dyn *radix.Dynamic[compiledValue]

	mu sync.RWMutex
	// prov[0] is the primary (BGP) class, prov[1] the secondary
	// (network-dump) class, mirroring Merged's two trees.
	prov [2]map[netutil.Prefix]*Provenance
}

// compactThreshold is the dead-row fraction that triggers a rebuild.
const compactThreshold = 0.5

func classOf(k SourceKind) int {
	if k == SourceNetworkDump {
		return 1
	}
	return 0
}

func rankFor(k SourceKind, bits int) int {
	if k == SourceNetworkDump {
		return bits
	}
	return compiledPrimaryBias + bits
}

// NewIncremental seeds an incremental compiler from a merged table. The
// Merged's provenance records are shared, so the caller must stop
// mutating m (treat this as a handoff, like Compile's snapshot
// semantics — except the Incremental keeps absorbing deltas).
func NewIncremental(m *Merged) *Incremental {
	inc := &Incremental{
		dyn: radix.NewDynamic[compiledValue](),
	}
	inc.prov[0] = make(map[netutil.Prefix]*Provenance, m.NumPrimary())
	inc.prov[1] = make(map[netutil.Prefix]*Provenance, m.NumSecondary())
	m.primary.Walk(func(p netutil.Prefix, prov *Provenance) bool {
		inc.prov[0][p] = prov
		if p.Bits() > 0 {
			inc.dyn.InsertRanked(p, compiledValue{kind: SourceBGP}, rankFor(SourceBGP, p.Bits()))
		}
		return true
	})
	m.secondary.Walk(func(p netutil.Prefix, prov *Provenance) bool {
		inc.prov[1][p] = prov
		if p.Bits() > 0 {
			inc.dyn.InsertRanked(p, compiledValue{kind: SourceNetworkDump}, rankFor(SourceNetworkDump, p.Bits()))
		}
		return true
	})
	return inc
}

// Compiled renders the current state as an immutable generation without
// applying any operations — the generation-0 publication.
func (inc *Incremental) Compiled() *Compiled {
	return inc.publish()
}

// Apply patches the table with every operation of d and returns the new
// generation. Announcing a prefix already present updates its
// provenance; withdrawing an absent prefix is a no-op. The default route
// 0/0 is tracked for provenance but, as in Compile, never matches.
func (inc *Incremental) Apply(d Delta) *Compiled {
	return inc.ApplyCtx(context.Background(), d)
}

// ApplyCtx is Apply under a trace context: each batch records one
// "bgp.delta.apply" span with op counts as attributes.
func (inc *Incremental) ApplyCtx(ctx context.Context, d Delta) *Compiled {
	_, sp := obsv.StartTraceSpan(ctx, "bgp.delta.apply")
	announced, withdrawn := 0, 0
	for _, op := range d.Ops {
		p := op.Entry.Prefix
		class := classOf(op.Kind)
		if op.Withdraw {
			inc.mu.Lock()
			_, present := inc.prov[class][p]
			delete(inc.prov[class], p)
			inc.mu.Unlock()
			if present {
				withdrawn++
				if p.Bits() > 0 {
					inc.dyn.Remove(p, rankFor(op.Kind, p.Bits()))
				}
			}
			continue
		}
		announced++
		inc.mu.Lock()
		pv := inc.prov[class][p]
		if pv == nil {
			pv = &Provenance{Kind: op.Kind, OriginAS: op.Entry.OriginAS()}
			if d.Source != "" {
				pv.Sources = []string{d.Source}
			}
			inc.prov[class][p] = pv
		} else if d.Source != "" && !containsString(pv.Sources, d.Source) {
			// Copy-on-write: generations already published may be reading
			// the old record's Sources slice concurrently.
			np := &Provenance{
				Sources:  append(append([]string(nil), pv.Sources...), d.Source),
				Kind:     pv.Kind,
				OriginAS: pv.OriginAS,
			}
			if np.OriginAS == 0 {
				np.OriginAS = op.Entry.OriginAS()
			}
			inc.prov[class][p] = np
			pv = np
		}
		inc.mu.Unlock()
		if p.Bits() > 0 {
			inc.dyn.InsertRanked(p, compiledValue{kind: op.Kind}, rankFor(op.Kind, p.Bits()))
		}
	}
	deltaAnnounced.Add(uint64(announced))
	deltaWithdrawn.Add(uint64(withdrawn))
	inc.maybeCompact()
	c := inc.publish()
	sp.SetAttrInt("announced", int64(announced))
	sp.SetAttrInt("withdrawn", int64(withdrawn))
	sp.SetAttrInt("prefixes", int64(c.Len()))
	sp.End()
	return c
}

// maybeCompact rebuilds the dynamic structure from its live key set once
// dead arena rows outweigh compactThreshold of the total, releasing the
// memory stranded by sustained churn.
func (inc *Incremental) maybeCompact() {
	dead, live := inc.dyn.DeadEntries(), inc.dyn.Len()
	if dead == 0 || float64(dead) < compactThreshold*float64(dead+live) {
		return
	}
	fresh := radix.NewDynamic[compiledValue]()
	inc.dyn.Walk(func(p netutil.Prefix, rank int, v compiledValue) bool {
		fresh.InsertRanked(p, v, rank)
		return true
	})
	inc.dyn = fresh
	deltaCompacts.Inc()
}

func (inc *Incremental) publish() *Compiled {
	inc.mu.RLock()
	np, ns := len(inc.prov[0]), len(inc.prov[1])
	inc.mu.RUnlock()
	c := &Compiled{
		frozen:       inc.dyn.Freeze(),
		inc:          inc,
		numPrimary:   np,
		numSecondary: ns,
	}
	compiledPrefixes.Set(int64(c.Len()))
	compiledNodes.Set(int64(c.frozen.NumNodes()))
	return c
}

// provenance serves Compiled.Provenance for incremental generations:
// primary class shadows secondary, as in Merged.Provenance.
func (inc *Incremental) provenance(p netutil.Prefix) (*Provenance, bool) {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	if pv, ok := inc.prov[0][p]; ok {
		return pv, true
	}
	pv, ok := inc.prov[1][p]
	return pv, ok
}

// kindOf serves Compiled.KindOf for incremental generations.
func (inc *Incremental) kindOf(p netutil.Prefix) (SourceKind, bool) {
	inc.mu.RLock()
	defer inc.mu.RUnlock()
	if _, ok := inc.prov[0][p]; ok {
		return SourceBGP, true
	}
	if _, ok := inc.prov[1][p]; ok {
		return SourceNetworkDump, true
	}
	return SourceBGP, false
}
