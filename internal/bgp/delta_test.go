package bgp

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

func TestIncrementalSeedMatchesCompile(t *testing.T) {
	m := NewMerged()
	m.Add(snap("ARIN", SourceNetworkDump, "12.0.0.0/8", "24.0.0.0/8", "10.1.0.0/16"))
	m.Add(snap("AADS", SourceBGP, "12.65.128.0/19", "10.0.0.0/8"))
	m.Add(snap("MAE", SourceBGP, "12.65.128.0/19", "24.48.2.0/23"))
	c := m.Compile()
	inc := NewIncremental(m).Compiled()

	if inc.Len() != c.Len() || inc.NumPrimary() != c.NumPrimary() || inc.NumSecondary() != c.NumSecondary() {
		t.Fatalf("sizes: incremental %d/%d/%d vs compiled %d/%d/%d",
			inc.Len(), inc.NumPrimary(), inc.NumSecondary(), c.Len(), c.NumPrimary(), c.NumSecondary())
	}
	for _, ip := range []string{
		"12.65.147.94", "12.1.2.3", "10.1.2.3", "24.48.3.87", "24.99.1.1", "99.99.99.99",
	} {
		a := netutil.MustParseAddr(ip)
		cm, cok := c.Lookup(a)
		im, iok := inc.Lookup(a)
		if cok != iok || cm != im {
			t.Errorf("Lookup(%s): compiled (%+v,%v) vs incremental (%+v,%v)", ip, cm, cok, im, iok)
		}
	}
}

func TestIncrementalAnnounceWithdraw(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8"))
	inc := NewIncremental(m)
	addr := netutil.MustParseAddr("10.1.2.3")

	p16 := netutil.MustParsePrefix("10.1.0.0/16")
	c := inc.Apply(Delta{Source: "feed", Ops: []Op{
		{Kind: SourceBGP, Entry: Entry{Prefix: p16, ASPath: []uint32{7018}}},
	}})
	if m, ok := c.Lookup(addr); !ok || m.Prefix != p16 {
		t.Fatalf("after announce, Lookup = %+v %v, want %v", m, ok, p16)
	}
	if pv, ok := c.Provenance(p16); !ok || pv.OriginAS != 7018 || len(pv.Sources) != 1 || pv.Sources[0] != "feed" {
		t.Fatalf("Provenance = %+v %v", pv, ok)
	}
	if k, ok := c.KindOf(p16); !ok || k != SourceBGP {
		t.Fatalf("KindOf = %v %v", k, ok)
	}

	c = inc.Apply(Delta{Ops: []Op{
		{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: p16}},
	}})
	if m, ok := c.Lookup(addr); !ok || m.Prefix.String() != "10.0.0.0/8" {
		t.Fatalf("after withdraw, Lookup = %+v %v, want the /8", m, ok)
	}
	if _, ok := c.Provenance(p16); ok {
		t.Fatal("withdrawn prefix still has provenance")
	}

	// Withdrawing an absent prefix is a no-op, not an error.
	before := c.Len()
	c = inc.Apply(Delta{Ops: []Op{
		{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("99.0.0.0/8")}},
	}})
	if c.Len() != before {
		t.Fatalf("withdraw of absent prefix changed Len: %d -> %d", before, c.Len())
	}
}

func TestIncrementalClassesIndependent(t *testing.T) {
	// The same prefix in both classes: withdrawing the BGP entry must
	// leave the network-dump entry matching, and vice versa.
	m := NewMerged()
	p := netutil.MustParsePrefix("24.0.0.0/8")
	m.Add(snap("AADS", SourceBGP, "24.0.0.0/8"))
	m.Add(snap("ARIN", SourceNetworkDump, "24.0.0.0/8"))
	inc := NewIncremental(m)
	addr := netutil.MustParseAddr("24.1.2.3")

	c := inc.Apply(Delta{Ops: []Op{{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: p}}}})
	if m, ok := c.Lookup(addr); !ok || m.Kind != SourceNetworkDump {
		t.Fatalf("after BGP withdraw, Lookup = %+v %v, want dump match", m, ok)
	}
	if k, ok := c.KindOf(p); !ok || k != SourceNetworkDump {
		t.Fatalf("KindOf = %v %v, want dump", k, ok)
	}
	c = inc.Apply(Delta{Ops: []Op{{Withdraw: true, Kind: SourceNetworkDump, Entry: Entry{Prefix: p}}}})
	if _, ok := c.Lookup(addr); ok {
		t.Fatal("both classes withdrawn but the address still matches")
	}
}

func TestIncrementalDefaultRouteNeverMatches(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8"))
	inc := NewIncremental(m)
	def := netutil.MustParsePrefix("0.0.0.0/0")
	c := inc.Apply(Delta{Source: "feed", Ops: []Op{{Kind: SourceBGP, Entry: Entry{Prefix: def}}}})
	if _, ok := c.Lookup(netutil.MustParseAddr("99.99.99.99")); ok {
		t.Fatal("announced 0/0 clustered an otherwise uncovered address")
	}
	if _, ok := c.Provenance(def); !ok {
		t.Fatal("0/0 announce did not record provenance")
	}
}

func TestIncrementalProvenanceCopyOnWrite(t *testing.T) {
	// Re-announcing from a second feed must not mutate the Sources slice a
	// previously published generation could be reading.
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8"))
	inc := NewIncremental(m)
	p := netutil.MustParsePrefix("10.0.0.0/8")

	c1 := inc.Compiled()
	pv1, ok := c1.Provenance(p)
	if !ok || len(pv1.Sources) != 1 {
		t.Fatalf("seed provenance = %+v %v", pv1, ok)
	}
	sources1 := pv1.Sources

	c2 := inc.Apply(Delta{Source: "MAE", Ops: []Op{{Kind: SourceBGP, Entry: Entry{Prefix: p}}}})
	pv2, _ := c2.Provenance(p)
	if len(pv2.Sources) != 2 {
		t.Fatalf("after second feed, Sources = %v", pv2.Sources)
	}
	if len(sources1) != 1 || sources1[0] != "AADS" {
		t.Fatalf("old generation's Sources slice mutated: %v", sources1)
	}
}

// TestIncrementalEquivalentToRecompile drives random deltas against both
// the incremental compiler and a track-the-sets oracle, then checks the
// final incremental generation answers identically to a from-scratch
// Compile of the oracle's live sets. This is the ground truth behind the
// ≥5x delta-apply speedup claim: patching must be a pure optimization.
func TestIncrementalEquivalentToRecompile(t *testing.T) {
	rng := rand.New(rand.NewSource(61))

	// Universe: a few thousand prefixes per class, distinct ranges so the
	// two classes overlap but don't alias.
	var primary, secondary []netutil.Prefix
	for i := 0; i < 2000; i++ {
		bits := 9 + rng.Intn(16)
		addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
		primary = append(primary, netutil.PrefixFrom(addr, bits))
	}
	for i := 0; i < 400; i++ {
		bits := 8 + rng.Intn(9)
		addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
		secondary = append(secondary, netutil.PrefixFrom(addr, bits))
	}

	seed := NewMerged()
	seed.Add(&Snapshot{Name: "P0", Kind: SourceBGP, Entries: entriesOf(primary)})
	seed.Add(&Snapshot{Name: "S0", Kind: SourceNetworkDump, Entries: entriesOf(secondary)})
	inc := NewIncremental(seed)

	live := [2]map[netutil.Prefix]struct{}{
		make(map[netutil.Prefix]struct{}), make(map[netutil.Prefix]struct{}),
	}
	for _, p := range primary {
		live[0][p] = struct{}{}
	}
	for _, p := range secondary {
		live[1][p] = struct{}{}
	}

	var final *Compiled
	for batch := 0; batch < 100; batch++ {
		var d Delta
		d.Source = "churn"
		nOps := 10 + rng.Intn(30)
		for i := 0; i < nOps; i++ {
			class := 0
			universe := primary
			if rng.Intn(5) == 0 {
				class, universe = 1, secondary
			}
			kind := SourceBGP
			if class == 1 {
				kind = SourceNetworkDump
			}
			p := universe[rng.Intn(len(universe))]
			if _, isLive := live[class][p]; isLive && rng.Intn(2) == 0 {
				delete(live[class], p)
				d.Ops = append(d.Ops, Op{Withdraw: true, Kind: kind, Entry: Entry{Prefix: p}})
			} else {
				live[class][p] = struct{}{}
				d.Ops = append(d.Ops, Op{Kind: kind, Entry: Entry{Prefix: p}})
			}
		}
		final = inc.Apply(d)
	}

	// Reference: compile the oracle's final live sets from scratch.
	ref := NewMerged()
	ref.Add(&Snapshot{Name: "P", Kind: SourceBGP, Entries: entriesOfSet(live[0])})
	ref.Add(&Snapshot{Name: "S", Kind: SourceNetworkDump, Entries: entriesOfSet(live[1])})
	refC := ref.Compile()

	if final.NumPrimary() != refC.NumPrimary() || final.NumSecondary() != refC.NumSecondary() {
		t.Fatalf("sizes: incremental %d/%d vs recompile %d/%d",
			final.NumPrimary(), final.NumSecondary(), refC.NumPrimary(), refC.NumSecondary())
	}

	probes := make([]netutil.Addr, 0, 10000)
	for i := 0; i < 6000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	for _, p := range primary[:2000] {
		probes = append(probes, p.First(), p.Last())
	}
	for _, addr := range probes {
		im, iok := final.Lookup(addr)
		rm, rok := refC.Lookup(addr)
		if iok != rok || im != rm {
			t.Fatalf("Lookup(%v): incremental (%+v,%v) vs recompile (%+v,%v)", addr, im, iok, rm, rok)
		}
	}
}

func TestIncrementalCompaction(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8"))
	inc := NewIncremental(m)

	// Flap one batch of prefixes repeatedly; every withdraw after a freeze
	// strands arena rows, so compaction must eventually trigger and the
	// table keep answering correctly through it.
	var ps []netutil.Prefix
	for i := 0; i < 64; i++ {
		ps = append(ps, netutil.PrefixFrom(netutil.AddrFrom4(10, byte(i), 0, 0), 16))
	}
	var c *Compiled
	for round := 0; round < 20; round++ {
		var ann, wd Delta
		for _, p := range ps {
			ann.Ops = append(ann.Ops, Op{Kind: SourceBGP, Entry: Entry{Prefix: p}})
			wd.Ops = append(wd.Ops, Op{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: p}})
		}
		inc.Apply(ann)
		c = inc.Apply(wd)
	}
	if got := c.NumPrimary(); got != 1 {
		t.Fatalf("after flapping, NumPrimary = %d, want 1", got)
	}
	if m, ok := c.Lookup(netutil.MustParseAddr("10.5.1.1")); !ok || m.Prefix.String() != "10.0.0.0/8" {
		t.Fatalf("after flapping, Lookup = %+v %v", m, ok)
	}
	if inc.dyn.DeadEntries() > inc.dyn.Len() {
		t.Fatalf("compaction never ran: %d dead rows vs %d live", inc.dyn.DeadEntries(), inc.dyn.Len())
	}
}

func entriesOf(ps []netutil.Prefix) []Entry {
	out := make([]Entry, len(ps))
	for i, p := range ps {
		out[i] = Entry{Prefix: p}
	}
	return out
}

func entriesOfSet(set map[netutil.Prefix]struct{}) []Entry {
	out := make([]Entry, 0, len(set))
	for p := range set {
		out = append(out, Entry{Prefix: p})
	}
	return out
}
