// Package bgp models BGP routing-table and network-dump snapshots the way
// the paper consumes them: as bags of prefix/netmask entries gathered from
// many vantage points, normalized to a single format, and merged into one
// longest-prefix-match table.
//
// The paper distinguishes two kinds of sources. BGP routing/forwarding
// table dumps (AADS, MAE-EAST, …) are the primary source: their entries
// reflect what core routers actually use to forward packets and are thus
// the best approximation of topological clusters. IP network dumps (ARIN,
// NLANR) are registries of allocated blocks; they cover more address space
// but with coarser prefixes, so they serve only as a secondary source for
// clients no BGP entry matches. Merging both raises clusterable clients
// from ~99% to ~99.9% (Section 3.1.1).
package bgp

import (
	"fmt"
	"strings"

	"github.com/netaware/netcluster/internal/netutil"
)

// SourceKind classifies where a snapshot's entries come from, which decides
// their priority during clustering. The underlying type is uint8 on
// purpose: the kind is the entire per-entry payload of the compiled match
// structure, and at one byte per row the entry value column is exactly
// its on-disk form — the snapshot loader can alias a memory-mapped file
// instead of copying a million rows (see tablefile_zerocopy.go).
type SourceKind uint8

const (
	// SourceBGP marks routing/forwarding table dumps: the primary source.
	SourceBGP SourceKind = iota
	// SourceNetworkDump marks registry dumps (ARIN/NLANR-style): the
	// secondary source, consulted only when no BGP prefix matches.
	SourceNetworkDump
)

// String returns the human-readable source kind used in reports.
func (k SourceKind) String() string {
	switch k {
	case SourceBGP:
		return "BGP routing table"
	case SourceNetworkDump:
		return "IP network dump"
	default:
		return fmt.Sprintf("SourceKind(%d)", int(k))
	}
}

// Entry is one routing-table row. Only the prefix takes part in clustering;
// the remaining fields mirror the columns of Table 2 in the paper and feed
// reporting and the geographical hints the paper mentions as future work.
type Entry struct {
	Prefix      netutil.Prefix
	Description string   // prefix description, e.g. "Harvard University"
	NextHop     string   // next-hop router name or address
	ASPath      []uint32 // AS path, origin last
	PeerDesc    string   // peer AS description
}

// OriginAS returns the final AS on the path (the origin), or 0 if the path
// is empty (network dumps carry no AS information).
func (e Entry) OriginAS() uint32 {
	if len(e.ASPath) == 0 {
		return 0
	}
	return e.ASPath[len(e.ASPath)-1]
}

// ASPathString renders the AS path as space-separated numbers followed by
// the IGP origin marker, the way route viewers print it.
func (e Entry) ASPathString() string {
	if len(e.ASPath) == 0 {
		return ""
	}
	var b strings.Builder
	for i, as := range e.ASPath {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", as)
	}
	b.WriteString(" (IGP)")
	return b.String()
}

// Snapshot is one dump of one source at one point in time, e.g. "AADS on
// 12/7/1999". Entries may contain duplicates and are not sorted; Table and
// Merged normalize them.
type Snapshot struct {
	Name    string     // vantage point, e.g. "AADS"
	Kind    SourceKind // primary (BGP) vs secondary (network dump)
	Date    string     // snapshot date, freeform like the paper's Table 1
	Comment string     // e.g. "BGP routing table snapshots updated every 2 hours"
	Entries []Entry
}

// PrefixSet returns the deduplicated set of prefixes in s.
func (s *Snapshot) PrefixSet() map[netutil.Prefix]struct{} {
	set := make(map[netutil.Prefix]struct{}, len(s.Entries))
	for _, e := range s.Entries {
		set[e.Prefix] = struct{}{}
	}
	return set
}
