package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/netaware/netcluster/internal/netutil"
)

// The three textual prefix/netmask formats found across 1999-era routing
// table and network dumps (Section 3.1.2 of the paper):
//
//	(i)   x1.x2.x3.x4/k1.k2.k3.k4 — dotted prefix and dotted netmask, with
//	      zero octets dropped at the tail of either side ("12.65.128/255.255.224"
//	      means 12.65.128.0/255.255.224.0);
//	(ii)  x1.x2.x3.x4/l — CIDR, the library's canonical standard format;
//	(iii) x1.x2.x3.0 — a bare address with no mask at all, an abbreviated
//	      classful block whose mask length is implied by the address class
//	      (8, 16 or 24 for Class A, B, C).
//
// ParsePrefixEntry auto-detects the format, so a merged ingest loop does not
// need per-source configuration.

// PrefixFormat selects the textual format used when writing snapshots.
type PrefixFormat int

const (
	// FormatCIDR writes "a.b.c.d/len" (the unified standard format).
	FormatCIDR PrefixFormat = iota
	// FormatNetmask writes "a.b.c.d/m1.m2.m3.m4" with trailing zero octets
	// dropped on both sides, imitating the terser dump style.
	FormatNetmask
	// FormatClassful writes the bare network address; only representable
	// when the prefix length equals the address's classful length.
	FormatClassful
)

// padDotted parses a dotted decimal string of 1..4 components, padding
// missing trailing components with zeros: "12.65.128" -> 12.65.128.0.
func padDotted(s string) (netutil.Addr, error) {
	if s == "" {
		return 0, fmt.Errorf("bgp: empty dotted string")
	}
	n := strings.Count(s, ".")
	if n > 3 {
		return 0, fmt.Errorf("bgp: too many components in %q", s)
	}
	padded := s + strings.Repeat(".0", 3-n)
	return netutil.ParseAddr(padded)
}

// ParsePrefixEntry parses a single prefix field in any of the three formats
// and returns its canonical Prefix. Detection rules:
//
//   - no '/' at all → classful abbreviation (format iii);
//   - '/' with a right-hand side that is an integer 0..32 → CIDR (format ii);
//   - otherwise the right-hand side is read as a (possibly tail-truncated)
//     dotted netmask (format i); non-contiguous masks are rejected.
//
// The single-integer ambiguity between a CIDR length and a one-octet mask
// like "255" (= 255.0.0.0) is resolved in favour of CIDR for values ≤ 32,
// matching how every route viewer prints; one-octet netmasks above 32
// ("128", "192", …, "255") are still accepted as masks.
func ParsePrefixEntry(s string) (netutil.Prefix, error) {
	s = strings.TrimSpace(s)
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		// Format (iii): abbreviated classful block.
		addr, err := padDotted(s)
		if err != nil {
			return netutil.Prefix{}, fmt.Errorf("bgp: bad classful entry %q: %w", s, err)
		}
		bits := addr.ClassfulPrefixLen()
		if bits == 32 && addr.Class() != 'A' && addr.Class() != 'B' && addr.Class() != 'C' {
			return netutil.Prefix{}, fmt.Errorf("bgp: classful entry %q is not a Class A/B/C address", s)
		}
		return netutil.PrefixFrom(addr, bits), nil
	}
	lhs, rhs := s[:slash], s[slash+1:]
	addr, err := padDotted(lhs)
	if err != nil {
		return netutil.Prefix{}, fmt.Errorf("bgp: bad prefix in %q: %w", s, err)
	}
	if !strings.Contains(rhs, ".") {
		if v, err := strconv.Atoi(rhs); err == nil && v >= 0 && v <= 32 {
			// Format (ii): CIDR length.
			return netutil.PrefixFrom(addr, v), nil
		}
	}
	// Format (i): dotted netmask, possibly tail-truncated.
	mask, err := padDotted(rhs)
	if err != nil {
		return netutil.Prefix{}, fmt.Errorf("bgp: bad netmask in %q: %w", s, err)
	}
	bits, err := netutil.MaskLen(mask)
	if err != nil {
		return netutil.Prefix{}, fmt.Errorf("bgp: bad netmask in %q: %w", s, err)
	}
	return netutil.PrefixFrom(addr, bits), nil
}

// dropTailZeros renders addr dotted with trailing ".0" octets removed, but
// always keeps at least the first octet.
func dropTailZeros(addr netutil.Addr) string {
	o := addr.Octets()
	keep := 4
	for keep > 1 && o[keep-1] == 0 {
		keep--
	}
	parts := make([]string, keep)
	for i := 0; i < keep; i++ {
		parts[i] = strconv.Itoa(int(o[i]))
	}
	return strings.Join(parts, ".")
}

// FormatPrefixEntry renders p in the requested format. FormatClassful
// returns an error when p's length does not equal its address's classful
// length, since the abbreviation cannot express it.
func FormatPrefixEntry(p netutil.Prefix, f PrefixFormat) (string, error) {
	switch f {
	case FormatCIDR:
		return p.String(), nil
	case FormatNetmask:
		mask := netutil.Addr(netutil.MaskOf(p.Bits()))
		return dropTailZeros(p.Addr()) + "/" + dropTailZeros(mask), nil
	case FormatClassful:
		if p.Bits() != p.Addr().ClassfulPrefixLen() {
			return "", fmt.Errorf("bgp: %v is not a classful block", p)
		}
		return p.Addr().String(), nil
	default:
		return "", fmt.Errorf("bgp: unknown format %d", int(f))
	}
}

// Snapshot file layout: a minimal line-oriented dump format used by the
// bgpgen tool and by round-trip tests. Header lines start with "#":
//
//	# name: AADS
//	# kind: bgp | netdump
//	# date: 12/7/1999
//	# comment: BGP routing table snapshots updated every 2 hours
//
// Each body line holds pipe-separated fields, of which only the first is
// mandatory:
//
//	prefix|description|next-hop|as path (space-separated)|peer description
//
// The prefix field may use any of the three formats above, per entry.

// WriteSnapshot serializes s using format f for every prefix. Entries whose
// prefix is not representable in f (possible only for FormatClassful) fall
// back to FormatCIDR, mirroring real dumps that mix notations.
func WriteSnapshot(w io.Writer, s *Snapshot, f PrefixFormat) error {
	bw := bufio.NewWriter(w)
	kind := "bgp"
	if s.Kind == SourceNetworkDump {
		kind = "netdump"
	}
	fmt.Fprintf(bw, "# name: %s\n# kind: %s\n# date: %s\n", s.Name, kind, s.Date)
	if s.Comment != "" {
		fmt.Fprintf(bw, "# comment: %s\n", s.Comment)
	}
	for _, e := range s.Entries {
		pfx, err := FormatPrefixEntry(e.Prefix, f)
		if err != nil {
			pfx, _ = FormatPrefixEntry(e.Prefix, FormatCIDR)
		}
		path := make([]string, len(e.ASPath))
		for i, as := range e.ASPath {
			path[i] = strconv.FormatUint(uint64(as), 10)
		}
		fmt.Fprintf(bw, "%s|%s|%s|%s|%s\n", pfx, e.Description, e.NextHop, strings.Join(path, " "), e.PeerDesc)
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot previously written by WriteSnapshot (or
// hand-assembled in the same layout). Unknown header keys are ignored;
// malformed body lines abort with a line-numbered error rather than being
// silently dropped, because a truncated routing table would quietly skew
// every downstream clustering result.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	s := &Snapshot{Kind: SourceBGP}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kv := strings.SplitN(strings.TrimSpace(line[1:]), ":", 2)
			if len(kv) != 2 {
				continue
			}
			key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
			switch key {
			case "name":
				s.Name = val
			case "date":
				s.Date = val
			case "comment":
				s.Comment = val
			case "kind":
				switch val {
				case "bgp":
					s.Kind = SourceBGP
				case "netdump":
					s.Kind = SourceNetworkDump
				default:
					return nil, fmt.Errorf("bgp: line %d: unknown kind %q", lineno, val)
				}
			}
			continue
		}
		fields := strings.Split(line, "|")
		p, err := ParsePrefixEntry(fields[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %w", lineno, err)
		}
		e := Entry{Prefix: p}
		if len(fields) > 1 {
			e.Description = fields[1]
		}
		if len(fields) > 2 {
			e.NextHop = fields[2]
		}
		if len(fields) > 3 && strings.TrimSpace(fields[3]) != "" {
			for _, tok := range strings.Fields(fields[3]) {
				as, err := strconv.ParseUint(tok, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("bgp: line %d: bad AS %q", lineno, tok)
				}
				e.ASPath = append(e.ASPath, uint32(as))
			}
		}
		if len(fields) > 4 {
			e.PeerDesc = fields[4]
		}
		s.Entries = append(s.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: reading snapshot: %w", err)
	}
	return s, nil
}
