package bgp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/netaware/netcluster/internal/netutil"
)

func TestParsePrefixEntryCIDR(t *testing.T) {
	cases := []struct{ in, want string }{
		{"12.65.128.0/19", "12.65.128.0/19"},
		{"6.0.0.0/8", "6.0.0.0/8"},
		{"12.0.48.0/20", "12.0.48.0/20"},
		{"24.48.2.0/23", "24.48.2.0/23"},
		{"1.2.3.4/32", "1.2.3.4/32"},
		{"0.0.0.0/0", "0.0.0.0/0"},
		{"  10.0.0.0/8  ", "10.0.0.0/8"},      // surrounding whitespace tolerated
		{"12.65.147.94/19", "12.65.128.0/19"}, // host bits canonicalized
	}
	for _, c := range cases {
		p, err := ParsePrefixEntry(c.in)
		if err != nil {
			t.Errorf("ParsePrefixEntry(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePrefixEntry(%q) = %v, want %s", c.in, p, c.want)
		}
	}
}

func TestParsePrefixEntryNetmask(t *testing.T) {
	cases := []struct{ in, want string }{
		{"12.65.128.0/255.255.224.0", "12.65.128.0/19"},
		{"151.198.194.16/255.255.255.240", "151.198.194.16/28"},
		// Zeroes dropped at the tail, both sides.
		{"12.65.128/255.255.224", "12.65.128.0/19"},
		{"10/255", "10.0.0.0/8"}, // one-octet mask 255 = /8, not CIDR /255
		{"128.32/255.255", "128.32.0.0/16"},
		{"4/254", "4.0.0.0/7"},
		{"192.168.1/255.255.255", "192.168.1.0/24"},
	}
	for _, c := range cases {
		p, err := ParsePrefixEntry(c.in)
		if err != nil {
			t.Errorf("ParsePrefixEntry(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePrefixEntry(%q) = %v, want %s", c.in, p, c.want)
		}
	}
}

func TestParsePrefixEntryClassful(t *testing.T) {
	cases := []struct{ in, want string }{
		{"18.0.0.0", "18.0.0.0/8"},        // Class A
		{"128.32.0.0", "128.32.0.0/16"},   // Class B
		{"192.168.4.0", "192.168.4.0/24"}, // Class C
		{"18", "18.0.0.0/8"},              // zero octets dropped entirely
		{"128.32", "128.32.0.0/16"},
		{"203.4.5", "203.4.5.0/24"},
	}
	for _, c := range cases {
		p, err := ParsePrefixEntry(c.in)
		if err != nil {
			t.Errorf("ParsePrefixEntry(%q): %v", c.in, err)
			continue
		}
		if p.String() != c.want {
			t.Errorf("ParsePrefixEntry(%q) = %v, want %s", c.in, p, c.want)
		}
	}
}

func TestParsePrefixEntryErrors(t *testing.T) {
	bad := []string{
		"",
		"/24",
		"1.2.3.4.5/8",
		"10.0.0.0/33",        // not a CIDR length, not a mask octet
		"10.0.0.0/255.0.255", // non-contiguous mask
		"10.0.0.0/x",
		"224.0.0.1", // Class D has no classful abbreviation
		"240.0.0.1", // Class E likewise
		"1.2.999.0/24",
	}
	for _, in := range bad {
		if p, err := ParsePrefixEntry(in); err == nil {
			t.Errorf("ParsePrefixEntry(%q) = %v, want error", in, p)
		}
	}
}

func TestFormatPrefixEntry(t *testing.T) {
	p := netutil.MustParsePrefix("12.65.128.0/19")
	if s, _ := FormatPrefixEntry(p, FormatCIDR); s != "12.65.128.0/19" {
		t.Errorf("CIDR = %q", s)
	}
	if s, _ := FormatPrefixEntry(p, FormatNetmask); s != "12.65.128/255.255.224" {
		t.Errorf("Netmask = %q", s)
	}
	if _, err := FormatPrefixEntry(p, FormatClassful); err == nil {
		t.Error("a /19 must not be representable classfully")
	}
	cb := netutil.MustParsePrefix("192.168.4.0/24")
	if s, err := FormatPrefixEntry(cb, FormatClassful); err != nil || s != "192.168.4.0" {
		t.Errorf("Classful = %q, %v", s, err)
	}
	if _, err := FormatPrefixEntry(p, PrefixFormat(99)); err == nil {
		t.Error("unknown format must error")
	}
}

// Property: any prefix survives a round trip through CIDR and netmask
// formats; classful blocks survive the classful format too.
func TestFormatParseRoundTrip(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := netutil.PrefixFrom(netutil.Addr(v), bits)
		for _, format := range []PrefixFormat{FormatCIDR, FormatNetmask} {
			s, err := FormatPrefixEntry(p, format)
			if err != nil {
				return false
			}
			// The one-octet-mask ambiguity: "x/8" written by netmask format
			// for a /8 would read back as CIDR /8 — same result, still fine.
			back, err := ParsePrefixEntry(s)
			if err != nil || back != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := &Snapshot{
		Name:    "VBNS",
		Kind:    SourceBGP,
		Date:    "12/7/1999",
		Comment: "BGP routing table snapshots updated every 30 minutes",
		Entries: []Entry{
			{
				Prefix:      netutil.MustParsePrefix("6.0.0.0/8"),
				Description: "Army Information Systems Center",
				NextHop:     "cs.ny-nap.vbns.net",
				ASPath:      []uint32{7170, 1455},
				PeerDesc:    "AT&T Government Markets",
			},
			{
				Prefix:      netutil.MustParsePrefix("12.0.48.0/20"),
				Description: "Harvard University",
				NextHop:     "cs.cht.vbns.net",
				ASPath:      []uint32{1742},
				PeerDesc:    "Harvard University",
			},
			{Prefix: netutil.MustParsePrefix("18.0.0.0/8")},
		},
	}
	for _, format := range []PrefixFormat{FormatCIDR, FormatNetmask, FormatClassful} {
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, orig, format); err != nil {
			t.Fatalf("WriteSnapshot(%d): %v", format, err)
		}
		got, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatalf("ReadSnapshot(%d): %v", format, err)
		}
		if got.Name != orig.Name || got.Kind != orig.Kind || got.Date != orig.Date || got.Comment != orig.Comment {
			t.Fatalf("header mismatch: %+v", got)
		}
		if len(got.Entries) != len(orig.Entries) {
			t.Fatalf("entry count = %d, want %d", len(got.Entries), len(orig.Entries))
		}
		for i := range got.Entries {
			g, w := got.Entries[i], orig.Entries[i]
			if g.Prefix != w.Prefix || g.Description != w.Description || g.NextHop != w.NextHop || g.PeerDesc != w.PeerDesc {
				t.Errorf("format %d entry %d: got %+v, want %+v", format, i, g, w)
			}
			if len(g.ASPath) != len(w.ASPath) {
				t.Errorf("format %d entry %d: as path %v, want %v", format, i, g.ASPath, w.ASPath)
			}
		}
	}
}

func TestReadSnapshotNetdumpKind(t *testing.T) {
	in := "# name: ARIN\n# kind: netdump\n# date: 10/1999\n10.0.0.0/8|reserved|||\n"
	s, err := ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != SourceNetworkDump {
		t.Errorf("Kind = %v", s.Kind)
	}
	if len(s.Entries) != 1 || s.Entries[0].Prefix.String() != "10.0.0.0/8" {
		t.Errorf("Entries = %+v", s.Entries)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	for _, in := range []string{
		"# kind: banana\n",
		"not-a-prefix|x\n",
		"10.0.0.0/8|d|h|12 notanas|p\n",
	} {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSnapshot(%q) should fail", in)
		}
	}
}

func TestReadSnapshotBareLines(t *testing.T) {
	// Real dumps often carry bare prefixes with no metadata columns.
	in := "18.0.0.0\n128.32\n12.65.128.0/19\n10/255\n\n"
	s, err := ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"18.0.0.0/8", "128.32.0.0/16", "12.65.128.0/19", "10.0.0.0/8"}
	if len(s.Entries) != len(want) {
		t.Fatalf("got %d entries", len(s.Entries))
	}
	for i, w := range want {
		if s.Entries[i].Prefix.String() != w {
			t.Errorf("entry %d = %v, want %s", i, s.Entries[i].Prefix, w)
		}
	}
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{ASPath: []uint32{7170, 1455}}
	if e.OriginAS() != 1455 {
		t.Errorf("OriginAS = %d", e.OriginAS())
	}
	if e.ASPathString() != "7170 1455 (IGP)" {
		t.Errorf("ASPathString = %q", e.ASPathString())
	}
	var empty Entry
	if empty.OriginAS() != 0 || empty.ASPathString() != "" {
		t.Error("empty entry helpers must return zero values")
	}
}

func TestSourceKindString(t *testing.T) {
	if SourceBGP.String() != "BGP routing table" || SourceNetworkDump.String() != "IP network dump" {
		t.Error("SourceKind strings changed")
	}
	if !strings.Contains(SourceKind(9).String(), "9") {
		t.Error("unknown kind should include numeric value")
	}
}
