package bgp

import (
	"strings"
	"testing"
)

// FuzzParsePrefixEntry asserts the three-notation parser never panics and
// that anything it accepts survives a canonical round trip.
func FuzzParsePrefixEntry(f *testing.F) {
	for _, seed := range []string{
		"12.65.128.0/19",
		"12.65.128/255.255.224",
		"18.0.0.0",
		"10/255",
		"0.0.0.0/0",
		"1.2.3.4/32",
		"151.198.194.16/255.255.255.240",
		"", "/", "a.b.c.d/e", "999.1.1.1", "1.2.3.4/33", "224.0.0.1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefixEntry(s)
		if err != nil {
			return
		}
		// Accepted input: the canonical form must re-parse to the same
		// prefix in both CIDR and netmask notations.
		for _, format := range []PrefixFormat{FormatCIDR, FormatNetmask} {
			out, err := FormatPrefixEntry(p, format)
			if err != nil {
				t.Fatalf("format %d of accepted %q (=%v): %v", format, s, p, err)
			}
			back, err := ParsePrefixEntry(out)
			if err != nil || back != p {
				t.Fatalf("round trip %q -> %v -> %q -> %v (%v)", s, p, out, back, err)
			}
		}
	})
}

// FuzzReadSnapshot asserts the snapshot reader never panics and errors
// cleanly on malformed input.
func FuzzReadSnapshot(f *testing.F) {
	f.Add("# name: A\n# kind: bgp\n10.0.0.0/8|x|y|1 2|z\n")
	f.Add("18.0.0.0\n128.32\n")
	f.Add("# kind: netdump\n")
	f.Add("|||||\n")
	f.Fuzz(func(t *testing.T, s string) {
		snap, err := ReadSnapshot(strings.NewReader(s))
		if err == nil && snap == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
