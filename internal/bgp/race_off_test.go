//go:build !race

package bgp

// raceEnabled reports whether the race detector is compiled in (set by
// the build-tag pair race_on_test.go / race_off_test.go).
const raceEnabled = false
