package bgp

import (
	"sort"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// Provenance records which snapshots contributed a prefix to the merged
// table. The paper tracks this to report that <1% of clients are clustered
// via network-dump prefixes, and uses origin-AS information for grouping
// proxies into proxy clusters (Section 4.1.4) and as the error-reduction
// signal of its ongoing work.
type Provenance struct {
	Sources  []string   // snapshot names, in merge order, deduplicated
	Kind     SourceKind // strongest kind seen: BGP wins over network dump
	OriginAS uint32     // origin AS of the first entry seen; 0 when unknown
}

// Merged is the paper's single, large prefix/netmask table: the union of
// every collected snapshot, unified to canonical form. Internally it keeps
// two longest-prefix-match tries so that lookups can prefer BGP-derived
// prefixes (primary) and fall back to network-dump prefixes (secondary),
// exactly the precedence Section 3.1.1 describes.
type Merged struct {
	primary   *radix.Tree[*Provenance]
	secondary *radix.Tree[*Provenance]
	// mergedNames tracks which snapshot names have already been merged per
	// class. Because snapshot names within a class are normally distinct,
	// source dedup in Add then reduces to an O(1) check of the most recent
	// source — the full scan is needed only when the same snapshot name is
	// merged twice, instead of on every entry (which made Add quadratic in
	// the number of sources per prefix across a 14-snapshot collection).
	mergedNames [2]map[string]struct{}
}

// NewMerged returns an empty merged table.
func NewMerged() *Merged {
	return &Merged{
		primary:   radix.New[*Provenance](),
		secondary: radix.New[*Provenance](),
	}
}

// Add merges every entry of snapshot s into the table, deduplicating
// prefixes and accumulating provenance.
func (m *Merged) Add(s *Snapshot) {
	tree, class := m.primary, 0
	if s.Kind == SourceNetworkDump {
		tree, class = m.secondary, 1
	}
	names := m.mergedNames[class]
	if names == nil {
		names = make(map[string]struct{})
		m.mergedNames[class] = names
	}
	_, nameSeen := names[s.Name]
	names[s.Name] = struct{}{}
	for _, e := range s.Entries {
		if prov, ok := tree.Get(e.Prefix); ok {
			// A duplicate prefix within this snapshot has just put s.Name at
			// the tail of Sources; an earlier snapshot can only have added
			// it when the name was merged before.
			n := len(prov.Sources)
			dup := n > 0 && prov.Sources[n-1] == s.Name
			if !dup && nameSeen {
				dup = containsString(prov.Sources, s.Name)
			}
			if !dup {
				prov.Sources = append(prov.Sources, s.Name)
			}
			if prov.OriginAS == 0 {
				prov.OriginAS = e.OriginAS()
			}
			continue
		}
		tree.Insert(e.Prefix, &Provenance{
			Sources:  []string{s.Name},
			Kind:     s.Kind,
			OriginAS: e.OriginAS(),
		})
	}
}

func containsString(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Len returns the number of unique prefixes across both source classes.
// Prefixes present in both a BGP table and a network dump count once per
// class here; NumUnique collapses them.
func (m *Merged) Len() int { return m.primary.Len() + m.secondary.Len() }

// NumPrimary returns the number of unique BGP-derived prefixes.
func (m *Merged) NumPrimary() int { return m.primary.Len() }

// NumSecondary returns the number of unique network-dump prefixes.
func (m *Merged) NumSecondary() int { return m.secondary.Len() }

// Match is the result of a longest-prefix lookup against the merged table.
type Match struct {
	Prefix netutil.Prefix
	Kind   SourceKind // which source class supplied the winning prefix
}

// Lookup performs the clustering lookup for addr: longest match among BGP
// prefixes first; if none matches, longest match among network-dump
// prefixes. The boolean is false when addr is unclusterable (no prefix in
// either class contains it). A match against the bare default route 0/0 is
// treated as unclusterable — a "cluster" spanning the whole Internet has no
// topological meaning.
func (m *Merged) Lookup(addr netutil.Addr) (Match, bool) {
	if p, _, ok := m.primary.Lookup(addr); ok && !p.IsZero() {
		return Match{Prefix: p, Kind: SourceBGP}, true
	}
	if p, _, ok := m.secondary.Lookup(addr); ok && !p.IsZero() {
		return Match{Prefix: p, Kind: SourceNetworkDump}, true
	}
	return Match{}, false
}

// Provenance returns the recorded provenance for exactly p, if present in
// either class (primary checked first).
func (m *Merged) Provenance(p netutil.Prefix) (*Provenance, bool) {
	if prov, ok := m.primary.Get(p); ok {
		return prov, ok
	}
	return m.secondary.Get(p)
}

// Walk visits all prefixes, primary class first, each class in ascending
// prefix order.
func (m *Merged) Walk(fn func(p netutil.Prefix, prov *Provenance) bool) {
	stopped := false
	m.primary.Walk(func(p netutil.Prefix, prov *Provenance) bool {
		if !fn(p, prov) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	m.secondary.Walk(fn)
}

// PrefixLengthHistogram counts unique prefixes per mask length across both
// classes; index i holds the count of /i prefixes. This is the data behind
// Figure 1(a).
func (m *Merged) PrefixLengthHistogram() [33]int {
	var h [33]int
	m.Walk(func(p netutil.Prefix, _ *Provenance) bool {
		h[p.Bits()]++
		return true
	})
	return h
}

// SnapshotPrefixLengthHistogram computes the same histogram for a single
// snapshot, deduplicated.
func SnapshotPrefixLengthHistogram(s *Snapshot) [33]int {
	var h [33]int
	for p := range s.PrefixSet() {
		h[p.Bits()]++
	}
	return h
}

// DynamicPrefixSet implements the paper's Section 3.4 definition: given a
// series of snapshots of the same table over a testing period, the dynamic
// prefix set is every prefix NOT present in the intersection of all of
// them, i.e. the prefixes that appeared or disappeared at least once. Its
// size is the "maximum effect" of BGP dynamics.
func DynamicPrefixSet(series []*Snapshot) map[netutil.Prefix]struct{} {
	if len(series) == 0 {
		return nil
	}
	// Count occurrences across snapshots; intersection = seen in all.
	counts := make(map[netutil.Prefix]int)
	for _, s := range series {
		for p := range s.PrefixSet() {
			counts[p]++
		}
	}
	dyn := make(map[netutil.Prefix]struct{})
	for p, c := range counts {
		if c != len(series) {
			dyn[p] = struct{}{}
		}
	}
	return dyn
}

// SortedPrefixes returns the deduplicated prefixes of s in canonical order,
// used by reports and by the aggregation pass.
func SortedPrefixes(s *Snapshot) []netutil.Prefix {
	set := s.PrefixSet()
	out := make([]netutil.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return netutil.ComparePrefix(out[i], out[j]) < 0 })
	return out
}

// Aggregate performs one round of CIDR route aggregation on a prefix set:
// whenever both halves of a parent prefix are present, they are replaced by
// the parent, repeatedly until fixpoint. Real routing tables are aggregated
// this way to stay small; the paper identifies aggregation as the main
// cause of too-large clusters, so the synthetic views use this exact pass
// to introduce that error mode deliberately.
func Aggregate(prefixes []netutil.Prefix) []netutil.Prefix {
	set := make(map[netutil.Prefix]struct{}, len(prefixes))
	for _, p := range prefixes {
		set[p] = struct{}{}
	}
	for {
		merged := false
		for p := range set {
			if p.Bits() == 0 {
				continue
			}
			sib := p.Sibling()
			if _, ok := set[sib]; !ok {
				continue
			}
			parent := p.Parent()
			delete(set, p)
			delete(set, sib)
			set[parent] = struct{}{}
			merged = true
		}
		if !merged {
			break
		}
	}
	out := make([]netutil.Prefix, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return netutil.ComparePrefix(out[i], out[j]) < 0 })
	return out
}
