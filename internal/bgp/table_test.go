package bgp

import (
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

func snap(name string, kind SourceKind, prefixes ...string) *Snapshot {
	s := &Snapshot{Name: name, Kind: kind}
	for _, p := range prefixes {
		s.Entries = append(s.Entries, Entry{Prefix: netutil.MustParsePrefix(p)})
	}
	return s
}

func TestMergedLookupPrimaryBeatsSecondary(t *testing.T) {
	m := NewMerged()
	// Network dump has a big allocation block; BGP has the routed subnets.
	m.Add(snap("ARIN", SourceNetworkDump, "12.0.0.0/8"))
	m.Add(snap("AADS", SourceBGP, "12.65.128.0/19"))

	// Inside the BGP prefix: the BGP entry must win even though it is the
	// primary/secondary split, not pure longest-match across both.
	got, ok := m.Lookup(netutil.MustParseAddr("12.65.147.94"))
	if !ok || got.Prefix.String() != "12.65.128.0/19" || got.Kind != SourceBGP {
		t.Fatalf("Lookup = %+v, ok=%v", got, ok)
	}
	// Outside any BGP prefix but inside the dump block: secondary matches.
	got, ok = m.Lookup(netutil.MustParseAddr("12.1.2.3"))
	if !ok || got.Prefix.String() != "12.0.0.0/8" || got.Kind != SourceNetworkDump {
		t.Fatalf("Lookup fallback = %+v, ok=%v", got, ok)
	}
	// Outside everything: unclusterable.
	if _, ok := m.Lookup(netutil.MustParseAddr("99.99.99.99")); ok {
		t.Fatal("unclusterable address matched")
	}
}

func TestMergedPrimaryPreferredEvenWhenShorter(t *testing.T) {
	m := NewMerged()
	m.Add(snap("NLANR", SourceNetworkDump, "12.65.128.0/24"))
	m.Add(snap("AADS", SourceBGP, "12.65.128.0/19"))
	got, ok := m.Lookup(netutil.MustParseAddr("12.65.128.5"))
	if !ok || got.Kind != SourceBGP || got.Prefix.Bits() != 19 {
		t.Fatalf("BGP source must be preferred even with shorter prefix: %+v", got)
	}
}

func TestMergedDefaultRouteUnclusterable(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "0.0.0.0/0"))
	if _, ok := m.Lookup(netutil.MustParseAddr("5.6.7.8")); ok {
		t.Fatal("match against bare default route must be unclusterable")
	}
	m.Add(snap("AADS", SourceBGP, "5.0.0.0/8"))
	if _, ok := m.Lookup(netutil.MustParseAddr("5.6.7.8")); !ok {
		t.Fatal("real prefix must cluster")
	}
}

func TestMergedProvenance(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8", "10.0.0.0/8")) // dup within snapshot
	m.Add(snap("MAE-EAST", SourceBGP, "10.0.0.0/8"))
	m.Add(snap("ARIN", SourceNetworkDump, "11.0.0.0/8"))

	prov, ok := m.Provenance(netutil.MustParsePrefix("10.0.0.0/8"))
	if !ok {
		t.Fatal("provenance missing")
	}
	if len(prov.Sources) != 2 || prov.Sources[0] != "AADS" || prov.Sources[1] != "MAE-EAST" {
		t.Fatalf("Sources = %v", prov.Sources)
	}
	if prov.Kind != SourceBGP {
		t.Fatalf("Kind = %v", prov.Kind)
	}
	prov, ok = m.Provenance(netutil.MustParsePrefix("11.0.0.0/8"))
	if !ok || prov.Kind != SourceNetworkDump {
		t.Fatalf("netdump provenance = %+v, ok=%v", prov, ok)
	}
	if _, ok := m.Provenance(netutil.MustParsePrefix("99.0.0.0/8")); ok {
		t.Fatal("absent prefix must have no provenance")
	}
	if m.NumPrimary() != 1 || m.NumSecondary() != 1 || m.Len() != 2 {
		t.Fatalf("counts: primary=%d secondary=%d len=%d", m.NumPrimary(), m.NumSecondary(), m.Len())
	}
}

func TestPrefixLengthHistogram(t *testing.T) {
	m := NewMerged()
	m.Add(snap("A", SourceBGP, "10.0.0.0/8", "10.1.0.0/16", "10.2.0.0/16", "1.2.3.0/24"))
	m.Add(snap("B", SourceNetworkDump, "11.0.0.0/8"))
	h := m.PrefixLengthHistogram()
	if h[8] != 2 || h[16] != 2 || h[24] != 1 {
		t.Fatalf("histogram = %v", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 5 {
		t.Fatalf("total = %d", total)
	}
}

func TestSnapshotPrefixLengthHistogram(t *testing.T) {
	s := snap("A", SourceBGP, "10.0.0.0/8", "10.0.0.0/8", "1.2.3.0/24")
	h := SnapshotPrefixLengthHistogram(s)
	if h[8] != 1 || h[24] != 1 {
		t.Fatalf("histogram = %v (duplicates must collapse)", h)
	}
}

func TestDynamicPrefixSet(t *testing.T) {
	day0 := snap("AADS", SourceBGP, "10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8")
	day1 := snap("AADS", SourceBGP, "10.0.0.0/8", "11.0.0.0/8", "13.0.0.0/8")
	day2 := snap("AADS", SourceBGP, "10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8", "13.0.0.0/8")
	dyn := DynamicPrefixSet([]*Snapshot{day0, day1, day2})
	// Intersection = {10/8, 11/8}; dynamic = {12/8, 13/8}.
	if len(dyn) != 2 {
		t.Fatalf("dynamic set = %v", dyn)
	}
	for _, p := range []string{"12.0.0.0/8", "13.0.0.0/8"} {
		if _, ok := dyn[netutil.MustParsePrefix(p)]; !ok {
			t.Errorf("dynamic set missing %s", p)
		}
	}
	if DynamicPrefixSet(nil) != nil {
		t.Error("empty series must yield nil")
	}
	if got := DynamicPrefixSet([]*Snapshot{day0}); len(got) != 0 {
		t.Errorf("single snapshot has empty dynamic set, got %v", got)
	}
}

func TestAggregate(t *testing.T) {
	in := []netutil.Prefix{
		netutil.MustParsePrefix("10.0.0.0/24"),
		netutil.MustParsePrefix("10.0.1.0/24"), // sibling of the above → /23
		netutil.MustParsePrefix("10.0.2.0/24"), // no sibling present
		netutil.MustParsePrefix("192.168.0.0/17"),
		netutil.MustParsePrefix("192.168.128.0/17"), // merges to /16
	}
	out := Aggregate(in)
	got := map[string]bool{}
	for _, p := range out {
		got[p.String()] = true
	}
	want := []string{"10.0.0.0/23", "10.0.2.0/24", "192.168.0.0/16"}
	if len(out) != len(want) {
		t.Fatalf("Aggregate = %v", out)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing %s in %v", w, out)
		}
	}
}

func TestAggregateCascades(t *testing.T) {
	// Four adjacent /24s must collapse all the way to a /22.
	in := []netutil.Prefix{
		netutil.MustParsePrefix("10.0.0.0/24"),
		netutil.MustParsePrefix("10.0.1.0/24"),
		netutil.MustParsePrefix("10.0.2.0/24"),
		netutil.MustParsePrefix("10.0.3.0/24"),
	}
	out := Aggregate(in)
	if len(out) != 1 || out[0].String() != "10.0.0.0/22" {
		t.Fatalf("Aggregate = %v, want single 10.0.0.0/22", out)
	}
}

func TestAggregateIdempotentAndCoversSameSpace(t *testing.T) {
	in := []netutil.Prefix{
		netutil.MustParsePrefix("10.0.0.0/24"),
		netutil.MustParsePrefix("10.0.1.0/24"),
		netutil.MustParsePrefix("172.16.0.0/12"),
	}
	once := Aggregate(in)
	twice := Aggregate(once)
	if len(once) != len(twice) {
		t.Fatalf("Aggregate not idempotent: %v vs %v", once, twice)
	}
	var before, after uint64
	for _, p := range in {
		before += p.NumAddrs()
	}
	for _, p := range once {
		after += p.NumAddrs()
	}
	if before != after {
		t.Fatalf("aggregation changed covered space: %d -> %d", before, after)
	}
}
