package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// Table snapshot codec: a versioned, checksummed, mmap-friendly on-disk
// form of Compiled. The flat int32 arrays of the frozen match structure
// are written verbatim (little-endian, 8-byte-aligned sections), so on a
// little-endian host a loader can point the table straight into a
// memory-mapped file — a clusterd restart or a joining shard node gets a
// multi-million-prefix table for the cost of a page-table setup plus one
// linear validation pass, instead of a full recompile.
//
// File layout (version 1, all fields little-endian):
//
//	header:
//	  magic      [8]byte  "NCTABLE\x00"
//	  version    uint32   1
//	  flags      uint32   reserved, 0
//	  headerLen  uint32   296 in v1
//	  headerCRC  uint32   CRC32C of the header with this field zeroed
//	  bodyCRC    uint32   CRC32C of everything after the header
//	  reserved   uint32
//	  counts     10×uint32: numNodes, numRows, liveSize, numPrimary,
//	             numSecondary, numProv, numSourceRefs, numStrings,
//	             strBytes, reserved
//	  sections   14×{offset uint64, length uint64}
//	body: the sections, each at an 8-byte-aligned offset, zero-padded
//	between; lengths are exact (computed from the counts), so a valid
//	header fully determines every section's extent — no over-reads.
//
// Sections, in file order: the match structure — children and slots
// int32 blocks, then the entry tables as parallel prefix/rank/kind
// columns — then the provenance sidecar: one row per unique prefix in
// the primary-shadows-secondary view, sorted by (addr, bits) for binary
// search, with source names in a deduplicated string table.
//
// The entry prefix column stores one 8-byte record per row: addr uint32
// at offset 0, mask bits uint8 at offset 4, three zero pad bytes. That
// is byte-for-byte the in-memory layout of netutil.Prefix on a
// little-endian host (checked at load time by a layout probe, never
// assumed), so the dominant per-row cost of a load — materializing a
// million-element prefix slice — disappears on the mmap path: the
// column is the slice.
//
// Version/compat rule: readers accept exactly one version. Any layout
// change — new section, field width, different ordering — bumps the
// version, and old readers reject new files (and vice versa) at the
// header check rather than misparsing. There is no in-place migration:
// a snapshot is a cache of a deterministic compile, so the upgrade path
// is always "recompile and re-save", never "convert".
const (
	tableMagic      = "NCTABLE\x00"
	tableVersion    = 1
	tableHeaderLen  = 296
	tableNumSection = 14
)

// Section indexes into the header's section table.
const (
	secChildren = iota
	secSlots
	secEntryPrefix
	secEntryRank
	secEntryKind
	secProvAddr
	secProvBits
	secProvClass
	secProvRecKind
	secProvAS
	secProvSrcStart
	secSourceRefs
	secStrOffsets
	secStrBytes
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// tableHeader is the decoded header plus the bounds-checked raw section
// payloads. Section slices alias the input buffer; decoders choose
// whether to copy out of them or cast in place.
type tableHeader struct {
	numNodes, numRows, liveSize int
	numPrimary, numSecondary    int
	numProv, numSourceRefs      int
	numStrings, strBytes        int
	bodyCRC                     uint32
	sec                         [tableNumSection][]byte
}

// secLengths returns the exact byte length of every section implied by
// the header counts. Keeping this a single table is what guarantees the
// writer and both readers agree on extents.
func (h *tableHeader) secLengths() [tableNumSection]uint64 {
	slots := uint64(h.numNodes) * 256
	return [tableNumSection]uint64{
		secChildren:     slots * 4,
		secSlots:        slots * 4,
		secEntryPrefix:  uint64(h.numRows) * 8,
		secEntryRank:    uint64(h.numRows) * 2,
		secEntryKind:    uint64(h.numRows),
		secProvAddr:     uint64(h.numProv) * 4,
		secProvBits:     uint64(h.numProv),
		secProvClass:    uint64(h.numProv),
		secProvRecKind:  uint64(h.numProv),
		secProvAS:       uint64(h.numProv) * 4,
		secProvSrcStart: uint64(h.numProv+1) * 4,
		secSourceRefs:   uint64(h.numSourceRefs) * 4,
		secStrOffsets:   uint64(h.numStrings+1) * 4,
		secStrBytes:     uint64(h.strBytes),
	}
}

// parseTableHeader validates everything a reader must trust before
// touching the body: magic, version, header checksum, count sanity, and
// that every section lies inside the buffer with exactly the length the
// counts imply.
func parseTableHeader(data []byte) (*tableHeader, error) {
	if len(data) < tableHeaderLen {
		return nil, fmt.Errorf("table snapshot: %d bytes, need at least the %d-byte header", len(data), tableHeaderLen)
	}
	if string(data[:8]) != tableMagic {
		return nil, fmt.Errorf("table snapshot: bad magic %q", data[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != tableVersion {
		return nil, fmt.Errorf("table snapshot: version %d, this reader handles only %d (recompile and re-save)", v, tableVersion)
	}
	if hl := le.Uint32(data[16:]); hl != tableHeaderLen {
		return nil, fmt.Errorf("table snapshot: header length %d, want %d", hl, tableHeaderLen)
	}
	var hdr [tableHeaderLen]byte
	copy(hdr[:], data[:tableHeaderLen])
	le.PutUint32(hdr[20:], 0) // headerCRC field is zeroed during the sum
	if got, want := crc32.Checksum(hdr[:], crcTable), le.Uint32(data[20:]); got != want {
		return nil, fmt.Errorf("table snapshot: header checksum mismatch (got %08x, stored %08x)", got, want)
	}

	h := &tableHeader{bodyCRC: le.Uint32(data[24:])}
	counts := []*int{
		&h.numNodes, &h.numRows, &h.liveSize, &h.numPrimary, &h.numSecondary,
		&h.numProv, &h.numSourceRefs, &h.numStrings, &h.strBytes,
	}
	for i, dst := range counts {
		v := le.Uint32(data[32+4*i:])
		if v > 1<<31-1 {
			return nil, fmt.Errorf("table snapshot: count %d out of range (%d)", i, v)
		}
		*dst = int(v)
	}
	if h.numNodes < 1 || h.numNodes > (1<<31-1)/256 {
		return nil, fmt.Errorf("table snapshot: node count %d out of range", h.numNodes)
	}

	want := h.secLengths()
	for i := 0; i < tableNumSection; i++ {
		off := le.Uint64(data[72+16*i:])
		length := le.Uint64(data[72+16*i+8:])
		if length != want[i] {
			return nil, fmt.Errorf("table snapshot: section %d length %d, counts imply %d", i, length, want[i])
		}
		if off%8 != 0 || off < tableHeaderLen || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("table snapshot: section %d [%d,+%d) outside %d-byte file", i, off, length, len(data))
		}
		h.sec[i] = data[off : off+length : off+length]
	}
	return h, nil
}

// u32At / i32At / i16At read the i-th element of a little-endian column.
func u32At(b []byte, i int) uint32 { return binary.LittleEndian.Uint32(b[i*4:]) }
func i16At(b []byte, i int) int16  { return int16(binary.LittleEndian.Uint16(b[i*2:])) }

// buildEntries decodes (and validates) the entry columns into the slice
// forms the frozen table wants — the strict loader's element-wise path.
// The zero-copy loader replaces it with in-place casts of the same
// sections (see tablefile_zerocopy.go); corrupt entry content there is
// caught by the full-integrity tools, not the boot path.
func buildEntries(h *tableHeader) (prefixes []netutil.Prefix, values []compiledValue, err error) {
	recs, kinds := h.sec[secEntryPrefix], h.sec[secEntryKind]
	prefixes = make([]netutil.Prefix, h.numRows)
	values = make([]compiledValue, h.numRows)
	for i := 0; i < h.numRows; i++ {
		rec := recs[i*8 : i*8+8]
		a, b := binary.LittleEndian.Uint32(rec), int(rec[4])
		if b > 32 || a&^uint32(netutil.MaskOf(b)) != 0 {
			return nil, nil, fmt.Errorf("table snapshot: entry row %d: invalid prefix %08x/%d", i, a, b)
		}
		if rec[5]|rec[6]|rec[7] != 0 {
			return nil, nil, fmt.Errorf("table snapshot: entry row %d: nonzero prefix padding", i)
		}
		if kinds[i] > 1 {
			return nil, nil, fmt.Errorf("table snapshot: entry row %d: unknown source kind %d", i, kinds[i])
		}
		prefixes[i] = netutil.PrefixFrom(netutil.Addr(a), b)
		values[i] = compiledValue{kind: SourceKind(kinds[i])}
	}
	return prefixes, values, nil
}

// buildSnapTable wraps the provenance sidecar's columns. The byte-column
// slices alias the file buffer on both load paths (they are already in
// their in-memory form); u32 columns are materialized by the
// caller-provided loader. No content validation happens here — the
// strict loader follows up with validateSnapTable, while the mmap path
// skips it and relies on the accessors' bounds guards instead, so a
// million-row sidecar costs nothing at load and a corrupt one degrades
// to wrong-but-safe provenance answers rather than a slow boot.
func buildSnapTable(h *tableHeader, u32col func(sec int, n int) ([]uint32, error)) (*snapTable, error) {
	s := &snapTable{
		bits:    h.sec[secProvBits],
		class:   h.sec[secProvClass],
		recKind: h.sec[secProvRecKind],
		strData: h.sec[secStrBytes],
	}
	var err error
	if s.addr, err = u32col(secProvAddr, h.numProv); err != nil {
		return nil, err
	}
	if s.originAS, err = u32col(secProvAS, h.numProv); err != nil {
		return nil, err
	}
	if s.srcStart, err = u32col(secProvSrcStart, h.numProv+1); err != nil {
		return nil, err
	}
	if s.srcRefs, err = u32col(secSourceRefs, h.numSourceRefs); err != nil {
		return nil, err
	}
	if s.strOff, err = u32col(secStrOffsets, h.numStrings+1); err != nil {
		return nil, err
	}
	return s, nil
}

// validateSnapTable is the full content check of the provenance sidecar:
// canonical sorted prefixes, known class/kind codes, and monotonic
// source-ref and string indexes that span exactly their tables. The
// strict loader (ReadTable, and therefore VerifyTable and the fuzz
// target) runs it; the mmap boot path defers it to the guarded
// accessors.
func validateSnapTable(h *tableHeader, s *snapTable) error {
	for i := 0; i < h.numProv; i++ {
		b := int(s.bits[i])
		if b > 32 || s.addr[i]&^uint32(netutil.MaskOf(b)) != 0 {
			return fmt.Errorf("table snapshot: provenance row %d: invalid prefix %08x/%d", i, s.addr[i], b)
		}
		if s.class[i] > 1 || s.recKind[i] > 1 {
			return fmt.Errorf("table snapshot: provenance row %d: unknown class/kind", i)
		}
		if i > 0 && !provRowOrdered(s.addr[i-1], s.bits[i-1], s.class[i-1], s.addr[i], s.bits[i], s.class[i]) {
			return fmt.Errorf("table snapshot: provenance rows %d/%d out of order", i-1, i)
		}
	}
	if s.srcStart[0] != 0 || s.srcStart[h.numProv] != uint32(h.numSourceRefs) {
		return fmt.Errorf("table snapshot: source-ref index does not span the ref table")
	}
	for i := 0; i < h.numProv; i++ {
		if s.srcStart[i] > s.srcStart[i+1] {
			return fmt.Errorf("table snapshot: source-ref index decreases at row %d", i)
		}
	}
	for i, r := range s.srcRefs {
		if r >= uint32(h.numStrings) {
			return fmt.Errorf("table snapshot: source ref %d points past the %d-entry string table", i, h.numStrings)
		}
	}
	if s.strOff[0] != 0 || s.strOff[h.numStrings] != uint32(h.strBytes) {
		return fmt.Errorf("table snapshot: string-offset index does not span the string table")
	}
	for i := 0; i < h.numStrings; i++ {
		if s.strOff[i] > s.strOff[i+1] {
			return fmt.Errorf("table snapshot: string offsets decrease at %d", i)
		}
	}
	return nil
}

func provRowLess(a1 uint32, b1 byte, a2 uint32, b2 byte) bool {
	return a1 < a2 || (a1 == a2 && b1 < b2)
}

// provRowOrdered is the strict row order of the provenance section:
// (addr, bits, class) ascending. Class is the tiebreak — a dual-class
// prefix stores two rows, primary first, so find()'s first hit is the
// primary record.
func provRowOrdered(a1 uint32, b1, c1 byte, a2 uint32, b2, c2 byte) bool {
	return provRowLess(a1, b1, a2, b2) || (a1 == a2 && b1 == b2 && c1 < c2)
}

// assembleCompiled finishes either load path once the arrays exist.
func assembleCompiled(h *tableHeader, children, slots []int32, prefixes []netutil.Prefix, ranks []int16, values []compiledValue, snap *snapTable) (*Compiled, error) {
	frozen, err := radix.NewFrozen(children, slots, prefixes, ranks, values, h.liveSize)
	if err != nil {
		return nil, fmt.Errorf("table snapshot: %w", err)
	}
	c := &Compiled{
		frozen:       frozen,
		snap:         snap,
		numPrimary:   h.numPrimary,
		numSecondary: h.numSecondary,
	}
	compiledPrefixes.Set(int64(c.Len()))
	compiledNodes.Set(int64(frozen.NumNodes()))
	return c, nil
}

// ReadTable decodes a table snapshot from memory with no unsafe tricks:
// every multi-byte column is copied out element-wise through
// encoding/binary, so it works on any architecture and any alignment.
// The full body checksum is verified first, making this the
// strict/portable loader (and the fuzzing surface). For the fast path
// over a file, use OpenTable.
func ReadTable(data []byte) (*Compiled, error) {
	h, err := parseTableHeader(data)
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(data[tableHeaderLen:], crcTable); got != h.bodyCRC {
		return nil, fmt.Errorf("table snapshot: body checksum mismatch (got %08x, stored %08x)", got, h.bodyCRC)
	}

	copyI32 := func(sec int, n int) []int32 {
		b := h.sec[sec]
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(u32At(b, i))
		}
		return out
	}
	nSlots := h.numNodes * 256
	children := copyI32(secChildren, nSlots)
	slots := copyI32(secSlots, nSlots)
	ranks := make([]int16, h.numRows)
	for i := range ranks {
		ranks[i] = i16At(h.sec[secEntryRank], i)
	}
	prefixes, values, err := buildEntries(h)
	if err != nil {
		return nil, err
	}
	snap, err := buildSnapTable(h, func(sec int, n int) ([]uint32, error) {
		b := h.sec[sec]
		out := make([]uint32, n)
		for i := range out {
			out[i] = u32At(b, i)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	if err := validateSnapTable(h, snap); err != nil {
		return nil, err
	}
	return assembleCompiled(h, children, slots, prefixes, ranks, values, snap)
}

// MarshalTable serializes c into the snapshot format. The resulting
// bytes round-trip through ReadTable/OpenTable to a table whose lookups
// and provenance answers are identical to c's at the time of the call
// (a table published by an Incremental is captured as of now — later
// deltas do not appear in the snapshot).
func MarshalTable(c *Compiled) ([]byte, error) {
	children, slots, prefixes, ranks, values, size := c.frozen.Raw()
	rows := provRowsOf(c)

	// String table: source names deduplicated in first-seen order.
	strIndex := make(map[string]uint32)
	var strings []string
	strBytes := 0
	numRefs := 0
	for _, r := range rows {
		numRefs += len(r.sources)
		for _, s := range r.sources {
			if _, ok := strIndex[s]; !ok {
				strIndex[s] = uint32(len(strings))
				strings = append(strings, s)
				strBytes += len(s)
			}
		}
	}

	h := &tableHeader{
		numNodes:      len(children) / 256,
		numRows:       len(prefixes),
		liveSize:      size,
		numPrimary:    c.numPrimary,
		numSecondary:  c.numSecondary,
		numProv:       len(rows),
		numSourceRefs: numRefs,
		numStrings:    len(strings),
		strBytes:      strBytes,
	}
	lengths := h.secLengths()
	offsets := [tableNumSection]uint64{}
	pos := uint64(tableHeaderLen)
	for i, l := range lengths {
		offsets[i] = pos
		pos += (l + 7) &^ 7
	}
	buf := make([]byte, pos)
	le := binary.LittleEndian

	put32 := func(sec int, i int, v uint32) { le.PutUint32(buf[offsets[sec]+uint64(i)*4:], v) }
	for i, v := range children {
		put32(secChildren, i, uint32(v))
	}
	for i, v := range slots {
		put32(secSlots, i, uint32(v))
	}
	for i, p := range prefixes {
		// The 8-byte prefix record: addr, bits, three zero pads (buf is
		// zero-initialized, so the pads need no explicit writes).
		le.PutUint32(buf[offsets[secEntryPrefix]+uint64(i)*8:], uint32(p.Addr()))
		buf[offsets[secEntryPrefix]+uint64(i)*8+4] = byte(p.Bits())
		le.PutUint16(buf[offsets[secEntryRank]+uint64(i)*2:], uint16(ranks[i]))
		buf[offsets[secEntryKind]+uint64(i)] = byte(values[i].kind)
	}
	ref := 0
	for i, r := range rows {
		put32(secProvAddr, i, uint32(r.p.Addr()))
		buf[offsets[secProvBits]+uint64(i)] = byte(r.p.Bits())
		buf[offsets[secProvClass]+uint64(i)] = r.class
		buf[offsets[secProvRecKind]+uint64(i)] = byte(r.kind)
		put32(secProvAS, i, r.originAS)
		put32(secProvSrcStart, i, uint32(ref))
		for _, s := range r.sources {
			put32(secSourceRefs, ref, strIndex[s])
			ref++
		}
	}
	put32(secProvSrcStart, len(rows), uint32(ref))
	sb := 0
	for i, s := range strings {
		put32(secStrOffsets, i, uint32(sb))
		copy(buf[offsets[secStrBytes]+uint64(sb):], s)
		sb += len(s)
	}
	put32(secStrOffsets, len(strings), uint32(sb))

	// Header: counts and section table first, then the checksums.
	copy(buf, tableMagic)
	le.PutUint32(buf[8:], tableVersion)
	le.PutUint32(buf[12:], 0) // flags
	le.PutUint32(buf[16:], tableHeaderLen)
	counts := []int{
		h.numNodes, h.numRows, h.liveSize, h.numPrimary, h.numSecondary,
		h.numProv, h.numSourceRefs, h.numStrings, h.strBytes, 0,
	}
	for i, v := range counts {
		le.PutUint32(buf[32+4*i:], uint32(v))
	}
	for i := 0; i < tableNumSection; i++ {
		le.PutUint64(buf[72+16*i:], offsets[i])
		le.PutUint64(buf[72+16*i+8:], lengths[i])
	}
	le.PutUint32(buf[24:], crc32.Checksum(buf[tableHeaderLen:], crcTable)) // bodyCRC
	le.PutUint32(buf[20:], 0)
	le.PutUint32(buf[20:], crc32.Checksum(buf[:tableHeaderLen], crcTable)) // headerCRC
	return buf, nil
}

// SaveTable writes c's snapshot to path atomically (temp file + rename
// in the destination directory), so a crashed save never leaves a
// half-written table where a boot path will find it.
func SaveTable(path string, c *Compiled) error {
	data, err := MarshalTable(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".nctable-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// provRow is the marshaling view of one provenance record.
type provRow struct {
	p        netutil.Prefix
	class    byte // 0 primary, 1 secondary — decides KindOf
	kind     SourceKind
	originAS uint32
	sources  []string
}

// provRowsOf flattens c's provenance store — whichever backend it has —
// into one row per (prefix, class), sorted by (addr, bits, class). A
// prefix present in both source classes yields two adjacent rows with
// the primary first, so exact-prefix queries (which take the first hit)
// keep the prefer-primary semantics while a warm start can reconstruct
// the full per-class entry set — including secondary entries shadowed
// by a same-prefix primary, which a single-row view would lose.
func provRowsOf(c *Compiled) []provRow {
	var rows []provRow
	switch {
	case c.inc != nil:
		c.inc.mu.RLock()
		for class := byte(0); class <= 1; class++ {
			for p, pv := range c.inc.prov[class] {
				rows = append(rows, provRow{p, class, pv.Kind, pv.OriginAS, pv.Sources})
			}
		}
		c.inc.mu.RUnlock()
	case c.snap != nil:
		s := c.snap
		rows = make([]provRow, len(s.addr))
		for i := range s.addr {
			rows[i] = provRow{
				p:        netutil.PrefixFrom(netutil.Addr(s.addr[i]), int(s.bits[i])),
				class:    s.class[i],
				kind:     SourceKind(s.recKind[i]),
				originAS: s.originAS[i],
				sources:  s.sources(i),
			}
		}
		return rows // already sorted
	default:
		for p, pv := range c.prov {
			class := byte(1)
			if c.kinds[p] == SourceBGP {
				class = 0
			}
			rows = append(rows, provRow{p, class, pv.Kind, pv.OriginAS, pv.Sources})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return provRowOrdered(uint32(rows[i].p.Addr()), byte(rows[i].p.Bits()), rows[i].class,
			uint32(rows[j].p.Addr()), byte(rows[j].p.Bits()), rows[j].class)
	})
	return rows
}

// snapTable serves exact-prefix provenance queries for a loaded table by
// binary search over the sorted on-disk columns — which may alias a
// memory-mapped file, so a query touches only the pages it needs.
// Provenance records are built per call: snapshot provenance is the cold
// path (reports, debugging), and staying lazy keeps load time inside the
// milliseconds budget.
//
// On the mmap path the column *content* is unvalidated (only the column
// extents are header-checked), so every accessor that follows an index
// stored in the file bounds-checks it before use: corrupt sidecar bytes
// may yield wrong or missing provenance, never a panic or an over-read.
type snapTable struct {
	addr     []uint32
	bits     []byte
	class    []byte
	recKind  []byte
	originAS []uint32
	srcStart []uint32
	srcRefs  []uint32
	strOff   []uint32
	strData  []byte
}

func (s *snapTable) find(p netutil.Prefix) (int, bool) {
	a, b := uint32(p.Addr()), byte(p.Bits())
	i := sort.Search(len(s.addr), func(i int) bool {
		return !provRowLess(s.addr[i], s.bits[i], a, b)
	})
	if i < len(s.addr) && s.addr[i] == a && s.bits[i] == b {
		return i, true
	}
	return 0, false
}

func (s *snapTable) sources(i int) []string {
	lo, hi := s.srcStart[i], s.srcStart[i+1]
	if lo >= hi || hi > uint32(len(s.srcRefs)) {
		return nil
	}
	out := make([]string, 0, hi-lo)
	for _, ref := range s.srcRefs[lo:hi] {
		if ref+1 >= uint32(len(s.strOff)) {
			continue
		}
		o1, o2 := s.strOff[ref], s.strOff[ref+1]
		if o1 > o2 || o2 > uint32(len(s.strData)) {
			continue
		}
		out = append(out, string(s.strData[o1:o2]))
	}
	return out
}

func (s *snapTable) provenance(p netutil.Prefix) (*Provenance, bool) {
	i, ok := s.find(p)
	if !ok {
		return nil, false
	}
	return &Provenance{
		Sources:  s.sources(i),
		Kind:     SourceKind(s.recKind[i]),
		OriginAS: s.originAS[i],
	}, true
}

func (s *snapTable) kindOf(p netutil.Prefix) (SourceKind, bool) {
	i, ok := s.find(p)
	if !ok {
		return SourceBGP, false
	}
	if s.class[i] == 0 {
		return SourceBGP, true
	}
	return SourceNetworkDump, true
}

// TableFile is an open table snapshot. When the load took the mmap fast
// path, the table's arrays alias the mapping: the TableFile must be kept
// alive (and not Closed) for as long as the table is in use.
type TableFile struct {
	c      *Compiled
	unmap  func() error
	mapped bool
}

// Table returns the loaded table.
func (t *TableFile) Table() *Compiled { return t.c }

// Mapped reports whether the table aliases a memory-mapped file (the
// zero-copy fast path) rather than heap copies.
func (t *TableFile) Mapped() bool { return t.mapped }

// Close releases the file mapping, if any. The table is invalid after
// Close on a mapped file — any further lookup may fault.
func (t *TableFile) Close() error {
	t.c = nil
	if t.unmap != nil {
		u := t.unmap
		t.unmap = nil
		return u()
	}
	return nil
}

// OpenTable loads a table snapshot from path, preferring the zero-copy
// path: the file is memory-mapped and the int32/int16 columns of the
// match structure are used in place (little-endian hosts only — the
// format is defined little-endian). The mmap path verifies the header
// checksum and every structural invariant the lookup walk relies on,
// but skips the full-body CRC so loading a multi-million-prefix table
// stays in single-digit milliseconds; `tabletool verify` and ReadTable
// do the full integrity check. Hosts or builds without mmap fall back
// to the copying loader transparently.
func OpenTable(path string) (*TableFile, error) {
	if data, unmap, err := mapFile(path); err == nil {
		c, derr := loadMapped(data)
		if derr == nil {
			return &TableFile{c: c, unmap: unmap, mapped: true}, nil
		}
		unmap()
		// A structurally invalid file is invalid on any path: report it
		// rather than re-reading it just to fail again. Only a host that
		// cannot alias the bytes (endianness/alignment) falls through.
		if !errors.Is(derr, errNoZeroCopy) {
			return nil, derr
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := ReadTable(data)
	if err != nil {
		return nil, err
	}
	return &TableFile{c: c}, nil
}

// VerifyTable runs the full integrity check on a snapshot in memory:
// header and body checksums plus every structural validation, by way of
// the portable loader. It returns the loaded table so callers (the
// tabletool verify subcommand) can continue with semantic spot checks.
func VerifyTable(data []byte) (*Compiled, error) {
	return ReadTable(data)
}
