package bgp

import (
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// fuzzSeedTable builds a small but fully featured snapshot: both source
// classes, a shared prefix, a default route, multi-source provenance.
func fuzzSeedTable() []byte {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8", "12.65.128.0/19"))
	m.Add(snap("MAE", SourceBGP, "12.65.128.0/19"))
	m.Add(snap("ARIN", SourceNetworkDump, "10.0.0.0/8", "0.0.0.0/0"))
	data, err := MarshalTable(m.Compile())
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzReadTable hammers the snapshot loader: truncated, bit-flipped,
// version-skewed or wholly synthetic inputs must produce a clean error —
// never a panic, never an over-read. Anything the loader does accept
// must behave as a table: lookups on probe addresses cannot fault, and
// the accepted table must survive a marshal round trip.
func FuzzReadTable(f *testing.F) {
	seed := fuzzSeedTable()
	f.Add(seed)
	f.Add(seed[:0])
	f.Add(seed[:7])
	f.Add(seed[:tableHeaderLen-1])
	f.Add(seed[:tableHeaderLen])
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(seed)-1])
	for _, i := range []int{0, 8, 16, 20, 24, 32, 72, tableHeaderLen, len(seed) - 1} {
		mut := append([]byte(nil), seed...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	verskew := append([]byte(nil), seed...)
	verskew[8] = 2
	f.Add(verskew)
	f.Add([]byte("NCTABLE\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadTable(data)
		if err != nil {
			return
		}
		// Accepted: the table must be fully usable.
		for _, ip := range []string{"10.1.2.3", "12.65.147.94", "255.255.255.255", "0.0.0.0"} {
			a := netutil.MustParseAddr(ip)
			if m, ok := c.Lookup(a); ok && m.Prefix.IsZero() {
				t.Fatalf("Lookup(%s) returned ok with zero prefix", ip)
			}
			c.Provenance(netutil.PrefixFrom(a, 32))
		}
		if _, err := MarshalTable(c); err != nil {
			t.Fatalf("accepted table failed to marshal: %v", err)
		}
	})
}
