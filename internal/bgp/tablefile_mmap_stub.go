//go:build !unix

package bgp

// mapFile on platforms without a wired-up mmap: always report
// unavailability so OpenTable takes the portable copying loader.
func mapFile(path string) ([]byte, func() error, error) {
	return nil, nil, errNoZeroCopy
}
