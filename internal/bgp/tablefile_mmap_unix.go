//go:build unix

package bgp

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned cleanup unmaps; the
// bytes must not be used after it runs.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("table snapshot %s: un-mappable size %d", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
