package bgp

import (
	"math/rand"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/netutil"
)

// TestSnapshotLoadMillionPrefixes is the load-time acceptance bar: a
// snapshot holding over a million prefixes — the dense /16 sweep plus
// /24 fill that stresses the entry tables far beyond 1999 table sizes —
// must open in under 10 ms (best of several attempts, to dodge cold
// page-cache noise) and answer lookups identically to the table it was
// saved from. The bound is what makes snapshot boot qualitatively
// different from merge+compile, which takes seconds at this scale.
func TestSnapshotLoadMillionPrefixes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and compiles a >1M-prefix table")
	}
	if raceEnabled {
		t.Skip("timing bound is a claim about production builds")
	}

	s := &Snapshot{Name: "dense", Kind: SourceBGP}
	// Every /16: 65,536 prefixes.
	for hi := 0; hi < 256; hi++ {
		for mid := 0; mid < 256; mid++ {
			s.Entries = append(s.Entries, Entry{
				Prefix: netutil.PrefixFrom(netutil.AddrFrom4(byte(hi), byte(mid), 0, 0), 16),
			})
		}
	}
	// Every /24 under 1.0.0.0/8 through 15.0.0.0/8: 983,040 prefixes.
	for hi := 1; hi <= 15; hi++ {
		for mid := 0; mid < 256; mid++ {
			for lo := 0; lo < 256; lo++ {
				s.Entries = append(s.Entries, Entry{
					Prefix: netutil.PrefixFrom(netutil.AddrFrom4(byte(hi), byte(mid), byte(lo), 0), 24),
				})
			}
		}
	}
	m := NewMerged()
	m.Add(s)
	c := m.Compile()
	if c.Len() < 1_000_000 {
		t.Fatalf("fixture holds %d prefixes, want >= 1M", c.Len())
	}

	path := t.TempDir() + "/dense.nct"
	if err := SaveTable(path, c); err != nil {
		t.Fatal(err)
	}

	best := time.Duration(1 << 62)
	var loaded *Compiled
	for i := 0; i < 5; i++ {
		start := time.Now()
		tf, err := OpenTable(path)
		if err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		if d < best {
			best = d
		}
		loaded = tf.Table()
		if i < 4 {
			tf.Close()
		} else {
			defer tf.Close()
		}
	}
	t.Logf("best load of %d prefixes: %v", c.Len(), best)
	if best > 10*time.Millisecond {
		t.Errorf("loading a %d-prefix snapshot took %v, want < 10ms", c.Len(), best)
	}

	rng := rand.New(rand.NewSource(1_000_000))
	probes := make([]netutil.Addr, 0, 20000)
	for i := 0; i < 20000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	// Boundary addresses of the densest region.
	probes = append(probes,
		netutil.AddrFrom4(1, 0, 0, 0), netutil.AddrFrom4(15, 255, 255, 255),
		netutil.AddrFrom4(16, 0, 0, 0), netutil.AddrFrom4(0, 255, 255, 255))
	for _, a := range probes {
		wm, wok := c.Lookup(a)
		gm, gok := loaded.Lookup(a)
		if wok != gok || wm != gm {
			t.Fatalf("lookup(%v): loaded %+v %v, original %+v %v", a, gm, gok, wm, wok)
		}
	}
}
