package bgp

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// boundaryProbes returns the decision-flipping address set for a merged
// table: first/last (±1) of every /0–/32 enclosing block of every
// stored prefix — the same family the radix property tests use.
func boundaryProbes(m *Merged) []netutil.Addr {
	var probes []netutil.Addr
	seen := make(map[netutil.Addr]struct{})
	add := func(a netutil.Addr) {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			probes = append(probes, a)
		}
	}
	m.Walk(func(p netutil.Prefix, _ *Provenance) bool {
		for bits := 0; bits <= 32; bits++ {
			q := netutil.PrefixFrom(p.Addr()&netutil.Addr(netutil.MaskOf(bits)), bits)
			add(q.First())
			add(q.Last())
			add(q.First() - 1)
			add(q.Last() + 1)
		}
		return true
	})
	return probes
}

// requireTableEquivalent asserts got answers every lookup, provenance
// and kind query identically to want, probing every boundary address.
func requireTableEquivalent(t *testing.T, m *Merged, want, got *Compiled) {
	t.Helper()
	if got.Len() != want.Len() || got.NumPrimary() != want.NumPrimary() ||
		got.NumSecondary() != want.NumSecondary() || got.NumNodes() != want.NumNodes() {
		t.Fatalf("shape: got %d/%d/%d nodes=%d, want %d/%d/%d nodes=%d",
			got.Len(), got.NumPrimary(), got.NumSecondary(), got.NumNodes(),
			want.Len(), want.NumPrimary(), want.NumSecondary(), want.NumNodes())
	}
	for _, a := range boundaryProbes(m) {
		wm, wok := want.Lookup(a)
		gm, gok := got.Lookup(a)
		if wok != gok || wm != gm {
			t.Fatalf("Lookup(%v): loaded (%+v,%v), fresh (%+v,%v)", a, gm, gok, wm, wok)
		}
	}
	m.Walk(func(p netutil.Prefix, _ *Provenance) bool {
		wp, wok := want.Provenance(p)
		gp, gok := got.Provenance(p)
		if wok != gok {
			t.Fatalf("Provenance(%v): loaded ok=%v, fresh ok=%v", p, gok, wok)
		}
		if wok && !reflect.DeepEqual(*wp, *gp) {
			t.Fatalf("Provenance(%v): loaded %+v, fresh %+v", p, *gp, *wp)
		}
		wk, wkok := want.KindOf(p)
		gk, gkok := got.KindOf(p)
		if wkok != gkok || wk != gk {
			t.Fatalf("KindOf(%v): loaded (%v,%v), fresh (%v,%v)", p, gk, gkok, wk, wkok)
		}
		return true
	})
}

func randomMerged(rng *rand.Rand, n int) *Merged {
	m := NewMerged()
	primary := &Snapshot{Name: "P", Kind: SourceBGP}
	alt := &Snapshot{Name: "P2", Kind: SourceBGP}
	secondary := &Snapshot{Name: "S", Kind: SourceNetworkDump}
	for i := 0; i < n; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		e := Entry{Prefix: p, ASPath: []uint32{uint32(rng.Intn(65000) + 1)}}
		primary.Entries = append(primary.Entries, e)
		if rng.Intn(3) == 0 {
			alt.Entries = append(alt.Entries, e)
		}
		if rng.Intn(4) == 0 {
			secondary.Entries = append(secondary.Entries, Entry{Prefix: p})
		}
	}
	for i := 0; i < n; i++ {
		p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), rng.Intn(33))
		secondary.Entries = append(secondary.Entries, Entry{Prefix: p})
	}
	m.Add(primary)
	m.Add(alt)
	m.Add(secondary)
	return m
}

// TestTableRoundTripProperty is the snapshot codec's equivalence
// property: marshal → load (both loaders) must yield a table that
// answers identically to the in-memory original on every /0–/32
// boundary address, and with identical provenance for every prefix.
func TestTableRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 3; trial++ {
		m := randomMerged(rng, 500+rng.Intn(1500))
		c := m.Compile()
		data, err := MarshalTable(c)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}

		loaded, err := ReadTable(data)
		if err != nil {
			t.Fatalf("trial %d: ReadTable: %v", trial, err)
		}
		requireTableEquivalent(t, m, c, loaded)

		path := filepath.Join(t.TempDir(), "table.nct")
		if err := SaveTable(path, c); err != nil {
			t.Fatalf("trial %d: save: %v", trial, err)
		}
		tf, err := OpenTable(path)
		if err != nil {
			t.Fatalf("trial %d: open: %v", trial, err)
		}
		requireTableEquivalent(t, m, c, tf.Table())

		// A loaded table must marshal back to the identical bytes: the
		// format has exactly one encoding of a given table.
		again, err := MarshalTable(tf.Table())
		if err != nil {
			t.Fatalf("trial %d: re-marshal: %v", trial, err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("trial %d: re-marshal of loaded table differs (%d vs %d bytes)", trial, len(data), len(again))
		}
		if err := tf.Close(); err != nil {
			t.Fatalf("trial %d: close: %v", trial, err)
		}
	}
}

// TestTableRoundTripIncremental saves a generation published by the
// incremental compiler (dead rows and all) and checks the loaded table
// freezes the same point-in-time view.
func TestTableRoundTripIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMerged(rng, 800)
	inc := NewIncremental(m)
	var gen *Compiled
	for i := 0; i < 20; i++ {
		d := Delta{Source: "churn"}
		for j := 0; j < 50; j++ {
			p := netutil.PrefixFrom(netutil.Addr(rng.Uint32()), 8+rng.Intn(25))
			d.Ops = append(d.Ops, Op{
				Withdraw: rng.Intn(3) == 0,
				Kind:     SourceBGP,
				Entry:    Entry{Prefix: p, ASPath: []uint32{77}},
			})
		}
		gen = inc.Apply(d)
	}

	data, err := MarshalTable(gen)
	if err != nil {
		t.Fatalf("marshal incremental generation: %v", err)
	}
	loaded, err := ReadTable(data)
	if err != nil {
		t.Fatalf("load incremental generation: %v", err)
	}
	// Probe boundaries of the original table plus random addresses; the
	// loaded snapshot must match the pinned generation (not the live
	// store, which later deltas would move).
	probes := boundaryProbes(m)
	for i := 0; i < 20000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	for _, a := range probes {
		wm, wok := gen.Lookup(a)
		gm, gok := loaded.Lookup(a)
		if wok != gok || wm != gm {
			t.Fatalf("Lookup(%v): loaded (%+v,%v), generation (%+v,%v)", a, gm, gok, wm, wok)
		}
	}
	if loaded.Len() != gen.Len() {
		t.Fatalf("Len: loaded %d, generation %d", loaded.Len(), gen.Len())
	}
}

// TestCompiledLookupBatch checks the public batch API end to end: exact
// agreement with Lookup including the zero-Match miss convention, and
// zero allocations on the reuse path.
func TestCompiledLookupBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	m := randomMerged(rng, 1200)
	c := m.Compile()
	probes := boundaryProbes(m)
	for i := 0; i < 10000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}

	dst := c.LookupBatch(probes, nil)
	for i, a := range probes {
		wm, wok := c.Lookup(a)
		if !wok {
			if !dst[i].Prefix.IsZero() {
				t.Fatalf("probe %v: batch %+v, sequential miss", a, dst[i])
			}
			continue
		}
		if dst[i] != wm {
			t.Fatalf("probe %v: batch %+v, sequential %+v", a, dst[i], wm)
		}
	}

	if raceEnabled {
		// The race detector randomly drops sync.Pool items, so the
		// zero-allocation contract cannot be asserted under -race.
		return
	}
	allocs := testing.AllocsPerRun(10, func() {
		dst = c.LookupBatch(probes, dst)
	})
	if allocs != 0 {
		t.Fatalf("reuse path allocated %.1f times per batch, want 0", allocs)
	}
}

// TestTableCorruptionRejected flips, truncates and version-skews a valid
// snapshot and demands a clean error from both loaders every time.
func TestTableCorruptionRejected(t *testing.T) {
	m := NewMerged()
	m.Add(snap("AADS", SourceBGP, "10.0.0.0/8", "12.65.128.0/19", "24.48.2.0/23"))
	m.Add(snap("ARIN", SourceNetworkDump, "12.0.0.0/8", "0.0.0.0/0"))
	c := m.Compile()
	data, err := MarshalTable(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTable(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	dir := t.TempDir()
	tryOpen := func(name string, mut []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if tf, err := OpenTable(path); err == nil {
			// The mmap path skips the body CRC by design, so a flipped
			// body byte may load — but only into a structurally valid
			// table that cannot panic. Exercise it.
			tf.Table().Lookup(netutil.MustParseAddr("12.65.147.94"))
			tf.Close()
		}
	}

	// Truncations at every interesting boundary.
	for _, n := range []int{0, 7, 8, tableHeaderLen - 1, tableHeaderLen, len(data) / 2, len(data) - 1} {
		if _, err := ReadTable(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
		tryOpen("trunc.nct", data[:n])
	}
	// Every header byte flipped, one at a time: must never panic, and
	// flips inside the checksummed region must be rejected.
	for i := 0; i < tableHeaderLen; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := ReadTable(mut); err == nil {
			t.Fatalf("header flip at %d accepted", i)
		}
		tryOpen("hdrflip.nct", mut)
	}
	// A sampling of body flips: the strict loader must catch all of them
	// via the body CRC.
	for i := tableHeaderLen; i < len(data); i += 97 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := ReadTable(mut); err == nil {
			t.Fatalf("body flip at %d accepted by strict loader", i)
		}
		tryOpen("bodyflip.nct", mut)
	}
	// Version skew with a recomputed checksum: rejected by the version
	// check itself, not the CRC.
	mut := append([]byte(nil), data...)
	mut[8] = 2
	if _, err := ReadTable(mut); err == nil {
		t.Fatal("version-skewed snapshot accepted")
	}
}

// TestSaveTableAtomic checks the crash-safety contract: saving over an
// existing snapshot either leaves the old bytes or the new, never a
// blend, and the temp file is cleaned up.
func TestSaveTableAtomic(t *testing.T) {
	m := NewMerged()
	m.Add(snap("A", SourceBGP, "10.0.0.0/8"))
	c := m.Compile()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.nct")
	if err := SaveTable(path, c); err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(path, c); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files after save: %v", entries)
	}
	if _, err := OpenTable(path); err != nil {
		t.Fatalf("saved table unreadable: %v", err)
	}
}
