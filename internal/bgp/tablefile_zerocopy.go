package bgp

import (
	"encoding/binary"
	"errors"
	"unsafe"

	"github.com/netaware/netcluster/internal/netutil"
)

// The zero-copy loader: reinterpret the mmap'd file's little-endian
// columns as live Go slices. All unsafe in the codec is confined to this
// file, and every cast is gated on the conditions that make it sound —
// the host stores integers little-endian (the on-disk order), the
// section start is aligned for the element type, and for the compound
// element types (netutil.Prefix, compiledValue) a runtime probe proves
// the Go struct layout is byte-identical to the on-disk record. All are
// guaranteed on the mmap path of a conforming toolchain (page-aligned
// base, 8-aligned sections, no padding to reorder) but checked anyway;
// when any fails, OpenTable falls back to the portable copying loader.

// errNoZeroCopy tells OpenTable the file may be fine but this host (or
// this buffer) cannot alias it in place.
var errNoZeroCopy = errors.New("zero-copy table load unavailable on this host")

func nativeLittleEndian() bool {
	var b [2]byte
	binary.NativeEndian.PutUint16(b[:], 0x0102)
	return b[0] == 0x02
}

// prefixLayoutMatchesDisk reports whether netutil.Prefix's in-memory
// layout equals the on-disk 8-byte entry record (addr uint32 LE at
// offset 0, bits at offset 4). Proven by casting a known record rather
// than assumed from the struct definition, so a compiler that ever laid
// the struct out differently would route loads to the copying path
// instead of silently misreading every prefix.
var prefixLayoutMatchesDisk = func() bool {
	if unsafe.Sizeof(netutil.Prefix{}) != 8 || unsafe.Sizeof(compiledValue{}) != 1 {
		return false
	}
	raw := [8]byte{0x04, 0x03, 0x02, 0x01, 31, 0, 0, 0}
	p := *(*netutil.Prefix)(unsafe.Pointer(&raw[0]))
	return p == netutil.PrefixFrom(0x01020304, 31)
}()

func castI32(b []byte) ([]int32, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

func castU32(b []byte) ([]uint32, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%4 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), true
}

func castI16(b []byte) ([]int16, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%2 != 0 {
		return nil, false
	}
	return unsafe.Slice((*int16)(unsafe.Pointer(&b[0])), len(b)/2), true
}

func castPrefixes(b []byte) ([]netutil.Prefix, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(netutil.Prefix{}) != 0 {
		return nil, false
	}
	return unsafe.Slice((*netutil.Prefix)(unsafe.Pointer(&b[0])), len(b)/8), true
}

// castValues aliases the one-byte-per-row kind column as the entry value
// slice; sizeof(compiledValue)==1 is part of the layout probe above.
func castValues(b []byte) []compiledValue {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*compiledValue)(unsafe.Pointer(&b[0])), len(b))
}

// loadMapped decodes a snapshot in place: the match structure's node
// arrays and all three entry columns alias data, and the provenance
// sidecar is served by binary search directly over the mapping — nothing
// proportional to the row count is copied or even touched, which is what
// keeps a million-prefix boot under the 10 ms budget. Validation here is
// what memory safety requires and no more: header checksum, section
// bounds, and the child/slot structural invariants the lookup walk
// indexes by (NewFrozen). Entry and sidecar *content* is trusted —
// a corrupt body that survives the header checks can yield wrong
// answers, never a panic or an out-of-bounds read (the sidecar
// accessors bounds-check every file-supplied index; MaskOf clamps any
// bits value). The full-integrity check lives in ReadTable and
// `tabletool verify`. The caller owns data's lifetime.
func loadMapped(data []byte) (*Compiled, error) {
	if !nativeLittleEndian() || !prefixLayoutMatchesDisk {
		return nil, errNoZeroCopy
	}
	h, err := parseTableHeader(data)
	if err != nil {
		return nil, err
	}
	children, ok1 := castI32(h.sec[secChildren])
	slots, ok2 := castI32(h.sec[secSlots])
	ranks, ok3 := castI16(h.sec[secEntryRank])
	prefixes, ok4 := castPrefixes(h.sec[secEntryPrefix])
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, errNoZeroCopy
	}
	values := castValues(h.sec[secEntryKind])
	var misaligned bool
	snap, err := buildSnapTable(h, func(sec int, n int) ([]uint32, error) {
		u, ok := castU32(h.sec[sec])
		if !ok {
			misaligned = true
			return nil, errNoZeroCopy
		}
		return u, nil
	})
	if err != nil {
		if misaligned {
			return nil, errNoZeroCopy
		}
		return nil, err
	}
	return assembleCompiled(h, children, slots, prefixes, ranks, values, snap)
}
