package bgp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// TableMeta is the .nct snapshot's sidecar record: where in the delta
// stream the saved table sits. A snapshot alone is a frozen point in
// time; the sidecar's generation/sequence pair is what turns it into a
// warm start — a rebooting clusterd (or a joining shard node) loads the
// table, seeds its generation counter from Generation, and asks the
// delta feed for everything after Seq instead of starting cold or
// serving stale forever.
//
// Generation is the churn-table generation the snapshot captured; Seq is
// the feed sequence number at the same instant. In a lockstep cluster
// the two are equal (each streamed delta is one generation); they are
// kept as separate fields so a table compiled offline (tabletool
// compile: generation 0, never on a feed) is distinguishable from one
// saved mid-stream.
type TableMeta struct {
	Generation uint64 `json:"generation"`
	Seq        uint64 `json:"seq"`
}

// MetaPath returns the sidecar path for a table snapshot path:
// "<table>.nct" → "<table>.nct.meta".
func MetaPath(tablePath string) string { return tablePath + ".meta" }

// SaveTableMeta writes the sidecar for the snapshot at tablePath,
// atomically (temp + rename), mirroring SaveTable's crash discipline.
func SaveTableMeta(tablePath string, m TableMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(tablePath)
	tmp, err := os.CreateTemp(dir, ".nctmeta-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), MetaPath(tablePath))
}

// LoadTableMeta reads the sidecar next to tablePath. A missing sidecar
// is not an error — it reports ok=false, and the caller treats the
// snapshot as generation 0 (the tabletool-compile case predating the
// sidecar). A present-but-corrupt sidecar is an error: silently cold-
// starting a node that believes it can warm-start would double-apply or
// skip deltas.
func LoadTableMeta(tablePath string) (TableMeta, bool, error) {
	data, err := os.ReadFile(MetaPath(tablePath))
	if errors.Is(err, os.ErrNotExist) {
		return TableMeta{}, false, nil
	}
	if err != nil {
		return TableMeta{}, false, err
	}
	var m TableMeta
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return TableMeta{}, false, fmt.Errorf("table meta %s: %w", MetaPath(tablePath), err)
	}
	return m, true, nil
}
