package bgp

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTableMetaRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.nct")
	want := TableMeta{Generation: 42, Seq: 42}
	if err := SaveTableMeta(path, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadTableMeta(path)
	if err != nil || !ok {
		t.Fatalf("LoadTableMeta = %v, %v", ok, err)
	}
	if got != want {
		t.Fatalf("meta = %+v, want %+v", got, want)
	}
}

func TestTableMetaMissingIsNotError(t *testing.T) {
	m, ok, err := LoadTableMeta(filepath.Join(t.TempDir(), "absent.nct"))
	if err != nil {
		t.Fatalf("missing sidecar errored: %v", err)
	}
	if ok || m != (TableMeta{}) {
		t.Fatalf("missing sidecar = %+v, %v, want zero/false", m, ok)
	}
}

func TestTableMetaCorruptIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.nct")
	for _, body := range []string{"not json", `{"generation": 1, "bogus": true}`} {
		if err := os.WriteFile(MetaPath(path), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := LoadTableMeta(path); err == nil {
			t.Errorf("corrupt sidecar %q loaded without error", body)
		}
	}
}
