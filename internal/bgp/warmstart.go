package bgp

import (
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// Warm start: rebuilding a *mutable* incremental compiler from an
// *immutable* Compiled table — the inverse of publish(). This is what
// lets a snapshot-booted clusterd rejoin the delta stream instead of
// serving a frozen generation forever, and what lets a joining shard
// node seed itself from a feed snapshot and then follow deltas.

// NewIncrementalFromCompiled seeds an incremental compiler with the
// contents of c, optionally restricted to the prefixes keep accepts
// (keep == nil retains everything — the full-table warm start; a shard
// node passes its range predicate).
//
// The rebuild runs off c's provenance rows — one row per (prefix,
// class), the complete per-class membership — and re-inserts each the
// way NewIncremental does, so the rebuilt compiler is behaviorally
// identical to the one that produced c: lookups match, and so does
// every future delta's effect, including a withdraw un-shadowing a
// same-prefix secondary entry. Everything is copied, so c may alias a
// memory-mapped snapshot file that the caller closes afterwards.
func NewIncrementalFromCompiled(c *Compiled, keep func(netutil.Prefix) bool) *Incremental {
	inc := &Incremental{dyn: radix.NewDynamic[compiledValue]()}
	inc.prov[0] = make(map[netutil.Prefix]*Provenance)
	inc.prov[1] = make(map[netutil.Prefix]*Provenance)
	for _, r := range provRowsOf(c) {
		if keep != nil && !keep(r.p) {
			continue
		}
		inc.prov[r.class][r.p] = &Provenance{
			Sources:  append([]string(nil), r.sources...),
			Kind:     r.kind,
			OriginAS: r.originAS,
		}
		if r.p.Bits() > 0 {
			k := SourceBGP
			if r.class == 1 {
				k = SourceNetworkDump
			}
			inc.dyn.InsertRanked(r.p, compiledValue{kind: k}, rankFor(k, r.p.Bits()))
		}
	}
	return inc
}

// UniverseOf extracts the primary-class (BGP) prefixes of c as a
// snapshot — the churn universe a warm-started clusterd synthesizes
// deltas over when it has a snapshot file but no upstream feed. The
// registry (secondary) prefixes are excluded, matching the live-service
// convention that network-dump entries stay static across a run.
func UniverseOf(c *Compiled, name string) *Snapshot {
	s := &Snapshot{Name: name, Kind: SourceBGP}
	for _, r := range provRowsOf(c) {
		if r.class != 0 || r.p.Bits() == 0 {
			continue
		}
		s.Entries = append(s.Entries, Entry{Prefix: r.p, ASPath: asPathFor(r.originAS)})
	}
	return s
}

func asPathFor(origin uint32) []uint32 {
	if origin == 0 {
		return nil
	}
	return []uint32{origin}
}
