package bgp

import (
	"path/filepath"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// warmProbes spans the test world: covered by BGP, covered only by the
// dump, multiply covered, and uncovered addresses.
var warmProbes = []string{
	"12.65.147.94", "12.1.2.3", "10.1.2.3", "24.48.3.87", "24.99.1.1",
	"99.99.99.99", "10.255.0.1", "12.65.159.255",
}

func warmSeed() *Incremental {
	m := NewMerged()
	m.Add(snap("ARIN", SourceNetworkDump, "12.0.0.0/8", "24.0.0.0/8", "10.1.0.0/16"))
	m.Add(snap("AADS", SourceBGP, "12.65.128.0/19", "10.0.0.0/8"))
	m.Add(snap("MAE", SourceBGP, "12.65.128.0/19", "24.48.2.0/23"))
	return NewIncremental(m)
}

func sameLookups(t *testing.T, want, got *Compiled, label string) {
	t.Helper()
	for _, ip := range warmProbes {
		a := netutil.MustParseAddr(ip)
		wm, wok := want.Lookup(a)
		gm, gok := got.Lookup(a)
		if wok != gok || wm != gm {
			t.Errorf("%s: Lookup(%s) = (%+v,%v), want (%+v,%v)", label, ip, gm, gok, wm, wok)
		}
	}
}

func TestWarmStartMatchesOriginal(t *testing.T) {
	inc := warmSeed()
	c := inc.Apply(Delta{Source: "feed", Ops: []Op{
		{Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("10.255.0.0/16"), ASPath: []uint32{7018}}},
		{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("24.48.2.0/23")}},
	}})

	warm := NewIncrementalFromCompiled(c, nil)
	sameLookups(t, c, warm.Compiled(), "rebuilt")
	if warm.Compiled().Len() != c.Len() {
		t.Fatalf("rebuilt Len = %d, want %d", warm.Compiled().Len(), c.Len())
	}

	// The rebuilt compiler must keep absorbing deltas exactly like the
	// original — that is the whole point of a warm start.
	d := Delta{Source: "feed", Ops: []Op{
		{Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("99.0.0.0/10")}},
		{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("10.255.0.0/16")}},
	}}
	sameLookups(t, inc.Apply(d), warm.Apply(d), "after shared delta")
}

func TestWarmStartKeepsProvenance(t *testing.T) {
	inc := warmSeed()
	c := inc.Compiled()
	warm := NewIncrementalFromCompiled(c, nil).Compiled()

	p := netutil.MustParsePrefix("12.65.128.0/19")
	orig, ok1 := c.Provenance(p)
	got, ok2 := warm.Provenance(p)
	if !ok1 || !ok2 {
		t.Fatalf("provenance present: orig %v, warm %v", ok1, ok2)
	}
	if len(got.Sources) != len(orig.Sources) || got.OriginAS != orig.OriginAS || got.Kind != orig.Kind {
		t.Fatalf("provenance = %+v, want %+v", got, orig)
	}
}

func TestWarmStartFiltered(t *testing.T) {
	inc := warmSeed()
	c := inc.Compiled()
	keep := func(p netutil.Prefix) bool {
		return p.First() >= netutil.MustParseAddr("12.0.0.0") && p.First() <= netutil.MustParseAddr("12.255.255.255")
	}
	warm := NewIncrementalFromCompiled(c, keep).Compiled()

	if m, ok := warm.Lookup(netutil.MustParseAddr("12.65.147.94")); !ok || m.Prefix.String() != "12.65.128.0/19" {
		t.Fatalf("kept range lookup = %+v %v", m, ok)
	}
	if m, ok := warm.Lookup(netutil.MustParseAddr("10.1.2.3")); ok {
		t.Fatalf("filtered range still matches: %+v", m)
	}
}

func TestWarmStartFromSnapshotFile(t *testing.T) {
	inc := warmSeed()
	c := inc.Apply(Delta{Source: "feed", Ops: []Op{
		{Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("99.128.0.0/9"), ASPath: []uint32{64512}}},
	}})

	path := filepath.Join(t.TempDir(), "warm.nct")
	if err := SaveTable(path, c); err != nil {
		t.Fatal(err)
	}
	tf, err := OpenTable(path)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewIncrementalFromCompiled(tf.Table(), nil)
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	// The source mapping is closed: every access below must be a copy.
	sameLookups(t, c, warm.Compiled(), "from closed snapshot")
	next := warm.Apply(Delta{Ops: []Op{
		{Withdraw: true, Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("99.128.0.0/9")}},
	}})
	if _, ok := next.Lookup(netutil.MustParseAddr("99.200.0.1")); ok {
		t.Fatal("withdraw after warm start did not take")
	}
}

func TestUniverseOf(t *testing.T) {
	inc := warmSeed()
	c := inc.Apply(Delta{Source: "feed", Ops: []Op{
		{Kind: SourceBGP, Entry: Entry{Prefix: netutil.MustParsePrefix("10.255.0.0/16"), ASPath: []uint32{7018}}},
	}})
	u := UniverseOf(c, "test-universe")
	if u.Kind != SourceBGP || u.Name != "test-universe" {
		t.Fatalf("universe header = %q/%v", u.Name, u.Kind)
	}
	byPrefix := make(map[string]Entry)
	for _, e := range u.Entries {
		byPrefix[e.Prefix.String()] = e
	}
	// Only BGP-class prefixes belong in the churn universe.
	for _, want := range []string{"12.65.128.0/19", "10.0.0.0/8", "24.48.2.0/23", "10.255.0.0/16"} {
		if _, ok := byPrefix[want]; !ok {
			t.Errorf("universe missing BGP prefix %s", want)
		}
	}
	for _, dump := range []string{"12.0.0.0/8", "24.0.0.0/8", "10.1.0.0/16"} {
		if _, ok := byPrefix[dump]; ok {
			t.Errorf("universe includes dump-class prefix %s", dump)
		}
	}
	if e := byPrefix["10.255.0.0/16"]; len(e.ASPath) != 1 || e.ASPath[0] != 7018 {
		t.Errorf("origin AS not carried into universe: %+v", e)
	}
}
