// Package bgpsim derives BGP routing-table snapshots from the ground-truth
// Internet of internal/inet, reproducing the observational artifacts the
// paper depends on:
//
//   - every vantage point sees only part of the topology ("none of them
//     contain complete information of all the prefixes");
//   - some ASes are visible only as aggregated allocation blocks, the main
//     source of too-large clusters in the paper's validation;
//   - registries (ARIN/NLANR-style network dumps) list allocations, which
//     are coarser than routed prefixes but cover otherwise invisible ASes;
//   - tables churn day to day (Section 3.4's BGP dynamics).
//
// All randomness is deterministic: a view is a pure function of (world,
// vantage name, seed, day), so experiments are exactly reproducible and a
// day-0 view can be regenerated when computing dynamic prefix sets.
package bgpsim

import (
	"hash/fnv"
	"math/rand"
	"sort"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

// ViewConfig describes one vantage point's observational quality.
type ViewConfig struct {
	Name string
	// Visibility is the probability that a specifically-announced network
	// prefix reaches this vantage. Big route viewers (Oregon-style) sit
	// near 0.95; tiny regional tables near 0.05.
	Visibility float64
	// Date labels the snapshot (freeform, like the paper's Table 1).
	Date string
	// Comment mirrors the "Comments" column of Table 1.
	Comment string
}

// announceMode is how an AS's allocation appears in the global system: as
// its specific network prefixes, as one aggregate, as both, or not at all.
type announceMode int

const (
	modeSpecifics announceMode = iota
	modeAggregate
	modeBoth
	modeDark
)

// Sim holds the per-world announcement decisions shared by every view, so
// that different vantages agree on what exists and differ only in what they
// happen to see — exactly how real BGP views relate.
type Sim struct {
	world *inet.Internet
	seed  int64
	// modeByAlloc maps (AS number, allocation index) to its announce mode.
	modeByAlloc map[allocKey]announceMode
}

type allocKey struct {
	asn   uint32
	alloc int
}

// Config controls the global announcement behaviour.
type Config struct {
	Seed int64
	// AggregateOnlyProb, BothProb, DarkProb partition allocation behaviour;
	// the remainder announce specifics only.
	AggregateOnlyProb float64
	BothProb          float64
	DarkProb          float64
}

// DefaultConfig mirrors the error rates the paper observed: route
// aggregation is the dominant source of too-large clusters (roughly half
// of the ~10% validation failures), and ~1% of clients need the registry
// fallback because no BGP prefix covers them.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		AggregateOnlyProb: 0.22,
		BothProb:          0.15,
		DarkProb:          0.012,
	}
}

// New builds a simulator over world: it fixes each allocation's global
// announce mode.
func New(world *inet.Internet, cfg Config) *Sim {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	s := &Sim{world: world, seed: cfg.Seed, modeByAlloc: make(map[allocKey]announceMode)}
	for _, as := range world.ASes {
		for i := range as.Allocations {
			r := rng.Float64()
			var m announceMode
			switch {
			case r < cfg.DarkProb:
				m = modeDark
			case r < cfg.DarkProb+cfg.AggregateOnlyProb:
				m = modeAggregate
			case r < cfg.DarkProb+cfg.AggregateOnlyProb+cfg.BothProb:
				m = modeBoth
			default:
				m = modeSpecifics
			}
			s.modeByAlloc[allocKey{as.Number, i}] = m
		}
	}
	return s
}

// viewRNG builds the deterministic RNG for a (view, day) pair.
func (s *Sim) viewRNG(name string, day int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64()) ^ int64(day)*0x9e3779b9))
}

// allocOf finds the allocation index containing network n within its AS.
func allocOf(n *inet.Network) int {
	for i, a := range n.AS.Allocations {
		if a.ContainsPrefix(n.Prefix) {
			return i
		}
	}
	return -1
}

// View generates the routing table visible at one vantage on one day.
// Day 0 is the base snapshot; later days apply cumulative churn (see
// churned below) to model BGP dynamics.
func (s *Sim) View(cfg ViewConfig, day int) *bgp.Snapshot {
	rng := s.viewRNG(cfg.Name, 0) // base-view decisions are day-independent
	snap := &bgp.Snapshot{
		Name:    cfg.Name,
		Kind:    bgp.SourceBGP,
		Date:    cfg.Date,
		Comment: cfg.Comment,
	}
	// Per-AS transit paths as seen from this vantage: synthesized once per
	// view so that entries for one AS share a coherent path.
	pathFor := func(origin *inet.AS) []uint32 {
		n := 1 + rng.Intn(3)
		path := make([]uint32, 0, n+1)
		vantages := s.world.VantageASes()
		for i := 0; i < n && len(vantages) > 0; i++ {
			path = append(path, vantages[rng.Intn(len(vantages))].Number)
		}
		return append(path, origin.Number)
	}
	for _, as := range s.world.ASes {
		asPath := pathFor(as)
		for i, alloc := range as.Allocations {
			mode := s.modeByAlloc[allocKey{as.Number, i}]
			if mode == modeDark {
				continue
			}
			aggregateVisible := (mode == modeAggregate || mode == modeBoth) && rng.Float64() < cfg.Visibility
			if aggregateVisible {
				snap.Entries = append(snap.Entries, bgp.Entry{
					Prefix:      alloc,
					Description: as.Name,
					NextHop:     "peer." + cfg.Name + ".net",
					ASPath:      asPath,
					PeerDesc:    as.Name,
				})
			}
			if mode == modeAggregate {
				continue
			}
			for _, n := range as.Networks {
				if !alloc.ContainsPrefix(n.Prefix) {
					continue
				}
				if rng.Float64() >= cfg.Visibility {
					continue
				}
				snap.Entries = append(snap.Entries, bgp.Entry{
					Prefix:      n.Prefix,
					Description: n.Domain,
					NextHop:     "peer." + cfg.Name + ".net",
					ASPath:      asPath,
					PeerDesc:    as.Name,
				})
			}
		}
	}
	if day > 0 {
		s.churn(snap, cfg, day)
	}
	sortEntries(snap)
	return snap
}

// churn applies day-to-day BGP dynamics: every day a small fraction of the
// base prefixes flap out and a small set of previously unseen specifics
// flap in. Changes accumulate as a random walk, so the dynamic prefix set
// (prefixes not present every day) grows sub-linearly with period length —
// the shape of the paper's Table 4.
func (s *Sim) churn(snap *bgp.Snapshot, cfg ViewConfig, day int) {
	const dailyOut = 0.004 // fraction of entries withdrawn per day
	const dailyIn = 0.005  // fraction of entries (newly) announced per day

	// Withdrawals: a prefix is out on `day` if any of days 1..day flapped
	// it out an odd number of... keep it simpler: each prefix has a random
	// walk seeded by (view, prefix); on each day it toggles out with prob
	// dailyOut and back in with prob 0.5.
	kept := snap.Entries[:0]
	for _, e := range snap.Entries {
		if s.presentOnDay(cfg.Name, e.Prefix, day, dailyOut) {
			kept = append(kept, e)
		}
	}
	snap.Entries = kept

	// Announcements: draw from networks this view's base missed.
	rng := s.viewRNG(cfg.Name, day)
	extra := int(float64(len(snap.Entries)) * dailyIn * float64(day) / 2)
	for i := 0; i < extra; i++ {
		n := s.world.Networks[rng.Intn(len(s.world.Networks))]
		snap.Entries = append(snap.Entries, bgp.Entry{
			Prefix:      n.Prefix,
			Description: n.Domain,
			NextHop:     "peer." + cfg.Name + ".net",
			ASPath:      []uint32{n.AS.Number},
			PeerDesc:    n.AS.Name,
		})
	}
}

// ViewIntraday generates a second same-day snapshot of a view: the paper's
// sources refresh every 30 minutes to 2 hours, so even a zero-day period
// sees some churn (Table 4's period-0 "maximum effect"). A quarter of one
// day's withdrawal pressure is applied, plus a pinch of fresh
// announcements.
func (s *Sim) ViewIntraday(cfg ViewConfig) *bgp.Snapshot {
	snap := s.View(cfg, 0)
	rng := s.viewRNG(cfg.Name, -1)
	kept := snap.Entries[:0]
	for _, e := range snap.Entries {
		// ~1.5% of entries flap across a day of 2-hourly refreshes; the
		// paper's AADS period-0 dynamic set is ~4% of the table, built
		// from a dozen intraday snapshots.
		if rng.Float64() < 0.015 {
			continue
		}
		kept = append(kept, e)
	}
	snap.Entries = kept
	extra := int(float64(len(snap.Entries)) * 0.018)
	for i := 0; i < extra; i++ {
		n := s.world.Networks[rng.Intn(len(s.world.Networks))]
		snap.Entries = append(snap.Entries, bgp.Entry{
			Prefix:      n.Prefix,
			Description: n.Domain,
			NextHop:     "peer." + cfg.Name + ".net",
			ASPath:      []uint32{n.AS.Number},
			PeerDesc:    n.AS.Name,
		})
	}
	sortEntries(snap)
	return snap
}

// presentOnDay runs the per-prefix random walk: starting present, each day
// the prefix withdraws with probability out; once out, it returns the next
// day with probability 0.5.
func (s *Sim) presentOnDay(view string, p netutil.Prefix, day int, out float64) bool {
	h := fnv.New64a()
	h.Write([]byte(view))
	var buf [5]byte
	o := p.Addr().Octets()
	copy(buf[:4], o[:])
	buf[4] = byte(p.Bits())
	h.Write(buf[:])
	rng := rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
	present := true
	for d := 1; d <= day; d++ {
		if present {
			if rng.Float64() < out {
				present = false
			}
		} else {
			if rng.Float64() < 0.5 {
				present = true
			}
		}
	}
	return present
}

// Registry generates an ARIN-style network dump: the registry's view of
// allocations, regardless of whether they are routed. Coverage < 1 models
// allocations that predate the registry's records; those clients end up
// unclusterable even with the secondary source, the paper's residual ~0.1%.
func (s *Sim) Registry(name, date string, coverage float64) *bgp.Snapshot {
	rng := s.viewRNG(name, 0)
	snap := &bgp.Snapshot{
		Name:    name,
		Kind:    bgp.SourceNetworkDump,
		Date:    date,
		Comment: "IP network dump",
	}
	for _, as := range s.world.ASes {
		for _, alloc := range as.Allocations {
			if rng.Float64() >= coverage {
				continue
			}
			snap.Entries = append(snap.Entries, bgp.Entry{
				Prefix:      alloc,
				Description: as.Name,
				PeerDesc:    as.Name,
			})
		}
	}
	sortEntries(snap)
	return snap
}

func sortEntries(s *bgp.Snapshot) {
	sort.Slice(s.Entries, func(i, j int) bool {
		return netutil.ComparePrefix(s.Entries[i].Prefix, s.Entries[j].Prefix) < 0
	})
}
