package bgpsim

import (
	"math/rand"
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/inet"
)

func world(t *testing.T, numASes int) *inet.Internet {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = numASes
	cfg.NumTierOne = 8
	in, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestViewDeterministic(t *testing.T) {
	w := world(t, 150)
	s := New(w, DefaultConfig())
	vc := ViewConfig{Name: "AADS", Visibility: 0.5, Date: "d"}
	a := s.View(vc, 0)
	b := s.View(vc, 0)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("same view differs: %d vs %d entries", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].Prefix != b.Entries[i].Prefix {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestViewVisibilityScalesSize(t *testing.T) {
	w := world(t, 200)
	s := New(w, DefaultConfig())
	small := s.View(ViewConfig{Name: "CANET", Visibility: 0.05}, 0)
	big := s.View(ViewConfig{Name: "OREGON", Visibility: 0.9}, 0)
	if len(small.Entries) >= len(big.Entries) {
		t.Fatalf("low-visibility view (%d entries) should be smaller than high (%d)",
			len(small.Entries), len(big.Entries))
	}
	if len(big.Entries) == 0 {
		t.Fatal("big view empty")
	}
}

func TestViewsDiffer(t *testing.T) {
	w := world(t, 200)
	s := New(w, DefaultConfig())
	a := s.View(ViewConfig{Name: "MAE-EAST", Visibility: 0.5}, 0)
	b := s.View(ViewConfig{Name: "MAE-WEST", Visibility: 0.5}, 0)
	onlyA := 0
	bset := b.PrefixSet()
	for p := range a.PrefixSet() {
		if _, ok := bset[p]; !ok {
			onlyA++
		}
	}
	if onlyA == 0 {
		t.Error("two equal-visibility vantages should still see different route sets")
	}
}

func TestMergedCoverage(t *testing.T) {
	w := world(t, 400)
	s := New(w, DefaultConfig())
	m := Merge(s.Collect())
	rng := rand.New(rand.NewSource(5))

	total, clustered, viaBGP := 0, 0, 0
	for i := 0; i < 3000; i++ {
		n := w.Networks[rng.Intn(len(w.Networks))]
		h := n.RandomHost(rng)
		total++
		match, ok := m.Lookup(h)
		if !ok {
			continue
		}
		clustered++
		if match.Kind == bgp.SourceBGP {
			viaBGP++
		}
	}
	cov := float64(clustered) / float64(total)
	if cov < 0.995 {
		t.Errorf("merged coverage = %.4f, want ≥ 0.995 (paper: 99.9%%)", cov)
	}
	bgpFrac := float64(viaBGP) / float64(total)
	if bgpFrac < 0.97 {
		t.Errorf("BGP-source coverage = %.4f, want ~0.99 (paper: 99%%)", bgpFrac)
	}
	if viaBGP == clustered {
		t.Error("expected a small fraction of clients to need the registry fallback")
	}
}

func TestRegistryCoarserThanBGP(t *testing.T) {
	w := world(t, 200)
	s := New(w, DefaultConfig())
	reg := s.Registry("ARIN", "10/1999", 0.95)
	if reg.Kind != bgp.SourceNetworkDump {
		t.Fatal("registry must be a network dump")
	}
	// Registry entries are allocations: mean prefix length must be shorter
	// than the mean routed prefix length.
	view := s.View(ViewConfig{Name: "OREGON", Visibility: 0.9}, 0)
	mean := func(s *bgp.Snapshot) float64 {
		sum := 0
		for _, e := range s.Entries {
			sum += e.Prefix.Bits()
		}
		return float64(sum) / float64(len(s.Entries))
	}
	if mean(reg) >= mean(view) {
		t.Errorf("registry mean length %.1f should be < BGP view mean %.1f", mean(reg), mean(view))
	}
}

func TestCollectTableSizeOrdering(t *testing.T) {
	w := world(t, 400)
	s := New(w, DefaultConfig())
	c := s.Collect()
	if len(c.Views) != len(StandardViews()) || len(c.Registries) != 2 {
		t.Fatalf("collection shape: %d views, %d registries", len(c.Views), len(c.Registries))
	}
	sizes := map[string]int{}
	for _, v := range c.Views {
		sizes[v.Name] = len(v.PrefixSet())
	}
	if sizes["CANET"] >= sizes["OREGON"] {
		t.Errorf("CANET (%d) should be far smaller than OREGON (%d)", sizes["CANET"], sizes["OREGON"])
	}
	if sizes["VBNS"] >= sizes["AT&T-BGP"] {
		t.Errorf("VBNS (%d) should be far smaller than AT&T-BGP (%d)", sizes["VBNS"], sizes["AT&T-BGP"])
	}
}

func TestDynamicsGrowWithPeriod(t *testing.T) {
	w := world(t, 300)
	s := New(w, DefaultConfig())
	vc := ViewConfig{Name: "AADS", Visibility: 0.4}
	base := s.View(vc, 0)

	var prevEffect int
	for _, days := range [][]int{{0, 1}, {0, 1, 4}, {0, 1, 4, 7}, {0, 1, 4, 7, 14}} {
		series := s.Series(vc, days)
		dyn := bgp.DynamicPrefixSet(series)
		effect := len(dyn)
		if effect < prevEffect {
			t.Errorf("maximum effect shrank with longer period: %d -> %d", prevEffect, effect)
		}
		prevEffect = effect
		frac := float64(effect) / float64(len(base.PrefixSet()))
		if frac > 0.15 {
			t.Errorf("dynamic fraction %.3f too large for period %v", frac, days)
		}
	}
	if prevEffect == 0 {
		t.Error("14-day period should show some churn")
	}
}

func TestChurnedViewStillSorted(t *testing.T) {
	w := world(t, 150)
	s := New(w, DefaultConfig())
	v := s.View(ViewConfig{Name: "AADS", Visibility: 0.4}, 7)
	for i := 1; i < len(v.Entries); i++ {
		a, b := v.Entries[i-1].Prefix, v.Entries[i].Prefix
		if a.Addr() > b.Addr() {
			t.Fatalf("entries unsorted at %d: %v > %v", i, a, b)
		}
	}
}

func TestDarkAllocationsInvisible(t *testing.T) {
	w := world(t, 300)
	cfg := DefaultConfig()
	cfg.DarkProb = 1.0 // everything dark
	cfg.AggregateOnlyProb = 0
	cfg.BothProb = 0
	s := New(w, cfg)
	v := s.View(ViewConfig{Name: "OREGON", Visibility: 1.0}, 0)
	if len(v.Entries) != 0 {
		t.Fatalf("all-dark world still has %d entries", len(v.Entries))
	}
	// But the registry still lists the allocations.
	reg := s.Registry("ARIN", "10/1999", 1.0)
	if len(reg.Entries) == 0 {
		t.Fatal("registry must list dark allocations")
	}
}

func TestAggregateOnlyYieldsAllocPrefixes(t *testing.T) {
	w := world(t, 200)
	cfg := DefaultConfig()
	cfg.AggregateOnlyProb = 1.0
	cfg.BothProb = 0
	cfg.DarkProb = 0
	s := New(w, cfg)
	v := s.View(ViewConfig{Name: "OREGON", Visibility: 1.0}, 0)
	allocs := map[string]bool{}
	for _, as := range w.ASes {
		for _, a := range as.Allocations {
			allocs[a.String()] = true
		}
	}
	if len(v.Entries) == 0 {
		t.Fatal("no entries")
	}
	for _, e := range v.Entries {
		if !allocs[e.Prefix.String()] {
			t.Fatalf("aggregate-only view leaked non-allocation prefix %v", e.Prefix)
		}
	}
}
