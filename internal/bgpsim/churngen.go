package bgpsim

import (
	"math/rand"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

// Churn-stream generation: the delta-shaped view of the BGP dynamics the
// day-indexed snapshots already model. Two sources:
//
//   - Diff/DeltaSeries derive announce/withdraw deltas from consecutive
//     snapshots of one vantage, the exact day-over-day deltas behind the
//     paper's 14-snapshot dynamics tables;
//   - ChurnGen synthesizes an open-ended bursty schedule against a base
//     snapshot's prefix universe, for soak-testing a live service past
//     the 14 days the paper observed. Churn literature (Kitsak et al.'s
//     long-range correlations, Magnien et al.'s dynamics modeling) says
//     update arrivals are bursty, not Poisson-smooth, so batch sizes
//     follow a two-state quiet/burst regime.

// Diff computes the delta that transforms snapshot old into snapshot
// new: prefixes only in old are withdrawn, prefixes only in new are
// announced (carrying new's entry metadata). Both snapshots must be of
// the same source kind.
func Diff(old, new *bgp.Snapshot) bgp.Delta {
	d := bgp.Delta{Source: new.Name}
	oldSet := old.PrefixSet()
	newSet := make(map[netutil.Prefix]struct{}, len(new.Entries))
	for _, e := range new.Entries {
		if _, dup := newSet[e.Prefix]; dup {
			continue
		}
		newSet[e.Prefix] = struct{}{}
		if _, present := oldSet[e.Prefix]; !present {
			d.Ops = append(d.Ops, bgp.Op{Kind: new.Kind, Entry: e})
		}
	}
	for p := range oldSet {
		if _, present := newSet[p]; !present {
			d.Ops = append(d.Ops, bgp.Op{Withdraw: true, Kind: old.Kind, Entry: bgp.Entry{Prefix: p}})
		}
	}
	return d
}

// DeltaSeries generates the day-over-day deltas of one vantage across a
// testing period: element i transforms the day-i view into the
// day-(i+1) view. Applying them in order to a table seeded from the
// day-0 view reproduces each day's snapshot incrementally.
func (s *Sim) DeltaSeries(cfg ViewConfig, days int) []bgp.Delta {
	out := make([]bgp.Delta, 0, days)
	prev := s.View(cfg, 0)
	for day := 1; day <= days; day++ {
		next := s.View(cfg, day)
		out = append(out, Diff(prev, next))
		prev = next
	}
	return out
}

// ChurnConfig parameterizes a synthetic bursty churn schedule.
type ChurnConfig struct {
	Seed int64
	// MeanBatch is the expected ops per quiet-regime batch.
	MeanBatch int
	// Burstiness is the probability a batch is a burst; BurstMul scales
	// burst batches relative to MeanBatch. The paper's period-0 dynamic
	// sets (intraday flaps of a few percent) motivate the defaults.
	Burstiness float64
	BurstMul   int
	// WithdrawFrac is the fraction of ops that withdraw a live prefix;
	// the rest re-announce dead prefixes or fresh ones, holding the
	// table near its base size.
	WithdrawFrac float64
}

// DefaultChurnConfig returns a schedule shaped like ~1% daily deltas
// with occasional 8x bursts.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Seed:         1,
		MeanBatch:    32,
		Burstiness:   0.15,
		BurstMul:     8,
		WithdrawFrac: 0.5,
	}
}

// ChurnGen produces an endless stream of deltas against a base
// snapshot's universe. It tracks which prefixes are live so withdrawals
// always name a present prefix and announcements favor resurrecting
// withdrawn ones — a flap-dominated mix, matching the observation that
// most routing dynamics are the same prefixes coming and going.
type ChurnGen struct {
	rng  *rand.Rand
	cfg  ChurnConfig
	kind bgp.SourceKind
	name string

	entries []bgp.Entry // universe, deduplicated by prefix
	live    []int       // indices into entries currently announced
	dead    []int       // indices currently withdrawn
	pos     map[netutil.Prefix]int
}

// NewChurnGen builds a generator over base's prefix universe; every
// prefix starts live.
func NewChurnGen(base *bgp.Snapshot, cfg ChurnConfig) *ChurnGen {
	if cfg.MeanBatch <= 0 {
		cfg.MeanBatch = 32
	}
	if cfg.BurstMul <= 0 {
		cfg.BurstMul = 8
	}
	g := &ChurnGen{
		rng:  rand.New(rand.NewSource(cfg.Seed ^ 0xc4172)),
		cfg:  cfg,
		kind: base.Kind,
		name: base.Name,
		pos:  make(map[netutil.Prefix]int),
	}
	for _, e := range base.Entries {
		if _, dup := g.pos[e.Prefix]; dup {
			continue
		}
		g.pos[e.Prefix] = len(g.entries)
		g.entries = append(g.entries, e)
		g.live = append(g.live, len(g.entries)-1)
	}
	return g
}

// Live returns how many universe prefixes are currently announced.
func (g *ChurnGen) Live() int { return len(g.live) }

// Next produces the next delta batch. Batch size is MeanBatch±50% in
// the quiet regime and MeanBatch*BurstMul±50% in a burst.
func (g *ChurnGen) Next() bgp.Delta {
	n := g.cfg.MeanBatch
	if g.rng.Float64() < g.cfg.Burstiness {
		n *= g.cfg.BurstMul
	}
	n = n/2 + g.rng.Intn(n+1) // uniform in [n/2, 3n/2]
	d := bgp.Delta{Source: g.name}
	for i := 0; i < n; i++ {
		if len(g.live) > 0 && g.rng.Float64() < g.cfg.WithdrawFrac {
			k := g.rng.Intn(len(g.live))
			idx := g.live[k]
			g.live[k] = g.live[len(g.live)-1]
			g.live = g.live[:len(g.live)-1]
			g.dead = append(g.dead, idx)
			d.Ops = append(d.Ops, bgp.Op{Withdraw: true, Kind: g.kind, Entry: bgp.Entry{Prefix: g.entries[idx].Prefix}})
			continue
		}
		if len(g.dead) == 0 {
			continue // universe fully announced and the dice said announce
		}
		k := g.rng.Intn(len(g.dead))
		idx := g.dead[k]
		g.dead[k] = g.dead[len(g.dead)-1]
		g.dead = g.dead[:len(g.dead)-1]
		g.live = append(g.live, idx)
		d.Ops = append(d.Ops, bgp.Op{Kind: g.kind, Entry: g.entries[idx]})
	}
	return d
}
