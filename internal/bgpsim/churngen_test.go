package bgpsim

import (
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
)

func TestDiffRoundTrip(t *testing.T) {
	// Applying Diff(old, new) to old's prefix set must yield new's set.
	w := world(t, 150)
	s := New(w, DefaultConfig())
	vc := ViewConfig{Name: "AADS", Visibility: 0.4, Date: "d"}
	old := s.View(vc, 0)
	new_ := s.View(vc, 7)
	d := Diff(old, new_)

	set := old.PrefixSet()
	for _, op := range d.Ops {
		if op.Withdraw {
			if _, present := set[op.Entry.Prefix]; !present {
				t.Fatalf("withdraw of %v, which old does not contain", op.Entry.Prefix)
			}
			delete(set, op.Entry.Prefix)
		} else {
			if _, present := set[op.Entry.Prefix]; present {
				t.Fatalf("announce of %v, which old already contains", op.Entry.Prefix)
			}
			set[op.Entry.Prefix] = struct{}{}
		}
	}
	want := new_.PrefixSet()
	if len(set) != len(want) {
		t.Fatalf("after applying diff: %d prefixes, want %d", len(set), len(want))
	}
	for p := range want {
		if _, present := set[p]; !present {
			t.Fatalf("prefix %v missing after applying diff", p)
		}
	}
}

func TestDeltaSeriesReproducesViews(t *testing.T) {
	// Seeding an incremental table from day 0 and applying the delta
	// series must pass through exactly each day's snapshot — the
	// operational claim behind serving the paper's 14-day dynamics from a
	// live table instead of 14 recompiles.
	w := world(t, 120)
	s := New(w, DefaultConfig())
	vc := ViewConfig{Name: "OREGON", Visibility: 0.85, Date: "d"}
	const days = 5
	series := s.DeltaSeries(vc, days)
	if len(series) != days {
		t.Fatalf("DeltaSeries returned %d deltas, want %d", len(series), days)
	}

	day0 := s.View(vc, 0)
	m := bgp.NewMerged()
	m.Add(day0)
	inc := bgp.NewIncremental(m)
	for day := 1; day <= days; day++ {
		c := inc.Apply(series[day-1])
		want := s.View(vc, day).PrefixSet()
		for p := range want {
			if _, ok := c.KindOf(p); !ok {
				t.Fatalf("day %d: view prefix %v missing from incremental table", day, p)
			}
		}
		// KindOf covered the ⊇ direction; the size closes ⊆.
		if c.NumPrimary() != len(want) {
			t.Fatalf("day %d: table has %d primary prefixes, view has %d", day, c.NumPrimary(), len(want))
		}
	}
}

func TestChurnGenInvariants(t *testing.T) {
	w := world(t, 150)
	s := New(w, DefaultConfig())
	base := s.View(ViewConfig{Name: "AADS", Visibility: 0.5, Date: "d"}, 0)
	uniq := len(base.PrefixSet())

	cfg := DefaultChurnConfig()
	cfg.Seed = 5
	g := NewChurnGen(base, cfg)
	if g.Live() != uniq {
		t.Fatalf("fresh generator: Live = %d, want %d (universe size)", g.Live(), uniq)
	}

	live := base.PrefixSet()
	for i := 0; i < 200; i++ {
		d := g.Next()
		if len(d.Ops) == 0 && g.Live() > 0 && g.Live() < uniq {
			t.Fatalf("batch %d: empty delta with a mixed universe", i)
		}
		for _, op := range d.Ops {
			if op.Withdraw {
				if _, present := live[op.Entry.Prefix]; !present {
					t.Fatalf("batch %d: withdrew %v, which is not live", i, op.Entry.Prefix)
				}
				delete(live, op.Entry.Prefix)
			} else {
				if _, present := live[op.Entry.Prefix]; present {
					t.Fatalf("batch %d: announced %v, which is already live", i, op.Entry.Prefix)
				}
				live[op.Entry.Prefix] = struct{}{}
			}
		}
		if g.Live() != len(live) {
			t.Fatalf("batch %d: generator Live = %d, tracked %d", i, g.Live(), len(live))
		}
	}
	// The schedule flaps the universe, never grows or leaks it.
	if g.Live() > uniq {
		t.Fatalf("Live = %d exceeds universe %d", g.Live(), uniq)
	}
}

func TestChurnGenDeterministic(t *testing.T) {
	w := world(t, 100)
	s := New(w, DefaultConfig())
	base := s.View(ViewConfig{Name: "X", Visibility: 0.5, Date: "d"}, 0)
	cfg := DefaultChurnConfig()
	cfg.Seed = 77
	a, b := NewChurnGen(base, cfg), NewChurnGen(base, cfg)
	for i := 0; i < 50; i++ {
		da, db := a.Next(), b.Next()
		if len(da.Ops) != len(db.Ops) {
			t.Fatalf("batch %d: sizes differ, %d vs %d", i, len(da.Ops), len(db.Ops))
		}
		for j := range da.Ops {
			if da.Ops[j].Withdraw != db.Ops[j].Withdraw || da.Ops[j].Entry.Prefix != db.Ops[j].Entry.Prefix {
				t.Fatalf("batch %d op %d: %+v vs %+v", i, j, da.Ops[j], db.Ops[j])
			}
		}
	}
}

func TestChurnGenBurstsHappen(t *testing.T) {
	w := world(t, 150)
	s := New(w, DefaultConfig())
	base := s.View(ViewConfig{Name: "Y", Visibility: 0.6, Date: "d"}, 0)
	cfg := DefaultChurnConfig()
	cfg.Seed = 3
	cfg.MeanBatch = 16
	cfg.Burstiness = 0.2
	g := NewChurnGen(base, cfg)
	maxOps := 0
	for i := 0; i < 100; i++ {
		if n := len(g.Next().Ops); n > maxOps {
			maxOps = n
		}
	}
	// A burst is MeanBatch*BurstMul±50%; with 100 draws at p=0.2 the odds
	// of seeing none are (0.8)^100 ≈ 2e-10.
	if maxOps < cfg.MeanBatch*cfg.BurstMul/2 {
		t.Fatalf("no burst in 100 batches: max ops = %d", maxOps)
	}
}
