package bgpsim

import (
	"github.com/netaware/netcluster/internal/bgp"
)

// StandardViews mirrors the paper's Table 1: fourteen sources of varying
// size and quality. Visibility values are tuned so relative table sizes
// come out in the same order as the paper's (CANET/VBNS tiny, OREGON and
// AT&T-BGP large, the registries largest of all).
func StandardViews() []ViewConfig {
	return []ViewConfig{
		{Name: "AADS", Visibility: 0.25, Date: "12/7/1999", Comment: "BGP routing table snapshots updated every 2 hours"},
		{Name: "AT&T-BGP", Visibility: 0.90, Date: "12/15/1999", Comment: "BGP routing table snapshots"},
		{Name: "AT&T-Forw", Visibility: 0.80, Date: "4/28/1999", Comment: "BGP forwarding table snapshots"},
		{Name: "CANET", Visibility: 0.025, Date: "12/1/1999", Comment: "Real-time BGP routing table snapshots"},
		{Name: "CERFNET", Visibility: 0.62, Date: "9/29/1999", Comment: "Real-time BGP routing table snapshots"},
		{Name: "MAE-EAST", Visibility: 0.58, Date: "12/7/1999", Comment: "BGP routing table snapshots taken every 2 hours"},
		{Name: "MAE-WEST", Visibility: 0.38, Date: "12/7/1999", Comment: "BGP routing table snapshots taken every 2 hours"},
		{Name: "OREGON", Visibility: 0.88, Date: "12/7/1999", Comment: "Real-time BGP routing table snapshots"},
		{Name: "PACBELL", Visibility: 0.31, Date: "12/7/1999", Comment: "BGP routing table snapshots updated every 2 hours"},
		{Name: "PAIX", Visibility: 0.13, Date: "12/7/1999", Comment: "BGP routing table snapshots updated every 2 hours"},
		{Name: "SINGAREN", Visibility: 0.85, Date: "12/7/1999", Comment: "Real-time BGP routing table snapshots"},
		{Name: "VBNS", Visibility: 0.022, Date: "12/7/1999", Comment: "BGP routing table snapshots updated every 30 minutes"},
	}
}

// Collection is the full set of snapshots an experiment ingests: the BGP
// views plus the two registry dumps.
type Collection struct {
	Views      []*bgp.Snapshot
	Registries []*bgp.Snapshot
}

// Collect generates every standard view at day 0 plus ARIN/NLANR-style
// registry dumps. ARIN is recent with high coverage; NLANR is a 1997
// legacy dump with partial coverage, matching the paper's description.
func (s *Sim) Collect() *Collection {
	c := &Collection{}
	for _, vc := range StandardViews() {
		c.Views = append(c.Views, s.View(vc, 0))
	}
	c.Registries = append(c.Registries,
		s.Registry("ARIN", "10/1999", 0.97),
		s.Registry("NLANR", "11/1997", 0.60),
	)
	return c
}

// Merge unions a collection into the single prefix/netmask table that
// clustering consumes.
func Merge(c *Collection) *bgp.Merged {
	m := bgp.NewMerged()
	for _, v := range c.Views {
		m.Add(v)
	}
	for _, r := range c.Registries {
		m.Add(r)
	}
	return m
}

// ASInfo is one whois-style AS registry record: the observable metadata
// (name, country) the paper's proxy-placement strategy 2 needs to group
// proxies "according to their AS numbers and geographical locations".
type ASInfo struct {
	Number  uint32
	Name    string
	Country string
}

// ASRegistry returns the whois-style AS registry of the world: public
// information in reality, derived from the ground truth here.
func (s *Sim) ASRegistry() map[uint32]ASInfo {
	out := make(map[uint32]ASInfo, len(s.world.ASes))
	for _, as := range s.world.ASes {
		out[as.Number] = ASInfo{Number: as.Number, Name: as.Name, Country: as.Country.Code}
	}
	return out
}

// Series generates day-indexed snapshots of one view over a testing period
// (day 0 .. days-1), the input to the Section 3.4 dynamics experiments.
func (s *Sim) Series(cfg ViewConfig, days []int) []*bgp.Snapshot {
	out := make([]*bgp.Snapshot, 0, len(days))
	for _, d := range days {
		out = append(out, s.View(cfg, d))
	}
	return out
}
