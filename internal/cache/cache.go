// Package cache implements the proxy cache used by the paper's Web caching
// simulation (Section 4.1.5): an LRU-evicted store with fixed-TTL
// expiration and Piggyback Cache Validation (PCV, Krishnamurthy & Wills
// 1997). A cached resource is considered stale TTL seconds after it was
// validated; when the proxy contacts the server for any reason, it
// piggybacks validation checks for resources whose TTL has expired. A
// stale resource accessed before a piggybacked validation got to it incurs
// a synchronous If-Modified-Since GET.
package cache

import (
	"container/list"
	"context"
	"fmt"

	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/weblog"
)

// Cache observability: Proxy keeps its per-instance Stats struct (a
// simulation can run thousands of per-cluster proxies, each reporting its
// own ratios) and PublishMetrics folds a finished proxy's totals into the
// process-wide registry in one batch — no atomics inside the simulation
// loop.
var (
	cacheRequests    = obsv.C("cache.requests")
	cacheHits        = obsv.C("cache.hits")
	cacheBytes       = obsv.C("cache.bytes")
	cacheByteHits    = obsv.C("cache.byte_hits")
	cacheFullFetches = obsv.C("cache.full_fetches")
	cacheValidations = obsv.C("cache.validations")
	cacheSyncValid   = obsv.C("cache.validations.sync")
	cacheStaleServes = obsv.C("cache.stale_serves")
	cacheEvictions   = obsv.C("cache.evictions")
)

// PublishMetrics adds the proxy's accumulated Stats to the process-wide
// obsv registry. Call it once per proxy when a simulation (or serving
// window) completes; calling it repeatedly double-counts.
func (p *Proxy) PublishMetrics() {
	s := p.Stats
	cacheRequests.Add(uint64(s.Requests))
	cacheHits.Add(uint64(s.Hits))
	cacheBytes.Add(uint64(s.Bytes))
	cacheByteHits.Add(uint64(s.ByteHits))
	cacheFullFetches.Add(uint64(s.FullFetches))
	cacheValidations.Add(uint64(s.Validations))
	cacheSyncValid.Add(uint64(s.SyncValidations))
	cacheStaleServes.Add(uint64(s.StaleServes))
	cacheEvictions.Add(uint64(s.Evictions))
}

// Stats aggregates the simulation metrics at one proxy. Hit accounting
// follows the paper: a request counts as a hit when the proxy serves the
// body without transferring it from the server again (including
// 304-validated staleness checks), because the paper's server-side ratios
// measure "requests served by local proxies".
type Stats struct {
	Requests int
	Hits     int
	Bytes    int64 // total bytes requested by clients
	ByteHits int64 // bytes served from cache

	FullFetches     int // bodies transferred from the server
	Validations     int // If-Modified-Since checks, sync + piggybacked
	SyncValidations int
	StaleServes     int // hits that needed a 304 revalidation round first
	ServerContacts  int // messages to the server (fetches + sync validations)
	Evictions       int
}

// MeanLatency estimates the client-perceived mean response latency under
// a two-level delay model: cache hits cost one proxy round trip, full
// fetches and synchronous validations additionally cost an origin round
// trip (piggybacked validations are free — that is PCV's point). Lowering
// exactly this number is the paper's motivation for placing proxies in
// front of clusters.
func (s Stats) MeanLatency(proxyRTT, originRTT float64) float64 {
	if s.Requests == 0 {
		return 0
	}
	total := float64(s.Requests)*proxyRTT +
		float64(s.FullFetches+s.SyncValidations)*originRTT
	return total / float64(s.Requests)
}

// HitRatio returns hits/requests, 0 on an idle proxy.
func (s Stats) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Requests)
}

// ByteHitRatio returns byte hits over bytes, 0 on an idle proxy.
func (s Stats) ByteHitRatio() float64 {
	if s.Bytes == 0 {
		return 0
	}
	return float64(s.ByteHits) / float64(s.Bytes)
}

type entry struct {
	url         int32
	size        int32
	validatedAt uint32 // last time the copy was known fresh
	version     uint32 // Last-Modified of the cached copy
}

// Proxy is one proxy cache in front of a client cluster.
type Proxy struct {
	// Capacity bounds the cache size in bytes; 0 or negative means
	// unbounded (the paper's per-proxy evaluation uses infinite caches).
	Capacity int64
	// TTL is the freshness lifetime in seconds (the paper's default: 1h).
	TTL uint32
	// PCV enables piggybacked validation; disabled, every stale access
	// validates synchronously (the plain-TTL ablation baseline).
	PCV bool
	// PiggybackLimit caps how many validations ride along on one server
	// contact; the PCV paper batches rather than flooding.
	PiggybackLimit int

	Stats Stats

	used    int64
	lru     *list.List // front = most recent
	items   map[int32]*list.Element
	expired map[int32]struct{} // stale entries awaiting piggybacked validation
	seq     uint64             // request counter driving trace sampling
}

// traceSampleEvery sets the 1-in-N trace sampling rate for simulated
// requests. The simulation loop runs millions of requests per proxy, so
// unconditional per-request spans would swamp both the flight recorder
// and the overhead budget; a sampled sliver keeps representative
// cache.request spans in the ring at negligible cost. Plain (non-atomic)
// counting suffices: a Proxy is single-goroutine by contract.
const traceSampleEvery = 1024

// NewProxy returns a proxy with the paper's defaults for unset fields:
// TTL 1 hour, PCV on, piggyback batches of 10.
func NewProxy(capacity int64, ttl uint32, pcv bool) *Proxy {
	if ttl == 0 {
		ttl = 3600
	}
	return &Proxy{
		Capacity:       capacity,
		TTL:            ttl,
		PCV:            pcv,
		PiggybackLimit: 10,
		lru:            list.New(),
		items:          make(map[int32]*list.Element),
		expired:        make(map[int32]struct{}),
	}
}

// Request serves one client request for res (indexed by url) at time t
// (seconds since log start) and updates the statistics. One request in
// traceSampleEvery records a "cache.request" span (url, outcome) into
// the flight recorder.
func (p *Proxy) Request(resources []weblog.Resource, url int32, t uint32) {
	p.seq++
	if p.seq%traceSampleEvery != 1 {
		p.request(resources, url, t)
		return
	}
	_, sp := obsv.StartTraceSpan(context.Background(), "cache.request")
	status := p.request(resources, url, t)
	sp.SetAttrInt("url", int64(url))
	sp.SetAttr("status", status)
	sp.End()
}

// request is the un-traced serving path; it returns the outcome label
// ("miss", "hit", "refetch", "stale-hit") for sampled trace spans.
func (p *Proxy) request(resources []weblog.Resource, url int32, t uint32) string {
	if int(url) >= len(resources) {
		panic(fmt.Sprintf("cache: url %d outside resource table of %d", url, len(resources)))
	}
	res := resources[url]
	p.Stats.Requests++
	p.Stats.Bytes += int64(res.Size)

	el, ok := p.items[url]
	if !ok {
		p.fetch(resources, url, t)
		return "miss"
	}
	e := el.Value.(*entry)
	p.lru.MoveToFront(el)
	if t < e.validatedAt+p.TTL {
		// Fresh: pure cache hit.
		p.Stats.Hits++
		p.Stats.ByteHits += int64(res.Size)
		return "hit"
	}
	// Stale: synchronous If-Modified-Since.
	p.Stats.Validations++
	p.Stats.SyncValidations++
	p.contactServer(resources, t)
	if res.LastModified(t) != e.version {
		// Modified: full body transfer; not a hit.
		e.version = res.LastModified(t)
		e.validatedAt = t
		p.resize(el, res.Size)
		p.Stats.FullFetches++
		delete(p.expired, url)
		return "refetch"
	}
	// 304 Not Modified: body served from cache.
	e.validatedAt = t
	delete(p.expired, url)
	p.Stats.Hits++
	p.Stats.StaleServes++
	p.Stats.ByteHits += int64(res.Size)
	return "stale-hit"
}

// fetch brings a missing resource into the cache.
func (p *Proxy) fetch(resources []weblog.Resource, url int32, t uint32) {
	res := resources[url]
	p.Stats.FullFetches++
	p.contactServer(resources, t)
	e := &entry{url: url, size: res.Size, validatedAt: t, version: res.LastModified(t)}
	el := p.lru.PushFront(e)
	p.items[url] = el
	p.used += int64(res.Size)
	p.evict()
}

// contactServer accounts one message to the origin and, when PCV is on,
// piggybacks validations for expired entries.
func (p *Proxy) contactServer(resources []weblog.Resource, t uint32) {
	p.Stats.ServerContacts++
	if !p.PCV {
		return
	}
	n := 0
	for url := range p.expired {
		if n >= p.PiggybackLimit {
			break
		}
		el, ok := p.items[url]
		if !ok {
			delete(p.expired, url)
			continue
		}
		e := el.Value.(*entry)
		res := resources[url]
		p.Stats.Validations++
		if res.LastModified(t) != e.version {
			// The copy is out of date: drop it so the next access fetches
			// a fresh body instead of serving stale content.
			p.remove(el)
		} else {
			e.validatedAt = t
		}
		delete(p.expired, url)
		n++
	}
}

// Tick advances proxy-local time bookkeeping: entries whose TTL has lapsed
// by t are queued for piggybacked validation. Callers invoke it with each
// request's timestamp (time only moves via the trace).
func (p *Proxy) Tick(t uint32) {
	if !p.PCV {
		return
	}
	// Scan from the back of the LRU (coldest first) — cheap because the
	// queue is drained by piggybacking; a full scan per tick would be
	// quadratic, so only the tail is probed.
	const probe = 8
	el := p.lru.Back()
	for i := 0; i < probe && el != nil; i++ {
		e := el.Value.(*entry)
		if t >= e.validatedAt+p.TTL {
			p.expired[e.url] = struct{}{}
		}
		el = el.Prev()
	}
}

// resize adjusts accounting when a refreshed body changed size.
func (p *Proxy) resize(el *list.Element, newSize int32) {
	e := el.Value.(*entry)
	p.used += int64(newSize) - int64(e.size)
	e.size = newSize
	p.evict()
}

// evict drops least-recently-used entries until the cache fits.
func (p *Proxy) evict() {
	if p.Capacity <= 0 {
		return
	}
	for p.used > p.Capacity {
		el := p.lru.Back()
		if el == nil {
			return
		}
		p.remove(el)
		p.Stats.Evictions++
	}
}

func (p *Proxy) remove(el *list.Element) {
	e := el.Value.(*entry)
	p.lru.Remove(el)
	delete(p.items, e.url)
	delete(p.expired, e.url)
	p.used -= int64(e.size)
}

// Len returns the number of cached resources.
func (p *Proxy) Len() int { return p.lru.Len() }

// Used returns the bytes currently cached.
func (p *Proxy) Used() int64 { return p.used }
