package cache

import (
	"testing"

	"github.com/netaware/netcluster/internal/weblog"
)

func resources() []weblog.Resource {
	return []weblog.Resource{
		{Path: "/a", Size: 1000, ChangePeriod: 0},    // immutable
		{Path: "/b", Size: 2000, ChangePeriod: 1800}, // changes every 30 min
		{Path: "/c", Size: 4000, ChangePeriod: 0},
		{Path: "/d", Size: 500, ChangePeriod: 0},
	}
}

func TestMissThenHit(t *testing.T) {
	p := NewProxy(0, 3600, true)
	rs := resources()
	p.Request(rs, 0, 10)
	p.Request(rs, 0, 20)
	if p.Stats.Requests != 2 || p.Stats.Hits != 1 || p.Stats.FullFetches != 1 {
		t.Fatalf("stats = %+v", p.Stats)
	}
	if p.Stats.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %g", p.Stats.HitRatio())
	}
	if p.Stats.ByteHits != 1000 || p.Stats.Bytes != 2000 {
		t.Fatalf("bytes = %+v", p.Stats)
	}
}

func TestTTLExpiryImmutable304(t *testing.T) {
	p := NewProxy(0, 3600, false)
	rs := resources()
	p.Request(rs, 0, 0)
	p.Request(rs, 0, 4000) // stale; immutable → 304 → hit
	if p.Stats.Hits != 1 {
		t.Fatalf("stale immutable access must validate to a hit: %+v", p.Stats)
	}
	if p.Stats.SyncValidations != 1 {
		t.Fatalf("expected a synchronous validation: %+v", p.Stats)
	}
	// After revalidation the clock restarts.
	p.Request(rs, 0, 5000)
	if p.Stats.Hits != 2 || p.Stats.SyncValidations != 1 {
		t.Fatalf("revalidated entry must be fresh: %+v", p.Stats)
	}
}

func TestTTLExpiryModifiedRefetch(t *testing.T) {
	p := NewProxy(0, 3600, false)
	rs := resources()
	p.Request(rs, 1, 0)    // version 0
	p.Request(rs, 1, 4000) // stale; modified at 3600 → full fetch
	if p.Stats.Hits != 0 || p.Stats.FullFetches != 2 {
		t.Fatalf("modified stale access must refetch: %+v", p.Stats)
	}
}

func TestFreshWithinTTLDespiteModification(t *testing.T) {
	// TTL semantics: within TTL the proxy serves potentially stale content
	// without checking (that is the whole point of TTL-based freshness).
	p := NewProxy(0, 3600, false)
	rs := resources()
	p.Request(rs, 1, 0)
	p.Request(rs, 1, 3599) // resource changed at 1800, but TTL not lapsed
	if p.Stats.Hits != 1 {
		t.Fatalf("within-TTL access must hit: %+v", p.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	p := NewProxy(5000, 3600, false)
	rs := resources()
	p.Request(rs, 0, 1) // 1000
	p.Request(rs, 1, 2) // +2000 = 3000
	p.Request(rs, 2, 3) // +4000 = 7000 → evict /a (LRU), then /b → 4000
	if p.Used() > 5000 {
		t.Fatalf("used = %d exceeds capacity", p.Used())
	}
	if p.Stats.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// /a was evicted: next access misses.
	hitsBefore := p.Stats.Hits
	p.Request(rs, 0, 4)
	if p.Stats.Hits != hitsBefore {
		t.Fatal("evicted entry must miss")
	}
}

func TestLRUOrderUpdatedOnHit(t *testing.T) {
	p := NewProxy(3200, 3600, false)
	rs := resources()
	p.Request(rs, 0, 1) // 1000
	p.Request(rs, 1, 2) // 2000 → 3000 total
	p.Request(rs, 0, 3) // hit → /a now MRU
	p.Request(rs, 3, 4) // +500 → 3500 > 3200 → evict LRU = /b
	hitsBefore := p.Stats.Hits
	p.Request(rs, 0, 5) // /a must still be cached
	if p.Stats.Hits != hitsBefore+1 {
		t.Fatal("recently used /a should have survived eviction")
	}
}

func TestPCVPiggybackAvoidsSyncValidation(t *testing.T) {
	rs := resources()
	// With PCV: /a expires; a miss on /d contacts the server and
	// piggybacks /a's validation; the later /a access is then fresh.
	pcv := NewProxy(0, 3600, true)
	pcv.Request(rs, 0, 0)
	pcv.Tick(4000)           // /a queued as expired
	pcv.Request(rs, 3, 4100) // miss → server contact → piggyback validates /a
	pcv.Request(rs, 0, 4200) // fresh again
	if pcv.Stats.SyncValidations != 0 {
		t.Fatalf("PCV should have avoided sync validation: %+v", pcv.Stats)
	}
	if pcv.Stats.Validations != 1 {
		t.Fatalf("expected exactly one piggybacked validation: %+v", pcv.Stats)
	}

	// Without PCV the same access pattern validates synchronously.
	plain := NewProxy(0, 3600, false)
	plain.Request(rs, 0, 0)
	plain.Tick(4000)
	plain.Request(rs, 3, 4100)
	plain.Request(rs, 0, 4200)
	if plain.Stats.SyncValidations != 1 {
		t.Fatalf("plain TTL must validate synchronously: %+v", plain.Stats)
	}
}

func TestPCVDropsModifiedEntries(t *testing.T) {
	rs := resources()
	p := NewProxy(0, 3600, true)
	p.Request(rs, 1, 0) // /b cached, version 0
	p.Tick(4000)
	p.Request(rs, 3, 4100) // piggyback validation finds /b modified (at 3600) → dropped
	fetchesBefore := p.Stats.FullFetches
	p.Request(rs, 1, 4200) // must be a miss now
	if p.Stats.FullFetches != fetchesBefore+1 {
		t.Fatalf("modified entry must have been dropped: %+v", p.Stats)
	}
}

func TestPiggybackLimit(t *testing.T) {
	rs := make([]weblog.Resource, 30)
	for i := range rs {
		rs[i] = weblog.Resource{Path: "/x", Size: 10}
	}
	p := NewProxy(0, 3600, true)
	p.PiggybackLimit = 2
	for i := int32(0); i < 20; i++ {
		p.Request(rs, i, 0)
	}
	// Expire everything (probe the whole tail).
	for i := 0; i < 10; i++ {
		p.Tick(4000)
	}
	valsBefore := p.Stats.Validations
	p.Request(rs, 25, 4100) // one server contact
	if got := p.Stats.Validations - valsBefore; got > 2 {
		t.Fatalf("piggybacked %d validations, limit is 2", got)
	}
}

func TestUnboundedCacheNeverEvicts(t *testing.T) {
	p := NewProxy(0, 3600, false)
	rs := resources()
	for i := 0; i < 4; i++ {
		p.Request(rs, int32(i), uint32(i))
	}
	if p.Stats.Evictions != 0 || p.Len() != 4 {
		t.Fatalf("unbounded cache evicted: %+v", p.Stats)
	}
}

func TestMeanLatency(t *testing.T) {
	s := Stats{Requests: 10, FullFetches: 4, SyncValidations: 1}
	// 10 proxy RTTs (10ms) + 5 origin RTTs (100ms) = 600ms over 10 requests.
	if got := s.MeanLatency(10, 100); got != 60 {
		t.Fatalf("MeanLatency = %g, want 60", got)
	}
	var idle Stats
	if idle.MeanLatency(10, 100) != 0 {
		t.Fatal("idle proxy must report zero latency")
	}
	// A perfect cache costs only the proxy RTT.
	perfect := Stats{Requests: 5, Hits: 5}
	if got := perfect.MeanLatency(10, 100); got != 10 {
		t.Fatalf("all-hit MeanLatency = %g, want 10", got)
	}
}

func TestLatencyImprovesWithCaching(t *testing.T) {
	// End to end: a proxy with locality must beat the no-cache baseline
	// (every request pays the origin RTT).
	p := NewProxy(0, 3600, true)
	rs := resources()
	for i := 0; i < 100; i++ {
		p.Request(rs, int32(i%3), uint32(i))
	}
	withCache := p.Stats.MeanLatency(10, 100)
	noCache := 10.0 + 100.0
	if withCache >= noCache {
		t.Fatalf("caching latency %g must beat no-cache %g", withCache, noCache)
	}
}

func TestStatsRatiosEmpty(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 || s.ByteHitRatio() != 0 {
		t.Fatal("empty stats must have zero ratios")
	}
}

func TestRequestPanicsOnBadURL(t *testing.T) {
	p := NewProxy(0, 3600, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Request(resources(), 99, 0)
}

func TestDefaultTTL(t *testing.T) {
	p := NewProxy(0, 0, true)
	if p.TTL != 3600 {
		t.Fatalf("default TTL = %d, want 3600", p.TTL)
	}
}
