// Package churn turns the batch clustering pipeline's frozen prefix
// table into a long-lived, continuously updated one: a single writer
// absorbs BGP announce/withdraw deltas through the incremental compiler
// (bgp.Incremental) while any number of readers keep doing lock-free
// lookups against whichever generation they loaded.
//
// Publication is RCU-style: Apply builds the next immutable Compiled
// generation off to the side and swings one atomic.Pointer; readers
// never block, never observe a half-built table, and readers still
// inside an old generation finish against it undisturbed. This is the
// paper's §BGP-dynamics operationalized — day-to-day routing churn is
// continuous and bursty (Kitsak et al.; Magnien et al.), so a
// production clustering service cannot afford the offline
// rebuild-the-world cycle the batch pipeline uses.
//
// Each swap also computes the cluster-ID stability map across the two
// generations: the paper measures how much day-over-day BGP deltas
// perturb cluster identification; here the same measurement runs live,
// classifying every changed prefix as carryover, split, merge, move, or
// a coverage gain/loss, and surfacing the tallies as obsv gauges.
package churn

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
)

var (
	gaugeGeneration = obsv.G("churn.generation")
	gaugeCarryover  = obsv.G("churn.swap.carryover")
	gaugeSplits     = obsv.G("churn.swap.splits")
	gaugeMerges     = obsv.G("churn.swap.merges")
	gaugeMoved      = obsv.G("churn.swap.moved")
	gaugeGained     = obsv.G("churn.swap.gained")
	gaugeLost       = obsv.G("churn.swap.lost")
	countSwaps      = obsv.C("churn.swaps")
	histApplyNS     = obsv.H("churn.apply.ns")
)

// SwapStats is the outcome of one Apply: what the delta did to the
// table and how it perturbed cluster identity. Perturbation is measured
// at the boundary addresses (first and last) of every prefix the delta
// touched — the addresses whose cluster assignment the change could
// have moved.
type SwapStats struct {
	Generation uint64 // generation number just published
	Announced  int    // ops that added or refreshed a prefix
	Withdrawn  int    // ops that removed a live prefix

	// Cluster-ID stability classification over the probe points:
	Carryover int // same cluster prefix before and after
	Splits    int // new cluster is a strict subdivision of the old
	Merges    int // new cluster strictly contains the old
	Moved     int // clustered before and after, under unrelated prefixes
	Gained    int // unclusterable before, clustered after
	Lost      int // clustered before, unclusterable after
}

// Probes returns how many probe points the stability map classified.
func (s SwapStats) Probes() int {
	return s.Carryover + s.Splits + s.Merges + s.Moved + s.Gained + s.Lost
}

// Table is the RCU-published clustering table. The zero value is not
// usable; construct with New.
type Table struct {
	mu  sync.Mutex // serializes writers (Apply, and the inc behind it)
	inc *bgp.Incremental
	cur atomic.Pointer[bgp.Compiled]
	gen atomic.Uint64
}

// New seeds a churn table from a merged snapshot collection, publishing
// generation 0. Ownership of m passes to the table (see
// bgp.NewIncremental).
func New(m *bgp.Merged) *Table {
	t := &Table{inc: bgp.NewIncremental(m)}
	t.cur.Store(t.inc.Compiled())
	gaugeGeneration.Set(0)
	return t
}

// NewStatic wraps an already compiled table — typically one loaded from
// a snapshot file — as generation 0 of a churn table with no delta
// compiler behind it. Readers get the same wait-free Load/Lookup
// surface; Apply is a no-op (the stream has nowhere to patch into), so
// a snapshot-booted service serves a fixed table until it is restarted
// with a fresh snapshot or a live feed.
func NewStatic(c *bgp.Compiled) *Table {
	t := &Table{}
	t.cur.Store(c)
	gaugeGeneration.Set(0)
	return t
}

// NewFromCompiled warm-starts a churn table from an immutable compiled
// table — one loaded from a snapshot file or received from a delta
// feed's catch-up endpoint — publishing it as generation gen with a live
// compiler behind it, so the table keeps absorbing deltas from wherever
// the snapshot left off. keep optionally restricts the rebuild to the
// prefixes a shard node owns (nil retains everything).
func NewFromCompiled(c *bgp.Compiled, keep func(netutil.Prefix) bool, gen uint64) *Table {
	t := &Table{inc: bgp.NewIncrementalFromCompiled(c, keep)}
	t.cur.Store(t.inc.Compiled())
	t.gen.Store(gen)
	gaugeGeneration.Set(int64(gen))
	return t
}

// Reseed replaces the table's entire contents and generation in one
// publication — the delta-stream resync path, taken when a follower has
// fallen further behind than the feed's retained log and must restart
// from a fresh snapshot. Readers pinned to earlier generations finish
// against them undisturbed, exactly as with Apply's swaps; the published
// generation may move backward or jump forward, matching the snapshot's
// position in the stream.
func (t *Table) Reseed(c *bgp.Compiled, keep func(netutil.Prefix) bool, gen uint64) {
	inc := bgp.NewIncrementalFromCompiled(c, keep)
	t.mu.Lock()
	t.inc = inc
	t.cur.Store(inc.Compiled())
	t.gen.Store(gen)
	t.mu.Unlock()
	gaugeGeneration.Set(int64(gen))
}

// Static reports whether the table was built by NewStatic and therefore
// ignores Apply.
func (t *Table) Static() bool { return t.inc == nil }

// Load returns the current generation. It is wait-free: one atomic
// pointer load, safe from any number of goroutines, and the returned
// table remains valid (and immutable) however many swaps follow.
func (t *Table) Load() *bgp.Compiled { return t.cur.Load() }

// Generation returns the number of swaps published so far.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// Lookup is shorthand for Load().Lookup — the service hot path.
func (t *Table) Lookup(addr netutil.Addr) (bgp.Match, bool) {
	return t.cur.Load().Lookup(addr)
}

// LookupBatch resolves a whole probe set against one pinned generation:
// a single Load covers the entire batch, so every result is from the
// same table even while swaps land mid-batch. It returns the generation
// the batch ran against along with the matches (dst conventions as in
// bgp.Compiled.LookupBatch: reused when capacity allows, zero Match =
// unclusterable).
func (t *Table) LookupBatch(addrs []netutil.Addr, dst []bgp.Match) ([]bgp.Match, uint64) {
	// Generation is read before the table: if a swap lands between the
	// two loads the batch runs against a generation at least as new as
	// the label, never older — the label is advisory, matching how
	// clusterd pairs Load() with Generation().
	gen := t.gen.Load()
	return t.cur.Load().LookupBatch(addrs, dst), gen
}

// Apply patches the table with d, publishes the new generation, and
// returns the swap's stability accounting. Safe to call from multiple
// goroutines (writers serialize on an internal mutex); readers are
// never blocked.
func (t *Table) Apply(d bgp.Delta) SwapStats {
	return t.ApplyCtx(context.Background(), d)
}

// ApplyCtx is Apply under a trace context: the batch's compile work
// records a "bgp.delta.apply" span and the whole swap a "churn.swap"
// span.
func (t *Table) ApplyCtx(ctx context.Context, d bgp.Delta) SwapStats {
	if t.inc == nil {
		// Static table (NewStatic): there is no compiler to patch, so the
		// delta is dropped and the generation stands.
		return SwapStats{Generation: t.gen.Load()}
	}
	sctx, sp := obsv.StartTraceSpan(ctx, "churn.swap")
	t.mu.Lock()
	old := t.cur.Load()
	start := time.Now()
	next := t.inc.ApplyCtx(sctx, d)
	applyNS := time.Since(start).Nanoseconds()
	t.cur.Store(next)
	gen := t.gen.Add(1)
	t.mu.Unlock()

	st := stability(old, next, d)
	st.Generation = gen
	st.Announced = d.Announced()
	st.Withdrawn = d.Withdrawn()

	countSwaps.Inc()
	histApplyNS.Observe(applyNS)
	gaugeGeneration.Set(int64(gen))
	gaugeCarryover.Set(int64(st.Carryover))
	gaugeSplits.Set(int64(st.Splits))
	gaugeMerges.Set(int64(st.Merges))
	gaugeMoved.Set(int64(st.Moved))
	gaugeGained.Set(int64(st.Gained))
	gaugeLost.Set(int64(st.Lost))

	sp.SetAttrInt("generation", int64(gen))
	sp.SetAttrInt("ops", int64(len(d.Ops)))
	sp.SetAttrInt("probes", int64(st.Probes()))
	sp.End()
	return st
}

// stability classifies the cluster-identity change at the boundary
// addresses of every prefix d touched. Cost is O(|d.Ops|) lookups
// against each generation — independent of table size, so the swap path
// stays cheap under heavy churn.
func stability(old, next *bgp.Compiled, d bgp.Delta) SwapStats {
	var st SwapStats
	seen := make(map[netutil.Addr]struct{}, 2*len(d.Ops))
	for _, op := range d.Ops {
		for _, addr := range [2]netutil.Addr{op.Entry.Prefix.First(), op.Entry.Prefix.Last()} {
			if _, dup := seen[addr]; dup {
				continue
			}
			seen[addr] = struct{}{}
			om, ook := old.Lookup(addr)
			nm, nok := next.Lookup(addr)
			switch {
			case !ook && !nok:
				// outside both tables; not a perturbation
			case !ook && nok:
				st.Gained++
			case ook && !nok:
				st.Lost++
			case om.Prefix == nm.Prefix:
				st.Carryover++
			case om.Prefix.ContainsPrefix(nm.Prefix):
				st.Splits++
			case nm.Prefix.ContainsPrefix(om.Prefix):
				st.Merges++
			default:
				st.Moved++
			}
		}
	}
	return st
}
