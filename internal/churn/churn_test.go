package churn

import (
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

func snap(name string, kind bgp.SourceKind, prefixes ...string) *bgp.Snapshot {
	s := &bgp.Snapshot{Name: name, Kind: kind}
	for _, p := range prefixes {
		s.Entries = append(s.Entries, bgp.Entry{Prefix: netutil.MustParsePrefix(p)})
	}
	return s
}

func seedTable(prefixes ...string) *Table {
	m := bgp.NewMerged()
	m.Add(snap("seed", bgp.SourceBGP, prefixes...))
	return New(m)
}

func announce(p string) bgp.Op {
	return bgp.Op{Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix(p)}}
}

func withdraw(p string) bgp.Op {
	return bgp.Op{Withdraw: true, Kind: bgp.SourceBGP, Entry: bgp.Entry{Prefix: netutil.MustParsePrefix(p)}}
}

func TestTableGenerationAdvances(t *testing.T) {
	tb := seedTable("10.0.0.0/8")
	if tb.Generation() != 0 {
		t.Fatalf("fresh table generation = %d, want 0", tb.Generation())
	}
	st := tb.Apply(bgp.Delta{Ops: []bgp.Op{announce("10.1.0.0/16")}})
	if st.Generation != 1 || tb.Generation() != 1 {
		t.Fatalf("after one apply: stats gen %d, table gen %d, want 1", st.Generation, tb.Generation())
	}
	if st.Announced != 1 || st.Withdrawn != 0 {
		t.Fatalf("op accounting = +%d -%d, want +1 -0", st.Announced, st.Withdrawn)
	}
	if m, ok := tb.Lookup(netutil.MustParseAddr("10.1.2.3")); !ok || m.Prefix.String() != "10.1.0.0/16" {
		t.Fatalf("Lookup after apply = %+v %v", m, ok)
	}
}

func TestTableOldGenerationSurvivesSwap(t *testing.T) {
	tb := seedTable("10.0.0.0/8")
	old := tb.Load()
	tb.Apply(bgp.Delta{Ops: []bgp.Op{withdraw("10.0.0.0/8"), announce("20.0.0.0/8")}})

	// The pre-swap generation still answers from its own snapshot.
	if _, ok := old.Lookup(netutil.MustParseAddr("10.1.2.3")); !ok {
		t.Fatal("old generation lost its prefix after the swap")
	}
	if _, ok := tb.Load().Lookup(netutil.MustParseAddr("10.1.2.3")); ok {
		t.Fatal("new generation still matches the withdrawn prefix")
	}
	if _, ok := tb.Load().Lookup(netutil.MustParseAddr("20.1.2.3")); !ok {
		t.Fatal("new generation misses the announced prefix")
	}
}

func TestSwapStatsClassification(t *testing.T) {
	cases := []struct {
		name  string
		seed  []string
		delta []bgp.Op
		check func(t *testing.T, st SwapStats)
	}{
		{
			name:  "gained",
			seed:  []string{"10.0.0.0/8"},
			delta: []bgp.Op{announce("99.0.0.0/8")},
			check: func(t *testing.T, st SwapStats) {
				if st.Gained != 2 { // both boundary probes of 99/8 were uncovered before
					t.Errorf("Gained = %d, want 2 (stats %+v)", st.Gained, st)
				}
			},
		},
		{
			name:  "lost",
			seed:  []string{"99.0.0.0/8"},
			delta: []bgp.Op{withdraw("99.0.0.0/8")},
			check: func(t *testing.T, st SwapStats) {
				if st.Lost != 2 {
					t.Errorf("Lost = %d, want 2 (stats %+v)", st.Lost, st)
				}
			},
		},
		{
			name: "split",
			seed: []string{"10.0.0.0/8"},
			// Announcing a /16 inside the /8 subdivides the cluster at the
			// /16's boundary probes.
			delta: []bgp.Op{announce("10.1.0.0/16")},
			check: func(t *testing.T, st SwapStats) {
				if st.Splits != 2 {
					t.Errorf("Splits = %d, want 2 (stats %+v)", st.Splits, st)
				}
			},
		},
		{
			name:  "merge",
			seed:  []string{"10.0.0.0/8", "10.1.0.0/16"},
			delta: []bgp.Op{withdraw("10.1.0.0/16")},
			check: func(t *testing.T, st SwapStats) {
				if st.Merges != 2 {
					t.Errorf("Merges = %d, want 2 (stats %+v)", st.Merges, st)
				}
			},
		},
		{
			name: "carryover",
			seed: []string{"10.0.0.0/8", "10.1.0.0/16"},
			// Withdrawing a /24 that was never announced plus re-announcing
			// the /16: its boundary probes stay with the same cluster.
			delta: []bgp.Op{announce("10.1.0.0/16")},
			check: func(t *testing.T, st SwapStats) {
				if st.Carryover != 2 {
					t.Errorf("Carryover = %d, want 2 (stats %+v)", st.Carryover, st)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb := seedTable(tc.seed...)
			st := tb.Apply(bgp.Delta{Ops: tc.delta})
			tc.check(t, st)
		})
	}
}

func TestSwapStatsProbesDeduplicated(t *testing.T) {
	tb := seedTable("10.0.0.0/8")
	// The same prefix twice in one delta: its two boundary probes are
	// classified once, not twice.
	st := tb.Apply(bgp.Delta{Ops: []bgp.Op{announce("10.1.0.0/16"), announce("10.1.0.0/16")}})
	if st.Probes() != 2 {
		t.Fatalf("Probes = %d, want 2 (stats %+v)", st.Probes(), st)
	}
}
