package churn

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

// TestIncrementalEquivalentToRecompileUnderReaders is the PR's load-
// bearing equivalence proof: a churn table absorbing ~100 random deltas
// must end up answering exactly like a table compiled from scratch over
// the final live prefix sets — while reader goroutines hammer Load() and
// Lookup() through every swap. Run under -race this also proves the
// RCU publication discipline: readers see only fully-built generations,
// and generations they hold stay internally consistent after any number
// of later swaps.
func TestIncrementalEquivalentToRecompileUnderReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(1999))

	// Universe shaped like the paper's merged tables: a few thousand BGP
	// prefixes over a few hundred coarser registry blocks.
	var primary, secondary []netutil.Prefix
	seen := make(map[netutil.Prefix]struct{})
	for len(primary) < 3000 {
		bits := 10 + rng.Intn(15)
		addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
		p := netutil.PrefixFrom(addr, bits)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		primary = append(primary, p)
	}
	for len(secondary) < 500 {
		bits := 8 + rng.Intn(8)
		addr := netutil.Addr(rng.Uint32()) & netutil.Addr(netutil.MaskOf(bits))
		p := netutil.PrefixFrom(addr, bits)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		secondary = append(secondary, p)
	}

	toEntries := func(ps []netutil.Prefix) []bgp.Entry {
		out := make([]bgp.Entry, len(ps))
		for i, p := range ps {
			out[i] = bgp.Entry{Prefix: p}
		}
		return out
	}
	seed := bgp.NewMerged()
	seed.Add(&bgp.Snapshot{Name: "P0", Kind: bgp.SourceBGP, Entries: toEntries(primary)})
	seed.Add(&bgp.Snapshot{Name: "S0", Kind: bgp.SourceNetworkDump, Entries: toEntries(secondary)})
	tb := New(seed)

	// Readers: hammer the hot path through every swap. Each reader pins a
	// generation now and then and re-checks a previously seen answer —
	// immutability of published generations, under the race detector.
	stop := make(chan struct{})
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pinned := tb.Load()
				addr := netutil.Addr(rng.Uint32())
				m1, ok1 := pinned.Lookup(addr)
				for i := 0; i < 100; i++ {
					tb.Lookup(netutil.Addr(rng.Uint32()))
				}
				// The pinned generation must repeat its own answer exactly,
				// regardless of how many swaps just happened.
				m2, ok2 := pinned.Lookup(addr)
				if ok1 != ok2 || m1 != m2 {
					t.Errorf("pinned generation changed its answer for %v: (%+v,%v) then (%+v,%v)",
						addr, m1, ok1, m2, ok2)
					return
				}
				lookups.Add(102)
			}
		}(int64(1000 + r))
	}

	// Writer: ~100 deltas of ~1% table churn, tracked against live sets.
	live := [2]map[netutil.Prefix]struct{}{
		make(map[netutil.Prefix]struct{}), make(map[netutil.Prefix]struct{}),
	}
	for _, p := range primary {
		live[0][p] = struct{}{}
	}
	for _, p := range secondary {
		live[1][p] = struct{}{}
	}
	for batch := 0; batch < 100; batch++ {
		var d bgp.Delta
		d.Source = "equiv"
		nOps := 20 + rng.Intn(20) // ~1% of 3500
		for i := 0; i < nOps; i++ {
			class, universe, kind := 0, primary, bgp.SourceBGP
			if rng.Intn(7) == 0 {
				class, universe, kind = 1, secondary, bgp.SourceNetworkDump
			}
			p := universe[rng.Intn(len(universe))]
			if _, isLive := live[class][p]; isLive && rng.Intn(2) == 0 {
				delete(live[class], p)
				d.Ops = append(d.Ops, bgp.Op{Withdraw: true, Kind: kind, Entry: bgp.Entry{Prefix: p}})
			} else {
				live[class][p] = struct{}{}
				d.Ops = append(d.Ops, bgp.Op{Kind: kind, Entry: bgp.Entry{Prefix: p}})
			}
		}
		tb.Apply(d)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if tb.Generation() != 100 {
		t.Fatalf("generation = %d, want 100", tb.Generation())
	}
	t.Logf("readers completed %d lookups across 100 swaps", lookups.Load())

	// Reference: compile the tracked live sets from scratch.
	setEntries := func(set map[netutil.Prefix]struct{}) []bgp.Entry {
		out := make([]bgp.Entry, 0, len(set))
		for p := range set {
			out = append(out, bgp.Entry{Prefix: p})
		}
		return out
	}
	ref := bgp.NewMerged()
	ref.Add(&bgp.Snapshot{Name: "P", Kind: bgp.SourceBGP, Entries: setEntries(live[0])})
	ref.Add(&bgp.Snapshot{Name: "S", Kind: bgp.SourceNetworkDump, Entries: setEntries(live[1])})
	refC := ref.Compile()

	final := tb.Load()
	if final.NumPrimary() != refC.NumPrimary() || final.NumSecondary() != refC.NumSecondary() {
		t.Fatalf("sizes: incremental %d/%d vs recompile %d/%d",
			final.NumPrimary(), final.NumSecondary(), refC.NumPrimary(), refC.NumSecondary())
	}

	// 10k-address probe set: uniform random plus every live boundary.
	probes := make([]netutil.Addr, 0, 10000+2*len(seen))
	for i := 0; i < 10000; i++ {
		probes = append(probes, netutil.Addr(rng.Uint32()))
	}
	for p := range seen {
		probes = append(probes, p.First(), p.Last())
	}
	for _, addr := range probes {
		im, iok := final.Lookup(addr)
		rm, rok := refC.Lookup(addr)
		if iok != rok || im != rm {
			t.Fatalf("Lookup(%v): incremental (%+v,%v) vs recompile (%+v,%v)", addr, im, iok, rm, rok)
		}
	}
}
