package cluster

import (
	"context"
	"fmt"
	"io"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/sketch"
	"github.com/netaware/netcluster/internal/weblog"
)

// Bounded-memory streaming accounting. The exact streaming accumulator
// (ClusterStream) keeps one map entry per distinct cluster and client —
// O(distinct) memory, which a firehose replay of 100M requests turns
// into gigabytes of RSS. The paper's Section 4.1.3 thresholding
// observation justifies a cheaper contract: ~70% of requests come from
// a small busy tail of clusters, so track the top-K busy clusters in
// exact counters (space-saving summary) and approximate the long tail
// in a count-min sketch. Memory becomes O(K + sketch width), fixed at
// construction and independent of stream length or cluster cardinality.

// SpillPolicy selects what happens to traffic from clusters that fall
// out of the monitored set.
type SpillPolicy string

const (
	// SpillSketch (the default) counts every record in a count-min
	// sketch too, so any cluster's request/byte volume stays queryable
	// within ε·N — the evicted tail is approximated, never lost.
	SpillSketch SpillPolicy = "sketch"
	// SpillDrop skips the tail sketch: unmonitored clusters are bounded
	// only by the summary's minimum counter. Halves the footprint when
	// only the heavy hitters matter.
	SpillDrop SpillPolicy = "drop"
)

// BoundedConfig sizes a BoundedAccumulator.
type BoundedConfig struct {
	// K is how many busy clusters the caller wants exact; Busy(K) and
	// the top-K acceptance checks report this many.
	K int
	// Capacity is the monitored-counter budget (default 8×K). The
	// space-saving guarantee is relative to Capacity: any cluster with
	// more than Total/Capacity requests is monitored, and headroom over
	// K is what keeps the top K exact (entered early, never evicted).
	Capacity int
	// Epsilon and Delta size the tail sketch: estimates overshoot by at
	// most ε·N with probability 1-δ. Defaults 1e-4 and 0.01.
	Epsilon float64
	Delta   float64
	// Spill selects the tail policy; default SpillSketch.
	Spill SpillPolicy
}

func (c BoundedConfig) withDefaults() BoundedConfig {
	if c.K <= 0 {
		c.K = 100
	}
	if c.Capacity <= 0 {
		c.Capacity = 8 * c.K
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-4
	}
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Spill == "" {
		c.Spill = SpillSketch
	}
	return c
}

// Validate rejects configurations the accumulator cannot honor.
func (c BoundedConfig) Validate() error {
	d := c.withDefaults()
	if d.Capacity < d.K {
		return fmt.Errorf("cluster: bounded capacity %d below K %d", d.Capacity, d.K)
	}
	if d.Epsilon < 0 || d.Epsilon >= 1 || d.Delta < 0 || d.Delta >= 1 {
		return fmt.Errorf("cluster: bounded epsilon/delta (%v, %v) out of (0, 1)", d.Epsilon, d.Delta)
	}
	switch d.Spill {
	case SpillSketch, SpillDrop:
	default:
		return fmt.Errorf("cluster: unknown spill policy %q (want %q or %q)", d.Spill, SpillSketch, SpillDrop)
	}
	return nil
}

// prefixKey encodes a prefix injectively into the sketch key space:
// 32 address bits and 6 length bits never collide, so space-saving
// entries identify their cluster exactly.
func prefixKey(p netutil.Prefix) uint64 {
	return uint64(p.Addr())<<6 | uint64(p.Bits())
}

func keyPrefix(k uint64) netutil.Prefix {
	return netutil.PrefixFrom(netutil.Addr(k>>6), int(k&63))
}

// BusyCluster is one reported heavy hitter. Requests and Bytes are
// upper bounds; the matching Err fields are the slack (true value ≥
// bound - err). Exact is true when the counter was never evicted, i.e.
// both values are byte-identical to what the exact accumulator holds.
type BusyCluster struct {
	Prefix      netutil.Prefix `json:"prefix"`
	Requests    uint64         `json:"requests"`
	RequestsErr uint64         `json:"requests_err,omitempty"`
	Bytes       uint64         `json:"bytes"`
	BytesErr    uint64         `json:"bytes_err,omitempty"`
	Exact       bool           `json:"exact"`
}

// BoundedAccumulator tracks per-cluster request and byte volume in
// fixed memory. Not safe for concurrent use; callers serialize (the
// clusterd batch path locks once per batch, not per record).
type BoundedAccumulator struct {
	cfg     BoundedConfig
	summary *sketch.SpaceSaving
	tailReq *sketch.CountMin // nil under SpillDrop
	tailByt *sketch.CountMin // nil under SpillDrop

	requests    uint64
	bytes       uint64
	unclustered uint64

	pubEvictions uint64 // last eviction total flushed to the obsv counter
	pubRequests  uint64 // last request total flushed to the obsv counter
}

// NewBoundedAccumulator builds an accumulator from cfg (zero fields
// take defaults).
func NewBoundedAccumulator(cfg BoundedConfig) (*BoundedAccumulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	b := &BoundedAccumulator{
		cfg:     cfg,
		summary: sketch.NewSpaceSaving(cfg.Capacity),
	}
	if cfg.Spill == SpillSketch {
		var err error
		if b.tailReq, err = sketch.NewCountMinError(cfg.Epsilon, cfg.Delta); err != nil {
			return nil, err
		}
		if b.tailByt, err = sketch.NewCountMinError(cfg.Epsilon, cfg.Delta); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Config returns the resolved configuration.
func (b *BoundedAccumulator) Config() BoundedConfig { return b.cfg }

// Observe records one request of the given byte size for cluster p.
// The hot path: one summary update plus (under SpillSketch) two
// conservative sketch updates — no allocations, no map growth.
func (b *BoundedAccumulator) Observe(p netutil.Prefix, size int64) {
	b.requests++
	b.bytes += uint64(size)
	key := prefixKey(p)
	b.summary.Add(key, 1, uint64(size))
	if b.tailReq != nil {
		b.tailReq.AddConservative(key, 1)
		b.tailByt.AddConservative(key, uint64(size))
	}
}

// ObserveUnclustered counts a request no prefix covered; it
// participates in totals but belongs to no cluster.
func (b *BoundedAccumulator) ObserveUnclustered() {
	b.requests++
	b.unclustered++
}

// Requests returns the total observed request count (clustered +
// unclustered).
func (b *BoundedAccumulator) Requests() uint64 { return b.requests }

// Bytes returns the total observed byte volume.
func (b *BoundedAccumulator) Bytes() uint64 { return b.bytes }

// Unclustered returns how many requests no prefix covered.
func (b *BoundedAccumulator) Unclustered() uint64 { return b.unclustered }

// Occupancy returns how many clusters are currently monitored exactly.
func (b *BoundedAccumulator) Occupancy() int { return b.summary.Len() }

// Evictions returns the cumulative heavy-hitter churn: how many times
// a cluster was pushed out of the monitored set.
func (b *BoundedAccumulator) Evictions() uint64 { return b.summary.Evictions() }

// TailBound returns the summary's current eviction threshold: no
// unmonitored cluster can have issued more requests, and no monitored
// counter overstates by more. Zero while the monitored set has room.
func (b *BoundedAccumulator) TailBound() uint64 { return b.summary.MinCount() }

// ErrorBound returns the tail sketch's current absolute error ceiling
// ε·N (0 under SpillDrop, where no tail estimate exists).
func (b *BoundedAccumulator) ErrorBound() uint64 {
	if b.tailReq == nil {
		return 0
	}
	return b.tailReq.ErrorBound()
}

// Busy returns the k busiest clusters by request count, descending,
// ties by prefix-key ascending.
func (b *BoundedAccumulator) Busy(k int) []BusyCluster {
	top := b.summary.Top(k)
	out := make([]BusyCluster, len(top))
	for i, e := range top {
		out[i] = BusyCluster{
			Prefix:      keyPrefix(e.Key),
			Requests:    e.Count,
			RequestsErr: e.Err,
			Bytes:       e.Bytes,
			BytesErr:    e.ByteErr,
			Exact:       e.Err == 0 && e.ByteErr == 0,
		}
	}
	return out
}

// GuaranteedTopK reports whether the current top k is provably the
// true top k with exact counts: every reported entry is eviction-free
// (Err == 0) and its count strictly exceeds the best upper bound any
// other cluster — monitored or not — could hold. When true, the
// reported counts are byte-identical to the exact accumulator's.
func (b *BoundedAccumulator) GuaranteedTopK(k int) bool {
	top := b.summary.Top(k + 1)
	if len(top) < k {
		// Fewer distinct clusters than k: everything monitored, and
		// exactness reduces to eviction-freedom.
		for _, e := range top {
			if e.Err != 0 {
				return false
			}
		}
		return b.summary.Evictions() == 0
	}
	// The strongest competitor for rank k is either the (k+1)-th
	// monitored upper bound or an unmonitored cluster, bounded by the
	// summary's minimum counter.
	rival := b.summary.MinCount()
	if len(top) > k && top[k].Count > rival {
		rival = top[k].Count
	}
	for _, e := range top[:k] {
		if e.Err != 0 || e.Count <= rival {
			return false
		}
	}
	return true
}

// EstimateRequests returns an upper-bound request count for any
// cluster. exact is true when the cluster is monitored eviction-free
// (the value equals the true count); otherwise the estimate comes from
// the tail sketch (≤ true + ε·N) or, under SpillDrop, from the
// summary's eviction threshold.
func (b *BoundedAccumulator) EstimateRequests(p netutil.Prefix) (est uint64, exact bool) {
	key := prefixKey(p)
	if e, ok := b.summary.Get(key); ok {
		return e.Count, e.Err == 0
	}
	if b.tailReq != nil {
		return b.tailReq.Estimate(key), false
	}
	return b.summary.MinCount(), false
}

// EstimateBytes is EstimateRequests for byte volume, with one twist:
// the summary's eviction invariant (the minimum counter dominates any
// evicted key) holds for request counts — the heap's order key — but
// not for bytes, so a monitored-but-evicted-before entry's byte counter
// is not an upper bound. For those entries the byte sketch, which
// counts everything, supplies the valid overestimate; under SpillDrop
// only the bracketed summary value exists and exact stays false.
func (b *BoundedAccumulator) EstimateBytes(p netutil.Prefix) (est uint64, exact bool) {
	key := prefixKey(p)
	e, ok := b.summary.Get(key)
	if ok && e.ByteErr == 0 {
		return e.Bytes, true
	}
	if b.tailByt != nil {
		return b.tailByt.Estimate(key), false
	}
	if ok {
		return e.Bytes, false
	}
	return 0, false
}

// Merge folds a shard's accumulator into b: summaries merge with the
// space-saving rule, tail sketches cell-wise. Configurations must
// agree (capacity and sketch dimensions), or the merge is rejected.
func (b *BoundedAccumulator) Merge(o *BoundedAccumulator) error {
	if o == nil {
		return fmt.Errorf("cluster: merge with nil bounded accumulator")
	}
	if (b.tailReq == nil) != (o.tailReq == nil) {
		return fmt.Errorf("cluster: merge across spill policies (%q vs %q)", b.cfg.Spill, o.cfg.Spill)
	}
	if err := b.summary.Merge(o.summary); err != nil {
		return err
	}
	if b.tailReq != nil {
		if err := b.tailReq.Merge(o.tailReq); err != nil {
			return err
		}
		if err := b.tailByt.Merge(o.tailByt); err != nil {
			return err
		}
	}
	b.requests += o.requests
	b.bytes += o.bytes
	b.unclustered += o.unclustered
	return nil
}

// FootprintBytes returns the accumulator's fixed memory budget — the
// quantity the firehose RSS ceiling is asserted against.
func (b *BoundedAccumulator) FootprintBytes() int {
	n := b.summary.FootprintBytes() + 96
	if b.tailReq != nil {
		n += b.tailReq.FootprintBytes() + b.tailByt.FootprintBytes()
	}
	return n
}

// PublishMetrics flushes the accumulator's state to the obsv registry:
// monitored-set occupancy, observed records and eviction churn (as
// counter deltas since the last flush), the ε·N error ceiling and the
// fixed footprint. Call once per batch or stream, never per record.
func (b *BoundedAccumulator) PublishMetrics() {
	boundedOccupancy.Set(int64(b.summary.Len()))
	boundedErrorBound.Set(int64(b.ErrorBound()))
	boundedFootprint.Set(int64(b.FootprintBytes()))
	if ev := b.summary.Evictions(); ev > b.pubEvictions {
		boundedEvictions.Add(ev - b.pubEvictions)
		b.pubEvictions = ev
	}
	if b.requests > b.pubRequests {
		boundedRecords.Add(b.requests - b.pubRequests)
		b.pubRequests = b.requests
	}
}

// BoundedStreamResult is what one bounded pass over a CLF stream
// yields: the busy tail exactly, totals, and the accumulator itself
// for tail queries and shard merges.
type BoundedStreamResult struct {
	Method        string
	Busy          []BusyCluster
	TotalRequests int
	Acc           *BoundedAccumulator
	Stats         weblog.StreamStats
}

// clientCacheBits sizes the direct-mapped client→cluster cache the
// bounded stream pass uses instead of the exact engines' unbounded
// per-client memo maps: 2^16 entries ≈ 1 MiB, fixed.
const clientCacheBits = 16

type clientCacheEntry struct {
	addr  netutil.Addr
	p     netutil.Prefix
	state uint8 // 0 empty, 1 clustered, 2 unclusterable
}

// ClusterStreamBounded clusters a CLF stream in one pass and fixed
// memory — the firehose mode. Unlike ClusterStream it retains no
// per-client or per-URL maps: cluster membership lookups go through a
// fixed direct-mapped cache, per-cluster accounting through the
// sketch-backed accumulator. Semantics match ClusterStream for
// request/byte totals of the busy clusters (byte-identical while the
// top K is guaranteed, see GuaranteedTopK); client sets and URL sets
// are not tracked — that is the memory being saved.
func ClusterStreamBounded(r io.Reader, c Clusterer, cfg BoundedConfig) (*BoundedStreamResult, error) {
	return ClusterStreamBoundedCtx(context.Background(), r, c, cfg)
}

// ClusterStreamBoundedCtx is ClusterStreamBounded under a trace
// context: the pass records a "cluster.stream.bounded" span with the
// parse work nested underneath.
func ClusterStreamBoundedCtx(ctx context.Context, r io.Reader, c Clusterer, cfg BoundedConfig) (*BoundedStreamResult, error) {
	acc, err := NewBoundedAccumulator(cfg)
	if err != nil {
		return nil, err
	}
	sctx, sp := obsv.StartTraceSpan(ctx, "cluster.stream.bounded")
	res := &BoundedStreamResult{Method: c.Name(), Acc: acc}
	cache := make([]clientCacheEntry, 1<<clientCacheBits)
	stats, err := weblog.StreamCLFCtx(sctx, r, func(rec weblog.StreamRecord) bool {
		res.TotalRequests++
		client := rec.Request.Client
		slot := &cache[uint32(client)*2654435761>>(32-clientCacheBits)]
		if slot.state == 0 || slot.addr != client {
			p, ok := c.Cluster(client)
			slot.addr = client
			if ok {
				slot.p, slot.state = p, 1
			} else {
				slot.p, slot.state = netutil.Prefix{}, 2
			}
		}
		if slot.state == 2 {
			acc.ObserveUnclustered()
			return true
		}
		acc.Observe(slot.p, int64(rec.Size))
		return true
	})
	res.Stats = stats
	res.Busy = acc.Busy(acc.cfg.K)
	streamRecords.Add(uint64(res.TotalRequests))
	acc.PublishMetrics()
	sp.SetAttr("method", res.Method)
	sp.SetAttrInt("records", int64(res.TotalRequests))
	sp.SetAttrInt("monitored", int64(acc.Occupancy()))
	sp.SetAttrInt("evictions", int64(acc.Evictions()))
	if err != nil {
		sp.Fail(err)
		sp.End()
		return nil, err
	}
	sp.End()
	return res, nil
}
