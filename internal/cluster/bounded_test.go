package cluster

import (
	"bytes"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

func TestBoundedConfigValidate(t *testing.T) {
	if err := (BoundedConfig{}).Validate(); err != nil {
		t.Fatalf("zero config (all defaults) rejected: %v", err)
	}
	for _, bad := range []BoundedConfig{
		{K: 100, Capacity: 10},
		{Epsilon: 2},
		{Delta: -1},
		{Spill: "teleport"},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	if _, err := NewBoundedAccumulator(BoundedConfig{Spill: "nope"}); err == nil {
		t.Fatal("constructor accepted invalid config")
	}
}

func TestPrefixKeyRoundTrip(t *testing.T) {
	for _, p := range []netutil.Prefix{
		mustPrefix(t, "0.0.0.0/0"),
		mustPrefix(t, "12.0.0.0/8"),
		mustPrefix(t, "192.168.4.0/22"),
		mustPrefix(t, "255.255.255.255/32"),
	} {
		if got := keyPrefix(prefixKey(p)); got != p {
			t.Fatalf("%v round-tripped to %v", p, got)
		}
	}
}

func mustPrefix(t *testing.T, s string) netutil.Prefix {
	t.Helper()
	p, err := netutil.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBoundedExactWhileUnderCapacity: with fewer distinct clusters
// than capacity the accumulator IS the exact accumulator — every
// count and byte total exact, zero evictions, guaranteed top-K.
func TestBoundedExactWhileUnderCapacity(t *testing.T) {
	acc, err := NewBoundedAccumulator(BoundedConfig{K: 4, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	prefixes := []netutil.Prefix{
		mustPrefix(t, "10.0.0.0/8"),
		mustPrefix(t, "12.64.0.0/12"),
		mustPrefix(t, "192.168.0.0/16"),
	}
	for i := 0; i < 300; i++ {
		p := prefixes[i%3]
		acc.Observe(p, int64(100+i%3))
	}
	acc.ObserveUnclustered()
	if acc.Requests() != 301 || acc.Unclustered() != 1 {
		t.Fatalf("totals: %d requests, %d unclustered", acc.Requests(), acc.Unclustered())
	}
	if acc.Evictions() != 0 || acc.Occupancy() != 3 {
		t.Fatalf("evictions %d occupancy %d", acc.Evictions(), acc.Occupancy())
	}
	for _, p := range prefixes {
		est, exact := acc.EstimateRequests(p)
		if !exact || est != 100 {
			t.Fatalf("%v: estimate %d exact=%v, want 100 exact", p, est, exact)
		}
	}
	if !acc.GuaranteedTopK(3) {
		t.Fatal("under-capacity top-K not guaranteed")
	}
	busy := acc.Busy(4)
	if len(busy) != 3 {
		t.Fatalf("busy(4) returned %d clusters", len(busy))
	}
	for _, b := range busy {
		if !b.Exact || b.RequestsErr != 0 || b.BytesErr != 0 {
			t.Fatalf("under-capacity entry not exact: %+v", b)
		}
	}
}

// TestBoundedSpillPolicies: under SpillSketch an evicted cluster stays
// queryable within ε·N; under SpillDrop the estimate degrades to the
// eviction threshold, and the two policies refuse to merge.
func TestBoundedSpillPolicies(t *testing.T) {
	sk, err := NewBoundedAccumulator(BoundedConfig{K: 2, Capacity: 2, Epsilon: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := NewBoundedAccumulator(BoundedConfig{K: 2, Capacity: 2, Spill: SpillDrop})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := mustPrefix(t, "10.0.0.0/8"), mustPrefix(t, "11.0.0.0/8"), mustPrefix(t, "12.0.0.0/8")
	for _, acc := range []*BoundedAccumulator{sk, dr} {
		for i := 0; i < 50; i++ {
			acc.Observe(a, 10)
			acc.Observe(b, 10)
		}
		acc.Observe(c, 10) // evicts one of the two monitored entries
		if acc.Evictions() == 0 {
			t.Fatal("full summary did not evict")
		}
	}
	if est, _ := sk.EstimateRequests(b); est < 50 || est > 50+sk.ErrorBound()+1 {
		t.Fatalf("sketch-spill estimate %d outside [50, 50+εN=%d]", est, 50+sk.ErrorBound())
	}
	if dr.ErrorBound() != 0 {
		t.Fatal("drop policy reports a sketch error bound")
	}
	if err := sk.Merge(dr); err == nil {
		t.Fatal("cross-policy merge accepted")
	}
}

// TestBoundedMerge: sharded accumulators merge into one whose busy set
// covers the union, with totals summed exactly.
func TestBoundedMerge(t *testing.T) {
	cfg := BoundedConfig{K: 8, Capacity: 128}
	a, _ := NewBoundedAccumulator(cfg)
	b, _ := NewBoundedAccumulator(cfg)
	p1, p2 := mustPrefix(t, "10.0.0.0/8"), mustPrefix(t, "20.0.0.0/8")
	for i := 0; i < 40; i++ {
		a.Observe(p1, 100)
		b.Observe(p2, 50)
	}
	b.Observe(p1, 100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Requests() != 81 || a.Bytes() != 40*100+40*50+100 {
		t.Fatalf("merged totals: %d requests, %d bytes", a.Requests(), a.Bytes())
	}
	if est, exact := a.EstimateRequests(p1); !exact || est != 41 {
		t.Fatalf("merged p1 estimate %d exact=%v, want 41 exact", est, exact)
	}
	if est, exact := a.EstimateRequests(p2); !exact || est != 40 {
		t.Fatalf("merged p2 estimate %d exact=%v, want 40 exact", est, exact)
	}
}

// TestClusterStreamBoundedMatchesExact: on a real (small) CLF stream
// the bounded pass and the exact streaming pass agree on the busy
// clusters' request and byte totals — the in-memory analogue of the
// firehose acceptance, runnable on every `go test`.
func TestClusterStreamBoundedMatchesExact(t *testing.T) {
	world, c := fhSetup(t)
	l, err := weblog.Generate(world, weblog.Nagano(0.01))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := weblog.WriteCLF(&buf, l); err != nil {
		t.Fatal(err)
	}
	clf := buf.Bytes()

	exact, err := ClusterStream(bytes.NewReader(clf), c)
	if err != nil {
		t.Fatal(err)
	}
	const K = 10
	res, err := ClusterStreamBounded(bytes.NewReader(clf), c, BoundedConfig{K: K, Capacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests != exact.TotalRequests {
		t.Fatalf("record totals diverge: bounded %d, exact %d", res.TotalRequests, exact.TotalRequests)
	}
	if !res.Acc.GuaranteedTopK(K) {
		t.Fatalf("top-%d not guaranteed with %dx capacity headroom", K, 1024/K)
	}
	for i, b := range res.Busy {
		ec, ok := exact.Clusters[b.Prefix]
		if !ok {
			t.Fatalf("busy[%d] %v unknown to the exact pass", i, b.Prefix)
		}
		if uint64(ec.Requests) != b.Requests || uint64(ec.Bytes) != b.Bytes {
			t.Fatalf("busy[%d] %v: bounded (%d req, %d B) vs exact (%d req, %d B)",
				i, b.Prefix, b.Requests, b.Bytes, ec.Requests, ec.Bytes)
		}
		if !b.Exact {
			t.Fatalf("busy[%d] %v not flagged exact", i, b.Prefix)
		}
	}
}
