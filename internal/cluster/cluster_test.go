package cluster

import (
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

func pfx(s string) netutil.Prefix { return netutil.MustParsePrefix(s) }
func addr(s string) netutil.Addr  { return netutil.MustParseAddr(s) }

func mergedTable(prefixes ...string) *bgp.Merged {
	s := &bgp.Snapshot{Name: "T", Kind: bgp.SourceBGP}
	for _, p := range prefixes {
		s.Entries = append(s.Entries, bgp.Entry{Prefix: pfx(p)})
	}
	m := bgp.NewMerged()
	m.Add(s)
	return m
}

// logOf builds a log from (client, url) pairs at increasing times.
func logOf(pairs ...[2]string) *weblog.Log {
	l := &weblog.Log{
		Name:     "t",
		Start:    time.Unix(0, 0),
		Duration: time.Hour,
		Agents:   []string{"UA"},
	}
	urlIdx := map[string]int32{}
	for i, p := range pairs {
		id, ok := urlIdx[p[1]]
		if !ok {
			id = int32(len(l.Resources))
			urlIdx[p[1]] = id
			l.Resources = append(l.Resources, weblog.Resource{Path: p[1], Size: 1000})
		}
		l.Requests = append(l.Requests, weblog.Request{
			Time: uint32(i), Client: addr(p[0]), URL: id,
		})
	}
	return l
}

func TestNetworkAwarePaperExample(t *testing.T) {
	// Section 3.2.1's worked example: six clients into two clusters.
	m := mergedTable("12.65.128.0/19", "24.48.2.0/23")
	l := logOf(
		[2]string{"12.65.147.94", "/a"},
		[2]string{"12.65.147.149", "/a"},
		[2]string{"12.65.146.207", "/b"},
		[2]string{"12.65.144.247", "/c"},
		[2]string{"24.48.3.87", "/a"},
		[2]string{"24.48.2.166", "/d"},
	)
	res := ClusterLog(l, NetworkAware{Table: m})
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(res.Clusters))
	}
	att, ok := res.Find(pfx("12.65.128.0/19"))
	if !ok || att.NumClients() != 4 || att.Requests != 4 {
		t.Fatalf("12.65.128.0/19 cluster: %+v ok=%v", att, ok)
	}
	if att.NumURLs() != 3 {
		t.Errorf("att cluster URLs = %d, want 3", att.NumURLs())
	}
	cable, ok := res.Find(pfx("24.48.2.0/23"))
	if !ok || cable.NumClients() != 2 {
		t.Fatalf("24.48.2.0/23 cluster: %+v ok=%v", cable, ok)
	}
	if res.Coverage() != 1.0 {
		t.Errorf("coverage = %g", res.Coverage())
	}
}

func TestSimpleApproach(t *testing.T) {
	// The paper's motivating failure: three hosts in distinct /28s that the
	// simple approach lumps into one /24 cluster.
	l := logOf(
		[2]string{"151.198.194.17", "/a"},
		[2]string{"151.198.194.34", "/a"},
		[2]string{"151.198.194.50", "/a"},
	)
	res := ClusterLog(l, Simple{})
	if len(res.Clusters) != 1 {
		t.Fatalf("simple approach must produce 1 cluster, got %d", len(res.Clusters))
	}
	if res.Clusters[0].Prefix != pfx("151.198.194.0/24") {
		t.Fatalf("cluster prefix = %v", res.Clusters[0].Prefix)
	}
	// The network-aware table with the true /28s separates them.
	m := mergedTable("151.198.194.16/28", "151.198.194.32/28", "151.198.194.48/28")
	res2 := ClusterLog(l, NetworkAware{Table: m})
	if len(res2.Clusters) != 3 {
		t.Fatalf("network-aware must produce 3 clusters, got %d", len(res2.Clusters))
	}
}

func TestClassful(t *testing.T) {
	l := logOf(
		[2]string{"9.1.2.3", "/a"},        // class A → 9.0.0.0/8
		[2]string{"9.200.2.3", "/a"},      // same /8
		[2]string{"151.198.194.17", "/a"}, // class B → 151.198.0.0/16
		[2]string{"203.1.2.3", "/a"},      // class C → 203.1.2.0/24
	)
	res := ClusterLog(l, Classful{})
	if len(res.Clusters) != 3 {
		t.Fatalf("classful clusters = %d, want 3", len(res.Clusters))
	}
	if _, ok := res.Find(pfx("9.0.0.0/8")); !ok {
		t.Error("missing class A cluster")
	}
	if _, ok := res.Find(pfx("151.198.0.0/16")); !ok {
		t.Error("missing class B cluster")
	}
	if _, ok := res.Find(pfx("203.1.2.0/24")); !ok {
		t.Error("missing class C cluster")
	}
	// Class D is not clusterable.
	if _, ok := (Classful{}).Cluster(addr("224.0.0.1")); ok {
		t.Error("class D must be unclusterable")
	}
}

func TestUnclusteredAccounting(t *testing.T) {
	m := mergedTable("12.65.128.0/19")
	l := logOf(
		[2]string{"12.65.147.94", "/a"},
		[2]string{"99.99.99.99", "/a"}, // no covering prefix
		[2]string{"99.99.99.99", "/b"},
	)
	res := ClusterLog(l, NetworkAware{Table: m})
	if len(res.Unclustered) != 1 || res.Unclustered[0] != addr("99.99.99.99") {
		t.Fatalf("Unclustered = %v", res.Unclustered)
	}
	if res.Coverage() != 0.5 {
		t.Fatalf("coverage = %g", res.Coverage())
	}
	if res.TotalRequests != 3 {
		t.Fatalf("TotalRequests = %d (unclustered requests still counted)", res.TotalRequests)
	}
	if res.NumClients() != 1 {
		t.Fatalf("NumClients = %d", res.NumClients())
	}
}

func TestUnspecifiedClientSkipped(t *testing.T) {
	l := logOf(
		[2]string{"0.0.0.0", "/a"},
		[2]string{"12.65.147.94", "/a"},
	)
	res := ClusterLog(l, Simple{})
	if res.TotalRequests != 1 || res.NumClients() != 1 {
		t.Fatalf("0.0.0.0 must be excluded entirely: %+v", res)
	}
}

func TestClusterOfAndBytes(t *testing.T) {
	l := logOf(
		[2]string{"1.2.3.4", "/a"},
		[2]string{"1.2.3.4", "/a"},
		[2]string{"1.2.3.9", "/b"},
	)
	res := ClusterLog(l, Simple{})
	c, ok := res.ClusterOf(addr("1.2.3.4"))
	if !ok || c.Clients[addr("1.2.3.4")] != 2 {
		t.Fatalf("ClusterOf: %+v ok=%v", c, ok)
	}
	if c.Bytes != 3000 {
		t.Fatalf("Bytes = %d", c.Bytes)
	}
	if _, ok := res.ClusterOf(addr("9.9.9.9")); ok {
		t.Error("unknown client must not resolve")
	}
}

func TestOrderings(t *testing.T) {
	// Three clusters: A(3 clients, 3 reqs), B(1 client, 10 reqs), C(2, 2).
	l := logOf(
		[2]string{"1.1.1.1", "/a"}, [2]string{"1.1.1.2", "/a"}, [2]string{"1.1.1.3", "/a"},
		[2]string{"2.2.2.1", "/a"}, [2]string{"2.2.2.1", "/b"}, [2]string{"2.2.2.1", "/c"},
		[2]string{"2.2.2.1", "/d"}, [2]string{"2.2.2.1", "/e"}, [2]string{"2.2.2.1", "/f"},
		[2]string{"2.2.2.1", "/g"}, [2]string{"2.2.2.1", "/h"}, [2]string{"2.2.2.1", "/i"},
		[2]string{"2.2.2.1", "/j"},
		[2]string{"3.3.3.1", "/a"}, [2]string{"3.3.3.2", "/a"},
	)
	res := ClusterLog(l, Simple{})
	byC := res.ByClientsDesc()
	if byC[0].Prefix != pfx("1.1.1.0/24") || byC[1].Prefix != pfx("3.3.3.0/24") || byC[2].Prefix != pfx("2.2.2.0/24") {
		t.Fatalf("ByClientsDesc order: %v %v %v", byC[0].Prefix, byC[1].Prefix, byC[2].Prefix)
	}
	byR := res.ByRequestsDesc()
	if byR[0].Prefix != pfx("2.2.2.0/24") {
		t.Fatalf("ByRequestsDesc first = %v", byR[0].Prefix)
	}
	// Aligned metric extraction.
	if got := ClientCounts(byC); got[0] != 3 || got[1] != 2 || got[2] != 1 {
		t.Fatalf("ClientCounts = %v", got)
	}
	if got := RequestCounts(byR); got[0] != 10 {
		t.Fatalf("RequestCounts = %v", got)
	}
	if got := URLCounts(byR); got[0] != 10 {
		t.Fatalf("URLCounts = %v", got)
	}
	if got := ByteCounts(byR); got[0] != 10000 {
		t.Fatalf("ByteCounts = %v", got)
	}
}

func TestThresholdBusy(t *testing.T) {
	// Clusters with requests 50, 30, 15, 5 (total 100). 70% target → the
	// first two (80 ≥ 70).
	var pairs [][2]string
	emit := func(base string, n int) {
		for i := 0; i < n; i++ {
			pairs = append(pairs, [2]string{base, "/u"})
		}
	}
	emit("1.1.1.1", 50)
	emit("2.2.2.2", 30)
	emit("3.3.3.3", 15)
	emit("4.4.4.4", 5)
	res := ClusterLog(logOf(pairs...), Simple{})
	th := res.ThresholdBusy(0.70)
	if len(th.Busy) != 2 || len(th.LessBusy) != 2 {
		t.Fatalf("busy=%d lessBusy=%d", len(th.Busy), len(th.LessBusy))
	}
	if th.Threshold != 30 {
		t.Fatalf("threshold = %d", th.Threshold)
	}
	// 100% keeps everything.
	all := res.ThresholdBusy(1.0)
	if len(all.Busy) != 4 || len(all.LessBusy) != 0 {
		t.Fatalf("100%%: busy=%d", len(all.Busy))
	}
}

func TestNetworkAwareSourceOf(t *testing.T) {
	m := bgp.NewMerged()
	m.Add(&bgp.Snapshot{Name: "B", Kind: bgp.SourceBGP,
		Entries: []bgp.Entry{{Prefix: pfx("12.65.128.0/19")}}})
	m.Add(&bgp.Snapshot{Name: "R", Kind: bgp.SourceNetworkDump,
		Entries: []bgp.Entry{{Prefix: pfx("99.0.0.0/8")}}})
	na := NetworkAware{Table: m}
	if k, ok := na.SourceOf(addr("12.65.147.94")); !ok || k != bgp.SourceBGP {
		t.Errorf("SourceOf BGP client = %v, %v", k, ok)
	}
	if k, ok := na.SourceOf(addr("99.1.2.3")); !ok || k != bgp.SourceNetworkDump {
		t.Errorf("SourceOf dump client = %v, %v", k, ok)
	}
	if _, ok := na.SourceOf(addr("55.5.5.5")); ok {
		t.Error("uncovered client must have no source")
	}
}

func TestFuncAdapter(t *testing.T) {
	// Func lets callers re-cluster under an arbitrary assignment; used by
	// the self-correction stage.
	f := Func{
		Label: "override",
		Fn: func(a netutil.Addr) (netutil.Prefix, bool) {
			if a == addr("1.2.3.4") {
				return pfx("99.0.0.0/8"), true
			}
			return netutil.Prefix{}, false
		},
	}
	if f.Name() != "override" {
		t.Fatalf("Name = %q", f.Name())
	}
	l := logOf([2]string{"1.2.3.4", "/a"}, [2]string{"5.6.7.8", "/a"})
	res := ClusterLog(l, f)
	if len(res.Clusters) != 1 || res.Clusters[0].Prefix != pfx("99.0.0.0/8") {
		t.Fatalf("clusters = %+v", res.Clusters)
	}
	if len(res.Unclustered) != 1 {
		t.Fatalf("unclustered = %v", res.Unclustered)
	}
}

func TestClusterRequestsMatchClientSums(t *testing.T) {
	// Invariant: a cluster's request total equals the sum of its
	// per-client counts, and the sum over clusters plus unclustered
	// requests equals the log total.
	l := logOf(
		[2]string{"1.1.1.1", "/a"}, [2]string{"1.1.1.1", "/b"},
		[2]string{"1.1.1.2", "/a"}, [2]string{"2.2.2.2", "/c"},
	)
	res := ClusterLog(l, Simple{})
	clusterTotal := 0
	for _, c := range res.Clusters {
		perClient := 0
		for _, n := range c.Clients {
			perClient += n
		}
		if perClient != c.Requests {
			t.Fatalf("cluster %v: per-client sum %d != requests %d", c.Prefix, perClient, c.Requests)
		}
		clusterTotal += c.Requests
	}
	if clusterTotal != res.TotalRequests {
		t.Fatalf("cluster total %d != log total %d", clusterTotal, res.TotalRequests)
	}
}

func TestDeterministicClusterOrder(t *testing.T) {
	l := logOf(
		[2]string{"9.9.9.9", "/a"},
		[2]string{"1.1.1.1", "/a"},
		[2]string{"5.5.5.5", "/a"},
	)
	res := ClusterLog(l, Simple{})
	for i := 1; i < len(res.Clusters); i++ {
		if netutil.ComparePrefix(res.Clusters[i-1].Prefix, res.Clusters[i].Prefix) >= 0 {
			t.Fatal("Clusters not in canonical prefix order")
		}
	}
}
