// Package cluster implements the paper's primary contribution: grouping
// web-client IP addresses into clusters — sets of clients that are
// topologically close and likely under common administrative control.
//
// Three cluster identification methods are provided:
//
//   - NetworkAware (the paper's method, Section 3.2): longest-prefix match
//     of each client address against a merged BGP prefix/netmask table;
//     clients with the same longest matched prefix form one cluster.
//   - Simple (the Section 2 baseline): clients sharing the first 24 bits
//     form a cluster, i.e. an assumed /24 everywhere.
//   - Classful (the alternate baseline of Section 2): clusters are the
//     address-class networks — /8 for Class A, /16 for B, /24 for C.
package cluster

import (
	"sync"

	"github.com/netaware/netcluster/internal/bgp"
	"github.com/netaware/netcluster/internal/netutil"
)

// Clusterer assigns a client address to the prefix identifying its
// cluster. ok is false when the method cannot cluster the address (for the
// network-aware method: no prefix in the table covers it).
type Clusterer interface {
	Cluster(addr netutil.Addr) (prefix netutil.Prefix, ok bool)
	Name() string
}

// BatchClusterer is a Clusterer that can resolve many addresses in one
// call — same answers as per-address Cluster, amortized table walks (see
// bgp.Compiled.LookupBatch). ClusterBatch fills prefixes[i], ok[i] for
// addrs[i]; all three slices must have equal length. The parallel
// clustering engines detect this interface and feed their per-shard
// client sets through it.
type BatchClusterer interface {
	Clusterer
	ClusterBatch(addrs []netutil.Addr, prefixes []netutil.Prefix, ok []bool)
}

// NetworkAware clusters through a merged routing table. When Compiled is
// set it is used transparently for every lookup — same matches, same
// source-class accounting, one flat-array walk instead of two tree walks,
// and safe for the parallel clustering engines' concurrent readers.
type NetworkAware struct {
	Table    *bgp.Merged
	Compiled *bgp.Compiled
}

// Compile returns a copy of n backed by a freshly compiled snapshot of its
// table, the read-optimized form for clustering large logs.
func (n NetworkAware) Compile() NetworkAware {
	n.Compiled = n.Table.Compile()
	return n
}

// Cluster performs the longest-prefix match, preferring BGP-derived
// prefixes over registry dumps (see bgp.Merged.Lookup). Each call counts
// toward "bgp.lookup.count" — one atomic add, amortized per distinct
// client because the clustering engines memoize per-client results —
// and every 64th call runs the depth-reporting walk to feed the
// "bgp.lookup.depth" histogram.
func (n NetworkAware) Cluster(addr netutil.Addr) (netutil.Prefix, bool) {
	if n.Compiled != nil {
		if lookupCount.Inc()&depthSampleMask == 0 {
			m, depth, ok := n.Compiled.LookupDepth(addr)
			lookupDepth.Observe(int64(depth))
			if !ok {
				lookupMiss.Inc()
			}
			return m.Prefix, ok
		}
		m, ok := n.Compiled.Lookup(addr)
		if !ok {
			lookupMiss.Inc()
		}
		return m.Prefix, ok
	}
	lookupCount.Inc()
	m, ok := n.Table.Lookup(addr)
	if !ok {
		lookupMiss.Inc()
	}
	return m.Prefix, ok
}

// matchBufPool recycles the []bgp.Match staging buffer across
// ClusterBatch calls, keeping the batch path allocation-free in steady
// state even with many concurrent engine workers.
var matchBufPool = sync.Pool{New: func() any { return new([]bgp.Match) }}

// ClusterBatch implements BatchClusterer: one batched table walk for the
// whole probe set, with the same observability semantics as per-address
// Cluster — every address counts toward "bgp.lookup.count", misses
// toward "bgp.lookup.nomatch", and exactly the lookups whose global
// sequence number crosses a 64-boundary re-run the depth-reporting walk,
// so the 1-in-64 "bgp.lookup.depth" sampling rate survives batching.
// Without a compiled table it degrades to the per-address path.
func (n NetworkAware) ClusterBatch(addrs []netutil.Addr, prefixes []netutil.Prefix, ok []bool) {
	if n.Compiled == nil {
		for i, a := range addrs {
			prefixes[i], ok[i] = n.Cluster(a)
		}
		return
	}
	if len(addrs) == 0 {
		return
	}
	buf := matchBufPool.Get().(*[]bgp.Match)
	*buf = n.Compiled.LookupBatch(addrs, *buf)
	miss := 0
	for i, m := range *buf {
		if m.Prefix.IsZero() {
			prefixes[i] = netutil.Prefix{}
			ok[i] = false
			miss++
			continue
		}
		prefixes[i] = m.Prefix
		ok[i] = true
	}
	matchBufPool.Put(buf)
	base := lookupCount.Add(uint64(len(addrs)))
	if miss > 0 {
		lookupMiss.Add(uint64(miss))
	}
	// Depth sampling: Cluster samples whenever the running lookup count
	// hits a multiple of depthSampleMask+1; replay that rule over the
	// count interval this batch just claimed.
	prev := base - uint64(len(addrs))
	for k := (prev/(depthSampleMask+1) + 1) * (depthSampleMask + 1); k <= base; k += depthSampleMask + 1 {
		_, depth, _ := n.Compiled.LookupDepth(addrs[k-prev-1])
		lookupDepth.Observe(int64(depth))
	}
}

// Name implements Clusterer.
func (NetworkAware) Name() string { return "network-aware" }

// SourceOf reports which source class supplied the cluster prefix for
// addr, for the "<1% via network dumps" accounting.
func (n NetworkAware) SourceOf(addr netutil.Addr) (bgp.SourceKind, bool) {
	if n.Compiled != nil {
		m, ok := n.Compiled.Lookup(addr)
		return m.Kind, ok
	}
	m, ok := n.Table.Lookup(addr)
	return m.Kind, ok
}

// Func adapts a closure to the Clusterer interface. The self-correction
// stage uses it to re-cluster a log under a corrected assignment.
type Func struct {
	Fn    func(netutil.Addr) (netutil.Prefix, bool)
	Label string
}

// Cluster implements Clusterer.
func (f Func) Cluster(addr netutil.Addr) (netutil.Prefix, bool) { return f.Fn(addr) }

// Name implements Clusterer.
func (f Func) Name() string { return f.Label }

// Simple is the first-24-bits baseline. It clusters every address.
type Simple struct{}

// Cluster implements Clusterer.
func (Simple) Cluster(addr netutil.Addr) (netutil.Prefix, bool) {
	return netutil.PrefixFrom(addr, 24), true
}

// Name implements Clusterer.
func (Simple) Name() string { return "simple" }

// Classful groups by address class: /8, /16 or /24 networks. Class D/E
// addresses (multicast/reserved) are not clusterable — they are not
// unicast client addresses, and assigning them a fake network would hide
// log corruption.
type Classful struct{}

// Cluster implements Clusterer.
func (Classful) Cluster(addr netutil.Addr) (netutil.Prefix, bool) {
	bits := addr.ClassfulPrefixLen()
	if bits == 32 {
		return netutil.Prefix{}, false
	}
	return netutil.PrefixFrom(addr, bits), true
}

// Name implements Clusterer.
func (Classful) Name() string { return "classful" }
