package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"

	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/weblog"
)

// Firehose acceptance lane: the bounded accumulator against the exact
// one over the paper's workload profiles, an adversarial Zipf stream,
// and an env-scalable replay with a hard memory ceiling. `make
// firehose-smoke` runs the differential tests under -race and the
// ceiling test at 100M requests; plain `go test` runs everything at
// tier-1-friendly sizes.

// fhFixture: one synthetic world and its compiled routing table, shared
// by the firehose and bounded-stream tests. Unlike parFixture it also
// retains the world, which StreamGen needs.
var fhFixture struct {
	once  sync.Once
	world *inet.Internet
	na    NetworkAware
	err   error
}

func fhSetup(t *testing.T) (*inet.Internet, NetworkAware) {
	t.Helper()
	fhFixture.once.Do(func() {
		cfg := inet.DefaultConfig()
		cfg.NumASes = 250
		cfg.NumTierOne = 8
		w, err := inet.Generate(cfg)
		if err != nil {
			fhFixture.err = err
			return
		}
		sim := bgpsim.New(w, bgpsim.DefaultConfig())
		fhFixture.world = w
		fhFixture.na = NetworkAware{Table: bgpsim.Merge(sim.Collect())}.Compile()
	})
	if fhFixture.err != nil {
		t.Fatal(fhFixture.err)
	}
	return fhFixture.world, fhFixture.na
}

// exactCounts is the unbounded reference accumulator: one map entry per
// cluster, exact request and byte tallies.
type exactCounts struct {
	req map[netutil.Prefix]uint64
	byt map[netutil.Prefix]uint64
}

func newExactCounts() *exactCounts {
	return &exactCounts{req: make(map[netutil.Prefix]uint64), byt: make(map[netutil.Prefix]uint64)}
}

func (e *exactCounts) observe(p netutil.Prefix, size int64) {
	e.req[p]++
	e.byt[p] += uint64(size)
}

// top returns prefixes by decreasing request count, ties by prefix.
func (e *exactCounts) top() []netutil.Prefix {
	out := make([]netutil.Prefix, 0, len(e.req))
	for p := range e.req {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := e.req[out[i]], e.req[out[j]]; a != b {
			return a > b
		}
		return netutil.ComparePrefix(out[i], out[j]) < 0
	})
	return out
}

// requireDifferentialAgreement is the shared oracle: the bounded
// accumulator must (a) match totals, (b) provably pin the top
// guaranteedK, (c) report every Busy(k) entry byte-identical to the
// exact accumulator, (d) cover every cluster strictly busier than its
// k-th reported one, and (e) bound the tail error by ε·N plus the
// eviction threshold, with at most ~1% sketch-side violations (the CM
// guarantee is per-query probabilistic with confidence 1-δ).
func requireDifferentialAgreement(t *testing.T, acc *BoundedAccumulator, exact *exactCounts, unclustered uint64, k, guaranteedK int) {
	t.Helper()
	var reqTotal, bytTotal uint64
	for p, n := range exact.req {
		reqTotal += n
		bytTotal += exact.byt[p]
	}
	if acc.Requests() != reqTotal+unclustered || acc.Bytes() != bytTotal || acc.Unclustered() != unclustered {
		t.Fatalf("totals: bounded (%d req, %d B, %d unclustered) vs exact (%d, %d, %d)",
			acc.Requests(), acc.Bytes(), acc.Unclustered(), reqTotal+unclustered, bytTotal, unclustered)
	}
	if !acc.GuaranteedTopK(guaranteedK) {
		t.Fatalf("top-%d not guaranteed (occupancy %d, evictions %d, tail bound %d)",
			guaranteedK, acc.Occupancy(), acc.Evictions(), acc.TailBound())
	}

	busy := acc.Busy(k)
	if len(busy) == 0 {
		t.Fatal("no busy clusters reported")
	}
	busySet := make(map[netutil.Prefix]bool, len(busy))
	for i, b := range busy {
		busySet[b.Prefix] = true
		wantReq, ok := exact.req[b.Prefix]
		if !ok {
			t.Fatalf("busy[%d] %v unknown to the exact accumulator", i, b.Prefix)
		}
		if !b.Exact || b.Requests != wantReq || b.Bytes != exact.byt[b.Prefix] {
			t.Fatalf("busy[%d] %v: bounded (%d req ±%d, %d B ±%d, exact=%v) vs exact (%d req, %d B)",
				i, b.Prefix, b.Requests, b.RequestsErr, b.Bytes, b.BytesErr, b.Exact,
				wantReq, exact.byt[b.Prefix])
		}
	}

	// Set agreement above the strict boundary: any cluster with more
	// requests than the k-th reported entry must be reported. (At the
	// boundary itself ties may legitimately order either way.)
	boundary := busy[len(busy)-1].Requests
	ordered := exact.top()
	for _, p := range ordered {
		if exact.req[p] <= boundary {
			break
		}
		if !busySet[p] {
			t.Fatalf("cluster %v (%d req) above the top-%d boundary %d but not reported busy",
				p, exact.req[p], k, boundary)
		}
	}

	// Tail: everything is an overestimate, and the slack stays within
	// ε·N (sketch) plus the eviction threshold (summary takeovers).
	allowed := acc.ErrorBound() + acc.TailBound()
	queries, violations := 0, 0
	for _, p := range ordered {
		if busySet[p] {
			continue
		}
		queries++
		est, _ := acc.EstimateRequests(p)
		if est < exact.req[p] {
			t.Fatalf("cluster %v underestimated: %d < true %d", p, est, exact.req[p])
		}
		if best, _ := acc.EstimateBytes(p); best < exact.byt[p] {
			t.Fatalf("cluster %v bytes underestimated: %d < true %d", p, best, exact.byt[p])
		}
		if est-exact.req[p] > allowed {
			violations++
		}
	}
	if max := 3 + queries/100; violations > max {
		t.Fatalf("%d of %d tail estimates overshoot beyond εN+threshold=%d (allowed %d)",
			violations, queries, allowed, max)
	}
}

// TestFirehoseDifferentialPaperProfiles: satellite 2's soak — the
// bounded accumulator against the exact one over all four paper
// workload profiles, fed from the streaming generator through the real
// compiled routing table.
func TestFirehoseDifferentialPaperProfiles(t *testing.T) {
	world, na := fhSetup(t)
	n := 120000
	if testing.Short() {
		n = 30000
	}
	for _, cfg := range weblog.Profiles(0.01) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			g, err := weblog.NewStreamGen(world, cfg)
			if err != nil {
				t.Fatal(err)
			}
			acc, err := NewBoundedAccumulator(BoundedConfig{K: 20, Capacity: 2048, Epsilon: 1e-3})
			if err != nil {
				t.Fatal(err)
			}
			exact := newExactCounts()
			memo := make(map[netutil.Addr]netutil.Prefix)
			bad := make(map[netutil.Addr]bool)
			var unclustered uint64
			for i := 0; i < n; i++ {
				r := g.Next()
				p, seen := memo[r.Client]
				if !seen && !bad[r.Client] {
					var ok bool
					if p, ok = na.Cluster(r.Client); ok {
						memo[r.Client] = p
					} else {
						bad[r.Client] = true
					}
				}
				if bad[r.Client] {
					acc.ObserveUnclustered()
					unclustered++
					continue
				}
				acc.Observe(p, int64(r.Size))
				exact.observe(p, int64(r.Size))
			}
			requireDifferentialAgreement(t, acc, exact, unclustered, 20, 10)
		})
	}
}

// zipfPrefixStream deterministically maps Zipf ranks to distinct /24
// prefixes: an odd multiplier is injective mod 2^24, so rank identity
// is preserved while the address order is scrambled.
type zipfPrefixStream struct {
	rng *rand.Rand
	z   *rand.Zipf
}

func newZipfPrefixStream(seed int64, ranks uint64) *zipfPrefixStream {
	rng := rand.New(rand.NewSource(seed))
	return &zipfPrefixStream{rng: rng, z: rand.NewZipf(rng, 1.01, 1, ranks-1)}
}

func (s *zipfPrefixStream) next() (netutil.Addr, int64) {
	net := (s.z.Uint64() * 2654435761) & 0xFFFFFF
	addr := netutil.Addr(net<<8 | uint64(s.rng.Intn(256)))
	return addr, int64(200 + s.rng.Intn(1400))
}

// TestFirehoseDifferentialAdversarialZipf: the stress the paper
// profiles don't apply — a heavy 1.01-exponent Zipf over a quarter
// million distinct /24s, far more clusters than the monitored budget,
// constant eviction pressure on the summary.
func TestFirehoseDifferentialAdversarialZipf(t *testing.T) {
	n := 400000
	if testing.Short() {
		n = 80000
	}
	acc, err := NewBoundedAccumulator(BoundedConfig{K: 32, Capacity: 4096, Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	exact := newExactCounts()
	src := newZipfPrefixStream(7, 1<<18)
	for i := 0; i < n; i++ {
		addr, size := src.next()
		p, _ := Simple{}.Cluster(addr)
		acc.Observe(p, size)
		exact.observe(p, size)
	}
	if acc.Evictions() == 0 {
		t.Fatal("adversarial stream caused no evictions — not adversarial")
	}
	requireDifferentialAgreement(t, acc, exact, 0, 32, 8)
}

// firehoseRequests resolves the replay length: FIREHOSE_REQUESTS from
// the smoke lane (100M), a tier-1-friendly default otherwise.
func firehoseRequests(t *testing.T) int {
	if v := os.Getenv("FIREHOSE_REQUESTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad FIREHOSE_REQUESTS %q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 200000
	}
	return 2000000
}

// firehoseArtifacts dumps the evidence a CI failure needs: the heap
// trace sampled during the replay and the flight-recorder tail.
func firehoseArtifacts(t *testing.T, trace []string) {
	dir := os.Getenv("FIREHOSE_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	var buf []byte
	for _, line := range trace {
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "rss-trace.txt"), buf, 0o644); err != nil {
		t.Logf("artifacts: %v", err)
	}
	if err := obsv.WriteTraceFile(filepath.Join(dir, "flight-recorder.json")); err != nil {
		t.Logf("artifacts: %v", err)
	}
	t.Logf("firehose artifacts written to %s", dir)
}

// TestFirehoseRSSCeiling is the acceptance run: replay
// FIREHOSE_REQUESTS (100M in the smoke lane) Zipf-distributed requests
// through the bounded pass and assert a hard memory ceiling — then
// replay the identical stream into the exact accumulator and require
// the top-K counts to match exactly. Memory is asserted three ways:
// the accumulator's declared footprint, live-heap growth over the
// replay, and (on Linux, informationally traced) process RSS.
func TestFirehoseRSSCeiling(t *testing.T) {
	const (
		k        = 32
		ceiling  = 48 << 20 // hard heap-growth ceiling, bytes
		universe = 1 << 20  // distinct /24s on offer
		seed     = 42
	)
	n := firehoseRequests(t)

	var trace []string
	sample := func(stage string, i int) uint64 {
		runtime.GC()
		heap := obsv.HeapAllocBytes()
		line := fmt.Sprintf("%s\t%d\theap=%d", stage, i, heap)
		if rss, ok := obsv.RSSBytes(); ok {
			line += fmt.Sprintf("\trss=%d", rss)
		}
		trace = append(trace, line)
		return heap
	}

	// Pass 1: bounded, with the ceiling enforced. The generator state is
	// O(1), so heap growth measured across the replay is attributable to
	// the accumulator (plus GC noise the ceiling comfortably absorbs).
	base := sample("baseline", 0)
	acc, err := NewBoundedAccumulator(BoundedConfig{K: k, Capacity: 8192, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if fp := acc.FootprintBytes(); fp >= ceiling {
		t.Fatalf("declared footprint %d already at the %d ceiling", fp, ceiling)
	}
	src := newZipfPrefixStream(seed, universe)
	step := n / 16
	if step == 0 {
		step = 1
	}
	peak := uint64(0)
	for i := 0; i < n; i++ {
		addr, size := src.next()
		p, _ := Simple{}.Cluster(addr)
		acc.Observe(p, size)
		if (i+1)%step == 0 {
			if h := sample("bounded", i+1); h > peak {
				peak = h
			}
		}
	}
	acc.PublishMetrics()
	final := sample("final", n)
	if final > peak {
		peak = final
	}
	if grew := peak - base; peak > base && grew > ceiling {
		firehoseArtifacts(t, trace)
		t.Fatalf("heap grew %d bytes over the %d-request replay, ceiling %d (footprint %d)",
			grew, n, ceiling, acc.FootprintBytes())
	}
	t.Logf("replayed %d requests: footprint %d B, heap %d→%d B, evictions %d, occupancy %d",
		n, acc.FootprintBytes(), base, final, acc.Evictions(), acc.Occupancy())

	// Pass 2: the exact reference over the identical stream (same seed,
	// same draw sequence), top-K compared entry for entry.
	exact := newExactCounts()
	src = newZipfPrefixStream(seed, universe)
	for i := 0; i < n; i++ {
		addr, size := src.next()
		p, _ := Simple{}.Cluster(addr)
		exact.observe(p, size)
	}
	defer func() {
		if t.Failed() {
			firehoseArtifacts(t, trace)
		}
	}()
	requireDifferentialAgreement(t, acc, exact, 0, k, 8)
}
