package cluster

import (
	"github.com/netaware/netcluster/internal/obsv"
)

// Observability handles, resolved once so the engines never touch the
// registry lock. Instrumentation here follows the obsv budget: per-run
// spans and batched counter flushes only; the single per-call cost is
// one atomic add in NetworkAware.Cluster, which amortizes per *distinct
// client* (both engines memoize cluster membership per client), not per
// request. Lookup depth is sampled every depthSampleMask+1 lookups via
// the depth-reporting walk, so the plain compiled lookup stays
// instrumentation-free.
var (
	lookupCount = obsv.C("bgp.lookup.count")
	lookupMiss  = obsv.C("bgp.lookup.nomatch")
	lookupDepth = obsv.H("bgp.lookup.depth")

	logRecords       = obsv.C("cluster.log.records")
	logClustered     = obsv.C("cluster.log.clients.clustered")
	logUnclustered   = obsv.C("cluster.log.clients.unclustered")
	parRecords       = obsv.C("cluster.parallel.records")
	parRate          = obsv.G("cluster.parallel.records_per_sec")
	parWorkers       = obsv.G("cluster.parallel.workers")
	parShardClients  = obsv.H("cluster.parallel.shard.clients")
	parImbalancePct  = obsv.G("cluster.parallel.imbalance_pct")
	streamRecords    = obsv.C("cluster.stream.records")
	streamBatches    = obsv.C("cluster.stream.batches")
	streamParRecords = obsv.C("cluster.stream.parallel.records")

	// Bounded (sketch-backed) accounting: occupancy and error bounds
	// are point-in-time gauges, eviction churn a monotone counter,
	// flushed by BoundedAccumulator.PublishMetrics once per batch or
	// stream.
	boundedRecords    = obsv.C("cluster.bounded.records")
	boundedOccupancy  = obsv.G("cluster.bounded.occupancy")
	boundedEvictions  = obsv.C("cluster.bounded.evictions")
	boundedErrorBound = obsv.G("cluster.bounded.error_bound")
	boundedFootprint  = obsv.G("cluster.bounded.footprint_bytes")
)

// depthSampleMask samples every 64th lookup into the depth histogram: a
// ~1.6% sampling rate keeps the histogram statistically useful while the
// sampled walk (identical cost plus a depth increment) stays invisible
// in the lookup budget.
const depthSampleMask = 63

// recordsPerSecond converts a (records, nanoseconds) pair to a gauge
// value, guarding the ns==0 case timer resolution can produce.
func recordsPerSecond(records int, ns int64) int64 {
	if ns <= 0 {
		return 0
	}
	return int64(float64(records) / (float64(ns) / 1e9))
}

// shardBalance publishes the merged shard population histogram and the
// max/mean imbalance percentage (100 = perfectly balanced shards).
func shardBalance(sizes []int) {
	total, max := 0, 0
	for _, n := range sizes {
		parShardClients.Observe(int64(n))
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 || len(sizes) == 0 {
		return
	}
	mean := float64(total) / float64(len(sizes))
	parImbalancePct.Set(int64(100 * float64(max) / mean))
}
