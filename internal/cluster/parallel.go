package cluster

import (
	"context"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/weblog"
)

// Parallel clustering engines. ClusterLog and ClusterStream remain the
// reference implementations; the parallel variants partition the work
// across workers that accumulate into private shards keyed by a hash of
// the client address, then merge deterministically. The merged Result is
// identical to the sequential one — same cluster set in the same canonical
// ordering, same per-cluster metrics, same Coverage(), same Unclustered
// order — so callers can switch freely between the two paths.
//
// The Clusterer must be safe for concurrent use: NetworkAware is (both the
// tree and the compiled table support lock-free concurrent readers), as
// are Simple and Classful; a Func closure must synchronize any mutable
// state it captures.

// ParallelOptions tunes the parallel clustering engines. The zero value
// uses GOMAXPROCS workers.
type ParallelOptions struct {
	// Workers is the number of concurrent accumulators; 0 or negative
	// means GOMAXPROCS. One worker falls back to the sequential path.
	Workers int
	// Shards is the number of client-hash shards the accumulation is
	// split into, rounded up to a power of two; 0 means 4× Workers.
	// More shards reduce merge contention at slightly higher constant
	// cost. The clustering outcome never depends on the shard count.
	Shards int
}

func (o ParallelOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o ParallelOptions) shards() int {
	s := o.Shards
	if s <= 0 {
		s = 4 * o.workers()
	}
	n := 1
	for n < s {
		n <<= 1
	}
	return n
}

// shardOf hashes a client address into a shard. The multiply-xorshift
// finalizer spreads the sequential address blocks real clusters produce,
// so adversarially adjacent clients still distribute across shards.
func shardOf(a netutil.Addr, mask uint32) uint32 {
	x := uint32(a)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x & mask
}

// pclient is one client's accumulation inside a worker shard.
type pclient struct {
	prefix netutil.Prefix
	count  int
	first  int // global index of the client's first request
	ok     bool
}

// pcluster is one cluster's per-worker partial accumulation.
type pcluster struct {
	requests int
	bytes    int64
	urls     map[int32]struct{}
}

// ClusterLogParallel is ClusterLog distributed across opts.Workers
// goroutines. Requests are split into contiguous ranges, each worker
// accumulates per-client tallies into private hash shards and per-cluster
// partials, and the shards are merged deterministically. The returned
// Result is identical to ClusterLog's.
func ClusterLogParallel(l *weblog.Log, c Clusterer, opts ParallelOptions) *Result {
	return ClusterLogParallelCtx(context.Background(), l, c, opts)
}

// ClusterLogParallelCtx is ClusterLogParallel under a trace context. The
// run records a "cluster.parallel" root span, one "cluster.parallel.shard"
// child per worker (with worker index, request range and record count as
// attributes) and a "cluster.parallel.merge" child, so the fan-out
// renders as parallel tracks in chrome://tracing.
func ClusterLogParallelCtx(ctx context.Context, l *weblog.Log, c Clusterer, opts ParallelOptions) *Result {
	workers := opts.workers()
	if workers > len(l.Requests)/minRequestsPerWorker {
		workers = len(l.Requests) / minRequestsPerWorker
	}
	if workers <= 1 {
		return ClusterLogCtx(ctx, l, c)
	}
	pctx, sp := obsv.StartTraceSpan(ctx, "cluster.parallel")
	parWorkers.Set(int64(workers))
	shards := opts.shards()
	mask := uint32(shards - 1)

	// Phase 1: each worker scans a contiguous request range, resolving
	// cluster membership per distinct client and accumulating privately.
	perWorker := make([][]map[netutil.Addr]*pclient, workers)
	clustersBy := make([]map[netutil.Prefix]*pcluster, workers)
	totals := make([]int, workers)
	chunk := (len(l.Requests) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(l.Requests) {
			hi = len(l.Requests)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			_, wsp := obsv.StartTraceSpan(pctx, "cluster.parallel.shard")
			wsp.SetAttrInt("worker", int64(w))
			wsp.SetAttrInt("lo", int64(lo))
			wsp.SetAttrInt("hi", int64(hi))
			local := make([]map[netutil.Addr]*pclient, shards)
			parts := make(map[netutil.Prefix]*pcluster)
			var total int
			if bc, isBatch := c.(BatchClusterer); isBatch {
				total = clusterRangeBatched(l, bc, lo, hi, mask, local, parts)
			} else {
				total = clusterRangeSequential(l, c, lo, hi, mask, local, parts)
			}
			perWorker[w] = local
			clustersBy[w] = parts
			totals[w] = total
			wsp.SetAttrInt("records", int64(total))
			wsp.End()
		}(w, lo, hi)
	}
	wg.Wait()

	// Phase 2: merge client shards — clients partition across shards, so
	// each shard merges independently and in parallel. A client seen by
	// several workers keeps its earliest first-request index, which is
	// what makes the Unclustered ordering reproduce the sequential pass.
	merged := make([]map[netutil.Addr]*pclient, shards)
	_, msp := obsv.StartTraceSpan(pctx, "cluster.parallel.merge")
	var mg sync.WaitGroup
	for s := 0; s < shards; s++ {
		mg.Add(1)
		go func(s int) {
			defer mg.Done()
			var dst map[netutil.Addr]*pclient
			for w := 0; w < workers; w++ {
				if perWorker[w] == nil {
					continue
				}
				src := perWorker[w][s]
				if src == nil {
					continue
				}
				if dst == nil {
					dst = src
					continue
				}
				for a, pc := range src {
					d := dst[a]
					if d == nil {
						dst[a] = pc
						continue
					}
					if pc.first < d.first {
						d.first = pc.first
					}
					d.count += pc.count
				}
			}
			merged[s] = dst
		}(s)
	}
	mg.Wait()
	msp.SetAttrInt("shards", int64(shards))
	msp.End()
	shardSizes := make([]int, 0, shards)
	for _, m := range merged {
		shardSizes = append(shardSizes, len(m))
	}
	shardBalance(shardSizes)

	// Phase 3: assemble the Result. Iteration order over maps is
	// irrelevant — clusters are sorted into the canonical prefix order and
	// the unclustered list by first occurrence, exactly as ClusterLog.
	res := &Result{
		Method:   c.Name(),
		Log:      l,
		byPrefix: make(map[netutil.Prefix]*Cluster),
		byClient: make(map[netutil.Addr]*Cluster),
	}
	for _, t := range totals {
		res.TotalRequests += t
	}
	for _, parts := range clustersBy {
		for p, part := range parts {
			cl := res.byPrefix[p]
			if cl == nil {
				cl = &Cluster{
					Prefix:  p,
					Clients: make(map[netutil.Addr]int),
					urls:    make(map[int32]struct{}),
				}
				res.byPrefix[p] = cl
				res.Clusters = append(res.Clusters, cl)
			}
			cl.Requests += part.requests
			cl.Bytes += part.bytes
			for u := range part.urls {
				cl.urls[u] = struct{}{}
			}
		}
	}
	type uncEntry struct {
		addr  netutil.Addr
		first int
	}
	var uncs []uncEntry
	for _, m := range merged {
		for a, pc := range m {
			if !pc.ok {
				uncs = append(uncs, uncEntry{a, pc.first})
				continue
			}
			cl := res.byPrefix[pc.prefix]
			cl.Clients[a] = pc.count
			res.byClient[a] = cl
		}
	}
	sort.Slice(uncs, func(i, j int) bool { return uncs[i].first < uncs[j].first })
	for _, u := range uncs {
		res.Unclustered = append(res.Unclustered, u.addr)
	}
	sort.Slice(res.Clusters, func(i, j int) bool {
		return netutil.ComparePrefix(res.Clusters[i].Prefix, res.Clusters[j].Prefix) < 0
	})
	sp.SetAttrInt("workers", int64(workers))
	sp.SetAttrInt("records", int64(res.TotalRequests))
	sp.SetAttrInt("clusters", int64(len(res.Clusters)))
	dur := sp.End()
	parRecords.Add(uint64(res.TotalRequests))
	parRate.Set(recordsPerSecond(res.TotalRequests, int64(dur)))
	return res
}

// minRequestsPerWorker keeps tiny logs on the sequential path, where
// goroutine startup and merge overhead would dominate.
const minRequestsPerWorker = 1024

// batchResolveLen is how many distinct unresolved clients a worker
// gathers before one ClusterBatch call. Large enough to amortize the
// batch kernel's bucketing passes, small enough to stay cache-resident.
const batchResolveLen = 1024

// clusterRangeSequential is the phase-1 worker loop of
// ClusterLogParallel: one pass over [lo,hi), resolving each distinct
// client inline via c.Cluster and accumulating per-client and
// per-cluster tallies.
func clusterRangeSequential(l *weblog.Log, c Clusterer, lo, hi int, mask uint32, local []map[netutil.Addr]*pclient, parts map[netutil.Prefix]*pcluster) int {
	total := 0
	for i := lo; i < hi; i++ {
		r := &l.Requests[i]
		if r.Client.IsUnspecified() {
			continue
		}
		total++
		s := shardOf(r.Client, mask)
		m := local[s]
		if m == nil {
			m = make(map[netutil.Addr]*pclient)
			local[s] = m
		}
		pc := m[r.Client]
		if pc == nil {
			p, ok := c.Cluster(r.Client)
			pc = &pclient{prefix: p, ok: ok, first: i}
			m[r.Client] = pc
		}
		if !pc.ok {
			continue
		}
		pc.count++
		part := parts[pc.prefix]
		if part == nil {
			part = &pcluster{urls: make(map[int32]struct{})}
			parts[pc.prefix] = part
		}
		part.requests++
		part.bytes += int64(l.Resources[r.URL].Size)
		part.urls[r.URL] = struct{}{}
	}
	return total
}

// clusterRangeBatched is the same phase-1 loop restructured around the
// batch kernel: a discovery pass registers each distinct client once and
// resolves them in batchResolveLen groups through one ClusterBatch call
// each, then an accumulation pass tallies requests against the resolved
// clients. Tallies, first-request indexes and the resulting Result are
// identical to the sequential loop's — only the lookup cost changes.
func clusterRangeBatched(l *weblog.Log, bc BatchClusterer, lo, hi int, mask uint32, local []map[netutil.Addr]*pclient, parts map[netutil.Prefix]*pcluster) int {
	addrs := make([]netutil.Addr, 0, batchResolveLen)
	pcs := make([]*pclient, 0, batchResolveLen)
	prefixes := make([]netutil.Prefix, batchResolveLen)
	oks := make([]bool, batchResolveLen)
	flush := func() {
		if len(addrs) == 0 {
			return
		}
		bc.ClusterBatch(addrs, prefixes[:len(addrs)], oks[:len(addrs)])
		for j, pc := range pcs {
			pc.prefix, pc.ok = prefixes[j], oks[j]
		}
		addrs = addrs[:0]
		pcs = pcs[:0]
	}

	total := 0
	for i := lo; i < hi; i++ {
		r := &l.Requests[i]
		if r.Client.IsUnspecified() {
			continue
		}
		total++
		s := shardOf(r.Client, mask)
		m := local[s]
		if m == nil {
			m = make(map[netutil.Addr]*pclient)
			local[s] = m
		}
		if m[r.Client] == nil {
			pc := &pclient{first: i}
			m[r.Client] = pc
			addrs = append(addrs, r.Client)
			pcs = append(pcs, pc)
			if len(addrs) == batchResolveLen {
				flush()
			}
		}
	}
	flush()

	for i := lo; i < hi; i++ {
		r := &l.Requests[i]
		if r.Client.IsUnspecified() {
			continue
		}
		pc := local[shardOf(r.Client, mask)][r.Client]
		if !pc.ok {
			continue
		}
		pc.count++
		part := parts[pc.prefix]
		if part == nil {
			part = &pcluster{urls: make(map[int32]struct{})}
			parts[pc.prefix] = part
		}
		part.requests++
		part.bytes += int64(l.Resources[r.URL].Size)
		part.urls[r.URL] = struct{}{}
	}
	return total
}

// streamRec is the per-line payload the stream dispatcher hands a shard
// worker: everything clustering needs, nothing it does not.
type streamRec struct {
	client netutil.Addr
	url    int32
	size   int32
}

const streamBatchLen = 512

// streamPendingMark is the placeholder a stream worker stores in byClient
// between discovering a new client and batch-resolving it — distinct from
// nil (resolved unclusterable) and from any real cluster. It never
// survives past the resolve step of the batch that created it.
var streamPendingMark = &StreamCluster{}

// ClusterStreamParallel is ClusterStream with the accumulation sharded
// across opts.Workers goroutines: one reader parses the CLF stream (the
// zero-allocation fast path in internal/weblog) and dispatches batched
// records by client-address hash, so each worker owns a disjoint client
// population and no cluster map needs a lock. The merged StreamResult is
// identical to the sequential one.
func ClusterStreamParallel(r io.Reader, c Clusterer, opts ParallelOptions) (*StreamResult, error) {
	return ClusterStreamParallelCtx(context.Background(), r, c, opts)
}

// ClusterStreamParallelCtx is ClusterStreamParallel under a trace
// context: a "cluster.stream.parallel" root span with one
// "cluster.stream.parallel.shard" child per worker (records and batches
// consumed as attributes); the reader's parse work nests underneath as
// the "weblog.stream" span.
func ClusterStreamParallelCtx(ctx context.Context, r io.Reader, c Clusterer, opts ParallelOptions) (*StreamResult, error) {
	workers := opts.workers()
	if workers <= 1 {
		return ClusterStreamCtx(ctx, r, c)
	}
	pctx, sp := obsv.StartTraceSpan(ctx, "cluster.stream.parallel")
	res := &StreamResult{
		Method:      c.Name(),
		Clusters:    make(map[netutil.Prefix]*StreamCluster),
		Unclustered: make(map[netutil.Addr]struct{}),
	}

	type workerState struct {
		byClient    map[netutil.Addr]*StreamCluster // nil value: unclusterable
		clusters    map[netutil.Prefix]*StreamCluster
		unclustered map[netutil.Addr]struct{}
	}
	states := make([]*workerState, workers)
	chans := make([]chan []streamRec, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		states[w] = &workerState{
			byClient:    make(map[netutil.Addr]*StreamCluster),
			clusters:    make(map[netutil.Prefix]*StreamCluster),
			unclustered: make(map[netutil.Addr]struct{}),
		}
		chans[w] = make(chan []streamRec, 4)
		wg.Add(1)
		go func(w int, st *workerState, ch <-chan []streamRec) {
			defer wg.Done()
			_, wsp := obsv.StartTraceSpan(pctx, "cluster.stream.parallel.shard")
			wsp.SetAttrInt("worker", int64(w))
			wrecords, wbatches := 0, 0
			bc, isBatch := c.(BatchClusterer)
			var pend []netutil.Addr
			var prefixes []netutil.Prefix
			var oks []bool
			if isBatch {
				pend = make([]netutil.Addr, 0, streamBatchLen)
				prefixes = make([]netutil.Prefix, streamBatchLen)
				oks = make([]bool, streamBatchLen)
			}
			for batch := range ch {
				wbatches++
				wrecords += len(batch)
				if isBatch {
					// Discovery pass: mark each client unseen so far in this
					// delivery as pending, resolve them all with one batched
					// lookup, then accumulate. Identical outcome to the
					// per-record path below — clusters are keyed by prefix and
					// tallies are order-independent.
					pend = pend[:0]
					for _, rec := range batch {
						if _, seen := st.byClient[rec.client]; !seen {
							st.byClient[rec.client] = streamPendingMark
							pend = append(pend, rec.client)
						}
					}
					if len(pend) > 0 {
						bc.ClusterBatch(pend, prefixes[:len(pend)], oks[:len(pend)])
						for j, a := range pend {
							if !oks[j] {
								st.unclustered[a] = struct{}{}
								st.byClient[a] = nil
								continue
							}
							cl := st.clusters[prefixes[j]]
							if cl == nil {
								cl = &StreamCluster{
									Prefix:  prefixes[j],
									Clients: make(map[netutil.Addr]int),
									urls:    make(map[int32]struct{}),
								}
								st.clusters[prefixes[j]] = cl
							}
							st.byClient[a] = cl
						}
					}
					for _, rec := range batch {
						cl := st.byClient[rec.client]
						if cl == nil {
							continue
						}
						cl.Clients[rec.client]++
						cl.Requests++
						cl.Bytes += int64(rec.size)
						cl.urls[rec.url] = struct{}{}
					}
					continue
				}
				for _, rec := range batch {
					cl, seen := st.byClient[rec.client]
					if !seen {
						p, ok := c.Cluster(rec.client)
						if !ok {
							st.unclustered[rec.client] = struct{}{}
							st.byClient[rec.client] = nil
							continue
						}
						cl = st.clusters[p]
						if cl == nil {
							cl = &StreamCluster{
								Prefix:  p,
								Clients: make(map[netutil.Addr]int),
								urls:    make(map[int32]struct{}),
							}
							st.clusters[p] = cl
						}
						st.byClient[rec.client] = cl
					} else if cl == nil {
						continue
					}
					cl.Clients[rec.client]++
					cl.Requests++
					cl.Bytes += int64(rec.size)
					cl.urls[rec.url] = struct{}{}
				}
			}
			wsp.SetAttrInt("records", int64(wrecords))
			wsp.SetAttrInt("batches", int64(wbatches))
			wsp.End()
		}(w, states[w], chans[w])
	}

	// The reader thread owns parsing and batching; everything past the
	// hash is off the critical path. Batch dispatches are tallied in a
	// plain local and flushed once — never per record.
	batches := make([][]streamRec, workers)
	nbatches := 0
	stats, err := weblog.StreamCLFCtx(pctx, r, func(rec weblog.StreamRecord) bool {
		res.TotalRequests++
		w := int(shardOf(rec.Request.Client, ^uint32(0)) % uint32(workers))
		b := batches[w]
		if b == nil {
			b = make([]streamRec, 0, streamBatchLen)
		}
		b = append(b, streamRec{client: rec.Request.Client, url: rec.Request.URL, size: rec.Size})
		if len(b) == streamBatchLen {
			chans[w] <- b
			nbatches++
			b = nil
		}
		batches[w] = b
		return true
	})
	for w := 0; w < workers; w++ {
		if len(batches[w]) > 0 {
			chans[w] <- batches[w]
			nbatches++
		}
		close(chans[w])
	}
	wg.Wait()
	res.Stats = stats
	streamBatches.Add(uint64(nbatches))
	streamParRecords.Add(uint64(res.TotalRequests))
	sp.SetAttrInt("workers", int64(workers))
	sp.SetAttrInt("records", int64(res.TotalRequests))
	sp.SetAttrInt("batches", int64(nbatches))
	if err != nil {
		sp.Fail(err)
		sp.End()
		return nil, err
	}

	// Deterministic merge: client sets are disjoint across workers, so
	// cluster partials combine by plain summation and set union.
	for _, st := range states {
		for p, wcl := range st.clusters {
			dst := res.Clusters[p]
			if dst == nil {
				res.Clusters[p] = wcl
				continue
			}
			for a, n := range wcl.Clients {
				dst.Clients[a] = n
			}
			dst.Requests += wcl.Requests
			dst.Bytes += wcl.Bytes
			for u := range wcl.urls {
				dst.urls[u] = struct{}{}
			}
		}
		for a := range st.unclustered {
			res.Unclustered[a] = struct{}{}
		}
	}
	sp.End()
	return res, nil
}
