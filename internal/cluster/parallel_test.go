package cluster

import (
	"bytes"
	"sync"
	"testing"

	"github.com/netaware/netcluster/internal/bgpsim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

// Equivalence fixture: one synthetic world, its merged table, and the four
// paper trace profiles at test scale, shared across the parallel tests.
var parFixture struct {
	once  sync.Once
	table NetworkAware
	logs  []*weblog.Log
	err   error
}

func parSetup(t *testing.T) (NetworkAware, []*weblog.Log) {
	t.Helper()
	parFixture.once.Do(func() {
		cfg := inet.DefaultConfig()
		cfg.NumASes = 250
		cfg.NumTierOne = 8
		w, err := inet.Generate(cfg)
		if err != nil {
			parFixture.err = err
			return
		}
		sim := bgpsim.New(w, bgpsim.DefaultConfig())
		parFixture.table = NetworkAware{Table: bgpsim.Merge(sim.Collect())}
		for _, gc := range weblog.Profiles(0.002) {
			l, err := weblog.Generate(w, gc)
			if err != nil {
				parFixture.err = err
				return
			}
			parFixture.logs = append(parFixture.logs, l)
		}
	})
	if parFixture.err != nil {
		t.Fatal(parFixture.err)
	}
	return parFixture.table, parFixture.logs
}

// requireSameResult asserts the parallel Result is indistinguishable from
// the sequential reference: same clusters in the same canonical order,
// same per-cluster metrics and client tallies, same unclustered sequence,
// same coverage and client→cluster mapping.
func requireSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Method != got.Method {
		t.Fatalf("Method: %q vs %q", want.Method, got.Method)
	}
	if want.TotalRequests != got.TotalRequests {
		t.Fatalf("TotalRequests: %d vs %d", want.TotalRequests, got.TotalRequests)
	}
	if len(want.Clusters) != len(got.Clusters) {
		t.Fatalf("cluster count: %d vs %d", len(want.Clusters), len(got.Clusters))
	}
	for i := range want.Clusters {
		w, g := want.Clusters[i], got.Clusters[i]
		if w.Prefix != g.Prefix {
			t.Fatalf("cluster %d prefix: %v vs %v", i, w.Prefix, g.Prefix)
		}
		if w.Requests != g.Requests || w.Bytes != g.Bytes {
			t.Fatalf("cluster %v: requests/bytes %d/%d vs %d/%d",
				w.Prefix, w.Requests, w.Bytes, g.Requests, g.Bytes)
		}
		if w.NumURLs() != g.NumURLs() {
			t.Fatalf("cluster %v: URLs %d vs %d", w.Prefix, w.NumURLs(), g.NumURLs())
		}
		if len(w.Clients) != len(g.Clients) {
			t.Fatalf("cluster %v: clients %d vs %d", w.Prefix, len(w.Clients), len(g.Clients))
		}
		for a, n := range w.Clients {
			if g.Clients[a] != n {
				t.Fatalf("cluster %v client %v: %d vs %d", w.Prefix, a, n, g.Clients[a])
			}
		}
	}
	if len(want.Unclustered) != len(got.Unclustered) {
		t.Fatalf("unclustered count: %d vs %d", len(want.Unclustered), len(got.Unclustered))
	}
	for i := range want.Unclustered {
		if want.Unclustered[i] != got.Unclustered[i] {
			t.Fatalf("unclustered[%d]: %v vs %v (order must match)",
				i, want.Unclustered[i], got.Unclustered[i])
		}
	}
	if want.Coverage() != got.Coverage() {
		t.Fatalf("coverage: %g vs %g", want.Coverage(), got.Coverage())
	}
	for a, wc := range want.byClient {
		gc, ok := got.byClient[a]
		if !ok || gc.Prefix != wc.Prefix {
			t.Fatalf("byClient[%v]: %v vs %v (ok=%v)", a, wc.Prefix, gc, ok)
		}
	}
}

func requireSameStreamResult(t *testing.T, want, got *StreamResult) {
	t.Helper()
	if want.Method != got.Method || want.TotalRequests != got.TotalRequests {
		t.Fatalf("method/total: %q/%d vs %q/%d",
			want.Method, want.TotalRequests, got.Method, got.TotalRequests)
	}
	if want.Stats.Lines != got.Stats.Lines || want.Stats.Records != got.Stats.Records ||
		want.Stats.URLs != got.Stats.URLs || want.Stats.Agents != got.Stats.Agents ||
		!want.Stats.Start.Equal(got.Stats.Start) || !want.Stats.End.Equal(got.Stats.End) {
		t.Fatalf("Stats: %+v vs %+v", want.Stats, got.Stats)
	}
	if len(want.Clusters) != len(got.Clusters) {
		t.Fatalf("cluster count: %d vs %d", len(want.Clusters), len(got.Clusters))
	}
	for p, w := range want.Clusters {
		g := got.Clusters[p]
		if g == nil {
			t.Fatalf("cluster %v missing", p)
		}
		if w.Requests != g.Requests || w.Bytes != g.Bytes || w.NumURLs() != g.NumURLs() {
			t.Fatalf("cluster %v: %d/%d/%d vs %d/%d/%d", p,
				w.Requests, w.Bytes, w.NumURLs(), g.Requests, g.Bytes, g.NumURLs())
		}
		if len(w.Clients) != len(g.Clients) {
			t.Fatalf("cluster %v: clients %d vs %d", p, len(w.Clients), len(g.Clients))
		}
		for a, n := range w.Clients {
			if g.Clients[a] != n {
				t.Fatalf("cluster %v client %v: %d vs %d", p, a, n, g.Clients[a])
			}
		}
	}
	if len(want.Unclustered) != len(got.Unclustered) {
		t.Fatalf("unclustered: %d vs %d", len(want.Unclustered), len(got.Unclustered))
	}
	for a := range want.Unclustered {
		if _, ok := got.Unclustered[a]; !ok {
			t.Fatalf("unclustered client %v missing", a)
		}
	}
	if want.Coverage() != got.Coverage() {
		t.Fatalf("coverage: %g vs %g", want.Coverage(), got.Coverage())
	}
}

func TestParallelMatchesSequentialOnPaperProfiles(t *testing.T) {
	na, logs := parSetup(t)
	nac := na.Compile()
	for _, l := range logs {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			want := ClusterLog(l, na)
			for _, workers := range []int{2, 3, 4, 8} {
				got := ClusterLogParallel(l, nac, ParallelOptions{Workers: workers})
				requireSameResult(t, want, got)
			}
			// Shard count must never change the outcome.
			got := ClusterLogParallel(l, nac, ParallelOptions{Workers: 4, Shards: 1})
			requireSameResult(t, want, got)
		})
	}
}

func TestParallelMatchesSequentialBaselines(t *testing.T) {
	_, logs := parSetup(t)
	for _, c := range []Clusterer{Simple{}, Classful{}} {
		want := ClusterLog(logs[0], c)
		got := ClusterLogParallel(logs[0], c, ParallelOptions{Workers: 4})
		requireSameResult(t, want, got)
	}
}

func TestParallelAdversarialLogs(t *testing.T) {
	m := mergedTable("12.65.128.0/19", "24.48.2.0/23")
	na := NetworkAware{Table: m}.Compile()

	// All requests from one client: every worker tallies the same address,
	// and the merge must fold the partial counts into one client entry.
	var one [][2]string
	for i := 0; i < 3000; i++ {
		one = append(one, [2]string{"12.65.147.94", "/a"})
	}
	// All-unclusterable: the merge path that never touches a cluster.
	var unc [][2]string
	for i := 0; i < 3000; i++ {
		unc = append(unc, [2]string{"99.1.2.3", "/a"}, [2]string{"88.1.2.3", "/b"})
	}
	// Interleaved clusterable/unclusterable clients with Shards:1 forcing
	// every client into one shard — the worst collision case.
	var mix [][2]string
	for i := 0; i < 2000; i++ {
		mix = append(mix,
			[2]string{"12.65.147.94", "/a"},
			[2]string{"99.1.2.3", "/a"},
			[2]string{"24.48.3.87", "/b"},
			[2]string{"88.1.2.3", "/b"},
		)
	}
	cases := []struct {
		name  string
		pairs [][2]string
		opts  ParallelOptions
	}{
		{"all-one-client", one, ParallelOptions{Workers: 4}},
		{"all-unclusterable", unc, ParallelOptions{Workers: 4}},
		{"interleaved-one-shard", mix, ParallelOptions{Workers: 4, Shards: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := logOf(tc.pairs...)
			requireSameResult(t, ClusterLog(l, na), ClusterLogParallel(l, na, tc.opts))
		})
	}
}

func TestParallelTinyLogFallsBackSequential(t *testing.T) {
	// Below minRequestsPerWorker per worker the parallel entry point must
	// still produce the reference result (it runs the sequential path).
	l := logOf([2]string{"12.65.147.94", "/a"}, [2]string{"99.1.2.3", "/b"})
	na := NetworkAware{Table: mergedTable("12.65.128.0/19")}
	requireSameResult(t, ClusterLog(l, na), ClusterLogParallel(l, na, ParallelOptions{Workers: 8}))
}

func TestClusterStreamParallelMatchesSequential(t *testing.T) {
	na, logs := parSetup(t)
	nac := na.Compile()
	for _, l := range logs {
		var buf bytes.Buffer
		if err := weblog.WriteCLF(&buf, l); err != nil {
			t.Fatal(err)
		}
		want, err := ClusterStream(bytes.NewReader(buf.Bytes()), na)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			got, err := ClusterStreamParallel(bytes.NewReader(buf.Bytes()), nac, ParallelOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			requireSameStreamResult(t, want, got)
		}
	}
}

func TestClusterStreamParallelError(t *testing.T) {
	na := NetworkAware{Table: mergedTable("12.65.128.0/19")}
	bad := "12.65.147.94 - - [13/Feb/1998:06:15:04 +0000] \"GET /a HTTP/1.0\" 200 100 \"-\" \"UA\"\nnot a log line\n"
	if _, err := ClusterStreamParallel(bytes.NewReader([]byte(bad)), na, ParallelOptions{Workers: 4}); err == nil {
		t.Fatal("malformed stream must error")
	}
}

func TestShardOfDistributes(t *testing.T) {
	// Sequentially numbered clients (the adversarial real-world shape: one
	// /24 full of hosts) must spread across shards, not pile into one.
	counts := make(map[uint32]int)
	base := uint32(netutil.MustParseAddr("12.65.147.0"))
	for i := uint32(0); i < 256; i++ {
		counts[shardOf(netutil.Addr(base+i), 7)]++
	}
	for s, n := range counts {
		if n > 256/2 {
			t.Fatalf("shard %d received %d of 256 sequential clients", s, n)
		}
	}
	if len(counts) < 4 {
		t.Fatalf("only %d of 8 shards used", len(counts))
	}
}
