package cluster

import (
	"context"
	"sort"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/weblog"
)

// Cluster is one identified client cluster with the metrics the paper's
// figures plot: client population, request volume, unique URLs touched,
// and bytes fetched.
type Cluster struct {
	Prefix   netutil.Prefix
	Clients  map[netutil.Addr]int // requests issued per client
	Requests int
	Bytes    int64
	urls     map[int32]struct{}
}

// NumClients returns the cluster's client population.
func (c *Cluster) NumClients() int { return len(c.Clients) }

// NumURLs returns how many distinct URLs the cluster accessed.
func (c *Cluster) NumURLs() int { return len(c.urls) }

// URLSet exposes the set of URL ids accessed from within the cluster.
func (c *Cluster) URLSet() map[int32]struct{} { return c.urls }

// Result is the outcome of clustering one log with one method.
type Result struct {
	Method        string
	Log           *weblog.Log
	Clusters      []*Cluster
	Unclustered   []netutil.Addr // distinct clients no prefix covered
	TotalRequests int

	byPrefix map[netutil.Prefix]*Cluster
	byClient map[netutil.Addr]*Cluster
}

// ClusterLog groups every client in l according to c. Requests from the
// unspecified address 0.0.0.0 are skipped (the paper's footnote 6);
// clients the method cannot cluster are collected in Unclustered and their
// requests excluded from cluster metrics, mirroring the paper's coverage
// accounting.
func ClusterLog(l *weblog.Log, c Clusterer) *Result {
	return ClusterLogCtx(context.Background(), l, c)
}

// ClusterLogCtx is ClusterLog under a trace context: the run records a
// "cluster.log" span (method, record and cluster counts as attributes)
// into the flight recorder, parented to whatever span ctx carries.
func ClusterLogCtx(ctx context.Context, l *weblog.Log, c Clusterer) *Result {
	_, sp := obsv.StartTraceSpan(ctx, "cluster.log")
	res := &Result{
		Method:   c.Name(),
		Log:      l,
		byPrefix: make(map[netutil.Prefix]*Cluster),
		byClient: make(map[netutil.Addr]*Cluster),
	}
	unclustered := make(map[netutil.Addr]struct{})
	for i := range l.Requests {
		r := &l.Requests[i]
		if r.Client.IsUnspecified() {
			continue
		}
		res.TotalRequests++
		cl, seen := res.byClient[r.Client]
		if !seen {
			if _, bad := unclustered[r.Client]; bad {
				continue
			}
			p, ok := c.Cluster(r.Client)
			if !ok {
				unclustered[r.Client] = struct{}{}
				res.Unclustered = append(res.Unclustered, r.Client)
				continue
			}
			cl = res.byPrefix[p]
			if cl == nil {
				cl = &Cluster{
					Prefix:  p,
					Clients: make(map[netutil.Addr]int),
					urls:    make(map[int32]struct{}),
				}
				res.byPrefix[p] = cl
				res.Clusters = append(res.Clusters, cl)
			}
			res.byClient[r.Client] = cl
		} else if cl == nil {
			continue
		}
		cl.Clients[r.Client]++
		cl.Requests++
		cl.Bytes += int64(l.Resources[r.URL].Size)
		cl.urls[r.URL] = struct{}{}
	}
	// Canonical order: by prefix, so results are deterministic regardless
	// of log ordering.
	sort.Slice(res.Clusters, func(i, j int) bool {
		return netutil.ComparePrefix(res.Clusters[i].Prefix, res.Clusters[j].Prefix) < 0
	})
	sp.SetAttr("method", res.Method)
	sp.SetAttrInt("records", int64(res.TotalRequests))
	sp.SetAttrInt("clusters", int64(len(res.Clusters)))
	sp.End()
	// Flush run totals once; nothing is counted per record.
	logRecords.Add(uint64(res.TotalRequests))
	logClustered.Add(uint64(len(res.byClient)))
	logUnclustered.Add(uint64(len(res.Unclustered)))
	return res
}

// Find returns the cluster identified by prefix p, if any.
func (r *Result) Find(p netutil.Prefix) (*Cluster, bool) {
	c, ok := r.byPrefix[p]
	return c, ok
}

// ClusterOf returns the cluster containing client addr, if it was
// clustered.
func (r *Result) ClusterOf(addr netutil.Addr) (*Cluster, bool) {
	c, ok := r.byClient[addr]
	return c, ok
}

// NumClients returns the total number of distinct clustered clients.
func (r *Result) NumClients() int { return len(r.byClient) }

// Coverage returns the fraction of distinct clients that were clusterable
// — the paper's headline 99.9% metric.
func (r *Result) Coverage() float64 {
	total := len(r.byClient) + len(r.Unclustered)
	if total == 0 {
		return 0
	}
	return float64(len(r.byClient)) / float64(total)
}

// ByClientsDesc returns the clusters sorted by decreasing client count
// (the x-axis ordering of Figures 4 and 6(a,b)). Ties break by request
// count then prefix so the order is total and stable.
func (r *Result) ByClientsDesc() []*Cluster {
	out := append([]*Cluster(nil), r.Clusters...)
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].NumClients(), out[j].NumClients(); a != b {
			return a > b
		}
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return netutil.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// ByRequestsDesc returns the clusters sorted by decreasing request count
// (the ordering of Figures 5, 6(c,d) and the thresholding step).
func (r *Result) ByRequestsDesc() []*Cluster {
	out := append([]*Cluster(nil), r.Clusters...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		if a, b := out[i].NumClients(), out[j].NumClients(); a != b {
			return a > b
		}
		return netutil.ComparePrefix(out[i].Prefix, out[j].Prefix) < 0
	})
	return out
}

// Thresholding is the outcome of the Section 4.1.3 busy-cluster cut.
type Thresholding struct {
	Busy      []*Cluster // clusters covering coverFrac of requests
	LessBusy  []*Cluster
	Threshold int // requests issued by the smallest busy cluster
}

// ThresholdBusy retains the busiest clusters whose requests sum to at
// least coverFrac of the clustered total (the paper uses 0.70), scanning
// in decreasing request order.
func (r *Result) ThresholdBusy(coverFrac float64) Thresholding {
	ordered := r.ByRequestsDesc()
	clusteredTotal := 0
	for _, c := range ordered {
		clusteredTotal += c.Requests
	}
	target := int(coverFrac * float64(clusteredTotal))
	var th Thresholding
	acc := 0
	for i, c := range ordered {
		if acc >= target && i > 0 {
			th.LessBusy = ordered[i:]
			break
		}
		acc += c.Requests
		th.Busy = ordered[:i+1]
		th.Threshold = c.Requests
	}
	return th
}

// ClientCounts, RequestCounts, URLCounts and ByteCounts extract aligned
// metric slices from an externally chosen cluster ordering; the figures
// plot several metrics against one shared x ordering.
func ClientCounts(cs []*Cluster) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.NumClients()
	}
	return out
}

// RequestCounts extracts per-cluster request totals.
func RequestCounts(cs []*Cluster) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.Requests
	}
	return out
}

// URLCounts extracts per-cluster unique-URL totals.
func URLCounts(cs []*Cluster) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.NumURLs()
	}
	return out
}

// ByteCounts extracts per-cluster byte totals (KB would lose precision;
// callers convert for display).
func ByteCounts(cs []*Cluster) []int64 {
	out := make([]int64, len(cs))
	for i, c := range cs {
		out[i] = c.Bytes
	}
	return out
}
