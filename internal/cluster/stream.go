package cluster

import (
	"context"
	"io"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/weblog"
)

// StreamCluster is one cluster accumulated from a single pass over a CLF
// stream: the same metrics as Cluster, without retaining requests.
type StreamCluster struct {
	Prefix   netutil.Prefix
	Clients  map[netutil.Addr]int
	Requests int
	Bytes    int64
	urls     map[int32]struct{}
}

// NumClients returns the cluster's client population.
func (c *StreamCluster) NumClients() int { return len(c.Clients) }

// NumURLs returns how many distinct URLs the cluster accessed.
func (c *StreamCluster) NumURLs() int { return len(c.urls) }

// StreamResult is the single-pass analogue of Result for logs that are
// parsed incrementally rather than loaded.
type StreamResult struct {
	Method        string
	Clusters      map[netutil.Prefix]*StreamCluster
	Unclustered   map[netutil.Addr]struct{}
	TotalRequests int
	Stats         weblog.StreamStats
}

// Coverage returns the fraction of distinct clients that were clusterable.
func (r *StreamResult) Coverage() float64 {
	clustered := 0
	for _, c := range r.Clusters {
		clustered += len(c.Clients)
	}
	total := clustered + len(r.Unclustered)
	if total == 0 {
		return 0
	}
	return float64(clustered) / float64(total)
}

// ClusterStream clusters a Common Log Format stream in one pass and
// constant memory (modulo cluster and intern table sizes): the paper's
// real-time use case, "application of cluster identifying techniques to
// very recent server log data (within the last few minutes)" without
// buffering the log. Semantics match ClusterLog: 0.0.0.0 is skipped by the
// parser, unclusterable clients are tracked and their requests excluded
// from cluster metrics.
func ClusterStream(r io.Reader, c Clusterer) (*StreamResult, error) {
	return ClusterStreamCtx(context.Background(), r, c)
}

// ClusterStreamCtx is ClusterStream under a trace context: the pass
// records a "cluster.stream" span with the parse work ("weblog.stream")
// nested underneath it.
func ClusterStreamCtx(ctx context.Context, r io.Reader, c Clusterer) (*StreamResult, error) {
	sctx, sp := obsv.StartTraceSpan(ctx, "cluster.stream")
	res := &StreamResult{
		Method:      c.Name(),
		Clusters:    make(map[netutil.Prefix]*StreamCluster),
		Unclustered: make(map[netutil.Addr]struct{}),
	}
	byClient := make(map[netutil.Addr]*StreamCluster)
	stats, err := weblog.StreamCLFCtx(sctx, r, func(rec weblog.StreamRecord) bool {
		res.TotalRequests++
		client := rec.Request.Client
		cl, seen := byClient[client]
		if !seen {
			if _, bad := res.Unclustered[client]; bad {
				return true
			}
			p, ok := c.Cluster(client)
			if !ok {
				res.Unclustered[client] = struct{}{}
				return true
			}
			cl = res.Clusters[p]
			if cl == nil {
				cl = &StreamCluster{
					Prefix:  p,
					Clients: make(map[netutil.Addr]int),
					urls:    make(map[int32]struct{}),
				}
				res.Clusters[p] = cl
			}
			byClient[client] = cl
		} else if cl == nil {
			return true
		}
		cl.Clients[client]++
		cl.Requests++
		cl.Bytes += int64(rec.Size)
		cl.urls[rec.Request.URL] = struct{}{}
		return true
	})
	res.Stats = stats
	streamRecords.Add(uint64(res.TotalRequests))
	sp.SetAttr("method", res.Method)
	sp.SetAttrInt("records", int64(res.TotalRequests))
	sp.SetAttrInt("clusters", int64(len(res.Clusters)))
	if err != nil {
		sp.Fail(err)
		sp.End()
		return nil, err
	}
	sp.End()
	return res, nil
}
