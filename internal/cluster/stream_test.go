package cluster

import (
	"bytes"
	"strings"
	"testing"

	"github.com/netaware/netcluster/internal/weblog"
)

func TestClusterStreamMatchesClusterLog(t *testing.T) {
	// Serialize a small in-memory log, stream-cluster it, and compare
	// against the in-memory clustering: every metric must agree.
	l := logOf(
		[2]string{"12.65.147.94", "/a"},
		[2]string{"12.65.147.149", "/b"},
		[2]string{"24.48.3.87", "/a"},
		[2]string{"24.48.2.166", "/a"},
		[2]string{"99.99.99.99", "/c"}, // unclusterable
	)
	var buf bytes.Buffer
	if err := weblog.WriteCLF(&buf, l); err != nil {
		t.Fatal(err)
	}
	m := mergedTable("12.65.128.0/19", "24.48.2.0/23")
	mem := ClusterLog(l, NetworkAware{Table: m})
	st, err := ClusterStream(&buf, NetworkAware{Table: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Clusters) != len(mem.Clusters) {
		t.Fatalf("cluster counts: stream %d vs memory %d", len(st.Clusters), len(mem.Clusters))
	}
	for _, mc := range mem.Clusters {
		sc, ok := st.Clusters[mc.Prefix]
		if !ok {
			t.Fatalf("stream missing cluster %v", mc.Prefix)
		}
		if sc.NumClients() != mc.NumClients() || sc.Requests != mc.Requests ||
			sc.Bytes != mc.Bytes || sc.NumURLs() != mc.NumURLs() {
			t.Fatalf("cluster %v differs: stream %+v vs memory clients=%d req=%d bytes=%d urls=%d",
				mc.Prefix, sc, mc.NumClients(), mc.Requests, mc.Bytes, mc.NumURLs())
		}
	}
	if len(st.Unclustered) != len(mem.Unclustered) {
		t.Fatalf("unclustered: stream %d vs memory %d", len(st.Unclustered), len(mem.Unclustered))
	}
	if st.TotalRequests != mem.TotalRequests {
		t.Fatalf("totals: stream %d vs memory %d", st.TotalRequests, mem.TotalRequests)
	}
	if st.Coverage() != mem.Coverage() {
		t.Fatalf("coverage: stream %g vs memory %g", st.Coverage(), mem.Coverage())
	}
}

func TestClusterStreamSimple(t *testing.T) {
	in := `1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] "GET /a HTTP/1.0" 200 100
1.2.3.5 - - [13/Feb/1998:06:15:05 +0000] "GET /b HTTP/1.0" 200 200
9.8.7.6 - - [13/Feb/1998:06:15:06 +0000] "GET /a HTTP/1.0" 200 100
`
	res, err := ClusterStream(strings.NewReader(in), Simple{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	c, ok := res.Clusters[pfx("1.2.3.0/24")]
	if !ok || c.NumClients() != 2 || c.Requests != 2 || c.Bytes != 300 {
		t.Fatalf("cluster = %+v ok=%v", c, ok)
	}
	if res.Stats.Records != 3 || res.Stats.URLs != 2 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestClusterStreamError(t *testing.T) {
	if _, err := ClusterStream(strings.NewReader("garbage\n"), Simple{}); err == nil {
		t.Fatal("malformed stream must error")
	}
}

func TestStreamCLFEarlyStop(t *testing.T) {
	in := strings.Repeat("1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] \"GET /a HTTP/1.0\" 200 100\n", 10)
	n := 0
	st, err := weblog.StreamCLF(strings.NewReader(in), func(weblog.StreamRecord) bool {
		n++
		return n < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after early stop", n)
	}
	if st.Records != 3 {
		t.Fatalf("stats.Records = %d", st.Records)
	}
}

func TestStreamCLFOutOfOrderClamped(t *testing.T) {
	in := `1.2.3.4 - - [13/Feb/1998:06:15:10 +0000] "GET /a HTTP/1.0" 200 100
1.2.3.4 - - [13/Feb/1998:06:15:05 +0000] "GET /a HTTP/1.0" 200 100
`
	var times []uint32
	_, err := weblog.StreamCLF(strings.NewReader(in), func(r weblog.StreamRecord) bool {
		times = append(times, r.Request.Time)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if times[0] != 0 || times[1] != 0 {
		t.Fatalf("out-of-order record not clamped: %v", times)
	}
}

func TestStreamCLFInternedStringsStable(t *testing.T) {
	// Records captured from the callback must stay valid after the stream
	// advances (no aliasing of scanner buffers).
	var lines strings.Builder
	for i := 0; i < 500; i++ {
		lines.WriteString("1.2.3.4 - - [13/Feb/1998:06:15:04 +0000] \"GET /page")
		lines.WriteString(strings.Repeat("x", i%37))
		lines.WriteString(" HTTP/1.0\" 200 100\n")
	}
	var captured []weblog.StreamRecord
	if _, err := weblog.StreamCLF(strings.NewReader(lines.String()), func(r weblog.StreamRecord) bool {
		captured = append(captured, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range captured {
		if !strings.HasPrefix(r.Path, "/page") {
			t.Fatalf("captured path corrupted: %q", r.Path)
		}
	}
}
