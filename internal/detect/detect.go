// Package detect identifies spiders and proxies among web clients from
// per-cluster access patterns, the paper's Section 4.1.2:
//
//   - a spider issues a very large number of requests whose arrival times
//     do not follow the site's diurnal pattern, sweeps many URLs, and
//     dominates its cluster's request count (Figures 9(c) and 10);
//   - a proxy also issues many requests, but its arrival pattern mirrors
//     the whole site's (hidden clients behave like visible ones,
//     Figure 9(b)) and, when the log carries User-Agent data, the agent
//     field varies across its requests.
//
// Detection can never be perfect ("we have not found a solution guaranteed
// to locate all proxies correctly"); the detector therefore returns scored
// findings, and the experiments grade them against the generator's ground
// truth.
package detect

import (
	"sort"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/stats"
	"github.com/netaware/netcluster/internal/weblog"
)

// Kind classifies a finding.
type Kind int

const (
	// Spider marks an indexing robot.
	Spider Kind = iota
	// Proxy marks a host forwarding for hidden clients.
	Proxy
)

// String names the kind.
func (k Kind) String() string {
	if k == Spider {
		return "spider"
	}
	return "proxy"
}

// Confidence grades a finding. The paper never claims certainty for
// proxies ("we suspect that the second client is a proxy"); the detector
// reports Confirmed only when independent evidence (User-Agent diversity)
// corroborates the access pattern, and Suspected when only volume and
// cluster dominance point at the client.
type Confidence int

const (
	// Suspected findings rest on access pattern and dominance alone.
	Suspected Confidence = iota
	// Confirmed findings carry corroborating evidence.
	Confirmed
)

// String names the confidence level.
func (c Confidence) String() string {
	if c == Confirmed {
		return "confirmed"
	}
	return "suspected"
}

// Finding is one suspected spider or proxy.
type Finding struct {
	Client     netutil.Addr
	Cluster    *cluster.Cluster
	Kind       Kind
	Confidence Confidence

	Requests    int
	URLs        int     // distinct URLs the client accessed
	Correlation float64 // arrival-pattern correlation with the whole site
	Agents      int     // distinct User-Agent values
	Dominance   float64 // client's share of its cluster's requests
	// ThinkTime is the client's median inter-request gap in seconds. The
	// paper: "the proxy may issue more requests and have a shorter 'think'
	// time between requests than a client does".
	ThinkTime float64
}

// Config tunes the detector. The zero value is unusable; use
// DefaultConfig.
type Config struct {
	// Bins is the arrival-histogram resolution used for correlation.
	Bins int
	// MinShare is the minimum share of total log requests a client needs
	// to be considered at all; spiders and proxies are by definition heavy
	// hitters.
	MinShare float64
	// SpiderMaxCorrelation is the highest site-correlation a spider can
	// have: spiders run on machine schedules, not human ones.
	SpiderMaxCorrelation float64
	// ProxyMinCorrelation is the lowest site-correlation a proxy can have:
	// aggregated human traffic echoes the site's rhythm.
	ProxyMinCorrelation float64
	// ProxyMinAgents is the minimum distinct User-Agent count for the
	// proxy verdict when agent data is present.
	ProxyMinAgents int
	// DominanceHint marks clients issuing at least this fraction of their
	// cluster's requests; combined with other evidence it strengthens both
	// verdicts (Figure 10's distribution).
	DominanceHint float64
}

// DefaultConfig returns thresholds that reproduce the paper's examples.
func DefaultConfig() Config {
	return Config{
		Bins:                 48,
		MinShare:             0.004,
		SpiderMaxCorrelation: 0.45,
		ProxyMinCorrelation:  0.60,
		ProxyMinAgents:       4,
		DominanceHint:        0.90,
	}
}

// Detect scans a clustering result for spiders and proxies. Findings come
// back sorted by request count, heaviest first.
func Detect(res *cluster.Result, cfg Config) []Finding {
	l := res.Log
	horizon := uint32(l.Duration.Seconds())
	if horizon == 0 {
		horizon = 1
	}

	// Site-wide arrival profile (Figure 9(a)).
	siteTimes := make([]uint32, len(l.Requests))
	for i := range l.Requests {
		siteTimes[i] = l.Requests[i].Time
	}
	siteBins := stats.Bin(siteTimes, horizon, cfg.Bins)

	minRequests := int(cfg.MinShare * float64(len(l.Requests)))
	if minRequests < 1 {
		minRequests = 1
	}

	// Collect per-client evidence only for heavy hitters.
	type evidence struct {
		times  []uint32
		urls   map[int32]struct{}
		agents map[uint16]struct{}
	}
	heavy := make(map[netutil.Addr]*evidence)
	for _, cl := range res.Clusters {
		for a, n := range cl.Clients {
			if n >= minRequests {
				heavy[a] = &evidence{urls: map[int32]struct{}{}, agents: map[uint16]struct{}{}}
			}
		}
	}
	if len(heavy) == 0 {
		return nil
	}
	for i := range l.Requests {
		r := &l.Requests[i]
		ev, ok := heavy[r.Client]
		if !ok {
			continue
		}
		ev.times = append(ev.times, r.Time)
		ev.urls[r.URL] = struct{}{}
		ev.agents[r.Agent] = struct{}{}
	}

	var findings []Finding
	for a, ev := range heavy {
		cl, ok := res.ClusterOf(a)
		if !ok {
			continue
		}
		corr := stats.Pearson(stats.Bin(ev.times, horizon, cfg.Bins), siteBins)
		f := Finding{
			Client:      a,
			Cluster:     cl,
			Requests:    len(ev.times),
			URLs:        len(ev.urls),
			Correlation: corr,
			Agents:      len(ev.agents),
			Dominance:   float64(cl.Clients[a]) / float64(cl.Requests),
			ThinkTime:   medianGap(ev.times),
		}
		switch {
		case corr <= cfg.SpiderMaxCorrelation:
			// Machine-scheduled arrivals: spider. URL breadth and cluster
			// dominance corroborate but are not required — the paper's
			// spider touched only 4% of the site's URLs.
			f.Kind = Spider
			f.Confidence = Confirmed
			if f.Dominance < cfg.DominanceHint && f.Agents > 1 {
				f.Confidence = Suspected
			}
			findings = append(findings, f)
		case corr >= cfg.ProxyMinCorrelation && f.Agents >= cfg.ProxyMinAgents:
			// Human-rhythm arrivals from many different browsers behind
			// one address: a proxy, confirmed by the User-Agent field.
			f.Kind = Proxy
			f.Confidence = Confirmed
			findings = append(findings, f)
		case corr >= cfg.ProxyMinCorrelation && f.Dominance >= cfg.DominanceHint:
			// A single busy client dominating its cluster with one agent
			// string: possibly a proxy that strips or normalizes agents,
			// possibly just a heavy user. The paper flags these as
			// suspected proxies (its Nagano one-client 77,311-request
			// cluster); without agent evidence the verdict stays tentative.
			f.Kind = Proxy
			f.Confidence = Suspected
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Requests != findings[j].Requests {
			return findings[i].Requests > findings[j].Requests
		}
		return findings[i].Client < findings[j].Client
	})
	return findings
}

// medianGap computes the median inter-request interval of a client's
// sorted arrival times; 0 when fewer than two requests.
func medianGap(times []uint32) float64 {
	if len(times) < 2 {
		return 0
	}
	sorted := append([]uint32(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	gaps := make([]int, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		gaps[i-1] = int(sorted[i] - sorted[i-1])
	}
	return stats.Summarize(gaps).Median
}

// RequestSkew returns the per-client request counts of a cluster in
// descending order together with their Gini coefficient — the data behind
// Figure 10 ("almost all the requests are issued by the spider").
func RequestSkew(cl *cluster.Cluster) (counts []int, gini float64) {
	counts = make([]int, 0, len(cl.Clients))
	for _, n := range cl.Clients {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts, stats.Gini(counts)
}

// Eliminate returns a copy of the log without any requests from the given
// clients — the paper's pre-caching cleanup ("first, we identify spiders
// and eliminate them from server logs"). Resource and agent tables are
// shared with the original.
func Eliminate(l *weblog.Log, clients map[netutil.Addr]bool) *weblog.Log {
	out := &weblog.Log{
		Name:      l.Name + "-cleaned",
		Start:     l.Start,
		Duration:  l.Duration,
		Resources: l.Resources,
		Agents:    l.Agents,
		Truth:     l.Truth,
	}
	out.Requests = make([]weblog.Request, 0, len(l.Requests))
	for i := range l.Requests {
		if !clients[l.Requests[i].Client] {
			out.Requests = append(out.Requests, l.Requests[i])
		}
	}
	return out
}

// FindingClients collects the clients of findings, optionally filtered by
// kind, in a form Eliminate accepts.
func FindingClients(fs []Finding, kinds ...Kind) map[netutil.Addr]bool {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	out := map[netutil.Addr]bool{}
	for _, f := range fs {
		if len(kinds) == 0 || want[f.Kind] {
			out[f.Client] = true
		}
	}
	return out
}
