package detect

import (
	"testing"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
)

type fixture struct {
	world  *inet.Internet
	log    *weblog.Log
	result *cluster.Result
}

var cached *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if cached != nil {
		return cached
	}
	wcfg := inet.DefaultConfig()
	wcfg.NumASes = 300
	wcfg.NumTierOne = 8
	world, err := inet.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	log, err := weblog.Generate(world, weblog.Sun(0.02))
	if err != nil {
		t.Fatal(err)
	}
	// The simple clusterer suffices: detection depends on access patterns,
	// not on cluster identification quality.
	cached = &fixture{world: world, log: log, result: cluster.ClusterLog(log, cluster.Simple{})}
	return cached
}

func TestDetectFindsPlantedSpiderAndProxy(t *testing.T) {
	f := setup(t)
	findings := Detect(f.result, DefaultConfig())
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	foundSpiders := map[netutil.Addr]bool{}
	foundProxies := map[netutil.Addr]bool{}
	for _, fd := range findings {
		switch fd.Kind {
		case Spider:
			foundSpiders[fd.Client] = true
		case Proxy:
			foundProxies[fd.Client] = true
		}
	}
	for s := range f.log.Truth.Spiders {
		if !foundSpiders[s] {
			t.Errorf("planted spider %v not detected", s)
		}
	}
	for p := range f.log.Truth.Proxies {
		if !foundProxies[p] {
			t.Errorf("planted proxy %v not detected", p)
		}
	}
	// No planted spider may be classified as a proxy or vice versa.
	for s := range f.log.Truth.Spiders {
		if foundProxies[s] {
			t.Errorf("spider %v misclassified as proxy", s)
		}
	}
	for p := range f.log.Truth.Proxies {
		if foundSpiders[p] {
			t.Errorf("proxy %v misclassified as spider", p)
		}
	}
}

func TestDetectPrecision(t *testing.T) {
	// Confirmed findings must be precise; Suspected ones are allowed to
	// include heavy ordinary users (the paper's own suspected proxies are
	// exactly such cases and cannot be distinguished from the log alone).
	f := setup(t)
	findings := Detect(f.result, DefaultConfig())
	confirmedFP := 0
	for _, fd := range findings {
		if fd.Confidence != Confirmed {
			continue
		}
		if !f.log.Truth.Spiders[fd.Client] && !f.log.Truth.Proxies[fd.Client] {
			confirmedFP++
		}
	}
	if confirmedFP > 0 {
		t.Errorf("%d confirmed false positives among %d findings", confirmedFP, len(findings))
	}
}

func TestDetectPlantedAreConfirmed(t *testing.T) {
	f := setup(t)
	for _, fd := range Detect(f.result, DefaultConfig()) {
		if (f.log.Truth.Spiders[fd.Client] || f.log.Truth.Proxies[fd.Client]) && fd.Confidence != Confirmed {
			t.Errorf("planted %v only %v", fd.Client, fd.Confidence)
		}
	}
}

func TestFindingEvidence(t *testing.T) {
	f := setup(t)
	findings := Detect(f.result, DefaultConfig())
	for _, fd := range findings {
		if fd.Kind == Spider {
			if fd.Correlation > DefaultConfig().SpiderMaxCorrelation {
				t.Errorf("spider with correlation %.2f above threshold", fd.Correlation)
			}
			if f.log.Truth.Spiders[fd.Client] && fd.Dominance < 0.9 {
				t.Errorf("planted spider dominance = %.2f, want ≥ 0.9 (Figure 10)", fd.Dominance)
			}
		}
		if fd.Kind == Proxy && f.log.Truth.Proxies[fd.Client] {
			if fd.Agents < DefaultConfig().ProxyMinAgents && fd.Dominance < DefaultConfig().DominanceHint {
				t.Errorf("proxy finding lacks both agent and dominance evidence: %+v", fd)
			}
		}
	}
}

func TestRequestSkew(t *testing.T) {
	f := setup(t)
	var spider netutil.Addr
	for s := range f.log.Truth.Spiders {
		spider = s
	}
	cl, ok := f.result.ClusterOf(spider)
	if !ok {
		t.Fatal("spider not clustered")
	}
	counts, gini := RequestSkew(cl)
	if len(counts) != cl.NumClients() {
		t.Fatalf("counts = %d, clients = %d", len(counts), cl.NumClients())
	}
	if counts[0] != cl.Clients[spider] {
		t.Error("heaviest client should be the spider")
	}
	// Gini of an n-sample caps at (n-1)/n, so scale the expectation: the
	// spider should push the cluster near its maximum possible skew.
	if n := cl.NumClients(); n > 1 {
		maxGini := float64(n-1) / float64(n)
		if gini < 0.9*maxGini {
			t.Errorf("spider cluster Gini = %.2f, want ≥ %.2f", gini, 0.9*maxGini)
		}
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatal("counts not descending")
		}
	}
}

func TestEliminate(t *testing.T) {
	f := setup(t)
	findings := Detect(f.result, DefaultConfig())
	bad := FindingClients(findings)
	clean := Eliminate(f.log, bad)
	if len(clean.Requests) >= len(f.log.Requests) {
		t.Fatal("elimination removed nothing")
	}
	for i := range clean.Requests {
		if bad[clean.Requests[i].Client] {
			t.Fatal("eliminated client still present")
		}
	}
	// Only the targeted clients' requests disappeared.
	removed := len(f.log.Requests) - len(clean.Requests)
	wantRemoved := 0
	for i := range f.log.Requests {
		if bad[f.log.Requests[i].Client] {
			wantRemoved++
		}
	}
	if removed != wantRemoved {
		t.Fatalf("removed %d, want %d", removed, wantRemoved)
	}
}

func TestFindingClientsFilter(t *testing.T) {
	fs := []Finding{
		{Client: 1, Kind: Spider},
		{Client: 2, Kind: Proxy},
		{Client: 3, Kind: Spider},
	}
	all := FindingClients(fs)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
	spiders := FindingClients(fs, Spider)
	if len(spiders) != 2 || !spiders[1] || !spiders[3] {
		t.Fatalf("spiders = %v", spiders)
	}
	proxies := FindingClients(fs, Proxy)
	if len(proxies) != 1 || !proxies[2] {
		t.Fatalf("proxies = %v", proxies)
	}
}

func TestKindString(t *testing.T) {
	if Spider.String() != "spider" || Proxy.String() != "proxy" {
		t.Error("Kind strings changed")
	}
	if Confirmed.String() != "confirmed" || Suspected.String() != "suspected" {
		t.Error("Confidence strings changed")
	}
}

func TestThinkTimeEvidence(t *testing.T) {
	// The planted spider and proxy issue orders of magnitude more requests
	// than ordinary clients, so their median inter-request gap (think
	// time) must be far below the ordinary heavy-hitter's.
	f := setup(t)
	findings := Detect(f.result, DefaultConfig())
	var plantedGap, ordinaryGap float64
	ordinaryCount := 0
	for _, fd := range findings {
		if f.log.Truth.Spiders[fd.Client] || f.log.Truth.Proxies[fd.Client] {
			if plantedGap == 0 || fd.ThinkTime < plantedGap {
				plantedGap = fd.ThinkTime
			}
		} else if fd.ThinkTime > 0 {
			ordinaryGap += fd.ThinkTime
			ordinaryCount++
		}
	}
	if ordinaryCount == 0 {
		t.Skip("no ordinary heavy hitters in this run")
	}
	ordinaryGap /= float64(ordinaryCount)
	if plantedGap >= ordinaryGap {
		t.Errorf("planted robots' think time %.1fs should undercut ordinary clients' %.1fs",
			plantedGap, ordinaryGap)
	}
}

func TestMedianGap(t *testing.T) {
	if g := medianGap([]uint32{10}); g != 0 {
		t.Errorf("single request gap = %g", g)
	}
	if g := medianGap([]uint32{10, 20, 40}); g != 15 {
		t.Errorf("gaps {10,20} median = %g, want 15", g)
	}
	// Unsorted input is handled.
	if g := medianGap([]uint32{40, 10, 20}); g != 15 {
		t.Errorf("unsorted median = %g, want 15", g)
	}
}

func TestDetectEmptyAndQuietLogs(t *testing.T) {
	l := &weblog.Log{Name: "empty", Duration: 0}
	res := cluster.ClusterLog(l, cluster.Simple{})
	if got := Detect(res, DefaultConfig()); got != nil {
		t.Fatalf("empty log findings = %v", got)
	}
}
