// Package dnssim simulates the nslookup side of the paper's validation: a
// reverse-DNS resolver over the ground-truth Internet. Roughly half of all
// client addresses do not resolve — the paper attributes this to firewalled
// DNS, DHCP pools without per-host records, and ISPs that never register
// customer names; here the inet generator assigns each network a
// DNSRegistered flag with exactly that aggregate effect.
package dnssim

import (
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

// Resolver answers reverse lookups against a ground-truth world. It counts
// queries so experiments can compare validation costs (the paper: "the
// time consumed by sending one probe in the optimized traceroute is about
// the same as that of a DNS nslookup").
type Resolver struct {
	world   *inet.Internet
	Queries int
}

// New returns a resolver over the world.
func New(world *inet.Internet) *Resolver {
	return &Resolver{world: world}
}

// Lookup resolves addr to its fully-qualified domain name. ok is false
// when the address has no network (never allocated/routed) or its network
// publishes no reverse records.
func (r *Resolver) Lookup(addr netutil.Addr) (string, bool) {
	r.Queries++
	n, ok := r.world.NetworkOf(addr)
	if !ok || !n.DNSRegistered {
		return "", false
	}
	return n.HostName(addr), true
}

// Suffix resolves addr and reduces the name to the paper's non-trivial
// suffix (last 3 components of a ≥4-component name, else last 2).
func (r *Resolver) Suffix(addr netutil.Addr) (string, bool) {
	name, ok := r.Lookup(addr)
	if !ok {
		return "", false
	}
	return inet.NameSuffix(name), true
}
