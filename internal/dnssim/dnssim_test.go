package dnssim

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

func world(t *testing.T) *inet.Internet {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = 200
	cfg.NumTierOne = 6
	w, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLookupRegisteredNetwork(t *testing.T) {
	w := world(t)
	r := New(w)
	rng := rand.New(rand.NewSource(1))
	found := false
	for _, n := range w.Networks {
		if !n.DNSRegistered {
			continue
		}
		h := n.RandomHost(rng)
		name, ok := r.Lookup(h)
		if !ok {
			t.Fatalf("registered network %v did not resolve", n.Prefix)
		}
		if !strings.HasSuffix(name, n.Domain) {
			t.Fatalf("name %q lacks domain %q", name, n.Domain)
		}
		found = true
		break
	}
	if !found {
		t.Fatal("no registered network in world")
	}
}

func TestLookupUnregisteredFails(t *testing.T) {
	w := world(t)
	r := New(w)
	rng := rand.New(rand.NewSource(2))
	for _, n := range w.Networks {
		if n.DNSRegistered {
			continue
		}
		if name, ok := r.Lookup(n.RandomHost(rng)); ok {
			t.Fatalf("unregistered network resolved to %q", name)
		}
		return
	}
	t.Fatal("no unregistered network in world")
}

func TestLookupUnallocatedFails(t *testing.T) {
	r := New(world(t))
	if _, ok := r.Lookup(netutil.MustParseAddr("10.1.2.3")); ok {
		t.Error("unallocated space must not resolve")
	}
}

func TestQueryCounting(t *testing.T) {
	r := New(world(t))
	r.Lookup(netutil.MustParseAddr("10.1.2.3"))
	r.Lookup(netutil.MustParseAddr("10.1.2.4"))
	r.Suffix(netutil.MustParseAddr("10.1.2.5"))
	if r.Queries != 3 {
		t.Fatalf("Queries = %d, want 3", r.Queries)
	}
}

func TestSuffixSharedWithinNetwork(t *testing.T) {
	w := world(t)
	r := New(w)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for _, n := range w.Networks {
		if !n.DNSRegistered || n.HostCapacity() < 4 {
			continue
		}
		s1, ok1 := r.Suffix(n.RandomHost(rng))
		s2, ok2 := r.Suffix(n.RandomHost(rng))
		if !ok1 || !ok2 {
			t.Fatalf("registered hosts must resolve")
		}
		if s1 != s2 {
			t.Fatalf("same-network suffixes differ: %q vs %q (domain %s)", s1, s2, n.Domain)
		}
		checked++
		if checked > 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no networks checked")
	}
}

func TestAggregateResolvability(t *testing.T) {
	// Across random hosts, resolvability should approximate the paper's
	// ~50% observation (generator sets 55% of networks registered).
	w := world(t)
	r := New(w)
	rng := rand.New(rand.NewSource(4))
	resolved := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		n := w.Networks[rng.Intn(len(w.Networks))]
		if _, ok := r.Lookup(n.RandomHost(rng)); ok {
			resolved++
		}
	}
	frac := float64(resolved) / trials
	if frac < 0.40 || frac > 0.70 {
		t.Errorf("resolvable fraction = %.2f, want ~0.5", frac)
	}
}
