package dnswire

import (
	"errors"
	"fmt"
	"net"
	"os"
	"syscall"
	"testing"

	"github.com/netaware/netcluster/internal/retry"
)

// TestClassify pins the attempt-error taxonomy the retry loop depends
// on: definitive protocol answers must be Fatal (retrying NXDOMAIN
// cannot conjure a record), every transport hiccup Transient. A
// misclassification in either direction is a real outage mode — Fatal
// timeouts give up on a congested resolver after one datagram, and
// Transient NXDOMAINs hammer the server with pointless retries.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want retry.Class
	}{
		{"nxdomain", ErrNXDomain, retry.Fatal},
		{"nxdomain wrapped", fmt.Errorf("query %q: %w", "x.example", ErrNXDomain), retry.Fatal},
		{"malformed", ErrMalformed, retry.Fatal},
		{"malformed rcode", fmt.Errorf("%w: server rcode %d", ErrMalformed, 4), retry.Fatal},
		{"malformed double wrap", fmt.Errorf("attempt 3: %w", fmt.Errorf("%w: bad question echo", ErrMalformed)), retry.Fatal},
		{"deadline", os.ErrDeadlineExceeded, retry.Transient},
		{"net timeout op", &net.OpError{Op: "read", Net: "udp", Err: os.ErrDeadlineExceeded}, retry.Transient},
		{"connection reset", &net.OpError{Op: "read", Net: "udp", Err: syscall.ECONNRESET}, retry.Transient},
		{"connection refused", &net.OpError{Op: "write", Net: "udp", Err: syscall.ECONNREFUSED}, retry.Transient},
		{"servfail", fmt.Errorf("dnswire: server failure (rcode %d)", 2), retry.Transient},
		{"generic", errors.New("socket buffer exhausted"), retry.Transient},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := classify(tc.err); got != tc.want {
				t.Errorf("classify(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// nxdomainZone answers NXDOMAIN for every name, modelling the
// unregistered half of the address space.
type nxdomainZone struct{}

func (nxdomainZone) Lookup(string, uint16) ([]RR, uint8) {
	return nil, RcodeNXDomain
}

// TestNXDomainSingleAttempt is the behavioral half of the taxonomy: a
// live server answering NXDOMAIN must terminate the retry loop on the
// first attempt, even with a generous retry budget.
func TestNXDomainSingleAttempt(t *testing.T) {
	srv := NewServer(nxdomainZone{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(addr.String())
	c.Breaker = nil
	c.Retries = 5

	if _, err := c.Query("missing.example.in-addr.arpa", TypeA); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("Query(missing) = %v, want ErrNXDomain", err)
	}
	// One datagram on the wire, zero retries: Fatal stopped the loop.
	if ct := c.Counters(); ct.Attempts != 1 || ct.Retries != 0 {
		t.Fatalf("after NXDOMAIN: attempts=%d retries=%d, want 1/0", ct.Attempts, ct.Retries)
	}
	if srv.QueryCount() != 1 {
		t.Fatalf("server saw %d queries, want 1", srv.QueryCount())
	}
}
