package dnswire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

// Client issues queries over UDP with timeouts and bounded retries — the
// nslookup of the pipeline.
type Client struct {
	// Server is the resolver address, e.g. "127.0.0.1:5353".
	Server string
	// Timeout bounds each attempt; Retries is how many extra attempts a
	// timed-out query gets.
	Timeout time.Duration
	Retries int

	mu      sync.Mutex
	rng     *rand.Rand
	Queries int
}

// NewClient returns a client with 2s timeouts and one retry.
func NewClient(server string) *Client {
	return &Client{
		Server:  server,
		Timeout: 2 * time.Second,
		Retries: 1,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// ErrNXDomain reports that the queried name does not exist.
var ErrNXDomain = errors.New("dnswire: no such domain")

// Query sends one question and returns the answers. NXDOMAIN surfaces as
// ErrNXDomain; an empty answer section with RcodeOK returns an empty
// slice and nil error (NODATA).
func (c *Client) Query(name string, qtype uint16) ([]RR, error) {
	c.mu.Lock()
	id := uint16(c.rng.Intn(1 << 16))
	c.Queries++
	c.mu.Unlock()

	req := &Message{
		Header:    Header{ID: id, RD: false},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
	pkt, err := req.Encode()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		answers, err := c.exchange(pkt, id)
		if err == nil || errors.Is(err, ErrNXDomain) {
			return answers, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dnswire: query %q failed: %w", name, lastErr)
}

func (c *Client) exchange(pkt []byte, id uint16) ([]RR, error) {
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.Timeout))
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	buf := make([]byte, maxUDPSize)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			return nil, err
		}
		if resp.Header.ID != id {
			continue // stale datagram from a previous attempt
		}
		if !resp.Header.QR {
			return nil, errors.New("dnswire: response without QR flag")
		}
		switch resp.Header.Rcode {
		case RcodeOK:
			return resp.Answers, nil
		case RcodeNXDomain:
			return nil, ErrNXDomain
		default:
			return nil, fmt.Errorf("dnswire: server rcode %d", resp.Header.Rcode)
		}
	}
}

// SuffixResolver adapts a Client to validate.NameResolver: reverse-resolve
// over the wire, then reduce to the paper's non-trivial suffix. Transport
// errors count as unresolvable — precisely what a 1999 nslookup run did
// when a server timed out.
type SuffixResolver struct {
	Client *Client
}

// Suffix implements the validation pipeline's resolver contract.
func (r SuffixResolver) Suffix(addr netutil.Addr) (string, bool) {
	name, ok, err := r.Client.LookupAddr(addr)
	if err != nil || !ok {
		return "", false
	}
	return inet.NameSuffix(name), true
}

// LookupAddr performs the reverse lookup the validation pipeline needs:
// PTR for addr's in-addr.arpa name. ok is false on NXDOMAIN; transport
// errors are returned as errors.
func (c *Client) LookupAddr(addr netutil.Addr) (name string, ok bool, err error) {
	answers, err := c.Query(ReverseName(addr), TypePTR)
	if errors.Is(err, ErrNXDomain) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	for _, rr := range answers {
		if rr.Type == TypePTR {
			return rr.Target, true, nil
		}
	}
	return "", false, nil
}
