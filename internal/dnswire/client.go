package dnswire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
)

// Counters snapshots a client's resilience activity — the degradation
// evidence the validation report surfaces when the pipeline runs over a
// lossy network.
type Counters struct {
	// Queries is the number of Query calls issued.
	Queries int
	// Attempts is the number of datagram exchanges actually tried.
	Attempts int
	// Retries is Attempts beyond each query's first (Attempts - Queries
	// for queries that reached the wire).
	Retries int
	// Timeouts counts attempts that died waiting for a response.
	Timeouts int
	// Malformed counts received datagrams that failed to decode or failed
	// ID/question validation and were discarded.
	Malformed int
	// FastFails counts queries rejected by an open circuit breaker
	// without touching the network.
	FastFails int
	// BreakerOpens counts circuit-breaker trips.
	BreakerOpens int
}

// clientSeq differentiates the default rng seed of successive clients
// without reaching for wall-clock entropy, keeping runs reproducible.
var clientSeq atomic.Int64

// Client issues queries over UDP with per-attempt deadlines, exponential
// backoff with jitter, response validation, and a circuit breaker — the
// nslookup of the pipeline, hardened for the lossy network the paper ran
// it over.
type Client struct {
	// Server is the resolver address, e.g. "127.0.0.1:5353".
	Server string
	// Timeout bounds each attempt; Retries is how many extra attempts a
	// failed query gets.
	Timeout time.Duration
	Retries int
	// Backoff schedules the delay between attempts. MaxAttempts and
	// PerAttempt are derived from Retries and Timeout at query time, so
	// only the delay/jitter fields matter here.
	Backoff retry.Policy
	// Breaker, when non-nil, makes queries fail fast with retry.ErrOpen
	// while the resolver looks dead. NewClient installs one (5 consecutive
	// failures, 2s cooldown); set to nil to disable.
	Breaker *retry.Breaker
	// Dial opens the per-attempt UDP flow; overridable so tests can
	// interpose a faultnet wrapper client-side. Nil uses net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)

	mu       sync.Mutex
	rng      *rand.Rand
	counters Counters
	// Queries mirrors counters.Queries for backward compatibility with
	// callers that read the field directly.
	Queries int
}

// NewClient returns a client with 2s per-attempt timeouts, two retries
// with jittered exponential backoff, and a circuit breaker. The rng is
// seeded deterministically; use Seed to pin it in tests.
func NewClient(server string) *Client {
	return &Client{
		Server:  server,
		Timeout: 2 * time.Second,
		Retries: 2,
		Backoff: retry.Policy{BaseDelay: 25 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Jitter: 0.5},
		Breaker: retry.NewBreaker(5, 2*time.Second),
		rng:     rand.New(rand.NewSource(clientSeq.Add(1))),
	}
}

// Seed re-seeds the client's rng (query IDs and backoff jitter) for
// deterministic tests.
func (c *Client) Seed(seed int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rng = rand.New(rand.NewSource(seed))
}

// Counters returns a snapshot of the client's resilience counters.
func (c *Client) Counters() Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	ct := c.counters
	ct.BreakerOpens = c.Breaker.Opens()
	return ct
}

// ErrNXDomain reports that the queried name does not exist.
var ErrNXDomain = errors.New("dnswire: no such domain")

// ErrMalformed reports a response that decoded but failed validation, or
// an rcode indicating the server cannot ever answer this question.
var ErrMalformed = errors.New("dnswire: malformed response")

// classify maps attempt errors for the retry loop: definitive protocol
// answers (NXDOMAIN, refused/notimpl rcodes) are fatal, everything else —
// timeouts, resets, SERVFAIL, garbage — is worth another attempt.
func classify(err error) retry.Class {
	if errors.Is(err, ErrNXDomain) || errors.Is(err, ErrMalformed) {
		return retry.Fatal
	}
	return retry.Transient
}

// Query sends one question and returns the answers. NXDOMAIN surfaces as
// ErrNXDomain; an empty answer section with RcodeOK returns an empty
// slice and nil error (NODATA).
func (c *Client) Query(name string, qtype uint16) ([]RR, error) {
	return c.QueryContext(context.Background(), name, qtype)
}

// QueryContext is Query bounded by ctx: cancellation stops the retry
// ladder between and during attempts.
func (c *Client) QueryContext(ctx context.Context, name string, qtype uint16) ([]RR, error) {
	c.mu.Lock()
	c.counters.Queries++
	c.Queries = c.counters.Queries
	c.mu.Unlock()
	dnsQueries.Inc()

	qctx, sp := obsv.StartTraceSpan(ctx, "dnswire.query")
	sp.SetAttr("name", name)

	if c.Breaker != nil && !c.Breaker.Allow() {
		c.mu.Lock()
		c.counters.FastFails++
		c.mu.Unlock()
		dnsFastFails.Inc()
		ferr := fmt.Errorf("dnswire: query %q: %w", name, retry.ErrOpen)
		sp.SetAttr("breaker", "open")
		sp.Fail(ferr)
		sp.End()
		return nil, ferr
	}

	policy := c.Backoff
	policy.MaxAttempts = c.Retries + 1
	policy.PerAttempt = c.Timeout
	policy.Classify = classify
	policy.Rand = c.randFloat
	policy.SpanName = "dnswire.attempt"

	var answers []RR
	attempts, err := policy.Do(qctx, func(ctx context.Context) error {
		a, aerr := c.exchange(ctx, name, qtype)
		if aerr == nil {
			answers = a
		}
		return aerr
	})
	c.mu.Lock()
	c.counters.Attempts += attempts
	if attempts > 1 {
		c.counters.Retries += attempts - 1
	}
	c.mu.Unlock()

	// NXDOMAIN is a healthy server answering; only transport-level
	// failures feed the breaker.
	if c.Breaker != nil {
		if err == nil || errors.Is(err, ErrNXDomain) || errors.Is(err, ErrMalformed) {
			c.Breaker.Record(nil)
		} else {
			c.Breaker.Record(err)
		}
	}
	sp.SetAttrInt("attempts", int64(attempts))
	sp.SetAttr("breaker", c.Breaker.State())
	if err != nil {
		sp.Fail(err)
		sp.End()
		if errors.Is(err, ErrNXDomain) {
			return nil, err
		}
		return nil, fmt.Errorf("dnswire: query %q failed %s", name, retry.Attempts(attempts, err))
	}
	sp.End()
	return answers, nil
}

func (c *Client) randFloat() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// newID draws a fresh transaction ID. Each attempt gets its own ID so a
// late response to attempt N can never satisfy attempt N+1.
func (c *Client) newID() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint16(c.rng.Intn(1 << 16))
}

func (c *Client) countTimeout() {
	c.mu.Lock()
	c.counters.Timeouts++
	c.mu.Unlock()
	dnsTimeouts.Inc()
}

func (c *Client) countMalformed() {
	c.mu.Lock()
	c.counters.Malformed++
	c.mu.Unlock()
	dnsMalformed.Inc()
}

// exchange performs one attempt: fresh ID, fresh socket, read until a
// validated response or the deadline. Datagrams that fail to decode, or
// that carry the wrong ID or question, are discarded and the read
// continues — a corrupted or stale datagram must not abort the attempt
// while the real answer may still be in flight.
func (c *Client) exchange(ctx context.Context, name string, qtype uint16) ([]RR, error) {
	id := c.newID()
	req := &Message{
		Header:    Header{ID: id, RD: false},
		Questions: []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
	pkt, err := req.Encode()
	if err != nil {
		return nil, err
	}

	dial := c.Dial
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(ctx, "udp", c.Server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	deadline := time.Now().Add(c.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	conn.SetDeadline(deadline)
	if _, err := conn.Write(pkt); err != nil {
		return nil, err
	}
	buf := make([]byte, maxUDPSize)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if retry.IsTimeout(err) {
				c.countTimeout()
			}
			return nil, err
		}
		resp, err := Decode(buf[:n])
		if err != nil {
			c.countMalformed()
			continue // corrupted datagram; the real answer may still come
		}
		if !c.responseMatches(resp, id, name, qtype) {
			c.countMalformed()
			continue // stale or spoofed; keep waiting
		}
		switch resp.Header.Rcode {
		case RcodeOK:
			return resp.Answers, nil
		case RcodeNXDomain:
			return nil, ErrNXDomain
		case RcodeServFail:
			return nil, fmt.Errorf("dnswire: server failure (rcode %d)", resp.Header.Rcode)
		default:
			return nil, fmt.Errorf("%w: server rcode %d", ErrMalformed, resp.Header.Rcode)
		}
	}
}

// responseMatches validates a decoded datagram against this attempt: QR
// set, matching transaction ID, and (when a question section is echoed)
// a question matching what we asked. A response that fails any check is
// discarded rather than trusted — late replies to earlier attempts carry
// stale IDs, and a FORMERR response legitimately echoes no question.
func (c *Client) responseMatches(resp *Message, id uint16, name string, qtype uint16) bool {
	if !resp.Header.QR || resp.Header.ID != id {
		return false
	}
	if len(resp.Questions) == 0 {
		// Only header-level errors may omit the question echo.
		return resp.Header.Rcode != RcodeOK
	}
	q := resp.Questions[0]
	return strings.EqualFold(q.Name, name) && q.Type == qtype && q.Class == ClassIN
}

// SuffixResolver adapts a Client to validate.NameResolver: reverse-resolve
// over the wire, then reduce to the paper's non-trivial suffix. Transport
// errors count as unresolvable — precisely what a 1999 nslookup run did
// when a server timed out.
type SuffixResolver struct {
	Client *Client
}

// Suffix implements the validation pipeline's resolver contract.
func (r SuffixResolver) Suffix(addr netutil.Addr) (string, bool) {
	s, ok, _ := r.SuffixErr(addr)
	return s, ok
}

// SuffixErr implements validate's error-aware resolver contract: NXDOMAIN
// is (_, false, nil) — the name genuinely has no entry — while transport
// failures return the error so validation can count the client as demoted
// rather than definitively unresolvable.
func (r SuffixResolver) SuffixErr(addr netutil.Addr) (string, bool, error) {
	name, ok, err := r.Client.LookupAddr(addr)
	if err != nil {
		return "", false, err
	}
	if !ok {
		return "", false, nil
	}
	return inet.NameSuffix(name), true, nil
}

// DegradationCounters implements validate's degradation contract,
// surfacing the client's retry/breaker activity.
func (r SuffixResolver) DegradationCounters() (retries, breakerOpens, fastFails int) {
	ct := r.Client.Counters()
	return ct.Retries, ct.BreakerOpens, ct.FastFails
}

// LookupAddr performs the reverse lookup the validation pipeline needs:
// PTR for addr's in-addr.arpa name. ok is false on NXDOMAIN; transport
// errors are returned as errors.
func (c *Client) LookupAddr(addr netutil.Addr) (name string, ok bool, err error) {
	return c.LookupAddrContext(context.Background(), addr)
}

// LookupAddrContext is LookupAddr bounded by ctx.
func (c *Client) LookupAddrContext(ctx context.Context, addr netutil.Addr) (name string, ok bool, err error) {
	answers, err := c.QueryContext(ctx, ReverseName(addr), TypePTR)
	if errors.Is(err, ErrNXDomain) {
		return "", false, nil
	}
	if err != nil {
		return "", false, err
	}
	for _, rr := range answers {
		if rr.Type == TypePTR {
			return rr.Target, true, nil
		}
	}
	return "", false, nil
}
