package dnswire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/netaware/netcluster/internal/dnssim"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Header: Header{ID: 0xBEEF, QR: true, AA: true, RD: true, Rcode: RcodeOK},
		Questions: []Question{
			{Name: "94.147.65.12.in-addr.arpa", Type: TypePTR, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "94.147.65.12.in-addr.arpa", Type: TypePTR, Class: ClassIN,
				TTL: 3600, Target: "macbeth12.cs.wits.ac.za"},
			{Name: "host.example.com", Type: TypeA, Class: ClassIN,
				TTL: 60, Target: "12.65.147.94"},
		},
	}
	pkt, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.ID != 0xBEEF || !got.Header.QR || !got.Header.AA || got.Header.Rcode != RcodeOK {
		t.Fatalf("header = %+v", got.Header)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "94.147.65.12.in-addr.arpa" {
		t.Fatalf("questions = %+v", got.Questions)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("answers = %+v", got.Answers)
	}
	if got.Answers[0].Target != "macbeth12.cs.wits.ac.za" || got.Answers[0].Type != TypePTR {
		t.Fatalf("PTR answer = %+v", got.Answers[0])
	}
	if got.Answers[1].Target != "12.65.147.94" || got.Answers[1].Type != TypeA {
		t.Fatalf("A answer = %+v", got.Answers[1])
	}
}

func TestEncodeRejectsBadNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'x'
	}
	bad := []string{
		"a..b",                // empty label
		string(long) + ".com", // label > 63
	}
	for _, name := range bad {
		m := &Message{Questions: []Question{{Name: name, Type: TypePTR, Class: ClassIN}}}
		if _, err := m.Encode(); err == nil {
			t.Errorf("Encode(%q) should fail", name)
		}
	}
}

func TestDecodeCompressionPointers(t *testing.T) {
	// Hand-built response with a compressed answer name pointing at the
	// question name (offset 12).
	var pkt []byte
	pkt = appendU16(pkt, 7)      // ID
	pkt = appendU16(pkt, 0x8400) // QR|AA
	pkt = appendU16(pkt, 1)      // QD
	pkt = appendU16(pkt, 1)      // AN
	pkt = appendU16(pkt, 0)
	pkt = appendU16(pkt, 0)
	var err error
	pkt, err = appendName(pkt, "www.example.com")
	if err != nil {
		t.Fatal(err)
	}
	pkt = appendU16(pkt, TypeA)
	pkt = appendU16(pkt, ClassIN)
	// Answer: name = pointer to offset 12.
	pkt = append(pkt, 0xC0, 12)
	pkt = appendU16(pkt, TypeA)
	pkt = appendU16(pkt, ClassIN)
	pkt = appendU32(pkt, 60)
	pkt = appendU16(pkt, 4)
	pkt = append(pkt, 1, 2, 3, 4)

	m, err := Decode(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "www.example.com" {
		t.Fatalf("decompressed name = %q", m.Answers[0].Name)
	}
	if m.Answers[0].Target != "1.2.3.4" {
		t.Fatalf("target = %q", m.Answers[0].Target)
	}
}

func TestDecodeRejectsHostileInput(t *testing.T) {
	// Pointer loop: name at offset 12 points at itself.
	var pkt []byte
	pkt = appendU16(pkt, 1)
	pkt = appendU16(pkt, 0)
	pkt = appendU16(pkt, 1)
	pkt = appendU16(pkt, 0)
	pkt = appendU16(pkt, 0)
	pkt = appendU16(pkt, 0)
	pkt = append(pkt, 0xC0, 12) // self-pointer
	pkt = appendU16(pkt, TypeA)
	pkt = appendU16(pkt, ClassIN)
	if _, err := Decode(pkt); err == nil {
		t.Error("self-referential pointer must fail")
	}
	// Truncated messages at every length must error, not panic.
	m := &Message{Questions: []Question{{Name: "a.b.c", Type: TypePTR, Class: ClassIN}}}
	full, _ := m.Encode()
	for i := 0; i < len(full); i++ {
		Decode(full[:i]) // must not panic
	}
}

func TestDecodeFuzz(t *testing.T) {
	f := func(data []byte) bool {
		Decode(data) // must never panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestReverseNameRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := netutil.Addr(v)
		back, ok := parseReverse(ReverseName(a))
		return ok && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := parseReverse("not-a-reverse-name.example.com"); ok {
		t.Error("non-arpa name must not parse")
	}
	if _, ok := parseReverse("299.1.1.1.in-addr.arpa"); ok {
		t.Error("out-of-range octet must not parse")
	}
}

func world(t *testing.T) *inet.Internet {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = 150
	cfg.NumTierOne = 6
	w, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestEndToEndOverUDP(t *testing.T) {
	w := world(t)
	srv := NewServer(NewReverseZone(w))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(addr.String())

	var registered, unregistered *inet.Network
	for _, n := range w.Networks {
		if n.DNSRegistered && registered == nil {
			registered = n
		}
		if !n.DNSRegistered && unregistered == nil {
			unregistered = n
		}
	}
	host := registered.HostAddr(1)
	name, ok, err := client.LookupAddr(host)
	if err != nil || !ok {
		t.Fatalf("LookupAddr(%v) = %q %v %v", host, name, ok, err)
	}
	if want := registered.HostName(host); name != want {
		t.Fatalf("name = %q, want %q", name, want)
	}
	// Unregistered network: NXDOMAIN.
	if _, ok, err := client.LookupAddr(unregistered.HostAddr(1)); err != nil || ok {
		t.Fatalf("unregistered lookup ok=%v err=%v", ok, err)
	}
	// Unallocated space: NXDOMAIN too.
	if _, ok, err := client.LookupAddr(netutil.MustParseAddr("10.1.2.3")); err != nil || ok {
		t.Fatalf("unallocated lookup ok=%v err=%v", ok, err)
	}
	if srv.QueryCount() < 3 {
		t.Fatalf("server saw %d queries", srv.QueryCount())
	}
}

// TestWireMatchesDnssim cross-checks the wire-protocol path against the
// pure-function resolver: identical verdicts for every sampled address.
func TestWireMatchesDnssim(t *testing.T) {
	w := world(t)
	srv := NewServer(NewReverseZone(w))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := NewClient(addr.String())
	resolver := dnssim.New(w)

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		n := w.Networks[rng.Intn(len(w.Networks))]
		host := n.RandomHost(rng)
		simName, simOK := resolver.Lookup(host)
		wireName, wireOK, err := client.LookupAddr(host)
		if err != nil {
			t.Fatal(err)
		}
		if simOK != wireOK || simName != wireName {
			t.Fatalf("disagreement on %v: sim (%q, %v) vs wire (%q, %v)",
				host, simName, simOK, wireName, wireOK)
		}
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	w := world(t)
	srv := NewServer(NewReverseZone(w))
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// FORMERR for malformed packets that still carry an ID.
	resp := srv.handle([]byte{0xAB, 0xCD, 0xFF})
	m, err := Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 0xABCD || m.Header.Rcode != RcodeFormErr {
		t.Fatalf("formerr response = %+v", m.Header)
	}
	// Sub-header garbage is dropped.
	if resp := srv.handle([]byte{0x01}); resp != nil {
		t.Fatal("one-byte packet must be dropped")
	}
	// Multi-question queries: NOTIMPL.
	q := &Message{Questions: []Question{
		{Name: "a.in-addr.arpa", Type: TypePTR, Class: ClassIN},
		{Name: "b.in-addr.arpa", Type: TypePTR, Class: ClassIN},
	}}
	pkt, _ := q.Encode()
	m, err = Decode(srv.handle(pkt))
	if err != nil || m.Header.Rcode != RcodeNotImpl {
		t.Fatalf("multi-question rcode = %+v err=%v", m, err)
	}
	// Non-IN class: REFUSED.
	q2 := &Message{Questions: []Question{{Name: "a.in-addr.arpa", Type: TypePTR, Class: 3}}}
	pkt2, _ := q2.Encode()
	m, err = Decode(srv.handle(pkt2))
	if err != nil || m.Header.Rcode != RcodeRefused {
		t.Fatalf("chaos-class rcode = %+v err=%v", m, err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(NewReverseZone(world(t)))
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzDecode asserts the wire decoder never panics on arbitrary bytes.
func FuzzDecode(f *testing.F) {
	m := &Message{
		Header:    Header{ID: 1},
		Questions: []Question{{Name: "94.147.65.12.in-addr.arpa", Type: TypePTR, Class: ClassIN}},
	}
	if pkt, err := m.Encode(); err == nil {
		f.Add(pkt)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0x0C})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err == nil && msg == nil {
			t.Fatal("nil message without error")
		}
	})
}
