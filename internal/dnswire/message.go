// Package dnswire implements the subset of the DNS protocol (RFC 1035)
// that the paper's nslookup-based validation exercises: PTR queries over
// UDP against an authoritative reverse zone. internal/dnssim answers the
// same questions as a pure function; this package answers them as a real
// wire-protocol server, so the validation pipeline can be demonstrated
// against actual DNS traffic and the two implementations can be
// cross-checked against each other.
//
// The codec covers headers, questions, and PTR/A answers, with full
// decompression support on decode (servers in the wild compress; ours
// emits uncompressed names for simplicity).
package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Wire constants (RFC 1035 §3.2, §4.1.1).
const (
	TypeA   uint16 = 1
	TypePTR uint16 = 12
	ClassIN uint16 = 1

	// RcodeOK and friends are RCODE values.
	RcodeOK       = 0
	RcodeFormErr  = 1
	RcodeServFail = 2
	RcodeNXDomain = 3
	RcodeNotImpl  = 4
	RcodeRefused  = 5

	maxNameLen  = 255
	maxLabelLen = 63
	maxUDPSize  = 512
)

// Header is the fixed 12-byte message header.
type Header struct {
	ID      uint16
	QR      bool // response flag
	Opcode  uint8
	AA      bool // authoritative answer
	TC      bool // truncated
	RD      bool // recursion desired
	RA      bool // recursion available
	Rcode   uint8
	QDCount uint16
	ANCount uint16
	NSCount uint16
	ARCount uint16
}

// Question is one query tuple.
type Question struct {
	Name  string // fully qualified, trailing dot optional
	Type  uint16
	Class uint16
}

// RR is one resource record; only the fields PTR/A answers need.
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	// Target holds the PTR target name, or the dotted A address.
	Target string
}

// Message is a DNS message restricted to questions and answers.
type Message struct {
	Header    Header
	Questions []Question
	Answers   []RR
}

// ErrTruncated reports a message that does not fit the 512-byte UDP limit.
var ErrTruncated = errors.New("dnswire: message exceeds UDP size")

// appendName encodes a domain name as length-prefixed labels.
func appendName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		if len(name) > maxNameLen-1 {
			return nil, fmt.Errorf("dnswire: name %q too long", name)
		}
		for _, label := range strings.Split(name, ".") {
			if label == "" {
				return nil, fmt.Errorf("dnswire: empty label in %q", name)
			}
			if len(label) > maxLabelLen {
				return nil, fmt.Errorf("dnswire: label %q too long", label)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Encode serializes m. Names are written uncompressed. An error is
// returned when the result would not fit in a single UDP datagram; the
// caller decides whether to set TC and retry (our server truncates the
// answer section instead, see Server).
func (m *Message) Encode() ([]byte, error) {
	b := make([]byte, 0, 256)
	h := m.Header
	h.QDCount = uint16(len(m.Questions))
	h.ANCount = uint16(len(m.Answers))
	b = appendU16(b, h.ID)
	var flags uint16
	if h.QR {
		flags |= 1 << 15
	}
	flags |= uint16(h.Opcode&0xF) << 11
	if h.AA {
		flags |= 1 << 10
	}
	if h.TC {
		flags |= 1 << 9
	}
	if h.RD {
		flags |= 1 << 8
	}
	if h.RA {
		flags |= 1 << 7
	}
	flags |= uint16(h.Rcode & 0xF)
	b = appendU16(b, flags)
	b = appendU16(b, h.QDCount)
	b = appendU16(b, h.ANCount)
	b = appendU16(b, h.NSCount)
	b = appendU16(b, h.ARCount)
	var err error
	for _, q := range m.Questions {
		if b, err = appendName(b, q.Name); err != nil {
			return nil, err
		}
		b = appendU16(b, q.Type)
		b = appendU16(b, q.Class)
	}
	for _, rr := range m.Answers {
		if b, err = appendName(b, rr.Name); err != nil {
			return nil, err
		}
		b = appendU16(b, rr.Type)
		b = appendU16(b, rr.Class)
		b = appendU32(b, rr.TTL)
		switch rr.Type {
		case TypePTR:
			rdata, err := appendName(nil, rr.Target)
			if err != nil {
				return nil, err
			}
			b = appendU16(b, uint16(len(rdata)))
			b = append(b, rdata...)
		case TypeA:
			octets, err := parseDotted(rr.Target)
			if err != nil {
				return nil, err
			}
			b = appendU16(b, 4)
			b = append(b, octets[:]...)
		default:
			return nil, fmt.Errorf("dnswire: cannot encode RR type %d", rr.Type)
		}
	}
	if len(b) > maxUDPSize {
		return nil, ErrTruncated
	}
	return b, nil
}

func parseDotted(s string) ([4]byte, error) {
	var out [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return out, fmt.Errorf("dnswire: bad A target %q", s)
	}
	for i, p := range parts {
		v := 0
		if p == "" || len(p) > 3 {
			return out, fmt.Errorf("dnswire: bad A target %q", s)
		}
		for _, ch := range []byte(p) {
			if ch < '0' || ch > '9' {
				return out, fmt.Errorf("dnswire: bad A target %q", s)
			}
			v = v*10 + int(ch-'0')
		}
		if v > 255 {
			return out, fmt.Errorf("dnswire: bad A target %q", s)
		}
		out[i] = byte(v)
	}
	return out, nil
}

// decoder walks a wire message with bounds checking and decompression.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.b) {
		return 0, errors.New("dnswire: short message")
	}
	v := uint16(d.b[d.off])<<8 | uint16(d.b[d.off+1])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	hi, err := d.u16()
	if err != nil {
		return 0, err
	}
	lo, err := d.u16()
	if err != nil {
		return 0, err
	}
	return uint32(hi)<<16 | uint32(lo), nil
}

// name decodes a possibly-compressed domain name starting at d.off,
// leaving d.off just past it. Pointer loops are bounded by a hop budget.
func (d *decoder) name() (string, error) {
	var labels []string
	off := d.off
	jumped := false
	hops := 0
	for {
		if off >= len(d.b) {
			return "", errors.New("dnswire: name runs past message")
		}
		c := d.b[off]
		switch {
		case c == 0:
			if !jumped {
				d.off = off + 1
			}
			return strings.Join(labels, "."), nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(d.b) {
				return "", errors.New("dnswire: truncated pointer")
			}
			ptr := int(c&0x3F)<<8 | int(d.b[off+1])
			if !jumped {
				d.off = off + 2
			}
			if ptr >= off {
				return "", errors.New("dnswire: forward compression pointer")
			}
			off = ptr
			jumped = true
			hops++
			if hops > 32 {
				return "", errors.New("dnswire: compression pointer loop")
			}
		case c&0xC0 != 0:
			return "", fmt.Errorf("dnswire: reserved label type %#x", c&0xC0)
		default:
			if off+1+int(c) > len(d.b) {
				return "", errors.New("dnswire: label runs past message")
			}
			labels = append(labels, string(d.b[off+1:off+1+int(c)]))
			if len(labels) > 128 {
				return "", errors.New("dnswire: too many labels")
			}
			off += 1 + int(c)
		}
	}
}

// Decode parses a wire message (header, questions, answers; authority and
// additional sections are skipped structurally).
func Decode(b []byte) (*Message, error) {
	d := &decoder{b: b}
	var m Message
	var err error
	if m.Header.ID, err = d.u16(); err != nil {
		return nil, err
	}
	flags, err := d.u16()
	if err != nil {
		return nil, err
	}
	m.Header.QR = flags&(1<<15) != 0
	m.Header.Opcode = uint8(flags >> 11 & 0xF)
	m.Header.AA = flags&(1<<10) != 0
	m.Header.TC = flags&(1<<9) != 0
	m.Header.RD = flags&(1<<8) != 0
	m.Header.RA = flags&(1<<7) != 0
	m.Header.Rcode = uint8(flags & 0xF)
	if m.Header.QDCount, err = d.u16(); err != nil {
		return nil, err
	}
	if m.Header.ANCount, err = d.u16(); err != nil {
		return nil, err
	}
	if m.Header.NSCount, err = d.u16(); err != nil {
		return nil, err
	}
	if m.Header.ARCount, err = d.u16(); err != nil {
		return nil, err
	}
	for i := 0; i < int(m.Header.QDCount); i++ {
		var q Question
		if q.Name, err = d.name(); err != nil {
			return nil, err
		}
		if q.Type, err = d.u16(); err != nil {
			return nil, err
		}
		if q.Class, err = d.u16(); err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, q)
	}
	for i := 0; i < int(m.Header.ANCount); i++ {
		var rr RR
		if rr.Name, err = d.name(); err != nil {
			return nil, err
		}
		if rr.Type, err = d.u16(); err != nil {
			return nil, err
		}
		if rr.Class, err = d.u16(); err != nil {
			return nil, err
		}
		if rr.TTL, err = d.u32(); err != nil {
			return nil, err
		}
		rdlen, err := d.u16()
		if err != nil {
			return nil, err
		}
		if d.off+int(rdlen) > len(b) {
			return nil, errors.New("dnswire: rdata runs past message")
		}
		switch rr.Type {
		case TypePTR:
			save := d.off
			if rr.Target, err = d.name(); err != nil {
				return nil, err
			}
			d.off = save + int(rdlen)
		case TypeA:
			if rdlen != 4 {
				return nil, fmt.Errorf("dnswire: A rdata length %d", rdlen)
			}
			rr.Target = fmt.Sprintf("%d.%d.%d.%d", b[d.off], b[d.off+1], b[d.off+2], b[d.off+3])
			d.off += 4
		default:
			d.off += int(rdlen) // skip unknown rdata
		}
		m.Answers = append(m.Answers, rr)
	}
	return &m, nil
}
