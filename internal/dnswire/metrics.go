package dnswire

import "github.com/netaware/netcluster/internal/obsv"

// Wire-client observability: process-wide totals across every Client,
// complementing the per-client counters (which validation reports read).
// All sites sit on network round trips, so inline atomics are free.
var (
	dnsQueries   = obsv.C("dnswire.queries")
	dnsTimeouts  = obsv.C("dnswire.timeouts")
	dnsMalformed = obsv.C("dnswire.malformed")
	dnsFastFails = obsv.C("dnswire.fast_fails")
)
