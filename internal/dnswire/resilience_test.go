package dnswire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/retry"
)

// fakeResolver runs a scripted UDP responder: for each received query it
// calls script with the decoded request and sends back whatever datagrams
// script returns.
func fakeResolver(t *testing.T, script func(req *Message) [][]byte) net.Addr {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, maxUDPSize)
		for {
			n, raddr, err := conn.ReadFrom(buf)
			if err != nil {
				return
			}
			req, err := Decode(buf[:n])
			if err != nil {
				continue
			}
			for _, resp := range script(req) {
				conn.WriteTo(resp, raddr)
			}
		}
	}()
	return conn.LocalAddr()
}

func answerFor(req *Message, target string) []byte {
	resp := &Message{
		Header:    Header{ID: req.Header.ID, QR: true, AA: true},
		Questions: req.Questions,
		Answers: []RR{{
			Name: req.Questions[0].Name, Type: req.Questions[0].Type,
			Class: ClassIN, TTL: 60, Target: target,
		}},
	}
	out, _ := resp.Encode()
	return out
}

func TestSeededClientIsDeterministic(t *testing.T) {
	ids := func(seed int64) []uint16 {
		c := NewClient("127.0.0.1:1")
		c.Seed(seed)
		out := make([]uint16, 8)
		for i := range out {
			out[i] = c.newID()
		}
		return out
	}
	a, b := ids(99), ids(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded ID stream diverged at %d", i)
		}
	}
}

// TestStaleIDRejectedAcrossAttempts: the resolver answers the first
// attempt with a deliberately wrong (previous-attempt-style) ID and never
// anything else, then answers the second attempt correctly. The client
// must discard the stale datagram, time out, retry with a fresh ID, and
// succeed — a late reply to attempt N must not satisfy attempt N+1.
func TestStaleIDRejectedAcrossAttempts(t *testing.T) {
	calls := 0
	addr := fakeResolver(t, func(req *Message) [][]byte {
		calls++
		if calls == 1 {
			stale := &Message{
				Header:    Header{ID: req.Header.ID + 1, QR: true},
				Questions: req.Questions,
			}
			out, _ := stale.Encode()
			return [][]byte{out}
		}
		return [][]byte{answerFor(req, "host1.example.net")}
	})
	c := NewClient(addr.String())
	c.Seed(7)
	c.Timeout = 150 * time.Millisecond
	c.Retries = 2
	c.Backoff.BaseDelay = time.Millisecond

	answers, err := c.Query("1.0.0.10.in-addr.arpa", TypePTR)
	if err != nil || len(answers) != 1 || answers[0].Target != "host1.example.net" {
		t.Fatalf("answers=%v err=%v", answers, err)
	}
	ct := c.Counters()
	if ct.Malformed == 0 {
		t.Fatalf("stale-ID datagram must be counted malformed: %+v", ct)
	}
	if ct.Retries == 0 || ct.Timeouts == 0 {
		t.Fatalf("first attempt must time out and retry: %+v", ct)
	}
}

// TestWrongQuestionRejected: a response with our ID but a different
// question section (cache-poisoning shape) is discarded.
func TestWrongQuestionRejected(t *testing.T) {
	calls := 0
	addr := fakeResolver(t, func(req *Message) [][]byte {
		calls++
		if calls == 1 {
			forged := &Message{
				Header: Header{ID: req.Header.ID, QR: true},
				Questions: []Question{{
					Name: "evil.example.com", Type: req.Questions[0].Type, Class: ClassIN,
				}},
				Answers: []RR{{Name: "evil.example.com", Type: TypePTR, Class: ClassIN, TTL: 60,
					Target: "attacker.example.com"}},
			}
			out, _ := forged.Encode()
			return [][]byte{out, answerFor(req, "real.example.net")}
		}
		return [][]byte{answerFor(req, "real.example.net")}
	})
	c := NewClient(addr.String())
	c.Seed(3)
	c.Timeout = 200 * time.Millisecond
	answers, err := c.Query("2.0.0.10.in-addr.arpa", TypePTR)
	if err != nil || len(answers) != 1 {
		t.Fatalf("answers=%v err=%v", answers, err)
	}
	if answers[0].Target != "real.example.net" {
		t.Fatalf("forged answer accepted: %v", answers[0])
	}
	if c.Counters().Malformed == 0 {
		t.Fatal("forged datagram must be counted malformed")
	}
}

func TestResponseMatches(t *testing.T) {
	c := NewClient("127.0.0.1:1")
	q := Question{Name: "x.in-addr.arpa", Type: TypePTR, Class: ClassIN}
	ok := &Message{Header: Header{ID: 5, QR: true}, Questions: []Question{q}}
	if !c.responseMatches(ok, 5, "X.IN-ADDR.ARPA", TypePTR) {
		t.Fatal("case-insensitive match must pass")
	}
	if c.responseMatches(ok, 6, q.Name, TypePTR) {
		t.Fatal("wrong ID must fail")
	}
	if c.responseMatches(ok, 5, q.Name, TypeA) {
		t.Fatal("wrong qtype must fail")
	}
	noQR := &Message{Header: Header{ID: 5}, Questions: []Question{q}}
	if c.responseMatches(noQR, 5, q.Name, TypePTR) {
		t.Fatal("missing QR must fail")
	}
	// FORMERR without an echoed question is a legitimate error response...
	formerr := &Message{Header: Header{ID: 5, QR: true, Rcode: RcodeFormErr}}
	if !c.responseMatches(formerr, 5, q.Name, TypePTR) {
		t.Fatal("FORMERR without question echo must match")
	}
	// ...but a "successful" answer without one is not.
	bare := &Message{Header: Header{ID: 5, QR: true, Rcode: RcodeOK}}
	if c.responseMatches(bare, 5, q.Name, TypePTR) {
		t.Fatal("OK response without question echo must fail")
	}
}

// TestQueryUnderPacketLoss: the real server behind a 30% drop profile;
// every lookup must still succeed (with retries) and the retry counter
// must show the client worked for it.
func TestQueryUnderPacketLoss(t *testing.T) {
	w := world(t)
	srv := NewServer(NewReverseZone(w))
	inj := faultnet.New(faultnet.Lossy(17, 0.3, 0))
	srv.Wrap = inj.PacketConn
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := NewClient(addr.String())
	c.Seed(21)
	c.Timeout = 100 * time.Millisecond
	c.Retries = 7 // 0.3 drop each way: per-attempt failure ~0.51, 8 attempts → ~0.5% residual
	c.Backoff.BaseDelay = 2 * time.Millisecond
	c.Backoff.MaxDelay = 10 * time.Millisecond

	lookups := 0
	for _, n := range w.Networks {
		if !n.DNSRegistered {
			continue
		}
		host := n.HostAddr(1)
		name, ok, err := c.LookupAddr(host)
		if err != nil || !ok {
			t.Fatalf("LookupAddr(%v) under loss: ok=%v err=%v", host, ok, err)
		}
		if want := n.HostName(host); name != want {
			t.Fatalf("name = %q, want %q", name, want)
		}
		lookups++
		if lookups == 25 {
			break
		}
	}
	ct := c.Counters()
	if ct.Retries == 0 {
		t.Fatalf("30%% loss must force retries: %+v", ct)
	}
	if inj.Stats().Drops == 0 {
		t.Fatalf("injector must have dropped datagrams: %+v", inj.Stats())
	}
	t.Logf("loss run: %d lookups, counters %+v, faults %+v", lookups, ct, inj.Stats())
}

// TestBreakerFailsFastOnDeadResolver: a resolver that is simply gone
// (closed port) must not cost a full timeout ladder per query forever —
// after the threshold the breaker rejects instantly.
func TestBreakerFailsFastOnDeadResolver(t *testing.T) {
	// Reserve a port, then close it so nothing listens.
	tmp, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := tmp.LocalAddr().String()
	tmp.Close()

	c := NewClient(addr)
	c.Seed(5)
	c.Timeout = 50 * time.Millisecond
	c.Retries = 0
	c.Backoff.BaseDelay = 0
	c.Breaker = retry.NewBreaker(3, time.Hour)

	for i := 0; i < 3; i++ {
		if _, err := c.Query("1.0.0.10.in-addr.arpa", TypePTR); err == nil {
			t.Fatal("query against a dead resolver must fail")
		}
	}
	start := time.Now()
	_, err = c.Query("1.0.0.10.in-addr.arpa", TypePTR)
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("open breaker must surface retry.ErrOpen, got %v", err)
	}
	if since := time.Since(start); since > 20*time.Millisecond {
		t.Fatalf("fast-fail took %v", since)
	}
	ct := c.Counters()
	if ct.FastFails == 0 || ct.BreakerOpens == 0 {
		t.Fatalf("counters = %+v", ct)
	}
}

// TestBreakerRecovers: after the cooldown a half-open trial against a
// now-healthy resolver closes the circuit again.
func TestBreakerRecovers(t *testing.T) {
	addr := fakeResolver(t, func(req *Message) [][]byte {
		return [][]byte{answerFor(req, "alive.example.net")}
	})
	c := NewClient(addr.String())
	c.Seed(13)
	c.Timeout = 100 * time.Millisecond
	c.Breaker = retry.NewBreaker(1, time.Millisecond)
	// Trip the breaker with one forced failure against a dead port.
	goodServer := c.Server
	tmp, _ := net.ListenPacket("udp", "127.0.0.1:0")
	dead := tmp.LocalAddr().String()
	tmp.Close()
	c.Server = dead
	c.Retries = 0
	if _, err := c.Query("1.0.0.10.in-addr.arpa", TypePTR); err == nil {
		t.Fatal("dead port must fail")
	}
	c.Server = goodServer
	time.Sleep(5 * time.Millisecond) // let the cooldown lapse
	if _, err := c.Query("1.0.0.10.in-addr.arpa", TypePTR); err != nil {
		t.Fatalf("half-open trial against healthy resolver: %v", err)
	}
	if _, err := c.Query("1.0.0.10.in-addr.arpa", TypePTR); err != nil {
		t.Fatalf("closed circuit must serve normally: %v", err)
	}
}

func TestQueryContextCancellation(t *testing.T) {
	addr := fakeResolver(t, func(req *Message) [][]byte {
		return nil // never answer
	})
	c := NewClient(addr.String())
	c.Seed(1)
	c.Timeout = 10 * time.Second
	c.Retries = 5
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.QueryContext(ctx, "1.0.0.10.in-addr.arpa", TypePTR)
	if err == nil {
		t.Fatal("cancelled query must fail")
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("cancellation must cut the 10s ladder short, took %v", since)
	}
}

// TestSuffixErrClassification: NXDOMAIN is a definitive no (no error),
// a dead resolver is an error — validate uses the distinction to demote
// rather than misclassify clients.
func TestSuffixErrClassification(t *testing.T) {
	w := world(t)
	srv := NewServer(NewReverseZone(w))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(addr.String())
	c.Seed(2)
	r := SuffixResolver{Client: c}

	var unregistered *inet.Network
	for _, n := range w.Networks {
		if !n.DNSRegistered {
			unregistered = n
			break
		}
	}
	if _, ok, err := r.SuffixErr(unregistered.HostAddr(1)); ok || err != nil {
		t.Fatalf("NXDOMAIN: ok=%v err=%v, want false,nil", ok, err)
	}

	srv.Close()
	dead := NewClient(addr.String())
	dead.Seed(2)
	dead.Timeout = 50 * time.Millisecond
	dead.Retries = 0
	rDead := SuffixResolver{Client: dead}
	if _, ok, err := rDead.SuffixErr(unregistered.HostAddr(1)); ok || err == nil {
		t.Fatalf("dead resolver: ok=%v err=%v, want false,non-nil", ok, err)
	}
	retries, opens, fastFails := rDead.DegradationCounters()
	_ = retries
	_ = opens
	_ = fastFails // counters exist; exact values depend on breaker config
}
