package dnswire

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
)

// Zone answers queries authoritatively. Lookup returns the answer records
// and an RCODE; an empty answer with RcodeOK means NODATA (name exists,
// no records of that type).
type Zone interface {
	Lookup(name string, qtype uint16) ([]RR, uint8)
}

// ReverseZone is the in-addr.arpa PTR zone derived from the ground-truth
// world: exactly the data a 1999 ISP's name server would have published
// for its registered networks. Unregistered networks return NXDOMAIN —
// the ~50% nslookup failure the paper reports.
type ReverseZone struct {
	world *inet.Internet
	TTL   uint32
}

// NewReverseZone builds the zone over a world.
func NewReverseZone(world *inet.Internet) *ReverseZone {
	return &ReverseZone{world: world, TTL: 3600}
}

// ReverseName renders the in-addr.arpa owner name for addr
// (12.65.147.94 → "94.147.65.12.in-addr.arpa").
func ReverseName(addr netutil.Addr) string {
	o := addr.Octets()
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa", o[3], o[2], o[1], o[0])
}

// parseReverse inverts ReverseName; ok is false for names outside
// in-addr.arpa or with non-numeric labels.
func parseReverse(name string) (netutil.Addr, bool) {
	name = strings.TrimSuffix(strings.ToLower(name), ".")
	const suffix = ".in-addr.arpa"
	if !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	parts := strings.Split(strings.TrimSuffix(name, suffix), ".")
	if len(parts) != 4 {
		return 0, false
	}
	var octets [4]byte
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, false
		}
		// Reverse order: first label is the last octet.
		octets[3-i] = byte(v)
	}
	return netutil.AddrFrom4(octets[0], octets[1], octets[2], octets[3]), true
}

// Lookup implements Zone for PTR queries.
func (z *ReverseZone) Lookup(name string, qtype uint16) ([]RR, uint8) {
	addr, ok := parseReverse(name)
	if !ok {
		return nil, RcodeNXDomain
	}
	n, found := z.world.NetworkOf(addr)
	if !found || !n.DNSRegistered {
		return nil, RcodeNXDomain
	}
	if qtype != TypePTR {
		return nil, RcodeOK // name exists, no data of that type
	}
	return []RR{{
		Name:   name,
		Type:   TypePTR,
		Class:  ClassIN,
		TTL:    z.TTL,
		Target: n.HostName(addr),
	}}, RcodeOK
}

// Server serves a Zone over UDP.
type Server struct {
	zone Zone

	// Wrap, when non-nil, wraps the bound socket before serving — the
	// injection point for faultnet.Injector.PacketConn, so tests and the
	// chaos sweep can stand the server up behind a lossy network.
	Wrap func(net.PacketConn) net.PacketConn

	mu      sync.Mutex
	conn    net.PacketConn
	done    chan struct{}
	queries int
}

// QueryCount returns how many datagrams the server has handled.
func (s *Server) QueryCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// NewServer returns an unstarted server for zone.
func NewServer(zone Zone) *Server {
	return &Server{zone: zone, done: make(chan struct{})}
}

// Start binds addr ("127.0.0.1:0" for tests) and serves until Close.
// It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnswire: listen: %w", err)
	}
	bound := conn.LocalAddr()
	if s.Wrap != nil {
		conn = s.Wrap(conn)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	go s.serve(conn)
	return bound, nil
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	default:
		close(s.done)
	}
	if s.conn != nil {
		return s.conn.Close()
	}
	return nil
}

func (s *Server) serve(conn net.PacketConn) {
	buf := make([]byte, maxUDPSize)
	for {
		n, raddr, err := conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-s.done:
				return
			default:
				continue
			}
		}
		resp := s.handle(buf[:n])
		if resp != nil {
			conn.WriteTo(resp, raddr)
		}
	}
}

// handle builds the response datagram for one query datagram. Malformed
// packets that still carry a header get FORMERR; shorter garbage is
// dropped (nothing to mirror an ID from).
func (s *Server) handle(pkt []byte) []byte {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()

	req, err := Decode(pkt)
	if err != nil {
		if len(pkt) < 2 {
			return nil
		}
		m := &Message{Header: Header{
			ID: uint16(pkt[0])<<8 | uint16(pkt[1]), QR: true, Rcode: RcodeFormErr,
		}}
		out, _ := m.Encode()
		return out
	}
	resp := &Message{Header: Header{
		ID: req.Header.ID, QR: true, AA: true, RD: req.Header.RD,
	}}
	resp.Questions = req.Questions
	if req.Header.Opcode != 0 || len(req.Questions) != 1 {
		resp.Header.Rcode = RcodeNotImpl
	} else {
		q := req.Questions[0]
		if q.Class != ClassIN {
			resp.Header.Rcode = RcodeRefused
		} else {
			answers, rcode := s.zone.Lookup(q.Name, q.Type)
			resp.Header.Rcode = rcode
			resp.Answers = answers
		}
	}
	out, err := resp.Encode()
	if err == ErrTruncated {
		resp.Answers = nil
		resp.Header.TC = true
		out, err = resp.Encode()
	}
	if err != nil {
		return nil
	}
	return out
}
