package faultnet

import (
	"fmt"
	"net"
)

// errReset is the failure surfaced by an injected connection reset. It
// reports Timeout() false so retry classifiers treat it as a transient
// transport error distinct from a deadline.
type errReset struct{ op string }

func (e errReset) Error() string   { return "faultnet: injected connection reset during " + e.op }
func (e errReset) Timeout() bool   { return false }
func (e errReset) Temporary() bool { return true }

// PacketConn wraps a UDP (or any packet) endpoint with the injector's
// profile. Inbound faults apply to ReadFrom, outbound to WriteTo.
func (i *Injector) PacketConn(inner net.PacketConn) net.PacketConn {
	return &packetConn{PacketConn: inner, inj: i}
}

type packetConn struct {
	net.PacketConn
	inj *Injector
}

// ReadFrom delivers the next surviving datagram: dropped datagrams are
// consumed and skipped (the deadline on the underlying conn still
// bounds the wait), surviving ones may be delayed, truncated or
// corrupted before delivery.
func (c *packetConn) ReadFrom(b []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(b)
		if err != nil {
			return n, addr, err
		}
		c.inj.countOp()
		f := c.inj.inbound()
		if c.inj.roll(f.Drop) {
			c.inj.count(&c.inj.stats.Drops)
			continue
		}
		c.inj.delaySync(f)
		if c.inj.roll(f.Truncate) {
			c.inj.count(&c.inj.stats.Truncates)
			n = c.inj.truncLen(n)
		}
		if c.inj.roll(f.Corrupt) {
			c.inj.corrupt(b[:n])
		}
		return n, addr, nil
	}
}

// WriteTo emits the datagram under outbound faults. Drops report success
// (the network swallowed it — the sender cannot tell); delayed datagrams
// are delivered asynchronously so a slow response can arrive after the
// peer timed out and retried; duplicates are sent twice.
func (c *packetConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	c.inj.countOp()
	f := c.inj.outbound()
	if c.inj.roll(f.Drop) {
		c.inj.count(&c.inj.stats.Drops)
		return len(b), nil
	}
	pkt := b
	if c.inj.roll(f.Truncate) {
		c.inj.count(&c.inj.stats.Truncates)
		pkt = pkt[:c.inj.truncLen(len(pkt))]
	}
	if c.inj.roll(f.Corrupt) {
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		c.inj.corrupt(cp)
		pkt = cp
	}
	sends := 1
	if c.inj.roll(f.Dup) {
		c.inj.count(&c.inj.stats.Dups)
		sends = 2
	}
	if d := c.inj.latency(f); d > 0 {
		c.inj.count(&c.inj.stats.Delays)
		// Deliver late without blocking the caller: copy, then send after d.
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		for s := 0; s < sends; s++ {
			c.inj.after(d, func() {
				c.PacketConn.WriteTo(cp, addr) // best effort; peer may be gone
			})
		}
		return len(b), nil
	}
	var err error
	for s := 0; s < sends; s++ {
		_, err = c.PacketConn.WriteTo(pkt, addr)
	}
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// Conn wraps a stream connection with the injector's profile. TCP
// retransmits lost segments, so Drop appears as extra latency
// (3×Latency) rather than silent loss; Reset closes the connection and
// surfaces a reset error; Truncate delivers a prefix then closes
// (premature EOF).
func (i *Injector) Conn(inner net.Conn) net.Conn {
	return &conn{Conn: inner, inj: i}
}

type conn struct {
	net.Conn
	inj *Injector
}

func (c *conn) fault(f Faults, op string) error {
	if c.inj.roll(f.Reset) {
		c.inj.count(&c.inj.stats.Resets)
		c.Conn.Close()
		return errReset{op: op}
	}
	c.inj.delaySync(f)
	if c.inj.roll(f.Drop) {
		// Simulated segment loss: the transport recovers by retransmission,
		// which the application only observes as added delay.
		c.inj.count(&c.inj.stats.Drops)
		c.inj.sleep(3 * f.Latency)
	}
	return nil
}

func (c *conn) Read(b []byte) (int, error) {
	c.inj.countOp()
	f := c.inj.inbound()
	if err := c.fault(f, "read"); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(b)
	if err != nil {
		return n, err
	}
	if c.inj.roll(f.Truncate) {
		c.inj.count(&c.inj.stats.Truncates)
		n = c.inj.truncLen(n)
		c.Conn.Close() // premature EOF after the prefix
	}
	if c.inj.roll(f.Corrupt) {
		c.inj.corrupt(b[:n])
	}
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	c.inj.countOp()
	f := c.inj.outbound()
	if err := c.fault(f, "write"); err != nil {
		return 0, err
	}
	if c.inj.roll(f.Corrupt) {
		cp := make([]byte, len(b))
		copy(cp, b)
		c.inj.corrupt(cp)
		n, err := c.Conn.Write(cp)
		if err != nil {
			return n, err
		}
		return len(b), nil
	}
	return c.Conn.Write(b)
}

// Listener wraps a listener so every accepted connection carries the
// injector's profile. An inbound Drop at accept time closes the
// connection immediately — the three-way handshake "failed".
func (i *Injector) Listener(inner net.Listener) net.Listener {
	return &listener{Listener: inner, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.inj.countOp()
		if l.inj.roll(l.inj.inbound().Drop) {
			l.inj.count(&l.inj.stats.Drops)
			c.Close()
			continue
		}
		return l.inj.Conn(c), nil
	}
}

// String renders a profile compactly for reports.
func (p Profile) String() string {
	return fmt.Sprintf("seed=%d in{drop=%.0f%% lat=%v+%v} out{drop=%.0f%% lat=%v+%v}",
		p.Seed,
		p.Inbound.Drop*100, p.Inbound.Latency, p.Inbound.Jitter,
		p.Outbound.Drop*100, p.Outbound.Latency, p.Outbound.Jitter)
}
