// Package faultnet is a deterministic fault-injection substrate for the
// live measurement pipeline: wrappers around net.PacketConn, net.Conn,
// net.Listener and http.RoundTripper that drop, delay, duplicate,
// truncate, corrupt and reset traffic according to a seeded per-direction
// Profile.
//
// The paper's validation ran over the real 1999 Internet and budgeted for
// loss — roughly half its nslookup probes never resolved and traceroute
// probes went unanswered — so any faithful reproduction must demonstrate
// the same tolerance. faultnet lets every live server in the repo
// (dnswire.Server, whois.Server, an httpproxy origin) be stood up behind
// injected faults in tests, in the `experiments chaos` sweep, and in the
// examples, without touching kernel queueing disciplines.
//
// Determinism: all random decisions come from one seeded rng guarded by a
// mutex, so a single-goroutine driver replays identically for a given
// Profile.Seed. Under concurrency the interleaving (not the marginal
// rates) varies, which is exactly the reproducibility a chaos suite
// needs.
package faultnet

import (
	"math/rand"
	"sync"
	"time"
)

// Faults is one direction's fault rates. All probabilities are in [0,1]
// and are evaluated independently per operation.
type Faults struct {
	// Drop discards the datagram/response entirely. On stream (TCP)
	// wrappers, where the transport would retransmit, a drop manifests
	// as an extra retransmission delay of 3×Latency instead.
	Drop float64
	// Dup delivers the datagram twice (packet wrappers only).
	Dup float64
	// Corrupt flips bits in the payload; checksummed real networks
	// deliver such damage rarely, but a resilient decoder must survive it.
	Corrupt float64
	// Truncate delivers only a prefix of the payload. On streams the
	// connection is closed after the prefix (premature EOF).
	Truncate float64
	// Reset tears the connection down mid-operation (stream and HTTP
	// wrappers; packets have no connection to reset).
	Reset float64
	// Latency delays every operation by Latency plus a uniform extra in
	// [0, Jitter). Outbound packet delays are delivered asynchronously —
	// a delayed response can arrive after the client timed out and
	// retried, which is precisely the stale-datagram case the DNS client
	// must reject.
	Latency time.Duration
	Jitter  time.Duration
}

// Profile describes both directions of a faulty path plus the rng seed.
// Inbound applies to traffic arriving at the wrapped endpoint (reads and
// accepts), Outbound to traffic it emits (writes and requests).
type Profile struct {
	Seed     int64
	Inbound  Faults
	Outbound Faults
}

// Symmetric builds a profile applying the same faults both ways.
func Symmetric(seed int64, f Faults) Profile {
	return Profile{Seed: seed, Inbound: f, Outbound: f}
}

// Lossy is the chaos suite's canonical profile: drop rate each way plus
// uniform response jitter in [0, jitter).
func Lossy(seed int64, drop float64, jitter time.Duration) Profile {
	return Symmetric(seed, Faults{Drop: drop, Jitter: jitter})
}

// Stats counts injected faults; the chaos report surfaces them so a run
// can prove faults actually fired.
type Stats struct {
	Ops       int64 // operations that passed through a wrapper
	Drops     int64
	Dups      int64
	Corrupts  int64
	Truncates int64
	Resets    int64
	Delays    int64 // operations that incurred injected latency
}

// Total returns the number of injected fault events (delays included).
func (s Stats) Total() int64 {
	return s.Drops + s.Dups + s.Corrupts + s.Truncates + s.Resets + s.Delays
}

// Injector owns the seeded rng and counters for one Profile and hands out
// wrapped transports. One Injector may wrap any number of conns.
type Injector struct {
	prof Profile

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats

	// sleep is the clock hook, overridable in tests.
	sleep func(time.Duration)
	// after schedules deferred delivery, overridable in tests.
	after func(time.Duration, func())
}

// New returns an injector for the profile.
func New(p Profile) *Injector {
	return &Injector{
		prof:  p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		sleep: time.Sleep,
		after: func(d time.Duration, f func()) { time.AfterFunc(d, f) },
	}
}

// Profile returns the injector's current profile.
func (i *Injector) Profile() Profile {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.prof
}

// SetProfile replaces the fault profile on a live injector — chaos
// schedules use it to heal or degrade a wrapped path mid-run (the sink
// suite's "outage, then recovery" phases). The rng stream and fault
// counters carry across the swap.
func (i *Injector) SetProfile(p Profile) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.prof = p
}

// inbound and outbound read one direction's faults under the lock, so
// wrappers observe SetProfile swaps without racing them.
func (i *Injector) inbound() Faults {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.prof.Inbound
}

func (i *Injector) outbound() Faults {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.prof.Outbound
}

// Stats returns a snapshot of the fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// roll draws one Bernoulli decision under the injector lock.
func (i *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return p >= 1 || i.rng.Float64() < p
}

// countOp records one wrapped operation.
func (i *Injector) countOp() {
	i.mu.Lock()
	i.stats.Ops++
	i.mu.Unlock()
}

func (i *Injector) count(c *int64) {
	i.mu.Lock()
	*c++
	i.mu.Unlock()
}

// latency draws this operation's injected delay (0 when none applies).
func (i *Injector) latency(f Faults) time.Duration {
	if f.Latency <= 0 && f.Jitter <= 0 {
		return 0
	}
	d := f.Latency
	if f.Jitter > 0 {
		i.mu.Lock()
		d += time.Duration(i.rng.Int63n(int64(f.Jitter)))
		i.mu.Unlock()
	}
	return d
}

// delaySync sleeps this operation's injected latency in place.
func (i *Injector) delaySync(f Faults) {
	if d := i.latency(f); d > 0 {
		i.count(&i.stats.Delays)
		i.sleep(d)
	}
}

// corrupt flips one bit per 64 bytes (at least one) of b in place.
func (i *Injector) corrupt(b []byte) {
	if len(b) == 0 {
		return
	}
	i.count(&i.stats.Corrupts)
	i.mu.Lock()
	defer i.mu.Unlock()
	flips := len(b)/64 + 1
	for f := 0; f < flips; f++ {
		pos := i.rng.Intn(len(b))
		bit := byte(1) << uint(i.rng.Intn(8))
		b[pos] ^= bit
	}
}

// truncLen picks the truncated prefix length for an n-byte payload:
// at least 1 byte and strictly less than n (for n > 1).
func (i *Injector) truncLen(n int) int {
	if n <= 1 {
		return n
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return 1 + i.rng.Intn(n-1)
}
