package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// udpPair returns a wrapped server-side conn and a plain client conn
// aimed at it.
func udpPair(t *testing.T, inj *Injector) (server net.PacketConn, client *net.UDPConn) {
	t.Helper()
	inner, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	c, err := net.DialUDP("udp", nil, inner.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return inj.PacketConn(inner), c
}

func TestPacketInboundDrop(t *testing.T) {
	inj := New(Profile{Seed: 1, Inbound: Faults{Drop: 1}})
	server, client := udpPair(t, inj)
	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	_, _, err := server.ReadFrom(buf)
	if err == nil {
		t.Fatal("dropped datagram must not be delivered")
	}
	st := inj.Stats()
	if st.Drops != 1 || st.Ops != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPacketOutboundDropReportsSuccess(t *testing.T) {
	inj := New(Profile{Seed: 1, Outbound: Faults{Drop: 1}})
	server, client := udpPair(t, inj)
	n, err := server.WriteTo([]byte("resp"), client.LocalAddr())
	if err != nil || n != 4 {
		t.Fatalf("drop must look like success, got n=%d err=%v", n, err)
	}
	client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := client.Read(make([]byte, 64)); err == nil {
		t.Fatal("dropped response must not arrive")
	}
	if inj.Stats().Drops != 1 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

func TestPacketDupAndCorrupt(t *testing.T) {
	inj := New(Profile{Seed: 7, Outbound: Faults{Dup: 1}})
	server, client := udpPair(t, inj)
	if _, err := server.WriteTo([]byte("twice"), client.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for i := 0; i < 2; i++ {
		client.SetReadDeadline(time.Now().Add(time.Second))
		n, err := client.Read(buf)
		if err != nil || string(buf[:n]) != "twice" {
			t.Fatalf("dup copy %d: n=%d err=%v", i, n, err)
		}
	}

	inj2 := New(Profile{Seed: 7, Inbound: Faults{Corrupt: 1}})
	server2, client2 := udpPair(t, inj2)
	orig := []byte("payload-payload-payload")
	if _, err := client2.Write(orig); err != nil {
		t.Fatal(err)
	}
	server2.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := server2.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf[:n], orig) {
		t.Fatal("corrupted datagram must differ from the original")
	}
	if inj2.Stats().Corrupts != 1 {
		t.Fatalf("stats = %+v", inj2.Stats())
	}
}

func TestPacketTruncate(t *testing.T) {
	inj := New(Profile{Seed: 3, Inbound: Faults{Truncate: 1}})
	server, client := udpPair(t, inj)
	if _, err := client.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	server.SetReadDeadline(time.Now().Add(time.Second))
	n, _, err := server.ReadFrom(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if n >= 10 || n < 1 {
		t.Fatalf("truncated length = %d, want 1..9", n)
	}
}

func TestPacketOutboundDelayDeliversLate(t *testing.T) {
	inj := New(Profile{Seed: 5, Outbound: Faults{Latency: 30 * time.Millisecond}})
	server, client := udpPair(t, inj)
	start := time.Now()
	if _, err := server.WriteTo([]byte("late"), client.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since > 20*time.Millisecond {
		t.Fatalf("delayed WriteTo must not block the caller (took %v)", since)
	}
	client.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 64)
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "late" {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if since := time.Since(start); since < 25*time.Millisecond {
		t.Fatalf("datagram arrived too early: %v", since)
	}
}

func tcpPair(t *testing.T, inj *Injector) (net.Listener, func() net.Conn) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inner.Close() })
	ln := inj.Listener(inner)
	dial := func() net.Conn {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return ln, dial
}

func TestStreamEcho(t *testing.T) {
	inj := New(Profile{Seed: 2}) // no faults: transparent wrapper
	ln, dial := tcpPair(t, inj)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(c, c)
		c.Close()
	}()
	c := dial()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q err=%v", buf, err)
	}
}

func TestStreamReset(t *testing.T) {
	inj := New(Profile{Seed: 2, Inbound: Faults{Reset: 1}})
	ln, dial := tcpPair(t, inj)
	errc := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		_, err = c.Read(make([]byte, 16))
		errc <- err
	}()
	c := dial()
	c.Write([]byte("doomed"))
	err := <-errc
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("want non-timeout net.Error reset, got %v", err)
	}
	if inj.Stats().Resets != 1 {
		t.Fatalf("stats = %+v", inj.Stats())
	}
}

func TestStreamTruncatePrematureEOF(t *testing.T) {
	inj := New(Profile{Seed: 9, Inbound: Faults{Truncate: 1}})
	ln, dial := tcpPair(t, inj)
	got := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- nil
			return
		}
		data, _ := io.ReadAll(c)
		got <- data
	}()
	c := dial()
	full := bytes.Repeat([]byte("x"), 1024)
	c.Write(full)
	c.Close()
	data := <-got
	if len(data) >= len(full) || len(data) < 1 {
		t.Fatalf("truncated stream delivered %d bytes, want 1..%d", len(data), len(full)-1)
	}
}

func TestRoundTripperDropAndTruncate(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("b", 400))
	}))
	defer origin.Close()

	drop := New(Profile{Seed: 1, Outbound: Faults{Drop: 1}})
	client := &http.Client{Transport: drop.RoundTripper(nil)}
	_, err := client.Get(origin.URL)
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("dropped request must surface as timeout, got %v", err)
	}

	trunc := New(Profile{Seed: 1, Inbound: Faults{Truncate: 1}})
	client2 := &http.Client{Transport: trunc.RoundTripper(nil)}
	resp, err := client2.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) >= 400 {
		t.Fatalf("truncated body delivered %d bytes", len(body))
	}
}

func TestRoundTripperPassThrough(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "intact")
	}))
	defer origin.Close()
	inj := New(Profile{Seed: 4})
	client := &http.Client{Transport: inj.RoundTripper(nil)}
	resp, err := client.Get(origin.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "intact" {
		t.Fatalf("body = %q", body)
	}
	if inj.Stats().Total() != 0 {
		t.Fatalf("fault-free profile must inject nothing: %+v", inj.Stats())
	}
}

// TestSeededDeterminism: two injectors with the same seed make identical
// marginal decisions when driven identically.
func TestSeededDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(Lossy(seed, 0.3, 0))
		out := make([]bool, 200)
		for i := range out {
			out[i] = inj.roll(inj.prof.Inbound.Drop)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under identical seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestLossyProfileRates(t *testing.T) {
	inj := New(Lossy(11, 0.2, 50*time.Millisecond))
	drops := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if inj.roll(inj.prof.Inbound.Drop) {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.17 || rate > 0.23 {
		t.Fatalf("empirical drop rate %.3f far from 0.2", rate)
	}
}
