package faultnet

import (
	"io"
	"net/http"
)

// errDropped is the failure surfaced when an injected drop swallows an
// HTTP exchange; it reports Timeout() true because that is how a dropped
// request manifests to a real client.
type errDropped struct{}

func (errDropped) Error() string   { return "faultnet: request dropped (timeout)" }
func (errDropped) Timeout() bool   { return true }
func (errDropped) Temporary() bool { return true }

// RoundTripper wraps an http.RoundTripper with the injector's profile:
// outbound faults hit the request (drop → timeout error, reset →
// connection reset, latency → synchronous delay), inbound faults hit the
// response (drop/reset → error after the exchange, truncate/corrupt →
// damaged body).
func (i *Injector) RoundTripper(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &roundTripper{inner: inner, inj: i}
}

type roundTripper struct {
	inner http.RoundTripper
	inj   *Injector
}

func (t *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	t.inj.countOp()
	out := t.inj.outbound()
	if t.inj.roll(out.Drop) {
		t.inj.count(&t.inj.stats.Drops)
		return nil, errDropped{}
	}
	if t.inj.roll(out.Reset) {
		t.inj.count(&t.inj.stats.Resets)
		return nil, errReset{op: "request"}
	}
	t.inj.delaySync(out)

	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	in := t.inj.inbound()
	if t.inj.roll(in.Drop) {
		t.inj.count(&t.inj.stats.Drops)
		resp.Body.Close()
		return nil, errDropped{}
	}
	if t.inj.roll(in.Reset) {
		t.inj.count(&t.inj.stats.Resets)
		resp.Body.Close()
		return nil, errReset{op: "response"}
	}
	t.inj.delaySync(in)
	if t.inj.roll(in.Truncate) {
		t.inj.count(&t.inj.stats.Truncates)
		// Deliver roughly half the body then EOF; ContentLength no longer
		// matches, which a robust client must tolerate or detect.
		resp.Body = &truncatedBody{inner: resp.Body, remaining: halfOrOne(resp.ContentLength)}
		resp.ContentLength = -1
	}
	if t.inj.roll(in.Corrupt) {
		resp.Body = &corruptBody{inner: resp.Body, inj: t.inj}
	}
	return resp, nil
}

func halfOrOne(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 1
}

type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

type corruptBody struct {
	inner io.ReadCloser
	inj   *Injector
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if n > 0 {
		b.inj.corrupt(p[:n])
	}
	return n, err
}

func (b *corruptBody) Close() error { return b.inner.Close() }
