package httpproxy

import (
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/faultnet"
)

// getFull is rig.get plus the status code, for failure-path assertions.
func (r *rig) getFull(t *testing.T, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(r.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body), resp.Header.Get("X-Cache")
}

// breakOrigin makes every subsequent origin contact fail at the transport
// layer without tearing down the test server.
func (r *rig) breakOrigin() {
	inj := faultnet.New(faultnet.Profile{Seed: 1, Outbound: faultnet.Faults{Drop: 1}})
	r.proxy.SetTransport(inj.RoundTripper(nil))
}

func (r *rig) fixOrigin() {
	r.proxy.SetTransport(nil)
}

// TestColdMissOriginDownIs502: a miss with an unreachable origin must
// surface 502 and count an error — there is nothing stale to fall back on.
func TestColdMissOriginDownIs502(t *testing.T) {
	r := newRig(t)
	r.origin.set("/page", "content", r.now.Add(-time.Hour))
	r.breakOrigin()
	code, _, _ := r.getFull(t, "/page")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", code)
	}
	st := r.proxy.Stats()
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

// TestRevalidationFailureWithoutServeStaleIs502: default behavior when a
// stale entry cannot be revalidated is an explicit failure.
func TestRevalidationFailureWithoutServeStaleIs502(t *testing.T) {
	r := newRig(t)
	r.origin.set("/page", "v1", r.now.Add(-time.Hour))
	if body, _ := r.get(t, "/page"); body != "v1" {
		t.Fatalf("warm-up body = %q", body)
	}
	r.advance(2 * time.Hour) // entry expires
	r.breakOrigin()
	code, _, _ := r.getFull(t, "/page")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", code)
	}
	st := r.proxy.Stats()
	if st.Errors != 1 || st.StaleServes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeStaleOnRevalidationFailure: with ServeStale, the expired copy
// is served (X-Cache: STALE), the failure is still counted, and once the
// origin heals the next access revalidates normally.
func TestServeStaleOnRevalidationFailure(t *testing.T) {
	r := newRig(t)
	r.proxy.ServeStale = true
	mod := r.now.Add(-time.Hour)
	r.origin.set("/page", "v1", mod)
	r.get(t, "/page") // warm
	r.advance(2 * time.Hour)
	r.breakOrigin()

	code, body, cache := r.getFull(t, "/page")
	if code != http.StatusOK || body != "v1" || cache != "STALE" {
		t.Fatalf("code=%d body=%q cache=%q", code, body, cache)
	}
	st := r.proxy.Stats()
	if st.StaleServes != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A second degraded access serves stale again — the entry must not
	// have been promoted to fresh.
	if _, body, cache := r.getFull(t, "/page"); body != "v1" || cache != "STALE" {
		t.Fatalf("second stale serve: body=%q cache=%q", body, cache)
	}

	// Origin heals: the stale entry revalidates (304) and serves as a hit.
	r.fixOrigin()
	_, body, cache = r.getFull(t, "/page")
	if body != "v1" || cache != "HIT" {
		t.Fatalf("healed: body=%q cache=%q", body, cache)
	}
	if got := r.proxy.Stats().StaleServes; got != 2 {
		t.Fatalf("staleServes = %d, want 2", got)
	}
}

// TestPiggybackOriginFailureCountsError: a failed piggybacked validation
// increments Errors and keeps the entry (to be retried), and the cache
// keeps functioning.
func TestPiggybackOriginFailureCountsError(t *testing.T) {
	r := newRig(t)
	mod := r.now.Add(-time.Hour)
	r.origin.set("/a", "A", mod)
	r.origin.set("/b", "B", mod)
	r.get(t, "/a")
	r.get(t, "/b")
	r.advance(2 * time.Hour)
	r.proxy.Sweep() // /a and /b become piggyback candidates

	// Origin answers the direct fetch but the injector drops ~everything:
	// use full drop so the piggybacked validation definitely fails.
	r.breakOrigin()
	code, _, _ := r.getFull(t, "/c") // miss → originGet fails → 502, no piggyback reached
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d", code)
	}
	errsAfterMiss := r.proxy.Stats().Errors
	if errsAfterMiss == 0 {
		t.Fatal("dropped origin fetch must count an error")
	}

	// Heal the direct path; the piggyback runs on the next contact and
	// succeeds, revalidating the swept entries.
	r.fixOrigin()
	r.origin.set("/c", "C", mod)
	if body, _ := r.get(t, "/c"); body != "C" {
		t.Fatal("healed fetch must succeed")
	}
	st := r.proxy.Stats()
	if st.Validations < 2 {
		t.Fatalf("piggybacked validations missing: %+v", st)
	}
	// Both swept entries are fresh again: hits without sync validation.
	if _, cache := r.get(t, "/a"); cache != "HIT" {
		t.Fatal("/a should be fresh after piggyback")
	}
	if _, cache := r.get(t, "/b"); cache != "HIT" {
		t.Fatal("/b should be fresh after piggyback")
	}
}

// TestPiggybackTransportErrorKeepsEntry: when the piggybacked validation
// itself hits a dead origin, the error is counted and the entry survives
// for a later retry (it is not dropped as if the origin had 404ed).
func TestPiggybackTransportErrorKeepsEntry(t *testing.T) {
	r := newRig(t)
	mod := r.now.Add(-time.Hour)
	r.origin.set("/a", "A", mod)
	r.origin.set("/fresh", "F", mod)
	r.get(t, "/a")
	r.advance(2 * time.Hour)
	r.proxy.Sweep()

	// Half-broken origin: the direct fetch works (first roll passes),
	// then the piggyback request is dropped. Easiest deterministic route:
	// break the transport after the direct fetch completes by letting the
	// direct fetch go through a healthy transport and the piggyback hit a
	// drop-everything one is racy — instead, drop the origin entirely and
	// verify the piggyback failure path via a direct sync revalidation.
	r.breakOrigin()
	r.proxy.ServeStale = true
	_, body, cache := r.getFull(t, "/a")
	if body != "A" || cache != "STALE" {
		t.Fatalf("body=%q cache=%q", body, cache)
	}
	// The entry survived the failed revalidation.
	r.fixOrigin()
	_, body, cache = r.getFull(t, "/a")
	if body != "A" || cache != "HIT" {
		t.Fatalf("after heal: body=%q cache=%q", body, cache)
	}
}

// TestProxyUnderFlakyOrigin: a 30% drop / 20% reset origin still yields
// correct bodies for every request thanks to cache + stale fallback; the
// error counter records the turbulence.
func TestProxyUnderFlakyOrigin(t *testing.T) {
	r := newRig(t)
	r.proxy.ServeStale = true
	mod := r.now.Add(-time.Hour)
	r.origin.set("/page", "stable", mod)
	if body, _ := r.get(t, "/page"); body != "stable" {
		t.Fatal("warm-up failed")
	}
	inj := faultnet.New(faultnet.Profile{
		Seed:     99,
		Outbound: faultnet.Faults{Drop: 0.3, Reset: 0.2},
	})
	r.proxy.SetTransport(inj.RoundTripper(nil))
	for i := 0; i < 30; i++ {
		r.advance(2 * time.Hour) // force a revalidation each time
		code, body, _ := r.getFull(t, "/page")
		if code != http.StatusOK || body != "stable" {
			t.Fatalf("request %d: code=%d body=%q", i, code, body)
		}
	}
	st := r.proxy.Stats()
	if st.StaleServes == 0 {
		t.Fatalf("flaky origin must have forced stale serves: %+v", st)
	}
	if inj.Stats().Total() == 0 {
		t.Fatalf("injector idle: %+v", inj.Stats())
	}
	t.Logf("flaky-origin stats: %+v, faults %+v", st, inj.Stats())
}
