// Package httpproxy is a working HTTP implementation of the caching proxy
// the simulation models: an http.Handler that forwards GET requests to an
// origin, caches responses with fixed-TTL freshness, revalidates with
// If-Modified-Since, piggybacks validation of expired entries onto origin
// contacts (PCV), and evicts LRU. It exists so that the paper's proposed
// deployment — "install one or more proxy caches in front of the
// clients" — is not just simulated but runnable: put one Handler in front
// of each identified cluster.
//
// Scope matches the 1999 design being reproduced: GET-only caching keyed
// by URL path+query, Last-Modified/If-Modified-Since validation (no ETags,
// no Cache-Control negotiation — PCV predates them), single origin.
package httpproxy

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// Live-proxy observability: unlike the simulation caches, a deployed
// Handler updates the process-wide registry inline — every counter here
// sits next to an origin round trip or a mutex section, so one atomic
// add is noise. The per-instance Stats struct stays authoritative for
// the /stats endpoint; these mirror it for /debug/vars.
var (
	hpRequests    = obsv.C("httpproxy.requests")
	hpHits        = obsv.C("httpproxy.hits")
	hpMisses      = obsv.C("httpproxy.misses")
	hpValidations = obsv.C("httpproxy.validations")
	hpSyncValid   = obsv.C("httpproxy.validations.sync")
	hpStaleServes = obsv.C("httpproxy.stale_serves")
	hpEvictions   = obsv.C("httpproxy.evictions")
	hpErrors      = obsv.C("httpproxy.errors")
)

// Stats counts proxy activity; the fields mirror the simulation's
// cache.Stats so measured deployments can be compared with simulated ones.
type Stats struct {
	Requests        int
	Hits            int
	Bytes           int64
	ByteHits        int64
	FullFetches     int
	Validations     int
	SyncValidations int
	Evictions       int
	Errors          int
	// StaleServes counts responses served from an expired entry because
	// the origin could not be reached for revalidation (ServeStale on).
	StaleServes int
}

type entry struct {
	key          string
	body         []byte
	header       http.Header
	lastModified time.Time
	validatedAt  time.Time
}

// Proxy is a caching reverse proxy for one origin.
type Proxy struct {
	origin *url.URL
	client *http.Client

	// TTL is the freshness lifetime (the paper's default: 1 hour).
	TTL time.Duration
	// Capacity bounds cached body bytes; 0 means unbounded.
	Capacity int64
	// PCV enables piggybacked validation of expired entries on origin
	// contacts; disabled, stale entries validate synchronously on access.
	PCV bool
	// PiggybackLimit caps validations per origin contact.
	PiggybackLimit int
	// ServeStale serves an expired cached entry when revalidation fails
	// with a transport error, instead of failing the client with 502 —
	// the degraded mode a resilient deployment wants when its origin
	// flakes. The entry stays marked expired so a later contact
	// revalidates it.
	ServeStale bool
	// Now is the clock, overridable in tests.
	Now func() time.Time

	mu      sync.Mutex
	lru     *list.List
	items   map[string]*list.Element
	expired map[string]struct{}
	used    int64
	stats   Stats
}

// New returns a proxy for the origin base URL (scheme + host), with the
// paper's defaults: 1 h TTL, PCV on, piggyback batches of 10.
func New(origin string) (*Proxy, error) {
	u, err := url.Parse(origin)
	if err != nil {
		return nil, fmt.Errorf("httpproxy: bad origin %q: %w", origin, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("httpproxy: origin %q needs scheme and host", origin)
	}
	return &Proxy{
		origin:         u,
		client:         &http.Client{Timeout: 30 * time.Second},
		TTL:            time.Hour,
		PCV:            true,
		PiggybackLimit: 10,
		Now:            time.Now,
		lru:            list.New(),
		items:          make(map[string]*list.Element),
		expired:        make(map[string]struct{}),
	}, nil
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// SetTransport replaces the origin transport — the injection point for a
// faultnet RoundTripper in chaos tests and sweeps.
func (p *Proxy) SetTransport(rt http.RoundTripper) {
	p.client.Transport = rt
}

// SetTuning swaps the hot-reloadable knobs — TTL, capacity, PCV — under
// the cache lock, so a config reload lands atomically between requests.
// A capacity shrink takes effect on the next store/revalidation (the
// evict pass runs on writes, not here).
func (p *Proxy) SetTuning(ttl time.Duration, capacity int64, pcv bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.TTL = ttl
	p.Capacity = capacity
	p.PCV = pcv
}

// pcvEnabled reads the PCV switch under the lock; the field is hot-
// reloadable via SetTuning so unlocked reads would race.
func (p *Proxy) pcvEnabled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.PCV
}

// ServeHTTP implements http.Handler. Non-GET requests pass through
// uncached. Every request records a "httpproxy.request" trace span into
// the flight recorder, carrying the cache outcome (hit, miss,
// revalidated, stale, passthrough, error) and the cache key — the
// per-request causality the simulation's batched counters cannot give.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx, sp := obsv.StartTraceSpan(r.Context(), "httpproxy.request")
	status := "error"
	defer func() {
		sp.SetAttr("status", status)
		sp.End()
	}()
	if r.Method != http.MethodGet {
		sp.SetAttr("method", r.Method)
		p.passThrough(w, r)
		status = "passthrough"
		return
	}
	key := r.URL.Path
	if r.URL.RawQuery != "" {
		key += "?" + r.URL.RawQuery
	}
	sp.SetAttr("key", key)
	now := p.Now()

	p.mu.Lock()
	p.stats.Requests++
	hpRequests.Inc()
	el, cached := p.items[key]
	if cached {
		e := el.Value.(*entry)
		p.lru.MoveToFront(el)
		if now.Sub(e.validatedAt) < p.TTL {
			p.serveLocked(w, e)
			status = "hit"
			return // serveLocked unlocks
		}
		// Stale: synchronous If-Modified-Since revalidation.
		p.stats.Validations++
		p.stats.SyncValidations++
		p.mu.Unlock()
		status = p.revalidateAndServe(ctx, w, key, e, now)
		return
	}
	p.mu.Unlock()
	status = p.fetchAndServe(ctx, w, key, now)
}

// serveLocked writes a cached entry and releases the lock.
func (p *Proxy) serveLocked(w http.ResponseWriter, e *entry) {
	p.stats.Hits++
	hpHits.Inc()
	p.stats.Bytes += int64(len(e.body))
	p.stats.ByteHits += int64(len(e.body))
	body := e.body
	header := e.header.Clone()
	p.mu.Unlock()
	copyHeader(w.Header(), header)
	w.Header().Set("X-Cache", "HIT")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// fetchAndServe brings a missing resource in from the origin. It
// returns the outcome label for the request's trace span.
func (p *Proxy) fetchAndServe(ctx context.Context, w http.ResponseWriter, key string, now time.Time) string {
	resp, body, err := p.originGet(ctx, key, time.Time{}, now)
	if err != nil {
		p.countError()
		http.Error(w, "origin unreachable: "+err.Error(), http.StatusBadGateway)
		return "error"
	}
	if resp.StatusCode != http.StatusOK {
		// Non-200s pass through uncached.
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return "passthrough"
	}
	lm, _ := http.ParseTime(resp.Header.Get("Last-Modified"))
	e := &entry{
		key:          key,
		body:         body,
		header:       resp.Header.Clone(),
		lastModified: lm,
		validatedAt:  now,
	}
	p.mu.Lock()
	p.stats.FullFetches++
	hpMisses.Inc()
	p.stats.Bytes += int64(len(body))
	p.insertLocked(e)
	p.mu.Unlock()
	copyHeader(w.Header(), resp.Header)
	w.Header().Set("X-Cache", "MISS")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	return "miss"
}

// revalidateAndServe refreshes a stale entry via If-Modified-Since.
// When the origin is unreachable and ServeStale is set, the expired copy
// is served (marked X-Cache: STALE) rather than failing the client; the
// entry stays expired so a later origin contact revalidates it. It
// returns the outcome label for the request's trace span.
func (p *Proxy) revalidateAndServe(ctx context.Context, w http.ResponseWriter, key string, stale *entry, now time.Time) string {
	resp, body, err := p.originGet(ctx, key, stale.lastModified, now)
	if err != nil {
		p.countError()
		if p.ServeStale {
			p.mu.Lock()
			p.stats.StaleServes++
			hpStaleServes.Inc()
			p.stats.Bytes += int64(len(stale.body))
			p.stats.ByteHits += int64(len(stale.body))
			p.expired[key] = struct{}{}
			staleBody := stale.body
			header := stale.header.Clone()
			p.mu.Unlock()
			copyHeader(w.Header(), header)
			w.Header().Set("X-Cache", "STALE")
			w.WriteHeader(http.StatusOK)
			w.Write(staleBody)
			return "stale"
		}
		http.Error(w, "origin unreachable: "+err.Error(), http.StatusBadGateway)
		return "error"
	}
	p.mu.Lock()
	switch resp.StatusCode {
	case http.StatusNotModified:
		stale.validatedAt = now
		delete(p.expired, key)
		p.serveLocked(w, stale) // counts a hit; unlocks
		return "hit"
	case http.StatusOK:
		lm, _ := http.ParseTime(resp.Header.Get("Last-Modified"))
		p.used -= int64(len(stale.body))
		stale.body = body
		stale.header = resp.Header.Clone()
		stale.lastModified = lm
		stale.validatedAt = now
		p.used += int64(len(body))
		p.stats.FullFetches++
		p.stats.Bytes += int64(len(body))
		delete(p.expired, key)
		p.evictLocked()
		p.mu.Unlock()
		copyHeader(w.Header(), stale.header)
		w.Header().Set("X-Cache", "REVALIDATED")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return "revalidated"
	default:
		p.removeLocked(key)
		p.mu.Unlock()
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
		return "passthrough"
	}
}

// originGet performs one origin request (with IMS when since is non-zero)
// and, with PCV enabled, piggybacks validations for expired entries.
func (p *Proxy) originGet(ctx context.Context, key string, since time.Time, now time.Time) (*http.Response, []byte, error) {
	u := *p.origin
	u.Path, u.RawQuery = splitKey(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, nil, err
	}
	if !since.IsZero() {
		req.Header.Set("If-Modified-Since", since.UTC().Format(http.TimeFormat))
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if p.pcvEnabled() {
		p.piggyback(now)
	}
	return resp, body, nil
}

// piggyback validates up to PiggybackLimit expired entries while the
// origin connection is warm.
func (p *Proxy) piggyback(now time.Time) {
	p.mu.Lock()
	var keys []string
	for k := range p.expired {
		if len(keys) >= p.PiggybackLimit {
			break
		}
		keys = append(keys, k)
		delete(p.expired, k)
	}
	p.mu.Unlock()
	for _, k := range keys {
		p.mu.Lock()
		el, ok := p.items[k]
		if !ok {
			p.mu.Unlock()
			continue
		}
		e := el.Value.(*entry)
		since := e.lastModified
		p.stats.Validations++
		p.mu.Unlock()

		u := *p.origin
		u.Path, u.RawQuery = splitKey(k)
		req, err := http.NewRequest(http.MethodGet, u.String(), nil)
		if err != nil {
			continue
		}
		if !since.IsZero() {
			req.Header.Set("If-Modified-Since", since.UTC().Format(http.TimeFormat))
		}
		resp, err := p.client.Do(req)
		if err != nil {
			p.countError()
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		p.mu.Lock()
		if resp.StatusCode == http.StatusNotModified {
			e.validatedAt = now
		} else {
			// Out of date (or gone): drop so the next access refetches.
			p.removeLocked(k)
		}
		p.mu.Unlock()
	}
}

// Sweep marks entries whose TTL lapsed as candidates for piggybacked
// validation. Call it periodically (the simulation's Tick analogue); the
// example wires it to a time.Ticker.
func (p *Proxy) Sweep() {
	if !p.pcvEnabled() {
		return
	}
	now := p.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if now.Sub(e.validatedAt) >= p.TTL {
			p.expired[e.key] = struct{}{}
		}
	}
}

// passThrough forwards a non-GET request verbatim.
func (p *Proxy) passThrough(w http.ResponseWriter, r *http.Request) {
	u := *p.origin
	u.Path, u.RawQuery = r.URL.Path, r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		p.countError()
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// insertLocked adds a fresh entry and evicts to capacity.
func (p *Proxy) insertLocked(e *entry) {
	if el, dup := p.items[e.key]; dup {
		old := el.Value.(*entry)
		p.used -= int64(len(old.body))
		p.lru.Remove(el)
		delete(p.items, e.key)
		delete(p.expired, e.key)
	}
	el := p.lru.PushFront(e)
	p.items[e.key] = el
	p.used += int64(len(e.body))
	p.evictLocked()
}

func (p *Proxy) evictLocked() {
	if p.Capacity <= 0 {
		return
	}
	for p.used > p.Capacity {
		el := p.lru.Back()
		if el == nil {
			return
		}
		p.removeLocked(el.Value.(*entry).key)
		p.stats.Evictions++
		hpEvictions.Inc()
	}
}

func (p *Proxy) removeLocked(key string) {
	el, ok := p.items[key]
	if !ok {
		return
	}
	e := el.Value.(*entry)
	p.lru.Remove(el)
	delete(p.items, key)
	delete(p.expired, key)
	p.used -= int64(len(e.body))
}

func (p *Proxy) countError() {
	p.mu.Lock()
	p.stats.Errors++
	p.mu.Unlock()
	hpErrors.Inc()
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func splitKey(key string) (path, query string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '?' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
