package httpproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// origin is a test origin with controllable Last-Modified times and
// request counting.
type origin struct {
	mu       sync.Mutex
	modified map[string]time.Time
	body     map[string]string
	gets     atomic.Int64
	ims304   atomic.Int64
}

func newOrigin() *origin {
	return &origin{
		modified: map[string]time.Time{},
		body:     map[string]string{},
	}
}

func (o *origin) set(path, body string, mod time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.body[path] = body
	o.modified[path] = mod
}

func (o *origin) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o.gets.Add(1)
		o.mu.Lock()
		body, ok := o.body[r.URL.Path]
		mod := o.modified[r.URL.Path]
		o.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			t, err := http.ParseTime(ims)
			if err == nil && !mod.Truncate(time.Second).After(t) {
				o.ims304.Add(1)
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Last-Modified", mod.UTC().Format(http.TimeFormat))
		fmt.Fprint(w, body)
	})
}

// rig wires origin → proxy → test client with a fake clock.
type rig struct {
	origin *origin
	proxy  *Proxy
	srv    *httptest.Server
	now    time.Time
	mu     sync.Mutex
}

func newRig(t *testing.T) *rig {
	t.Helper()
	o := newOrigin()
	osrv := httptest.NewServer(o.handler())
	t.Cleanup(osrv.Close)
	p, err := New(osrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{origin: o, proxy: p, now: time.Date(1999, 12, 7, 0, 0, 0, 0, time.UTC)}
	p.Now = func() time.Time {
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.now
	}
	psrv := httptest.NewServer(p)
	t.Cleanup(psrv.Close)
	r.srv = psrv
	return r
}

func (r *rig) advance(d time.Duration) {
	r.mu.Lock()
	r.now = r.now.Add(d)
	r.mu.Unlock()
}

func (r *rig) get(t *testing.T, path string) (string, string) {
	t.Helper()
	resp, err := http.Get(r.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.Header.Get("X-Cache")
}

func TestMissThenHit(t *testing.T) {
	r := newRig(t)
	r.origin.set("/a", "hello", r.now.Add(-time.Hour))
	body, cache := r.get(t, "/a")
	if body != "hello" || cache != "MISS" {
		t.Fatalf("first = %q %q", body, cache)
	}
	body, cache = r.get(t, "/a")
	if body != "hello" || cache != "HIT" {
		t.Fatalf("second = %q %q", body, cache)
	}
	if got := r.origin.gets.Load(); got != 1 {
		t.Fatalf("origin GETs = %d, want 1", got)
	}
	st := r.proxy.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.FullFetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStaleRevalidation304(t *testing.T) {
	r := newRig(t)
	r.origin.set("/a", "v1", r.now.Add(-2*time.Hour))
	r.get(t, "/a")
	r.advance(2 * time.Hour) // past the 1h TTL; unchanged at origin
	body, _ := r.get(t, "/a")
	if body != "v1" {
		t.Fatalf("body = %q", body)
	}
	if r.origin.ims304.Load() != 1 {
		t.Fatalf("origin 304s = %d, want 1", r.origin.ims304.Load())
	}
	st := r.proxy.Stats()
	if st.Hits != 1 || st.SyncValidations != 1 || st.FullFetches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Revalidation restarts the TTL clock.
	body, cache := r.get(t, "/a")
	if body != "v1" || cache != "HIT" {
		t.Fatalf("post-revalidation = %q %q", body, cache)
	}
}

func TestStaleRevalidationModified(t *testing.T) {
	r := newRig(t)
	r.origin.set("/a", "v1", r.now.Add(-2*time.Hour))
	r.get(t, "/a")
	r.advance(2 * time.Hour)
	r.origin.set("/a", "v2", r.now) // changed at origin
	body, cache := r.get(t, "/a")
	if body != "v2" || cache != "REVALIDATED" {
		t.Fatalf("got %q %q", body, cache)
	}
	st := r.proxy.Stats()
	if st.FullFetches != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPCVPiggybackAvoidsSyncValidation(t *testing.T) {
	r := newRig(t)
	r.origin.set("/a", "aaa", r.now.Add(-3*time.Hour))
	r.origin.set("/b", "bbb", r.now.Add(-3*time.Hour))
	r.get(t, "/a")
	r.advance(90 * time.Minute) // /a stale now
	r.proxy.Sweep()             // queue /a for piggybacked validation
	r.get(t, "/b")              // miss → origin contact → piggyback /a
	body, cache := r.get(t, "/a")
	if body != "aaa" || cache != "HIT" {
		t.Fatalf("piggyback failed: %q %q", body, cache)
	}
	st := r.proxy.Stats()
	if st.SyncValidations != 0 {
		t.Fatalf("sync validations = %d, want 0 with PCV", st.SyncValidations)
	}
	if st.Validations != 1 {
		t.Fatalf("validations = %d, want 1 (piggybacked)", st.Validations)
	}
}

func TestLRUEviction(t *testing.T) {
	r := newRig(t)
	r.proxy.Capacity = 10 // bytes
	r.origin.set("/a", strings.Repeat("a", 6), r.now.Add(-time.Hour))
	r.origin.set("/b", strings.Repeat("b", 6), r.now.Add(-time.Hour))
	r.get(t, "/a")
	r.get(t, "/b") // 12 > 10 → evict /a
	if st := r.proxy.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	_, cache := r.get(t, "/a")
	if cache != "MISS" {
		t.Fatalf("evicted entry served from cache: %q", cache)
	}
}

func TestNonGETPassesThrough(t *testing.T) {
	r := newRig(t)
	r.origin.set("/a", "data", r.now)
	resp, err := http.Post(r.srv.URL+"/a", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r.proxy.Stats().Hits != 0 {
		t.Fatal("POST must not touch the cache")
	}
}

func TestNotFoundNotCached(t *testing.T) {
	r := newRig(t)
	if _, err := http.Get(r.srv.URL + "/missing"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(r.srv.URL + "/missing"); err != nil {
		t.Fatal(err)
	}
	if got := r.origin.gets.Load(); got != 2 {
		t.Fatalf("404s must not be cached: origin GETs = %d", got)
	}
}

func TestQueryStringsAreDistinctKeys(t *testing.T) {
	r := newRig(t)
	r.origin.set("/q", "base", r.now.Add(-time.Hour))
	b1, _ := r.get(t, "/q?x=1")
	b2, _ := r.get(t, "/q?x=2")
	if b1 != "base" || b2 != "base" {
		t.Fatalf("bodies = %q %q", b1, b2)
	}
	if got := r.origin.gets.Load(); got != 2 {
		t.Fatalf("distinct queries must fetch separately: GETs = %d", got)
	}
	r.get(t, "/q?x=1")
	if got := r.origin.gets.Load(); got != 2 {
		t.Fatalf("repeat query must hit: GETs = %d", got)
	}
}

func TestOriginDownReturns502(t *testing.T) {
	o := newOrigin()
	osrv := httptest.NewServer(o.handler())
	p, err := New(osrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	osrv.Close() // origin gone
	psrv := httptest.NewServer(p)
	defer psrv.Close()
	resp, err := http.Get(psrv.URL + "/a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	if p.Stats().Errors != 1 {
		t.Fatalf("errors = %d", p.Stats().Errors)
	}
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []string{"", "not a url at all%%%", "/relative/only", "host.without.scheme"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) should fail", bad)
		}
	}
	if _, err := New("http://origin.example:8080"); err != nil {
		t.Errorf("valid origin rejected: %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 8; i++ {
		r.origin.set(fmt.Sprintf("/p%d", i), strings.Repeat("x", 100+i), r.now.Add(-time.Hour))
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(r.srv.URL + fmt.Sprintf("/p%d", (w+i)%8))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	st := r.proxy.Stats()
	if st.Requests != 16*50 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Hits < st.Requests*9/10 {
		t.Fatalf("hits = %d of %d; hot set should mostly hit", st.Hits, st.Requests)
	}
}
