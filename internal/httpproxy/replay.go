package httpproxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"github.com/netaware/netcluster/internal/weblog"
)

// Trace replay: drive a server log's requests through a live Proxy against
// a synthetic origin that serves the log's resource table. This is the
// bridge between the trace-driven simulation (internal/websim) and the
// working proxy — the same trace must produce the same cache behaviour in
// both, which ReplayLog's tests assert.

// OriginFromLog builds an origin handler for a log's resources: bodies of
// the recorded sizes, Last-Modified driven by each resource's
// ChangePeriod against a virtual clock. now supplies seconds since the
// log's start.
func OriginFromLog(l *weblog.Log, now func() uint32) http.Handler {
	index := make(map[string]int32, len(l.Resources))
	for i := range l.Resources {
		index[l.Resources[i].Path] = int32(i)
	}
	epoch := l.Start
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := index[r.URL.Path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		res := l.Resources[id]
		t := now()
		lastMod := epoch.Add(time.Duration(res.LastModified(t)) * time.Second)
		if ims := r.Header.Get("If-Modified-Since"); ims != "" {
			if imsT, err := http.ParseTime(ims); err == nil && !lastMod.Truncate(time.Second).After(imsT) {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Last-Modified", lastMod.UTC().Format(http.TimeFormat))
		w.Header().Set("Content-Length", strconv.Itoa(int(res.Size)))
		w.WriteHeader(http.StatusOK)
		// Bodies are synthesized, not stored: repeat a filler byte.
		const chunk = 8192
		buf := make([]byte, chunk)
		for i := range buf {
			buf[i] = 'x'
		}
		remaining := int(res.Size)
		for remaining > 0 {
			n := remaining
			if n > chunk {
				n = chunk
			}
			if _, err := w.Write(buf[:n]); err != nil {
				return
			}
			remaining -= n
		}
	})
}

// ReplayOutcome reports a replay run.
type ReplayOutcome struct {
	Requests int
	Stats    Stats
	Elapsed  time.Duration
}

// ReplayLog replays up to maxRequests of l through a fresh Proxy with the
// given cache parameters, against an in-process origin. The proxy's clock
// is the trace's virtual time, so TTL expiry happens exactly as the
// simulation models it; Sweep runs once per virtual sweepEvery seconds.
func ReplayLog(l *weblog.Log, capacity int64, ttl time.Duration, pcv bool, maxRequests int) (ReplayOutcome, error) {
	var clockMu sync.Mutex
	var virtual uint32
	now := func() uint32 {
		clockMu.Lock()
		defer clockMu.Unlock()
		return virtual
	}

	origin := httptest.NewServer(OriginFromLog(l, now))
	defer origin.Close()
	proxy, err := New(origin.URL)
	if err != nil {
		return ReplayOutcome{}, err
	}
	proxy.Capacity = capacity
	proxy.TTL = ttl
	proxy.PCV = pcv
	epoch := l.Start
	proxy.Now = func() time.Time {
		return epoch.Add(time.Duration(now()) * time.Second)
	}

	n := len(l.Requests)
	if maxRequests > 0 && maxRequests < n {
		n = maxRequests
	}
	start := time.Now()
	const sweepEvery = 60 // virtual seconds between expiry sweeps
	lastSweep := uint32(0)
	for i := 0; i < n; i++ {
		req := &l.Requests[i]
		clockMu.Lock()
		virtual = req.Time
		clockMu.Unlock()
		if req.Time-lastSweep >= sweepEvery {
			proxy.Sweep()
			lastSweep = req.Time
		}
		path := l.Resources[req.URL].Path
		hr, err := http.NewRequest(http.MethodGet, path, nil)
		if err != nil {
			return ReplayOutcome{}, fmt.Errorf("httpproxy: replay request %d: %w", i, err)
		}
		rec := httptest.NewRecorder()
		proxy.ServeHTTP(rec, hr)
		if rec.Code != http.StatusOK {
			return ReplayOutcome{}, fmt.Errorf("httpproxy: replay request %d: status %d", i, rec.Code)
		}
	}
	return ReplayOutcome{Requests: n, Stats: proxy.Stats(), Elapsed: time.Since(start)}, nil
}
