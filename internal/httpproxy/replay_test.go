package httpproxy

import (
	"math"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/cluster"
	"github.com/netaware/netcluster/internal/inet"
	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/weblog"
	"github.com/netaware/netcluster/internal/websim"
)

func replayLog(t *testing.T) *weblog.Log {
	t.Helper()
	cfg := inet.DefaultConfig()
	cfg.NumASes = 120
	cfg.NumTierOne = 6
	world, err := inet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := weblog.Nagano(0.002)
	l, err := weblog.Generate(world, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestReplaySmoke(t *testing.T) {
	l := replayLog(t)
	out, err := ReplayLog(l, 0, time.Hour, true, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Requests != 2000 {
		t.Fatalf("requests = %d", out.Requests)
	}
	if out.Stats.Hits == 0 || out.Stats.FullFetches == 0 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	if out.Stats.Errors != 0 {
		t.Fatalf("replay errors: %+v", out.Stats)
	}
}

// TestReplayMatchesSimulation is the cross-validation: the live HTTP proxy
// and the trace-driven simulator must agree on the same trace. Both run a
// single shared proxy (the simulator is given a constant-cluster assigner)
// with unbounded capacity, 1 h TTL and PCV.
func TestReplayMatchesSimulation(t *testing.T) {
	l := replayLog(t)
	const maxReq = 4000
	sub := &weblog.Log{
		Name:      l.Name,
		Start:     l.Start,
		Duration:  l.Duration,
		Requests:  l.Requests[:maxReq],
		Resources: l.Resources,
		Agents:    l.Agents,
	}

	// Simulation: everything in one cluster → one simulated proxy.
	one := cluster.Func{Label: "all", Fn: func(netutil.Addr) (netutil.Prefix, bool) {
		return netutil.MustParsePrefix("0.0.0.0/1"), true
	}}
	res := cluster.ClusterLog(sub, one)
	simCfg := websim.Config{TTL: 3600, PCV: true, MinURLAccesses: 0}
	sim := websim.Simulate(res, simCfg)

	// Live replay of the same requests.
	live, err := ReplayLog(sub, 0, time.Hour, true, maxReq)
	if err != nil {
		t.Fatal(err)
	}
	liveHit := float64(live.Stats.Hits) / float64(live.Stats.Requests)
	liveByteHit := float64(live.Stats.ByteHits) / float64(live.Stats.Bytes)

	if math.Abs(liveHit-sim.HitRatio) > 0.03 {
		t.Errorf("hit ratio: live %.4f vs simulated %.4f", liveHit, sim.HitRatio)
	}
	if math.Abs(liveByteHit-sim.ByteHitRatio) > 0.03 {
		t.Errorf("byte hit ratio: live %.4f vs simulated %.4f", liveByteHit, sim.ByteHitRatio)
	}
	// Full fetches (bodies moved from origin) also track, though less
	// tightly: the two implementations deliberately differ in piggyback
	// discovery cadence (the simulator probes the LRU tail on every
	// request; the live proxy sweeps the whole cache every virtual
	// minute), so the live proxy validates — and drops modified entries —
	// slightly more eagerly.
	var simFetches int
	for _, p := range sim.Proxies {
		simFetches += p.Stats.FullFetches
	}
	diff := math.Abs(float64(live.Stats.FullFetches-simFetches)) / float64(simFetches)
	if diff > 0.12 {
		t.Errorf("full fetches: live %d vs simulated %d (%.1f%% apart)",
			live.Stats.FullFetches, simFetches, diff*100)
	}
}

func TestReplayEvictionUnderPressure(t *testing.T) {
	l := replayLog(t)
	out, err := ReplayLog(l, 256<<10, time.Hour, true, 2000) // 256 KB cache
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Evictions == 0 {
		t.Fatal("a 256 KB cache must evict on this trace")
	}
	unbounded, err := ReplayLog(l, 0, time.Hour, true, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Hits >= unbounded.Stats.Hits {
		t.Errorf("tiny cache (%d hits) should trail unbounded (%d hits)",
			out.Stats.Hits, unbounded.Stats.Hits)
	}
}
