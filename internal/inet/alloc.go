package inet

import (
	"fmt"
	"math/rand"

	"github.com/netaware/netcluster/internal/netutil"
)

// allocator is a buddy allocator over the unicast IPv4 space. The registry
// hands out non-overlapping blocks by splitting free blocks in half until
// the requested prefix length is reached — the same mechanism CIDR
// delegation uses, which guarantees that allocations never overlap and that
// sibling blocks really are adjacent (important for the route-aggregation
// pass in bgpsim to be realistic).
type allocator struct {
	free map[int][]netutil.Prefix // free blocks by prefix length
}

// newAllocator seeds the pool with the classic unicast /8s (1–223),
// excluding 0/8, 10/8 (private), and 127/8 (loopback), shuffled so that
// consecutive allocations land in unrelated parts of the space.
func newAllocator(rng *rand.Rand) *allocator {
	a := &allocator{free: make(map[int][]netutil.Prefix)}
	var roots []netutil.Prefix
	for first := 1; first <= 223; first++ {
		if first == 10 || first == 127 {
			continue
		}
		roots = append(roots, netutil.PrefixFrom(netutil.AddrFrom4(byte(first), 0, 0, 0), 8))
	}
	rng.Shuffle(len(roots), func(i, j int) { roots[i], roots[j] = roots[j], roots[i] })
	a.free[8] = roots
	return a
}

// alloc returns a free block of exactly the requested length, splitting
// larger blocks as needed. It fails only when the pool is exhausted at
// every length ≤ bits.
func (a *allocator) alloc(bits int) (netutil.Prefix, error) {
	if bits < 8 || bits > 30 {
		return netutil.Prefix{}, fmt.Errorf("inet: allocation length /%d out of supported range", bits)
	}
	// Find the longest available length ≤ bits (closest fit first).
	src := -1
	for l := bits; l >= 8; l-- {
		if len(a.free[l]) > 0 {
			src = l
			break
		}
	}
	if src == -1 {
		return netutil.Prefix{}, fmt.Errorf("inet: address space exhausted for /%d", bits)
	}
	blk := a.free[src][len(a.free[src])-1]
	a.free[src] = a.free[src][:len(a.free[src])-1]
	for blk.Bits() < bits {
		lo, hi := blk.Halves()
		a.free[hi.Bits()] = append(a.free[hi.Bits()], hi)
		blk = lo
	}
	return blk, nil
}
