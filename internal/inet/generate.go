package inet

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// Config controls world generation. The defaults produce an Internet of
// roughly the scale the paper's logs imply: tens of thousands of
// administratively distinct networks so that a Nagano-sized client
// population (~60 K clients) lands in ~10 K clusters.
type Config struct {
	Seed    int64
	NumASes int
	Regions int // backbone regions (ring topology)

	// NumTierOne is how many ASes are tier-1 providers: candidates for
	// routing-table vantage points and traceroute origins.
	NumTierOne int

	// DNSRegisteredProb is the probability that a network publishes
	// reverse DNS for its hosts; the complement models the paper's ~50%
	// nslookup failures.
	DNSRegisteredProb float64

	// FirewalledProb is the probability that a (non-national-gateway)
	// network's hosts ignore UDP probes, hiding them from traceroute's
	// direct Max_ttl probe.
	FirewalledProb float64

	// Countries overrides the default country mix when non-nil.
	Countries []*Country
}

// DefaultConfig returns the scale used by the headline experiments.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		NumASes:           1800,
		Regions:           12,
		NumTierOne:        24,
		DNSRegisteredProb: 0.55,
		FirewalledProb:    0.45,
	}
}

// Generate builds a deterministic synthetic Internet from cfg. The same
// Config always yields byte-identical worlds, which keeps every experiment
// reproducible.
func Generate(cfg Config) (*Internet, error) {
	if cfg.NumASes <= 0 {
		return nil, fmt.Errorf("inet: NumASes must be positive, got %d", cfg.NumASes)
	}
	if cfg.Regions <= 0 {
		return nil, fmt.Errorf("inet: Regions must be positive, got %d", cfg.Regions)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	countries := cfg.Countries
	if countries == nil {
		countries = defaultCountries()
	}
	totalWeight := 0
	for _, c := range countries {
		totalWeight += c.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("inet: country weights sum to %d", totalWeight)
	}
	pickCountry := func() *Country {
		r := rng.Intn(totalWeight)
		for _, c := range countries {
			if r < c.Weight {
				return c
			}
			r -= c.Weight
		}
		return countries[len(countries)-1]
	}

	in := &Internet{
		Countries: countries,
		Regions:   cfg.Regions,
		truth:     radix.New[*Network](),
	}
	alloc := newAllocator(rng)
	g := &generator{cfg: cfg, rng: rng, in: in, alloc: alloc}

	for i := 0; i < cfg.NumASes; i++ {
		kind := asKind(rng)
		display, label := orgName(rng, kind)
		country := pickCountry()
		as := &AS{
			Number:   uint32(64 + i), // low AS numbers, 1999-style
			Name:     display,
			DNSLabel: label + strconv.Itoa(i), // guarantee label uniqueness
			Country:  country,
			Region:   rng.Intn(cfg.Regions),
			NumPops:  1 + rng.Intn(4),
		}
		if i < cfg.NumTierOne {
			as.Tier = 1
			// Tier-1s skew American and sit in distinct regions.
			as.Region = i % cfg.Regions
		} else {
			as.Tier = 2
		}
		if err := g.populateAS(as, kind); err != nil {
			return nil, err
		}
		in.ASes = append(in.ASes, as)
	}
	sortNetworks(in.Networks)
	for id, n := range in.Networks {
		n.ID = id
		in.truth.Insert(n.Prefix, n)
	}
	// Canonical per-AS order too, so a serialized-and-reloaded world is
	// byte-identical in iteration order to the generated one (bgpsim's
	// per-network visibility draws depend on it).
	for _, as := range in.ASes {
		sortNetworks(as.Networks)
	}
	return in, nil
}

type generator struct {
	cfg   Config
	rng   *rand.Rand
	in    *Internet
	alloc *allocator
}

// asKind picks the organization kind of an AS owner. ISPs dominate AS
// counts; universities and companies run their own ASes less often.
func asKind(rng *rand.Rand) OrgKind {
	r := rng.Float64()
	switch {
	case r < 0.45:
		return OrgISP
	case r < 0.75:
		return OrgCompany
	case r < 0.92:
		return OrgUniversity
	default:
		return OrgGovernment
	}
}

// allocationBits draws a registry allocation size. The mix is tuned so the
// resulting network prefix-length histogram peaks at /24 with a long tail
// of shorter prefixes, matching Figure 1 of the paper.
func (g *generator) allocationBits(tier int) int {
	r := g.rng.Float64()
	if tier == 1 {
		// Providers hold the big blocks, including the rare legacy /8.
		switch {
		case r < 0.04:
			return 8
		case r < 0.14:
			return 14
		case r < 0.45:
			return 16
		case r < 0.75:
			return 17
		default:
			return 18
		}
	}
	switch {
	case r < 0.004:
		return 8
	case r < 0.012:
		return 14
	case r < 0.05:
		return 16
	case r < 0.10:
		return 17
	case r < 0.18:
		return 18
	case r < 0.30:
		return 19
	case r < 0.50:
		return 20
	case r < 0.70:
		return 21
	default:
		return 22
	}
}

func (g *generator) populateAS(as *AS, ownerKind OrgKind) error {
	nAllocs := 1
	if g.rng.Float64() < 0.35 {
		nAllocs = 2
	}
	if as.Tier == 1 {
		nAllocs = 2 + g.rng.Intn(2)
	}
	for a := 0; a < nAllocs; a++ {
		bits := g.allocationBits(as.Tier)
		blk, err := g.alloc.alloc(bits)
		if err != nil {
			return err
		}
		as.Allocations = append(as.Allocations, blk)
		g.carve(as, ownerKind, blk)
	}
	return nil
}

// carve recursively subdivides an allocation into administratively uniform
// networks, leaving some sub-blocks unused (registries allocate more than
// ASes actually route — the gap is what makes network dumps a coarse,
// secondary source).
func (g *generator) carve(as *AS, ownerKind OrgKind, blk netutil.Prefix) {
	l := blk.Bits()
	r := g.rng.Float64()
	switch {
	case l >= 28:
		g.makeNetwork(as, ownerKind, blk)
		return
	case l >= 24:
		if r < 0.985 {
			g.makeNetwork(as, ownerKind, blk)
			return
		}
		// else rare subnetting below /24 (the paper's /28 Bell Atlantic
		// example); Figure 1 shows only ~0.1% of prefixes longer than /24
	case l >= 17:
		if r < 0.30 {
			g.makeNetwork(as, ownerKind, blk)
			return
		}
		if r < 0.35 {
			return // unused block
		}
	default: // l < 17: big legacy blocks are mostly air
		if r < 0.02 {
			g.makeNetwork(as, ownerKind, blk)
			return
		}
		if r < 0.42 {
			return
		}
	}
	lo, hi := blk.Halves()
	g.carve(as, ownerKind, lo)
	g.carve(as, ownerKind, hi)
}

func (g *generator) makeNetwork(as *AS, ownerKind OrgKind, blk netutil.Prefix) {
	// Inside an ISP's allocation, most networks belong to customers with
	// their own kinds and domains; pools keep the ISP's own domain.
	kind := ownerKind
	var base string
	if ownerKind == OrgISP && g.rng.Float64() < 0.55 {
		kind = customerKind(g.rng)
		_, label := orgName(g.rng, kind)
		base = baseDomain(g.rng, kind, label+strconv.Itoa(len(as.Networks)), as.Country)
	} else {
		base = baseDomain(g.rng, ownerKind, as.DNSLabel, as.Country)
	}
	n := &Network{
		Prefix:         blk,
		AS:             as,
		Kind:           kind,
		Country:        as.Country,
		Pop:            g.rng.Intn(as.NumPops),
		Domain:         networkDomain(g.rng, kind, base, len(as.Networks)),
		DNSRegistered:  g.rng.Float64() < g.cfg.DNSRegisteredProb,
		PerClientNames: kind == OrgISP,
	}
	if as.Country.NationalGateway {
		// Interiors behind national gateways are invisible to probes
		// regardless of local policy.
		n.Firewalled = true
	} else {
		n.Firewalled = g.rng.Float64() < g.cfg.FirewalledProb
	}
	as.Networks = append(as.Networks, n)
	g.in.Networks = append(g.in.Networks, n)
}

func customerKind(rng *rand.Rand) OrgKind {
	r := rng.Float64()
	switch {
	case r < 0.55:
		return OrgCompany
	case r < 0.80:
		return OrgUniversity
	case r < 0.92:
		return OrgISP
	default:
		return OrgGovernment
	}
}

// RandomHost draws a uniformly random usable host address inside n.
func (n *Network) RandomHost(rng *rand.Rand) netutil.Addr {
	return n.HostAddr(rng.Intn(n.HostCapacity()))
}
