// Package inet synthesizes a ground-truth Internet for the clustering
// experiments: registries allocate address blocks to autonomous systems,
// ASes subdivide their blocks into administratively distinct networks, each
// network carries a DNS domain, a gateway router and a position in a router
// topology.
//
// The paper works against the real 1999 Internet, observed through BGP
// dumps, nslookup and traceroute. Those observations cannot be re-collected,
// so this package builds the closest synthetic equivalent: a world in which
// "the true administrative cluster of every client" is known exactly. The
// BGP views (internal/bgpsim), the DNS resolver (internal/dnssim) and the
// traceroute simulator (internal/tracesim) are all deterministic functions
// of this ground truth, which lets every validation experiment report both
// the paper's sampled estimate and the exact accuracy.
package inet

import (
	"fmt"
	"sort"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// OrgKind is the flavour of administrative entity behind a network. It
// drives naming (universities get ac/edu suffixes, ISPs get per-client
// reverse names) and behavioural flags (ISP pools tend to be DHCP with no
// reverse DNS).
type OrgKind int

const (
	OrgUniversity OrgKind = iota
	OrgCompany
	OrgISP
	OrgGovernment
	orgKindCount
)

// String names the organization kind for reports.
func (k OrgKind) String() string {
	switch k {
	case OrgUniversity:
		return "university"
	case OrgCompany:
		return "company"
	case OrgISP:
		return "isp"
	case OrgGovernment:
		return "government"
	default:
		return fmt.Sprintf("OrgKind(%d)", int(k))
	}
}

// Country is a coarse geographic/administrative region. Countries flagged
// NationalGateway funnel all traffic through a single border router and
// hide the interior from traceroute — the paper singles these out (Croatia,
// France, Japan in its sample) as a systematic source of cluster
// mis-identification.
type Country struct {
	Code            string // "us", "jp", ...
	TLD             string // top-level domain suffix, e.g. "jp"
	AcademicSuffix  string // e.g. "ac.jp"; empty means "edu"-style under TLD
	NationalGateway bool
	Weight          int // relative share of ASes assigned to this country
}

// Network is one administratively uniform subnet: the ground-truth unit the
// paper's clusters approximate. All hosts inside share the Domain suffix
// and the last hops of their route.
type Network struct {
	ID      int
	Prefix  netutil.Prefix
	AS      *AS
	Kind    OrgKind
	Domain  string // DNS suffix shared by all hosts, e.g. "cs.wits.ac.za"
	Country *Country
	Pop     int // index of the AS point-of-presence this network hangs off

	// DNSRegistered: reverse DNS exists for hosts. The paper finds ~50% of
	// client addresses unresolvable (firewalls, DHCP pools without records,
	// ISPs that never register customer names).
	DNSRegistered bool
	// Firewalled: the destination host does not answer UDP probes, so
	// traceroute never sees an ICMP PORT_UNREACHABLE from it.
	Firewalled bool
	// PerClientNames: reverse names embed the address (ISP dial-up pools:
	// client-151-198-194-17.bellatlantic.net) rather than a host name.
	PerClientNames bool
}

// HostCapacity returns how many host addresses the network can hold
// (excluding the network and broadcast addresses for prefixes shorter
// than /31).
func (n *Network) HostCapacity() int {
	total := n.Prefix.NumAddrs()
	if total > 2 {
		total -= 2
	}
	const cap31 = 1 << 30
	if total > cap31 {
		return cap31
	}
	return int(total)
}

// HostAddr returns the i-th usable host address in the network,
// i in [0, HostCapacity()).
func (n *Network) HostAddr(i int) netutil.Addr {
	base := n.Prefix.Addr()
	if n.Prefix.NumAddrs() > 2 {
		return base + netutil.Addr(i) + 1 // skip the network address
	}
	return base + netutil.Addr(i)
}

// AS is an autonomous system: the unit that receives registry allocations,
// runs points of presence, and originates BGP routes for its networks.
type AS struct {
	Number      uint32
	Name        string // e.g. "Ficus Networks"
	DNSLabel    string // e.g. "ficus"
	Country     *Country
	Region      int // backbone region the AS attaches to
	Tier        int // 1 = backbone/provider (candidate vantage point), 2 = edge
	NumPops     int
	Allocations []netutil.Prefix // registry-assigned blocks
	Networks    []*Network
}

// Internet is the generated world plus its lookup indexes.
type Internet struct {
	Countries []*Country
	ASes      []*AS
	Networks  []*Network // all networks, id-indexed
	Regions   int        // number of backbone regions

	truth *radix.Tree[*Network] // exact network containing each address
}

// NetworkOf returns the ground-truth network containing addr, if any. This
// is the oracle the paper does not have: the actual administrative entity
// of the client.
func (in *Internet) NetworkOf(addr netutil.Addr) (*Network, bool) {
	_, n, ok := in.truth.Lookup(addr)
	return n, ok
}

// NetworkByID returns the network with the given id.
func (in *Internet) NetworkByID(id int) (*Network, bool) {
	if id < 0 || id >= len(in.Networks) {
		return nil, false
	}
	return in.Networks[id], true
}

// VantageASes returns the tier-1 ASes, the candidates for hosting routing
// table vantage points and for traceroute/probe origins.
func (in *Internet) VantageASes() []*AS {
	var out []*AS
	for _, as := range in.ASes {
		if as.Tier == 1 {
			out = append(out, as)
		}
	}
	return out
}

// Stats summarizes the generated world for reports and sanity tests.
type Stats struct {
	ASes            int
	Networks        int
	PrefixLengths   [33]int
	HostsCapacity   uint64
	DNSRegistered   int // networks with reverse DNS
	Firewalled      int
	NationalGateway int // networks behind a national gateway
}

// Stats computes summary statistics.
func (in *Internet) Stats() Stats {
	st := Stats{ASes: len(in.ASes), Networks: len(in.Networks)}
	for _, n := range in.Networks {
		st.PrefixLengths[n.Prefix.Bits()]++
		st.HostsCapacity += uint64(n.HostCapacity())
		if n.DNSRegistered {
			st.DNSRegistered++
		}
		if n.Firewalled {
			st.Firewalled++
		}
		if n.Country.NationalGateway {
			st.NationalGateway++
		}
	}
	return st
}

// sortNetworks orders networks by prefix for deterministic iteration.
func sortNetworks(ns []*Network) {
	sort.Slice(ns, func(i, j int) bool {
		return netutil.ComparePrefix(ns[i].Prefix, ns[j].Prefix) < 0
	})
}
