package inet

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/netaware/netcluster/internal/netutil"
)

// smallConfig keeps unit tests fast while exercising every code path.
func smallConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.NumASes = 120
	cfg.NumTierOne = 8
	return cfg
}

func generate(t *testing.T, cfg Config) *Internet {
	t.Helper()
	in, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return in
}

func TestGenerateDeterministic(t *testing.T) {
	a := generate(t, smallConfig(7))
	b := generate(t, smallConfig(7))
	if len(a.Networks) != len(b.Networks) || len(a.ASes) != len(b.ASes) {
		t.Fatalf("same seed, different worlds: %d/%d vs %d/%d networks/ASes",
			len(a.Networks), len(a.ASes), len(b.Networks), len(b.ASes))
	}
	for i := range a.Networks {
		na, nb := a.Networks[i], b.Networks[i]
		if na.Prefix != nb.Prefix || na.Domain != nb.Domain || na.Firewalled != nb.Firewalled {
			t.Fatalf("network %d differs: %+v vs %+v", i, na, nb)
		}
	}
	c := generate(t, smallConfig(8))
	if len(c.Networks) == len(a.Networks) && c.Networks[0].Domain == a.Networks[0].Domain {
		t.Error("different seeds produced an identical-looking world")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumASes: 0, Regions: 4}); err == nil {
		t.Error("NumASes=0 must fail")
	}
	if _, err := Generate(Config{NumASes: 5, Regions: 0}); err == nil {
		t.Error("Regions=0 must fail")
	}
	bad := smallConfig(1)
	bad.Countries = []*Country{{Code: "xx", Weight: 0}}
	if _, err := Generate(bad); err == nil {
		t.Error("zero total country weight must fail")
	}
}

func TestNetworksDoNotOverlap(t *testing.T) {
	in := generate(t, smallConfig(3))
	if len(in.Networks) < 100 {
		t.Fatalf("world too small: %d networks", len(in.Networks))
	}
	// Networks are sorted by (addr, bits); any overlap would appear between
	// a network and some network before it whose range extends past it.
	var maxEnd uint64
	first := true
	for _, n := range in.Networks {
		start, end := uint64(n.Prefix.First()), uint64(n.Prefix.Last())
		if !first && start <= maxEnd && start >= uint64(0) {
			// start within a previously seen range → overlap, unless the
			// previous range ended before start.
			if start <= maxEnd {
				t.Fatalf("network %v overlaps an earlier network (maxEnd=%d)", n.Prefix, maxEnd)
			}
		}
		if end > maxEnd {
			maxEnd = end
		}
		first = false
	}
}

func TestTruthLookup(t *testing.T) {
	in := generate(t, smallConfig(4))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		n := in.Networks[rng.Intn(len(in.Networks))]
		h := n.RandomHost(rng)
		got, ok := in.NetworkOf(h)
		if !ok || got != n {
			t.Fatalf("NetworkOf(%v) = %v, want network %v", h, got, n.Prefix)
		}
	}
	// An address in never-allocated space must not resolve.
	if _, ok := in.NetworkOf(netutil.MustParseAddr("10.1.2.3")); ok {
		t.Error("10/8 is excluded from allocation and must have no network")
	}
	if _, ok := in.NetworkOf(netutil.MustParseAddr("127.0.0.1")); ok {
		t.Error("loopback must have no network")
	}
}

func TestNetworkByID(t *testing.T) {
	in := generate(t, smallConfig(4))
	for i, n := range in.Networks {
		if n.ID != i {
			t.Fatalf("network %d has ID %d", i, n.ID)
		}
	}
	if n, ok := in.NetworkByID(0); !ok || n != in.Networks[0] {
		t.Error("NetworkByID(0) failed")
	}
	if _, ok := in.NetworkByID(-1); ok {
		t.Error("negative id must fail")
	}
	if _, ok := in.NetworkByID(len(in.Networks)); ok {
		t.Error("out-of-range id must fail")
	}
}

func TestPrefixLengthDistributionShape(t *testing.T) {
	in := generate(t, Config{
		Seed: 5, NumASes: 600, Regions: 12, NumTierOne: 12,
		DNSRegisteredProb: 0.55, FirewalledProb: 0.45,
	})
	st := in.Stats()
	total := 0
	for _, c := range st.PrefixLengths {
		total += c
	}
	if total != st.Networks {
		t.Fatalf("histogram total %d != networks %d", total, st.Networks)
	}
	// Figure 1 shape: /24 is the mode with roughly half the mass, and
	// shorter prefixes outnumber longer ones among the rest.
	frac24 := float64(st.PrefixLengths[24]) / float64(total)
	if frac24 < 0.30 || frac24 > 0.70 {
		t.Errorf("/24 fraction = %.2f, want roughly half", frac24)
	}
	shorter, longer := 0, 0
	for l := 0; l < 24; l++ {
		shorter += st.PrefixLengths[l]
	}
	for l := 25; l <= 32; l++ {
		longer += st.PrefixLengths[l]
	}
	if shorter <= longer {
		t.Errorf("shorter (%d) must outnumber longer (%d) non-/24 prefixes", shorter, longer)
	}
}

func TestResolvabilityFractions(t *testing.T) {
	in := generate(t, Config{
		Seed: 6, NumASes: 600, Regions: 12, NumTierOne: 12,
		DNSRegisteredProb: 0.55, FirewalledProb: 0.45,
	})
	st := in.Stats()
	dns := float64(st.DNSRegistered) / float64(st.Networks)
	if dns < 0.45 || dns > 0.65 {
		t.Errorf("DNS-registered fraction = %.2f, want ~0.55", dns)
	}
	fw := float64(st.Firewalled) / float64(st.Networks)
	if fw < 0.35 || fw > 0.65 {
		t.Errorf("firewalled fraction = %.2f, want ~0.5 incl. national gateways", fw)
	}
	if st.NationalGateway == 0 {
		t.Error("expected some networks behind national gateways")
	}
}

func TestHostAddrAndCapacity(t *testing.T) {
	n := &Network{Prefix: netutil.MustParsePrefix("192.168.1.0/24")}
	if n.HostCapacity() != 254 {
		t.Fatalf("HostCapacity = %d", n.HostCapacity())
	}
	if n.HostAddr(0) != netutil.MustParseAddr("192.168.1.1") {
		t.Fatalf("HostAddr(0) = %v", n.HostAddr(0))
	}
	if n.HostAddr(253) != netutil.MustParseAddr("192.168.1.254") {
		t.Fatalf("HostAddr(253) = %v", n.HostAddr(253))
	}
	tiny := &Network{Prefix: netutil.MustParsePrefix("192.168.1.4/31")}
	if tiny.HostCapacity() != 2 {
		t.Fatalf("/31 capacity = %d", tiny.HostCapacity())
	}
	if tiny.HostAddr(0) != netutil.MustParseAddr("192.168.1.4") {
		t.Fatalf("/31 HostAddr(0) = %v", tiny.HostAddr(0))
	}
}

func TestRandomHostStaysInNetwork(t *testing.T) {
	in := generate(t, smallConfig(9))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := in.Networks[rng.Intn(len(in.Networks))]
		h := n.RandomHost(rng)
		if !n.Prefix.Contains(h) {
			t.Fatalf("RandomHost %v outside %v", h, n.Prefix)
		}
	}
}

func TestHostNames(t *testing.T) {
	isp := &Network{
		Prefix: netutil.MustParsePrefix("151.198.194.0/24"),
		Domain: "pool0.bellatlantic.net", PerClientNames: true,
	}
	got := isp.HostName(netutil.MustParseAddr("151.198.194.17"))
	if got != "client-151-198-194-17.pool0.bellatlantic.net" {
		t.Errorf("ISP HostName = %q", got)
	}
	uni := &Network{Prefix: netutil.MustParsePrefix("10.1.2.0/24"), Domain: "cs.wits.ac.za"}
	a := uni.HostName(netutil.MustParseAddr("10.1.2.17"))
	b := uni.HostName(netutil.MustParseAddr("10.1.2.18"))
	if !strings.HasSuffix(a, ".cs.wits.ac.za") || !strings.HasSuffix(b, ".cs.wits.ac.za") {
		t.Errorf("university names lack domain suffix: %q %q", a, b)
	}
	if a == b {
		t.Error("distinct hosts must have distinct names")
	}
	if uni.HostName(netutil.MustParseAddr("10.1.2.17")) != a {
		t.Error("HostName must be deterministic")
	}
}

func TestNameSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"macbeth.cs.wits.ac.za", "wits.ac.za"},
		{"foo.dummy.com", "dummy.com"},
		{"a.b", "a.b"},
		{"host", "host"},
		{"w.x.y.z", "x.y.z"},
	}
	for _, c := range cases {
		if got := NameSuffix(c.in); got != c.want {
			t.Errorf("NameSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// The paper's own example: two cs.wits.ac.za hosts share a suffix.
	if NameSuffix("macbeth.cs.wits.ac.za") != NameSuffix("macabre.cs.wits.ac.za") {
		t.Error("hosts in one department must share the non-trivial suffix")
	}
}

func TestVantageASes(t *testing.T) {
	in := generate(t, smallConfig(11))
	vs := in.VantageASes()
	if len(vs) != 8 {
		t.Fatalf("VantageASes = %d, want 8", len(vs))
	}
	for _, as := range vs {
		if as.Tier != 1 {
			t.Fatalf("vantage AS %s has tier %d", as.Name, as.Tier)
		}
	}
}

func TestOrgKindString(t *testing.T) {
	for k, want := range map[OrgKind]string{
		OrgUniversity: "university", OrgCompany: "company",
		OrgISP: "isp", OrgGovernment: "government",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if !strings.Contains(OrgKind(42).String(), "42") {
		t.Error("unknown kind string should include the value")
	}
}
