package inet

import (
	"math/rand"
	"strconv"
	"strings"

	"github.com/netaware/netcluster/internal/netutil"
)

// Name material. Organization names are assembled from neutral word lists
// so that generated domains look plausible (macbeth.cs.wits.ac.za style)
// without colliding with real operators.

var orgWords = []string{
	"acorn", "alder", "aspen", "basalt", "beacon", "birch", "bluff", "briar",
	"canyon", "cedar", "cinder", "cobalt", "cypress", "delta", "ember",
	"fern", "ficus", "flint", "gale", "garnet", "glade", "granite", "grove",
	"harbor", "hazel", "heron", "hollow", "ibis", "juniper", "kestrel",
	"larch", "lotus", "magnet", "maple", "marsh", "mesa", "mica", "moraine",
	"nimbus", "oriole", "osprey", "pine", "quartz", "quill", "raven",
	"ridge", "rowan", "sable", "sequoia", "shale", "sparrow", "spruce",
	"summit", "tamarind", "thistle", "tundra", "vale", "walnut", "willow",
	"wren", "yarrow", "zephyr",
}

var orgSuffixes = map[OrgKind][]string{
	OrgUniversity: {"university", "institute", "college", "polytechnic"},
	OrgCompany:    {"systems", "industries", "labs", "corp", "holdings", "works", "logic", "dynamics"},
	OrgISP:        {"net", "online", "link", "connect", "telecom", "wave"},
	OrgGovernment: {"agency", "bureau", "ministry", "authority"},
}

var departmentLabels = []string{
	"cs", "math", "physics", "ee", "bio", "chem", "law", "med", "arts",
	"eng", "geo", "econ", "stat", "astro", "ling", "hist",
}

var hostWords = []string{
	"macbeth", "hamlet", "ophelia", "prospero", "ariel", "puck", "oberon",
	"titania", "lear", "cordelia", "duncan", "banquo", "portia", "brutus",
	"cassius", "viola", "orsino", "miranda", "iago", "emilia", "falstaff",
	"hermia", "lysander", "demetrius", "helena", "feste", "malvolio",
}

// defaultCountries is a 1999-flavoured mix: the US dominates web clients,
// a long tail of other countries follows, and a few countries route all
// traffic through national gateways (the paper names Croatia, France and
// Japan as examples it encountered).
func defaultCountries() []*Country {
	return []*Country{
		{Code: "us", TLD: "", AcademicSuffix: "edu", Weight: 50},
		{Code: "ca", TLD: "ca", AcademicSuffix: "ca", Weight: 5},
		{Code: "uk", TLD: "uk", AcademicSuffix: "ac.uk", Weight: 5},
		{Code: "de", TLD: "de", AcademicSuffix: "de", Weight: 4},
		{Code: "jp", TLD: "jp", AcademicSuffix: "ac.jp", NationalGateway: true, Weight: 5},
		{Code: "fr", TLD: "fr", AcademicSuffix: "fr", NationalGateway: true, Weight: 4},
		{Code: "au", TLD: "au", AcademicSuffix: "edu.au", Weight: 3},
		{Code: "br", TLD: "br", AcademicSuffix: "br", Weight: 3},
		{Code: "kr", TLD: "kr", AcademicSuffix: "ac.kr", Weight: 2},
		{Code: "za", TLD: "za", AcademicSuffix: "ac.za", Weight: 2},
		{Code: "hr", TLD: "hr", AcademicSuffix: "hr", NationalGateway: true, Weight: 1},
		{Code: "nl", TLD: "nl", AcademicSuffix: "nl", Weight: 2},
		{Code: "se", TLD: "se", AcademicSuffix: "se", Weight: 2},
		{Code: "it", TLD: "it", AcademicSuffix: "it", Weight: 2},
		{Code: "mx", TLD: "mx", AcademicSuffix: "edu.mx", Weight: 2},
		{Code: "ar", TLD: "ar", AcademicSuffix: "edu.ar", Weight: 1},
		{Code: "cl", TLD: "cl", AcademicSuffix: "cl", Weight: 1},
		{Code: "sg", TLD: "sg", AcademicSuffix: "edu.sg", Weight: 1},
	}
}

// orgName invents an organization name and its base DNS label.
func orgName(rng *rand.Rand, kind OrgKind) (display, label string) {
	w := orgWords[rng.Intn(len(orgWords))]
	suffix := orgSuffixes[kind][rng.Intn(len(orgSuffixes[kind]))]
	display = strings.Title(w) + " " + strings.Title(suffix)
	label = w
	if rng.Intn(3) == 0 {
		// Two-word label for variety: "ficusnet", "cedarlabs".
		label = w + suffix
		if len(label) > 14 {
			label = label[:14]
		}
	}
	return display, label
}

// baseDomain builds the registrable domain for an organization in a
// country: "ficus.com" (US company), "wits.ac.za" (ZA university), etc.
func baseDomain(rng *rand.Rand, kind OrgKind, label string, c *Country) string {
	switch kind {
	case OrgUniversity:
		if c.AcademicSuffix != "" {
			return label + "." + c.AcademicSuffix
		}
		return label + ".edu"
	case OrgGovernment:
		if c.Code == "us" {
			return label + ".gov"
		}
		return label + ".gov." + c.TLD
	case OrgISP:
		if c.TLD == "" {
			return label + ".net"
		}
		return label + ".net." + c.TLD
	default: // company
		if c.TLD == "" {
			return label + ".com"
		}
		if rng.Intn(2) == 0 {
			return label + ".co." + c.TLD
		}
		return label + "." + c.TLD
	}
}

// networkDomain derives the per-network domain under an organization's
// base domain. Universities put departments in front (cs.wits.ac.za);
// companies and agencies mostly use the base domain directly, sometimes a
// site label; ISP pools use regional pool labels.
func networkDomain(rng *rand.Rand, kind OrgKind, base string, idx int) string {
	switch kind {
	case OrgUniversity:
		dept := departmentLabels[(idx+rng.Intn(len(departmentLabels)))%len(departmentLabels)]
		return dept + "." + base
	case OrgISP:
		return "pool" + strconv.Itoa(idx) + "." + base
	default:
		if idx == 0 || rng.Intn(3) != 0 {
			return base
		}
		return "site" + strconv.Itoa(idx) + "." + base
	}
}

// HostName returns the fully-qualified reverse-DNS name a registered
// network publishes for addr. ISP-style networks embed the address
// (client-12-65-147-94.pool0.ficus.net); everything else gets a themed host
// label with a numeric disambiguator.
func (n *Network) HostName(addr netutil.Addr) string {
	if n.PerClientNames {
		o := addr.Octets()
		return "client-" + strconv.Itoa(int(o[0])) + "-" + strconv.Itoa(int(o[1])) + "-" +
			strconv.Itoa(int(o[2])) + "-" + strconv.Itoa(int(o[3])) + "." + n.Domain
	}
	// Deterministic per-address label, unique within the network because the
	// numeric suffix is the host offset.
	off := uint32(addr) - uint32(n.Prefix.Addr())
	word := hostWords[int(off)%len(hostWords)]
	return word + strconv.FormatUint(uint64(off), 10) + "." + n.Domain
}

// NameSuffix implements the paper's "non-trivial suffix" (footnote 7): the
// last 3 components when the name has ≥ 4 components, else the last 2.
func NameSuffix(fqdn string) string {
	parts := strings.Split(fqdn, ".")
	n := 2
	if len(parts) >= 4 {
		n = 3
	}
	if len(parts) <= n {
		return fqdn
	}
	return strings.Join(parts[len(parts)-n:], ".")
}
