package inet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/netaware/netcluster/internal/netutil"
	"github.com/netaware/netcluster/internal/radix"
)

// World serialization: a versioned, line-oriented, tab-separated format so
// that loggen, bgpgen and experiment runs in separate processes can share
// one exact ground truth instead of relying on identical generation flags.
// The format is complete — a read-back world is behaviourally identical
// (same networks, names, flags, topology, and therefore the same DNS,
// traceroute, and BGP-view derivations).

const worldMagic = "netcluster-world v1"

// WriteWorld serializes the world.
func WriteWorld(w io.Writer, in *Internet) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, worldMagic)
	fmt.Fprintf(bw, "regions\t%d\n", in.Regions)

	countryIdx := make(map[*Country]int, len(in.Countries))
	fmt.Fprintf(bw, "countries\t%d\n", len(in.Countries))
	for i, c := range in.Countries {
		countryIdx[c] = i
		natgw := 0
		if c.NationalGateway {
			natgw = 1
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%d\t%d\n", c.Code, c.TLD, c.AcademicSuffix, natgw, c.Weight)
	}

	asIdx := make(map[*AS]int, len(in.ASes))
	fmt.Fprintf(bw, "ases\t%d\n", len(in.ASes))
	for i, as := range in.ASes {
		asIdx[as] = i
		allocs := make([]string, len(as.Allocations))
		for j, a := range as.Allocations {
			allocs[j] = a.String()
		}
		fmt.Fprintf(bw, "%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			as.Number, as.Name, as.DNSLabel, countryIdx[as.Country],
			as.Region, as.Tier, as.NumPops, strings.Join(allocs, ","))
	}

	fmt.Fprintf(bw, "networks\t%d\n", len(in.Networks))
	for _, n := range in.Networks {
		flags := 0
		if n.DNSRegistered {
			flags |= 1
		}
		if n.Firewalled {
			flags |= 2
		}
		if n.PerClientNames {
			flags |= 4
		}
		fmt.Fprintf(bw, "%s\t%d\t%d\t%s\t%d\t%d\n",
			n.Prefix, asIdx[n.AS], int(n.Kind), n.Domain, n.Pop, flags)
	}
	return bw.Flush()
}

// worldReader tracks position for error messages.
type worldReader struct {
	sc   *bufio.Scanner
	line int
}

func (r *worldReader) next() (string, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r\n")
		if line != "" {
			return line, nil
		}
	}
	if err := r.sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

func (r *worldReader) errf(format string, args ...interface{}) error {
	return fmt.Errorf("inet: world line %d: %s", r.line, fmt.Sprintf(format, args...))
}

// section reads a "name\tcount" header line.
func (r *worldReader) section(name string) (int, error) {
	line, err := r.next()
	if err != nil {
		return 0, err
	}
	fields := strings.Split(line, "\t")
	if len(fields) != 2 || fields[0] != name {
		return 0, r.errf("expected %q header, got %q", name, line)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, r.errf("bad %s count %q", name, fields[1])
	}
	return n, nil
}

// ReadWorld deserializes a world written by WriteWorld, rebuilding every
// index and back-pointer.
func ReadWorld(rd io.Reader) (*Internet, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	r := &worldReader{sc: sc}

	magic, err := r.next()
	if err != nil {
		return nil, fmt.Errorf("inet: reading world: %w", err)
	}
	if magic != worldMagic {
		return nil, fmt.Errorf("inet: not a world file (header %q)", magic)
	}
	in := &Internet{truth: radix.New[*Network]()}

	if in.Regions, err = r.section("regions"); err != nil {
		return nil, err
	}
	if in.Regions <= 0 {
		return nil, r.errf("regions must be positive")
	}

	nCountries, err := r.section("countries")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nCountries; i++ {
		line, err := r.next()
		if err != nil {
			return nil, err
		}
		f := strings.Split(line, "\t")
		if len(f) != 5 {
			return nil, r.errf("country needs 5 fields, got %d", len(f))
		}
		natgw, err1 := strconv.Atoi(f[3])
		weight, err2 := strconv.Atoi(f[4])
		if err1 != nil || err2 != nil {
			return nil, r.errf("bad country numbers")
		}
		in.Countries = append(in.Countries, &Country{
			Code: f[0], TLD: f[1], AcademicSuffix: f[2],
			NationalGateway: natgw == 1, Weight: weight,
		})
	}

	nASes, err := r.section("ases")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nASes; i++ {
		line, err := r.next()
		if err != nil {
			return nil, err
		}
		f := strings.Split(line, "\t")
		if len(f) != 8 {
			return nil, r.errf("AS needs 8 fields, got %d", len(f))
		}
		num, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return nil, r.errf("bad AS number %q", f[0])
		}
		cIdx, err := strconv.Atoi(f[3])
		if err != nil || cIdx < 0 || cIdx >= len(in.Countries) {
			return nil, r.errf("bad country index %q", f[3])
		}
		region, err1 := strconv.Atoi(f[4])
		tier, err2 := strconv.Atoi(f[5])
		pops, err3 := strconv.Atoi(f[6])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, r.errf("bad AS numbers")
		}
		as := &AS{
			Number: uint32(num), Name: f[1], DNSLabel: f[2],
			Country: in.Countries[cIdx], Region: region, Tier: tier, NumPops: pops,
		}
		if f[7] != "" {
			for _, s := range strings.Split(f[7], ",") {
				p, err := netutil.ParsePrefix(s)
				if err != nil {
					return nil, r.errf("bad allocation %q: %v", s, err)
				}
				as.Allocations = append(as.Allocations, p)
			}
		}
		in.ASes = append(in.ASes, as)
	}

	nNetworks, err := r.section("networks")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nNetworks; i++ {
		line, err := r.next()
		if err != nil {
			return nil, err
		}
		f := strings.Split(line, "\t")
		if len(f) != 6 {
			return nil, r.errf("network needs 6 fields, got %d", len(f))
		}
		prefix, err := netutil.ParsePrefix(f[0])
		if err != nil {
			return nil, r.errf("bad prefix %q: %v", f[0], err)
		}
		asIdx, err := strconv.Atoi(f[1])
		if err != nil || asIdx < 0 || asIdx >= len(in.ASes) {
			return nil, r.errf("bad AS index %q", f[1])
		}
		kind, err1 := strconv.Atoi(f[2])
		pop, err2 := strconv.Atoi(f[4])
		flags, err3 := strconv.Atoi(f[5])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, r.errf("bad network numbers")
		}
		if kind < 0 || OrgKind(kind) >= orgKindCount {
			return nil, r.errf("bad org kind %d", kind)
		}
		as := in.ASes[asIdx]
		n := &Network{
			Prefix: prefix, AS: as, Kind: OrgKind(kind), Domain: f[3],
			Country: as.Country, Pop: pop,
			DNSRegistered:  flags&1 != 0,
			Firewalled:     flags&2 != 0,
			PerClientNames: flags&4 != 0,
		}
		as.Networks = append(as.Networks, n)
		in.Networks = append(in.Networks, n)
	}
	sortNetworks(in.Networks)
	for id, n := range in.Networks {
		n.ID = id
		in.truth.Insert(n.Prefix, n)
	}
	return in, nil
}
