package inet

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWorldRoundTrip(t *testing.T) {
	orig := generate(t, smallConfig(31))
	var buf bytes.Buffer
	if err := WriteWorld(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Regions != orig.Regions {
		t.Fatalf("regions %d vs %d", got.Regions, orig.Regions)
	}
	if len(got.Countries) != len(orig.Countries) || len(got.ASes) != len(orig.ASes) ||
		len(got.Networks) != len(orig.Networks) {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			len(got.Countries), len(got.ASes), len(got.Networks),
			len(orig.Countries), len(orig.ASes), len(orig.Networks))
	}
	for i := range orig.Countries {
		a, b := orig.Countries[i], got.Countries[i]
		if *a != *b {
			t.Fatalf("country %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range orig.ASes {
		a, b := orig.ASes[i], got.ASes[i]
		if a.Number != b.Number || a.Name != b.Name || a.DNSLabel != b.DNSLabel ||
			a.Region != b.Region || a.Tier != b.Tier || a.NumPops != b.NumPops ||
			a.Country.Code != b.Country.Code {
			t.Fatalf("AS %d differs: %+v vs %+v", i, a, b)
		}
		if len(a.Allocations) != len(b.Allocations) {
			t.Fatalf("AS %d allocations differ", i)
		}
		for j := range a.Allocations {
			if a.Allocations[j] != b.Allocations[j] {
				t.Fatalf("AS %d allocation %d differs", i, j)
			}
		}
		if len(a.Networks) != len(b.Networks) {
			t.Fatalf("AS %d network count differs: %d vs %d", i, len(a.Networks), len(b.Networks))
		}
	}
	for i := range orig.Networks {
		a, b := orig.Networks[i], got.Networks[i]
		if a.Prefix != b.Prefix || a.Domain != b.Domain || a.Kind != b.Kind ||
			a.Pop != b.Pop || a.DNSRegistered != b.DNSRegistered ||
			a.Firewalled != b.Firewalled || a.PerClientNames != b.PerClientNames ||
			a.ID != b.ID || a.AS.Number != b.AS.Number || a.Country.Code != b.Country.Code {
			t.Fatalf("network %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestWorldRoundTripBehaviour(t *testing.T) {
	// Derived behaviour must be identical: truth lookups, host names, and
	// forwarding paths.
	orig := generate(t, smallConfig(32))
	var buf bytes.Buffer
	if err := WriteWorld(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	vOrig := orig.VantageASes()[0]
	vGot := got.VantageASes()[0]
	for i := 0; i < 300; i++ {
		n := orig.Networks[rng.Intn(len(orig.Networks))]
		h := n.RandomHost(rand.New(rand.NewSource(int64(i))))
		no, okO := orig.NetworkOf(h)
		ng, okG := got.NetworkOf(h)
		if okO != okG || no.ID != ng.ID {
			t.Fatalf("truth lookup differs for %v", h)
		}
		if no.HostName(h) != ng.HostName(h) {
			t.Fatalf("host name differs for %v", h)
		}
		ro := orig.PathTo(vOrig, no)
		rg := got.PathTo(vGot, ng)
		if len(ro.Hops) != len(rg.Hops) || ro.DstResponds != rg.DstResponds {
			t.Fatalf("paths differ for %v", h)
		}
		for j := range ro.Hops {
			if ro.Hops[j] != rg.Hops[j] {
				t.Fatalf("hop %d differs for %v: %+v vs %+v", j, h, ro.Hops[j], rg.Hops[j])
			}
		}
	}
}

func TestReadWorldErrors(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		WriteWorld(&buf, generate(t, smallConfig(33)))
		return buf.String()
	}()
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad magic", "some other file\n"},
		{"missing sections", worldMagic + "\n"},
		{"bad region count", worldMagic + "\nregions\tx\n"},
		{"truncated", valid[:len(valid)/2]},
		{"wrong section", worldMagic + "\nregions\t4\nbananas\t2\n"},
	}
	for _, c := range cases {
		if _, err := ReadWorld(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTripPreservesASNetworkOrder(t *testing.T) {
	// bgpsim's per-network visibility draws iterate as.Networks; the
	// serialized order must match the generated order exactly so that a
	// reloaded world produces identical BGP views.
	orig := generate(t, smallConfig(34))
	var buf bytes.Buffer
	if err := WriteWorld(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWorld(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.ASes {
		a, b := orig.ASes[i], got.ASes[i]
		for j := range a.Networks {
			if a.Networks[j].Prefix != b.Networks[j].Prefix {
				t.Fatalf("AS %d network order differs at %d", i, j)
			}
		}
	}
}
