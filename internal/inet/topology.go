package inet

import (
	"strconv"

	"github.com/netaware/netcluster/internal/netutil"
)

// Hop is one router on a forwarding path. Responds reports whether the
// router answers ICMP TIME_EXCEEDED when a probe expires at it; routers
// behind a national gateway stay silent, which is how the gateway hides a
// country's interior from traceroute.
type Hop struct {
	Name     string
	Responds bool
}

// Route is the forwarding path from a vantage AS to a destination host,
// plus whether the destination itself answers the final UDP probe with
// ICMP PORT_UNREACHABLE (it does not when its network is firewalled or sits
// behind a national gateway).
type Route struct {
	Hops        []Hop
	DstResponds bool
	Network     *Network
}

// coreName names the backbone router of a region.
func coreName(region int) string {
	return "core" + strconv.Itoa(region) + ".backbone.net"
}

func (as *AS) borderName() string {
	return "border." + as.DNSLabel + ".net"
}

func (as *AS) popName(pop int) string {
	return "pop" + strconv.Itoa(pop) + "." + as.DNSLabel + ".net"
}

func (n *Network) gatewayName() string {
	// The network id disambiguates gateways of organizations that reuse
	// one domain across several subnets (gw3.ficus.com, gw7.ficus.com) —
	// real router names are per-device, and path-suffix matching depends
	// on the last hop identifying the network, not the organization.
	return "gw" + strconv.Itoa(n.ID) + "." + n.Domain
}

// GatewayName exposes the network's last-hop router name; two clients share
// it exactly when they share a network, which is what path-suffix
// validation keys on.
func (n *Network) GatewayName() string { return n.gatewayName() }

// regionPath returns the backbone regions crossed from a to b along the
// shorter arc of the region ring, inclusive of both endpoints.
func regionPath(a, b, regions int) []int {
	if a == b {
		return []int{a}
	}
	cw := (b - a + regions) % regions  // clockwise distance
	ccw := (a - b + regions) % regions // counter-clockwise distance
	step := 1
	if ccw < cw {
		step = regions - 1 // step -1 mod regions
	}
	path := []int{a}
	for r := a; r != b; {
		r = (r + step) % regions
		path = append(path, r)
	}
	return path
}

// PathTo computes the forwarding path from vantage AS `from` to dst. The
// boolean is false when dst lies outside every generated network (such
// addresses exist: registries allocate more than ASes route).
//
// The path shape is: origin border router → backbone cores along the
// region ring → (national gateway, if the destination country has one) →
// destination AS border → destination point-of-presence → network gateway.
// Hops after a national gateway never respond to probes.
func (in *Internet) PathTo(from *AS, dst *Network) Route {
	var hops []Hop
	visible := true
	add := func(name string) {
		hops = append(hops, Hop{Name: name, Responds: visible})
	}
	add(from.borderName())
	for _, r := range regionPath(from.Region, dst.AS.Region, in.Regions) {
		add(coreName(r))
	}
	if dst.Country.NationalGateway {
		add("natgw." + dst.Country.Code + ".net")
		visible = false
	}
	add(dst.AS.borderName())
	add(dst.AS.popName(dst.Pop))
	add(dst.gatewayName())
	return Route{
		Hops:        hops,
		DstResponds: visible && !dst.Firewalled,
		Network:     dst,
	}
}

// PathToAddr resolves dst's ground-truth network and computes the path to
// it. The boolean is false when dst lies outside every generated network
// (registries allocate more than ASes route, so such addresses exist).
func (in *Internet) PathToAddr(from *AS, dst netutil.Addr) (Route, bool) {
	n, ok := in.NetworkOf(dst)
	if !ok {
		return Route{}, false
	}
	return in.PathTo(from, n), true
}
