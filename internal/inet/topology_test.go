package inet

import (
	"math/rand"
	"testing"
)

func TestRegionPath(t *testing.T) {
	cases := []struct {
		a, b, regions int
		want          []int
	}{
		{0, 0, 8, []int{0}},
		{0, 1, 8, []int{0, 1}},
		{0, 3, 8, []int{0, 1, 2, 3}},
		{0, 7, 8, []int{0, 7}},       // shorter arc goes backwards
		{6, 1, 8, []int{6, 7, 0, 1}}, // wraps around
		{0, 4, 8, []int{0, 1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := regionPath(c.a, c.b, c.regions)
		if len(got) != len(c.want) {
			t.Errorf("regionPath(%d,%d,%d) = %v, want %v", c.a, c.b, c.regions, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("regionPath(%d,%d,%d) = %v, want %v", c.a, c.b, c.regions, got, c.want)
				break
			}
		}
	}
}

func TestRegionPathAlwaysConnects(t *testing.T) {
	for regions := 1; regions <= 16; regions++ {
		for a := 0; a < regions; a++ {
			for b := 0; b < regions; b++ {
				p := regionPath(a, b, regions)
				if p[0] != a || p[len(p)-1] != b {
					t.Fatalf("regionPath(%d,%d,%d) endpoints wrong: %v", a, b, regions, p)
				}
				if len(p) > regions/2+2 {
					t.Fatalf("regionPath(%d,%d,%d) not the short arc: %v", a, b, regions, p)
				}
			}
		}
	}
}

func TestPathProperties(t *testing.T) {
	in := generate(t, smallConfig(21))
	vantage := in.VantageASes()[0]
	rng := rand.New(rand.NewSource(3))

	for i := 0; i < 200; i++ {
		n := in.Networks[rng.Intn(len(in.Networks))]
		route := in.PathTo(vantage, n)
		if len(route.Hops) < 4 {
			t.Fatalf("path to %v too short: %v", n.Prefix, route.Hops)
		}
		last := route.Hops[len(route.Hops)-1]
		if last.Name != n.GatewayName() {
			t.Fatalf("last hop %q, want gateway %q", last.Name, n.GatewayName())
		}
		if n.Country.NationalGateway {
			if route.DstResponds {
				t.Fatalf("host behind national gateway must not respond")
			}
			if last.Responds {
				t.Fatalf("gateway-interior hop must be silent")
			}
		} else if n.Firewalled && route.DstResponds {
			t.Fatalf("firewalled host must not respond")
		} else if !n.Firewalled && !route.DstResponds {
			t.Fatalf("open host must respond")
		}
	}
}

func TestSameNetworkSharesPathSuffix(t *testing.T) {
	in := generate(t, smallConfig(22))
	vantage := in.VantageASes()[1]
	rng := rand.New(rand.NewSource(4))

	for i := 0; i < 100; i++ {
		n := in.Networks[rng.Intn(len(in.Networks))]
		r1, ok1 := in.PathToAddr(vantage, n.HostAddr(0))
		r2, ok2 := in.PathToAddr(vantage, n.HostAddr(n.HostCapacity()-1))
		if !ok1 || !ok2 {
			t.Fatalf("hosts of %v must route", n.Prefix)
		}
		s1 := r1.Hops[len(r1.Hops)-2:]
		s2 := r2.Hops[len(r2.Hops)-2:]
		if s1[0].Name != s2[0].Name || s1[1].Name != s2[1].Name {
			t.Fatalf("same-network hosts have different path suffixes: %v vs %v", s1, s2)
		}
	}
}

func TestDifferentNetworksDifferInGateway(t *testing.T) {
	in := generate(t, smallConfig(23))
	vantage := in.VantageASes()[0]
	seen := map[string]*Network{}
	for _, n := range in.Networks[:200] {
		r := in.PathTo(vantage, n)
		gw := r.Hops[len(r.Hops)-1].Name
		if prev, dup := seen[gw]; dup && prev.Domain != n.Domain {
			t.Fatalf("networks %v and %v with different domains share gateway %q", prev.Prefix, n.Prefix, gw)
		}
		seen[gw] = n
	}
}

func TestPathToAddrUnrouted(t *testing.T) {
	in := generate(t, smallConfig(24))
	vantage := in.VantageASes()[0]
	if _, ok := in.PathToAddr(vantage, 0x7F000001); ok { // 127.0.0.1
		t.Error("loopback must be unrouted")
	}
}
