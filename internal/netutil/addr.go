// Package netutil provides compact IPv4 address and prefix primitives used
// throughout the clustering library.
//
// The paper's clustering pipeline operates exclusively on IPv4 addresses
// (1999-era web server logs and BGP tables contain no IPv6), so the package
// represents an address as a bare uint32 in host byte order. This keeps
// longest-prefix-match keys, map keys, and sort comparisons allocation-free
// and branch-cheap, which matters when clustering logs with tens of millions
// of requests.
package netutil

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored as a big-endian ("network order read into a
// register") 32-bit integer: 12.34.56.78 becomes 0x0C22384E. The zero value
// is 0.0.0.0, which server logs use as a placeholder source address (BOOTP
// convention) and which the clustering pipeline deliberately skips.
type Addr uint32

// Octets returns the four dotted-quad octets of a, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// String renders a in dotted-quad form.
func (a Addr) String() string {
	var b [15]byte
	return string(a.Append(b[:0]))
}

// Append appends the dotted-quad form of a to b and returns the extended
// slice, for zero-allocation serialization on hot paths (CLF writing).
func (a Addr) Append(b []byte) []byte {
	o := a.Octets()
	for i, oct := range o {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(oct), 10)
	}
	return b
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == 0 }

// Class returns the classful-addressing class of a ('A' through 'E'), as
// used by the classful baseline clusterer and by the abbreviated snapshot
// format (x1.x2.x3.0 with an implied classful mask).
func (a Addr) Class() byte {
	switch {
	case a>>31 == 0:
		return 'A'
	case a>>30 == 0b10:
		return 'B'
	case a>>29 == 0b110:
		return 'C'
	case a>>28 == 0b1110:
		return 'D'
	default:
		return 'E'
	}
}

// ClassfulPrefixLen returns the implied prefix length of a's address class:
// 8 for Class A, 16 for B, 24 for C. For Class D/E addresses, which carry no
// classful network length, it returns 32 so that the caller treats the
// address as a host route rather than silently aggregating it.
func (a Addr) ClassfulPrefixLen() int {
	switch a.Class() {
	case 'A':
		return 8
	case 'B':
		return 16
	case 'C':
		return 24
	default:
		return 32
	}
}

// AddrFrom4 assembles an Addr from four octets, most significant first.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address. It rejects empty components,
// values above 255, leading-plus/minus signs, and anything but exactly four
// dot-separated decimal components. Leading zeros are accepted (server logs
// in the wild contain them) and interpreted as decimal.
func ParseAddr(s string) (Addr, error) {
	var v uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netutil: invalid IPv4 address %q: expected 4 components", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" || len(part) > 3 {
			return 0, fmt.Errorf("netutil: invalid IPv4 address %q: bad component", s)
		}
		var oct uint32
		for _, ch := range []byte(part) {
			if ch < '0' || ch > '9' {
				return 0, fmt.Errorf("netutil: invalid IPv4 address %q: non-digit %q", s, ch)
			}
			oct = oct*10 + uint32(ch-'0')
		}
		if oct > 255 {
			return 0, fmt.Errorf("netutil: invalid IPv4 address %q: component %s out of range", s, part)
		}
		v = v<<8 | oct
	}
	return Addr(v), nil
}

// ParseAddrBytes is ParseAddr over a byte slice without allocating,
// reporting ok instead of a descriptive error. It accepts and rejects
// exactly the same inputs as ParseAddr — the CLF fast path depends on the
// two parsers agreeing, so any relaxation here must be mirrored there.
func ParseAddrBytes(s []byte) (Addr, bool) {
	var v uint32
	i := 0
	for c := 0; c < 4; c++ {
		if c > 0 {
			if i >= len(s) || s[i] != '.' {
				return 0, false
			}
			i++
		}
		start := i
		var oct uint32
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			oct = oct*10 + uint32(s[i]-'0')
			i++
		}
		if i == start || i-start > 3 || oct > 255 {
			return 0, false
		}
		v = v<<8 | oct
	}
	if i != len(s) {
		return 0, false
	}
	return Addr(v), true
}

// MustParseAddr is ParseAddr for trusted constants; it panics on error.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}
