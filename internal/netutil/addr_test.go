package netutil

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xFFFFFFFF, true},
		{"12.34.56.78", AddrFrom4(12, 34, 56, 78), true},
		{"151.198.194.17", AddrFrom4(151, 198, 194, 17), true},
		{"01.02.03.04", AddrFrom4(1, 2, 3, 4), true}, // leading zeros tolerated
		{"", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.1.1.1", 0, false},
		{"1.2.3.999", 0, false},
		{"1.2.3.-4", 0, false},
		{"1.2.3.x", 0, false},
		{"1..3.4", 0, false},
		{"1.2.3.4 ", 0, false},
		{"1.2.3.1234", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOctets(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	if o := a.Octets(); o != [4]byte{10, 20, 30, 40} {
		t.Fatalf("Octets = %v", o)
	}
}

func TestAddrClass(t *testing.T) {
	cases := []struct {
		addr  string
		class byte
		plen  int
	}{
		{"9.1.2.3", 'A', 8},
		{"127.255.255.255", 'A', 8},
		{"128.0.0.1", 'B', 16},
		{"151.198.194.17", 'B', 16},
		{"191.255.0.1", 'B', 16},
		{"192.0.0.1", 'C', 24},
		{"203.4.5.6", 'C', 24},
		{"223.255.255.255", 'C', 24},
		{"224.0.0.1", 'D', 32},
		{"239.9.9.9", 'D', 32},
		{"240.0.0.1", 'E', 32},
		{"255.255.255.255", 'E', 32},
	}
	for _, c := range cases {
		a := MustParseAddr(c.addr)
		if got := a.Class(); got != c.class {
			t.Errorf("%s Class = %c, want %c", c.addr, got, c.class)
		}
		if got := a.ClassfulPrefixLen(); got != c.plen {
			t.Errorf("%s ClassfulPrefixLen = %d, want %d", c.addr, got, c.plen)
		}
	}
}

func TestIsUnspecified(t *testing.T) {
	if !MustParseAddr("0.0.0.0").IsUnspecified() {
		t.Error("0.0.0.0 should be unspecified")
	}
	if MustParseAddr("0.0.0.1").IsUnspecified() {
		t.Error("0.0.0.1 should not be unspecified")
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddr did not panic on invalid input")
		}
	}()
	MustParseAddr("not an address")
}
