package netutil

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 network prefix: a base address plus a mask length in
// [0, 32]. The base address is always stored canonically, i.e. with all host
// bits cleared, so Prefix values are directly comparable and usable as map
// keys — two routing-table entries describe the same network exactly when
// their Prefix values are equal.
type Prefix struct {
	addr Addr
	bits int8
}

// PrefixFrom returns the canonical prefix covering addr with the given mask
// length. Host bits in addr are cleared. It panics if bits is outside
// [0, 32]; use ParsePrefix for untrusted input.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic(fmt.Sprintf("netutil: prefix length %d out of range", bits))
	}
	return Prefix{addr: addr & Addr(MaskOf(bits)), bits: int8(bits)}
}

// Addr returns the canonical (host-bits-zero) base address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns p's mask length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&Addr(MaskOf(int(p.bits))) == p.addr
}

// Overlaps reports whether p and q share any address, which for prefixes
// means one contains the other's base address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// ContainsPrefix reports whether q is a (non-strict) sub-prefix of p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return p.bits <= q.bits && p.Contains(q.addr)
}

// First returns the lowest address in p (its base address).
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in p.
func (p Prefix) Last() Addr { return p.addr | Addr(^MaskOf(int(p.bits))) }

// NumAddrs returns the number of addresses covered by p.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// String renders p in CIDR "a.b.c.d/len" notation, the library's canonical
// textual prefix format.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// MarshalText renders p in CIDR notation, so Prefix values survive JSON
// (both as struct fields and as map keys) and other text codecs. Without
// it the unexported fields would marshal as an empty object.
func (p Prefix) MarshalText() ([]byte, error) {
	return []byte(p.String()), nil
}

// UnmarshalText parses CIDR notation, the inverse of MarshalText.
func (p *Prefix) UnmarshalText(text []byte) error {
	q, err := ParsePrefix(string(text))
	if err != nil {
		return err
	}
	*p = q
	return nil
}

// StringNetmask renders p in the dotted prefix/netmask notation that several
// 1999-era routing-table dumps use ("12.65.128.0/255.255.224.0").
func (p Prefix) StringNetmask() string {
	return p.addr.String() + "/" + Addr(MaskOf(int(p.bits))).String()
}

// IsZero reports whether p is the zero Prefix (0.0.0.0/0). The default route
// does appear in real BGP tables; the clustering pipeline treats a match
// against it as "not clusterable" because a cluster spanning the whole
// Internet carries no topological information.
func (p Prefix) IsZero() bool { return p == Prefix{} }

// MaskOf returns the 32-bit netmask with the top bits leading ones,
// e.g. MaskOf(19) == 0xFFFFE000. MaskOf(0) is 0.
func MaskOf(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return ^uint32(0)
	}
	return ^uint32(0) << (32 - uint(bits))
}

// MaskLen converts a contiguous netmask (dotted form already parsed into an
// Addr) to its prefix length. It returns an error for non-contiguous masks
// such as 255.0.255.0, which occasionally appear as typos in hand-maintained
// network dumps and must not be silently accepted.
func MaskLen(mask Addr) (int, error) {
	m := uint32(mask)
	ones := 0
	for m&0x8000_0000 != 0 {
		ones++
		m <<= 1
	}
	if m != 0 {
		return 0, fmt.Errorf("netutil: non-contiguous netmask %s", mask)
	}
	return ones, nil
}

// ParsePrefix parses CIDR "a.b.c.d/len" notation. The base address is
// canonicalized (host bits cleared) rather than rejected, matching router
// behaviour when ingesting routing-table dumps.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netutil: invalid prefix %q: missing /len", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netutil: invalid prefix %q: bad length", s)
	}
	return PrefixFrom(addr, bits), nil
}

// MustParsePrefix is ParsePrefix for trusted constants; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ComparePrefix orders prefixes by base address, then by length (shorter
// first). This is the canonical ordering for routing-table dumps and makes
// aggregation scans (adjacent-block merging) a single linear pass.
func ComparePrefix(a, b Prefix) int {
	switch {
	case a.addr < b.addr:
		return -1
	case a.addr > b.addr:
		return 1
	case a.bits < b.bits:
		return -1
	case a.bits > b.bits:
		return 1
	default:
		return 0
	}
}

// Sibling returns the prefix that differs from p only in its lowest network
// bit — the other half of p's parent. Aggregation (CIDR route summarization)
// merges a prefix with its sibling into the parent. Sibling panics on /0,
// which has no parent.
func (p Prefix) Sibling() Prefix {
	if p.bits == 0 {
		panic("netutil: /0 has no sibling")
	}
	bit := Addr(1) << (32 - uint(p.bits))
	return Prefix{addr: p.addr ^ bit, bits: p.bits}
}

// Parent returns the prefix one bit shorter that contains p. It panics on /0.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		panic("netutil: /0 has no parent")
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// CommonPrefix returns the longest prefix containing every address in
// addrs. The self-correction stage uses it to recompute a cluster's
// identifying prefix after merging or splitting ("the network prefix and
// netmask will be recomputed accordingly", Section 3.5). It panics on an
// empty slice — a cluster always has members.
func CommonPrefix(addrs []Addr) Prefix {
	if len(addrs) == 0 {
		panic("netutil: CommonPrefix of no addresses")
	}
	first, bits := addrs[0], 32
	for _, a := range addrs[1:] {
		x := uint32(first ^ a)
		n := 0
		for n < bits && x&0x8000_0000 == 0 {
			n++
			x <<= 1
		}
		if n < bits {
			bits = n
		}
	}
	return PrefixFrom(first, bits)
}

// Halves splits p into its two child prefixes of length p.Bits()+1.
// It panics on /32, which cannot be split.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.bits == 32 {
		panic("netutil: /32 cannot be split")
	}
	lo = Prefix{addr: p.addr, bits: p.bits + 1}
	hi = Prefix{addr: p.addr | Addr(1)<<(31-uint(p.bits)), bits: p.bits + 1}
	return lo, hi
}
