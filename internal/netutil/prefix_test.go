package netutil

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaskOf(t *testing.T) {
	cases := []struct {
		bits int
		want uint32
	}{
		{0, 0},
		{1, 0x80000000},
		{8, 0xFF000000},
		{16, 0xFFFF0000},
		{19, 0xFFFFE000},
		{24, 0xFFFFFF00},
		{28, 0xFFFFFFF0},
		{32, 0xFFFFFFFF},
		{-3, 0},          // clamped
		{40, 0xFFFFFFFF}, // clamped
	}
	for _, c := range cases {
		if got := MaskOf(c.bits); got != c.want {
			t.Errorf("MaskOf(%d) = %#x, want %#x", c.bits, got, c.want)
		}
	}
}

func TestMaskLen(t *testing.T) {
	for bits := 0; bits <= 32; bits++ {
		got, err := MaskLen(Addr(MaskOf(bits)))
		if err != nil || got != bits {
			t.Errorf("MaskLen(MaskOf(%d)) = %d, %v", bits, got, err)
		}
	}
	for _, bad := range []string{"255.0.255.0", "0.255.0.0", "255.255.0.255", "128.128.0.0"} {
		if _, err := MaskLen(MustParseAddr(bad)); err == nil {
			t.Errorf("MaskLen(%s) should fail: non-contiguous", bad)
		}
	}
}

func TestPrefixCanonicalization(t *testing.T) {
	p := PrefixFrom(MustParseAddr("12.65.147.94"), 19)
	if p.Addr() != MustParseAddr("12.65.128.0") {
		t.Errorf("canonical addr = %v, want 12.65.128.0", p.Addr())
	}
	if p.String() != "12.65.128.0/19" {
		t.Errorf("String = %q", p.String())
	}
	if p.StringNetmask() != "12.65.128.0/255.255.224.0" {
		t.Errorf("StringNetmask = %q", p.StringNetmask())
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("12.65.128.0/19")
	for _, in := range []string{"12.65.128.0", "12.65.147.94", "12.65.159.255"} {
		if !p.Contains(MustParseAddr(in)) {
			t.Errorf("%v should contain %s", p, in)
		}
	}
	for _, out := range []string{"12.65.160.0", "12.65.127.255", "12.66.128.1", "13.65.128.1"} {
		if p.Contains(MustParseAddr(out)) {
			t.Errorf("%v should not contain %s", p, out)
		}
	}
	// Paper's motivating /28 example: three neighbouring /28s are distinct.
	for _, c := range []struct{ host, pfx string }{
		{"151.198.194.17", "151.198.194.16/28"},
		{"151.198.194.34", "151.198.194.32/28"},
		{"151.198.194.50", "151.198.194.48/28"},
	} {
		pfx := MustParsePrefix(c.pfx)
		if !pfx.Contains(MustParseAddr(c.host)) {
			t.Errorf("%s should contain %s", c.pfx, c.host)
		}
	}
	if MustParsePrefix("151.198.194.16/28").Contains(MustParseAddr("151.198.194.34")) {
		t.Error(".16/28 must not contain .34")
	}
}

func TestPrefixFirstLastNumAddrs(t *testing.T) {
	p := MustParsePrefix("24.48.2.0/23")
	if p.First() != MustParseAddr("24.48.2.0") {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MustParseAddr("24.48.3.255") {
		t.Errorf("Last = %v", p.Last())
	}
	if p.NumAddrs() != 512 {
		t.Errorf("NumAddrs = %d", p.NumAddrs())
	}
	all := MustParsePrefix("0.0.0.0/0")
	if all.NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", all.NumAddrs())
	}
	host := MustParsePrefix("1.2.3.4/32")
	if host.NumAddrs() != 1 || host.First() != host.Last() {
		t.Error("/32 should cover exactly one address")
	}
}

func TestPrefixOverlapsAndContainsPrefix(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.1/16 must overlap")
	}
	if a.Overlaps(c) {
		t.Error("10/8 and 11/8 must not overlap")
	}
	if !a.ContainsPrefix(b) {
		t.Error("10/8 must contain 10.1/16")
	}
	if b.ContainsPrefix(a) {
		t.Error("10.1/16 must not contain 10/8")
	}
	if !a.ContainsPrefix(a) {
		t.Error("ContainsPrefix is non-strict")
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, bad := range []string{"", "1.2.3.4", "1.2.3.4/", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3/24", "a.b.c.d/8", "1.2.3.4/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestSiblingParentHalves(t *testing.T) {
	p := MustParsePrefix("24.48.2.0/23")
	if s := p.Sibling(); s != MustParsePrefix("24.48.0.0/23") {
		t.Errorf("Sibling = %v", s)
	}
	if par := p.Parent(); par != MustParsePrefix("24.48.0.0/22") {
		t.Errorf("Parent = %v", par)
	}
	lo, hi := p.Halves()
	if lo != MustParsePrefix("24.48.2.0/24") || hi != MustParsePrefix("24.48.3.0/24") {
		t.Errorf("Halves = %v, %v", lo, hi)
	}
}

func TestSiblingIsInvolution(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw%32) + 1 // 1..32
		p := PrefixFrom(Addr(v), bits)
		s := p.Sibling()
		return s.Sibling() == p && s != p && s.Parent() == p.Parent()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHalvesPartitionParent(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 32) // 0..31
		p := PrefixFrom(Addr(v), bits)
		lo, hi := p.Halves()
		if lo.Parent() != p || hi.Parent() != p {
			return false
		}
		if lo.Overlaps(hi) {
			return false
		}
		return lo.NumAddrs()+hi.NumAddrs() == p.NumAddrs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContainsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
		a := Addr(rng.Uint32())
		brute := uint64(a) >= uint64(p.First()) && uint64(a) <= uint64(p.Last())
		if p.Contains(a) != brute {
			t.Fatalf("Contains(%v, %v) = %v, brute force = %v", p, a, p.Contains(a), brute)
		}
	}
}

func TestComparePrefix(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if ComparePrefix(a, b) >= 0 {
		t.Error("shorter prefix with same base must sort first")
	}
	if ComparePrefix(b, c) >= 0 {
		t.Error("lower base must sort first")
	}
	if ComparePrefix(a, a) != 0 {
		t.Error("equal prefixes must compare 0")
	}
	if ComparePrefix(c, a) <= 0 {
		t.Error("comparison must be antisymmetric")
	}
}

func TestPrefixIsZero(t *testing.T) {
	if !MustParsePrefix("0.0.0.0/0").IsZero() {
		t.Error("/0 should be zero")
	}
	if MustParsePrefix("0.0.0.0/1").IsZero() {
		t.Error("0.0.0.0/1 is not the zero prefix")
	}
}

func TestCommonPrefix(t *testing.T) {
	cases := []struct {
		addrs []string
		want  string
	}{
		{[]string{"10.0.0.1"}, "10.0.0.1/32"},
		{[]string{"10.0.0.1", "10.0.0.2"}, "10.0.0.0/30"},
		{[]string{"12.65.147.94", "12.65.144.247"}, "12.65.144.0/22"},
		{[]string{"10.0.0.1", "192.168.0.1"}, "0.0.0.0/0"},
		{[]string{"10.0.0.1", "128.0.0.1"}, "0.0.0.0/0"},
		{[]string{"1.2.3.4", "1.2.3.4", "1.2.3.4"}, "1.2.3.4/32"},
	}
	for _, c := range cases {
		addrs := make([]Addr, len(c.addrs))
		for i, s := range c.addrs {
			addrs[i] = MustParseAddr(s)
		}
		if got := CommonPrefix(addrs); got.String() != c.want {
			t.Errorf("CommonPrefix(%v) = %v, want %s", c.addrs, got, c.want)
		}
	}
}

func TestCommonPrefixContainsAll(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		addrs := make([]Addr, len(raw))
		for i, v := range raw {
			addrs[i] = Addr(v)
		}
		p := CommonPrefix(addrs)
		for _, a := range addrs {
			if !p.Contains(a) {
				return false
			}
		}
		// Longest: the one-bit-longer child containing addrs[0] must
		// exclude at least one address (unless p is already /32).
		if p.Bits() == 32 {
			return true
		}
		child := PrefixFrom(addrs[0], p.Bits()+1)
		for _, a := range addrs {
			if !child.Contains(a) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("PrefixFrom(33)", func() { PrefixFrom(0, 33) })
	mustPanic("CommonPrefix(empty)", func() { CommonPrefix(nil) })
	mustPanic("Sibling on /0", func() { MustParsePrefix("0.0.0.0/0").Sibling() })
	mustPanic("Parent on /0", func() { MustParsePrefix("0.0.0.0/0").Parent() })
	mustPanic("Halves on /32", func() { MustParsePrefix("1.2.3.4/32").Halves() })
}

func TestOverlapsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		p := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
		var q Prefix
		if i%2 == 0 {
			q = PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
		} else {
			// Bias toward overlap: base q inside p.
			q = PrefixFrom(p.Addr()|Addr(rng.Uint32())&^Addr(MaskOf(p.Bits())), rng.Intn(33))
		}
		brute := uint64(p.First()) <= uint64(q.Last()) && uint64(q.First()) <= uint64(p.Last())
		if p.Overlaps(q) != brute {
			t.Fatalf("Overlaps(%v, %v) = %v, brute = %v", p, q, p.Overlaps(q), brute)
		}
		if p.Overlaps(q) != q.Overlaps(p) {
			t.Fatalf("Overlaps not symmetric for %v, %v", p, q)
		}
	}
}

func TestPrefixTextRoundTrip(t *testing.T) {
	// JSON must carry prefixes as CIDR strings, both as struct fields and
	// as map keys.
	p := MustParsePrefix("10.20.32.0/19")
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"10.20.32.0/19"` {
		t.Fatalf("marshal: %s", b)
	}
	var q Prefix
	if err := json.Unmarshal(b, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("round trip: %v != %v", q, p)
	}
	m := map[Prefix]int{p: 3}
	mb, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("map key marshal: %v", err)
	}
	var m2 map[Prefix]int
	if err := json.Unmarshal(mb, &m2); err != nil || m2[p] != 3 {
		t.Fatalf("map key round trip: %v %v", m2, err)
	}
	if err := q.UnmarshalText([]byte("not-a-prefix")); err == nil {
		t.Fatal("garbage must not parse")
	}
}
