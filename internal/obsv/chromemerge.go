package obsv

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Multi-process trace merging. Each binary dumps its own flight recorder
// as a single-process Chrome trace (pid 1); a routed request's spans are
// therefore scattered over N+1 files. MergeChromeTraces rebuilds them
// into one document with a distinct pid — and so one named lane group in
// chrome://tracing / Perfetto — per input process. Lane (tid) numbering
// stays per-file, which keeps the nesting invariant ValidateChromeTrace
// checks intact even when two processes minted colliding span IDs.
// Cross-process causality is carried by the "trace" arg every span
// event already has: SharedChromeTraceIDs reports the TraceIDs present
// in every input, which is how tracecheck -require-shared-trace proves a
// propagated request really did span all the processes.

// decodeChromeEvents parses a Chrome trace document (object or
// bare-array form) into its events.
func decodeChromeEvents(data []byte) ([]chromeEvent, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.TraceEvents == nil {
		if aerr := json.Unmarshal(data, &doc.TraceEvents); aerr != nil {
			if err == nil {
				err = aerr
			}
			return nil, fmt.Errorf("obsv: not a chrome trace: %w", err)
		}
	}
	return doc.TraceEvents, nil
}

// MergeChromeTraces combines per-process trace files into one document,
// assigning file i pid i+1 and a process_name metadata event carrying
// names[i] so each process renders as its own labeled lane group.
// Original per-file process_name events are replaced; all other events
// (spans and thread_name metadata) keep their tid, so in-file nesting is
// preserved verbatim. Timestamps are left as-is: each file is already
// rebased to its own earliest span, and cross-process clock alignment is
// not something trace dumps can promise.
func MergeChromeTraces(names []string, files [][]byte) ([]byte, error) {
	if len(names) != len(files) {
		return nil, fmt.Errorf("obsv: %d names for %d trace files", len(names), len(files))
	}
	var merged []chromeEvent
	for i, data := range files {
		events, err := decodeChromeEvents(data)
		if err != nil {
			return nil, fmt.Errorf("obsv: trace file %q: %w", names[i], err)
		}
		pid := i + 1
		merged = append(merged, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": names[i]},
		})
		for _, e := range events {
			if e.Ph == "M" && e.Name == "process_name" {
				continue
			}
			e.Pid = pid
			merged = append(merged, e)
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: merged, DisplayUnit: "ms"}
	return json.Marshal(doc)
}

// ChromeTraceIDs returns the distinct TraceIDs present in a trace
// document's span events (the "trace" arg WriteChromeTrace emits),
// sorted ascending. Span events without the arg — foreign traces — are
// skipped.
func ChromeTraceIDs(data []byte) ([]uint64, error) {
	events, err := decodeChromeEvents(data)
	if err != nil {
		return nil, err
	}
	seen := make(map[uint64]bool)
	for _, e := range events {
		if e.Ph != "X" {
			continue
		}
		s, ok := e.Args["trace"].(string)
		if !ok {
			continue
		}
		id, err := strconv.ParseUint(s, 10, 64)
		if err != nil || id == 0 {
			continue
		}
		seen[id] = true
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// SharedChromeTraceIDs returns the TraceIDs present in every one of the
// trace files — the propagated traces. Empty input shares nothing.
func SharedChromeTraceIDs(files [][]byte) ([]uint64, error) {
	if len(files) == 0 {
		return nil, nil
	}
	count := make(map[uint64]int)
	for i, data := range files {
		ids, err := ChromeTraceIDs(data)
		if err != nil {
			return nil, fmt.Errorf("obsv: trace file %d: %w", i, err)
		}
		for _, id := range ids {
			count[id]++
		}
	}
	var shared []uint64
	for id, n := range count {
		if n == len(files) {
			shared = append(shared, id)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	return shared, nil
}
