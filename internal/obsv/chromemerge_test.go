package obsv

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// fakeTraceFile renders a single-process Chrome trace whose spans carry
// the given trace IDs (one root span each, plus a child on the first).
func fakeTraceFile(t *testing.T, traceIDs ...uint64) []byte {
	t.Helper()
	base := time.Unix(1000, 0)
	var recs []SpanRecord
	for i, id := range traceIDs {
		recs = append(recs, SpanRecord{
			TraceID: id, SpanID: id*100 + 1, Name: "root",
			Start: base.Add(time.Duration(i) * time.Millisecond), Duration: time.Millisecond,
		})
		if i == 0 {
			recs = append(recs, SpanRecord{
				TraceID: id, SpanID: id*100 + 2, ParentID: id*100 + 1, Name: "child",
				Start: base.Add(100 * time.Microsecond), Duration: 200 * time.Microsecond,
			})
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeChromeTraces(t *testing.T) {
	router := fakeTraceFile(t, 7, 9)
	shard0 := fakeTraceFile(t, 7)
	merged, err := MergeChromeTraces([]string{"router", "shard0"}, [][]byte{router, shard0})
	if err != nil {
		t.Fatal(err)
	}

	// The merged document is still a valid trace with every span intact.
	n, err := ValidateChromeTrace(merged)
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if n != 5 {
		t.Fatalf("merged trace has %d span events, want 5", n)
	}

	// Each input renders under its own pid with its own process name.
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged, &doc); err != nil {
		t.Fatal(err)
	}
	procNames := make(map[int]string)
	spanPids := make(map[int]int)
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procNames[e.Pid], _ = e.Args["name"].(string)
		case e.Ph == "X":
			spanPids[e.Pid]++
		}
	}
	if procNames[1] != "router" || procNames[2] != "shard0" {
		t.Fatalf("process names %v, want router/shard0 on pids 1/2", procNames)
	}
	if spanPids[1] != 3 || spanPids[2] != 2 {
		t.Fatalf("span counts by pid %v, want 3 on pid 1 and 2 on pid 2", spanPids)
	}
}

func TestMergeChromeTracesArityMismatch(t *testing.T) {
	if _, err := MergeChromeTraces([]string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/files accepted")
	}
	if _, err := MergeChromeTraces([]string{"a"}, [][]byte{[]byte("not json")}); err == nil {
		t.Fatal("garbage trace file accepted")
	}
}

func TestSharedChromeTraceIDs(t *testing.T) {
	a := fakeTraceFile(t, 1, 2)
	b := fakeTraceFile(t, 2, 3)
	c := fakeTraceFile(t, 2, 1)

	ids, err := ChromeTraceIDs(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("trace IDs of a = %v, want [1 2]", ids)
	}

	shared, err := SharedChromeTraceIDs([][]byte{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != 1 || shared[0] != 2 {
		t.Fatalf("shared = %v, want [2]", shared)
	}

	if shared, _ = SharedChromeTraceIDs(nil); shared != nil {
		t.Fatalf("empty input shares %v", shared)
	}
}
