package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Chrome trace_event export: the flight-recorder spans serialized in the
// JSON object format chrome://tracing and Perfetto load directly. Every
// span becomes one "X" (complete) event; timestamps are rebased to the
// earliest span so microsecond floats keep full precision over runs that
// started hours into an epoch.
//
// The format has no parent links — nesting is inferred per thread lane
// (tid) from containment — so the writer assigns lanes such that events
// sharing a tid are pairwise nested or disjoint: a child reuses its
// parent's lane only when it both starts after the previous span placed
// there and ends within the parent; otherwise it gets a fresh lane that
// is never reused by another subtree. Concurrent shard spans therefore
// render as parallel tracks under their root, which is exactly the
// fan-out picture the tooling is for.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePid = 1

type chromeNode struct {
	rec      *SpanRecord
	startNs  int64
	endNs    int64
	children []*chromeNode
	lane     int
}

// WriteChromeTrace serializes spans (typically a Ring.Snapshot) as a
// Chrome trace_event JSON object. An empty span set writes a valid empty
// trace.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	events := buildChromeEvents(spans)
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func buildChromeEvents(spans []SpanRecord) []chromeEvent {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "netcluster"},
	}}
	if len(spans) == 0 {
		return events
	}

	// Sort by start (longer first on ties, so parents precede children)
	// and rebase timestamps to the earliest span.
	nodes := make([]*chromeNode, len(spans))
	for i := range spans {
		rec := &spans[i]
		nodes[i] = &chromeNode{
			rec:     rec,
			startNs: rec.Start.UnixNano(),
			endNs:   rec.Start.UnixNano() + rec.Duration.Nanoseconds(),
		}
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		if nodes[i].startNs != nodes[j].startNs {
			return nodes[i].startNs < nodes[j].startNs
		}
		return nodes[i].endNs > nodes[j].endNs
	})
	baseNs := nodes[0].startNs

	// Group into traces, link children, and collect roots (spans whose
	// parent fell out of the ring count as roots).
	byTrace := make(map[uint64][]*chromeNode)
	var traceOrder []uint64
	for _, n := range nodes {
		if _, seen := byTrace[n.rec.TraceID]; !seen {
			traceOrder = append(traceOrder, n.rec.TraceID)
		}
		byTrace[n.rec.TraceID] = append(byTrace[n.rec.TraceID], n)
	}

	var laneNames []string
	allocLane := func(name string) int {
		laneNames = append(laneNames, name)
		return len(laneNames) - 1
	}
	var place func(n *chromeNode, lane int)
	place = func(n *chromeNode, lane int) {
		n.lane = lane
		if laneNames[lane] == "" {
			laneNames[lane] = n.rec.Name
		}
		prevEnd := int64(math.MinInt64)
		for _, c := range n.children {
			if c.startNs >= prevEnd && c.endNs <= n.endNs {
				place(c, lane)
				prevEnd = c.endNs
			} else {
				place(c, allocLane(""))
			}
		}
	}

	for _, tid := range traceOrder {
		group := byTrace[tid]
		byID := make(map[uint64]*chromeNode, len(group))
		for _, n := range group {
			byID[n.rec.SpanID] = n
		}
		var roots []*chromeNode
		for _, n := range group {
			if p := byID[n.rec.ParentID]; n.rec.ParentID != 0 && p != nil && p != n {
				p.children = append(p.children, n)
			} else {
				roots = append(roots, n)
			}
		}
		rootLane := -1
		prevEnd := int64(math.MinInt64)
		for _, rt := range roots {
			if rootLane >= 0 && rt.startNs >= prevEnd {
				place(rt, rootLane)
				prevEnd = rt.endNs
			} else if rootLane < 0 {
				rootLane = allocLane("")
				place(rt, rootLane)
				prevEnd = rt.endNs
			} else {
				place(rt, allocLane(""))
			}
		}
	}

	for lane, name := range laneNames {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: lane,
			Args: map[string]any{"name": name},
		})
	}
	for _, n := range nodes {
		args := map[string]any{
			"trace": strconv.FormatUint(n.rec.TraceID, 10),
			"span":  strconv.FormatUint(n.rec.SpanID, 10),
		}
		if n.rec.ParentID != 0 {
			args["parent"] = strconv.FormatUint(n.rec.ParentID, 10)
		}
		for _, a := range n.rec.Attrs {
			args[a.Key] = a.Value
		}
		if n.rec.Err != "" {
			args["error"] = n.rec.Err
		}
		events = append(events, chromeEvent{
			Name: n.rec.Name,
			Ph:   "X",
			Ts:   float64(n.startNs-baseNs) / 1e3,
			Dur:  float64(n.endNs-n.startNs) / 1e3,
			Pid:  chromePid,
			Tid:  n.lane,
			Cat:  "netcluster",
			Args: args,
		})
	}
	return events
}

// ValidateChromeTrace checks that data is a structurally valid Chrome
// trace: a traceEvents array (object or bare-array form) whose "X"
// events all carry name/ph/ts/dur/pid/tid, with events on each (pid,
// tid) lane pairwise nested or disjoint. It returns the number of "X"
// events.
func ValidateChromeTrace(data []byte) (int, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.TraceEvents == nil {
		// Bare-array form.
		if aerr := json.Unmarshal(data, &doc.TraceEvents); aerr != nil {
			if err == nil {
				err = aerr
			}
			return 0, fmt.Errorf("obsv: not a chrome trace: %w", err)
		}
	}
	type ev struct {
		Name *string  `json:"name"`
		Ph   *string  `json:"ph"`
		Ts   *float64 `json:"ts"`
		Dur  *float64 `json:"dur"`
		Pid  *int     `json:"pid"`
		Tid  *int     `json:"tid"`
	}
	type span struct{ start, end float64 }
	lanes := make(map[[2]int][]span)
	count := 0
	for i, raw := range doc.TraceEvents {
		var e ev
		if err := json.Unmarshal(raw, &e); err != nil {
			return count, fmt.Errorf("obsv: trace event %d: %w", i, err)
		}
		if e.Ph == nil {
			return count, fmt.Errorf("obsv: trace event %d: missing ph", i)
		}
		if *e.Ph != "X" {
			continue
		}
		if e.Name == nil || *e.Name == "" {
			return count, fmt.Errorf("obsv: trace event %d: missing name", i)
		}
		if e.Ts == nil || e.Dur == nil || e.Pid == nil || e.Tid == nil {
			return count, fmt.Errorf("obsv: trace event %d (%s): missing ts/dur/pid/tid", i, *e.Name)
		}
		if *e.Dur < 0 {
			return count, fmt.Errorf("obsv: trace event %d (%s): negative dur", i, *e.Name)
		}
		key := [2]int{*e.Pid, *e.Tid}
		lanes[key] = append(lanes[key], span{start: *e.Ts, end: *e.Ts + *e.Dur})
		count++
	}
	// Nesting: within a lane, sorted by start (longest first on ties),
	// every event must nest inside or fall after the enclosing stack.
	const eps = 1e-3 // 1 ns in µs: absorbs float rounding of ts+dur
	for key, spans := range lanes {
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].end > spans[j].end
		})
		var stack []span
		for _, s := range spans {
			for len(stack) > 0 && s.start >= stack[len(stack)-1].end-eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && s.end > stack[len(stack)-1].end+eps {
				return count, fmt.Errorf(
					"obsv: lane pid=%d tid=%d: event [%.3f,%.3f] partially overlaps enclosing [%.3f,%.3f]",
					key[0], key[1], s.start, s.end, stack[len(stack)-1].start, stack[len(stack)-1].end)
			}
			stack = append(stack, s)
		}
	}
	return count, nil
}

// WriteTraceFile atomically writes the Default flight recorder as a
// Chrome trace JSON file — the implementation behind the commands'
// -trace-out flags.
func WriteTraceFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return WriteChromeTrace(w, DefaultRing.Snapshot())
	})
}
