package obsv

import (
	"bytes"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
)

// Operational export: the Default registry publishes itself under the
// expvar key "netcluster", so any /debug/vars endpoint (including the
// one DebugHandler serves) carries a full snapshot; WriteFile dumps the
// same snapshot as a JSON file for batch tools (-metrics-out flags).

func init() {
	expvar.Publish("netcluster", expvar.Func(func() any { return TakeSnapshot() }))
}

// DebugHandler returns the debug mux an operational listener serves:
// /debug/vars (expvar JSON, including the "netcluster" snapshot),
// /metrics (Prometheus text exposition of the same registry, with
// histogram buckets and derived quantiles), /metrics.json (the raw
// snapshot for machine consumers such as the cluster metrics
// aggregator), /debug/trace (the flight
// recorder as Chrome trace_event JSON), and the /debug/pprof endpoints.
// cmd/pcvproxy mounts it on -metrics-addr; any embedder can mount it on
// a private listener.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/metrics.json", SnapshotHandler())
	mux.Handle("/debug/trace", TraceHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsHandler serves the Default registry as a Prometheus text
// exposition page.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", PrometheusContentType)
		var buf bytes.Buffer
		if err := WritePrometheusText(&buf, TakeSnapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(buf.Bytes())
	})
}

// SnapshotHandler serves the Default registry snapshot as JSON — the
// machine-readable twin of /metrics, and the endpoint a cluster
// metrics aggregator (shard.Aggregator) pulls from each node.
func SnapshotHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := TakeSnapshot().MarshalIndent()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(append(data, '\n'))
	})
}

// TraceHandler serves the Default flight recorder as a Chrome
// trace_event JSON document, ready to save and load in chrome://tracing
// or Perfetto.
func TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="netcluster-trace.json"`)
		WriteChromeTrace(w, DefaultRing.Snapshot())
	})
}

// MarshalJSON renders a snapshot as indented, key-sorted JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteFile atomically writes the Default registry's snapshot as JSON to
// path (temp file + rename, so a crash mid-write never truncates an
// existing snapshot).
func WriteFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		data, err := TakeSnapshot().MarshalIndent()
		if err != nil {
			return fmt.Errorf("obsv: marshaling snapshot: %w", err)
		}
		data = append(data, '\n')
		_, err = w.Write(data)
		return err
	})
}

// writeFileAtomic streams fill into a temp file in path's directory and
// renames it into place, so readers never observe a partial file.
func writeFileAtomic(path string, fill func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obsv-*")
	if err != nil {
		return fmt.Errorf("obsv: writing %s: %w", path, err)
	}
	if err := fill(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing %s: %w", path, err)
	}
	return nil
}
