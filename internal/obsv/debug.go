package obsv

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
)

// Operational export: the Default registry publishes itself under the
// expvar key "netcluster", so any /debug/vars endpoint (including the
// one DebugHandler serves) carries a full snapshot; WriteFile dumps the
// same snapshot as a JSON file for batch tools (-metrics-out flags).

func init() {
	expvar.Publish("netcluster", expvar.Func(func() any { return TakeSnapshot() }))
}

// DebugHandler returns the debug mux an operational listener serves:
// /debug/vars (expvar JSON, including the "netcluster" snapshot) and the
// /debug/pprof endpoints. cmd/pcvproxy mounts it on -metrics-addr; any
// embedder can mount it on a private listener.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MarshalJSON renders a snapshot as indented, key-sorted JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteFile atomically writes the Default registry's snapshot as JSON to
// path (temp file + rename, so a crash mid-write never truncates an
// existing snapshot).
func WriteFile(path string) error {
	data, err := TakeSnapshot().MarshalIndent()
	if err != nil {
		return fmt.Errorf("obsv: marshaling snapshot: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obsv-*")
	if err != nil {
		return fmt.Errorf("obsv: writing snapshot: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("obsv: writing snapshot: %w", err)
	}
	return nil
}
