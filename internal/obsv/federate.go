package obsv

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// Metrics federation: the router-side aggregate view of N shard
// registries. Each member contributes a full Snapshot (pulled from its
// /metrics.json endpoint); the renderer exposes every series under a
// per-member `shard` label so skew is visible, and — because labeled
// per-shard quantiles cannot be averaged — re-derives cluster-wide
// p50/p95/p99 by merging the raw log2 bucket counts first. Log2 buckets
// make that merge exact: two histograms with identical bucket bounds sum
// bucket-wise, and the interpolated quantile of the sum is as good as
// the one a single process would have produced.

// MemberSnapshot is one member's contribution to a federated page: its
// registry snapshot plus the `shard` label value identifying it.
type MemberSnapshot struct {
	Label string   `json:"label"`
	Snap  Snapshot `json:"snap"`
}

// MergeHistogramSnapshots sums the members' log2 bucket counts and
// re-derives count/sum/mean/max and the interpolated quantiles from the
// merged distribution. Merging is exact because every histogram shares
// the same fixed bucket bounds.
func MergeHistogramSnapshots(parts ...HistogramSnapshot) HistogramSnapshot {
	var counts [numBuckets]uint64
	var out HistogramSnapshot
	for _, p := range parts {
		out.Sum += p.Sum
		for _, b := range p.Buckets {
			// Recover the bucket index from its upper bound: bucket i
			// holds values of bit length i, so High = 2^i - 1 has bit
			// length i (and bucket 0's High is 0).
			counts[bits.Len64(b.High)] += b.Count
		}
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		out.Count += c
		out.Max = BucketHigh(i)
		out.Buckets = append(out.Buckets, HistogramBucket{Low: BucketLow(i), High: BucketHigh(i), Count: c})
	}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
		out.P50 = quantile(&counts, out.Count, 0.50)
		out.P95 = quantile(&counts, out.Count, 0.95)
		out.P99 = quantile(&counts, out.Count, 0.99)
	}
	return out
}

// promLabel escapes a label value for the text exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteFederatedPrometheus renders the members' snapshots as one
// Prometheus text page. Every counter, gauge and histogram series
// carries a `shard` label naming its member (so per-shard skew is one
// PromQL expression away), and each histogram family additionally emits
// unlabeled *_cluster_p50/p95/p99 gauges derived from the merged bucket
// counts — the cluster-wide quantiles no per-shard series can express.
// Members are rendered in the order given; families are emitted in
// sorted name order per kind, so identical inputs produce byte-identical
// pages with no duplicate series.
func WriteFederatedPrometheus(w io.Writer, members []MemberSnapshot) error {
	union := func(pick func(Snapshot) []string) []string {
		seen := make(map[string]bool)
		var names []string
		for _, m := range members {
			for _, name := range pick(m.Snap) {
				if !seen[name] {
					seen[name] = true
					names = append(names, name)
				}
			}
		}
		sort.Strings(names)
		return names
	}

	for _, name := range union(func(s Snapshot) []string { return keys(s.Counters) }) {
		fam := promName(name) + "_total"
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster counter %q by shard\n# TYPE %s counter\n", fam, name, fam); err != nil {
			return err
		}
		for _, m := range members {
			v, ok := m.Snap.Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %d\n", fam, promLabel(m.Label), v); err != nil {
				return err
			}
		}
	}

	for _, name := range union(func(s Snapshot) []string { return keys(s.Gauges) }) {
		fam := promName(name)
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster gauge %q by shard\n# TYPE %s gauge\n", fam, name, fam); err != nil {
			return err
		}
		for _, m := range members {
			v, ok := m.Snap.Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{shard=%q} %d\n", fam, promLabel(m.Label), v); err != nil {
				return err
			}
		}
	}

	for _, name := range union(func(s Snapshot) []string { return keys(s.Histograms) }) {
		fam := promName(name)
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster histogram %q (log2 buckets) by shard\n# TYPE %s histogram\n",
			fam, name, fam); err != nil {
			return err
		}
		var parts []HistogramSnapshot
		for _, m := range members {
			h, ok := m.Snap.Histograms[name]
			if !ok {
				continue
			}
			parts = append(parts, h)
			label := promLabel(m.Label)
			cum := uint64(0)
			for _, b := range h.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{shard=%q,le=\"%d\"} %d\n", fam, label, b.High, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{shard=%q,le=\"+Inf\"} %d\n%s_sum{shard=%q} %d\n%s_count{shard=%q} %d\n",
				fam, label, h.Count, fam, label, h.Sum, fam, label, h.Count); err != nil {
				return err
			}
		}
		merged := MergeHistogramSnapshots(parts...)
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"_cluster_p50", merged.P50}, {"_cluster_p95", merged.P95}, {"_cluster_p99", merged.P99}} {
			qfam := fam + q.suffix
			if _, err := fmt.Fprintf(w,
				"# HELP %s netcluster histogram %q cluster-wide quantile (merged buckets)\n# TYPE %s gauge\n%s %s\n",
				qfam, name, qfam, qfam, promFloat(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}

func keys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	return names
}
