package obsv

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// TestMergeHistogramSnapshots: merging N snapshots is equivalent to one
// histogram that observed all the values.
func TestMergeHistogramSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var a, b, whole Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	got := MergeHistogramSnapshots(a.Snapshot(), b.Snapshot())
	want := whole.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum || got.Max != want.Max {
		t.Fatalf("merged count/sum/max %d/%d/%d, want %d/%d/%d",
			got.Count, got.Sum, got.Max, want.Count, want.Sum, want.Max)
	}
	if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
		t.Fatalf("merged quantiles %v/%v/%v, want %v/%v/%v",
			got.P50, got.P95, got.P99, want.P50, want.P95, want.P99)
	}
	if len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("merged %d buckets, want %d", len(got.Buckets), len(want.Buckets))
	}
	for i := range got.Buckets {
		if got.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: %+v != %+v", i, got.Buckets[i], want.Buckets[i])
		}
	}
}

func TestMergeHistogramSnapshotsEmpty(t *testing.T) {
	if got := MergeHistogramSnapshots(); got.Count != 0 || got.P99 != 0 {
		t.Fatalf("empty merge = %+v", got)
	}
}

func federatedMembers() []MemberSnapshot {
	mk := func(batches uint64, lag int64, latencies ...int64) Snapshot {
		r := NewRegistry()
		r.Counter("node.batches").Add(batches)
		r.Gauge("feed.lag").Set(lag)
		h := r.Histogram("batch.ns")
		for _, v := range latencies {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	return []MemberSnapshot{
		{Label: "0", Snap: mk(100, 0, 1000, 2000, 4000, 800000)},
		{Label: "1", Snap: mk(350, 3, 1500, 3000, 900000, 950000)},
	}
}

func TestWriteFederatedPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFederatedPrometheus(&buf, federatedMembers()); err != nil {
		t.Fatal(err)
	}
	page := buf.String()

	for _, want := range []string{
		`netcluster_node_batches_total{shard="0"} 100`,
		`netcluster_node_batches_total{shard="1"} 350`,
		`netcluster_feed_lag{shard="0"} 0`,
		`netcluster_feed_lag{shard="1"} 3`,
		`netcluster_batch_ns_bucket{shard="0",le="+Inf"} 4`,
		`netcluster_batch_ns_count{shard="1"} 4`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}

	// Cluster-wide quantiles exist, are unlabeled, and reflect the merged
	// distribution (the p99 must land in the slow shard's range even
	// though shard 0 alone would put it far lower).
	var p99 string
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "netcluster_batch_ns_cluster_p99 ") {
			p99 = strings.Fields(line)[1]
		}
	}
	if p99 == "" {
		t.Fatalf("no cluster p99 in page:\n%s", page)
	}
	members := federatedMembers()
	merged := MergeHistogramSnapshots(
		members[0].Snap.Histograms["batch.ns"], members[1].Snap.Histograms["batch.ns"])
	if merged.P99 < 524288 {
		t.Fatalf("merged p99 %v does not reflect the slow shard", merged.P99)
	}
	if p99 != promFloat(merged.P99) {
		t.Fatalf("page p99 %s != merged %s", p99, promFloat(merged.P99))
	}

	// No duplicate series: every non-comment line's identity
	// (family + label set) appears exactly once.
	seen := make(map[string]bool)
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := line[:strings.LastIndex(line, " ")]
		if seen[id] {
			t.Fatalf("duplicate series %q", id)
		}
		seen[id] = true
	}

	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := WriteFederatedPrometheus(&again, federatedMembers()); err != nil {
		t.Fatal(err)
	}
	if again.String() != page {
		t.Fatal("federated page not deterministic")
	}
}

// TestWriteFederatedPrometheusPartial: a series missing from one member
// renders only the members that have it — no zero-filled fabrications.
func TestWriteFederatedPrometheusPartial(t *testing.T) {
	r := NewRegistry()
	r.Counter("only.here").Inc()
	members := []MemberSnapshot{
		{Label: "a", Snap: r.Snapshot()},
		{Label: "b", Snap: NewRegistry().Snapshot()},
	}
	var buf bytes.Buffer
	if err := WriteFederatedPrometheus(&buf, members); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	if !strings.Contains(page, `netcluster_only_here_total{shard="a"} 1`) {
		t.Fatalf("missing shard a series:\n%s", page)
	}
	if strings.Contains(page, `{shard="b"}`) {
		t.Fatalf("fabricated series for empty member:\n%s", page)
	}
}
