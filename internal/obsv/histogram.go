package obsv

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers the full uint64 range: bucket 0 holds observations
// ≤ 0, bucket i (i ≥ 1) holds values v with bit length i, i.e. the
// half-open range [2^(i-1), 2^i).
const numBuckets = 65

// Histogram is a log2-bucketed distribution of int64 observations —
// latencies in nanoseconds, sizes in bytes, depths in levels. Exponential
// buckets give ~2x relative resolution over the whole range with a fixed
// 65-slot footprint and no configuration, the same trade routers make in
// hardware counters. Observe is two uncontended atomic adds and never
// allocates; the zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	sum     atomic.Int64
	count   atomic.Uint64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the smallest value bucket i holds (0 for bucket 0).
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// BucketHigh returns the largest value bucket i holds.
func BucketHigh(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}

// HistogramBucket is one non-empty bucket in a snapshot: Count
// observations fell in [Low, High].
type HistogramBucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Quantiles
// are linear interpolations within the log2 bucket holding the rank
// (see Quantile) — exact for distributions uniform within a bucket and
// never off by more than the bucket width.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Mean    float64           `json:"mean"`
	P50     float64           `json:"p50"`
	P95     float64           `json:"p95"`
	P99     float64           `json:"p99"`
	Max     uint64            `json:"max"` // upper bound of the highest non-empty bucket
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram. Buckets are read individually with
// atomic loads; a snapshot racing writers may be off by in-flight
// observations, never torn.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [numBuckets]uint64
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		s.Count += c
		if c > 0 {
			s.Max = BucketHigh(i)
			s.Buckets = append(s.Buckets, HistogramBucket{Low: BucketLow(i), High: BucketHigh(i), Count: c})
		}
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.P50 = quantile(&counts, s.Count, 0.50)
		s.P95 = quantile(&counts, s.Count, 0.95)
		s.P99 = quantile(&counts, s.Count, 0.99)
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution by locating the bucket holding the q·count-th observation
// and interpolating linearly within it — exact when observations are
// uniform inside the bucket, and always inside the bucket's bounds.
func (h *Histogram) Quantile(q float64) float64 {
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantile(&counts, total, q)
}

// quantile interpolates the q-quantile from bucket counts. The rank is
// the continuous position q·total, clamped into the observed range, so
// q=1 lands at the top of the last occupied bucket.
func quantile(counts *[numBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank >= float64(total) {
		rank = float64(total) - 0.5
	}
	var seen float64
	for i := 0; i < numBuckets; i++ {
		c := float64(counts[i])
		if c == 0 {
			continue
		}
		if rank < seen+c {
			if i == 0 {
				return 0
			}
			lo, hi := float64(BucketLow(i)), float64(BucketHigh(i))
			return lo + (rank-seen)/c*(hi-lo)
		}
		seen += c
	}
	return float64(BucketHigh(numBuckets - 1))
}
