package obsv

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Process-memory probes for the firehose acceptance lane: the bounded
// clustering mode promises fixed RSS over unbounded streams, and the
// promise is only checkable if the test can read the process's actual
// resident set, not just Go's heap accounting.

// HeapAllocBytes returns the live Go heap — portable, and the right
// signal for "did the accumulator grow", since mmap'd tables and OS
// page caching never inflate it.
func HeapAllocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// RSSBytes returns the process resident set from /proc/self/statm.
// ok is false where procfs is unavailable (non-Linux); callers fall
// back to HeapAllocBytes.
func RSSBytes() (uint64, bool) {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * uint64(os.Getpagesize()), true
}
