// Package obsv is the zero-dependency observability substrate for the
// clustering pipeline: atomic counters and gauges, log2-bucketed
// histograms, named spans with wall-time and allocation deltas, and a
// process-wide registry whose Snapshot is deterministic and exports as
// JSON and expvar.
//
// The package exists because the paper's methodology is measured in
// exactly these quantities — fraction of clients clustered, validation
// hit-rates, cache hit ratios, lookup latencies — and a production
// deployment needs them as live counters rather than one-shot experiment
// printouts. Design constraints, in order:
//
//  1. Hot paths pay nothing they can observe. A Counter.Add is one
//     uncontended atomic add; Histogram.Observe is two. Neither
//     allocates. Packages on per-record hot loops (the CLF fast path,
//     the parallel clustering workers) accumulate plain local integers
//     and flush once per stream/chunk, so the steady-state cost is a
//     register increment. The budget — instrumentation ≤1% of the
//     committed BENCH_clustering.json numbers — is enforced by
//     TestInstrumentationOverheadBudget at the repo root.
//  2. Safe under -race with unlimited concurrent writers and readers.
//  3. Zero dependencies outside the standard library.
//
// Metric names are dotted paths ("cluster.parallel.records"); the
// registry keeps one flat namespace per kind. Snapshot() returns sorted,
// JSON-stable maps so committed snapshots diff cleanly.
package obsv

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Inc increments the counter by one and returns the new value — callers
// use the return for cheap modular sampling ("every 64th event").
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous atomic value (last-set or accumulated).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry is a named collection of metrics. Metric handles are
// get-or-create: the first Counter("x") allocates, later calls return
// the same counter, so packages resolve handles once at init and hot
// paths never touch the registry lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// ring, when set, receives every completed trace span started from
	// this registry (the flight recorder). See ring.go and trace.go.
	ring atomic.Pointer[Ring]
}

// SetRing wires a flight recorder into the registry; nil detaches it.
// The Default registry is wired to DefaultRing at init.
func (r *Registry) SetRing(ring *Ring) { r.ring.Store(ring) }

// Ring returns the registry's flight recorder, or nil.
func (r *Registry) Ring() *Ring { return r.ring.Load() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every instrumented package uses.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric (handles stay valid). Tests and
// per-run reporting use it to scope counters to a window.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot is a point-in-time copy of a registry. Map keys marshal
// sorted, so two snapshots of identical state produce identical JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric's current value. Values are read with
// atomic loads but not as one transaction: a snapshot taken while
// writers run is per-metric consistent, which is what an operational
// poll needs.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Package-level shorthands on the Default registry; instrumented
// packages resolve these once into vars at init.

// C returns a counter from the Default registry.
func C(name string) *Counter { return Default.Counter(name) }

// G returns a gauge from the Default registry.
func G(name string) *Gauge { return Default.Gauge(name) }

// H returns a histogram from the Default registry.
func H(name string) *Histogram { return Default.Histogram(name) }

// TakeSnapshot snapshots the Default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }
