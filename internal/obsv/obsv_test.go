package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	if c.Inc() != 1 || c.Add(4) != 5 || c.Value() != 5 {
		t.Fatalf("counter arithmetic broken: %d", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter must be get-or-create, not create-always")
	}
	g := r.Gauge("a.gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("Reset must zero metrics through existing handles")
	}
}

// TestConcurrentIncrements drives every metric kind from many goroutines;
// under -race this is the data-race proof, and the final counts prove no
// increment was lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Exercise get-or-create concurrently too.
			c := r.Counter("conc.count")
			h := r.Histogram("conc.hist")
			g := r.Gauge("conc.gauge")
			for i := 0; i < perW; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	// A concurrent reader snapshotting mid-flight must not race.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	const want = workers * perW
	if v := r.Counter("conc.count").Value(); v != want {
		t.Errorf("counter lost increments: %d, want %d", v, want)
	}
	if v := r.Gauge("conc.gauge").Value(); v != want {
		t.Errorf("gauge lost adds: %d, want %d", v, want)
	}
	if v := r.Histogram("conc.hist").Count(); v != want {
		t.Errorf("histogram lost observations: %d, want %d", v, want)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{math.MaxInt64, 63},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
	}
	// The [Low, High] ranges must tile the positive integers exactly.
	for i := 1; i < numBuckets-1; i++ {
		if BucketHigh(i)+1 != BucketLow(i+1) {
			t.Errorf("gap between bucket %d high %d and bucket %d low %d",
				i, BucketHigh(i), i+1, BucketLow(i+1))
		}
		if bucketOf(int64(BucketLow(i))) != i && i <= 63 {
			t.Errorf("BucketLow(%d)=%d maps to bucket %d", i, BucketLow(i), bucketOf(int64(BucketLow(i))))
		}
	}
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 || s.Sum != 1025 {
		t.Fatalf("snapshot count/sum = %d/%d, want 6/1025", s.Count, s.Sum)
	}
	// Bucket 0 holds {0, -5}, bucket 1 {1}, bucket 2 {2, 3}, bucket 11 {1024}.
	wantCounts := map[uint64]uint64{0: 2, 1: 1, 2: 2, 1024: 1}
	if len(s.Buckets) != len(wantCounts) {
		t.Fatalf("non-empty buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if wantCounts[b.Low] != b.Count {
			t.Errorf("bucket low=%d count=%d, want %d", b.Low, b.Count, wantCounts[b.Low])
		}
	}
	if s.Max != BucketHigh(11) {
		t.Errorf("Max = %d, want %d", s.Max, BucketHigh(11))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7: [64,127]
	}
	h.Observe(100000) // bucket 17
	s := h.Snapshot()
	if s.P50 < 64 || s.P50 > 127 {
		t.Errorf("P50 = %v, want within [64,127]", s.P50)
	}
	if s.P99 < float64(BucketLow(17)) || s.P99 > float64(BucketHigh(17)) {
		t.Errorf("P99 = %v, want within bucket 17 %d..%d", s.P99, BucketLow(17), BucketHigh(17))
	}
}

// TestSnapshotDeterminism: identical registry state must marshal to
// byte-identical JSON, independent of metric creation or map iteration
// order.
func TestSnapshotDeterminism(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, name := range order {
			r.Counter("c." + name).Add(3)
			r.Gauge("g." + name).Set(9)
			r.Histogram("h." + name).Observe(42)
		}
		return r
	}
	a := build([]string{"alpha", "beta", "gamma"})
	b := build([]string{"gamma", "alpha", "beta"})
	aj, err := a.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("snapshots of identical state differ:\n%s\nvs\n%s", aj, bj)
	}
	cj, err := a.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, cj) {
		t.Error("re-snapshotting unchanged state changed the JSON")
	}
}

func TestSpanRecordsMetrics(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("op")
	buf := make([]byte, 1<<16) // force at least one heap allocation
	_ = buf
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Errorf("span duration %v, want >= 1ms", d)
	}
	if r.Counter("op.count").Value() != 1 {
		t.Error("span did not count completion")
	}
	ns := r.Histogram("op.ns").Snapshot()
	if ns.Count != 1 || ns.Sum < int64(time.Millisecond) {
		t.Errorf("span ns histogram = %+v", ns)
	}
	if r.Histogram("op.allocs").Count() != 1 {
		t.Error("span did not record an allocation delta")
	}
	var zero ASpan
	if zero.End() != 0 {
		t.Error("zero span must be inert")
	}
}

// TestDebugVarsParseable serves DebugHandler over HTTP and checks that
// /debug/vars is valid JSON containing the netcluster snapshot — the
// same check the pcvproxy integration test performs against the real
// binary.
func TestDebugVarsParseable(t *testing.T) {
	C("debugtest.count").Add(11)
	srv := httptest.NewServer(DebugHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Netcluster Snapshot `json:"netcluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars is not parseable JSON: %v", err)
	}
	if vars.Netcluster.Counters["debugtest.count"] != 11 {
		t.Errorf("netcluster expvar missing counter: %+v", vars.Netcluster.Counters)
	}
	// The pprof index must be mounted too.
	pr, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status %d", pr.StatusCode)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/snap.json"
	C("writefile.count").Inc()
	if err := WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot file is not valid JSON: %v", err)
	}
	if s.Counters["writefile.count"] == 0 {
		t.Error("snapshot file missing counter")
	}
}

// Benchmarks document the unit costs the ≤1% overhead budget is computed
// from (see TestInstrumentationOverheadBudget at the repo root).

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench.count")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.StartSpan("bench.span").End()
	}
}
