package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) of a registry
// snapshot, served on /metrics next to /debug/vars. Dotted metric names
// sanitize to underscore families under a netcluster_ prefix; counters
// get the conventional _total suffix; histograms export their log2
// buckets as cumulative le-labeled series plus _sum/_count, and the
// derived p50/p95/p99 are emitted as separate gauge families so scrape
// pipelines that cannot aggregate native histograms still get
// quantiles.

// PrometheusContentType is the Content-Type for /metrics responses.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a dotted metric name into a Prometheus family name.
func promName(name string) string {
	b := []byte("netcluster_" + name)
	for i := range b {
		c := b[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheusText renders s in the Prometheus text exposition
// format. Families are emitted in sorted name order per kind, so two
// identical snapshots produce byte-identical pages.
func WritePrometheusText(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := promName(name) + "_total"
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster counter %q\n# TYPE %s counter\n%s %d\n",
			fam, name, fam, fam, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := promName(name)
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster gauge %q\n# TYPE %s gauge\n%s %d\n",
			fam, name, fam, fam, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		fam := promName(name)
		if _, err := fmt.Fprintf(w,
			"# HELP %s netcluster histogram %q (log2 buckets)\n# TYPE %s histogram\n",
			fam, name, fam); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", fam, b.High, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			fam, h.Count, fam, h.Sum, fam, h.Count); err != nil {
			return err
		}
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"_p50", h.P50}, {"_p95", h.P95}, {"_p99", h.P99}} {
			qfam := fam + q.suffix
			if _, err := fmt.Fprintf(w,
				"# HELP %s netcluster histogram %q interpolated quantile\n# TYPE %s gauge\n%s %s\n",
				qfam, name, qfam, qfam, promFloat(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}
