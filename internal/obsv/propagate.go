package obsv

import (
	"context"
	"net/http"
)

// Wire propagation of span contexts. A routed batch crosses process
// boundaries twice (client → router → shard node), and without carrying
// the trace identity across the hop each process starts its own root —
// three disjoint trees for one logical request. The carrier is a single
// HTTP header shaped like a W3C traceparent:
//
//	X-Netcluster-Trace: 00-<32 hex trace-id>-<16 hex span-id>-01
//
// version "00", a 128-bit trace-id field, a 64-bit parent span-id, and a
// flags byte (always 01, "sampled": the flight recorder records every
// span). Our trace IDs are 64-bit, so the upper half of the trace-id
// field is zero on the wire; an inbound header whose upper half is
// nonzero was minted by some other tracing system and is ignored rather
// than truncated into a colliding local ID. Parsing is strict — any
// malformed header is treated as absent, never as an error: tracing must
// not fail requests.
//
// Span IDs are process-local sequences, so two processes would mint the
// same IDs and a merged trace would alias their spans. SetTraceIDSalt
// moves each process's sequences into a disjoint range; binaries call it
// once at startup with a PID-derived salt, while in-process tests leave
// it zero to keep trace topologies reproducible.

// TraceHeader is the canonical header name carrying the span context.
const TraceHeader = "X-Netcluster-Trace"

// traceHeaderLen is the exact length of a well-formed header value:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceHeaderLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

const hexDigits = "0123456789abcdef"

// FormatTraceHeader renders sc as a header value. An invalid (zero)
// context renders as "" — callers can skip injection on the empty
// string.
func FormatTraceHeader(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	var buf [traceHeaderLen]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	// 128-bit trace-id field, upper 64 bits zero.
	for i := 0; i < 16; i++ {
		buf[3+i] = '0'
	}
	putHex64(buf[19:35], sc.TraceID)
	buf[35] = '-'
	putHex64(buf[36:52], sc.SpanID)
	buf[52], buf[53], buf[54] = '-', '0', '1'
	return string(buf[:])
}

// ParseTraceHeader decodes a header value produced by FormatTraceHeader
// (or any traceparent-shaped string with a 64-bit trace ID). It returns
// ok=false — never an error — for anything it cannot use verbatim:
// empty or truncated values, unknown versions, non-hex digits, zero
// IDs, and foreign 128-bit trace IDs whose upper half is nonzero.
func ParseTraceHeader(v string) (SpanContext, bool) {
	if len(v) != traceHeaderLen {
		return SpanContext{}, false
	}
	if v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	hi, ok := parseHex64(v[3:19])
	if !ok || hi != 0 {
		return SpanContext{}, false
	}
	traceID, ok := parseHex64(v[19:35])
	if !ok {
		return SpanContext{}, false
	}
	spanID, ok := parseHex64(v[36:52])
	if !ok {
		return SpanContext{}, false
	}
	if !isHex(v[53]) || !isHex(v[54]) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: traceID, SpanID: spanID}
	if !sc.Valid() || sc.SpanID == 0 {
		return SpanContext{}, false
	}
	return sc, true
}

// HTTPInject writes the span context carried by ctx into h. A context
// with no live span injects nothing.
func HTTPInject(ctx context.Context, h http.Header) {
	sc, ok := SpanContextFrom(ctx)
	if !ok {
		return
	}
	h.Set(TraceHeader, FormatTraceHeader(sc))
}

// HTTPExtract returns ctx carrying the span context found in h, so the
// next StartTraceSpan call parents into the remote trace. When the
// header is absent or malformed, ctx is returned unchanged and the next
// span starts a fresh local trace.
func HTTPExtract(ctx context.Context, h http.Header) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	sc, ok := ParseTraceHeader(h.Get(TraceHeader))
	if !ok {
		return ctx
	}
	return ContextWithSpan(ctx, sc)
}

// SetTraceIDSalt ORs salt into every subsequently minted trace and span
// ID, moving this process's ID sequences into a disjoint range so merged
// multi-process traces never alias. Binaries call it once at startup
// (typically with a PID-derived high-bits salt); tests leave the default
// zero salt so in-process trace topologies stay deterministic.
func SetTraceIDSalt(salt uint64) {
	idSalt.Store(salt)
}

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}

func parseHex64(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
