package obsv

import (
	"context"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

// TestTraceHeaderRoundTrip is the inject→extract property test: any
// valid span context survives the wire byte-exactly.
func TestTraceHeaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		sc := SpanContext{TraceID: rng.Uint64(), SpanID: rng.Uint64()}
		if sc.TraceID == 0 {
			sc.TraceID = 1
		}
		if sc.SpanID == 0 {
			sc.SpanID = 1
		}
		got, ok := ParseTraceHeader(FormatTraceHeader(sc))
		if !ok {
			t.Fatalf("round trip %d: header %q did not parse", i, FormatTraceHeader(sc))
		}
		if got != sc {
			t.Fatalf("round trip %d: %+v != %+v", i, got, sc)
		}
	}
}

func TestTraceHeaderHTTPRoundTrip(t *testing.T) {
	ctx, span := StartTraceSpan(context.Background(), "client.op")
	defer span.End()
	h := make(http.Header)
	HTTPInject(ctx, h)
	if h.Get(TraceHeader) == "" {
		t.Fatal("inject wrote no header")
	}

	// The extracted context must parent a new span into the same trace.
	serverCtx := HTTPExtract(context.Background(), h)
	sc, ok := SpanContextFrom(serverCtx)
	if !ok {
		t.Fatal("extract produced no span context")
	}
	if sc != span.Context() {
		t.Fatalf("extracted %+v, injected %+v", sc, span.Context())
	}
	_, child := StartTraceSpan(serverCtx, "server.op")
	if child.Context().TraceID != span.Context().TraceID {
		t.Fatalf("server span trace %d, client trace %d",
			child.Context().TraceID, span.Context().TraceID)
	}
	child.End()
}

// TestTraceHeaderMalformed: every broken shape is ignored (ok=false),
// never an error or a partial parse.
func TestTraceHeaderMalformed(t *testing.T) {
	valid := FormatTraceHeader(SpanContext{TraceID: 0xabcdef, SpanID: 0x1234})
	cases := map[string]string{
		"empty":            "",
		"garbage":          "not-a-trace-header",
		"truncated":        valid[:len(valid)-1],
		"overlong":         valid + "0",
		"bad version":      "01" + valid[2:],
		"missing dash":     strings.Replace(valid, "-", "_", 1),
		"non-hex trace":    valid[:19] + "zzzzzzzzzzzzzzzz" + valid[35:],
		"non-hex span":     valid[:36] + "ZZZZZZZZZZZZZZZZ" + valid[52:],
		"uppercase hex":    strings.ToUpper(valid),
		"zero trace id":    valid[:3] + strings.Repeat("0", 32) + valid[35:],
		"zero span id":     valid[:36] + strings.Repeat("0", 16) + valid[52:],
		"foreign 128-bit":  valid[:3] + "1" + valid[4:],
		"non-hex flags":    valid[:53] + "xy",
		"whitespace inset": " " + valid[1:],
	}
	for name, v := range cases {
		if sc, ok := ParseTraceHeader(v); ok {
			t.Errorf("%s: header %q parsed as %+v, want rejected", name, v, sc)
		}
	}

	// A malformed header must leave the context untouched.
	h := make(http.Header)
	h.Set(TraceHeader, "00-bogus")
	ctx := HTTPExtract(context.Background(), h)
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("malformed header produced a span context")
	}
	// ...and so must a missing one.
	ctx = HTTPExtract(context.Background(), make(http.Header))
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("absent header produced a span context")
	}
}

func TestHTTPInjectNoSpan(t *testing.T) {
	h := make(http.Header)
	HTTPInject(context.Background(), h)
	if v := h.Get(TraceHeader); v != "" {
		t.Fatalf("inject on spanless context wrote %q", v)
	}
}

// TestSetTraceIDSalt: salted processes mint IDs in disjoint ranges, and
// the salt survives the wire.
func TestSetTraceIDSalt(t *testing.T) {
	const salt = uint64(7) << 40
	SetTraceIDSalt(salt)
	defer SetTraceIDSalt(0)

	ctx, span := StartTraceSpan(context.Background(), "salted.op")
	defer span.End()
	sc := span.Context()
	if sc.TraceID&salt != salt || sc.SpanID&salt != salt {
		t.Fatalf("salt not applied: %+v", sc)
	}
	h := make(http.Header)
	HTTPInject(ctx, h)
	got, ok := ParseTraceHeader(h.Get(TraceHeader))
	if !ok || got != sc {
		t.Fatalf("salted context did not survive the wire: %+v ok=%v", got, ok)
	}
}
