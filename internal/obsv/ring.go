package obsv

import (
	"sort"
	"sync/atomic"
)

// Ring is the flight recorder: a fixed-size, lock-free buffer of the most
// recent completed spans. It is always on — recording one span is an
// atomic counter add plus one pointer store — and bounded, so a
// long-running proxy keeps the last ~16k spans without growing. On
// demand (a -trace-out flag, /debug/trace, a failing chaos test) the
// ring is snapshotted and exported.
//
// Concurrency: the write cursor is an atomic counter and each slot is an
// atomic pointer to an immutable SpanRecord, so unlimited writers never
// block and the race detector sees only atomic operations. A snapshot
// racing writers may interleave spans from adjacent generations — each
// record is still internally consistent, which is all a flight recorder
// needs.

// DefaultRingSize bounds the Default flight recorder: 1<<14 spans ≈ a
// few MB at steady state, several minutes of per-request spans at proxy
// rates and every coarse span of a batch run.
const DefaultRingSize = 1 << 14

// DefaultRing is the process-wide flight recorder the Default registry
// records into.
var DefaultRing = NewRing(DefaultRingSize)

func init() {
	Default.SetRing(DefaultRing)
}

// Ring is a lock-free single-writer-per-slot span buffer. Use NewRing.
type Ring struct {
	slots  []atomic.Pointer[SpanRecord]
	mask   uint64
	writes atomic.Uint64
}

// NewRing returns a ring holding size spans, rounded up to a power of
// two (minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[SpanRecord], n), mask: uint64(n - 1)}
}

// Cap returns the ring's capacity in spans.
func (r *Ring) Cap() int { return len(r.slots) }

// Record stores one completed span, overwriting the oldest when full.
// rec must not be mutated after the call.
func (r *Ring) Record(rec *SpanRecord) {
	if r == nil || rec == nil {
		return
	}
	i := r.writes.Add(1) - 1
	r.slots[i&r.mask].Store(rec)
}

// Recorded returns the total number of spans ever recorded.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.writes.Load()
}

// Dropped returns how many spans have been overwritten.
func (r *Ring) Dropped() uint64 {
	if r == nil {
		return 0
	}
	w := r.writes.Load()
	if w <= uint64(len(r.slots)) {
		return 0
	}
	return w - uint64(len(r.slots))
}

// Snapshot copies the resident spans, ordered by start time. The copy is
// private to the caller.
func (r *Ring) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	w := r.writes.Load()
	n := w
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	out := make([]SpanRecord, 0, n)
	for i := w - n; i < w; i++ {
		if p := r.slots[i&r.mask].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		// Equal starts: longer span first, so parents precede children.
		return out[i].Duration > out[j].Duration
	})
	return out
}

// Reset discards all recorded spans. Not intended to race writers; tests
// use it to scope the ring to one scenario.
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
	r.writes.Store(0)
}
