package sink

// The sink chaos suite: the export path under injected transport faults.
// Acceptance (ISSUE 6): with 20% drop plus resets on the sink transport,
// collection keeps ticking (the pipeline never blocks on a dead sink),
// and after recovery + WAL replay the receiver's deduplicated counter
// totals equal the in-process registry snapshot exactly — zero loss
// within budget. A kill-and-restart case proves the WAL carries the
// backlog across process incarnations.
//
// On failure, set SINK_CHAOS_ARTIFACTS=<dir> (the chaos-smoke CI job
// does) to capture the WAL and the flight-recorder tail for post-mortem.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/faultnet"
	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
)

// httpReceiver is the collector side of the exactness contract: it
// deduplicates batches by Seq (delivery is at-least-once) and sums
// counter deltas.
type httpReceiver struct {
	mu       sync.Mutex
	seen     map[uint64]bool
	counters map[string]float64
	gauges   map[string]float64
	batches  int
	dups     int
}

func newHTTPReceiver() *httpReceiver {
	return &httpReceiver{
		seen:     make(map[uint64]bool),
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
}

func (r *httpReceiver) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var b Batch
	if err := json.Unmarshal(body, &b); err != nil {
		http.Error(w, "bad batch", http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches++
	if r.seen[b.Seq] {
		r.dups++
		w.WriteHeader(http.StatusOK)
		return
	}
	r.seen[b.Seq] = true
	for _, s := range b.Samples {
		if s.Kind == "counter" {
			r.counters[s.Name] += s.Value
		} else {
			r.gauges[s.Name] = s.Value
		}
	}
	w.WriteHeader(http.StatusOK)
}

func (r *httpReceiver) counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

func (r *httpReceiver) stats() (batches, dups int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batches, r.dups
}

// chaosArtifacts copies the WAL and dumps the flight-recorder tail when
// the test failed and SINK_CHAOS_ARTIFACTS names a directory.
func chaosArtifacts(t *testing.T, walPaths ...string) {
	t.Helper()
	dir := os.Getenv("SINK_CHAOS_ARTIFACTS")
	if dir == "" || !t.Failed() {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	for i, p := range walPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Logf("artifacts: reading %s: %v", p, err)
			continue
		}
		dst := filepath.Join(dir, fmt.Sprintf("%s-%d%s", t.Name(), i, ".wal"))
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Logf("artifacts: %v", err)
		}
	}
	if err := obsv.WriteTraceFile(filepath.Join(dir, t.Name()+"-flight.json")); err != nil {
		t.Logf("artifacts: flight recorder: %v", err)
	}
}

// chaosPolicy keeps retries fast enough for a test run while still
// exercising the backoff machinery.
func chaosPolicy() *retry.Policy {
	return &retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Jitter:      0.5,
		PerAttempt:  2 * time.Second,
		SpanName:    "sink.export.attempt",
	}
}

// TestSinkChaosExactTotalsUnderFaults is the headline acceptance: 20%
// drop + 10% reset + corruption + jitter on the sink transport while
// concurrent writers hammer the registry; after the faults heal, the
// receiver's totals match the registry snapshot exactly.
func TestSinkChaosExactTotalsUnderFaults(t *testing.T) {
	recv := newHTTPReceiver()
	srv := httptest.NewServer(recv)
	defer srv.Close()

	inj := faultnet.New(faultnet.Symmetric(42, faultnet.Faults{
		Drop:    0.20,
		Reset:   0.10,
		Corrupt: 0.05,
		Jitter:  2 * time.Millisecond,
	}))

	reg := obsv.NewRegistry()
	walPath := filepath.Join(t.TempDir(), "push.wal")
	defer chaosArtifacts(t, walPath)

	ex, err := NewExporter(
		NewHTTPSink("push", srv.URL, inj.RoundTripper(nil)),
		walPath,
		Config{
			Interval: 10 * time.Millisecond,
			Registry: reg,
			Policy:   chaosPolicy(),
			Breaker:  retry.NewBreaker(5, 20*time.Millisecond),
			Logf:     t.Logf,
		})
	if err != nil {
		t.Fatal(err)
	}

	// The "pipeline": concurrent writers on counters and a histogram,
	// exactly how instrumented packages feed obsv. They never touch the
	// export path, so a dead sink cannot slow them.
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter(fmt.Sprintf("pipeline.records.%d", w))
			h := reg.Histogram("pipeline.latency.ns")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				h.Observe(int64(i%1000 + 1))
				if i%64 == 0 {
					time.Sleep(time.Millisecond) // spread increments across ticks
				}
			}
		}(w)
	}
	wg.Wait()

	// Keep the hostile window open past the writers: a few more forced
	// collections while the transport still drops and resets, so plenty
	// of batches are born under fire.
	aftermath := reg.Counter("pipeline.aftermath")
	for i := 0; i < 8; i++ {
		aftermath.Inc()
		ex.CollectNow()
		ex.Kick()
		time.Sleep(5 * time.Millisecond)
	}
	if b, _ := recv.stats(); b == 0 && ex.Depth() == 0 {
		t.Fatal("no batches collected during the fault phase")
	}
	if b, _ := recv.stats(); b == 0 && ex.Depth() == 0 {
		t.Fatal("no batches collected during the fault phase")
	}

	// Heal the transport, then flush everything — queue and WAL both.
	inj.SetProfile(faultnet.Profile{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if left := ex.Flush(ctx); left != 0 {
		t.Fatalf("flush after recovery left %d batches undelivered", left)
	}
	if err := ex.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Exactness: every counter's delivered sum equals the registry value.
	snap := reg.Snapshot()
	for name, want := range snap.Counters {
		if got := recv.counter(name); got != float64(want) {
			t.Errorf("counter %s: receiver has %v, registry has %d", name, got, want)
		}
	}
	if got, want := recv.counter("pipeline.latency.ns.count"), float64(writers*perWriter); got != want {
		t.Errorf("histogram count: receiver has %v, want %v", got, want)
	}

	// The suite must actually have injected faults to mean anything.
	st := inj.Stats()
	if st.Drops == 0 && st.Resets == 0 {
		t.Errorf("fault schedule never fired: %+v", st)
	}
	batches, dups := recv.stats()
	t.Logf("chaos: %d ops, %d drops, %d resets, %d corrupts; receiver: %d batches (%d duplicates deduped)",
		st.Ops, st.Drops, st.Resets, st.Corrupts, batches, dups)
}

// TestSinkChaosKillAndRestartReplaysWAL proves durability across process
// incarnations: incarnation 1 collects against a fully dead sink (every
// batch parks in the WAL), is killed without flushing, and incarnation 2
// — fresh registry, same WAL — replays the backlog. Receiver totals
// equal the sum of both incarnations' snapshots exactly.
func TestSinkChaosKillAndRestartReplaysWAL(t *testing.T) {
	recv := newHTTPReceiver()
	srv := httptest.NewServer(recv)
	defer srv.Close()

	walPath := filepath.Join(t.TempDir(), "push.wal")
	defer chaosArtifacts(t, walPath)

	// Incarnation 1: transport black-holes everything.
	inj := faultnet.New(faultnet.Symmetric(7, faultnet.Faults{Drop: 1.0}))
	reg1 := obsv.NewRegistry()
	ex1, err := NewExporter(
		NewHTTPSink("push", srv.URL, inj.RoundTripper(nil)),
		walPath,
		Config{Interval: time.Hour, Registry: reg1, Policy: chaosPolicy(),
			Breaker: retry.NewBreaker(2, time.Hour), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	c1 := reg1.Counter("pipeline.records")
	for i := 0; i < 5; i++ {
		c1.Add(10)
		ex1.CollectNow()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	ex1.drainOnce(ctx) // burns attempts into the dead transport, spills
	cancel()
	if d := ex1.Depth(); d != 5 {
		t.Fatalf("incarnation 1 depth = %d, want 5 parked batches", d)
	}
	want1 := float64(reg1.Counter("pipeline.records").Value())
	ex1.Kill() // no flush: the crash

	if recv.counter("pipeline.records") != 0 {
		t.Fatal("dead transport delivered anyway; test premise broken")
	}

	// Incarnation 2: healthy transport, fresh registry (a real process
	// restart resets in-memory metrics), same WAL.
	reg2 := obsv.NewRegistry()
	ex2, err := NewExporter(
		NewHTTPSink("push", srv.URL, nil),
		walPath,
		Config{Interval: time.Hour, Registry: reg2, Policy: chaosPolicy(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if d := ex2.Depth(); d != 5 {
		t.Fatalf("restart recovered %d batches from WAL, want 5", d)
	}
	c2 := reg2.Counter("pipeline.records")
	c2.Add(3)
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer fcancel()
	if left := ex2.Flush(fctx); left != 0 {
		t.Fatalf("flush left %d", left)
	}
	if err := ex2.Close(fctx); err != nil {
		t.Fatal(err)
	}

	want := want1 + float64(reg2.Counter("pipeline.records").Value())
	if got := recv.counter("pipeline.records"); got != want {
		t.Errorf("after replay: receiver has %v, want %v (incarnation1 %v + incarnation2 3)", got, want, want1)
	}
}

// TestSinkChaosEndpointRetargetKeepsBacklog covers the hot-reload
// interaction: batches parked against a dead endpoint must deliver to
// the new endpoint after a SetEndpoint retarget, with nothing lost.
func TestSinkChaosEndpointRetargetKeepsBacklog(t *testing.T) {
	recv := newHTTPReceiver()
	srv := httptest.NewServer(recv)
	defer srv.Close()

	reg := obsv.NewRegistry()
	walPath := filepath.Join(t.TempDir(), "push.wal")
	defer chaosArtifacts(t, walPath)

	// Point at a port that refuses connections.
	s := NewHTTPSink("push", "http://127.0.0.1:1/write", nil)
	ex, err := NewExporter(s, walPath,
		Config{Interval: time.Hour, Registry: reg, Policy: chaosPolicy(),
			Breaker: retry.NewBreaker(10, time.Millisecond), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("pipeline.records")
	for i := 0; i < 3; i++ {
		c.Add(2)
		ex.CollectNow()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	ex.drainOnce(ctx)
	cancel()
	if ex.Depth() == 0 {
		t.Fatal("batches delivered to a refused endpoint?")
	}

	s.SetEndpoint(srv.URL)
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer fcancel()
	if left := ex.Flush(fctx); left != 0 {
		t.Fatalf("flush left %d after retarget", left)
	}
	if err := ex.Close(fctx); err != nil {
		t.Fatal(err)
	}
	if got := recv.counter("pipeline.records"); got != 6 {
		t.Errorf("receiver has %v, want 6", got)
	}
}
