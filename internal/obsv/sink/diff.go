package sink

import (
	"sort"

	"github.com/netaware/netcluster/internal/obsv"
)

// DeltaState turns successive registry snapshots into delta batches.
// Counters export the increment since the previous collection (the first
// collection exports the full value — the delta from zero); gauges
// export their level whenever it changes (and once on first sight);
// histograms export their count and sum as counter-kind deltas plus the
// interpolated p50/p95/p99 as gauges. Samples are emitted in sorted name
// order so a batch's JSON is deterministic for a given pair of
// snapshots.
//
// A counter that moves backwards (a registry Reset between collections)
// re-baselines: the new value is exported as if from zero and the event
// is tallied so the discontinuity is visible downstream.
type DeltaState struct {
	prevCounters map[string]uint64
	prevGauges   map[string]int64
	rebaselines  uint64
}

// NewDeltaState returns a collector with a zero baseline.
func NewDeltaState() *DeltaState {
	return &DeltaState{
		prevCounters: make(map[string]uint64),
		prevGauges:   make(map[string]int64),
	}
}

// Rebaselines reports how many counter resets the collector has absorbed.
func (d *DeltaState) Rebaselines() uint64 { return d.rebaselines }

// Collect diffs cur against the previous collection and advances the
// baseline. It returns nil when nothing changed.
func (d *DeltaState) Collect(cur obsv.Snapshot) []Sample {
	var out []Sample

	names := make([]string, 0, len(cur.Counters))
	for name := range cur.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cur.Counters[name]
		prev := d.prevCounters[name]
		if v < prev {
			d.rebaselines++
			prev = 0
		}
		if v != prev {
			out = append(out, Sample{Name: name, Kind: "counter", Value: float64(v - prev)})
		}
		d.prevCounters[name] = v
	}

	names = names[:0]
	for name := range cur.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cur.Gauges[name]
		prev, seen := d.prevGauges[name]
		if !seen || v != prev {
			out = append(out, Sample{Name: name, Kind: "gauge", Value: float64(v)})
		}
		d.prevGauges[name] = v
	}

	names = names[:0]
	for name := range cur.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := cur.Histograms[name]
		// Count and sum ride the counter machinery (delta export, exact
		// totals); quantiles are levels.
		cname, sname := name+".count", name+".sum"
		if c, prev := h.Count, d.prevCounters[cname]; c != prev {
			if c < prev {
				d.rebaselines++
				prev = 0
			}
			out = append(out, Sample{Name: cname, Kind: "counter", Value: float64(c - prev)})
			out = append(out, Sample{Name: sname, Kind: "counter", Value: float64(h.Sum) - float64(d.prevGauges[sname])})
			out = append(out,
				Sample{Name: name + ".p50", Kind: "gauge", Value: h.P50},
				Sample{Name: name + ".p95", Kind: "gauge", Value: h.P95},
				Sample{Name: name + ".p99", Kind: "gauge", Value: h.P99})
			d.prevCounters[cname] = c
			d.prevGauges[sname] = h.Sum
		}
	}
	return out
}
