package sink

import (
	"testing"

	"github.com/netaware/netcluster/internal/obsv"
)

func sampleByName(samples []Sample, name string) (Sample, bool) {
	for _, s := range samples {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}

func TestDeltaCounters(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("x")
	d := NewDeltaState()

	c.Add(5)
	s1 := d.Collect(reg.Snapshot())
	if got, ok := sampleByName(s1, "x"); !ok || got.Value != 5 || got.Kind != "counter" {
		t.Fatalf("first collect: %+v", s1)
	}

	// Unchanged: no sample.
	if s2 := d.Collect(reg.Snapshot()); len(s2) != 0 {
		t.Fatalf("no-change collect emitted %+v", s2)
	}

	c.Add(3)
	s3 := d.Collect(reg.Snapshot())
	if got, _ := sampleByName(s3, "x"); got.Value != 3 {
		t.Fatalf("delta = %v, want 3", got.Value)
	}

	// Reset: re-baseline from zero, tallied.
	reg.Reset()
	c.Add(2)
	s4 := d.Collect(reg.Snapshot())
	if got, _ := sampleByName(s4, "x"); got.Value != 2 {
		t.Fatalf("post-reset delta = %v, want 2", got.Value)
	}
	if d.Rebaselines() != 1 {
		t.Fatalf("rebaselines = %d, want 1", d.Rebaselines())
	}
}

func TestDeltaGaugesEmitOnChange(t *testing.T) {
	reg := obsv.NewRegistry()
	g := reg.Gauge("depth")
	d := NewDeltaState()

	// First sight: emitted even at zero (the sink needs the level).
	s1 := d.Collect(reg.Snapshot())
	if got, ok := sampleByName(s1, "depth"); !ok || got.Kind != "gauge" || got.Value != 0 {
		t.Fatalf("first gauge collect: %+v", s1)
	}
	if s2 := d.Collect(reg.Snapshot()); len(s2) != 0 {
		t.Fatalf("unchanged gauge emitted %+v", s2)
	}
	g.Set(7)
	s3 := d.Collect(reg.Snapshot())
	if got, _ := sampleByName(s3, "depth"); got.Value != 7 {
		t.Fatalf("gauge level = %v, want 7", got.Value)
	}
}

func TestDeltaHistograms(t *testing.T) {
	reg := obsv.NewRegistry()
	h := reg.Histogram("lat")
	d := NewDeltaState()

	h.Observe(100)
	h.Observe(200)
	s1 := d.Collect(reg.Snapshot())
	if got, _ := sampleByName(s1, "lat.count"); got.Value != 2 || got.Kind != "counter" {
		t.Fatalf("count sample: %+v", s1)
	}
	if got, _ := sampleByName(s1, "lat.sum"); got.Value != 300 {
		t.Fatalf("sum sample: %+v", s1)
	}
	if _, ok := sampleByName(s1, "lat.p99"); !ok {
		t.Fatalf("missing p99: %+v", s1)
	}

	h.Observe(50)
	s2 := d.Collect(reg.Snapshot())
	if got, _ := sampleByName(s2, "lat.count"); got.Value != 1 {
		t.Fatalf("count delta = %v, want 1", got.Value)
	}
	if got, _ := sampleByName(s2, "lat.sum"); got.Value != 50 {
		t.Fatalf("sum delta = %v, want 50", got.Value)
	}
}

func TestDeltaDeterministicOrder(t *testing.T) {
	reg := obsv.NewRegistry()
	reg.Counter("b").Add(1)
	reg.Counter("a").Add(1)
	reg.Counter("c").Add(1)
	s := NewDeltaState().Collect(reg.Snapshot())
	if len(s) != 3 || s[0].Name != "a" || s[1].Name != "b" || s[2].Name != "c" {
		t.Fatalf("samples not name-sorted: %+v", s)
	}
}
