package sink

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
)

// Config tunes one exporter. The zero value gets sane defaults from
// normalize: 5 s interval, 64 in-memory batches, an 8 MiB WAL loss
// budget, fsync-per-batch, a 3-attempt backoff policy and a 3-strike /
// 5 s-cooldown breaker.
type Config struct {
	// Interval between collection ticks.
	Interval time.Duration
	// QueueCap bounds how many unacknowledged batch payloads stay in
	// memory; beyond it the oldest payloads are evicted (the WAL retains
	// them and Reload refills on demand).
	QueueCap int
	// BudgetBytes is the loss budget: when the unacknowledged backlog
	// exceeds it, the oldest batches are dropped and counted on
	// sink.dropped.*. <0 disables the budget.
	BudgetBytes int64
	// HighWater is the unacked-batch depth above which the exporter
	// reports unhealthy (readiness turns false). 0 means QueueCap.
	HighWater int
	// SkipFsync skips the per-batch WAL fsync (crash window widens to
	// the OS flush; throughput-sensitive deployments may prefer it).
	SkipFsync bool
	// Policy overrides the delivery retry policy.
	Policy *retry.Policy
	// Breaker overrides the delivery circuit breaker.
	Breaker *retry.Breaker
	// Registry is the metric source (nil = obsv.Default).
	Registry *obsv.Registry
	// Snapshot overrides the collection source: when set, each tick
	// diffs this function's result instead of Registry.Snapshot().
	// Wiring a shard.Aggregator's FederatedSnapshot here exports the
	// cluster-wide federated view through the same durable sink path a
	// single process uses.
	Snapshot func() obsv.Snapshot
	// Now is the batch timestamp clock, overridable in tests.
	Now func() time.Time
	// Logf receives operational warnings (nil = discarded).
	Logf func(format string, args ...any)
}

func (c Config) normalized() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.BudgetBytes == 0 {
		c.BudgetBytes = 8 << 20
	}
	if c.HighWater <= 0 {
		c.HighWater = c.QueueCap
	}
	if c.Policy == nil {
		p := retry.Policy{
			MaxAttempts: 3,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Jitter:      0.5,
			PerAttempt:  5 * time.Second,
			SpanName:    "sink.export.attempt",
		}
		c.Policy = &p
	}
	if c.Policy.Classify == nil {
		c.Policy.Classify = func(err error) retry.Class {
			if IsFatal(err) {
				return retry.Fatal
			}
			return retry.Transient
		}
	}
	if c.Breaker == nil {
		c.Breaker = retry.NewBreaker(3, 5*time.Second)
	}
	if c.Registry == nil {
		c.Registry = obsv.Default
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// entry is one unacknowledged batch. batch is nil when the payload was
// evicted from memory under queue pressure; the WAL still holds it.
type entry struct {
	seq   uint64
	size  int64
	batch *Batch
}

// Exporter owns one sink's full export path: the delta collector, the
// bounded in-memory queue, the WAL, and the delivery loop with retry +
// breaker. All delivery work happens on the exporter's own goroutine (or
// a caller inside Flush/Close) — the instrumented pipeline never blocks
// on it.
type Exporter struct {
	sink  Sink
	wal   *WAL
	cfg   Config
	delta *DeltaState

	// opMu serializes collect/drain cycles between the loop goroutine
	// and explicit CollectNow/Flush callers.
	opMu sync.Mutex

	mu           sync.Mutex
	entries      []entry
	inMem        int
	unackedBytes int64
	seq          uint64
	lastWALBytes int64
	lastErr      error

	intervalNs atomic.Int64
	kick       chan struct{}
	stop       chan struct{}
	done       chan struct{}
	stopOnce   sync.Once
}

// NewExporter opens (or recovers) the WAL at walPath and starts the
// export loop for s. Unacknowledged batches found in the WAL — a
// previous process's unsent backlog — are queued for redelivery ahead of
// new collections.
func NewExporter(s Sink, walPath string, cfg Config) (*Exporter, error) {
	cfg = cfg.normalized()
	wal, recovered, maxSeq, err := OpenWAL(walPath, !cfg.SkipFsync)
	if err != nil {
		return nil, err
	}
	e := &Exporter{
		sink:  s,
		wal:   wal,
		cfg:   cfg,
		delta: NewDeltaState(),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		seq:   maxSeq,
	}
	e.intervalNs.Store(int64(cfg.Interval))
	for _, b := range recovered {
		b := b
		ent := entry{seq: b.Seq, size: approxBatchSize(b), batch: &b}
		if e.inMem >= cfg.QueueCap {
			ent.batch = nil
		} else {
			e.inMem++
		}
		e.entries = append(e.entries, ent)
		e.unackedBytes += ent.size
	}
	if n := len(recovered); n > 0 {
		mReplayed.Add(uint64(n))
		mQueueDepth.Add(int64(n))
		cfg.Logf("sink %s: recovered %d unacknowledged batch(es) from %s", s.Name(), n, walPath)
	}
	e.syncWALGauge()
	go e.loop()
	return e, nil
}

// approxBatchSize estimates a recovered batch's WAL footprint without
// re-marshaling exactly (16 bytes/sample of JSON framing is close enough
// for budget accounting).
func approxBatchSize(b Batch) int64 {
	n := int64(64)
	for _, s := range b.Samples {
		n += int64(len(s.Name)) + 48
	}
	return n
}

// Name returns the underlying sink's name.
func (e *Exporter) Name() string { return e.sink.Name() }

// Sink returns the underlying sink (the manager retargets endpoints
// through it).
func (e *Exporter) Sink() Sink { return e.sink }

// Depth returns the number of unacknowledged batches (memory + WAL).
func (e *Exporter) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}

// Healthy reports whether the backlog is at or below the high-water mark.
func (e *Exporter) Healthy() bool { return e.Depth() <= e.cfg.HighWater }

// LastError returns the most recent delivery failure (nil after a
// success), for readiness detail.
func (e *Exporter) LastError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// BreakerState reports the delivery breaker position.
func (e *Exporter) BreakerState() string { return e.cfg.Breaker.State() }

// SetInterval retargets the collection cadence without disturbing the
// queue; the change takes effect on the next tick.
func (e *Exporter) SetInterval(d time.Duration) {
	if d <= 0 {
		d = 5 * time.Second
	}
	e.intervalNs.Store(int64(d))
	e.Kick()
}

// Interval returns the current collection cadence.
func (e *Exporter) Interval() time.Duration { return time.Duration(e.intervalNs.Load()) }

// Kick nudges the loop to run a collect+drain cycle now.
func (e *Exporter) Kick() {
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

func (e *Exporter) loop() {
	defer close(e.done)
	t := time.NewTimer(e.Interval())
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		case <-e.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		}
		e.opMu.Lock()
		e.collect()
		e.drain(context.Background())
		e.opMu.Unlock()
		t.Reset(e.Interval())
	}
}

// CollectNow synchronously snapshots the registry and durably enqueues
// the delta batch (if any) without attempting delivery. The drain phase
// of shutdown and the chaos tests use it to pin down exactly which
// increments are on the wire.
func (e *Exporter) CollectNow() {
	e.opMu.Lock()
	defer e.opMu.Unlock()
	e.collect()
}

// collect diffs the snapshot source (Config.Snapshot, default the
// registry) and appends the resulting batch to the WAL and the
// in-memory queue. Requires opMu.
func (e *Exporter) collect() {
	snap := e.cfg.Registry.Snapshot
	if e.cfg.Snapshot != nil {
		snap = e.cfg.Snapshot
	}
	samples := e.delta.Collect(snap())
	if len(samples) == 0 {
		return
	}
	e.mu.Lock()
	e.seq++
	b := Batch{Seq: e.seq, UnixMs: e.cfg.Now().UnixMilli(), Samples: samples}
	e.mu.Unlock()

	size, err := e.wal.AppendBatch(b)
	if err != nil {
		// Degraded: the batch lives only in memory now. Keep exporting —
		// losing durability is better than losing the export path.
		e.cfg.Logf("sink %s: WAL append: %v", e.sink.Name(), err)
		size = approxBatchSize(b)
	}

	e.mu.Lock()
	ent := entry{seq: b.Seq, size: size, batch: &b}
	e.entries = append(e.entries, ent)
	e.inMem++
	e.unackedBytes += size
	mQueueDepth.Add(1)
	// Evict payloads beyond the in-memory cap (oldest first; the WAL
	// keeps the bytes).
	for i := 0; e.inMem > e.cfg.QueueCap && i < len(e.entries); i++ {
		if e.entries[i].batch != nil {
			e.entries[i].batch = nil
			e.inMem--
		}
	}
	// Enforce the loss budget: drop oldest until back under.
	for e.cfg.BudgetBytes > 0 && e.unackedBytes > e.cfg.BudgetBytes && len(e.entries) > 1 {
		victim := e.entries[0]
		e.entries = e.entries[1:]
		if victim.batch != nil {
			e.inMem--
		}
		e.unackedBytes -= victim.size
		mDropped.Inc()
		mDroppedB.Add(uint64(victim.size))
		mQueueDepth.Add(-1)
		e.mu.Unlock()
		e.wal.Ack(victim.seq)
		e.cfg.Logf("sink %s: loss budget exceeded, dropped batch seq %d (%d bytes)", e.sink.Name(), victim.seq, victim.size)
		e.mu.Lock()
	}
	e.mu.Unlock()
	e.syncWALGauge()
}

// drain delivers queued batches head-first until the queue empties, the
// breaker opens, or a batch fails through its retries. Requires opMu.
func (e *Exporter) drain(ctx context.Context) error {
	for {
		e.mu.Lock()
		if len(e.entries) == 0 {
			e.mu.Unlock()
			e.maybeCompact()
			return nil
		}
		head := e.entries[0]
		e.mu.Unlock()

		if head.batch == nil {
			if err := e.refill(); err != nil {
				return err
			}
			continue
		}
		if !e.cfg.Breaker.Allow() {
			return retry.ErrOpen
		}
		b := *head.batch
		_, err := e.cfg.Policy.Do(ctx, func(ctx context.Context) error {
			return e.sink.Export(ctx, b)
		})
		switch {
		case err == nil:
			e.cfg.Breaker.Record(nil)
			mBatches.Inc()
			mSamples.Add(uint64(len(b.Samples)))
			e.settleHead(head)
		case IsFatal(err):
			// The sink answered and rejected: the peer is alive (the
			// breaker hears a success) but the batch is unsalvageable.
			e.cfg.Breaker.Record(nil)
			mFatal.Inc()
			e.cfg.Logf("sink %s: batch seq %d rejected: %v", e.sink.Name(), b.Seq, err)
			e.settleHead(head)
		default:
			e.cfg.Breaker.Record(err)
			mFailures.Inc()
			e.mu.Lock()
			e.lastErr = err
			e.mu.Unlock()
			return err
		}
	}
}

// settleHead acks and removes the head entry.
func (e *Exporter) settleHead(head entry) {
	e.wal.Ack(head.seq)
	e.mu.Lock()
	if len(e.entries) > 0 && e.entries[0].seq == head.seq {
		if e.entries[0].batch != nil {
			e.inMem--
		}
		e.entries = e.entries[1:]
		e.unackedBytes -= head.size
		mQueueDepth.Add(-1)
	}
	e.lastErr = nil
	e.mu.Unlock()
	e.syncWALGauge()
}

// refill reloads evicted payloads from the WAL. An entry whose payload
// is gone from the WAL too (a corrupt record) is unrecoverable and is
// dropped against the loss budget counters.
func (e *Exporter) refill() error {
	batches, err := e.wal.Reload()
	if err != nil {
		return err
	}
	bySeq := make(map[uint64]*Batch, len(batches))
	for i := range batches {
		bySeq[batches[i].Seq] = &batches[i]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	refilled := 0
	kept := e.entries[:0]
	for _, ent := range e.entries {
		if ent.batch == nil {
			b := bySeq[ent.seq]
			if b == nil {
				e.unackedBytes -= ent.size
				mDropped.Inc()
				mDroppedB.Add(uint64(ent.size))
				mQueueDepth.Add(-1)
				continue
			}
			// The queue head must always regain its payload (drain would
			// spin otherwise); later entries refill only up to the cap.
			if len(kept) == 0 || e.inMem < e.cfg.QueueCap {
				ent.batch = b
				e.inMem++
				refilled++
			}
		}
		kept = append(kept, ent)
	}
	e.entries = kept
	if refilled > 0 {
		mReplayed.Add(uint64(refilled))
	}
	return nil
}

func (e *Exporter) maybeCompact() {
	if !e.wal.ShouldCompact() {
		return
	}
	unacked, err := e.wal.Reload()
	if err != nil {
		e.cfg.Logf("sink %s: WAL reload for compaction: %v", e.sink.Name(), err)
		return
	}
	e.mu.Lock()
	maxSeq := e.seq
	e.mu.Unlock()
	if err := e.wal.Compact(unacked, maxSeq); err != nil {
		e.cfg.Logf("sink %s: WAL compaction: %v", e.sink.Name(), err)
	}
	e.syncWALGauge()
}

// syncWALGauge folds this exporter's WAL size change into the aggregate
// gauge.
func (e *Exporter) syncWALGauge() {
	size := e.wal.Size()
	e.mu.Lock()
	delta := size - e.lastWALBytes
	e.lastWALBytes = size
	e.mu.Unlock()
	if delta != 0 {
		mWALBytes.Add(delta)
	}
}

// Flush collects one final delta and then drives delivery until the
// queue empties or ctx expires. It returns the remaining depth — zero
// means every collected increment reached the sink.
func (e *Exporter) Flush(ctx context.Context) int {
	e.opMu.Lock()
	defer e.opMu.Unlock()
	e.collect()
	for {
		err := e.drain(ctx)
		e.mu.Lock()
		depth := len(e.entries)
		e.mu.Unlock()
		if depth == 0 || ctx.Err() != nil {
			return depth
		}
		if err != nil {
			// Transient failure or open breaker: wait briefly (bounded by
			// ctx) before the next delivery wave.
			select {
			case <-ctx.Done():
				return depth
			case <-time.After(100 * time.Millisecond):
			}
		}
	}
}

// Close stops the loop, flushes within ctx's deadline, fsyncs the WAL
// (so anything undelivered is durable for the next incarnation) and
// closes the sink. A non-nil error reports an unflushed backlog — a
// drain deadline hit while the sink was down — which is persisted, not
// lost.
func (e *Exporter) Close(ctx context.Context) error {
	e.stopLoop()
	left := e.Flush(ctx)
	e.wal.Sync()
	e.wal.Close()
	serr := e.sink.Close()
	if left > 0 {
		return fmt.Errorf("sink %s: %d batch(es) undelivered at close (persisted in %s)", e.sink.Name(), left, e.wal.Path())
	}
	return serr
}

// Kill stops the exporter without flushing — the crash-simulation path
// (and the fastest possible abort). The WAL already holds every
// collected batch, so a successor opened on the same path redelivers
// them.
func (e *Exporter) Kill() {
	e.stopLoop()
	e.wal.Sync()
	e.wal.Close()
	e.sink.Close()
	e.mu.Lock()
	n := len(e.entries)
	e.entries = nil
	e.inMem = 0
	e.mu.Unlock()
	if n > 0 {
		mQueueDepth.Add(int64(-n))
	}
}

func (e *Exporter) stopLoop() {
	e.stopOnce.Do(func() { close(e.stop) })
	<-e.done
}
