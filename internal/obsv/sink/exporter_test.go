package sink

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
	"github.com/netaware/netcluster/internal/retry"
)

// memSink is an in-process backend with scriptable failures and a
// deduplicating tally — the receiver model every exactness assertion in
// this package uses.
type memSink struct {
	mu       sync.Mutex
	seen     map[uint64]bool
	counters map[string]float64
	gauges   map[string]float64
	failNext int   // fail this many upcoming exports
	failWith error // the error to fail with (default: a transient one)
	exports  int
	dups     int
}

func newMemSink() *memSink {
	return &memSink{
		seen:     make(map[uint64]bool),
		counters: make(map[string]float64),
		gauges:   make(map[string]float64),
	}
}

func (m *memSink) Name() string { return "mem" }
func (m *memSink) Close() error { return nil }

func (m *memSink) Export(ctx context.Context, b Batch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.exports++
	if m.failNext > 0 {
		m.failNext--
		if m.failWith != nil {
			return m.failWith
		}
		return errors.New("memsink: transient")
	}
	if m.seen[b.Seq] {
		m.dups++
		return nil
	}
	m.seen[b.Seq] = true
	for _, s := range b.Samples {
		if s.Kind == "counter" {
			m.counters[s.Name] += s.Value
		} else {
			m.gauges[s.Name] = s.Value
		}
	}
	return nil
}

func (m *memSink) counter(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

func (m *memSink) setFail(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failNext = n
	m.failWith = err
}

// fastCfg is an exporter config tuned for test speed: manual ticks
// (long interval + Kick), no real backoff sleeps.
func fastCfg(reg *obsv.Registry) Config {
	return Config{
		Interval: time.Hour,
		Registry: reg,
		Policy: &retry.Policy{
			MaxAttempts: 2,
			BaseDelay:   time.Millisecond,
			Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
		},
		Breaker: retry.NewBreaker(3, 10*time.Millisecond),
	}
}

func TestExporterDeliversDeltas(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("pipeline.records")
	ms := newMemSink()
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), fastCfg(reg))
	if err != nil {
		t.Fatal(err)
	}
	c.Add(10)
	if left := ex.Flush(context.Background()); left != 0 {
		t.Fatalf("flush left %d", left)
	}
	c.Add(7)
	if left := ex.Flush(context.Background()); left != 0 {
		t.Fatalf("flush left %d", left)
	}
	if got := ms.counter("pipeline.records"); got != 17 {
		t.Fatalf("delivered total = %v, want 17", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := ex.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestExporterRetriesTransientAndSpills(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("x")
	ms := newMemSink()
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), fastCfg(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Kill()

	c.Add(4)
	ms.setFail(2, nil) // first flush wave burns both policy attempts
	ex.CollectNow()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	ex.drainOnce(ctx)
	cancel()
	if ex.Depth() != 1 {
		t.Fatalf("depth = %d after failed delivery, want 1 (spilled, not lost)", ex.Depth())
	}
	// Sink recovers: the queued batch delivers.
	if left := ex.Flush(context.Background()); left != 0 {
		t.Fatalf("flush left %d after recovery", left)
	}
	if got := ms.counter("x"); got != 4 {
		t.Fatalf("delivered = %v, want 4", got)
	}
}

// drainOnce exposes one delivery wave for tests.
func (e *Exporter) drainOnce(ctx context.Context) error {
	e.opMu.Lock()
	defer e.opMu.Unlock()
	return e.drain(ctx)
}

func TestExporterFatalBatchDropped(t *testing.T) {
	reg := obsv.NewRegistry()
	reg.Counter("x").Add(1)
	ms := newMemSink()
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), fastCfg(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Kill()

	ms.setFail(1, Fatal(errors.New("schema rejected")))
	ex.CollectNow()
	if err := ex.drainOnce(context.Background()); err != nil {
		t.Fatalf("fatal rejection should settle the batch, got %v", err)
	}
	if ex.Depth() != 0 {
		t.Fatalf("depth = %d, want 0 (fatal batch dropped)", ex.Depth())
	}
	if got := ms.counter("x"); got != 0 {
		t.Fatalf("fatal batch delivered anyway: %v", got)
	}
}

func TestExporterBreakerFastFailsWhileOpen(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("x")
	ms := newMemSink()
	cfg := fastCfg(reg)
	cfg.Breaker = retry.NewBreaker(1, time.Hour) // one strike, never cools in-test
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Kill()

	c.Add(1)
	ms.setFail(1000, nil)
	ex.CollectNow()
	ex.drainOnce(context.Background()) // trips the breaker
	if st := ex.BreakerState(); st != "open" {
		t.Fatalf("breaker state %q, want open", st)
	}
	before := ms.exports
	c.Add(1)
	ex.CollectNow()
	if err := ex.drainOnce(context.Background()); !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("drain with open breaker = %v, want ErrOpen", err)
	}
	if ms.exports != before {
		t.Fatal("open breaker still hit the sink")
	}
	if ex.Depth() != 2 {
		t.Fatalf("depth = %d, want 2 (batches parked, not lost)", ex.Depth())
	}
}

func TestExporterLossBudgetDropsOldestLoudly(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("x")
	ms := newMemSink()
	cfg := fastCfg(reg)
	cfg.BudgetBytes = 200 // a couple of small batches
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Kill()

	dropped0 := mDropped.Value()
	ms.setFail(1<<30, nil) // sink dead
	for i := 0; i < 20; i++ {
		c.Add(1)
		ex.CollectNow()
	}
	if ex.Depth() >= 20 {
		t.Fatalf("depth = %d, budget never enforced", ex.Depth())
	}
	if mDropped.Value() == dropped0 {
		t.Fatal("budget drops not counted on sink.dropped.batches")
	}
}

func TestExporterQueueCapEvictsToWALAndRefills(t *testing.T) {
	reg := obsv.NewRegistry()
	c := reg.Counter("x")
	ms := newMemSink()
	cfg := fastCfg(reg)
	cfg.QueueCap = 2
	ex, err := NewExporter(ms, filepath.Join(t.TempDir(), "mem.wal"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Kill()

	ms.setFail(1<<30, nil)
	for i := 0; i < 6; i++ {
		c.Add(1)
		ex.CollectNow()
	}
	if ex.Depth() != 6 {
		t.Fatalf("depth = %d, want 6", ex.Depth())
	}
	ms.setFail(0, nil)
	if left := ex.Flush(context.Background()); left != 0 {
		t.Fatalf("flush left %d (WAL refill failed?)", left)
	}
	if got := ms.counter("x"); got != 6 {
		t.Fatalf("delivered = %v, want 6 — payload eviction lost increments", got)
	}
}

func TestManagerApplyReconciles(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(dir, Options{Defaults: Config{Interval: time.Hour, Registry: obsv.NewRegistry()}})
	specs := []Spec{
		{Name: "a", Type: "file", Path: filepath.Join(dir, "a.ndjson")},
		{Name: "b", Type: "udp", Endpoint: "127.0.0.1:9"},
	}
	if err := m.Apply(specs); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); len(st) != 2 || st[0].Name != "a" || st[1].Name != "b" {
		t.Fatalf("status = %+v", st)
	}

	// Invalid batch of specs: wholesale rejection, running set untouched.
	if err := m.Apply([]Spec{{Name: "a", Type: "nope"}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if st := m.Status(); len(st) != 2 {
		t.Fatalf("running set disturbed by rejected specs: %+v", st)
	}

	// Remove one, retarget the other.
	if err := m.Apply([]Spec{{Name: "b", Type: "udp", Endpoint: "127.0.0.1:10"}}); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if len(st) != 1 || st[0].Name != "b" || st[0].Endpoint != "127.0.0.1:10" {
		t.Fatalf("status after retarget = %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(specs); err == nil {
		t.Fatal("Apply after Close should fail")
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Name: "p", Type: "http", Endpoint: "http://h:1/write"}, true},
		{Spec{Name: "p", Type: "http", Endpoint: "ftp://h:1"}, false},
		{Spec{Name: "p", Type: "http", Endpoint: ""}, false},
		{Spec{Name: "", Type: "file", Path: "x"}, false},
		{Spec{Name: "f", Type: "file", Path: "x"}, true},
		{Spec{Name: "f", Type: "file"}, false},
		{Spec{Name: "u", Type: "udp", Endpoint: "h:1"}, true},
		{Spec{Name: "u", Type: "udp"}, false},
		{Spec{Name: "z", Type: "carrier-pigeon"}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
	if err := ValidateSpecs([]Spec{
		{Name: "dup", Type: "udp", Endpoint: "h:1"},
		{Name: "dup", Type: "udp", Endpoint: "h:2"},
	}); err == nil {
		t.Fatal("duplicate names accepted")
	}
}
