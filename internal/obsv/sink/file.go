package sink

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
)

// FileSink journals each batch as one JSON line appended to a file — the
// zero-infrastructure backend: tail -f it, ship it with any log
// forwarder, or post-process it to reconcile pushed totals against a
// -metrics-out snapshot. The file is opened lazily and reopened after
// any write error, so log rotation (rename + recreate) just works.
type FileSink struct {
	name string

	mu   sync.Mutex
	path string
	f    *os.File
}

// NewFileSink returns a newline-JSON journal sink writing to path.
func NewFileSink(name, path string) *FileSink {
	return &FileSink{name: name, path: path}
}

// Name identifies the sink in logs and WAL file names.
func (s *FileSink) Name() string { return s.name }

// SetPath retargets the journal; the next Export reopens at the new path.
func (s *FileSink) SetPath(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if path == s.path {
		return
	}
	s.path = path
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// Export appends the batch as one JSON line and syncs it to disk (the
// journal is itself the durable copy once the exporter acks the batch).
func (s *FileSink) Export(ctx context.Context, b Batch) error {
	line, err := json.Marshal(b)
	if err != nil {
		return Fatal(err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.f = f
	}
	if _, err := s.f.Write(line); err != nil {
		s.f.Close()
		s.f = nil
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		s.f = nil
		return err
	}
	return nil
}

// Close closes the journal file.
func (s *FileSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// maxUDPBatch bounds a datagram payload below the common 64 KiB UDP
// limit; larger batches are a configuration error (shorten the interval)
// and are rejected as Fatal rather than fragmented.
const maxUDPBatch = 60 << 10

// UDPSink fires each batch as one JSON datagram — the statsd-style
// fire-toward-a-collector transport. Unlike the HTTP sink there is no
// acknowledgment: a send that the local stack accepts counts as
// delivered, so the durability guarantee is only as strong as UDP.
// Operators choose it for lowest overhead, not for exactness.
type UDPSink struct {
	name string

	mu   sync.Mutex
	addr string
	conn net.Conn
}

// NewUDPSink returns a datagram sink for addr (host:port).
func NewUDPSink(name, addr string) *UDPSink {
	return &UDPSink{name: name, addr: addr}
}

// Name identifies the sink in logs and WAL file names.
func (s *UDPSink) Name() string { return s.name }

// SetAddr retargets the sink; the next Export redials.
func (s *UDPSink) SetAddr(addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if addr == s.addr {
		return
	}
	s.addr = addr
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// Export sends the batch as one datagram, dialing lazily.
func (s *UDPSink) Export(ctx context.Context, b Batch) error {
	payload, err := json.Marshal(b)
	if err != nil {
		return Fatal(err)
	}
	if len(payload) > maxUDPBatch {
		return Fatal(fmt.Errorf("sink: batch of %d bytes exceeds the %d-byte UDP limit", len(payload), maxUDPBatch))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		var d net.Dialer
		conn, err := d.DialContext(ctx, "udp", s.addr)
		if err != nil {
			return err
		}
		s.conn = conn
	}
	if _, err := s.conn.Write(payload); err != nil {
		s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

// Close closes the datagram socket.
func (s *UDPSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.conn = nil
	return err
}
