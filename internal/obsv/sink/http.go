package sink

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// HTTPSink pushes each batch as one JSON POST to an endpoint — the
// remote-write shape without the protobuf: a collector that accepts the
// body and answers 2xx owns the batch. The endpoint is swappable at
// runtime (config hot-reload points a live exporter at a new collector
// without disturbing its queue or WAL), and the transport is injectable
// so the chaos suite can wrap it in a faultnet RoundTripper.
type HTTPSink struct {
	name     string
	endpoint atomic.Value // string
	client   *http.Client
}

// NewHTTPSink returns a push sink for the endpoint URL. rt overrides the
// transport (nil = http.DefaultTransport).
func NewHTTPSink(name, endpoint string, rt http.RoundTripper) *HTTPSink {
	s := &HTTPSink{
		name:   name,
		client: &http.Client{Transport: rt, Timeout: 10 * time.Second},
	}
	s.endpoint.Store(endpoint)
	return s
}

// Name identifies the sink in logs and WAL file names.
func (s *HTTPSink) Name() string { return s.name }

// Endpoint returns the current push URL.
func (s *HTTPSink) Endpoint() string { return s.endpoint.Load().(string) }

// SetEndpoint atomically retargets the sink; in-flight and queued
// batches deliver to the new endpoint on their next attempt.
func (s *HTTPSink) SetEndpoint(url string) { s.endpoint.Store(url) }

// HTTPStatusError reports a non-2xx push response.
type HTTPStatusError struct {
	Code int
	Body string
}

func (e *HTTPStatusError) Error() string {
	return fmt.Sprintf("sink: push rejected: %d %s", e.Code, e.Body)
}

// Export POSTs the batch as JSON. A 4xx answer (other than 408 and 429,
// which signal pressure rather than rejection) is Fatal: the collector
// has looked at the batch and refused it, so retrying cannot help.
func (s *HTTPSink) Export(ctx context.Context, b Batch) error {
	body, err := json.Marshal(b)
	if err != nil {
		return Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.Endpoint(), bytes.NewReader(body))
	if err != nil {
		return Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Drain so the transport can reuse the connection; cap the read in
	// case a fault injector mangled the response into garbage.
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode/100 == 2 {
		return nil
	}
	serr := &HTTPStatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(snippet))}
	if resp.StatusCode >= 400 && resp.StatusCode < 500 &&
		resp.StatusCode != http.StatusRequestTimeout && resp.StatusCode != http.StatusTooManyRequests {
		return Fatal(serr)
	}
	return serr
}

// Close releases idle transport connections.
func (s *HTTPSink) Close() error {
	s.client.CloseIdleConnections()
	return nil
}
