package sink

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Options configures a Manager.
type Options struct {
	// Defaults seeds every exporter's Config (per-spec Interval
	// overrides Defaults.Interval).
	Defaults Config
	// Transport, when set, underlies every HTTP sink — the chaos suite
	// injects a faultnet RoundTripper here.
	Transport http.RoundTripper
}

// Manager owns the live set of exporters and reconciles it against
// operator configuration: Apply diffs the desired specs against the
// running set, starting new exporters, retargeting changed endpoints in
// place (queue and WAL untouched — a retarget must not lose the
// backlog), and draining removed ones. WAL files live under one
// directory, keyed by sink name, so a restart reconnects each exporter
// to its own backlog.
type Manager struct {
	dir  string
	opts Options

	mu        sync.Mutex
	exporters map[string]*Exporter
	specs     map[string]Spec
	closed    bool
}

// NewManager returns a manager storing WALs under dir.
func NewManager(dir string, opts Options) *Manager {
	if opts.Defaults.Logf == nil {
		opts.Defaults.Logf = func(string, ...any) {}
	}
	return &Manager{
		dir:       dir,
		opts:      opts,
		exporters: make(map[string]*Exporter),
		specs:     make(map[string]Spec),
	}
}

// ValidateSpecs checks a spec list as a unit (each spec plus name
// uniqueness) without touching the running set — config validation calls
// it before a reload is accepted.
func ValidateSpecs(specs []Spec) error {
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.Name] {
			return fmt.Errorf("sink: duplicate sink name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// build constructs the backend for a spec.
func (m *Manager) build(s Spec) Sink {
	switch s.Type {
	case "http":
		return NewHTTPSink(s.Name, s.Endpoint, m.opts.Transport)
	case "udp":
		return NewUDPSink(s.Name, s.Endpoint)
	default:
		return NewFileSink(s.Name, s.Path)
	}
}

// Apply reconciles the running exporters with specs. Invalid specs are
// rejected wholesale (the running set is untouched). Removed exporters
// get a short drain; their WALs stay on disk, so re-adding the name
// later resumes the backlog.
func (m *Manager) Apply(specs []Spec) error {
	if err := ValidateSpecs(specs); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("sink: manager closed")
	}

	desired := make(map[string]Spec, len(specs))
	for _, s := range specs {
		desired[s.Name] = s
	}

	// Drop exporters whose spec vanished or changed type/path (an
	// endpoint change retargets in place below).
	for name, ex := range m.exporters {
		spec, ok := desired[name]
		old := m.specs[name]
		if ok && spec.Type == old.Type && (spec.Type != "file" || spec.Path == old.Path) {
			continue
		}
		delete(m.exporters, name)
		delete(m.specs, name)
		go func(ex *Exporter) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := ex.Close(ctx); err != nil {
				m.opts.Defaults.Logf("sink: closing %s: %v", ex.Name(), err)
			}
		}(ex)
	}

	for name, spec := range desired {
		if ex, ok := m.exporters[name]; ok {
			// Same backend: retarget endpoint and cadence in place.
			old := m.specs[name]
			if spec.Endpoint != old.Endpoint {
				switch s := ex.Sink().(type) {
				case *HTTPSink:
					s.SetEndpoint(spec.Endpoint)
				case *UDPSink:
					s.SetAddr(spec.Endpoint)
				}
			}
			if iv := m.interval(spec); iv != ex.Interval() {
				ex.SetInterval(iv)
			}
			m.specs[name] = spec
			continue
		}
		cfg := m.opts.Defaults
		cfg.Interval = m.interval(spec)
		if err := os.MkdirAll(m.dir, 0o755); err != nil {
			return fmt.Errorf("sink: WAL dir %s: %w", m.dir, err)
		}
		ex, err := NewExporter(m.build(spec), m.walPath(name), cfg)
		if err != nil {
			return fmt.Errorf("sink: starting %s: %w", name, err)
		}
		m.exporters[name] = ex
		m.specs[name] = spec
	}
	return nil
}

func (m *Manager) interval(s Spec) time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	if m.opts.Defaults.Interval > 0 {
		return m.opts.Defaults.Interval
	}
	return 5 * time.Second
}

func (m *Manager) walPath(name string) string {
	return filepath.Join(m.dir, name+".wal")
}

// Depth returns the total unacknowledged backlog across exporters.
func (m *Manager) Depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, ex := range m.exporters {
		total += ex.Depth()
	}
	return total
}

// Healthy reports whether every exporter's backlog is at or below its
// high-water mark — one readiness input for the serving process.
func (m *Manager) Healthy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ex := range m.exporters {
		if !ex.Healthy() {
			return false
		}
	}
	return true
}

// SinkStatus is one exporter's operational position, for /debug surfaces.
type SinkStatus struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Endpoint string `json:"endpoint,omitempty"`
	Path     string `json:"path,omitempty"`
	Interval string `json:"interval"`
	Depth    int    `json:"queue_depth"`
	Breaker  string `json:"breaker"`
	LastErr  string `json:"last_error,omitempty"`
}

// Status reports every exporter, sorted by name.
func (m *Manager) Status() []SinkStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SinkStatus, 0, len(m.exporters))
	for name, ex := range m.exporters {
		spec := m.specs[name]
		st := SinkStatus{
			Name:     name,
			Type:     spec.Type,
			Endpoint: spec.Endpoint,
			Path:     spec.Path,
			Interval: ex.Interval().String(),
			Depth:    ex.Depth(),
			Breaker:  ex.BreakerState(),
		}
		if err := ex.LastError(); err != nil {
			st.LastErr = err.Error()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Kick nudges every exporter to collect and deliver now.
func (m *Manager) Kick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ex := range m.exporters {
		ex.Kick()
	}
}

// Close flushes every exporter within ctx's deadline (concurrently — a
// wedged sink must not starve the others' drain time) and shuts the set
// down. The returned error aggregates undelivered backlogs, which remain
// persisted in their WALs.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	exporters := make([]*Exporter, 0, len(m.exporters))
	for _, ex := range m.exporters {
		exporters = append(exporters, ex)
	}
	m.exporters = make(map[string]*Exporter)
	m.specs = make(map[string]Spec)
	m.closed = true
	m.mu.Unlock()

	errs := make(chan error, len(exporters))
	for _, ex := range exporters {
		go func(ex *Exporter) { errs <- ex.Close(ctx) }(ex)
	}
	var all []error
	for range exporters {
		if err := <-errs; err != nil {
			all = append(all, err)
		}
	}
	return errors.Join(all...)
}
