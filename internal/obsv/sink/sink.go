// Package sink is the push half of the observability substrate: durable
// delta export of the obsv registry to external collectors. The pull
// surface (/metrics, /debug/vars) answers "what is the state now"; sink
// answers "ship every change somewhere else, and do not lose it when the
// somewhere-else is down".
//
// The shape follows the statssink daemons this repo's roadmap names as
// exemplars: a small Sink interface with interchangeable backends (an
// HTTP push endpoint in the remote-write spirit, a newline-JSON file
// journal, a UDP datagram feed), fed by a per-sink Exporter that diffs
// registry snapshots into delta batches on an interval. Durability is
// write-ahead: every batch is appended (and fsynced) to a WAL before the
// first delivery attempt, deliveries are retried with backoff and a
// circuit breaker from internal/retry, and acknowledged batches are
// compacted away. A dead sink therefore never blocks the pipeline — the
// hot paths only ever touch obsv counters — and a kill -9 loses at most
// the increments since the last collection tick, never a collected
// batch. The only deliberate loss is the configured budget: when the
// backlog of unacknowledged batches exceeds Config.BudgetBytes the
// oldest are dropped, loudly, onto sink.dropped.* counters.
//
// Delivery is at-least-once: batches carry a per-exporter sequence
// number that survives restarts (the WAL preserves the high-water mark
// across compactions), so receivers deduplicate by Seq and summing
// counter deltas reproduces the in-process totals exactly.
package sink

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"time"

	"github.com/netaware/netcluster/internal/obsv"
)

// Aggregate operational metrics for the export path itself. They live in
// the same registry they describe, so a scrape of /metrics shows whether
// push export is healthy; totals are summed across every exporter in the
// process.
var (
	mBatches    = obsv.C("sink.export.batches")  // batches delivered
	mSamples    = obsv.C("sink.export.samples")  // samples delivered
	mFailures   = obsv.C("sink.export.failures") // delivery attempts that exhausted retries
	mFatal      = obsv.C("sink.export.fatal")    // batches dropped on fatal (4xx-style) rejection
	mDropped    = obsv.C("sink.dropped.batches") // batches dropped to the loss budget
	mDroppedB   = obsv.C("sink.dropped.bytes")   // bytes dropped to the loss budget
	mReplayed   = obsv.C("sink.replay.batches")  // unacked batches reloaded from the WAL
	mCorrupt    = obsv.C("sink.wal.corrupt_records")
	mQueueDepth = obsv.G("sink.queue.depth") // unacked batches across all exporters
	mWALBytes   = obsv.G("sink.wal.bytes")   // WAL file bytes across all exporters
)

// Sample is one exported metric observation. Counter-kind samples carry
// a delta since the previous batch (summing them reproduces the total);
// gauge-kind samples carry the current level (last write wins).
type Sample struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter" | "gauge"
	Value float64 `json:"value"`
}

// Batch is one collection tick's worth of samples. Seq is unique and
// monotonically increasing per exporter stream — across restarts too —
// so receivers deduplicate redelivered batches by Seq.
type Batch struct {
	Seq     uint64   `json:"seq"`
	UnixMs  int64    `json:"unix_ms"`
	Samples []Sample `json:"samples"`
}

// Sink delivers batches to one backend. Export must be safe for
// sequential reuse; it is never called concurrently for one sink.
// Transient delivery failures are ordinary errors (they will be retried
// and eventually spilled to the WAL); a backend that definitively
// rejects a batch wraps the error with Fatal so the exporter drops it
// instead of retrying forever.
type Sink interface {
	Name() string
	Export(ctx context.Context, b Batch) error
	Close() error
}

// fatalError marks a delivery failure as not-retryable.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// Fatal wraps err so the exporter treats the batch as definitively
// rejected: it is acknowledged (dropped) and counted on
// sink.export.fatal rather than retried.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return fatalError{err}
}

// IsFatal reports whether err (or anything it wraps) was marked Fatal.
func IsFatal(err error) bool {
	var fe fatalError
	return errors.As(err, &fe)
}

// Spec declares one sink in operator configuration (the watched config
// file's "sinks" array, the facade, tests). Interval zero means the
// manager default.
type Spec struct {
	Name string `json:"name"`
	Type string `json:"type"` // "http" | "file" | "udp"
	// Endpoint is the http(s) URL (http type) or host:port (udp type).
	Endpoint string `json:"endpoint,omitempty"`
	// Path is the newline-JSON journal file (file type).
	Path string `json:"path,omitempty"`
	// Interval between collection ticks; 0 uses the manager default.
	Interval time.Duration `json:"-"`
}

// Validate checks a spec in isolation. The manager additionally rejects
// duplicate names.
func (s Spec) Validate() error {
	if s.Name == "" {
		return errors.New("sink: spec needs a name")
	}
	switch s.Type {
	case "http":
		u, err := url.Parse(s.Endpoint)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("sink %q: http endpoint %q is not an http(s) URL", s.Name, s.Endpoint)
		}
	case "udp":
		if s.Endpoint == "" {
			return fmt.Errorf("sink %q: udp endpoint (host:port) required", s.Name)
		}
	case "file":
		if s.Path == "" {
			return fmt.Errorf("sink %q: file path required", s.Name)
		}
	default:
		return fmt.Errorf("sink %q: unknown type %q (want http, file or udp)", s.Name, s.Type)
	}
	if s.Interval < 0 {
		return fmt.Errorf("sink %q: negative interval", s.Name)
	}
	return nil
}
