package sink

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WAL is the write-ahead log behind one exporter: an append-only text
// file of batch and acknowledgment records. Every batch is appended (and
// by default fsynced) before its first delivery attempt, so the set of
// batches that ever existed survives kill -9; an ack record marks a
// batch delivered (or deliberately dropped), and compaction rewrites the
// file without acked pairs once they dominate.
//
// Record grammar, one per line:
//
//	B <seq> <crc32c-hex> <batch-json>   a collected batch
//	A <seq>                             batch <seq> is settled
//	M <seq>                             seq high-water mark (written by
//	                                    compaction so sequence numbers
//	                                    never regress across restarts)
//
// Recovery tolerates a torn or corrupted tail: a line whose CRC does not
// match its payload (or that does not parse at all) is skipped and
// counted on sink.wal.corrupt_records — the batch it carried is the loss
// the crash already paid for, never silently doubled.
type WAL struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	w      *bufio.Writer
	fsync  bool
	bytes  int64 // current file size (approximate during buffered writes)
	acked  int   // ack records since last compaction
	stored int   // batch records since last compaction
}

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// OpenWAL opens (creating if absent) the WAL at path and recovers its
// state: the unacknowledged batches in seq order and the highest seq
// ever issued. fsync controls whether batch appends are synced
// immediately; recovery is identical either way, only the crash window
// differs.
func OpenWAL(path string, fsync bool) (w *WAL, unacked []Batch, maxSeq uint64, err error) {
	unacked, maxSeq, corrupt, err := readWAL(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if corrupt > 0 {
		mCorrupt.Add(uint64(corrupt))
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sink: opening WAL %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	wal := &WAL{path: path, f: f, w: bufio.NewWriter(f), fsync: fsync, bytes: st.Size()}
	return wal, unacked, maxSeq, nil
}

// readWAL parses the records at path. A missing file is an empty WAL.
func readWAL(path string) (unacked []Batch, maxSeq uint64, corrupt int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("sink: reading WAL %s: %w", path, err)
	}
	defer f.Close()

	batches := make(map[uint64]Batch)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		kind, rest, _ := strings.Cut(line, " ")
		switch kind {
		case "B":
			seqStr, rest, ok := cut2(rest)
			if !ok {
				corrupt++
				continue
			}
			crcStr, payload, _ := strings.Cut(rest, " ")
			seq, err1 := strconv.ParseUint(seqStr, 10, 64)
			want, err2 := strconv.ParseUint(crcStr, 16, 32)
			if err1 != nil || err2 != nil || crc32.Checksum([]byte(payload), walCRC) != uint32(want) {
				corrupt++
				continue
			}
			var b Batch
			if json.Unmarshal([]byte(payload), &b) != nil || b.Seq != seq {
				corrupt++
				continue
			}
			batches[seq] = b
			if seq > maxSeq {
				maxSeq = seq
			}
		case "A", "M":
			seq, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				corrupt++
				continue
			}
			if kind == "A" {
				delete(batches, seq)
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		default:
			corrupt++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, corrupt, fmt.Errorf("sink: reading WAL %s: %w", path, err)
	}
	unacked = make([]Batch, 0, len(batches))
	for _, b := range batches {
		unacked = append(unacked, b)
	}
	sort.Slice(unacked, func(i, j int) bool { return unacked[i].Seq < unacked[j].Seq })
	return unacked, maxSeq, corrupt, nil
}

// cut2 splits "a rest..." returning ok only when both halves exist.
func cut2(s string) (first, rest string, ok bool) {
	first, rest, ok = strings.Cut(s, " ")
	return first, rest, ok && first != "" && rest != ""
}

// AppendBatch durably records a batch before its first delivery attempt.
func (w *WAL) AppendBatch(b Batch) (size int64, err error) {
	payload, err := json.Marshal(b)
	if err != nil {
		return 0, err
	}
	line := fmt.Sprintf("B %d %08x %s\n", b.Seq, crc32.Checksum(payload, walCRC), payload)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.w.WriteString(line); err != nil {
		return 0, err
	}
	if err := w.w.Flush(); err != nil {
		return 0, err
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, err
		}
	}
	w.bytes += int64(len(line))
	w.stored++
	return int64(len(line)), nil
}

// Ack records that a batch is settled (delivered or deliberately
// dropped). Acks are not individually fsynced: losing one in a crash
// only causes a redelivery, which receivers deduplicate by Seq.
func (w *WAL) Ack(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	line := "A " + strconv.FormatUint(seq, 10) + "\n"
	if _, err := w.w.WriteString(line); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.bytes += int64(len(line))
	w.acked++
	return nil
}

// Sync flushes and fsyncs the file — the drain path calls it so the
// final state (including trailing acks) is durable before exit.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// ShouldCompact reports whether settled records dominate the file enough
// to be worth rewriting.
func (w *WAL) ShouldCompact() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.acked >= 64 && w.acked*2 >= w.stored
}

// Compact atomically rewrites the WAL to hold only the given unacked
// batches plus an M record preserving maxSeq, then reopens for append.
// The rewrite goes through a temp file and rename, so a crash mid-compact
// leaves either the old or the new file, never a mix.
func (w *WAL) Compact(unacked []Batch, maxSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".wal-*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(tmp)
	fmt.Fprintf(bw, "M %d\n", maxSeq)
	for _, b := range unacked {
		payload, err := json.Marshal(b)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		fmt.Fprintf(bw, "B %d %08x %s\n", b.Seq, crc32.Checksum(payload, walCRC), payload)
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	w.f.Close()
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st, _ := f.Stat()
	w.f = f
	w.w = bufio.NewWriter(f)
	w.bytes = 0
	if st != nil {
		w.bytes = st.Size()
	}
	w.acked, w.stored = 0, len(unacked)
	return nil
}

// Reload re-reads the file's unacked batches — the exporter uses it to
// refill payloads it evicted from memory under queue pressure.
func (w *WAL) Reload() ([]Batch, error) {
	w.mu.Lock()
	if err := w.w.Flush(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	path := w.path
	w.mu.Unlock()
	unacked, _, corrupt, err := readWAL(path)
	if corrupt > 0 {
		mCorrupt.Add(uint64(corrupt))
	}
	return unacked, err
}

// Close flushes, fsyncs and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.w.Flush()
	w.f.Sync()
	err := w.f.Close()
	w.f = nil
	return err
}

// Path returns the WAL file path (tests and failure artifacts use it).
func (w *WAL) Path() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.path
}
