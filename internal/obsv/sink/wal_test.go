package sink

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func walBatch(seq uint64, names ...string) Batch {
	b := Batch{Seq: seq, UnixMs: int64(seq) * 1000}
	for _, n := range names {
		b.Samples = append(b.Samples, Sample{Name: n, Kind: "counter", Value: 1})
	}
	return b
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, unacked, maxSeq, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(unacked) != 0 || maxSeq != 0 {
		t.Fatalf("fresh WAL reports unacked=%d maxSeq=%d", len(unacked), maxSeq)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := w.AppendBatch(walBatch(seq, "a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Ack(2); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, unacked, maxSeq, err = OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 3 {
		t.Fatalf("maxSeq = %d, want 3", maxSeq)
	}
	if len(unacked) != 2 || unacked[0].Seq != 1 || unacked[1].Seq != 3 {
		t.Fatalf("unacked = %+v, want seqs 1,3", unacked)
	}
}

func TestWALTornTailAndCorruptRecordsSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, _, _, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := w.AppendBatch(walBatch(seq, "a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Corrupt the middle record's payload and tear the tail — the crash
	// signature recovery must shrug off.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"kind":"counter"`, `"kind":"CORRUPT"`, 1)
	mangled := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	_, unacked, maxSeq, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(unacked) != 1 || unacked[0].Seq != 1 {
		t.Fatalf("recovered %+v, want only seq 1", unacked)
	}
	if maxSeq != 1 {
		t.Fatalf("maxSeq = %d, want 1 (corrupt records cannot vouch for seqs)", maxSeq)
	}
}

func TestWALCompactPreservesMaxSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	w, _, _, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := w.AppendBatch(walBatch(seq, "a")); err != nil {
			t.Fatal(err)
		}
		if seq != 4 {
			if err := w.Ack(seq); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Compact([]Batch{walBatch(4, "a")}, 5); err != nil {
		t.Fatal(err)
	}
	// Appends still work after the reopen-for-append.
	if _, err := w.AppendBatch(walBatch(6, "a")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, unacked, maxSeq, err := OpenWAL(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeq != 6 {
		t.Fatalf("maxSeq = %d, want 6 (M record + post-compact append)", maxSeq)
	}
	if len(unacked) != 2 || unacked[0].Seq != 4 || unacked[1].Seq != 6 {
		t.Fatalf("unacked = %+v, want seqs 4,6", unacked)
	}
}
