package obsv

import (
	"runtime/metrics"
	"time"
)

// Spans time named coarse-grained operations — a table compile, a
// parallel merge phase, a full clustering run — and record wall time and
// the process-wide allocation delta across the operation. A finished
// span feeds three metrics in its registry:
//
//	<name>.count  counter   completed spans
//	<name>.ns     histogram wall time per span, nanoseconds
//	<name>.allocs histogram heap objects allocated during the span
//
// The allocation figure is read from runtime/metrics (no stop-the-world,
// unlike runtime.ReadMemStats) and counts every goroutine's allocations
// while the span was open; it is exact for single-threaded operations
// and an honest upper bound for concurrent ones. Starting and ending a
// span costs two runtime metric reads and two small allocations, which
// is why spans wrap operations, never per-record work.

var allocsSampleName = "/gc/heap/allocs:objects"

func heapAllocObjects() uint64 {
	sample := []metrics.Sample{{Name: allocsSampleName}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// ASpan is an open span; End completes it. The zero value is inert.
type ASpan struct {
	name        string
	reg         *Registry
	start       time.Time
	startAllocs uint64
}

// StartSpan opens a span named name in the registry.
func (r *Registry) StartSpan(name string) ASpan {
	return ASpan{name: name, reg: r, start: time.Now(), startAllocs: heapAllocObjects()}
}

// StartSpan opens a span on the Default registry.
func StartSpan(name string) ASpan { return Default.StartSpan(name) }

// End completes the span, records its metrics, and returns the wall
// time for callers that also want to print it.
func (s ASpan) End() time.Duration {
	if s.reg == nil {
		return 0
	}
	d := time.Since(s.start)
	allocs := heapAllocObjects() - s.startAllocs
	s.reg.Counter(s.name + ".count").Inc()
	s.reg.Histogram(s.name + ".ns").Observe(d.Nanoseconds())
	s.reg.Histogram(s.name + ".allocs").Observe(int64(allocs))
	return d
}
