package obsv

import (
	"context"
	"sync/atomic"
	"time"
)

// Hierarchical tracing. A TSpan is the causal sibling of ASpan: where
// ASpan measures an isolated operation, a TSpan carries a trace identity
// through a context.Context so that the full pipeline — table compile,
// shard fan-out, stream parse, per-request proxy work, retry ladders —
// reconstructs as one tree. Completed spans feed the same <name>.count /
// <name>.ns metrics ASpan does (no allocation histogram: trace spans are
// cheap enough to wrap per-request work) and are additionally recorded
// into the registry's flight-recorder Ring, from which the Chrome
// trace_event exporter and /debug/trace serve them.
//
// IDs are drawn from process-wide atomic sequences, not wall-clock
// entropy, so repeated runs produce identical trace topologies and tests
// stay reproducible. A span whose context carries no parent starts a new
// trace; a child inherits the TraceID and links its ParentID.

// SpanContext identifies one span's position in a trace: which trace it
// belongs to and which span it is. The zero value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a live trace identity.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

type traceCtxKey struct{}

// ContextWithSpan returns ctx carrying sc; spans started from the
// returned context become children of sc.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, sc)
}

// SpanContextFrom extracts the span context from ctx, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(traceCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Attr is one key/value annotation on a span: shard index, record count,
// cache outcome, breaker state. Values are strings so records stay
// immutable and the exporters need no reflection.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is the immutable record of a completed span, as stored in a
// Ring. Records are never mutated after End publishes them, which is what
// makes the lock-free ring race-detector clean.
type SpanRecord struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Err      string
}

var (
	traceIDSeq atomic.Uint64
	spanIDSeq  atomic.Uint64

	// idSalt is ORed into every minted ID (see SetTraceIDSalt). Zero by
	// default so single-process runs and tests keep the small,
	// reproducible IDs the doc comment above promises.
	idSalt atomic.Uint64
)

// TSpan is an open trace span. The zero value and nil are inert: every
// method is safe to call on them, so error paths need no guards.
type TSpan struct {
	reg    *Registry
	name   string
	sc     SpanContext
	parent uint64
	start  time.Time
	attrs  []Attr
	errMsg string
}

// StartTraceSpan opens a span named name as a child of the span carried
// by ctx (or as a new trace root) and returns a derived context carrying
// the new span, for propagation into callees and goroutines.
func (r *Registry) StartTraceSpan(ctx context.Context, name string) (context.Context, *TSpan) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &TSpan{reg: r, name: name, start: time.Now()}
	if parent, ok := SpanContextFrom(ctx); ok {
		s.sc.TraceID = parent.TraceID
		s.parent = parent.SpanID
	} else {
		s.sc.TraceID = idSalt.Load() | traceIDSeq.Add(1)
	}
	s.sc.SpanID = idSalt.Load() | spanIDSeq.Add(1)
	return ContextWithSpan(ctx, s.sc), s
}

// StartTraceSpan opens a span on the Default registry.
func StartTraceSpan(ctx context.Context, name string) (context.Context, *TSpan) {
	return Default.StartTraceSpan(ctx, name)
}

// Context returns the span's identity for manual propagation.
func (s *TSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr annotates the span. Attributes set after End are dropped.
func (s *TSpan) SetAttr(key, value string) {
	if s == nil || s.reg == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value.
func (s *TSpan) SetAttrInt(key string, v int64) {
	s.SetAttr(key, formatInt(v))
}

// Fail marks the span as errored; the message lands in the record and
// the exporters surface it.
func (s *TSpan) Fail(err error) {
	if s == nil || s.reg == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End completes the span: it feeds <name>.count and <name>.ns in the
// registry, records the span into the registry's flight recorder (if one
// is wired), and returns the wall time. End is idempotent; only the
// first call records.
func (s *TSpan) End() time.Duration {
	if s == nil || s.reg == nil {
		return 0
	}
	reg := s.reg
	s.reg = nil
	d := time.Since(s.start)
	reg.Counter(s.name + ".count").Inc()
	reg.Histogram(s.name + ".ns").Observe(d.Nanoseconds())
	if ring := reg.ring.Load(); ring != nil {
		ring.Record(&SpanRecord{
			TraceID:  s.sc.TraceID,
			SpanID:   s.sc.SpanID,
			ParentID: s.parent,
			Name:     s.name,
			Start:    s.start,
			Duration: d,
			Attrs:    s.attrs,
			Err:      s.errMsg,
		})
	}
	return d
}

// formatInt is strconv.FormatInt without the import weight in call
// sites; kept tiny because span attributes ride request paths.
func formatInt(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
